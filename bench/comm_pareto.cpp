// Communication-efficiency Pareto sweep: bytes-on-air vs final eval loss for
// the strategy field — LbChat, the blind gossip baselines (DP, DFL-DDS), and
// the two communication-efficiency protocols from related work (DynThresh,
// SimGossip) — under three scenarios: clean, deterministic fault pressure
// (the fault_sweep mid level), and a 12.5% Byzantine fleet.
//
// Writes BENCH_comm_pareto.json: per scenario and strategy, the bytes
// delivered on air, the final (and honest-cohort, where an adversary is
// seeded) eval loss, and the transfer counters. Expected shape: DynThresh
// sits on the Pareto frontier in the clean scenario — its divergence gate
// spends strictly fewer bytes than the fixed-cadence DP/DFL-DDS at
// comparable final loss — while LbChat buys its loss advantage with coreset
// traffic and SimGossip tracks DP's byte bill with a similarity-hardened
// blend.
//
// This is the first bench on the string-keyed registry path: strategies are
// named, and per-strategy options (the DynThresh divergence bound) ride the
// run_or_load fingerprint through the registry's canonical option view.
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

namespace {

lbchat::engine::FaultConfig mid_faults() {
  lbchat::engine::FaultConfig f;
  f.burst_rate_per_min = 1.5;
  f.burst_duration_s = 20.0;
  f.burst_radius_m = 250.0;
  f.burst_extra_loss = 1.0;
  f.churn_rate_per_min = 0.25;
  f.churn_offline_mean_s = 30.0;
  f.corrupt_prob_near = 0.025;
  f.corrupt_prob_far = 0.15;
  f.chat_backoff = true;
  return f;
}

struct Scenario {
  std::string name;
  lbchat::engine::ScenarioConfig cfg;
};

struct Entry {
  std::string name;
  lbchat::baselines::StrategyOptions options;
};

}  // namespace

int main() {
  using namespace lbchat;

  const std::vector<Entry> strategies = [] {
    std::vector<Entry> s;
    s.push_back({"LbChat", {}});
    s.push_back({"DP", {}});
    s.push_back({"DFL-DDS", {}});
    s.push_back({"DynThresh", {}});
    s.push_back({"SimGossip", {}});
    return s;
  }();

  const std::vector<Scenario> scenarios = [] {
    std::vector<Scenario> s;
    {
      auto cfg = bench::default_scenario(/*wireless_loss=*/true);
      cfg.duration_s *= 0.5;  // 15 runs; keep each one shorter
      s.push_back({"clean", cfg});
    }
    {
      auto cfg = bench::default_scenario(/*wireless_loss=*/true);
      cfg.duration_s *= 0.5;
      cfg.faults = mid_faults();
      s.push_back({"faults", cfg});
    }
    {
      auto cfg = bench::default_scenario(/*wireless_loss=*/true);
      cfg.duration_s *= 0.5;
      cfg.adversary.byzantine_frac = 0.125;
      cfg.adversary.poison_scale = 1.5;  // the separating regime (robustness_sweep)
      s.push_back({"byz12", cfg});
    }
    return s;
  }();

  std::printf("\n=== Communication Pareto sweep (bytes on air vs final loss) ===\n");
  std::FILE* json = std::fopen("BENCH_comm_pareto.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_comm_pareto.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"scenarios\": [\n");

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& sc = scenarios[si];
    std::printf("\n-- scenario: %s --\n", sc.name.c_str());
    std::fprintf(json, "    {\"name\": \"%s\", \"strategies\": [\n", sc.name.c_str());
    for (std::size_t ei = 0; ei < strategies.size(); ++ei) {
      const Entry& e = strategies[ei];
      const auto run = bench::run_or_load(sc.cfg, e.name, e.options);
      const auto& t = run.transfers;
      const double final_loss = run.loss_curve.values.back();
      const double honest_loss = run.honest_loss_curve.values.empty()
                                     ? final_loss
                                     : run.honest_loss_curve.values.back();
      const double mb = static_cast<double>(t.bytes_delivered) / 1048576.0;
      std::printf("%-10s bytes=%8.1f MB  final-loss=%.4f  honest-loss=%.4f  "
                  "(sessions=%d recv-rate=%.0f%%)\n",
                  e.name.c_str(), mb, final_loss, honest_loss, t.sessions_started,
                  100.0 * t.model_receiving_rate());
      std::fprintf(json,
                   "      {\"name\": \"%s\", \"bytes_on_air\": %llu, "
                   "\"megabytes_on_air\": %.3f, \"final_loss\": %.6f, "
                   "\"honest_final_loss\": %.6f, \"model_sends_started\": %d, "
                   "\"model_sends_completed\": %d, \"sessions_started\": %d, "
                   "\"sessions_aborted\": %d, \"train_steps\": %ld}%s\n",
                   e.name.c_str(), static_cast<unsigned long long>(t.bytes_delivered), mb,
                   final_loss, honest_loss, t.model_sends_started, t.model_sends_completed,
                   t.sessions_started, t.sessions_aborted, run.train_steps,
                   ei + 1 < strategies.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", si + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_comm_pareto.json\n");
  return 0;
}
