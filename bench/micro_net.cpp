// Micro-benchmarks for the wireless/network substrate and the driving world:
// channel transfer ticks, contact estimation, BEV rendering, and the policy's
// forward/backward pass.
#include <benchmark/benchmark.h>

#include "net/contact.h"
#include "net/wireless.h"
#include "data/dataset.h"
#include "nn/optim.h"
#include "nn/policy.h"
#include "sim/world.h"

namespace {

using namespace lbchat;

void BM_TransferTick(benchmark::State& state) {
  const net::RadioConfig radio;
  const auto loss = net::WirelessLossModel::default_table(radio.max_range_m);
  Rng rng{5};
  net::Transfer t{52ull * 1024 * 1024, radio};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.tick(80.0, 0.5, loss, rng));
    if (t.complete()) t = net::Transfer{52ull * 1024 * 1024, radio};
  }
}
BENCHMARK(BM_TransferTick);

void BM_ContactEstimate(benchmark::State& state) {
  sim::World world{sim::WorldConfig{}, 2, 9};
  for (int i = 0; i < 40; ++i) world.step(0.5);
  const net::RadioConfig radio;
  const auto loss = net::WirelessLossModel::default_table(radio.max_range_m);
  net::AssistInfo a;
  a.pos = world.vehicle(0).pos;
  a.speed = 10.0;
  a.route = &world.vehicle(0).route;
  net::AssistInfo b;
  b.pos = world.vehicle(1).pos;
  b.speed = 9.0;
  b.route = &world.vehicle(1).route;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::estimate_contact(a, b, radio, loss));
  }
}
BENCHMARK(BM_ContactEstimate);

void BM_BevRender(benchmark::State& state) {
  sim::World world{sim::WorldConfig{}, 4, 9};
  for (int i = 0; i < 40; ++i) world.step(0.5);
  const auto& v = world.vehicle(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.render_ego_bev(v.pos, v.heading, v.route, v.s, 0));
  }
}
BENCHMARK(BM_BevRender);

void BM_PolicyTrainBatch(benchmark::State& state) {
  sim::World world{sim::WorldConfig{}, 1, 9};
  data::WeightedDataset ds{data::kDefaultBevSpec};
  for (std::size_t f = 0; f < 128; ++f) {
    world.step(0.5);
    ds.add(world.collect_sample(0, f));
  }
  nn::DrivingPolicy model;
  nn::Adam opt{1e-3};
  Rng rng{2};
  for (auto _ : state) {
    const auto idx = ds.sample_batch(rng, 32);
    std::vector<const data::Sample*> batch;
    for (const auto i : idx) batch.push_back(&ds[i]);
    benchmark::DoNotOptimize(model.train_batch(batch, opt));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_PolicyTrainBatch);

void BM_PolicyPredict(benchmark::State& state) {
  sim::World world{sim::WorldConfig{}, 1, 9};
  world.step(0.5);
  const auto sample = world.collect_sample(0, 1);
  nn::DrivingPolicy model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(sample.bev, sample.command));
  }
}
BENCHMARK(BM_PolicyPredict);

}  // namespace

BENCHMARK_MAIN();
