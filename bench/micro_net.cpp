// Micro-benchmarks for the NN compute kernels and the simulation substrate.
//
// Each NN op is timed twice — the retained naive scalar path and the
// im2col+GEMM path — so the speedup the kernel rewrite buys is visible at a
// glance and tracked across PRs: the results are also written to
// BENCH_micro_net.json in the working directory as
//   [{"op": ..., "us_per_iter": ..., "naive_us_per_iter": ..., "speedup": ...}]
// (substrate rows carry no naive twin and no speedup).
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "net/contact.h"
#include "net/spatial_index.h"
#include "net/wireless.h"
#include "nn/gemm.h"
#include "nn/int8_policy.h"
#include "nn/kernel_dispatch.h"
#include "nn/optim.h"
#include "nn/policy.h"
#include "sim/world.h"

namespace {

using namespace lbchat;

/// Wall-clock microseconds per iteration of `fn`, self-calibrating the
/// iteration count to roughly `target_ms` of total runtime.
double us_per_iter(const std::function<void()>& fn, double target_ms = 200.0) {
  using clock = std::chrono::steady_clock;
  // Warm up and estimate a single-iteration cost.
  fn();
  auto t0 = clock::now();
  fn();
  const double probe_us =
      std::chrono::duration<double, std::micro>(clock::now() - t0).count();
  long iters = probe_us > 0.0 ? static_cast<long>(target_ms * 1000.0 / probe_us) : 1000;
  iters = std::max(5L, std::min(iters, 2000000L));
  t0 = clock::now();
  for (long i = 0; i < iters; ++i) fn();
  const double total_us =
      std::chrono::duration<double, std::micro>(clock::now() - t0).count();
  return total_us / static_cast<double>(iters);
}

struct Row {
  std::string op;
  double us = 0.0;        ///< GEMM / production path
  double naive_us = -1.0;  ///< naive twin (< 0: not applicable)
  [[nodiscard]] double speedup() const { return naive_us > 0.0 ? naive_us / us : 0.0; }
};

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-34s %12s %12s %9s\n", "op", "us/iter", "naive us", "speedup");
  for (const auto& r : rows) {
    if (r.naive_us > 0.0) {
      std::printf("%-34s %12.2f %12.2f %8.2fx\n", r.op.c_str(), r.us, r.naive_us, r.speedup());
    } else {
      std::printf("%-34s %12.2f %12s %9s\n", r.op.c_str(), r.us, "-", "-");
    }
  }
}

void write_json(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f, "  {\"op\": \"%s\", \"us_per_iter\": %.3f", r.op.c_str(), r.us);
    if (r.naive_us > 0.0) {
      std::fprintf(f, ", \"naive_us_per_iter\": %.3f, \"speedup\": %.3f", r.naive_us,
                   r.speedup());
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

/// Deterministic float fill for benchmark inputs.
void fill_random(std::vector<float>& v, Rng& rng) {
  for (float& x : v) x = static_cast<float>(rng.normal());
}

std::vector<Row> bench_conv(int batch) {
  nn::ParamStore store;
  Rng init{7};
  // conv1 of the default policy: 4->8ch 3x3 s2 p1 on 16x16.
  nn::Conv2d conv{store, 4, 8, 16, 16, 3, 2, 1, init};
  Rng data{8};
  std::vector<float> x(static_cast<std::size_t>(batch) * conv.in_numel());
  std::vector<float> y(static_cast<std::size_t>(batch) * conv.out_numel());
  std::vector<float> gy(y.size());
  std::vector<float> gx(x.size());
  fill_random(x, data);
  fill_random(gy, data);
  std::vector<float> col, gcol;

  std::vector<Row> rows;
  const std::string suffix = " b" + std::to_string(batch);
  rows.push_back({"conv2d_fwd" + suffix,
                  us_per_iter([&] { conv.forward(store, x, y, batch, col); }),
                  us_per_iter([&] { conv.naive_forward(store, x, y, batch); })});
  rows.push_back(
      {"conv2d_bwd" + suffix, us_per_iter([&] {
         store.zero_grads();
         std::fill(gx.begin(), gx.end(), 0.0f);
         conv.backward(store, x, gy, gx, batch, col, gcol);
       }),
       us_per_iter([&] {
         store.zero_grads();
         std::fill(gx.begin(), gx.end(), 0.0f);
         conv.naive_backward(store, x, gy, gx, batch);
       })});
  return rows;
}

std::vector<Row> bench_linear(int batch) {
  nn::ParamStore store;
  Rng init{9};
  nn::Linear lin{store, 256, 64, init};  // the policy's fc layer
  Rng data{10};
  std::vector<float> x(static_cast<std::size_t>(batch) * 256);
  std::vector<float> y(static_cast<std::size_t>(batch) * 64);
  std::vector<float> gy(y.size());
  std::vector<float> gx(x.size());
  fill_random(x, data);
  fill_random(gy, data);

  std::vector<Row> rows;
  const std::string suffix = " b" + std::to_string(batch);
  rows.push_back({"linear_fwd" + suffix, us_per_iter([&] { lin.forward(store, x, y, batch); }),
                  us_per_iter([&] { lin.naive_forward(store, x, y, batch); })});
  rows.push_back({"linear_bwd" + suffix, us_per_iter([&] {
                    store.zero_grads();
                    std::fill(gx.begin(), gx.end(), 0.0f);
                    lin.backward(store, x, gy, gx, batch);
                  }),
                  us_per_iter([&] {
                    store.zero_grads();
                    std::fill(gx.begin(), gx.end(), 0.0f);
                    lin.naive_backward(store, x, gy, gx, batch);
                  })});
  return rows;
}

Row bench_policy_train() {
  sim::World world{sim::WorldConfig{}, 1, 9};
  data::WeightedDataset ds{data::kDefaultBevSpec};
  for (std::size_t f = 0; f < 128; ++f) {
    world.step(0.5);
    ds.add(world.collect_sample(0, f));
  }
  nn::DrivingPolicy model;
  nn::Adam opt{1e-3};
  Rng rng{2};
  return {"policy_train_batch32", us_per_iter([&] {
            const auto idx = ds.sample_batch(rng, 32);
            std::vector<const data::Sample*> batch;
            for (const auto i : idx) batch.push_back(&ds[i]);
            (void)model.train_batch(batch, opt);
          })};
}

Row bench_policy_predict() {
  sim::World world{sim::WorldConfig{}, 1, 9};
  world.step(0.5);
  const auto sample = world.collect_sample(0, 1);
  nn::DrivingPolicy model;
  volatile float sink = 0.0f;
  return {"policy_predict", us_per_iter([&] {
            const auto wp = model.predict(sample.bev, sample.command);
            sink = sink + wp[0];
          })};
}

Row bench_transfer_tick() {
  const net::RadioConfig radio;
  const auto loss = net::WirelessLossModel::default_table(radio.max_range_m);
  Rng rng{5};
  net::Transfer t{52ull * 1024 * 1024, radio};
  return {"transfer_tick", us_per_iter([&] {
            (void)t.tick(80.0, 0.5, loss, rng);
            if (t.complete()) t = net::Transfer{52ull * 1024 * 1024, radio};
          })};
}

Row bench_contact_estimate() {
  sim::World world{sim::WorldConfig{}, 2, 9};
  for (int i = 0; i < 40; ++i) world.step(0.5);
  const net::RadioConfig radio;
  const auto loss = net::WirelessLossModel::default_table(radio.max_range_m);
  net::AssistInfo a;
  a.pos = world.vehicle(0).pos;
  a.speed = 10.0;
  a.route = &world.vehicle(0).route;
  net::AssistInfo b;
  b.pos = world.vehicle(1).pos;
  b.speed = 9.0;
  b.route = &world.vehicle(1).route;
  volatile double sink = 0.0;
  return {"contact_estimate", us_per_iter([&] {
            sink = sink + net::estimate_contact(a, b, radio, loss).duration_s;
          })};
}

Row bench_contact_query() {
  // One tick's worth of neighbor discovery for a 256-vehicle fleet: spatial
  // grid rebuild + one range query per vehicle, with the O(n^2) all-pairs
  // scan as the naive twin (both produce the identical neighbor lists).
  constexpr int kN = 256;
  constexpr double kRange = 200.0;
  Rng rng{11};
  std::vector<Vec2> pos(static_cast<std::size_t>(kN));
  for (auto& p : pos) p = Vec2{rng.uniform(0.0, 4000.0), rng.uniform(0.0, 4000.0)};
  net::NeighborIndex index;
  std::vector<int> out;
  volatile int sink = 0;
  Row r{"contact_query n256", us_per_iter([&] {
          index.rebuild(pos, kRange);
          int total = 0;
          for (int v = 0; v < kN; ++v) {
            index.query(v, out);
            total += static_cast<int>(out.size());
          }
          sink = sink + total;
        })};
  r.naive_us = us_per_iter([&] {
    int total = 0;
    for (int v = 0; v < kN; ++v) {
      out.clear();
      for (int b = 0; b < kN; ++b) {
        if (b != v && distance(pos[static_cast<std::size_t>(v)],
                               pos[static_cast<std::size_t>(b)]) <= kRange) {
          out.push_back(b);
        }
      }
      total += static_cast<int>(out.size());
    }
    sink = sink + total;
  });
  return r;
}

std::vector<nn::KernelPath> available_paths() {
  std::vector<nn::KernelPath> out{nn::KernelPath::kScalar};
  if (nn::kernel_path_available(nn::KernelPath::kAvx2)) out.push_back(nn::KernelPath::kAvx2);
  if (nn::kernel_path_available(nn::KernelPath::kNeon)) out.push_back(nn::KernelPath::kNeon);
  return out;
}

std::string path_tag(nn::KernelPath p) {
  return " [" + std::string{nn::kernel_path_name(p)} + "]";
}

/// Raw dispatched-GEMM rows, one per available backend, on the policy's two
/// hottest shapes (conv2's im2col product and the fc layer at batch 32).
/// Every variant runs the identical workload — same operands, same shape —
/// so the rows differ only in the backend named in the op suffix; the naive
/// triple loop is the shared twin.
std::vector<Row> bench_gemm_paths() {
  Rng data{12};
  std::vector<Row> rows;
  const struct {
    const char* name;
    int m, n, k;
    void (*kernel)(nn::KernelPath, int, int, int, const float*, const float*, float*);
    void (*naive)(int, int, int, const float*, const float*, float*);
  } shapes[] = {
      {"sgemm_16x16x72", 16, 16, 72, nn::sgemm_on, nn::naive_sgemm},
      {"sgemm_abt_32x64x256", 32, 64, 256, nn::sgemm_abt_on, nn::naive_sgemm_abt},
  };
  for (const auto& s : shapes) {
    std::vector<float> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n, 0.0f);
    fill_random(a, data);
    fill_random(b, data);
    const double naive_us =
        us_per_iter([&] { s.naive(s.m, s.n, s.k, a.data(), b.data(), c.data()); }, 50.0);
    for (const nn::KernelPath p : available_paths()) {
      rows.push_back({std::string{s.name} + path_tag(p),
                      us_per_iter(
                          [&, p] { s.kernel(p, s.m, s.n, s.k, a.data(), b.data(), c.data()); },
                          50.0),
                      naive_us});
    }
  }
  return rows;
}

/// Integer GEMM rows (the int8 eval path's kernel), fc-shaped at batch 32.
std::vector<Row> bench_igemm_paths() {
  Rng data{13};
  const int m = 32, n = 64, k = 256;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m) * k);
  std::vector<std::int8_t> b(static_cast<std::size_t>(n) * k);
  std::vector<std::int32_t> c(static_cast<std::size_t>(m) * n, 0);
  for (auto& x : a) x = static_cast<std::int8_t>(static_cast<long>(data.next_u64() % 255) - 127);
  for (auto& x : b) x = static_cast<std::int8_t>(static_cast<long>(data.next_u64() % 255) - 127);
  const double naive_us =
      us_per_iter([&] { nn::naive_igemm_abt(m, n, k, a.data(), b.data(), c.data()); }, 50.0);
  std::vector<Row> rows;
  for (const nn::KernelPath p : available_paths()) {
    rows.push_back({"igemm_abt_32x64x256" + path_tag(p),
                    us_per_iter(
                        [&, p] { nn::igemm_abt_on(p, m, n, k, a.data(), b.data(), c.data()); },
                        50.0),
                    naive_us});
  }
  // u8s8 variant on the same B and non-negative A codes (the activation
  // contract); the naive twin stays the signed oracle — exact on such inputs.
  for (auto& x : a) x = static_cast<std::int8_t>(data.next_u64() % 128);
  const double naive_u_us =
      us_per_iter([&] { nn::naive_igemm_abt(m, n, k, a.data(), b.data(), c.data()); }, 50.0);
  for (const nn::KernelPath p : available_paths()) {
    rows.push_back(
        {"igemm_abt_u8s8_32x64x256" + path_tag(p),
         us_per_iter(
             [&, p] { nn::igemm_abt_u8s8_on(p, m, n, k, a.data(), b.data(), c.data()); },
             50.0),
         naive_u_us});
  }
  return rows;
}

/// Full-policy inference per backend plus the int8 forward path: the same
/// frame through the same weights every time. The scalar fp32 row is the
/// naive twin for the other fp32 backends; the active-path fp32 time is the
/// twin for int8, so its speedup column reads "int8 vs fp32 on this machine".
std::vector<Row> bench_policy_predict_paths() {
  sim::World world{sim::WorldConfig{}, 1, 9};
  world.step(0.5);
  const auto sample = world.collect_sample(0, 1);
  nn::DrivingPolicy model;
  const nn::Int8Policy qmodel{model};
  volatile float sink = 0.0f;

  std::vector<Row> rows;
  double scalar_us = 0.0;
  double best_fp32_us = 0.0;
  for (const nn::KernelPath p : available_paths()) {
    nn::ScopedKernelPath guard{p};
    const double us = us_per_iter([&] {
      const auto wp = model.predict(sample.bev, sample.command);
      sink = sink + wp[0];
    });
    if (p == nn::KernelPath::kScalar) scalar_us = us;
    best_fp32_us = us;
    rows.push_back({"policy_predict" + path_tag(p), us,
                    p == nn::KernelPath::kScalar ? -1.0 : scalar_us});
  }
  {
    // int8 runs its integer kernel on the best path (what --int8-eval does).
    nn::ScopedKernelPath guard{nn::best_kernel_path()};
    rows.push_back({"policy_predict_int8" + path_tag(nn::best_kernel_path()),
                    us_per_iter([&] {
                      const auto wp = qmodel.predict(sample.bev, sample.command);
                      sink = sink + wp[0];
                    }),
                    best_fp32_us});
  }
  return rows;
}

/// The eval-sweep composite the engine actually runs per vehicle: quantize a
/// snapshot + weighted_loss over 64 frames, vs the fp32 weighted_loss.
Row bench_eval_loss_int8() {
  sim::World world{sim::WorldConfig{}, 1, 9};
  std::vector<data::Sample> samples;
  for (std::size_t f = 0; f < 64; ++f) {
    world.step(0.5);
    samples.push_back(world.collect_sample(0, f));
  }
  nn::DrivingPolicy model;
  volatile double sink = 0.0;
  return {"eval_loss64_int8", us_per_iter([&] {
            const nn::Int8Policy q{model};
            sink = sink + q.weighted_loss(samples);
          }),
          us_per_iter([&] { sink = sink + model.weighted_loss(samples); })};
}

Row bench_bev_render() {
  sim::World world{sim::WorldConfig{}, 4, 9};
  for (int i = 0; i < 40; ++i) world.step(0.5);
  const auto& v = world.vehicle(0);
  volatile int sink = 0;
  return {"bev_render", us_per_iter([&] {
            const auto bev = world.render_ego_bev(v.pos, v.heading, v.route, v.s, 0);
            sink = sink + bev.cells[0];
          })};
}

}  // namespace

int main() {
  std::vector<Row> rows;
  for (const int batch : {1, 32}) {
    for (auto& r : bench_conv(batch)) rows.push_back(std::move(r));
  }
  for (auto& r : bench_linear(32)) rows.push_back(std::move(r));
  rows.push_back(bench_policy_train());
  rows.push_back(bench_policy_predict());
  for (auto& r : bench_gemm_paths()) rows.push_back(std::move(r));
  for (auto& r : bench_igemm_paths()) rows.push_back(std::move(r));
  for (auto& r : bench_policy_predict_paths()) rows.push_back(std::move(r));
  rows.push_back(bench_eval_loss_int8());
  rows.push_back(bench_transfer_tick());
  rows.push_back(bench_contact_estimate());
  rows.push_back(bench_contact_query());
  rows.push_back(bench_bev_render());

  print_rows(rows);
  write_json(rows, "BENCH_micro_net.json");
  return 0;
}
