// Figure 3: training loss vs time, LbChat vs SCO. The paper observes SCO
// reaches a similar final loss but takes ~1.5-1.8x longer to converge —
// merging valuable peer models (not just absorbing their coresets)
// accelerates early training.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace lbchat;
  for (const bool wireless : {false, true}) {
    std::printf("\n=== Figure 3 (%s wireless loss): LbChat vs SCO ===\n",
                wireless ? "with" : "without");
    const auto cfg = bench::default_scenario(wireless);
    const auto lbchat = bench::run_or_load(cfg, baselines::Approach::kLbChat);
    const auto sco = bench::run_or_load(cfg, baselines::Approach::kSco);
    bench::print_loss_series("LbChat", lbchat.loss_curve);
    bench::print_loss_series("SCO", sco.loss_curve);

    // Convergence-time ratio at a common loss threshold: midway between the
    // starting loss and the better final loss.
    const double start = lbchat.loss_curve.values.front();
    const double floor_loss =
        std::min(lbchat.loss_curve.values.back(), sco.loss_curve.values.back());
    for (const double frac : {0.5, 0.25, 0.15}) {
      const double threshold = floor_loss + frac * (start - floor_loss);
      const double t_lbchat = lbchat.loss_curve.first_time_below(threshold);
      const double t_sco = sco.loss_curve.first_time_below(threshold);
      if (t_lbchat > 0 && t_sco > 0) {
        std::printf("time to reach loss %.4f: LbChat %.0fs, SCO %.0fs (SCO/LbChat = %.2fx)\n",
                    threshold, t_lbchat, t_sco, t_sco / t_lbchat);
      }
    }
  }
  return 0;
}
