// Graceful-degradation sweep: LbChat vs the gossip baselines (DP, DFL-DDS)
// under increasing deterministic fault pressure — interference bursts, vehicle
// churn, and payload corruption (engine/faults.h), with the per-pair chat
// backoff enabled at every nonzero level.
//
// Writes BENCH_fault_sweep.json: per approach and fault level, the successful
// model receiving rate (raw and net of CRC-rejected frames), the final eval
// loss, and the fault counters. Expected shape: every approach degrades
// monotonically with the fault level, and the blind baselines' receiving
// rates collapse below LbChat's (the paper's §IV-C gap widens — LbChat's
// loss-aware sizing and route sharing keep working while blind fit-to-window
// sizing overruns ever-shorter usable windows).
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

namespace {

lbchat::engine::FaultConfig fault_level(double level) {
  lbchat::engine::FaultConfig f;
  f.burst_rate_per_min = 3.0 * level;  // a few regional bursts per minute
  f.burst_duration_s = 20.0;
  f.burst_radius_m = 250.0;
  f.burst_extra_loss = 1.0;  // full blackout inside the disc
  f.churn_rate_per_min = 0.5 * level;
  f.churn_offline_mean_s = 30.0;
  f.corrupt_prob_near = 0.05 * level;
  f.corrupt_prob_far = 0.30 * level;
  f.chat_backoff = level > 0.0;
  return f;
}

}  // namespace

int main() {
  using namespace lbchat;
  const std::vector<double> levels{0.0, 0.25, 0.5, 1.0};
  const std::vector<baselines::Approach> approaches{
      baselines::Approach::kLbChat, baselines::Approach::kDp,
      baselines::Approach::kDflDds};

  std::printf("\n=== Fault-injection sweep (receiving rate / final loss vs fault level) ===\n");
  std::FILE* json = std::fopen("BENCH_fault_sweep.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_fault_sweep.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"levels\": [");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    std::fprintf(json, "%s%g", i > 0 ? ", " : "", levels[i]);
  }
  std::fprintf(json, "],\n  \"approaches\": [\n");

  for (std::size_t ai = 0; ai < approaches.size(); ++ai) {
    const auto approach = approaches[ai];
    const std::string name{baselines::approach_name(approach)};
    std::fprintf(json, "    {\"name\": \"%s\", \"results\": [\n", name.c_str());
    for (std::size_t li = 0; li < levels.size(); ++li) {
      auto cfg = bench::default_scenario(/*wireless_loss=*/true);
      cfg.duration_s *= 0.5;  // the sweep is 12 runs; keep each one shorter
      cfg.faults = fault_level(levels[li]);
      const auto run = bench::run_or_load(cfg, approach);
      const auto& t = run.transfers;
      const double final_loss = run.loss_curve.values.back();
      std::printf(
          "%-8s level=%.2f  recv=%5.1f%%  net-recv=%5.1f%%  loss=%.4f  "
          "(rej=%d blackout=%d offline=%.0fs backoff=%d)\n",
          name.c_str(), levels[li], 100.0 * t.model_receiving_rate(),
          100.0 * t.effective_model_receiving_rate(), final_loss, t.frames_rejected,
          t.sessions_lost_to_blackout, t.offline_vehicle_seconds, t.backoff_retries);
      std::fprintf(json,
                   "      {\"level\": %g, \"receiving_rate\": %.6f, "
                   "\"effective_receiving_rate\": %.6f, \"final_loss\": %.6f, "
                   "\"model_sends_started\": %d, \"model_sends_completed\": %d, "
                   "\"frames_rejected\": %d, \"model_frames_rejected\": %d, "
                   "\"sessions_started\": %d, \"sessions_aborted\": %d, "
                   "\"sessions_lost_to_blackout\": %d, \"backoff_retries\": %d, "
                   "\"offline_vehicle_seconds\": %.1f}%s\n",
                   levels[li], t.model_receiving_rate(), t.effective_model_receiving_rate(),
                   final_loss, t.model_sends_started, t.model_sends_completed,
                   t.frames_rejected, t.model_frames_rejected, t.sessions_started,
                   t.sessions_aborted, t.sessions_lost_to_blackout, t.backoff_retries,
                   t.offline_vehicle_seconds, li + 1 < levels.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", ai + 1 < approaches.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_fault_sweep.json\n");
  return 0;
}
