// §IV-C statistic: successful model receiving rate on average, with wireless
// loss. Paper reports LbChat 87% vs ProxSkip 60%, RSU-L 60%, DFL-DDS 52%,
// DP 51% — LbChat's neighbour prioritization (route sharing + Eq. (5)) is the
// mechanism.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace lbchat;
  std::printf("\n=== Successful model receiving rate (with wireless loss) ===\n");
  for (const auto approach :
       {baselines::Approach::kProxSkip, baselines::Approach::kRsuL,
        baselines::Approach::kDflDds, baselines::Approach::kDp,
        baselines::Approach::kLbChat}) {
    const auto cfg = bench::default_scenario(/*wireless_loss=*/true);
    const auto run = bench::run_or_load(cfg, approach);
    std::printf("%-10s  %3.0f%%   (%d of %d model sends completed; %d sessions, %d aborted)\n",
                std::string{baselines::approach_name(approach)}.c_str(),
                100.0 * run.transfers.model_receiving_rate(),
                run.transfers.model_sends_completed, run.transfers.model_sends_started,
                run.transfers.sessions_started, run.transfers.sessions_aborted);
  }
  return 0;
}
