// fleet_scale: vehicles-vs-wallclock scaling bench for the mega-fleet layer
// (DESIGN.md §11).
//
// For each fleet size it reports two pairs of numbers, grid vs legacy scan:
//   - neighbor discovery cost for one tick (spatial-index rebuild + one range
//     query per vehicle, against the O(n^2) all-pairs sweep) — both produce
//     identical neighbor lists, so this isolates the data-structure win;
//   - end-to-end engine wall clock per simulated second for a short run of a
//     chat-heavy strategy on a metro-scaled town (density held constant),
//     toggling only ScenarioConfig::spatial_index.
// Results go to stdout and BENCH_fleet_scale.json in the working directory.
//
// LBCHAT_BENCH_MAX_VEHICLES caps the sweep (e.g. 256 for CI smoke runs).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string_view>
#include <vector>

#include "engine/fleet.h"
#include "net/spatial_index.h"
#include "sim/world.h"

namespace {

using namespace lbchat;

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Microseconds per iteration, self-calibrated to ~`target_ms` total.
double us_per_iter(const std::function<void()>& fn, double target_ms = 50.0) {
  fn();  // warm-up
  const double probe_us = wall_seconds(fn) * 1e6;
  long iters = probe_us > 0.0 ? static_cast<long>(target_ms * 1000.0 / probe_us) : 1000;
  iters = std::max(3L, std::min(iters, 1000000L));
  const double total_us = wall_seconds([&] {
                            for (long i = 0; i < iters; ++i) fn();
                          }) *
                          1e6;
  return total_us / static_cast<double>(iters);
}

/// Minimal chat-everything strategy: each idle vehicle opens a session with
/// its lowest-id idle in-range peer and trades one small payload each way.
/// No NN work — the bench isolates the scaling layer (world stepping,
/// neighbor discovery, session machinery).
class ChatSweepStrategy final : public engine::Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "ChatSweep"; }
  void local_train(engine::FleetSim& sim, int v) override {
    (void)sim;
    (void)v;
  }
  void on_tick(engine::FleetSim& sim) override {
    for (int a = 0; a < sim.num_vehicles(); ++a) {
      if (!sim.is_idle(a)) continue;
      for (const int b : sim.neighbors_in_range(a)) {
        if (!sim.is_idle(b) || !sim.cooldown_passed(a, b)) continue;
        engine::PairSession& s = sim.start_session(a, b);
        sim.queue_transfer(s, a, 64 * 1024, engine::StageTag{});
        sim.queue_transfer(s, b, 64 * 1024, engine::StageTag{});
        break;
      }
    }
  }
};

/// Metro-scaled scenario stripped to the scaling layer: no background
/// traffic, no training, no evaluation, tiny data collection.
engine::ScenarioConfig scale_config(int vehicles, bool grid) {
  engine::ScenarioConfig cfg;
  cfg.seed = 17;
  cfg.world.num_background_cars = 0;
  cfg.world.num_pedestrians = 0;
  cfg.collect_duration_s = 10.0;
  cfg.collect_fps = 0.5;
  cfg.eval_frames_per_vehicle = 0;  // empty eval set: eval is a no-op
  cfg.validation_fraction = 0.0;
  cfg.train_interval_s = 1e9;
  cfg.eval_interval_s = 1e9;
  cfg.pair_cooldown_s = 20.0;
  cfg.policy.bev = data::BevSpec{4, 8, 8, 4.0};
  cfg.policy.conv1_channels = 2;
  cfg.policy.conv2_channels = 2;
  cfg.policy.fc_dim = 8;
  cfg.policy.branch_hidden = 4;
  cfg.world.bev = cfg.policy.bev;
  engine::apply_metro_scale(cfg, vehicles);
  cfg.spatial_index = grid;
  return cfg;
}

struct ScaleRow {
  int vehicles = 0;
  double grid_query_us = 0.0;  ///< neighbor discovery, all vehicles, one tick
  double scan_query_us = 0.0;
  double grid_wall_ms_per_sim_s = 0.0;  ///< engine run, spatial_index on
  double scan_wall_ms_per_sim_s = 0.0;  ///< engine run, spatial_index off
  [[nodiscard]] double query_speedup() const {
    return grid_query_us > 0.0 ? scan_query_us / grid_query_us : 0.0;
  }
  [[nodiscard]] double wall_speedup() const {
    return grid_wall_ms_per_sim_s > 0.0 ? scan_wall_ms_per_sim_s / grid_wall_ms_per_sim_s
                                        : 0.0;
  }
};

ScaleRow bench_fleet(int vehicles, double sim_horizon_s) {
  ScaleRow row;
  row.vehicles = vehicles;

  // --- neighbor discovery in isolation, from real (stepped) positions ---
  const engine::ScenarioConfig cfg = scale_config(vehicles, true);
  sim::World world{cfg.world, vehicles, cfg.seed};
  for (int i = 0; i < 10; ++i) world.step(0.5);
  std::vector<Vec2> pos(static_cast<std::size_t>(vehicles));
  for (int v = 0; v < vehicles; ++v) pos[static_cast<std::size_t>(v)] = world.vehicle(v).pos;
  const double range = cfg.radio.max_range_m;

  net::NeighborIndex index;
  std::vector<int> out;
  volatile long sink = 0;
  row.grid_query_us = us_per_iter([&] {
    index.rebuild(pos, range);
    long total = 0;
    for (int v = 0; v < vehicles; ++v) {
      index.query(v, out);
      total += static_cast<long>(out.size());
    }
    sink = sink + total;
  });
  row.scan_query_us = us_per_iter([&] {
    long total = 0;
    for (int v = 0; v < vehicles; ++v) {
      out.clear();
      for (int b = 0; b < vehicles; ++b) {
        if (b != v && distance(pos[static_cast<std::size_t>(v)],
                               pos[static_cast<std::size_t>(b)]) <= range) {
          out.push_back(b);
        }
      }
      total += static_cast<long>(out.size());
    }
    sink = sink + total;
  });

  // --- end-to-end engine run, grid vs scan (single shot: runs are long) ---
  for (const bool grid : {true, false}) {
    engine::FleetSim sim{scale_config(vehicles, grid), std::make_unique<ChatSweepStrategy>()};
    sim.prepare();
    const double secs = wall_seconds([&] { sim.run_until(sim_horizon_s); });
    const double ms_per_sim_s = 1000.0 * secs / sim_horizon_s;
    (grid ? row.grid_wall_ms_per_sim_s : row.scan_wall_ms_per_sim_s) = ms_per_sim_s;
  }
  return row;
}

}  // namespace

int main() {
  int max_vehicles = 1024;
  if (const char* cap = std::getenv("LBCHAT_BENCH_MAX_VEHICLES")) {
    max_vehicles = std::atoi(cap);
  }
  std::vector<ScaleRow> rows;
  std::printf("%9s %14s %14s %9s %14s %14s %9s\n", "vehicles", "grid query us", "scan query us",
              "speedup", "grid ms/sim-s", "scan ms/sim-s", "speedup");
  for (const int n : {16, 64, 256, 1024}) {
    if (n > max_vehicles) {
      std::printf("(skipping %d vehicles: LBCHAT_BENCH_MAX_VEHICLES=%d)\n", n, max_vehicles);
      continue;
    }
    const ScaleRow row = bench_fleet(n, /*sim_horizon_s=*/30.0);
    std::printf("%9d %14.1f %14.1f %8.1fx %14.1f %14.1f %8.1fx\n", row.vehicles,
                row.grid_query_us, row.scan_query_us, row.query_speedup(),
                row.grid_wall_ms_per_sim_s, row.scan_wall_ms_per_sim_s, row.wall_speedup());
    rows.push_back(row);
  }

  std::FILE* f = std::fopen("BENCH_fleet_scale.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not open BENCH_fleet_scale.json for writing\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(f,
                 "  {\"vehicles\": %d, \"grid_query_us_per_tick\": %.3f, "
                 "\"scan_query_us_per_tick\": %.3f, \"query_speedup\": %.3f, "
                 "\"grid_wall_ms_per_sim_s\": %.3f, \"scan_wall_ms_per_sim_s\": %.3f, "
                 "\"wall_speedup\": %.3f}%s\n",
                 r.vehicles, r.grid_query_us, r.scan_query_us, r.query_speedup(),
                 r.grid_wall_ms_per_sim_s, r.scan_wall_ms_per_sim_s, r.wall_speedup(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_fleet_scale.json\n");
  return 0;
}
