// Table II: driving success rate on average, WITHOUT wireless loss (%).
#include "harness.h"

int main() {
  using namespace lbchat;
  std::vector<bench::SuccessColumn> columns;
  for (const auto approach :
       {baselines::Approach::kProxSkip, baselines::Approach::kRsuL,
        baselines::Approach::kDflDds, baselines::Approach::kDp,
        baselines::Approach::kLbChat}) {
    const auto cfg = bench::default_scenario(/*wireless_loss=*/false);
    const auto run = bench::run_or_load(cfg, approach);
    columns.push_back({std::string{baselines::approach_name(approach)},
                       bench::success_rates_or_load(cfg, approach, run)});
  }
  bench::print_paper_table(
      "=== Table II: driving success rate on average (w/o wireless loss) (%) ===", columns);
  return 0;
}
