// Byzantine-robustness sweep: LbChat vs the gossip baselines (DP, DFL-DDS)
// under an increasing fraction of seeded Byzantine vehicles
// (engine/adversary.h: sign-flipped models, inflated coreset weights, lying
// assist info — every mutated frame still CRC-valid and decodable).
//
// Writes BENCH_robustness.json: per approach and Byzantine fraction, the
// honest-cohort final eval loss (the number an honest participant cares
// about), the attacker weight share (fraction of merged peer-weight mass
// honest receivers granted to attackers; uniform baseline = the Byzantine
// fraction), and the adversary counters. Expected shape: LbChat's
// coreset-loss aggregation gate holds the honest-cohort degradation and the
// attacker share below both blind baselines as the fraction grows.
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

int main() {
  using namespace lbchat;
  const std::vector<double> fractions{0.0, 0.125, 0.25, 0.5};
  const std::vector<baselines::Approach> approaches{
      baselines::Approach::kLbChat, baselines::Approach::kDp,
      baselines::Approach::kDflDds};

  std::printf(
      "\n=== Byzantine sweep (honest-cohort loss / attacker share vs fraction) ===\n");
  std::FILE* json = std::fopen("BENCH_robustness.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_robustness.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"byzantine_fractions\": [");
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    std::fprintf(json, "%s%g", i > 0 ? ", " : "", fractions[i]);
  }
  std::fprintf(json, "],\n  \"poison_scale\": 1.5,\n  \"approaches\": [\n");

  for (std::size_t ai = 0; ai < approaches.size(); ++ai) {
    const auto approach = approaches[ai];
    const std::string name{baselines::approach_name(approach)};
    std::fprintf(json, "    {\"name\": \"%s\", \"results\": [\n", name.c_str());
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      auto cfg = bench::default_scenario(/*wireless_loss=*/true);
      cfg.duration_s *= 0.5;  // the sweep is 12 runs; keep each one shorter
      cfg.adversary.byzantine_frac = fractions[fi];
      // The separating regime — see tests/robustness_matrix.h: a heavier
      // flip makes poisoned models so obviously bad that even loss-blind
      // weighting rejects them and every defense looks equally good.
      cfg.adversary.poison_scale = 1.5;
      const auto run = bench::run_or_load(cfg, approach);
      const auto& t = run.transfers;
      const double final_loss = run.loss_curve.values.back();
      const double honest_loss = run.honest_loss_curve.values.empty()
                                     ? final_loss
                                     : run.honest_loss_curve.values.back();
      const double share = t.attacker_weight_share();
      std::printf(
          "%-8s byz=%.3f  honest-loss=%.4f  fleet-loss=%.4f  attacker-share=%.4f  "
          "(poisoned=%d rej-invalid=%d)\n",
          name.c_str(), fractions[fi], honest_loss, final_loss, share,
          t.byzantine_payloads_sent, t.frames_rejected_invalid);
      std::fprintf(json,
                   "      {\"byzantine_frac\": %g, \"honest_final_loss\": %.6f, "
                   "\"final_loss\": %.6f, \"attacker_weight_share\": %.6f, "
                   "\"attacker_peer_weight\": %.6f, \"total_peer_weight\": %.6f, "
                   "\"byzantine_payloads_sent\": %d, \"frames_rejected\": %d, "
                   "\"frames_rejected_invalid\": %d, \"model_sends_completed\": %d, "
                   "\"sessions_started\": %d}%s\n",
                   fractions[fi], honest_loss, final_loss, share, t.attacker_peer_weight,
                   t.total_peer_weight, t.byzantine_payloads_sent, t.frames_rejected,
                   t.frames_rejected_invalid, t.model_sends_completed, t.sessions_started,
                   fi + 1 < fractions.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", ai + 1 < approaches.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_robustness.json\n");
  return 0;
}
