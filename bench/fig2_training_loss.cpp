// Figure 2: training loss vs time for LbChat and all benchmarks,
// (a) without and (b) with wireless loss (paper §IV-C).
#include <cstdio>

#include "harness.h"

int main() {
  using namespace lbchat;
  const baselines::Approach approaches[] = {
      baselines::Approach::kProxSkip, baselines::Approach::kRsuL,
      baselines::Approach::kDflDds, baselines::Approach::kDp, baselines::Approach::kLbChat};

  for (const bool wireless : {false, true}) {
    std::printf("\n=== Figure 2(%c): training loss vs time (%s wireless loss) ===\n",
                wireless ? 'b' : 'a', wireless ? "with" : "without");
    for (const auto approach : approaches) {
      const auto cfg = bench::default_scenario(wireless);
      const auto run = bench::run_or_load(cfg, approach);
      bench::print_loss_series(std::string{baselines::approach_name(approach)},
                               run.loss_curve);
    }
  }
  return 0;
}
