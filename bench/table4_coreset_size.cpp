// Table IV: driving success rate with different coreset sizes (%).
// The paper compares |C| = 1500 (10x) and |C| = 15 (1/10) against the default
// 150, with and without wireless loss; both extremes hurt.
#include "harness.h"

int main() {
  using namespace lbchat;
  std::vector<bench::SuccessColumn> columns;
  for (const bool wireless : {false, true}) {
    for (const std::size_t size : {std::size_t{1500}, std::size_t{15}}) {
      auto cfg = bench::default_scenario(wireless);
      cfg.coreset_size = size;
      const auto run = bench::run_or_load(cfg, baselines::Approach::kLbChat);
      const auto rates =
          bench::success_rates_or_load(cfg, baselines::Approach::kLbChat, run, 3);
      char name[32];
      std::snprintf(name, sizeof name, "%zu (%s)", size, wireless ? "W" : "W/O");
      columns.push_back({name, rates});
    }
  }
  // Reference: the default coreset size, for context (not a paper column).
  for (const bool wireless : {false, true}) {
    const auto cfg = bench::default_scenario(wireless);
    const auto run = bench::run_or_load(cfg, baselines::Approach::kLbChat);
    char name[32];
    std::snprintf(name, sizeof name, "150 (%s)", wireless ? "W" : "W/O");
    columns.push_back(
        {name, bench::success_rates_or_load(cfg, baselines::Approach::kLbChat, run, 3)});
  }
  bench::print_paper_table(
      "=== Table IV: driving success rate with different coreset size (%) ===", columns);
  return 0;
}
