// Table V ablation: mask the coreset-based compression-ratio optimization of
// Eq. (7); vehicles use equal fit-to-window compression ratios instead.
#include "harness.h"

int main() {
  using namespace lbchat;
  std::vector<bench::SuccessColumn> columns;
  for (const bool wireless : {false, true}) {
    const auto cfg = bench::default_scenario(wireless);
    const auto run = bench::run_or_load(cfg, baselines::Approach::kLbChatEqualComp);
    columns.push_back(
        {std::string{wireless ? "equal (W)" : "equal (W/O)"},
         bench::success_rates_or_load(cfg, baselines::Approach::kLbChatEqualComp, run, 3)});
  }
  // Full LbChat for reference.
  for (const bool wireless : {false, true}) {
    const auto cfg = bench::default_scenario(wireless);
    const auto run = bench::run_or_load(cfg, baselines::Approach::kLbChat);
    columns.push_back(
        {std::string{wireless ? "LbChat (W)" : "LbChat (W/O)"},
         bench::success_rates_or_load(cfg, baselines::Approach::kLbChat, run, 3)});
  }
  bench::print_paper_table(
      "=== Table V: driving success rate with equal comp. ratio (%) ===", columns);
  return 0;
}
