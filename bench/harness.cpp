#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/bytes.h"
#include "common/fingerprint.h"
#include "common/rng.h"
#include "nn/kernel_dispatch.h"
#include "engine/report.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace lbchat::bench {

namespace {

/// Version of the CachedRun on-disk layout. The cache *key* is salted
/// separately by kScenarioFingerprintVersion (common/fingerprint.h) — bump
/// that one to invalidate keys after behavioural changes, this one when the
/// CachedRun byte layout changes.
/// v3: CachedRun carries the adversary/heterogeneity counters and the
/// honest/attacker cohort loss curves.
constexpr std::uint32_t kCacheVersion = 3;

double bench_scale() {
  const char* env = std::getenv("LBCHAT_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.01 ? v : 1.0;
}

std::filesystem::path cache_dir() {
  const char* env = std::getenv("LBCHAT_BENCH_CACHE");
  std::filesystem::path dir = env != nullptr ? env : ".bench_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

std::filesystem::path trace_dir() {
  const char* env = std::getenv("LBCHAT_TRACE_DIR");
  std::filesystem::path dir = env != nullptr ? env : ".bench_traces";
  std::filesystem::create_directories(dir);
  return dir;
}

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void export_run_observability(const engine::ScenarioConfig& cfg, std::string_view strategy,
                              std::uint64_t key, const engine::RunMetrics& m) {
  const std::string approach_str{strategy};
  char stem[128];
  std::snprintf(stem, sizeof stem, "%s_%016llx", sanitize_name(approach_str).c_str(),
                static_cast<unsigned long long>(key));
  const auto dir = trace_dir();
  const auto events = obs::tracer().events();
  const auto save = [&dir](const std::string& file, const std::string& body) {
    std::ofstream out{dir / file, std::ios::binary};
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
  };
  save(std::string{stem} + ".trace.json", obs::chrome_trace_json(events, obs::spans().spans()));
  save(std::string{stem} + ".events.jsonl", obs::events_jsonl(events, obs::tracer().dropped()));
  save(std::string{stem} + ".metrics.json", obs::metrics_json(obs::registry().snapshot()));
  save(std::string{stem} + ".report.json",
       obs::run_report_json(engine::build_run_report(approach_str, cfg, m)));
  std::fprintf(stderr, "[bench] observability exports: %s/%s.{trace.json,events.jsonl,...}\n",
               dir.string().c_str(), stem);
}

void write_run(const std::filesystem::path& path, const CachedRun& run) {
  ByteWriter w;
  w.write_u32(kCacheVersion);
  w.write_f64_vec(run.loss_curve.times);
  w.write_f64_vec(run.loss_curve.values);
  w.write_i32(run.transfers.model_sends_started);
  w.write_i32(run.transfers.model_sends_completed);
  w.write_i32(run.transfers.coreset_sends_started);
  w.write_i32(run.transfers.coreset_sends_completed);
  w.write_i32(run.transfers.sessions_started);
  w.write_i32(run.transfers.sessions_aborted);
  w.write_u64(run.transfers.bytes_delivered);
  w.write_i32(run.transfers.frames_rejected);
  w.write_i32(run.transfers.model_frames_rejected);
  w.write_i32(run.transfers.sessions_lost_to_blackout);
  w.write_i32(run.transfers.backoff_retries);
  w.write_f64(run.transfers.offline_vehicle_seconds);
  w.write_i32(run.transfers.byzantine_payloads_sent);
  w.write_u64(static_cast<std::uint64_t>(run.transfers.straggler_train_skips));
  w.write_i32(run.transfers.frames_rejected_invalid);
  w.write_f64(run.transfers.attacker_peer_weight);
  w.write_f64(run.transfers.total_peer_weight);
  w.write_f64_vec(run.honest_loss_curve.times);
  w.write_f64_vec(run.honest_loss_curve.values);
  w.write_f64_vec(run.attacker_loss_curve.times);
  w.write_f64_vec(run.attacker_loss_curve.values);
  w.write_u64(static_cast<std::uint64_t>(run.train_steps));
  w.write_u32(static_cast<std::uint32_t>(run.final_params.size()));
  for (const auto& p : run.final_params) w.write_f32_vec(p);
  std::ofstream out{path, std::ios::binary};
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
}

bool read_run(const std::filesystem::path& path, CachedRun& run) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  try {
    ByteReader r{bytes};
    if (r.read_u32() != kCacheVersion) return false;
    run.loss_curve.times = r.read_f64_vec();
    run.loss_curve.values = r.read_f64_vec();
    run.transfers.model_sends_started = r.read_i32();
    run.transfers.model_sends_completed = r.read_i32();
    run.transfers.coreset_sends_started = r.read_i32();
    run.transfers.coreset_sends_completed = r.read_i32();
    run.transfers.sessions_started = r.read_i32();
    run.transfers.sessions_aborted = r.read_i32();
    run.transfers.bytes_delivered = r.read_u64();
    run.transfers.frames_rejected = r.read_i32();
    run.transfers.model_frames_rejected = r.read_i32();
    run.transfers.sessions_lost_to_blackout = r.read_i32();
    run.transfers.backoff_retries = r.read_i32();
    run.transfers.offline_vehicle_seconds = r.read_f64();
    run.transfers.byzantine_payloads_sent = r.read_i32();
    run.transfers.straggler_train_skips = static_cast<long>(r.read_u64());
    run.transfers.frames_rejected_invalid = r.read_i32();
    run.transfers.attacker_peer_weight = r.read_f64();
    run.transfers.total_peer_weight = r.read_f64();
    run.honest_loss_curve.times = r.read_f64_vec();
    run.honest_loss_curve.values = r.read_f64_vec();
    run.attacker_loss_curve.times = r.read_f64_vec();
    run.attacker_loss_curve.values = r.read_f64_vec();
    run.train_steps = static_cast<long>(r.read_u64());
    const auto n = r.read_u32();
    run.final_params.clear();
    for (std::uint32_t i = 0; i < n; ++i) run.final_params.push_back(r.read_f32_vec());
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

engine::ScenarioConfig default_scenario(bool wireless_loss) {
  engine::ScenarioConfig cfg;
  cfg.seed = 1;
  cfg.num_vehicles = 16;
  cfg.wireless_loss = wireless_loss;
  cfg.collect_duration_s = 600.0;
  cfg.duration_s = 1800.0 * bench_scale();
  cfg.eval_interval_s = 100.0;
  // Worker lanes for the fleet's per-vehicle loops. Bit-deterministic for
  // any value, so it is not part of the cache fingerprint; default to all
  // hardware threads, override with LBCHAT_THREADS=n.
  const char* threads_env = std::getenv("LBCHAT_THREADS");
  cfg.num_threads = threads_env != nullptr ? std::atoi(threads_env) : 0;
  return cfg;
}

eval::EvalConfig default_eval_config() {
  eval::EvalConfig ec;
  ec.world_seed = 1;  // the town the fleet trained in
  ec.trials = 16;
  return ec;
}

std::uint64_t run_fingerprint(const engine::ScenarioConfig& cfg, std::string_view strategy,
                              const baselines::StrategyOptions& options) {
  // The shared implementation (common/fingerprint.h) is byte-for-byte the
  // hash this harness historically computed, so pre-existing .bench_cache
  // entries keep their keys; the svc ResultCache derives its keys from the
  // same function. Non-default strategy options enter only via the
  // conditional tail, so default-configured runs keep their keys too. The
  // kernel-path salt is identity on the scalar path (the backend every
  // historical entry was produced by), so only SIMD runs get fresh keys.
  return nn::salt_with_kernel_path(scenario_fingerprint(
      cfg, strategy, baselines::registry().fingerprint_options(strategy, options)));
}

std::uint64_t run_fingerprint(const engine::ScenarioConfig& cfg,
                              baselines::Approach approach) {
  return run_fingerprint(cfg, baselines::approach_name(approach));
}

CachedRun run_or_load(const engine::ScenarioConfig& cfg, std::string_view strategy,
                      const baselines::StrategyOptions& options) {
  const std::uint64_t key = run_fingerprint(cfg, strategy, options);
  char name[64];
  std::snprintf(name, sizeof name, "run_%016llx.bin",
                static_cast<unsigned long long>(key));
  const auto path = cache_dir() / name;
  CachedRun run;
  if (read_run(path, run)) return run;

  std::fprintf(stderr, "[bench] training %s (wireless=%d, |C|=%zu, %.0fs)...\n",
               std::string{strategy}.c_str(), cfg.wireless_loss ? 1 : 0, cfg.coreset_size,
               cfg.duration_s);
  // LBCHAT_TRACE=1|events|spans turns on observability for uncached runs;
  // each run starts from a clean slate so its exports cover exactly that
  // run. The cache fingerprint is unaffected (tracing is pure observation).
  const bool tracing = obs::init_from_env();
  if (tracing) obs::reset();
  engine::FleetSim sim{cfg, baselines::registry().make(strategy, options)};
  const engine::RunMetrics m = sim.run();
  if (tracing) export_run_observability(cfg, strategy, key, m);
  run.loss_curve = m.loss_curve;
  run.honest_loss_curve = m.honest_loss_curve;
  run.attacker_loss_curve = m.attacker_loss_curve;
  run.transfers = m.transfers;
  run.final_params = m.final_params;
  run.train_steps = m.train_steps;
  write_run(path, run);
  return run;
}

CachedRun run_or_load(const engine::ScenarioConfig& cfg, baselines::Approach approach) {
  return run_or_load(cfg, baselines::approach_name(approach));
}

std::array<double, 5> success_rates_or_load(const engine::ScenarioConfig& cfg,
                                            baselines::Approach approach,
                                            const CachedRun& run, int models_to_eval) {
  const eval::EvalConfig ec = default_eval_config();
  FnvHasher h;
  h.add(run_fingerprint(cfg, approach));
  h.add(ec.trials);
  h.add(models_to_eval);
  h.add(std::string_view{"success-v1"});
  char name[64];
  std::snprintf(name, sizeof name, "eval_%016llx.bin",
                static_cast<unsigned long long>(h.digest()));
  const auto path = cache_dir() / name;

  {
    std::ifstream in{path, std::ios::binary};
    if (in) {
      std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>()};
      try {
        ByteReader r{bytes};
        std::array<double, 5> rates{};
        for (double& v : rates) v = r.read_f64();
        return rates;
      } catch (const std::exception&) {
        // fall through to recompute
      }
    }
  }

  std::fprintf(stderr, "[bench] online eval of %s (%d models x %d trials)...\n",
               std::string{baselines::approach_name(approach)}.c_str(), models_to_eval,
               ec.trials);
  eval::OnlineEvaluator evaluator{ec};
  // Spread the evaluated vehicles across the fleet (urban + rural dwellers).
  std::array<double, 5> rates{};
  const int n = static_cast<int>(run.final_params.size());
  const int k = std::min(models_to_eval, n);
  for (int m = 0; m < k; ++m) {
    const int v = k > 1 ? m * (n - 1) / (k - 1) : 0;
    nn::DrivingPolicy model{cfg.policy, /*init_seed=*/0};
    model.set_params(run.final_params[static_cast<std::size_t>(v)]);
    for (std::size_t task = 0; task < eval::kAllTasks.size(); ++task) {
      rates[task] += 100.0 * evaluator.success_rate(model, eval::kAllTasks[task]);
    }
  }
  for (double& v : rates) v /= std::max(k, 1);

  ByteWriter w;
  for (const double v : rates) w.write_f64(v);
  std::ofstream out{path, std::ios::binary};
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
  return rates;
}

void print_paper_table(const std::string& title, const std::vector<SuccessColumn>& columns) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-16s", "Task");
  for (const auto& col : columns) std::printf("  %12s", col.name.c_str());
  std::printf("\n");
  for (std::size_t task = 0; task < eval::kAllTasks.size(); ++task) {
    std::printf("%-16s", std::string{eval::task_name(eval::kAllTasks[task])}.c_str());
    for (const auto& col : columns) std::printf("  %12.0f", col.rates[task]);
    std::printf("\n");
  }
}

void print_loss_series(const std::string& label, const TimeSeries& series) {
  std::printf("%s:\n", label.c_str());
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::printf("  t=%6.0fs  loss=%.4f\n", series.times[i], series.values[i]);
  }
}

}  // namespace lbchat::bench
