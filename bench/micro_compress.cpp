// Micro-benchmarks for model compression and the Eq. (7) machinery: top-k
// sparsification across compression ratios, phi-mapping construction, and the
// grid optimizer.
#include <benchmark/benchmark.h>

#include "core/compress_opt.h"
#include "coreset/coreset.h"
#include "nn/compress.h"
#include "nn/policy.h"
#include "sim/world.h"

namespace {

using namespace lbchat;

void BM_TopKSparsify(benchmark::State& state) {
  nn::DrivingPolicy model;
  const double psi = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::compress_for_psi(model.params(), psi));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(model.param_count()));
}
BENCHMARK(BM_TopKSparsify)->Arg(10)->Arg(25)->Arg(50)->Arg(100);

void BM_SparseDensify(benchmark::State& state) {
  nn::DrivingPolicy model;
  const auto sparse = nn::compress_for_psi(model.params(), 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse.densify());
  }
}
BENCHMARK(BM_SparseDensify);

void BM_PhiMappingBuild(benchmark::State& state) {
  sim::World world{sim::WorldConfig{}, 1, 7};
  data::WeightedDataset ds{data::kDefaultBevSpec};
  for (std::size_t f = 0; f < 400; ++f) {
    world.step(0.5);
    ds.add(world.collect_sample(0, f));
  }
  nn::DrivingPolicy model;
  Rng rng{3};
  coreset::CoresetConfig ccfg;
  ccfg.target_size = 150;
  const auto cs = coreset::build_layered_coreset(ds, model, ccfg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PhiMapping::build(model, cs, {}));
  }
}
BENCHMARK(BM_PhiMappingBuild);

void BM_OptimizeCompression(benchmark::State& state) {
  core::CompressionProblem p;
  p.loss_i_on_cj = 0.3;
  p.loss_j_on_ci = 0.25;
  p.phi_i = core::PhiMapping{{0.125, 0.25, 0.5, 0.75, 1.0}, {0.5, 0.4, 0.3, 0.25, 0.2}};
  p.phi_j = core::PhiMapping{{0.125, 0.25, 0.5, 0.75, 1.0}, {0.6, 0.45, 0.35, 0.3, 0.22}};
  p.model_bytes = 52.0 * 1024 * 1024;
  p.bandwidth_bps = 31e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize_compression(p));
  }
}
BENCHMARK(BM_OptimizeCompression);

}  // namespace

BENCHMARK_MAIN();
