// Table VII: sharing coresets only (SCO, §IV-G) — vehicles exchange coresets
// but never models. Success rates should come close to full LbChat.
#include "harness.h"

int main() {
  using namespace lbchat;
  std::vector<bench::SuccessColumn> columns;
  for (const bool wireless : {false, true}) {
    const auto cfg = bench::default_scenario(wireless);
    const auto run = bench::run_or_load(cfg, baselines::Approach::kSco);
    columns.push_back({std::string{wireless ? "SCO (W)" : "SCO (W/O)"},
                       bench::success_rates_or_load(cfg, baselines::Approach::kSco, run, 3)});
  }
  for (const bool wireless : {false, true}) {
    const auto cfg = bench::default_scenario(wireless);
    const auto run = bench::run_or_load(cfg, baselines::Approach::kLbChat);
    columns.push_back(
        {std::string{wireless ? "LbChat (W)" : "LbChat (W/O)"},
         bench::success_rates_or_load(cfg, baselines::Approach::kLbChat, run, 3)});
  }
  bench::print_paper_table(
      "=== Table VII: driving success rate with sharing coreset only (%) ===", columns);
  return 0;
}
