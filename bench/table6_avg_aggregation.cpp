// Table VI ablation: replace the coreset-based model aggregation of Eq. (8)
// with plain averaging.
#include "harness.h"

int main() {
  using namespace lbchat;
  std::vector<bench::SuccessColumn> columns;
  for (const bool wireless : {false, true}) {
    const auto cfg = bench::default_scenario(wireless);
    const auto run = bench::run_or_load(cfg, baselines::Approach::kLbChatAvgAgg);
    columns.push_back(
        {std::string{wireless ? "avg (W)" : "avg (W/O)"},
         bench::success_rates_or_load(cfg, baselines::Approach::kLbChatAvgAgg, run, 3)});
  }
  for (const bool wireless : {false, true}) {
    const auto cfg = bench::default_scenario(wireless);
    const auto run = bench::run_or_load(cfg, baselines::Approach::kLbChat);
    columns.push_back(
        {std::string{wireless ? "LbChat (W)" : "LbChat (W/O)"},
         bench::success_rates_or_load(cfg, baselines::Approach::kLbChat, run, 3)});
  }
  bench::print_paper_table(
      "=== Table VI: driving success rate with avg. aggregation (%) ===", columns);
  return 0;
}
