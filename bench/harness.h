// Shared campaign harness for the paper-reproduction benches.
//
// Every bench binary (one per table/figure) asks the harness for the runs it
// needs; results are cached on disk under .bench_cache keyed by a fingerprint
// of the full scenario configuration + approach, so `for b in build/bench/*`
// trains each (approach x configuration) exactly once and later binaries
// reuse the models. Online-evaluation results are cached the same way.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/factory.h"
#include "baselines/registry.h"
#include "common/stats.h"
#include "engine/fleet.h"
#include "engine/metrics.h"
#include "eval/online.h"

namespace lbchat::bench {

/// The bench-scale scenario shared by all experiments (the paper's setup
/// scaled to a single CPU core; see DESIGN.md for the mapping). The
/// LBCHAT_BENCH_SCALE env var (default 1.0) scales the training horizon.
[[nodiscard]] engine::ScenarioConfig default_scenario(bool wireless_loss);

/// The online-evaluation configuration matched to default_scenario.
[[nodiscard]] eval::EvalConfig default_eval_config();

/// Cacheable outcome of one training run.
struct CachedRun {
  TimeSeries loss_curve;
  /// Honest- / attacker-cohort eval-loss splits (empty unless the run had an
  /// adversary configured — see engine::RunMetrics).
  TimeSeries honest_loss_curve;
  TimeSeries attacker_loss_curve;
  engine::TransferStats transfers;
  std::vector<std::vector<float>> final_params;
  long train_steps = 0;
};

/// Deterministic fingerprint of a scenario (all fields) + strategy name +
/// non-default strategy options (registry-canonicalized; default or absent
/// options leave the key unchanged, so pre-registry cache entries survive).
[[nodiscard]] std::uint64_t run_fingerprint(const engine::ScenarioConfig& cfg,
                                            std::string_view strategy,
                                            const baselines::StrategyOptions& options = {});
/// Enum shim for the pre-registry bench binaries.
[[nodiscard]] std::uint64_t run_fingerprint(const engine::ScenarioConfig& cfg,
                                            baselines::Approach approach);

/// Run the campaign entry (or load it from .bench_cache). Prints a one-line
/// progress note to stderr when an actual run is required.
[[nodiscard]] CachedRun run_or_load(const engine::ScenarioConfig& cfg,
                                    std::string_view strategy,
                                    const baselines::StrategyOptions& options = {});
/// Enum shim for the pre-registry bench binaries.
[[nodiscard]] CachedRun run_or_load(const engine::ScenarioConfig& cfg,
                                    baselines::Approach approach);

/// Per-task driving success rates (percent) of an approach's final models:
/// the first `models_to_eval` vehicles' models are deployed on the testing
/// autopilot and their success rates averaged. Cached.
[[nodiscard]] std::array<double, 5> success_rates_or_load(const engine::ScenarioConfig& cfg,
                                                          baselines::Approach approach,
                                                          const CachedRun& run,
                                                          int models_to_eval = 5);

/// One column of a paper-style success-rate table (an approach/variant).
struct SuccessColumn {
  std::string name;
  std::array<double, 5> rates;  ///< percent, indexed by eval::DrivingTask
};

/// Print a table in the paper's layout: tasks as rows, approaches as columns.
void print_paper_table(const std::string& title, const std::vector<SuccessColumn>& columns);

/// Print a loss-vs-time series block (for the figure benches).
void print_loss_series(const std::string& label, const TimeSeries& series);

}  // namespace lbchat::bench
