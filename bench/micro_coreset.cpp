// Micro-benchmarks for the coreset substrate: Algorithm 1 construction cost
// across dataset sizes, coreset evaluation, and merge+reduce — the
// per-encounter costs the paper argues are small enough to run on-vehicle.
#include <benchmark/benchmark.h>

#include "coreset/coreset.h"
#include "data/dataset.h"
#include "nn/policy.h"
#include "sim/world.h"

namespace {

using namespace lbchat;

struct Fixture {
  sim::World world{sim::WorldConfig{}, 1, 7};
  data::WeightedDataset dataset{data::kDefaultBevSpec};
  nn::DrivingPolicy model;
  Rng rng{11};

  explicit Fixture(std::size_t frames) {
    for (std::size_t f = 0; f < frames; ++f) {
      world.step(0.5);
      dataset.add(world.collect_sample(0, f));
    }
  }
};

void BM_LayeredCoresetConstruction(benchmark::State& state) {
  Fixture fx{static_cast<std::size_t>(state.range(0))};
  coreset::CoresetConfig cfg;
  cfg.target_size = 150;
  for (auto _ : state) {
    auto c = coreset::build_layered_coreset(fx.dataset, fx.model, cfg, fx.rng);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LayeredCoresetConstruction)->Arg(200)->Arg(400)->Arg(800);

void BM_CoresetEvaluation(benchmark::State& state) {
  Fixture fx{400};
  coreset::CoresetConfig cfg;
  cfg.target_size = static_cast<std::size_t>(state.range(0));
  const auto c = coreset::build_layered_coreset(fx.dataset, fx.model, cfg, fx.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coreset::evaluate_on_coreset(fx.model, c));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoresetEvaluation)->Arg(15)->Arg(150);

void BM_CoresetMergeReduce(benchmark::State& state) {
  Fixture fx{400};
  coreset::CoresetConfig cfg;
  cfg.target_size = 150;
  Rng rng_a = fx.rng.fork("a");
  Rng rng_b = fx.rng.fork("b");
  const auto a = coreset::build_layered_coreset(fx.dataset, fx.model, cfg, rng_a);
  const auto b = coreset::build_layered_coreset(fx.dataset, fx.model, cfg, rng_b);
  for (auto _ : state) {
    auto merged = coreset::merge_coresets(a, b);
    auto reduced = coreset::reduce_coreset(merged, fx.model, 150, fx.rng);
    benchmark::DoNotOptimize(reduced);
  }
}
BENCHMARK(BM_CoresetMergeReduce);

}  // namespace

BENCHMARK_MAIN();
