// run_robustness_matrix: run the scenario × strategy robustness matrix and
// print one digest line per cell (the tests/goldens/robustness_matrix.golden
// format) to stdout, plus a human-readable summary table to stderr.
//
// Usage: run_robustness_matrix [OUT_FILE]
//
// With OUT_FILE the digest lines are also written there — pointing it at
// tests/goldens/robustness_matrix.golden regenerates the committed golden
// after an intentional behaviour change. CI diffs the stdout against the
// committed file.

#include <cstdio>
#include <string>
#include <vector>

#include "robustness_matrix.h"

int main(int argc, char** argv) {
  using namespace lbchat::robustness;
  std::string digests;
  std::vector<CellResult> cells;
  for (const MatrixScenario& sc : kMatrixScenarios) {
    for (const char* approach : kApproaches) {
      CellResult cell = run_matrix_cell(sc, approach);
      std::printf("%s\n", cell.digest.c_str());
      std::fflush(stdout);
      digests += cell.digest + "\n";
      cells.push_back(std::move(cell));
    }
  }

  std::fprintf(stderr, "\n%-12s %-8s %12s %12s %10s %8s %8s\n", "scenario", "approach",
               "final_loss", "honest_loss", "atk_share", "byz_tx", "skips");
  for (const CellResult& c : cells) {
    std::fprintf(stderr, "%-12s %-8s %12.6f %12.6f %10.4f %8d %8ld\n", c.scenario.c_str(),
                 c.approach.c_str(), c.final_loss, c.honest_final_loss, c.attacker_share,
                 c.byzantine_payloads, c.straggler_skips);
  }

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fwrite(digests.data(), 1, digests.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", argv[1]);
  }
  return 0;
}
