// trace_check: validate Chrome trace-event JSON files produced by the
// observability exporters (examples/lbchat_sim_cli --trace-out, or the bench
// harness with LBCHAT_TRACE=1). Used by CI as a smoke check that exported
// traces stay loadable in Perfetto / chrome://tracing.
//
// Usage: trace_check FILE [FILE...]
// Exit status: 0 if every file validates, 1 otherwise.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_check FILE [FILE...]\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::string body;
    if (!read_file(argv[i], body)) {
      std::fprintf(stderr, "%s: cannot read\n", argv[i]);
      ++failures;
      continue;
    }
    const std::string err = lbchat::obs::validate_chrome_trace(body);
    if (err.empty()) {
      std::printf("%s: ok (%zu bytes)\n", argv[i], body.size());
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], err.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
