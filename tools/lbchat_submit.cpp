// lbchat_submit: command-line client for the lbchat_served daemon.
//
// Usage:
//   lbchat_submit --socket PATH submit SPEC.json [--wait]
//   lbchat_submit --socket PATH status|result|cancel|release|wait ID
//   lbchat_submit --socket PATH preempt ID [--hold]
//   lbchat_submit --socket PATH jobs|stats|drain|shutdown
//
// Prints the daemon's JSON reply line verbatim; exits 0 only when the reply
// says ok:true (so shell scripts can gate on it).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/socket.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lbchat_submit --socket PATH COMMAND [ARGS]\n"
               "  submit SPEC.json [--wait]   submit a job spec file\n"
               "  status ID                   one job's status\n"
               "  wait ID                     block until the job finishes\n"
               "  result ID                   finished job's manifest + output dir\n"
               "  cancel ID                   cancel a job\n"
               "  preempt ID [--hold]         checkpoint + requeue (or hold) a job\n"
               "  release ID                  requeue a held job\n"
               "  jobs                        list all jobs\n"
               "  stats                       service counters\n"
               "  drain                       persist queued jobs, finish running ones\n"
               "  shutdown                    stop the daemon (it persists state)\n");
}

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok = out.empty() || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

int run_request(const std::string& socket_path, const std::string& request) {
  std::string error;
  const std::string reply = lbchat::svc::request_over_socket(socket_path, request, error);
  if (reply.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", reply.c_str());
  return reply.rfind("{\"ok\":true", 0) == 0 ? 0 : 1;
}

// The daemon bounds every wait (so one slow job cannot wedge the serve loop);
// blocking-until-finished lives here: re-poll until the state is terminal.
int wait_until_terminal(const std::string& socket_path, const std::string& id) {
  const std::string request = "{\"cmd\":\"wait\",\"id\":" + id + "}";
  for (;;) {
    std::string error;
    const std::string reply =
        lbchat::svc::request_over_socket(socket_path, request, error);
    if (reply.empty()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (reply.rfind("{\"ok\":true", 0) != 0 ||
        reply.find("\"state\":\"done\"") != std::string::npos ||
        reply.find("\"state\":\"cancelled\"") != std::string::npos ||
        reply.find("\"state\":\"failed\"") != std::string::npos) {
      std::printf("%s\n", reply.c_str());
      return reply.rfind("{\"ok\":true", 0) == 0 ? 0 : 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int i = 1;
  if (i + 1 < argc && std::strcmp(argv[i], "--socket") == 0) {
    socket_path = argv[i + 1];
    i += 2;
  }
  if (socket_path.empty() || i >= argc) {
    usage();
    return 2;
  }
  const std::string cmd = argv[i++];

  if (cmd == "submit") {
    if (i >= argc) {
      usage();
      return 2;
    }
    const char* spec_path = argv[i++];
    const bool wait = i < argc && std::strcmp(argv[i], "--wait") == 0;
    std::string spec;
    if (!read_file(spec_path, spec)) {
      std::fprintf(stderr, "cannot read %s\n", spec_path);
      return 1;
    }
    // The protocol is line-delimited; flatten the spec file onto one line.
    for (char& c : spec) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    std::string error;
    const std::string reply = lbchat::svc::request_over_socket(
        socket_path, "{\"cmd\":\"submit\",\"spec\":" + spec + "}", error);
    if (reply.empty()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("%s\n", reply.c_str());
    if (reply.rfind("{\"ok\":true", 0) != 0) return 1;
    if (!wait) return 0;
    const std::size_t idpos = reply.find("\"id\":");
    if (idpos == std::string::npos) return 1;
    const std::string id = std::to_string(std::atoll(reply.c_str() + idpos + 5));
    return wait_until_terminal(socket_path, id);
  }
  if (cmd == "status" || cmd == "wait" || cmd == "result" || cmd == "cancel" ||
      cmd == "release" || cmd == "preempt") {
    if (i >= argc) {
      usage();
      return 2;
    }
    const std::string id = argv[i++];
    if (cmd == "wait") return wait_until_terminal(socket_path, id);
    std::string req = "{\"cmd\":\"" + cmd + "\",\"id\":" + id;
    if (cmd == "preempt" && i < argc && std::strcmp(argv[i], "--hold") == 0) {
      req += ",\"hold\":true";
    }
    req += "}";
    return run_request(socket_path, req);
  }
  if (cmd == "jobs" || cmd == "stats" || cmd == "drain" || cmd == "shutdown") {
    return run_request(socket_path, "{\"cmd\":\"" + cmd + "\"}");
  }
  usage();
  return 2;
}
