// ckpt_check: inspect and validate a fleet checkpoint file.
//
// Usage: ckpt_check FILE...
//
// For each file: verifies the CRC32 frame envelope, the checkpoint version,
// and the section framing (engine::inspect_checkpoint — no ScenarioConfig
// needed), then prints the header and a per-section size breakdown. Exits
// nonzero if any file fails validation, so it doubles as a CI gate.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/checkpoint.h"

namespace {

bool read_file(const char* path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok = out.empty() || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

bool check(const char* path) {
  std::vector<std::uint8_t> bytes;
  if (!read_file(path, bytes)) {
    std::fprintf(stderr, "%s: cannot read\n", path);
    return false;
  }
  lbchat::engine::CkptInfo info;
  const auto st = lbchat::engine::inspect_checkpoint(bytes, info);
  if (st != lbchat::engine::CkptStatus::kOk) {
    std::fprintf(stderr, "%s: INVALID (%s)\n", path,
                 std::string{lbchat::engine::to_string(st)}.c_str());
    return false;
  }
  std::printf("%s: ok (%zu bytes)\n", path, bytes.size());
  std::printf("  version       %u\n", info.version);
  std::printf("  fingerprint   %016llx\n",
              static_cast<unsigned long long>(info.config_fingerprint));
  std::printf("  seed          %llu\n", static_cast<unsigned long long>(info.seed));
  std::printf("  vehicles      %u\n", info.num_vehicles);
  std::printf("  strategy      %s\n", info.strategy.c_str());
  std::printf("  sim time      %.3f s\n", info.time_s);
  for (const auto& s : info.sections) {
    std::printf("  section %-9s %10llu bytes\n",
                std::string{lbchat::engine::section_name(s.tag)}.c_str(),
                static_cast<unsigned long long>(s.bytes));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: ckpt_check FILE...\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    if (!check(argv[i])) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
