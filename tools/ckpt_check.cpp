// ckpt_check: inspect and validate a fleet checkpoint file.
//
// Usage: ckpt_check [--json] FILE...
//
// For each file: verifies the CRC32 frame envelope, the checkpoint version,
// and the section framing (engine::inspect_checkpoint — no ScenarioConfig
// needed), then prints the header and the section tag+length table with
// human-readable section names. With --json, prints one JSON object per file
// (the same rendering the fleet service's status endpoint embeds for
// preempted jobs). Exits nonzero if any file fails validation, so it doubles
// as a CI gate.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/checkpoint.h"

namespace {

bool read_file(const char* path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok = out.empty() || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

bool check(const char* path, bool json) {
  std::vector<std::uint8_t> bytes;
  if (!read_file(path, bytes)) {
    if (json) {
      std::printf("{\"file\":\"%s\",\"ok\":false,\"error\":\"cannot read\"}\n", path);
    } else {
      std::fprintf(stderr, "%s: cannot read\n", path);
    }
    return false;
  }
  lbchat::engine::CkptInfo info;
  const auto st = lbchat::engine::inspect_checkpoint(bytes, info);
  if (st != lbchat::engine::CkptStatus::kOk) {
    const std::string why{lbchat::engine::to_string(st)};
    if (json) {
      std::printf("{\"file\":\"%s\",\"ok\":false,\"error\":\"%s\"}\n", path, why.c_str());
    } else {
      std::fprintf(stderr, "%s: INVALID (%s)\n", path, why.c_str());
    }
    return false;
  }
  if (json) {
    std::printf("{\"file\":\"%s\",\"ok\":true,\"size_bytes\":%zu,\"checkpoint\":%s}\n",
                path, bytes.size(), lbchat::engine::ckpt_info_json(info).c_str());
    return true;
  }
  std::printf("%s: ok (%zu bytes)\n", path, bytes.size());
  std::printf("  version       %u\n", info.version);
  std::printf("  fingerprint   %016llx\n",
              static_cast<unsigned long long>(info.config_fingerprint));
  std::printf("  seed          %llu\n", static_cast<unsigned long long>(info.seed));
  std::printf("  vehicles      %u\n", info.num_vehicles);
  std::printf("  strategy      %s\n", info.strategy.c_str());
  std::printf("  sim time      %.3f s\n", info.time_s);
  std::printf("  tag  section    %12s\n", "bytes");
  for (const auto& s : info.sections) {
    std::printf("  %3u  %-9s %12llu\n", s.tag,
                std::string{lbchat::engine::section_name(s.tag)}.c_str(),
                static_cast<unsigned long long>(s.bytes));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "--json") == 0) {
    json = true;
    first = 2;
  }
  if (first >= argc) {
    std::fprintf(stderr, "usage: ckpt_check [--json] FILE...\n");
    return 2;
  }
  int failures = 0;
  for (int i = first; i < argc; ++i) {
    if (!check(argv[i], json)) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
