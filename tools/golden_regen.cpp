// golden_regen: regenerate the committed golden-scenario digests.
//
// Usage: golden_regen [OUT_DIR]   (default: tests/goldens relative to cwd,
//                                  or the baked-in source path if it exists)
//
// Runs every scenario in kGoldenScenarios order — the same order and process
// layout as tests/golden_test.cpp, which matters because metric definitions
// accumulate per process — and writes one <name>.golden file each.

#include <cstdio>
#include <string>

#include "golden_scenarios.h"

namespace {

bool write_text(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

bool dir_exists(const std::string& path) {
  std::FILE* probe = std::fopen((path + "/.probe").c_str(), "wb");
  if (probe == nullptr) return false;
  std::fclose(probe);
  std::remove((path + "/.probe").c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbchat::golden;
  std::string dir;
  if (argc > 1) {
    dir = argv[1];
  } else if (dir_exists(LBCHAT_GOLDEN_DIR)) {
    dir = LBCHAT_GOLDEN_DIR;  // source tree available: update in place
  } else {
    dir = "tests/goldens";
  }
  for (const auto& sc : kGoldenScenarios) {
    const std::string digest = run_golden_scenario(sc);
    const std::string path = dir + "/" + sc.name + ".golden";
    if (!write_text(path, digest)) return 1;
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
