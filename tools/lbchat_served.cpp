// lbchat_served: the fleet-evaluation daemon (DESIGN.md §13).
//
// Listens on a unix-domain socket for line-delimited JSON requests
// (svc/protocol.h), runs submitted scenario jobs on a checkpoint-preemptible
// worker pool, caches results by config fingerprint, and serves payloads
// from per-job output directories.
//
// Usage:
//   lbchat_served --socket PATH [--root DIR] [--workers N] [--epoch S]
//                 [--queue-cap N] [--no-cache]
//
// SIGINT/SIGTERM trigger the same path as a protocol "shutdown": the socket
// loop exits and the service persists every unfinished job (spec +
// checkpoint) to <root>/state/, so the next daemon over the same root
// resumes them.

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/socket.h"

namespace {

std::atomic<bool> g_signalled{false};

void on_signal(int) { g_signalled.store(true); }

void usage() {
  std::fprintf(stderr,
               "usage: lbchat_served --socket PATH [--root DIR] [--workers N]\n"
               "                     [--epoch S] [--queue-cap N] [--no-cache]\n"
               "  --socket PATH   unix-domain socket to listen on (required)\n"
               "  --root DIR      jobs/cache/state directory (default .lbchat_svc)\n"
               "  --workers N     worker threads (default 2)\n"
               "  --epoch S       sim seconds per checkpoint slice (default 60)\n"
               "  --queue-cap N   max queued jobs before backpressure (default 64)\n"
               "  --no-cache      disable the fingerprint result cache\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbchat;

  std::string socket_path;
  svc::ServiceOptions opts;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = need_value("--socket");
    } else if (std::strcmp(argv[i], "--root") == 0) {
      opts.root = need_value("--root");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opts.workers = std::atoi(need_value("--workers"));
    } else if (std::strcmp(argv[i], "--epoch") == 0) {
      opts.epoch_s = std::atof(need_value("--epoch"));
    } else if (std::strcmp(argv[i], "--queue-cap") == 0) {
      opts.queue_capacity = static_cast<std::size_t>(std::atoi(need_value("--queue-cap")));
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      opts.cache_enabled = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage();
      return 2;
    }
  }
  if (socket_path.empty() || opts.workers < 1 || opts.epoch_s <= 0.0 ||
      opts.queue_capacity < 1) {
    usage();
    return 2;
  }

  svc::SocketServer server;
  std::string error;
  if (!server.listen(socket_path, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  // A client that vanishes before reading its reply must not kill the daemon:
  // socket writes use MSG_NOSIGNAL, and SIG_IGN covers everything else.
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ign, nullptr);

  svc::FleetService service{opts};
  std::printf("lbchat_served: %d workers, epoch %.1fs, root %s, socket %s\n", opts.workers,
              opts.epoch_s, opts.root.string().c_str(), socket_path.c_str());
  const svc::ServiceStats boot = service.stats();
  if (boot.recovered > 0) {
    std::printf("lbchat_served: recovered %llu persisted job(s)\n",
                static_cast<unsigned long long>(boot.recovered));
  }
  std::fflush(stdout);

  // The poll loop only checks its stop flag between requests; a watcher
  // thread forwards process signals to it.
  std::thread watcher{[&server] {
    while (!g_signalled.load()) {
      struct timespec ts{0, 50'000'000};
      ::nanosleep(&ts, nullptr);
    }
    server.stop();
  }};

  server.serve([&service](const std::string& line) {
    const svc::ProtocolReply reply = svc::handle_request(service, line);
    return svc::ServerReply{reply.line, reply.shutdown};
  });

  g_signalled.store(true);  // stop the watcher when shutdown came via protocol
  watcher.join();

  std::printf("lbchat_served: shutting down, persisting unfinished jobs\n");
  std::fflush(stdout);
  service.shutdown(/*persist=*/true);
  return 0;
}
