#include "baselines/dyn_thresh.h"

#include <cmath>
#include <span>
#include <stdexcept>

#include "common/bytes.h"

namespace lbchat::baselines {

using engine::FleetSim;

namespace {

double rms_divergence(std::span<const float> params, const std::vector<float>& ref) {
  double acc = 0.0;
  for (std::size_t k = 0; k < params.size(); ++k) {
    const double d = static_cast<double>(params[k]) - static_cast<double>(ref[k]);
    acc += d * d;
  }
  return params.empty() ? 0.0 : std::sqrt(acc / static_cast<double>(params.size()));
}

}  // namespace

void DynThreshStrategy::setup(FleetSim& sim) {
  const auto n = static_cast<std::size_t>(sim.num_vehicles());
  refs_.assign(n, {});
  for (std::size_t v = 0; v < n; ++v) {
    const auto p = sim.node(static_cast<int>(v)).model.params();
    refs_[v].assign(p.begin(), p.end());
  }
  div_.assign(n, 0.0);
  dirty_.assign(n, 0);
}

void DynThreshStrategy::local_train(FleetSim& sim, int v) {
  sim.default_local_train(v);
  dirty_[static_cast<std::size_t>(v)] = 1;
}

void DynThreshStrategy::on_tick(FleetSim& sim) {
  // Sequential over ascending ids, like the other gossip strategies, so the
  // initiate order (and thus every downstream RNG draw) is deterministic.
  for (int a = 0; a < sim.num_vehicles(); ++a) {
    if (!sim.is_idle(a)) continue;
    const auto ia = static_cast<std::size_t>(a);
    if (dirty_[ia] != 0) {
      div_[ia] = rms_divergence(sim.node(a).model.params(), refs_[ia]);
      dirty_[ia] = 0;
    }
    // The dynamic threshold: a vehicle inside the bound spends no bytes.
    if (div_[ia] <= opts_.divergence_bound) continue;
    int best = -1;
    double best_d = 1e18;
    for (const int b : sim.neighbors_in_range(a)) {
      if (!sim.is_idle(b) || !sim.cooldown_passed(a, b)) continue;
      const double d = sim.pair_distance(a, b);
      if (d < best_d) {
        best_d = d;
        best = b;
      }
    }
    if (best >= 0) start_exchange(sim, a, best);
  }
}

void DynThreshStrategy::aggregate(FleetSim& sim, int receiver, int sender,
                                  const std::vector<float>& peer_params,
                                  const std::vector<double>& sender_comp) {
  (void)sender_comp;
  auto params = sim.node(receiver).model.params();
  const auto a = static_cast<float>(1.0 - opts_.pair_weight);
  const auto b = static_cast<float>(opts_.pair_weight);
  for (std::size_t k = 0; k < params.size(); ++k) {
    params[k] = a * params[k] + b * peer_params[k];
  }
  // Resync: the merged model becomes the new reference, so the receiver goes
  // quiet until local training drifts it past the bound again.
  auto& ref = refs_[static_cast<std::size_t>(receiver)];
  ref.assign(params.begin(), params.end());
  div_[static_cast<std::size_t>(receiver)] = 0.0;
  dirty_[static_cast<std::size_t>(receiver)] = 0;
  sim.note_aggregate(receiver, sender, opts_.pair_weight);
}

void DynThreshStrategy::save_state(const FleetSim& sim, ByteWriter& w) const {
  (void)sim;
  w.write_f64(opts_.divergence_bound);
  w.write_f64(opts_.pair_weight);
  w.write_u32(static_cast<std::uint32_t>(refs_.size()));
  for (const auto& ref : refs_) w.write_f32_vec(ref);
  w.write_f64_vec(div_);
  w.write_u32(static_cast<std::uint32_t>(dirty_.size()));
  for (const char d : dirty_) w.write_u8(static_cast<std::uint8_t>(d));
}

void DynThreshStrategy::load_state(FleetSim& sim, ByteReader& r) {
  if (r.read_f64() != opts_.divergence_bound || r.read_f64() != opts_.pair_weight) {
    throw std::runtime_error{"DynThresh::load_state: options mismatch"};
  }
  const auto n = r.read_u32();
  if (n != static_cast<std::uint32_t>(sim.num_vehicles())) {
    throw std::runtime_error{"DynThresh::load_state: vehicle count mismatch"};
  }
  const std::size_t dim = sim.node(0).model.param_count();
  refs_.assign(n, {});
  for (auto& ref : refs_) {
    ref = r.read_f32_vec();
    if (ref.size() != dim) {
      throw std::runtime_error{"DynThresh::load_state: reference size mismatch"};
    }
  }
  div_ = r.read_f64_vec();
  if (div_.size() != n) throw std::runtime_error{"DynThresh::load_state: divergence size mismatch"};
  const auto nd = r.read_u32();
  if (nd != n) throw std::runtime_error{"DynThresh::load_state: dirty size mismatch"};
  dirty_.assign(nd, 0);
  for (auto& d : dirty_) d = static_cast<char>(r.read_u8());
}

}  // namespace lbchat::baselines
