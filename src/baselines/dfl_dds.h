// DFL-DDS [30] — synchronous fully-decentralized learning with data-source
// diversification.
//
// Vehicles operate in global rounds of length T_B (the paper aligns the round
// length with LbChat's time budget). At each round boundary, in-range idle
// vehicles pair up and exchange models (equal fit-to-window compression). A
// vehicle tracks a "data source composition" vector describing how much each
// peer's data has contributed to its model, and tunes its aggregation weight
// to diversify the sources — implemented as an entropy-maximizing line search
// over the mixing coefficient, the spirit of the original's KL-based tuning.
#pragma once

#include <vector>

#include "baselines/gossip_base.h"

namespace lbchat::baselines {

struct DflDdsOptions {
  double alpha_min = 0.1;  ///< search range for the peer mixing weight
  double alpha_max = 0.6;
  int alpha_steps = 11;
};

class DflDdsStrategy final : public GossipBaseStrategy {
 public:
  explicit DflDdsStrategy(DflDdsOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string_view name() const override { return "DFL-DDS"; }
  void setup(engine::FleetSim& sim) override;
  void on_tick(engine::FleetSim& sim) override;

  [[nodiscard]] const std::vector<double>& composition(int v) const {
    return compositions_[static_cast<std::size_t>(v)];
  }

  // Checkpoint hooks: composition vectors + the round schedule.
  void save_state(const engine::FleetSim& sim, ByteWriter& w) const override;
  void load_state(engine::FleetSim& sim, ByteReader& r) override;

 protected:
  void aggregate(engine::FleetSim& sim, int receiver, int sender,
                 const std::vector<float>& peer_params,
                 const std::vector<double>& sender_comp) override;
  [[nodiscard]] std::vector<double> composition_of(engine::FleetSim& sim, int v) override;

 private:
  DflDdsOptions opts_;
  std::vector<std::vector<double>> compositions_;
  double next_round_s_ = 0.0;
};

}  // namespace lbchat::baselines
