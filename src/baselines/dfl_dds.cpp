#include "baselines/dfl_dds.h"

#include <algorithm>
#include <stdexcept>

#include "common/bytes.h"

#include "common/stats.h"

namespace lbchat::baselines {

using engine::FleetSim;

void DflDdsStrategy::setup(FleetSim& sim) {
  const auto n = static_cast<std::size_t>(sim.num_vehicles());
  compositions_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t v = 0; v < n; ++v) compositions_[v][v] = 1.0;
  next_round_s_ = sim.config().time_budget_s;
}

std::vector<double> DflDdsStrategy::composition_of(FleetSim&, int v) {
  return compositions_[static_cast<std::size_t>(v)];
}

void DflDdsStrategy::on_tick(FleetSim& sim) {
  if (sim.time() < next_round_s_) return;
  next_round_s_ += sim.config().time_budget_s;

  // Round boundary: greedily match idle in-range pairs, closest first.
  struct Cand {
    double d;
    int a;
    int b;
  };
  std::vector<Cand> cands;
  for (int a = 0; a < sim.num_vehicles(); ++a) {
    if (!sim.is_idle(a)) continue;
    // Neighbors come back ascending, so `b <= a` keeps the old a<b pair
    // enumeration (each pair considered once) in the same order.
    for (const int b : sim.neighbors_in_range(a)) {
      if (b <= a || !sim.is_idle(b)) continue;
      cands.push_back({sim.pair_distance(a, b), a, b});
    }
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) { return x.d < y.d; });
  int exchanges = 0;
  for (const Cand& c : cands) {
    if (!sim.is_idle(c.a) || !sim.is_idle(c.b)) continue;
    if (start_exchange(sim, c.a, c.b)) ++exchanges;
  }
  obs::emit(sim.time(), obs::EventKind::kRound, -1, -1, exchanges);
}

void DflDdsStrategy::aggregate(FleetSim& sim, int receiver, int sender,
                               const std::vector<float>& peer_params,
                               const std::vector<double>& sender_comp) {
  auto& q_self = compositions_[static_cast<std::size_t>(receiver)];
  // Line-search the peer mixing weight alpha for maximal source diversity
  // (entropy of the blended composition vector).
  double best_alpha = opts_.alpha_min;
  double best_h = -1.0;
  std::vector<double> blend(q_self.size());
  for (int step = 0; step < opts_.alpha_steps; ++step) {
    const double alpha =
        opts_.alpha_min + (opts_.alpha_max - opts_.alpha_min) *
                              (opts_.alpha_steps > 1
                                   ? static_cast<double>(step) / (opts_.alpha_steps - 1)
                                   : 0.0);
    for (std::size_t k = 0; k < blend.size(); ++k) {
      blend[k] = (1.0 - alpha) * q_self[k] +
                 alpha * (k < sender_comp.size() ? sender_comp[k] : 0.0);
    }
    const double h = entropy(blend);
    if (h > best_h) {
      best_h = h;
      best_alpha = alpha;
    }
  }

  auto params = sim.node(receiver).model.params();
  const auto a = static_cast<float>(1.0 - best_alpha);
  const auto b = static_cast<float>(best_alpha);
  for (std::size_t k = 0; k < params.size(); ++k) {
    params[k] = a * params[k] + b * peer_params[k];
  }
  for (std::size_t k = 0; k < q_self.size(); ++k) {
    q_self[k] = (1.0 - best_alpha) * q_self[k] +
                best_alpha * (k < sender_comp.size() ? sender_comp[k] : 0.0);
  }
  sim.note_aggregate(receiver, sender, best_alpha);
}

void DflDdsStrategy::save_state(const FleetSim& sim, ByteWriter& w) const {
  (void)sim;
  w.write_u32(static_cast<std::uint32_t>(compositions_.size()));
  for (const auto& row : compositions_) w.write_f64_vec(row);
  w.write_f64(next_round_s_);
}

void DflDdsStrategy::load_state(FleetSim& sim, ByteReader& r) {
  const auto n = r.read_u32();
  if (n != static_cast<std::uint32_t>(sim.num_vehicles())) {
    throw std::runtime_error{"DFL-DDS::load_state: vehicle count mismatch"};
  }
  compositions_.assign(n, {});
  for (auto& row : compositions_) {
    row = r.read_f64_vec();
    if (row.size() != n) throw std::runtime_error{"DFL-DDS::load_state: row length mismatch"};
  }
  next_round_s_ = r.read_f64();
}

}  // namespace lbchat::baselines
