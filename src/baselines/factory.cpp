#include "baselines/factory.h"

#include <stdexcept>
#include <string>

#include "baselines/registry.h"

namespace lbchat::baselines {

std::unique_ptr<engine::Strategy> make_strategy(Approach approach) {
  return registry().make(approach_name(approach));
}

std::string_view approach_name(Approach approach) {
  switch (approach) {
    case Approach::kProxSkip: return "ProxSkip";
    case Approach::kRsuL: return "RSU-L";
    case Approach::kDflDds: return "DFL-DDS";
    case Approach::kDp: return "DP";
    case Approach::kLbChat: return "LbChat";
    case Approach::kSco: return "SCO";
    case Approach::kLbChatEqualComp: return "LbChat(equal-comp)";
    case Approach::kLbChatAvgAgg: return "LbChat(avg-agg)";
  }
  return "?";
}

Approach approach_from_name(std::string_view name) {
  for (const Approach a : kAllApproaches) {
    if (approach_name(a) == name) return a;
  }
  throw std::invalid_argument{"approach_from_name: unknown approach '" + std::string{name} +
                              "'"};
}

}  // namespace lbchat::baselines
