#include "baselines/factory.h"

#include <stdexcept>
#include <string>

#include "baselines/dfl_dds.h"
#include "baselines/dp.h"
#include "baselines/proxskip.h"
#include "baselines/rsul.h"
#include "core/lbchat.h"

namespace lbchat::baselines {

std::unique_ptr<engine::Strategy> make_strategy(Approach approach) {
  switch (approach) {
    case Approach::kProxSkip:
      return std::make_unique<ProxSkipStrategy>();
    case Approach::kRsuL:
      return std::make_unique<RsuStrategy>();
    case Approach::kDflDds:
      return std::make_unique<DflDdsStrategy>();
    case Approach::kDp:
      return std::make_unique<DpStrategy>();
    case Approach::kLbChat:
      return std::make_unique<core::LbChatStrategy>();
    case Approach::kSco: {
      core::LbChatOptions o;
      o.share_model = false;
      return std::make_unique<core::LbChatStrategy>(o);
    }
    case Approach::kLbChatEqualComp: {
      core::LbChatOptions o;
      o.adaptive_compression = false;
      return std::make_unique<core::LbChatStrategy>(o);
    }
    case Approach::kLbChatAvgAgg: {
      core::LbChatOptions o;
      o.coreset_weighted_aggregation = false;
      return std::make_unique<core::LbChatStrategy>(o);
    }
  }
  throw std::invalid_argument{"make_strategy: unknown approach"};
}

std::string_view approach_name(Approach approach) {
  switch (approach) {
    case Approach::kProxSkip: return "ProxSkip";
    case Approach::kRsuL: return "RSU-L";
    case Approach::kDflDds: return "DFL-DDS";
    case Approach::kDp: return "DP";
    case Approach::kLbChat: return "LbChat";
    case Approach::kSco: return "SCO";
    case Approach::kLbChatEqualComp: return "LbChat(equal-comp)";
    case Approach::kLbChatAvgAgg: return "LbChat(avg-agg)";
  }
  return "?";
}

Approach approach_from_name(std::string_view name) {
  for (const Approach a :
       {Approach::kProxSkip, Approach::kRsuL, Approach::kDflDds, Approach::kDp,
        Approach::kLbChat, Approach::kSco, Approach::kLbChatEqualComp,
        Approach::kLbChatAvgAgg}) {
    if (approach_name(a) == name) return a;
  }
  throw std::invalid_argument{"approach_from_name: unknown approach '" + std::string{name} +
                              "'"};
}

}  // namespace lbchat::baselines
