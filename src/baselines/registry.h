// String-keyed strategy registry: the open successor of the closed
// baselines::Approach enum factory.
//
// Every collaborative-training strategy — the paper's approaches, the LbChat
// ablations, and the communication-efficiency protocols from related work —
// registers under its table name together with a factory and an option
// schema. Consumers (the CLI, the fleet service's JobSpec, the bench
// harness) construct strategies by name with a StrategyOptions bag; unknown
// names and unknown option keys are hard errors, mirroring the JobSpec
// "typo'd knob must not silently run the default" policy.
//
// The registry is also the single source of truth for the name list:
// registration rejects empty and duplicate names, and the deprecated
// make_strategy(Approach) shim (baselines/factory.h) delegates here.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fingerprint.h"
#include "engine/fleet.h"

namespace lbchat::baselines {

/// One tunable a strategy exposes through the registry.
struct OptionSpec {
  std::string name;
  double default_value = 0.0;
  std::string description;
};

/// A flat key -> value bag of per-strategy tunables, kept sorted by key so
/// iteration (and everything derived from it, fingerprints included) is
/// deterministic regardless of insertion order. Values are doubles — every
/// current tunable is numeric; booleans travel as 0/1.
class StrategyOptions {
 public:
  /// Insert or overwrite.
  void set(std::string_view key, double value);
  [[nodiscard]] bool contains(std::string_view key) const;
  /// The stored value, or `fallback` when the key was never set.
  [[nodiscard]] double get_or(std::string_view key, double fallback) const;
  [[nodiscard]] bool empty() const { return kv_.empty(); }
  [[nodiscard]] std::size_t size() const { return kv_.size(); }

  struct Kv {
    std::string key;
    double value = 0.0;
  };
  /// Sorted ascending by key.
  [[nodiscard]] const std::vector<Kv>& entries() const { return kv_; }

 private:
  std::vector<Kv> kv_;
};

class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<engine::Strategy>(const StrategyOptions&)>;

  /// Register `name`. Throws std::logic_error on an empty name, a duplicate
  /// name, or a schema with duplicate/empty option names — registration is
  /// the uniqueness gate that the old hand-maintained initializer list never
  /// had.
  void register_strategy(std::string name, Factory factory,
                         std::vector<OptionSpec> schema = {});

  /// Construct a strategy by name. Throws std::invalid_argument on an
  /// unknown name or an option key absent from the strategy's schema.
  [[nodiscard]] std::unique_ptr<engine::Strategy> make(
      std::string_view name, const StrategyOptions& options = {}) const;

  /// Registered names, in registration order (the paper-table order for the
  /// built-ins).
  [[nodiscard]] std::vector<std::string> list() const;
  [[nodiscard]] bool contains(std::string_view name) const;

  /// The option schema of a registered strategy (empty for strategies
  /// without tunables). Throws std::invalid_argument on an unknown name.
  [[nodiscard]] const std::vector<OptionSpec>& option_schema(std::string_view name) const;

  /// Schema-validated canonical view of `options` for cache keys: sorted by
  /// key, with entries equal to the schema default dropped — so a strategy
  /// explicitly configured to its defaults fingerprints identically to one
  /// whose options were never mentioned (common/fingerprint.h tail
  /// contract). Throws std::invalid_argument like make().
  [[nodiscard]] std::vector<StrategyOptionKv> fingerprint_options(
      std::string_view name, const StrategyOptions& options) const;

 private:
  struct Entry {
    std::string name;
    Factory factory;
    std::vector<OptionSpec> schema;
  };
  [[nodiscard]] const Entry& entry(std::string_view name) const;

  std::vector<Entry> entries_;
};

/// The process-wide registry, pre-populated with every built-in strategy:
/// ProxSkip, RSU-L, DFL-DDS, DP, LbChat, SCO, the two LbChat ablations,
/// DynThresh, and SimGossip.
[[nodiscard]] StrategyRegistry& registry();

}  // namespace lbchat::baselines
