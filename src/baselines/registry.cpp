#include "baselines/registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "baselines/dfl_dds.h"
#include "baselines/dp.h"
#include "baselines/dyn_thresh.h"
#include "baselines/proxskip.h"
#include "baselines/rsul.h"
#include "baselines/sim_gossip.h"
#include "core/lbchat.h"

namespace lbchat::baselines {

void StrategyOptions::set(std::string_view key, double value) {
  const auto it = std::lower_bound(
      kv_.begin(), kv_.end(), key,
      [](const Kv& kv, std::string_view k) { return kv.key < k; });
  if (it != kv_.end() && it->key == key) {
    it->value = value;
  } else {
    kv_.insert(it, Kv{std::string{key}, value});
  }
}

bool StrategyOptions::contains(std::string_view key) const {
  const auto it = std::lower_bound(
      kv_.begin(), kv_.end(), key,
      [](const Kv& kv, std::string_view k) { return kv.key < k; });
  return it != kv_.end() && it->key == key;
}

double StrategyOptions::get_or(std::string_view key, double fallback) const {
  const auto it = std::lower_bound(
      kv_.begin(), kv_.end(), key,
      [](const Kv& kv, std::string_view k) { return kv.key < k; });
  return it != kv_.end() && it->key == key ? it->value : fallback;
}

void StrategyRegistry::register_strategy(std::string name, Factory factory,
                                         std::vector<OptionSpec> schema) {
  if (name.empty()) {
    throw std::logic_error{"register_strategy: empty strategy name"};
  }
  if (!factory) {
    throw std::logic_error{"register_strategy: null factory for '" + name + "'"};
  }
  for (const Entry& e : entries_) {
    if (e.name == name) {
      throw std::logic_error{"register_strategy: duplicate strategy name '" + name + "'"};
    }
  }
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name.empty()) {
      throw std::logic_error{"register_strategy: empty option name for '" + name + "'"};
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (schema[j].name == schema[i].name) {
        throw std::logic_error{"register_strategy: duplicate option '" + schema[i].name +
                               "' for '" + name + "'"};
      }
    }
  }
  entries_.push_back(Entry{std::move(name), std::move(factory), std::move(schema)});
}

const StrategyRegistry::Entry& StrategyRegistry::entry(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument{"strategy registry: unknown strategy '" + std::string{name} +
                              "'"};
}

std::unique_ptr<engine::Strategy> StrategyRegistry::make(
    std::string_view name, const StrategyOptions& options) const {
  const Entry& e = entry(name);
  for (const auto& kv : options.entries()) {
    const bool known = std::any_of(e.schema.begin(), e.schema.end(),
                                   [&](const OptionSpec& s) { return s.name == kv.key; });
    if (!known) {
      throw std::invalid_argument{"strategy '" + e.name + "' has no option '" + kv.key +
                                  "'"};
    }
  }
  return e.factory(options);
}

std::vector<std::string> StrategyRegistry::list() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

bool StrategyRegistry::contains(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.name == name; });
}

const std::vector<OptionSpec>& StrategyRegistry::option_schema(std::string_view name) const {
  return entry(name).schema;
}

std::vector<StrategyOptionKv> StrategyRegistry::fingerprint_options(
    std::string_view name, const StrategyOptions& options) const {
  const Entry& e = entry(name);
  std::vector<StrategyOptionKv> out;
  for (const auto& kv : options.entries()) {
    const auto it = std::find_if(e.schema.begin(), e.schema.end(),
                                 [&](const OptionSpec& s) { return s.name == kv.key; });
    if (it == e.schema.end()) {
      throw std::invalid_argument{"strategy '" + e.name + "' has no option '" + kv.key +
                                  "'"};
    }
    // Defaults are dropped so an explicitly-default run keys identically to
    // one that never mentioned the option (fingerprint tail contract).
    if (kv.value != it->default_value) {
      out.push_back(StrategyOptionKv{kv.key, kv.value});
    }
  }
  return out;
}

namespace {

StrategyRegistry build_registry() {
  StrategyRegistry reg;
  reg.register_strategy(
      "ProxSkip",
      [](const StrategyOptions& o) -> std::unique_ptr<engine::Strategy> {
        ProxSkipOptions opts;
        opts.comm_probability = o.get_or("comm_probability", opts.comm_probability);
        opts.variate_scale = o.get_or("variate_scale", opts.variate_scale);
        return std::make_unique<ProxSkipStrategy>(opts);
      },
      {{"comm_probability", 0.2, "probability a round synchronizes"},
       {"variate_scale", 0.0, "control-variate strength (0 = off)"}});
  reg.register_strategy("RSU-L", [](const StrategyOptions&) -> std::unique_ptr<engine::Strategy> {
    return std::make_unique<RsuStrategy>();
  });
  reg.register_strategy(
      "DFL-DDS",
      [](const StrategyOptions& o) -> std::unique_ptr<engine::Strategy> {
        DflDdsOptions opts;
        opts.alpha_min = o.get_or("alpha_min", opts.alpha_min);
        opts.alpha_max = o.get_or("alpha_max", opts.alpha_max);
        opts.alpha_steps =
            static_cast<int>(o.get_or("alpha_steps", static_cast<double>(opts.alpha_steps)));
        return std::make_unique<DflDdsStrategy>(opts);
      },
      {{"alpha_min", 0.1, "mixing-weight search range lower bound"},
       {"alpha_max", 0.6, "mixing-weight search range upper bound"},
       {"alpha_steps", 11.0, "line-search resolution"}});
  reg.register_strategy("DP", [](const StrategyOptions&) -> std::unique_ptr<engine::Strategy> {
    return std::make_unique<DpStrategy>();
  });
  reg.register_strategy(
      "LbChat",
      [](const StrategyOptions& o) -> std::unique_ptr<engine::Strategy> {
        core::LbChatOptions opts;
        opts.eval_cap =
            static_cast<std::size_t>(o.get_or("eval_cap", static_cast<double>(opts.eval_cap)));
        return std::make_unique<core::LbChatStrategy>(opts);
      },
      {{"eval_cap", 64.0, "in-chat coreset evaluation cap"}});
  reg.register_strategy("SCO", [](const StrategyOptions&) -> std::unique_ptr<engine::Strategy> {
    core::LbChatOptions opts;
    opts.share_model = false;
    return std::make_unique<core::LbChatStrategy>(opts);
  });
  reg.register_strategy(
      "LbChat(equal-comp)",
      [](const StrategyOptions&) -> std::unique_ptr<engine::Strategy> {
        core::LbChatOptions opts;
        opts.adaptive_compression = false;
        return std::make_unique<core::LbChatStrategy>(opts);
      });
  reg.register_strategy(
      "LbChat(avg-agg)", [](const StrategyOptions&) -> std::unique_ptr<engine::Strategy> {
        core::LbChatOptions opts;
        opts.coreset_weighted_aggregation = false;
        return std::make_unique<core::LbChatStrategy>(opts);
      });
  reg.register_strategy(
      "DynThresh",
      [](const StrategyOptions& o) -> std::unique_ptr<engine::Strategy> {
        DynThreshOptions opts;
        opts.divergence_bound = o.get_or("divergence_bound", opts.divergence_bound);
        opts.pair_weight = o.get_or("pair_weight", opts.pair_weight);
        return std::make_unique<DynThreshStrategy>(opts);
      },
      {{"divergence_bound", 1.5e-2, "RMS divergence from reference that triggers a chat"},
       {"pair_weight", 0.5, "blend weight on the delivered peer model"}});
  reg.register_strategy(
      "SimGossip",
      [](const StrategyOptions& o) -> std::unique_ptr<engine::Strategy> {
        SimGossipOptions opts;
        opts.temperature = o.get_or("temperature", opts.temperature);
        return std::make_unique<SimGossipStrategy>(opts);
      },
      {{"temperature", 0.1, "softness of the similarity-to-weight map"}});
  return reg;
}

}  // namespace

StrategyRegistry& registry() {
  static StrategyRegistry reg = build_registry();
  return reg;
}

}  // namespace lbchat::baselines
