#include "baselines/rsul.h"

#include <algorithm>
#include <stdexcept>

#include "common/bytes.h"
#include <limits>

namespace lbchat::baselines {

using engine::FleetSim;

void RsuStrategy::setup(FleetSim& sim) {
  if (opts_.range_m <= 0.0) opts_.range_m = sim.config().radio.max_range_m;
  // Place RSUs at high-degree (busy) intersections, greedily spread apart.
  const auto& map = sim.world().map();
  std::vector<int> candidates;
  for (std::size_t i = 0; i < map.nodes().size(); ++i) {
    if (map.nodes()[i].is_intersection()) candidates.push_back(static_cast<int>(i));
  }
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    return map.nodes()[static_cast<std::size_t>(a)].neighbors.size() >
           map.nodes()[static_cast<std::size_t>(b)].neighbors.size();
  });
  positions_.clear();
  for (const int c : candidates) {
    if (static_cast<int>(positions_.size()) >= opts_.num_rsus) break;
    const Vec2 p = map.nodes()[static_cast<std::size_t>(c)].pos;
    bool far_enough = true;
    for (const Vec2& q : positions_) {
      if (distance(p, q) < opts_.range_m * 0.8) {
        far_enough = false;
        break;
      }
    }
    if (far_enough) positions_.push_back(p);
  }
  while (static_cast<int>(positions_.size()) < opts_.num_rsus && !candidates.empty()) {
    positions_.push_back(
        map.nodes()[static_cast<std::size_t>(candidates.front())].pos);
  }

  const auto params = sim.node(0).model.params();
  rsu_models_.assign(positions_.size(), std::vector<float>(params.begin(), params.end()));
  last_visit_.assign(static_cast<std::size_t>(sim.num_vehicles()),
                     std::vector<double>(positions_.size(),
                                         -std::numeric_limits<double>::infinity()));
}

void RsuStrategy::on_tick(FleetSim& sim) {
  auto& stats = sim.stats();
  for (int v = 0; v < sim.num_vehicles(); ++v) {
    if (!sim.is_online(v)) continue;  // churned-out vehicles skip RSU visits
    const Vec2 pos = sim.world().vehicle(v).pos;
    for (std::size_t r = 0; r < positions_.size(); ++r) {
      if (distance(pos, positions_[r]) > opts_.range_m) continue;
      if (sim.time() - last_visit_[static_cast<std::size_t>(v)][r] <
          opts_.revisit_cooldown_s) {
        continue;
      }
      last_visit_[static_cast<std::size_t>(v)][r] = sim.time();

      auto& rsu = rsu_models_[r];
      auto vehicle_params = sim.node(v).model.params();

      // Upload vehicle -> RSU.
      ++stats.model_sends_started;
      if (sim.infra_transfer_succeeds(sim.rng())) {
        ++stats.model_sends_completed;
        const auto a = static_cast<float>(1.0 - opts_.rsu_mix);
        const auto b = static_cast<float>(opts_.rsu_mix);
        for (std::size_t k = 0; k < rsu.size(); ++k) {
          rsu[k] = a * rsu[k] + b * vehicle_params[k];
        }
      }
      // Download RSU -> vehicle.
      ++stats.model_sends_started;
      ++sim.vehicle_stats(v).model_recv_started;
      if (sim.infra_transfer_succeeds(sim.rng())) {
        ++stats.model_sends_completed;
        ++sim.vehicle_stats(v).model_recv_completed;
        const auto a = static_cast<float>(1.0 - opts_.vehicle_mix);
        const auto b = static_cast<float>(opts_.vehicle_mix);
        for (std::size_t k = 0; k < rsu.size(); ++k) {
          vehicle_params[k] = a * vehicle_params[k] + b * rsu[k];
        }
        obs::emit(sim.time(), obs::EventKind::kAggregate, v, -1, opts_.vehicle_mix);
      }
      break;  // one RSU exchange per tick per vehicle
    }
  }
}

void RsuStrategy::save_state(const FleetSim& sim, ByteWriter& w) const {
  (void)sim;
  w.write_f64(opts_.range_m);
  w.write_u32(static_cast<std::uint32_t>(positions_.size()));
  for (const Vec2& p : positions_) {
    w.write_f64(p.x);
    w.write_f64(p.y);
  }
  for (const auto& m : rsu_models_) w.write_f32_vec(m);
  w.write_u32(static_cast<std::uint32_t>(last_visit_.size()));
  for (const auto& row : last_visit_) w.write_f64_vec(row);
}

void RsuStrategy::load_state(FleetSim& sim, ByteReader& r) {
  opts_.range_m = r.read_f64();
  const auto nr = r.read_u32();
  if (nr > 4096) throw std::runtime_error{"RSU-L::load_state: rsu count out of range"};
  positions_.assign(nr, Vec2{});
  for (Vec2& p : positions_) {
    p.x = r.read_f64();
    p.y = r.read_f64();
  }
  const std::size_t params = sim.num_vehicles() > 0 ? sim.node(0).model.param_count() : 0;
  rsu_models_.assign(nr, {});
  for (auto& m : rsu_models_) {
    m = r.read_f32_vec();
    if (m.size() != params) throw std::runtime_error{"RSU-L::load_state: model size mismatch"};
  }
  const auto nv = r.read_u32();
  if (nv != static_cast<std::uint32_t>(sim.num_vehicles())) {
    throw std::runtime_error{"RSU-L::load_state: vehicle count mismatch"};
  }
  last_visit_.assign(nv, {});
  for (auto& row : last_visit_) {
    row = r.read_f64_vec();
    if (row.size() != nr) throw std::runtime_error{"RSU-L::load_state: visit row mismatch"};
  }
}

}  // namespace lbchat::baselines
