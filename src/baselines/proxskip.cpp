#include "baselines/proxskip.h"

#include <algorithm>
#include <stdexcept>

#include "common/bytes.h"

namespace lbchat::baselines {

using engine::FleetSim;

void ProxSkipStrategy::setup(FleetSim& sim) {
  variates_.assign(static_cast<std::size_t>(sim.num_vehicles()),
                   std::vector<float>(sim.node(0).model.param_count(), 0.0f));
  trained_since_round_ = 0;
}

void ProxSkipStrategy::local_train(FleetSim& sim, int v) {
  sim.default_local_train(v);
  if (opts_.variate_scale > 0.0) {
    auto params = sim.node(v).model.params();
    const auto& h = variates_[static_cast<std::size_t>(v)];
    const auto scale = static_cast<float>(opts_.variate_scale * sim.config().learning_rate);
    for (std::size_t k = 0; k < params.size(); ++k) params[k] += scale * h[k];
  }
  ++trained_since_round_;
}

void ProxSkipStrategy::on_tick(FleetSim& sim) {
  // A "round" ends when every *online* vehicle has taken its local step; then
  // flip the ProxSkip coin: with probability p, the prox (central averaging)
  // fires. Gating on the online count keeps rounds progressing under churn
  // (offline vehicles skip local steps and would otherwise stall the round
  // forever); with faults off it equals num_vehicles() and nothing changes.
  const int online = sim.online_vehicles();
  if (online == 0 || trained_since_round_ < online) return;
  trained_since_round_ = 0;
  if (!sim.rng().chance(opts_.comm_probability)) return;
  synchronize(sim);
}

void ProxSkipStrategy::synchronize(FleetSim& sim) {
  const int n = sim.num_vehicles();
  const std::size_t dim = sim.node(0).model.param_count();
  auto& stats = sim.stats();

  // Uplink: the server averages the models it actually receives.
  std::vector<float> avg(dim, 0.0f);
  std::vector<char> uploaded(static_cast<std::size_t>(n), 0);
  int received = 0;
  for (int v = 0; v < n; ++v) {
    if (!sim.is_online(v)) continue;  // churned-out vehicles miss the round
    ++stats.model_sends_started;
    if (!sim.infra_transfer_succeeds(sim.rng())) continue;
    ++stats.model_sends_completed;
    uploaded[static_cast<std::size_t>(v)] = 1;
    const auto p = sim.node(v).model.params();
    for (std::size_t k = 0; k < dim; ++k) avg[k] += p[k];
    ++received;
  }
  obs::emit(sim.time(), obs::EventKind::kRound, -1, -1, received);
  if (received == 0) return;
  const float inv = 1.0f / static_cast<float>(received);
  for (float& x : avg) x *= inv;

  // Downlink: vehicles that receive the broadcast adopt the average; the
  // control variate absorbs the difference (ProxSkip's h-update).
  for (int v = 0; v < n; ++v) {
    if (!sim.is_online(v)) continue;
    ++stats.model_sends_started;
    ++sim.vehicle_stats(v).model_recv_started;
    if (!sim.infra_transfer_succeeds(sim.rng())) continue;
    ++stats.model_sends_completed;
    ++sim.vehicle_stats(v).model_recv_completed;
    auto params = sim.node(v).model.params();
    if (opts_.variate_scale > 0.0) {
      auto& h = variates_[static_cast<std::size_t>(v)];
      const auto hs = static_cast<float>(opts_.comm_probability / sim.config().learning_rate);
      for (std::size_t k = 0; k < dim; ++k) h[k] += hs * (avg[k] - params[k]);
    }
    std::copy(avg.begin(), avg.end(), params.begin());
    obs::emit(sim.time(), obs::EventKind::kAggregate, v, -1, 1.0);
  }
}

void ProxSkipStrategy::save_state(const FleetSim& sim, ByteWriter& w) const {
  (void)sim;
  w.write_u32(static_cast<std::uint32_t>(variates_.size()));
  for (const auto& h : variates_) w.write_f32_vec(h);
  w.write_i32(trained_since_round_.load());
}

void ProxSkipStrategy::load_state(FleetSim& sim, ByteReader& r) {
  const auto n = r.read_u32();
  if (n != static_cast<std::uint32_t>(sim.num_vehicles())) {
    throw std::runtime_error{"ProxSkip::load_state: vehicle count mismatch"};
  }
  const std::size_t params = sim.node(0).model.param_count();
  variates_.assign(n, {});
  for (auto& h : variates_) {
    h = r.read_f32_vec();
    if (h.size() != params) throw std::runtime_error{"ProxSkip::load_state: variate size mismatch"};
  }
  trained_since_round_.store(r.read_i32());
}

}  // namespace lbchat::baselines
