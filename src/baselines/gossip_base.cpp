#include "baselines/gossip_base.h"

#include <algorithm>
#include <exception>

#include "common/bytes.h"
#include "common/frame.h"
#include "nn/model_io.h"

namespace lbchat::baselines {

using engine::FleetSim;
using engine::PairSession;
using engine::StageTag;

namespace {

/// One directional exchange payload: the sparse model plus the sender's
/// data-source composition vector (empty unless the subclass provides one).
std::vector<std::uint8_t> encode_exchange(const nn::SparseModel& model,
                                          const std::vector<double>& comp) {
  ByteWriter w;
  nn::write_sparse_model(w, model);
  w.write_f64_vec(comp);
  return frame::encode(frame::FrameType::kModel, w.bytes());
}

}  // namespace

bool GossipBaseStrategy::start_exchange(FleetSim& sim, int a, int b) {
  const auto& cfg = sim.config();
  // Contact estimated WITHOUT shared routes (constant-velocity fallback).
  const net::ContactEstimate contact = sim.estimate_contact_between(a, b, /*share_routes=*/false);
  const double window = std::min(cfg.time_budget_s, contact.duration_s);
  const double full_time =
      2.0 * static_cast<double>(cfg.wire.model_bytes) * 8.0 / cfg.radio.bandwidth_bps;
  const double psi = full_time > 0.0 ? std::clamp(window / full_time, 0.0, 1.0) : 0.0;
  if (psi < 0.02) return false;  // not worth initiating

  PairSession& s = sim.start_session(a, b);
  // The pair decouples once the planned window elapses (time-budget
  // semantics); under wireless loss the blindly-sized transfer overruns and
  // fails — the mechanism behind these baselines' low receiving rates.
  s.deadline_s = sim.time() + window;
  sim.queue_transfer(
      s, a, cfg.wire.model_bytes_at(psi), {StageTag::kModel, a, 0},
      encode_exchange(nn::compress_for_psi(sim.node(a).model.params(), psi),
                      composition_of(sim, a)));
  sim.queue_transfer(
      s, b, cfg.wire.model_bytes_at(psi), {StageTag::kModel, b, 0},
      encode_exchange(nn::compress_for_psi(sim.node(b).model.params(), psi),
                      composition_of(sim, b)));
  return true;
}

void GossipBaseStrategy::on_transfer_complete(FleetSim& sim, PairSession& s,
                                              const StageTag& tag) {
  if (tag.kind != StageTag::kModel) return;
  const bool from_a = tag.from == s.vehicle_a();
  const int receiver = from_a ? s.vehicle_b() : s.vehicle_a();
  const int sender = from_a ? s.vehicle_a() : s.vehicle_b();
  // Envelope verification before deserializing — a corrupt frame is dropped
  // (the receiver keeps its current model) rather than aggregated.
  const frame::Decoded dec = frame::decode(s.delivered_payload());
  if (dec.ok() && dec.type == frame::FrameType::kModel) {
    try {
      ByteReader r{dec.payload};
      const nn::SparseModel sparse = nn::read_sparse_model(r);
      const std::vector<double> comp = r.read_f64_vec();
      const std::vector<float> params = sparse.densify();
      if (params.size() != sim.node(receiver).model.param_count()) return;
      aggregate(sim, receiver, sender, params, comp);
      return;
    } catch (const WireValueError&) {
      sim.note_frame_rejected(receiver, /*is_model=*/true, /*invalid_values=*/true);
      sim.note_pair_failure(s.vehicle_a(), s.vehicle_b());
      return;
    } catch (const std::exception&) {
      // fall through to the rejection path
    }
  }
  sim.note_frame_rejected(receiver, /*is_model=*/true);
  sim.note_pair_failure(s.vehicle_a(), s.vehicle_b());
}

}  // namespace lbchat::baselines
