#include "baselines/gossip_base.h"

#include <algorithm>

namespace lbchat::baselines {

using engine::FleetSim;
using engine::PairSession;
using engine::StageTag;

bool GossipBaseStrategy::start_exchange(FleetSim& sim, int a, int b) {
  const auto& cfg = sim.config();
  // Contact estimated WITHOUT shared routes (constant-velocity fallback).
  const net::ContactEstimate contact = sim.estimate_contact_between(a, b, /*share_routes=*/false);
  const double window = std::min(cfg.time_budget_s, contact.duration_s);
  const double full_time =
      2.0 * static_cast<double>(cfg.wire.model_bytes) * 8.0 / cfg.radio.bandwidth_bps;
  const double psi = full_time > 0.0 ? std::clamp(window / full_time, 0.0, 1.0) : 0.0;
  if (psi < 0.02) return false;  // not worth initiating

  PairSession& s = sim.start_session(a, b);
  // The pair decouples once the planned window elapses (time-budget
  // semantics); under wireless loss the blindly-sized transfer overruns and
  // fails — the mechanism behind these baselines' low receiving rates.
  s.deadline_s = sim.time() + window;
  auto ex = std::make_shared<ExchangeData>();
  ex->model_a = nn::compress_for_psi(sim.node(a).model.params(), psi);
  ex->model_b = nn::compress_for_psi(sim.node(b).model.params(), psi);
  ex->comp_a = composition_of(sim, a);
  ex->comp_b = composition_of(sim, b);
  s.data = ex;
  sim.queue_transfer(s, a, cfg.wire.model_bytes_at(psi), {StageTag::kModel, a, 0});
  sim.queue_transfer(s, b, cfg.wire.model_bytes_at(psi), {StageTag::kModel, b, 0});
  return true;
}

void GossipBaseStrategy::on_transfer_complete(FleetSim& sim, PairSession& s,
                                              const StageTag& tag) {
  if (tag.kind != StageTag::kModel) return;
  auto ex = std::static_pointer_cast<ExchangeData>(s.data);
  if (ex == nullptr) return;
  const bool from_a = tag.from == s.vehicle_a();
  const int receiver = from_a ? s.vehicle_b() : s.vehicle_a();
  const int sender = from_a ? s.vehicle_a() : s.vehicle_b();
  const nn::SparseModel& sparse = from_a ? ex->model_a : ex->model_b;
  const std::vector<float> params = sparse.densify();
  if (params.size() != sim.node(receiver).model.param_count()) return;
  aggregate(sim, receiver, sender, params, from_a ? ex->comp_a : ex->comp_b);
}

}  // namespace lbchat::baselines
