// ProxSkip [28] — the central-server federated-learning benchmark.
//
// The paper treats ProxSkip as the idealistic upper baseline: no backend
// bandwidth constraint (communication is instantaneous), with probabilistic
// communication skipping (each "round" the whole fleet synchronizes with
// probability p; otherwise every vehicle takes a local step). Under wireless
// loss, each vehicle's uplink/downlink suffers "a wireless loss uniformly
// sampled from the distance-loss lookup table" per transfer.
//
// Adaptation note (DESIGN.md): ProxSkip's SGD control-variate correction is
// defined for a plain prox-SGD inner loop; all approaches here share the same
// Adam inner optimizer for comparability, so the correction is exposed as an
// optional parameter (`variate_scale`, default 0) applied in parameter space.
// The communication pattern — local steps + probabilistically skipped central
// prox/averaging — is reproduced faithfully.
#pragma once

#include <atomic>
#include <vector>

#include "engine/fleet.h"

namespace lbchat::baselines {

struct ProxSkipOptions {
  double comm_probability = 0.2;  ///< p: probability a round synchronizes
  double variate_scale = 0.0;     ///< control-variate strength (0 = off)
};

class ProxSkipStrategy final : public engine::Strategy {
 public:
  explicit ProxSkipStrategy(ProxSkipOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string_view name() const override { return "ProxSkip"; }
  void setup(engine::FleetSim& sim) override;
  void local_train(engine::FleetSim& sim, int v) override;
  void on_tick(engine::FleetSim& sim) override;

  // Checkpoint hooks: control variates + the round-progress counter.
  void save_state(const engine::FleetSim& sim, ByteWriter& w) const override;
  void load_state(engine::FleetSim& sim, ByteReader& r) override;

 private:
  void synchronize(engine::FleetSim& sim);

  ProxSkipOptions opts_;
  std::vector<std::vector<float>> variates_;  // h_v, parameter space
  /// Atomic: local_train runs concurrently across vehicles; the round
  /// boundary only needs the order-independent count.
  std::atomic<int> trained_since_round_{0};
};

}  // namespace lbchat::baselines
