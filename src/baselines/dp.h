// Decentralized Powerloss (DP) [5] — asynchronous gossip learning with
// loss-based model merging.
//
// A vehicle evaluates a received model on its local validation dataset and
// derives the aggregation weights from a normalized logarithmic function of
// the losses: lower validation loss -> larger weight. Exchanges use the same
// communication constraints as LbChat with equal fit-to-window compression.
#pragma once

#include "baselines/gossip_base.h"

namespace lbchat::baselines {

class DpStrategy final : public GossipBaseStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "DP"; }
  void on_tick(engine::FleetSim& sim) override;

 protected:
  void aggregate(engine::FleetSim& sim, int receiver, int sender,
                 const std::vector<float>& peer_params,
                 const std::vector<double>& sender_comp) override;
};

}  // namespace lbchat::baselines
