// SimGossip — similarity-weighted gossip in the style of CDPL
// (Contribution Driven P2P Learning; SNIPPETS.md snippet 3), the natural
// head-to-head against LbChat's coreset-derived aggregation weights.
//
// Exchanges run on the DP cadence (nearest idle in-range peer, no value
// assessment) over the shared gossip session machinery, but the aggregation
// weight is earned, not fixed: the receiver scores the delivered model by its
// cosine similarity to its own parameters and maps the score through a
// temperature-controlled pairwise softmax against the self-similarity of 1,
//
//     alpha = 1 / (1 + exp((1 - cos(w_recv, w_peer)) / temperature)),
//
// so an aligned peer approaches the plain-averaging weight of 1/2 while a
// dissimilar (or poisoned — adversary runs exercise this) model is blended
// down smoothly. Stateless beyond its options: checkpoint hooks only echo
// them so a resume under a different temperature is rejected.
#pragma once

#include "baselines/gossip_base.h"

namespace lbchat::baselines {

struct SimGossipOptions {
  /// Softness of the similarity-to-weight map. Small temperatures gate hard
  /// (slightly dissimilar peers get nearly no weight); large ones approach
  /// plain 50/50 averaging.
  double temperature = 0.1;
};

class SimGossipStrategy final : public GossipBaseStrategy {
 public:
  explicit SimGossipStrategy(SimGossipOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string_view name() const override { return "SimGossip"; }
  void on_tick(engine::FleetSim& sim) override;

  void save_state(const engine::FleetSim& sim, ByteWriter& w) const override;
  void load_state(engine::FleetSim& sim, ByteReader& r) override;

  /// The similarity-to-weight map (exposed for tests).
  [[nodiscard]] double weight_for_similarity(double cosine) const;

 protected:
  void aggregate(engine::FleetSim& sim, int receiver, int sender,
                 const std::vector<float>& peer_params,
                 const std::vector<double>& sender_comp) override;

 private:
  SimGossipOptions opts_;
};

}  // namespace lbchat::baselines
