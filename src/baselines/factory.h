// Factory for every approach evaluated in the paper, keyed by the names used
// in its tables: ProxSkip, RSU-L, DFL-DDS, DP, LbChat, SCO, and the two
// LbChat ablations.
#pragma once

#include <memory>
#include <string_view>

#include "engine/fleet.h"

namespace lbchat::baselines {

enum class Approach {
  kProxSkip,
  kRsuL,
  kDflDds,
  kDp,
  kLbChat,
  kSco,                 ///< share coresets only (§IV-G)
  kLbChatEqualComp,     ///< Table V ablation: equal compression ratios
  kLbChatAvgAgg,        ///< Table VI ablation: plain averaging aggregation
};

[[nodiscard]] std::unique_ptr<engine::Strategy> make_strategy(Approach approach);
[[nodiscard]] std::string_view approach_name(Approach approach);
/// Inverse of approach_name; throws std::invalid_argument on unknown names.
[[nodiscard]] Approach approach_from_name(std::string_view name);

}  // namespace lbchat::baselines
