// Deprecated enum-keyed strategy factory, kept as a thin shim over the
// string-keyed registry (baselines/registry.h) so the pre-registry bench
// targets and tests compile unchanged. New code — the CLI, the fleet
// service, new benches — should construct strategies through
// registry().make(name, options) instead; the enum cannot name the
// registry-only strategies (DynThresh, SimGossip) or carry options.
#pragma once

#include <array>
#include <memory>
#include <string_view>

#include "engine/fleet.h"

namespace lbchat::baselines {

enum class Approach {
  kProxSkip,
  kRsuL,
  kDflDds,
  kDp,
  kLbChat,
  kSco,                 ///< share coresets only (§IV-G)
  kLbChatEqualComp,     ///< Table V ablation: equal compression ratios
  kLbChatAvgAgg,        ///< Table VI ablation: plain averaging aggregation
};

/// Every enum value, in paper-table order — the one place the list lives, so
/// approach_from_name and the parameterized test suites cannot drift from
/// the enum definition.
inline constexpr std::array<Approach, 8> kAllApproaches{
    Approach::kProxSkip, Approach::kRsuL,          Approach::kDflDds,
    Approach::kDp,       Approach::kLbChat,        Approach::kSco,
    Approach::kLbChatEqualComp, Approach::kLbChatAvgAgg,
};

[[nodiscard]] std::unique_ptr<engine::Strategy> make_strategy(Approach approach);
[[nodiscard]] std::string_view approach_name(Approach approach);
/// Inverse of approach_name; throws std::invalid_argument on unknown names.
[[nodiscard]] Approach approach_from_name(std::string_view name);

}  // namespace lbchat::baselines
