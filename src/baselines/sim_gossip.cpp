#include "baselines/sim_gossip.h"

#include <cmath>
#include <span>
#include <stdexcept>

#include "common/bytes.h"

namespace lbchat::baselines {

using engine::FleetSim;

void SimGossipStrategy::on_tick(FleetSim& sim) {
  // DP cadence: each idle vehicle chats with its nearest idle in-range peer,
  // so the head-to-head against DP isolates the aggregation rule.
  for (int a = 0; a < sim.num_vehicles(); ++a) {
    if (!sim.is_idle(a)) continue;
    int best = -1;
    double best_d = 1e18;
    for (const int b : sim.neighbors_in_range(a)) {
      if (!sim.is_idle(b) || !sim.cooldown_passed(a, b)) continue;
      const double d = sim.pair_distance(a, b);
      if (d < best_d) {
        best_d = d;
        best = b;
      }
    }
    if (best >= 0) start_exchange(sim, a, best);
  }
}

double SimGossipStrategy::weight_for_similarity(double cosine) const {
  const double t = std::max(opts_.temperature, 1e-6);
  return 1.0 / (1.0 + std::exp((1.0 - cosine) / t));
}

void SimGossipStrategy::aggregate(FleetSim& sim, int receiver, int sender,
                                  const std::vector<float>& peer_params,
                                  const std::vector<double>& sender_comp) {
  (void)sender_comp;
  auto params = sim.node(receiver).model.params();

  double dot = 0.0, n_self = 0.0, n_peer = 0.0;
  for (std::size_t k = 0; k < params.size(); ++k) {
    const double s = params[k];
    const double p = peer_params[k];
    dot += s * p;
    n_self += s * s;
    n_peer += p * p;
  }
  const double denom = std::sqrt(n_self) * std::sqrt(n_peer);
  // A zero-norm model carries no direction to compare against; treat it as
  // orthogonal so the blend weight bottoms out instead of dividing by zero.
  const double cosine = denom > 1e-12 ? dot / denom : 0.0;
  const double alpha = weight_for_similarity(cosine);

  const auto a = static_cast<float>(1.0 - alpha);
  const auto b = static_cast<float>(alpha);
  for (std::size_t k = 0; k < params.size(); ++k) {
    params[k] = a * params[k] + b * peer_params[k];
  }
  sim.note_aggregate(receiver, sender, alpha);
}

void SimGossipStrategy::save_state(const FleetSim& sim, ByteWriter& w) const {
  (void)sim;
  w.write_f64(opts_.temperature);
}

void SimGossipStrategy::load_state(FleetSim& sim, ByteReader& r) {
  (void)sim;
  if (r.read_f64() != opts_.temperature) {
    throw std::runtime_error{"SimGossip::load_state: options mismatch"};
  }
}

}  // namespace lbchat::baselines
