// Shared mechanics of the fully-decentralized model-sharing baselines
// (DFL-DDS [30] and DP [5]).
//
// Per the paper's fair-comparison setup, both baselines run under the same
// communication ability and constraints as LbChat, and "compute a model
// compression ratio for each encounter to ensure the vehicle pair can finish
// the model exchange within the contact duration". Neither shares routes, so
// their contact estimates extrapolate current velocities and go stale when a
// vehicle turns — one reason their receiving rates trail LbChat's.
#pragma once

#include <memory>
#include <vector>

#include "engine/fleet.h"
#include "nn/compress.h"

namespace lbchat::baselines {

class GossipBaseStrategy : public engine::Strategy {
 public:
  void on_transfer_complete(engine::FleetSim& sim, engine::PairSession& s,
                            const engine::StageTag& tag) override;

 protected:
  /// Start a pairwise model exchange with equal, fit-to-window compression
  /// ratios. Each direction's payload (sparse model + composition vector)
  /// travels in a CRC-checksummed frame; receivers verify before
  /// deserializing. Returns false (and starts nothing) when the window is too
  /// small to bother.
  bool start_exchange(engine::FleetSim& sim, int a, int b);

  /// Fold a received (densified) peer model into the receiver; `sender_comp`
  /// is the sender's data-source composition vector (empty unless provided
  /// by composition_of()).
  virtual void aggregate(engine::FleetSim& sim, int receiver, int sender,
                         const std::vector<float>& peer_params,
                         const std::vector<double>& sender_comp) = 0;

  /// Data-source composition vector attached to outgoing models (DFL-DDS).
  [[nodiscard]] virtual std::vector<double> composition_of(engine::FleetSim& sim, int v) {
    (void)sim;
    (void)v;
    return {};
  }
};

}  // namespace lbchat::baselines
