#include "baselines/dp.h"

#include <algorithm>
#include <cmath>

namespace lbchat::baselines {

using engine::FleetSim;

void DpStrategy::on_tick(FleetSim& sim) {
  // Asynchronous gossip: each idle vehicle exchanges with its nearest idle
  // in-range peer (FIFO by proximity, no value assessment).
  for (int a = 0; a < sim.num_vehicles(); ++a) {
    if (!sim.is_idle(a)) continue;
    int best = -1;
    double best_d = 1e18;
    for (const int b : sim.neighbors_in_range(a)) {
      if (!sim.is_idle(b) || !sim.cooldown_passed(a, b)) continue;
      const double d = sim.pair_distance(a, b);
      if (d < best_d) {
        best_d = d;
        best = b;
      }
    }
    if (best >= 0) start_exchange(sim, a, best);
  }
}

void DpStrategy::aggregate(FleetSim& sim, int receiver, int sender,
                           const std::vector<float>& peer_params,
                           const std::vector<double>& sender_comp) {
  (void)sender_comp;
  auto& node = sim.node(receiver);

  // Validation losses of both models on the local hold-out.
  nn::DrivingPolicy peer_model{node.model.config(), /*init_seed=*/0};
  peer_model.set_params(peer_params);
  const double loss_self = node.model.weighted_loss(node.validation);
  const double loss_peer = peer_model.weighted_loss(node.validation);

  // Normalized logarithmic weighting: w grows as the model's loss shrinks
  // relative to the other's.
  const double eps = 1e-6;
  const double w_self = std::log1p(loss_peer / std::max(loss_self, eps));
  const double w_peer = std::log1p(loss_self / std::max(loss_peer, eps));
  const double denom = w_self + w_peer;
  const double alpha = denom > 1e-12 ? w_peer / denom : 0.5;

  auto params = node.model.params();
  const auto a = static_cast<float>(1.0 - alpha);
  const auto b = static_cast<float>(alpha);
  for (std::size_t k = 0; k < params.size(); ++k) {
    params[k] = a * params[k] + b * peer_params[k];
  }
  sim.note_aggregate(receiver, sender, alpha);
}

}  // namespace lbchat::baselines
