// RSU-L [29] — road-side-unit based opportunistic learning.
//
// RSUs sit at road crosses (the busiest urban intersections here); each RSU
// is an independent coordinator maintaining its own RSU model. A vehicle
// passing within radio range uploads its model; the RSU folds it into the
// RSU model and sends the aggregate back. Per the paper, the backend has no
// bandwidth constraint (exchanges are instantaneous) and each transfer
// suffers a wireless loss uniformly sampled from the distance-loss table.
#pragma once

#include <vector>

#include "common/geometry.h"
#include "engine/fleet.h"

namespace lbchat::baselines {

struct RsuOptions {
  int num_rsus = 3;
  double range_m = 0.0;  ///< V2I range; <= 0 means "use the radio's range"
  double revisit_cooldown_s = 30.0;  ///< min time between exchanges with one RSU
  double rsu_mix = 0.5;        ///< EMA weight of an incoming vehicle model
  double vehicle_mix = 0.5;    ///< weight of the RSU model on download
};

class RsuStrategy final : public engine::Strategy {
 public:
  explicit RsuStrategy(RsuOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string_view name() const override { return "RSU-L"; }
  void setup(engine::FleetSim& sim) override;
  void on_tick(engine::FleetSim& sim) override;

  [[nodiscard]] const std::vector<Vec2>& rsu_positions() const { return positions_; }

  // Checkpoint hooks: RSU placement/models + per-pair visit cooldowns
  // (setup() also resolves range_m from the radio, so it round-trips too).
  void save_state(const engine::FleetSim& sim, ByteWriter& w) const override;
  void load_state(engine::FleetSim& sim, ByteReader& r) override;

 private:
  RsuOptions opts_;
  std::vector<Vec2> positions_;
  std::vector<std::vector<float>> rsu_models_;
  std::vector<std::vector<double>> last_visit_;  // [vehicle][rsu]
};

}  // namespace lbchat::baselines
