// DynThresh — dynamic-threshold model averaging after Kamp et al.
// (arXiv:1807.03210), adapted to the engine's opportunistic pairwise chats.
//
// Every vehicle keeps a reference copy of its model from the last
// synchronization. Local training drifts the live model away from the
// reference; only when the RMS parameter divergence exceeds the configured
// bound does the vehicle spend bytes on air: it picks its nearest idle
// in-range peer and runs a resync-on-violation round on the ordinary gossip
// session machinery (GossipBaseStrategy::start_exchange — CRC-framed
// payloads, fit-to-window compression, fault/adversary handling all
// inherited). Both endpoints of the exchange blend the delivered model and
// reset their references to the merged parameters, so a quiet vehicle's
// participation in a peer-initiated chat is itself the piggybacked resync.
//
// The protocol's whole point is the bytes-vs-loss trade (bench/comm_pareto):
// vehicles that have not diverged stay silent, so bytes-on-air collapse
// relative to the fixed-cadence baselines at comparable final loss.
#pragma once

#include <vector>

#include "baselines/gossip_base.h"

namespace lbchat::baselines {

struct DynThreshOptions {
  /// Divergence bound on sqrt(||w - ref||^2 / dim) — RMS parameter deviation
  /// from the last-synchronized reference. A vehicle below the bound neither
  /// initiates chats nor spends bytes. Calibrated on the bench scenario
  /// (bench/comm_pareto): at this bound the fleet lands on the Pareto
  /// frontier, ~3x fewer bytes on air than DP/DFL-DDS at comparable final
  /// loss; a much smaller bound degenerates to DP's every-contact cadence, a
  /// much larger one to silent local training.
  double divergence_bound = 1.5e-2;
  /// Blend weight on the delivered peer model at a resync.
  double pair_weight = 0.5;
};

class DynThreshStrategy final : public GossipBaseStrategy {
 public:
  explicit DynThreshStrategy(DynThreshOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string_view name() const override { return "DynThresh"; }
  void setup(engine::FleetSim& sim) override;
  void local_train(engine::FleetSim& sim, int v) override;
  void on_tick(engine::FleetSim& sim) override;

  // Checkpoint hooks: reference models + the divergence cache, plus an echo
  // of the options so a checkpoint cannot silently resume under a different
  // bound (the divergence decisions would diverge from the saved run).
  void save_state(const engine::FleetSim& sim, ByteWriter& w) const override;
  void load_state(engine::FleetSim& sim, ByteReader& r) override;

  /// Cached RMS divergence of vehicle `v` (tests/diagnostics; refreshed
  /// lazily on ticks where `v` is idle and has trained since the last check).
  [[nodiscard]] double divergence(int v) const {
    return div_[static_cast<std::size_t>(v)];
  }

 protected:
  void aggregate(engine::FleetSim& sim, int receiver, int sender,
                 const std::vector<float>& peer_params,
                 const std::vector<double>& sender_comp) override;

 private:
  DynThreshOptions opts_;
  std::vector<std::vector<float>> refs_;  ///< last-synchronized parameters
  std::vector<double> div_;               ///< cached RMS divergence
  /// Set by local_train (vehicle-v slot only — safe on concurrent lanes),
  /// cleared when on_tick refreshes the divergence cache sequentially.
  std::vector<char> dirty_;
};

}  // namespace lbchat::baselines
