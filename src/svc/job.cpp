#include "svc/job.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/fingerprint.h"
#include "nn/kernel_dispatch.h"
#include "svc/json.h"

namespace lbchat::svc {
namespace {

// Spec parsing accumulates into this context so every helper can fail with a
// key-specific message without exceptions.
struct ParseCtx {
  std::string& error;
  bool ok = true;

  void fail(const std::string& what) {
    if (ok) error = what;
    ok = false;
  }
};

bool want_number(ParseCtx& ctx, const std::string& key, const JsonValue& v, double& out) {
  if (!v.is_number()) {
    ctx.fail("\"" + key + "\" must be a number");
    return false;
  }
  out = v.as_number();
  return true;
}

bool want_int(ParseCtx& ctx, const std::string& key, const JsonValue& v, int& out) {
  double d = 0.0;
  if (!want_number(ctx, key, v, d)) return false;
  if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0) {
    ctx.fail("\"" + key + "\" must be an integer");
    return false;
  }
  out = static_cast<int>(d);
  return true;
}

bool want_bool(ParseCtx& ctx, const std::string& key, const JsonValue& v, bool& out) {
  if (!v.is_bool()) {
    ctx.fail("\"" + key + "\" must be a boolean");
    return false;
  }
  out = v.as_bool();
  return true;
}

void apply_faults(ParseCtx& ctx, const JsonValue& obj, engine::FaultConfig& f) {
  if (!obj.is_object()) {
    ctx.fail("\"faults\" must be an object");
    return;
  }
  for (const auto& [key, value] : obj.members()) {
    const JsonValue& v = *value;
    if (key == "burst_rate_per_min") {
      want_number(ctx, key, v, f.burst_rate_per_min);
    } else if (key == "burst_duration_s") {
      want_number(ctx, key, v, f.burst_duration_s);
    } else if (key == "burst_radius_m") {
      want_number(ctx, key, v, f.burst_radius_m);
    } else if (key == "burst_extra_loss") {
      want_number(ctx, key, v, f.burst_extra_loss);
    } else if (key == "churn_rate_per_min") {
      want_number(ctx, key, v, f.churn_rate_per_min);
    } else if (key == "churn_offline_mean_s") {
      want_number(ctx, key, v, f.churn_offline_mean_s);
    } else if (key == "corrupt_prob_near") {
      want_number(ctx, key, v, f.corrupt_prob_near);
    } else if (key == "corrupt_prob_far") {
      want_number(ctx, key, v, f.corrupt_prob_far);
    } else if (key == "chat_backoff") {
      want_bool(ctx, key, v, f.chat_backoff);
    } else if (key == "backoff_base") {
      want_number(ctx, key, v, f.backoff_base);
    } else if (key == "backoff_max_exp") {
      want_int(ctx, key, v, f.backoff_max_exp);
    } else {
      ctx.fail("unknown faults key \"" + key + "\"");
    }
    if (!ctx.ok) return;
  }
}

}  // namespace

bool parse_job_spec(std::string_view text, JobSpec& out, std::string& error) {
  out = JobSpec{};
  out.source = std::string{text};

  std::string json_error;
  const auto root = json_parse(text, json_error);
  if (root == nullptr) {
    error = "invalid JSON: " + json_error;
    return false;
  }
  if (!root->is_object()) {
    error = "job spec must be a JSON object";
    return false;
  }

  ParseCtx ctx{error};
  engine::ScenarioConfig& cfg = out.cfg;
  int metro_vehicles = 0;
  int v_int = 0;
  double v_num = 0.0;

  for (const auto& [key, value] : root->members()) {
    const JsonValue& v = *value;
    if (key == "strategy" || key == "approach") {
      // "approach" is the pre-registry spelling; both name the registry key.
      if (!v.is_string()) {
        ctx.fail("\"" + key + "\" must be a string");
      } else {
        out.approach_name = v.as_string();
      }
    } else if (key == "strategy_options") {
      if (!v.is_object()) {
        ctx.fail("\"strategy_options\" must be an object");
      } else {
        for (const auto& [opt_key, opt_value] : v.members()) {
          double opt_num = 0.0;
          if (!want_number(ctx, "strategy_options." + opt_key, *opt_value, opt_num)) break;
          out.options.set(opt_key, opt_num);
        }
      }
    } else if (key == "name") {
      if (!v.is_string()) {
        ctx.fail("\"name\" must be a string");
      } else {
        out.name = v.as_string();
      }
    } else if (key == "priority") {
      want_int(ctx, key, v, out.priority);
    } else if (key == "events") {
      want_bool(ctx, key, v, out.events);
    } else if (key == "preempt_at") {
      want_number(ctx, key, v, out.preempt_at);
    } else if (key == "vehicles") {
      if (want_int(ctx, key, v, v_int)) cfg.num_vehicles = v_int;
    } else if (key == "num_vehicles") {
      want_int(ctx, key, v, metro_vehicles);
    } else if (key == "duration") {
      want_number(ctx, key, v, cfg.duration_s);
    } else if (key == "collect_duration") {
      want_number(ctx, key, v, cfg.collect_duration_s);
    } else if (key == "collect_fps") {
      want_number(ctx, key, v, cfg.collect_fps);
    } else if (key == "coreset") {
      if (want_int(ctx, key, v, v_int)) {
        if (v_int < 1) {
          ctx.fail("\"coreset\" must be >= 1");
        } else {
          cfg.coreset_size = static_cast<std::size_t>(v_int);
        }
      }
    } else if (key == "seed") {
      if (want_number(ctx, key, v, v_num)) {
        if (v_num < 0.0) {
          ctx.fail("\"seed\" must be >= 0");
        } else {
          cfg.seed = static_cast<std::uint64_t>(v_num);
        }
      }
    } else if (key == "threads") {
      want_int(ctx, key, v, cfg.num_threads);
    } else if (key == "wireless_loss") {
      want_bool(ctx, key, v, cfg.wireless_loss);
    } else if (key == "eval_interval") {
      want_number(ctx, key, v, cfg.eval_interval_s);
    } else if (key == "train_interval") {
      want_number(ctx, key, v, cfg.train_interval_s);
    } else if (key == "batch_size") {
      want_int(ctx, key, v, cfg.batch_size);
    } else if (key == "learning_rate") {
      want_number(ctx, key, v, cfg.learning_rate);
    } else if (key == "time_budget") {
      want_number(ctx, key, v, cfg.time_budget_s);
    } else if (key == "pair_cooldown") {
      want_number(ctx, key, v, cfg.pair_cooldown_s);
    } else if (key == "session_timeout") {
      want_number(ctx, key, v, cfg.session_timeout_s);
    } else if (key == "byzantine_frac") {
      want_number(ctx, key, v, cfg.adversary.byzantine_frac);
    } else if (key == "straggler_frac") {
      // One knob drives the whole heterogeneity profile, like the CLI flag.
      if (want_number(ctx, key, v, v_num)) {
        cfg.hetero.straggler_frac = v_num;
        cfg.hetero.slow_radio_frac = v_num;
        cfg.hetero.dataset_skew = v_num > 0.0 ? 0.5 : 0.0;
      }
    } else if (key == "background_cars") {
      want_int(ctx, key, v, cfg.world.num_background_cars);
    } else if (key == "pedestrians") {
      want_int(ctx, key, v, cfg.world.num_pedestrians);
    } else if (key == "eval_frames") {
      want_int(ctx, key, v, cfg.eval_frames_per_vehicle);
    } else if (key == "radio_range") {
      want_number(ctx, key, v, cfg.radio.max_range_m);
    } else if (key == "model_bytes") {
      if (want_number(ctx, key, v, v_num)) {
        if (v_num < 1.0) {
          ctx.fail("\"model_bytes\" must be >= 1");
        } else {
          cfg.wire.model_bytes = static_cast<std::size_t>(v_num);
        }
      }
    } else if (key == "coreset_bytes_per_sample") {
      if (want_number(ctx, key, v, v_num)) {
        if (v_num < 1.0) {
          ctx.fail("\"coreset_bytes_per_sample\" must be >= 1");
        } else {
          cfg.wire.coreset_bytes_per_sample = static_cast<std::size_t>(v_num);
        }
      }
    } else if (key == "faults") {
      apply_faults(ctx, v, cfg.faults);
    } else {
      ctx.fail("unknown key \"" + key + "\"");
    }
    if (!ctx.ok) return false;
  }

  if (!baselines::registry().contains(out.approach_name)) {
    error = "unknown strategy '" + out.approach_name + "'";
    return false;
  }
  // Validate option keys against the strategy's schema now, so a typo fails
  // the submission instead of the worker.
  try {
    (void)baselines::registry().fingerprint_options(out.approach_name, out.options);
  } catch (const std::invalid_argument& e) {
    error = e.what();
    return false;
  }
  // Metro scaling last, so it composes with "vehicles" regardless of member
  // order — same rule as the CLI.
  if (metro_vehicles > 0) engine::apply_metro_scale(cfg, metro_vehicles);
  if (cfg.num_vehicles < 2) {
    error = "need at least 2 vehicles";
    return false;
  }
  if (cfg.duration_s <= 0.0) {
    error = "\"duration\" must be > 0";
    return false;
  }
  if (cfg.num_threads < 0) {
    error = "\"threads\" must be >= 0";
    return false;
  }
  return true;
}

std::uint64_t job_fingerprint(const JobSpec& spec) {
  const auto opts = baselines::registry().fingerprint_options(spec.approach_name, spec.options);
  // Identity on the scalar path, so historical ResultCache entries keep
  // their keys; a SIMD-backed daemon gets a disjoint key space because its
  // run results differ bit-wise from the scalar ones.
  const std::uint64_t base =
      nn::salt_with_kernel_path(scenario_fingerprint(spec.cfg, spec.approach_name, opts));
  if (!spec.events) return base;
  // An events job additionally exports events.jsonl, so its payload differs
  // from the plain job's — it must not share a cache entry.
  FnvHasher h;
  h.add(base);
  h.add(std::string_view{"payload-events-v1"});
  return h.digest();
}

}  // namespace lbchat::svc
