// Job specs for the fleet service: a JSON object naming a strategy and a
// scenario configuration, mirroring the lbchat_sim_cli flag surface.
//
//   {"strategy":"DynThresh","vehicles":8,"duration":900,"seed":3,
//    "strategy_options":{"divergence_bound":2e-4},
//    "priority":1,"events":true,
//    "faults":{"burst_rate_per_min":0.5,"chat_backoff":true}}
//
// "approach" is accepted as a legacy alias of "strategy" (pre-registry specs
// persist in state directories and CI). Unknown keys, unknown strategy
// names, and option keys absent from the strategy's registry schema are hard
// parse errors (a typo'd knob must not silently run the default).
// parse_job_spec keeps the original spec text so a persisted job round-trips
// byte-identically through the state directory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "baselines/registry.h"
#include "engine/scenario.h"

namespace lbchat::svc {

struct JobSpec {
  engine::ScenarioConfig cfg{};
  std::string approach_name{"LbChat"};
  /// Per-strategy tunables, validated against the registry schema at parse.
  baselines::StrategyOptions options{};
  /// Optional human label echoed in status/manifest output.
  std::string name;
  /// Higher runs earlier; ties broken by submission order.
  int priority = 0;
  /// Collect sim-time events and include events.jsonl in the payload.
  /// Serialized by the obs lease (svc/server.cpp), so it costs concurrency.
  bool events = false;
  /// Test hook: self-preempt (checkpoint + requeue) once when sim time
  /// reaches this value. <= 0 disables. Excluded from the job fingerprint —
  /// by the determinism contract it cannot change the result bytes.
  double preempt_at = 0.0;
  /// The spec text as submitted (whitespace and all), for persistence.
  std::string source;
};

/// Parse a job-spec JSON object. Returns false and fills `error` on malformed
/// JSON, unknown keys, wrong types, or out-of-range values; `out` is
/// unspecified then. Never throws.
[[nodiscard]] bool parse_job_spec(std::string_view text, JobSpec& out, std::string& error);

/// Cache identity of a job: the shared scenario fingerprint
/// (common/fingerprint.h — what the bench cache keys on) extended with the
/// payload-shaping knobs (events). Jobs with equal fingerprints produce
/// byte-identical payloads, so the result cache may serve one for the other.
[[nodiscard]] std::uint64_t job_fingerprint(const JobSpec& spec);

}  // namespace lbchat::svc
