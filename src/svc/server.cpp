#include "svc/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "common/bytes.h"
#include "engine/checkpoint.h"
#include "engine/job_runner.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace lbchat::svc {
namespace {

bool write_file(const std::filesystem::path& path, std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool read_file(const std::filesystem::path& path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok = out.empty() || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

[[nodiscard]] bool terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kCancelled || s == JobState::kFailed;
}

}  // namespace

std::string_view to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kPreempted:
      return "preempted";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

FleetService::FleetService(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.root / "cache"),
      queue_(opts_.queue_capacity) {
  std::error_code ec;
  std::filesystem::create_directories(opts_.root / "jobs", ec);
  std::filesystem::create_directories(opts_.root / "cache", ec);
  std::filesystem::create_directories(opts_.root / "state", ec);
  recover_state();
  totals_.workers = opts_.workers;
  threads_.reserve(static_cast<std::size_t>(std::max(opts_.workers, 0)));
  for (int i = 0; i < opts_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

FleetService::~FleetService() { shutdown(true); }

std::uint64_t FleetService::submit(std::string_view spec_text, std::string& error) {
  JobSpec spec;
  if (!parse_job_spec(spec_text, spec, error)) return 0;
  const std::uint64_t fp = job_fingerprint(spec);

  // Cache probe outside the lock: pure filesystem reads.
  JobPayload cached_payload;
  const bool hit = opts_.cache_enabled && cache_.lookup(fp, cached_payload);

  std::unique_lock lk{mu_};
  if (draining_ || stop_) {
    error = "draining";
    return 0;
  }
  const std::uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec = std::move(spec);
  job->fingerprint = fp;

  if (hit) {
    // Serve the cached payload without running: materialize the per-job
    // output directory (identical bytes) so clients can diff payload dirs.
    const std::filesystem::path dir = opts_.root / "jobs" / std::to_string(id);
    lk.unlock();
    const bool io_ok = write_payload(dir, cached_payload);
    lk.lock();
    if (io_ok) {
      job->state = JobState::kDone;
      job->cached = true;
      job->payload = std::move(cached_payload);
      job->output_dir = dir.string();
      job->progress_s = job->spec.cfg.duration_s;
      ++totals_.submitted;
      ++totals_.cache_hits;
      jobs_.emplace(id, std::move(job));
      idle_cv_.notify_all();
      return id;
    }
    // Fall through to a real run when the copy could not be written.
  }

  if (!queue_.push(id, job->spec.priority)) {
    error = "queue_full";
    return 0;
  }
  // Count only accepted submissions, so stats keep the invariant
  // submitted == completed + failed + cancelled + in-flight.
  ++totals_.submitted;
  jobs_.emplace(id, std::move(job));
  work_cv_.notify_one();
  return id;
}

JobStatus FleetService::status_of(const Job& job) const {
  JobStatus s;
  s.id = job.id;
  s.state = job.state;
  s.name = job.spec.name;
  s.approach = job.spec.approach_name;
  s.priority = job.spec.priority;
  s.fingerprint = job.fingerprint;
  s.progress_s = job.progress_s;
  s.horizon_s = job.spec.cfg.duration_s;
  s.events = job.spec.events;
  s.cached = job.cached;
  s.held = job.hold;
  s.preemptions = job.preemptions;
  s.migrations = job.migrations;
  s.error = job.error;
  s.output_dir = job.output_dir;
  if (job.state == JobState::kPreempted && !job.ckpt.empty()) {
    engine::CkptInfo info;
    if (engine::inspect_checkpoint(job.ckpt, info) == engine::CkptStatus::kOk) {
      s.checkpoint_json = engine::ckpt_info_json(info);
    }
  }
  return s;
}

std::optional<JobStatus> FleetService::status(std::uint64_t id) {
  std::unique_lock lk{mu_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return status_of(*it->second);
}

std::vector<JobStatus> FleetService::jobs() {
  std::unique_lock lk{mu_};
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [_, job] : jobs_) out.push_back(status_of(*job));
  return out;
}

ServiceStats FleetService::stats() {
  std::unique_lock lk{mu_};
  ServiceStats s = totals_;
  s.queued = queue_.size();
  s.running = running_;
  s.queue_capacity = queue_.capacity();
  s.draining = draining_;
  return s;
}

bool FleetService::result(std::uint64_t id, JobPayload& out, std::string& error) {
  std::unique_lock lk{mu_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    error = "unknown job";
    return false;
  }
  const Job& job = *it->second;
  if (job.state != JobState::kDone) {
    error = std::string{"job is "} + std::string{to_string(job.state)};
    return false;
  }
  out = job.payload;
  return true;
}

bool FleetService::cancel(std::uint64_t id) {
  std::unique_lock lk{mu_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (terminal(job.state)) return false;
  if (job.state == JobState::kRunning) {
    job.cancel_requested = true;  // honoured at the next slice boundary
    return true;
  }
  queue_.remove(id);
  job.state = JobState::kCancelled;
  job.hold = false;
  ++totals_.cancelled;
  finish_terminal(job);
  return true;
}

bool FleetService::preempt(std::uint64_t id, bool hold) {
  std::unique_lock lk{mu_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.state == JobState::kRunning) {
    job.preempt_requested = true;
    job.preempt_hold = hold;
    return true;
  }
  if (hold && (job.state == JobState::kQueued || job.state == JobState::kPreempted) &&
      !job.hold) {
    queue_.remove(id);
    job.hold = true;
    return true;
  }
  return false;
}

bool FleetService::release(std::uint64_t id) {
  std::unique_lock lk{mu_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (!job.hold || terminal(job.state) || job.state == JobState::kRunning) return false;
  job.hold = false;
  queue_.push(id, job.spec.priority, /*force=*/true);
  work_cv_.notify_one();
  return true;
}

bool FleetService::wait(std::uint64_t id, JobStatus& out, double timeout_s) {
  std::unique_lock lk{mu_};
  if (jobs_.find(id) == jobs_.end()) return false;
  const bool bounded = timeout_s >= 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration_cast<std::chrono::nanoseconds>(
                                             std::chrono::duration<double>{
                                                 bounded ? timeout_s : 0.0});
  while (!terminal(jobs_.at(id)->state) && !stop_) {
    if (bounded) {
      if (idle_cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    } else {
      idle_cv_.wait(lk);
    }
  }
  out = status_of(*jobs_.at(id));
  return true;
}

std::size_t FleetService::drain() {
  std::unique_lock lk{mu_};
  draining_ = true;
  // Re-persist after every wake: an in-flight job that self-preempts during
  // the drain re-enters the queue and must be captured too.
  std::size_t n = 0;
  for (;;) {
    n += persist_pending();
    if (running_ == 0 && queue_.empty()) return n;
    idle_cv_.wait(lk);
  }
}

void FleetService::shutdown(bool persist) {
  {
    std::unique_lock lk{mu_};
    if (joined_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();  // unblock wait()ers promptly — stop_ ends their wait
  for (auto& t : threads_) t.join();
  std::unique_lock lk{mu_};
  joined_ = true;
  if (persist) persist_pending();
}

std::size_t FleetService::persist_pending() {
  while (queue_.pop()) {
    // Entries drop out of the queue; the jobs_ walk below persists them.
  }
  std::size_t n = 0;
  for (auto& [_, job] : jobs_) {
    if (job->state != JobState::kQueued && job->state != JobState::kPreempted) continue;
    if (persist_job(*job)) {
      job->hold = true;  // no longer queued in this process
      ++n;
    }
  }
  return n;
}

bool FleetService::persist_job(const Job& job) {
  const std::filesystem::path state = opts_.root / "state";
  const std::string stem = "job_" + std::to_string(job.id);
  const auto* spec_bytes = reinterpret_cast<const std::uint8_t*>(job.spec.source.data());
  if (!write_file(state / (stem + ".spec.json"), {spec_bytes, job.spec.source.size()})) {
    return false;
  }
  if (!job.ckpt.empty() && !write_file(state / (stem + ".ckpt"), job.ckpt)) return false;
  return true;
}

void FleetService::finish_terminal(Job& job) {
  std::error_code ec;
  const std::filesystem::path state = opts_.root / "state";
  const std::string stem = "job_" + std::to_string(job.id);
  std::filesystem::remove(state / (stem + ".spec.json"), ec);
  std::filesystem::remove(state / (stem + ".ckpt"), ec);
  idle_cv_.notify_all();
}

void FleetService::recover_state() {
  const std::filesystem::path state = opts_.root / "state";
  std::error_code ec;
  std::vector<std::filesystem::path> specs;
  for (const auto& entry : std::filesystem::directory_iterator{state, ec}) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("job_", 0) == 0 && name.size() > 14 &&
        name.compare(name.size() - 10, 10, ".spec.json") == 0) {
      specs.push_back(entry.path());
    }
  }
  std::sort(specs.begin(), specs.end());  // deterministic re-queue order
  for (const auto& path : specs) {
    const std::string name = path.filename().string();
    const std::uint64_t id =
        std::strtoull(name.substr(4, name.size() - 14).c_str(), nullptr, 10);
    if (id == 0) continue;
    std::vector<std::uint8_t> spec_bytes;
    if (!read_file(path, spec_bytes)) continue;
    JobSpec spec;
    std::string error;
    if (!parse_job_spec(
            std::string_view{reinterpret_cast<const char*>(spec_bytes.data()),
                             spec_bytes.size()},
            spec, error)) {
      continue;
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = std::move(spec);
    job->fingerprint = job_fingerprint(job->spec);
    std::filesystem::path ckpt_path = path;
    ckpt_path.replace_filename("job_" + std::to_string(id) + ".ckpt");
    if (std::filesystem::exists(ckpt_path, ec) && !ec) {
      if (!read_file(ckpt_path, job->ckpt)) continue;
      job->state = JobState::kPreempted;
      job->last_worker = -2;  // a resume here counts as a migration
    }
    next_id_ = std::max(next_id_, id + 1);
    queue_.push(id, job->spec.priority, /*force=*/true);
    jobs_.emplace(id, std::move(job));
    ++totals_.recovered;
    // The state files stay on disk so a recovered job survives another
    // non-clean exit: finish_terminal() removes them once the job completes,
    // and persist_job() overwrites them on the next clean shutdown.
  }
}

void FleetService::worker_main(int wid) {
  std::unique_lock lk{mu_};
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    const auto id = queue_.pop();
    if (!id) continue;
    const auto it = jobs_.find(*id);
    if (it == jobs_.end()) continue;
    run_job(lk, *it->second, wid);
    idle_cv_.notify_all();
  }
}

void FleetService::run_job(std::unique_lock<std::mutex>& lk, Job& job, int wid) {
  if (job.cancel_requested) {
    job.state = JobState::kCancelled;
    ++totals_.cancelled;
    finish_terminal(job);
    return;
  }
  job.state = JobState::kRunning;
  ++running_;
  if (job.last_worker != -1 && job.last_worker != wid) {
    ++job.migrations;
    ++totals_.migrations;
  }
  job.last_worker = wid;
  const JobSpec spec = job.spec;
  std::vector<std::uint8_t> ckpt = std::move(job.ckpt);
  job.ckpt.clear();
  bool preempt_at_fired = job.preempt_at_fired;
  lk.unlock();

  // obs lease: an events job owns the process-global obs surface for this
  // occupancy; ordinary jobs share it (their engine writes are all gated off
  // by events_enabled() == false).
  std::shared_lock<std::shared_mutex> shared_lease;
  std::unique_lock<std::shared_mutex> excl_lease;
  if (spec.events) {
    excl_lease = std::unique_lock{obs_mu_};
    obs::reset();
    obs::set_events_enabled(true);  // before resume: kObs restore needs it
  } else {
    shared_lease = std::shared_lock{obs_mu_};
  }
  const auto release_lease = [&] {
    if (spec.events) {
      obs::set_events_enabled(false);
      obs::reset();
      excl_lease.unlock();
    } else {
      shared_lease.unlock();
    }
  };

  std::string fail;
  engine::RunMetrics metrics;
  std::string events_text;
  bool completed = false;
  bool preempted = false;
  bool cancelled = false;
  bool hold_after_preempt = false;
  std::vector<std::uint8_t> new_ckpt;
  double reached = 0.0;

  try {
    engine::JobRunner runner{spec.cfg,
                             baselines::registry().make(spec.approach_name, spec.options)};
    if (!ckpt.empty()) {
      const auto st = runner.resume(ckpt);
      if (st != engine::CkptStatus::kOk) {
        fail = "checkpoint restore failed: " + std::string{engine::to_string(st)};
      }
    }
    while (fail.empty()) {
      double target = std::min(runner.time() + opts_.epoch_s, runner.horizon());
      bool at_preempt_point = false;
      if (!preempt_at_fired && spec.preempt_at > runner.time() &&
          spec.preempt_at <= target) {
        target = spec.preempt_at;
        at_preempt_point = true;
      }
      const bool done = runner.run_to(target);
      reached = runner.time();

      lk.lock();
      job.progress_s = reached;
      const bool want_cancel = job.cancel_requested;
      bool want_preempt = false;
      if (!done && !want_cancel) {
        const auto fp = queue_.front_priority();
        // Priority preemption only matters when every worker is occupied —
        // an idle worker would pick the high-priority job up by itself.
        const bool prio_evict =
            fp.has_value() && *fp > spec.priority && running_ >= threads_.size();
        want_preempt = at_preempt_point || job.preempt_requested || stop_ || prio_evict;
        hold_after_preempt = job.preempt_requested && job.preempt_hold && !stop_;
      }
      lk.unlock();

      if (want_cancel) {
        cancelled = true;
        break;
      }
      if (done) {
        completed = true;
        break;
      }
      if (want_preempt) {
        ByteWriter w;
        runner.save_checkpoint(w);
        new_ckpt = w.take();
        preempted = true;
        if (at_preempt_point) preempt_at_fired = true;
        break;
      }
    }
    if (completed) {
      metrics = runner.finish();
      if (spec.events) {
        events_text = obs::events_jsonl(obs::tracer().events(), obs::tracer().dropped());
      }
    }
  } catch (const std::exception& e) {
    fail = e.what();
  } catch (...) {
    fail = "unknown error";
  }
  release_lease();

  if (completed && fail.empty()) {
    JobPayload payload = build_payload(spec, metrics, std::move(events_text));
    const std::filesystem::path dir = opts_.root / "jobs" / std::to_string(job.id);
    const bool io_ok = write_payload(dir, payload);
    if (io_ok && opts_.cache_enabled) cache_.publish(job.fingerprint, payload);
    lk.lock();
    --running_;
    if (io_ok) {
      job.state = JobState::kDone;
      job.payload = std::move(payload);
      job.output_dir = dir.string();
      job.progress_s = spec.cfg.duration_s;
      ++totals_.completed;
    } else {
      job.state = JobState::kFailed;
      job.error = "payload write failed";
      ++totals_.failed;
    }
    finish_terminal(job);
    return;
  }

  lk.lock();
  --running_;
  if (cancelled || job.cancel_requested) {
    job.state = JobState::kCancelled;
    ++totals_.cancelled;
    finish_terminal(job);
    return;
  }
  if (preempted && fail.empty()) {
    job.state = JobState::kPreempted;
    job.ckpt = std::move(new_ckpt);
    job.preempt_at_fired = preempt_at_fired;
    job.preempt_requested = false;
    job.preempt_hold = false;
    job.hold = hold_after_preempt;
    ++job.preemptions;
    ++totals_.preemptions;
    if (!job.hold && !stop_) {
      queue_.push(job.id, job.spec.priority, /*force=*/true);
      work_cv_.notify_one();
    } else if (stop_) {
      job.hold = true;  // persisted by shutdown(persist)
    }
    idle_cv_.notify_all();
    return;
  }
  job.state = JobState::kFailed;
  job.error = fail.empty() ? "internal error" : fail;
  ++totals_.failed;
  finish_terminal(job);
}

}  // namespace lbchat::svc
