// Priority job queue for the fleet service's worker pool.
//
// Ordering: highest priority first, FIFO within a priority (ties broken by a
// monotonically increasing sequence number assigned at push). The queue is
// bounded — push() refuses past `capacity` so a flooded daemon reports
// backpressure ("queue_full") instead of growing without bound — except for
// re-entries of preempted jobs (`force`), which must never be droppable: a
// job the service already accepted cannot be lost to its own preemption.
//
// Externally synchronized: the service holds its mutex around every call
// (the queue is always touched together with the job table).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <tuple>

namespace lbchat::svc {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueue job `id`. Returns false when the queue is full (never when
  /// `force` — preempted re-entries bypass the bound).
  bool push(std::uint64_t id, int priority, bool force = false) {
    if (!force && entries_.size() >= capacity_) return false;
    entries_.emplace(-static_cast<std::int64_t>(priority), seq_++, id);
    return true;
  }

  /// Pop the front job id, or nullopt when empty.
  std::optional<std::uint64_t> pop() {
    if (entries_.empty()) return std::nullopt;
    const auto it = entries_.begin();
    const std::uint64_t id = std::get<2>(*it);
    entries_.erase(it);
    return id;
  }

  /// Remove job `id` wherever it sits; false when not queued.
  bool remove(std::uint64_t id) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (std::get<2>(*it) == id) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Priority of the front entry (the next pop), or nullopt when empty.
  [[nodiscard]] std::optional<int> front_priority() const {
    if (entries_.empty()) return std::nullopt;
    return static_cast<int>(-std::get<0>(*entries_.begin()));
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  // (-priority, sequence, id): set order == service order.
  std::set<std::tuple<std::int64_t, std::uint64_t, std::uint64_t>> entries_;
  std::size_t capacity_;
  std::uint64_t seq_ = 0;
};

}  // namespace lbchat::svc
