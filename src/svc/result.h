// Job result payloads: the deterministic artifact set a finished job serves.
//
//   metrics.json   — run summary counters/gauges through obs::metrics_json
//   report.json    — per-vehicle run report (obs::run_report_json)
//   events.jsonl   — sim-time event log, only when the spec asked for events
//   manifest.json  — header + loss curve + file list; written LAST, so its
//                    presence marks a complete payload (result_cache.h)
//
// Every byte derives from the simulation through the shared deterministic
// formatters (obs::format_double), so payloads are byte-identical across
// {cold run, cache hit, preempted + migrated run} and any worker count —
// the property tests/svc_test.cpp pins.
#pragma once

#include <filesystem>
#include <string>

#include "engine/metrics.h"
#include "svc/job.h"

namespace lbchat::svc {

struct JobPayload {
  std::string metrics_json;
  std::string report_json;
  std::string events_jsonl;  ///< empty unless the spec requested events
  std::string manifest_json;
};

/// Assemble the payload for a finished run. `events_jsonl` is the
/// pre-rendered event log ("" for a non-events job).
[[nodiscard]] JobPayload build_payload(const JobSpec& spec, const engine::RunMetrics& metrics,
                                       std::string events_jsonl);

/// Write the payload into `dir` (created if needed), manifest.json last.
/// Returns false on any I/O failure.
[[nodiscard]] bool write_payload(const std::filesystem::path& dir, const JobPayload& payload);

/// Read a payload back from `dir`. Returns false unless manifest.json and
/// every file it lists are present and readable.
[[nodiscard]] bool read_payload(const std::filesystem::path& dir, JobPayload& out);

}  // namespace lbchat::svc
