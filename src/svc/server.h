// FleetService: the long-running fleet-evaluation job server (DESIGN.md §13).
//
// A bounded priority JobQueue feeds a pool of worker threads. Each worker
// drives one job at a time through engine::JobRunner in checkpoint epochs
// (`epoch_s` of sim time per slice); between slices it honours cancellation,
// explicit preemption, the spec's deterministic `preempt_at` test hook,
// priority preemption (a higher-priority job waiting in the queue evicts a
// lower-priority running one), and shutdown. A preempted job's state is its
// checkpoint bytes — it re-enters the queue and resumes on whichever worker
// pops it next, on this process or (via the persisted state directory) a
// future one. By the engine's determinism contract the served payload is
// byte-identical however the run was sliced or migrated.
//
// Results: payloads (svc/result.h) are written to <root>/jobs/<id>/ and
// published to the fingerprint-keyed ResultCache at <root>/cache/, so an
// identical spec submitted again is served without running.
//
// obs lease: the engine's observability surface is process-global, so a job
// that records events holds `obs_mu_` exclusively for each occupancy (reset +
// enable on entry, ring travels through the checkpoint's kObs section across
// preemptions); ordinary jobs hold it shared and therefore run concurrently
// with each other but never with an events job.
//
// Shutdown: drain() stops intake, persists every queued/preempted job (spec +
// checkpoint) to <root>/state/, and waits for in-flight jobs to finish;
// shutdown() additionally checkpoints in-flight jobs at the next slice
// boundary and persists them too. A new FleetService over the same root
// re-queues the persisted jobs and resumes them from their checkpoints.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/job.h"
#include "svc/queue.h"
#include "svc/result.h"
#include "svc/result_cache.h"

namespace lbchat::svc {

struct ServiceOptions {
  int workers = 2;
  /// Sim seconds per run slice — the preemption (and checkpoint) granularity.
  double epoch_s = 60.0;
  std::size_t queue_capacity = 64;
  /// Jobs/cache/state all live under this directory (created if needed).
  std::filesystem::path root{".lbchat_svc"};
  /// Serve repeat submissions from the fingerprint result cache.
  bool cache_enabled = true;
};

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kPreempted,
  kDone,
  kCancelled,
  kFailed,
};

[[nodiscard]] std::string_view to_string(JobState s);

/// Point-in-time public view of a job.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::string name;
  std::string approach;
  int priority = 0;
  std::uint64_t fingerprint = 0;
  double progress_s = 0.0;  ///< sim time reached
  double horizon_s = 0.0;
  bool events = false;
  bool cached = false;  ///< result served from the cache, no run
  bool held = false;    ///< preempted with hold (not queued for resume)
  int preemptions = 0;
  int migrations = 0;  ///< resumes on a different worker (incl. restarts)
  std::string error;       ///< failed jobs
  std::string output_dir;  ///< done jobs
  /// ckpt_info_json of the pending checkpoint, "" unless preempted.
  std::string checkpoint_json;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< runs that actually executed to the horizon
  std::uint64_t cache_hits = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t recovered = 0;  ///< jobs re-queued from the state directory
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t queue_capacity = 0;
  int workers = 0;
  bool draining = false;
};

class FleetService {
 public:
  explicit FleetService(ServiceOptions opts);
  /// Equivalent to shutdown(true) when not already shut down.
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Parse + enqueue a job spec. Returns the job id, or 0 with `error` set
  /// ("queue_full" under backpressure, "draining" after drain()).
  std::uint64_t submit(std::string_view spec_text, std::string& error);

  [[nodiscard]] std::optional<JobStatus> status(std::uint64_t id);
  [[nodiscard]] std::vector<JobStatus> jobs();
  [[nodiscard]] ServiceStats stats();

  /// Copy the finished payload; false with `error` when unknown/not done.
  bool result(std::uint64_t id, JobPayload& out, std::string& error);

  /// Cancel a queued/preempted job now, or a running one at its next slice
  /// boundary. False when unknown or already terminal.
  bool cancel(std::uint64_t id);

  /// Checkpoint a running job at its next slice boundary; re-queue it unless
  /// `hold`. Also accepts a queued job (hold only: pulls it from the queue).
  bool preempt(std::uint64_t id, bool hold);

  /// Re-queue a held preempted job.
  bool release(std::uint64_t id);

  /// Block until `id` reaches a terminal state, the service stops, or
  /// `timeout_s` elapses (negative: no timeout). False only when the id is
  /// unknown; otherwise `out` holds the job's status at return — callers
  /// needing a terminal state must check `out.state` and re-poll.
  bool wait(std::uint64_t id, JobStatus& out, double timeout_s = -1.0);

  /// Stop intake, persist queued/preempted jobs to the state directory, and
  /// wait for in-flight jobs to finish. Returns persisted-job count.
  std::size_t drain();

  /// Stop workers (in-flight jobs checkpoint at the next slice boundary) and
  /// join. With `persist`, surviving non-terminal jobs are written to the
  /// state directory for the next FleetService over this root to resume.
  void shutdown(bool persist);

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    std::uint64_t fingerprint = 0;
    JobState state = JobState::kQueued;
    bool cached = false;
    bool hold = false;
    bool cancel_requested = false;
    bool preempt_requested = false;
    bool preempt_hold = false;
    bool preempt_at_fired = false;
    int last_worker = -1;  ///< -1 never ran, -2 recovered from disk
    int preemptions = 0;
    int migrations = 0;
    double progress_s = 0.0;
    std::vector<std::uint8_t> ckpt;
    JobPayload payload;
    std::string error;
    std::string output_dir;
  };

  void worker_main(int wid);
  /// Runs `job` until done/preempted/cancelled. Entered and exited with
  /// `lk` (on mu_) held; unlocks around simulation work.
  void run_job(std::unique_lock<std::mutex>& lk, Job& job, int wid);
  void finish_terminal(Job& job);  ///< terminal bookkeeping, mu_ held
  [[nodiscard]] JobStatus status_of(const Job& job) const;  ///< mu_ held
  bool persist_job(const Job& job);  ///< mu_ held (shutdown path)
  void recover_state();              ///< ctor only
  std::size_t persist_pending();     ///< mu_ held; queued+preempted -> disk

  ServiceOptions opts_;
  ResultCache cache_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< queue/stop changes
  std::condition_variable idle_cv_;  ///< job state changes (wait/drain)
  JobQueue queue_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  bool stop_ = false;
  bool draining_ = false;
  std::size_t running_ = 0;
  ServiceStats totals_;  ///< monotonic counters only (snapshot fills the rest)

  /// Process-global obs lease — see the header comment.
  std::shared_mutex obs_mu_;

  std::vector<std::thread> threads_;
  bool joined_ = false;
};

}  // namespace lbchat::svc
