// AF_UNIX stream transport for the fleet service daemon.
//
// SocketServer accepts connections sequentially and hands each newline-
// terminated request line to a handler, writing the reply line back. The
// accept loop polls with a short timeout so stop() (safe to call from a
// signal-triggered thread) is noticed promptly. Concurrency lives in the
// FleetService worker pool, not here: protocol requests are cheap (submit,
// status) or bounded (wait times out and the client re-polls; drain blocks
// only until in-flight jobs finish), and a sequential loop keeps the daemon
// free of per-connection threads. Replies are sent with MSG_NOSIGNAL, so a
// client that disconnects early is a closed connection, never a SIGPIPE.
//
// request_over_socket is the matching one-shot client: connect, send one
// line, read one reply line.
#pragma once

#include <atomic>
#include <functional>
#include <string>

namespace lbchat::svc {

struct ServerReply {
  std::string line;       ///< reply, written with a trailing '\n'
  bool shutdown = false;  ///< stop serving after this reply
};

class SocketServer {
 public:
  SocketServer() = default;
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen on `path` (an existing socket file is unlinked first).
  /// False with `error` set on failure.
  bool listen(const std::string& path, std::string& error);

  /// Serve until a handler reply sets `shutdown` or stop() is called.
  void serve(const std::function<ServerReply(const std::string&)>& handler);

  /// Ask serve() to return at its next poll tick. Async-signal-usable from a
  /// dedicated thread (sets an atomic flag; no locks, no allocation).
  void stop() { stop_.store(true); }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  int listen_fd_ = -1;
  std::string path_;
  std::atomic<bool> stop_{false};
};

/// One-shot client: send `request` as a line to the daemon at `path`, return
/// the reply line (newline stripped). Empty + `error` set on failure.
[[nodiscard]] std::string request_over_socket(const std::string& path,
                                              const std::string& request,
                                              std::string& error);

}  // namespace lbchat::svc
