#include "svc/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lbchat::svc {
namespace {

constexpr int kMaxDepth = 64;

void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

class Parser {
 public:
  Parser(std::string_view text, std::string& error) : text_(text), error_(error) {}

  std::unique_ptr<JsonValue> run() {
    auto v = parse_value(0);
    if (v == nullptr) return nullptr;
    skip_space();
    if (pos_ != text_.size()) {
      fail("trailing bytes after value");
      return nullptr;
    }
    return v;
  }

 private:
  void fail(const char* what) {
    if (error_.empty()) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s at offset %zu", what, pos_);
      error_ = buf;
    }
  }

  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_word(const char* w) {
    const std::size_t n = std::strlen(w);
    if (text_.substr(pos_, n) == w) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::unique_ptr<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return nullptr;
    }
    skip_space();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    const std::size_t start = pos_;
    auto v = parse_value_inner(depth);
    if (v != nullptr) {
      v->source_begin_ = start;
      v->source_end_ = pos_;
    }
    return v;
  }

  std::unique_ptr<JsonValue> parse_value_inner(int depth) {
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        if (eat_word("null")) return std::make_unique<JsonValue>();
        fail("invalid literal");
        return nullptr;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
        return nullptr;
    }
  }

  std::unique_ptr<JsonValue> parse_bool() {
    auto v = std::make_unique<JsonValue>();
    v->type_ = JsonValue::Type::kBool;
    if (eat_word("true")) {
      v->bool_ = true;
      return v;
    }
    if (eat_word("false")) {
      v->bool_ = false;
      return v;
    }
    fail("invalid literal");
    return nullptr;
  }

  std::unique_ptr<JsonValue> parse_number() {
    // Validate the JSON number grammar first, then hand the span to strtod
    // (which accepts a superset — hex, inf — that JSON forbids).
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    if (eat('0')) {
    } else {
      if (pos_ >= text_.size() || text_[pos_] < '1' || text_[pos_] > '9') {
        fail("malformed number");
        return nullptr;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (eat('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("malformed number");
        return nullptr;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("malformed number");
        return nullptr;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    auto v = std::make_unique<JsonValue>();
    v->type_ = JsonValue::Type::kNumber;
    v->number_ = std::strtod(token.c_str(), nullptr);
    return v;
  }

  bool parse_string_body(std::string& out) {
    if (!eat('"')) {
      fail("expected string");
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half.
            unsigned lo = 0;
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
              return false;
            }
            pos_ += 2;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("unpaired surrogate");
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
            return false;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("invalid escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      unsigned d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = 10 + (c - 'a');
      } else if (c >= 'A' && c <= 'F') {
        d = 10 + (c - 'A');
      } else {
        fail("invalid \\u escape");
        return false;
      }
      v = (v << 4) | d;
    }
    pos_ += 4;
    out = v;
    return true;
  }

  std::unique_ptr<JsonValue> parse_string_value() {
    auto v = std::make_unique<JsonValue>();
    v->type_ = JsonValue::Type::kString;
    if (!parse_string_body(v->string_)) return nullptr;
    return v;
  }

  std::unique_ptr<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    auto v = std::make_unique<JsonValue>();
    v->type_ = JsonValue::Type::kObject;
    skip_space();
    if (eat('}')) return v;
    for (;;) {
      skip_space();
      std::string key;
      if (!parse_string_body(key)) return nullptr;
      for (const auto& [k, _] : v->members_) {
        if (k == key) {
          fail("duplicate object key");
          return nullptr;
        }
      }
      skip_space();
      if (!eat(':')) {
        fail("expected ':'");
        return nullptr;
      }
      auto member = parse_value(depth + 1);
      if (member == nullptr) return nullptr;
      v->members_.emplace_back(std::move(key), std::move(member));
      skip_space();
      if (eat(',')) continue;
      if (eat('}')) return v;
      fail("expected ',' or '}'");
      return nullptr;
    }
  }

  std::unique_ptr<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    auto v = std::make_unique<JsonValue>();
    v->type_ = JsonValue::Type::kArray;
    skip_space();
    if (eat(']')) return v;
    for (;;) {
      auto item = parse_value(depth + 1);
      if (item == nullptr) return nullptr;
      v->items_.push_back(std::move(item));
      skip_space();
      if (eat(',')) continue;
      if (eat(']')) return v;
      fail("expected ',' or ']'");
      return nullptr;
    }
  }

  std::string_view text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return v.get();
  }
  return nullptr;
}

std::unique_ptr<JsonValue> json_parse(std::string_view text, std::string& error) {
  error.clear();
  Parser p{text, error};
  auto v = p.run();
  if (v == nullptr && error.empty()) error = "parse error";
  return v;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace lbchat::svc
