// Line-delimited JSON wire protocol for the fleet service daemon.
//
// One request object per line, one response object per line (DESIGN.md §13
// has the grammar). Commands:
//
//   {"cmd":"submit","spec":{...}}           -> {"ok":true,"id":N,"cached":B,...}
//   {"cmd":"status","id":N}                 -> {"ok":true,"job":{...}}
//   {"cmd":"jobs"}                          -> {"ok":true,"jobs":[...]}
//   {"cmd":"result","id":N}                 -> {"ok":true,"output_dir":"...",...}
//   {"cmd":"wait","id":N,"timeout_s":T}     -> {"ok":true,"job":{...}}
//     (blocks at most timeout_s — default 10, cap 60 — then replies with the
//      job's current status; clients re-poll until the state is terminal)
//   {"cmd":"cancel","id":N}                 -> {"ok":true}
//   {"cmd":"preempt","id":N,"hold":B}       -> {"ok":true}
//   {"cmd":"release","id":N}                -> {"ok":true}
//   {"cmd":"stats"}                         -> {"ok":true,"stats":{...}}
//   {"cmd":"drain"}                         -> {"ok":true,"persisted":N}
//   {"cmd":"shutdown"}                      -> {"ok":true} and the daemon exits
//
// Every error is {"ok":false,"error":"..."} — the connection survives.
#pragma once

#include <string>
#include <string_view>

#include "svc/server.h"

namespace lbchat::svc {

struct ProtocolReply {
  std::string line;       ///< response JSON, no trailing newline
  bool shutdown = false;  ///< the request asked the daemon to exit
};

/// Handle one request line against `service`. Never throws; malformed input
/// yields an ok:false reply.
[[nodiscard]] ProtocolReply handle_request(FleetService& service, std::string_view line);

/// JSON rendering of a JobStatus (one object, shared by status/jobs/wait).
[[nodiscard]] std::string job_status_json(const JobStatus& s);

}  // namespace lbchat::svc
