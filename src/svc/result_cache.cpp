#include "svc/result_cache.h"

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>

namespace lbchat::svc {
namespace {

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fp);
  return buf;
}

}  // namespace

std::filesystem::path ResultCache::entry_dir(std::uint64_t fingerprint) const {
  return root_ / fingerprint_hex(fingerprint);
}

bool ResultCache::lookup(std::uint64_t fingerprint, JobPayload& out) const {
  const std::filesystem::path dir = entry_dir(fingerprint);
  std::error_code ec;
  if (!std::filesystem::exists(dir / "manifest.json", ec) || ec) return false;
  return read_payload(dir, out);
}

bool ResultCache::publish(std::uint64_t fingerprint, const JobPayload& payload) {
  const std::filesystem::path dir = entry_dir(fingerprint);
  std::error_code ec;
  if (std::filesystem::exists(dir / "manifest.json", ec) && !ec) return true;

  // Stage under a name only this call writes, then rename into place. rename
  // fails (EEXIST / ENOTEMPTY) if a concurrent publish won — that is a
  // success for us, since entries for one fingerprint are byte-identical.
  static std::atomic<std::uint64_t> stage_seq{0};
  const std::filesystem::path staging =
      root_ / (fingerprint_hex(fingerprint) + ".staging." +
               std::to_string(static_cast<unsigned long>(::getpid())) + "." +
               std::to_string(stage_seq.fetch_add(1)));
  if (!write_payload(staging, payload)) {
    std::filesystem::remove_all(staging, ec);
    return false;
  }
  std::filesystem::rename(staging, dir, ec);
  if (ec) {
    std::filesystem::remove_all(staging, ec);
    std::error_code probe;
    return std::filesystem::exists(dir / "manifest.json", probe) && !probe;
  }
  return true;
}

}  // namespace lbchat::svc
