// Minimal JSON for the fleet service's wire protocol and job specs.
//
// A strict recursive-descent parser producing an immutable DOM (JsonValue),
// plus the escaping helper the response builders share. Scope is deliberately
// small — the service only ever parses objects a client hand-writes or that
// this process emitted — but within that scope it is a real parser: full
// string escapes (\uXXXX incl. surrogate pairs), numbers via strtod, depth
// limiting, and a trailing-garbage check. No dependencies beyond the stdlib.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lbchat::svc {

class JsonValue;

/// Parse `text` as a single JSON value. Returns nullptr and fills `error`
/// (with a byte offset) on any syntax problem, including trailing non-space
/// bytes. Never throws.
[[nodiscard]] std::unique_ptr<JsonValue> json_parse(std::string_view text, std::string& error);

/// `s` escaped for embedding inside a JSON string literal (quotes not
/// included): ", \, and control characters become escape sequences.
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<std::unique_ptr<JsonValue>>& items() const { return items_; }
  /// Object members in source order (duplicate keys rejected at parse time).
  [[nodiscard]] const std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>>& members()
      const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  /// Byte span of this value in the parsed source text: [source_begin,
  /// source_end). Lets callers slice a value's exact source bytes out of the
  /// original input (no re-scanning, no re-serialization).
  [[nodiscard]] std::size_t source_begin() const { return source_begin_; }
  [[nodiscard]] std::size_t source_end() const { return source_end_; }

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::unique_ptr<JsonValue>> items_;
  std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>> members_;
  std::size_t source_begin_ = 0;
  std::size_t source_end_ = 0;
};

}  // namespace lbchat::svc
