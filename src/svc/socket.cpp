#include "svc/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lbchat::svc {
namespace {

constexpr int kPollTimeoutMs = 100;
constexpr std::size_t kMaxLine = 4u << 20;  ///< defensive cap per request line

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that disconnected before reading its reply must
    // surface as EPIPE (a closed connection), not as a fatal SIGPIPE.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool fill_sockaddr(const std::string& path, sockaddr_un& addr, std::string& error) {
  if (path.size() >= sizeof addr.sun_path) {
    error = "socket path too long";
    return false;
  }
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

bool SocketServer::listen(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (!fill_sockaddr(path, addr, error)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string{"socket: "} + std::strerror(errno);
    return false;
  }
  ::unlink(path.c_str());  // stale socket from a previous daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error = std::string{"bind: "} + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) < 0) {
    error = std::string{"listen: "} + std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  listen_fd_ = fd;
  path_ = path;
  return true;
}

void SocketServer::serve(const std::function<ServerReply(const std::string&)>& handler) {
  bool shutdown = false;
  while (!shutdown && !stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollTimeoutMs);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // One connection at a time; multiple request lines per connection.
    std::string buf;
    char chunk[4096];
    bool open = true;
    while (open && !shutdown && !stop_.load()) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string reqline = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (!reqline.empty() && reqline.back() == '\r') reqline.pop_back();
        ServerReply reply = handler(reqline);
        reply.line.push_back('\n');
        if (!write_all(conn, reply.line.data(), reply.line.size())) open = false;
        shutdown = reply.shutdown;
        continue;
      }
      if (buf.size() > kMaxLine) break;
      const ssize_t r = ::read(conn, chunk, sizeof chunk);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) open = false;
      if (r > 0) buf.append(chunk, static_cast<std::size_t>(r));
    }
    ::close(conn);
  }
}

std::string request_over_socket(const std::string& path, const std::string& request,
                                std::string& error) {
  sockaddr_un addr{};
  if (!fill_sockaddr(path, addr, error)) return "";
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string{"socket: "} + std::strerror(errno);
    return "";
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error = std::string{"connect "} + path + ": " + std::strerror(errno);
    ::close(fd);
    return "";
  }
  std::string line = request;
  line.push_back('\n');
  if (!write_all(fd, line.data(), line.size())) {
    error = std::string{"write: "} + std::strerror(errno);
    ::close(fd);
    return "";
  }
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::read(fd, chunk, sizeof chunk);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(r));
    const std::size_t nl = reply.find('\n');
    if (nl != std::string::npos) {
      reply.resize(nl);
      ::close(fd);
      return reply;
    }
  }
  ::close(fd);
  error = "connection closed before a reply";
  return "";
}

}  // namespace lbchat::svc
