#include "svc/result.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "engine/report.h"
#include "obs/export.h"
#include "svc/json.h"

namespace lbchat::svc {
namespace {

void add_counter(obs::Snapshot& snap, std::string name, std::uint64_t count) {
  obs::MetricValue m;
  m.name = std::move(name);
  m.kind = obs::MetricKind::kCounter;
  m.count = count;
  snap.metrics.push_back(std::move(m));
}

void add_gauge(obs::Snapshot& snap, std::string name, double value) {
  obs::MetricValue m;
  m.name = std::move(name);
  m.kind = obs::MetricKind::kGauge;
  m.value = value;
  snap.metrics.push_back(std::move(m));
}

/// The run-summary snapshot: headline RunMetrics totals under a "run."
/// prefix, rendered through the same exporter as live registry snapshots.
obs::Snapshot summary_snapshot(const engine::RunMetrics& m) {
  obs::Snapshot snap;
  const engine::TransferStats& t = m.transfers;
  add_counter(snap, "run.backoff_retries", static_cast<std::uint64_t>(t.backoff_retries));
  add_counter(snap, "run.bytes_delivered", t.bytes_delivered);
  add_counter(snap, "run.byzantine_payloads_sent",
              static_cast<std::uint64_t>(t.byzantine_payloads_sent));
  add_counter(snap, "run.coreset_sends_completed",
              static_cast<std::uint64_t>(t.coreset_sends_completed));
  add_counter(snap, "run.coreset_sends_started",
              static_cast<std::uint64_t>(t.coreset_sends_started));
  add_counter(snap, "run.frames_rejected", static_cast<std::uint64_t>(t.frames_rejected));
  add_counter(snap, "run.frames_rejected_invalid",
              static_cast<std::uint64_t>(t.frames_rejected_invalid));
  add_counter(snap, "run.model_frames_rejected",
              static_cast<std::uint64_t>(t.model_frames_rejected));
  add_counter(snap, "run.model_sends_completed",
              static_cast<std::uint64_t>(t.model_sends_completed));
  add_counter(snap, "run.model_sends_started",
              static_cast<std::uint64_t>(t.model_sends_started));
  add_counter(snap, "run.sessions_aborted", static_cast<std::uint64_t>(t.sessions_aborted));
  add_counter(snap, "run.sessions_lost_to_blackout",
              static_cast<std::uint64_t>(t.sessions_lost_to_blackout));
  add_counter(snap, "run.sessions_started", static_cast<std::uint64_t>(t.sessions_started));
  add_counter(snap, "run.straggler_train_skips",
              static_cast<std::uint64_t>(t.straggler_train_skips));
  add_counter(snap, "run.train_steps", static_cast<std::uint64_t>(m.train_steps));
  add_gauge(snap, "run.attacker_weight_share", t.attacker_weight_share());
  add_gauge(snap, "run.effective_model_receiving_rate", t.effective_model_receiving_rate());
  add_gauge(snap, "run.final_mean_loss",
            m.loss_curve.values.empty() ? 0.0 : m.loss_curve.values.back());
  add_gauge(snap, "run.model_receiving_rate", t.model_receiving_rate());
  add_gauge(snap, "run.offline_vehicle_seconds", t.offline_vehicle_seconds);
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const obs::MetricValue& a, const obs::MetricValue& b) { return a.name < b.name; });
  return snap;
}

void append_curve(std::string& out, const engine::RunMetrics& m) {
  out += "\"loss_curve\":{\"times\":[";
  for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
    if (i != 0) out += ',';
    out += obs::format_double(m.loss_curve.times[i]);
  }
  out += "],\"values\":[";
  for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
    if (i != 0) out += ',';
    out += obs::format_double(m.loss_curve.values[i]);
  }
  out += "]}";
}

bool write_file(const std::filesystem::path& path, const std::string& content) {
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = content.empty() || std::fwrite(content.data(), 1, content.size(), f) ==
                                         content.size();
  return std::fclose(f) == 0 && ok;
}

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok = out.empty() || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

}  // namespace

JobPayload build_payload(const JobSpec& spec, const engine::RunMetrics& metrics,
                         std::string events_jsonl) {
  JobPayload p;
  p.metrics_json = obs::metrics_json(summary_snapshot(metrics));
  p.report_json =
      obs::run_report_json(engine::build_run_report(spec.approach_name, spec.cfg, metrics));
  p.events_jsonl = std::move(events_jsonl);

  char buf[128];
  std::string& m = p.manifest_json;
  m = "{";
  std::snprintf(buf, sizeof buf, "\"fingerprint\":\"%016" PRIx64 "\",", job_fingerprint(spec));
  m += buf;
  m += "\"approach\":\"" + json_escape(spec.approach_name) + "\",";
  m += "\"name\":\"" + json_escape(spec.name) + "\",";
  std::snprintf(buf, sizeof buf, "\"seed\":%llu,\"vehicles\":%d,",
                static_cast<unsigned long long>(spec.cfg.seed), spec.cfg.num_vehicles);
  m += buf;
  m += "\"duration_s\":" + obs::format_double(spec.cfg.duration_s) + ",";
  m += spec.events ? "\"events\":true," : "\"events\":false,";
  std::snprintf(buf, sizeof buf, "\"train_steps\":%ld,", metrics.train_steps);
  m += buf;
  m += "\"final_mean_loss\":" +
       obs::format_double(metrics.loss_curve.values.empty() ? 0.0
                                                            : metrics.loss_curve.values.back()) +
       ",";
  append_curve(m, metrics);
  m += ",\"files\":[\"metrics.json\",\"report.json\"";
  if (!p.events_jsonl.empty()) m += ",\"events.jsonl\"";
  m += "]}";
  return p;
}

bool write_payload(const std::filesystem::path& dir, const JobPayload& payload) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  if (!write_file(dir / "metrics.json", payload.metrics_json)) return false;
  if (!write_file(dir / "report.json", payload.report_json)) return false;
  if (!payload.events_jsonl.empty() &&
      !write_file(dir / "events.jsonl", payload.events_jsonl)) {
    return false;
  }
  // Manifest last: its presence certifies the files above are complete.
  return write_file(dir / "manifest.json", payload.manifest_json);
}

bool read_payload(const std::filesystem::path& dir, JobPayload& out) {
  out = JobPayload{};
  if (!read_file(dir / "manifest.json", out.manifest_json)) return false;
  if (!read_file(dir / "metrics.json", out.metrics_json)) return false;
  if (!read_file(dir / "report.json", out.report_json)) return false;
  // events.jsonl only when the manifest lists it.
  if (out.manifest_json.find("\"events.jsonl\"") != std::string::npos &&
      !read_file(dir / "events.jsonl", out.events_jsonl)) {
    return false;
  }
  return true;
}

}  // namespace lbchat::svc
