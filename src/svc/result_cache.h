// On-disk result cache for the fleet service, keyed by the job fingerprint
// (svc/job.h — the shared scenario fingerprint of common/fingerprint.h plus
// payload-shaping salts). A hit means a previous job with a byte-identical
// payload already ran: the service serves the stored artifacts and skips the
// run entirely.
//
// Layout: <root>/<fingerprint-hex-16>/{metrics.json,report.json,
// [events.jsonl,]manifest.json}. manifest.json is written last via a staging
// directory + atomic rename, so a crash mid-publish leaves either no entry
// or a complete one — lookup() trusts any directory whose manifest reads.
//
// Thread safety: lookup/publish are safe to call from multiple workers; the
// rename makes concurrent publishes of the same fingerprint idempotent
// (first wins, the loser discards its staging copy of identical bytes).
#pragma once

#include <cstdint>
#include <filesystem>

#include "svc/result.h"

namespace lbchat::svc {

class ResultCache {
 public:
  explicit ResultCache(std::filesystem::path root) : root_(std::move(root)) {}

  /// Load the payload cached under `fingerprint`; false on miss (or a
  /// half-written entry, which reads as a miss).
  [[nodiscard]] bool lookup(std::uint64_t fingerprint, JobPayload& out) const;

  /// Store `payload` under `fingerprint`. Returns false on I/O failure;
  /// losing a publish race to an identical payload is success.
  bool publish(std::uint64_t fingerprint, const JobPayload& payload);

  /// Directory a hit would be served from (exists only after a publish).
  [[nodiscard]] std::filesystem::path entry_dir(std::uint64_t fingerprint) const;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path root_;
};

}  // namespace lbchat::svc
