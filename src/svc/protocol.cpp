#include "svc/protocol.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/export.h"
#include "svc/json.h"

namespace lbchat::svc {
namespace {

/// Per-request cap on how long a "wait" may occupy the serve loop.
constexpr double kDefaultWaitTimeoutS = 10.0;
constexpr double kMaxWaitTimeoutS = 60.0;

ProtocolReply error_reply(const std::string& what) {
  return {"{\"ok\":false,\"error\":\"" + json_escape(what) + "\"}", false};
}

bool get_id(const JsonValue& root, std::uint64_t& id, ProtocolReply& err) {
  const JsonValue* v = root.get("id");
  if (v == nullptr || !v->is_number() || v->as_number() < 1.0 ||
      v->as_number() != std::floor(v->as_number())) {
    err = error_reply("\"id\" must be a positive integer");
    return false;
  }
  id = static_cast<std::uint64_t>(v->as_number());
  return true;
}

std::string stats_json(const ServiceStats& s) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"submitted\":%llu,\"completed\":%llu,\"cache_hits\":%llu,"
                "\"preemptions\":%llu,\"migrations\":%llu,\"failed\":%llu,"
                "\"cancelled\":%llu,\"recovered\":%llu,\"queued\":%zu,"
                "\"running\":%zu,\"queue_capacity\":%zu,\"workers\":%d,"
                "\"draining\":%s}",
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.preemptions),
                static_cast<unsigned long long>(s.migrations),
                static_cast<unsigned long long>(s.failed),
                static_cast<unsigned long long>(s.cancelled),
                static_cast<unsigned long long>(s.recovered), s.queued, s.running,
                s.queue_capacity, s.workers, s.draining ? "true" : "false");
  return buf;
}

}  // namespace

std::string job_status_json(const JobStatus& s) {
  char buf[160];
  std::string out = "{";
  std::snprintf(buf, sizeof buf, "\"id\":%llu,", static_cast<unsigned long long>(s.id));
  out += buf;
  out += "\"state\":\"" + std::string{to_string(s.state)} + "\",";
  out += "\"name\":\"" + json_escape(s.name) + "\",";
  out += "\"approach\":\"" + json_escape(s.approach) + "\",";
  std::snprintf(buf, sizeof buf, "\"priority\":%d,\"fingerprint\":\"%016" PRIx64 "\",",
                s.priority, s.fingerprint);
  out += buf;
  out += "\"progress_s\":" + obs::format_double(s.progress_s) + ",";
  out += "\"horizon_s\":" + obs::format_double(s.horizon_s) + ",";
  out += s.events ? "\"events\":true," : "\"events\":false,";
  out += s.cached ? "\"cached\":true," : "\"cached\":false,";
  out += s.held ? "\"held\":true," : "\"held\":false,";
  std::snprintf(buf, sizeof buf, "\"preemptions\":%d,\"migrations\":%d", s.preemptions,
                s.migrations);
  out += buf;
  if (!s.error.empty()) out += ",\"error\":\"" + json_escape(s.error) + "\"";
  if (!s.output_dir.empty()) {
    out += ",\"output_dir\":\"" + json_escape(s.output_dir) + "\"";
  }
  // Embedded checkpoint inspection (engine::ckpt_info_json) for preempted
  // jobs — the same object `ckpt_check --json` prints.
  if (!s.checkpoint_json.empty()) out += ",\"checkpoint\":" + s.checkpoint_json;
  out += "}";
  return out;
}

ProtocolReply handle_request(FleetService& service, std::string_view line) {
  std::string parse_error;
  const auto root = json_parse(line, parse_error);
  if (root == nullptr) return error_reply("invalid JSON: " + parse_error);
  if (!root->is_object()) return error_reply("request must be a JSON object");
  const JsonValue* cmd = root->get("cmd");
  if (cmd == nullptr || !cmd->is_string()) return error_reply("missing \"cmd\"");
  const std::string& c = cmd->as_string();

  if (c == "submit") {
    const JsonValue* spec = root->get("spec");
    if (spec == nullptr) return error_reply("missing \"spec\"");
    if (!spec->is_object()) return error_reply("\"spec\" must be an object");
    // The service wants the spec's *source text* (it persists the exact
    // submitted bytes), so slice the spec value's byte span — recorded by the
    // parser — out of the request line.
    std::string error;
    const std::uint64_t id = service.submit(
        line.substr(spec->source_begin(), spec->source_end() - spec->source_begin()),
        error);
    if (id == 0) return error_reply(error);
    const auto st = service.status(id);
    char buf[128];
    std::snprintf(buf, sizeof buf, "{\"ok\":true,\"id\":%llu,\"cached\":%s,\"fingerprint\":\"%016" PRIx64 "\"}",
                  static_cast<unsigned long long>(id),
                  st && st->cached ? "true" : "false", st ? st->fingerprint : 0);
    return {buf, false};
  }
  if (c == "status" || c == "wait") {
    std::uint64_t id = 0;
    ProtocolReply err;
    if (!get_id(*root, id, err)) return err;
    std::optional<JobStatus> st;
    if (c == "wait") {
      // Every wait is bounded: the daemon serves connections sequentially, so
      // an unbounded wait on a job that never terminates (held, drained)
      // would wedge the whole service. Clients re-poll until terminal.
      double timeout_s = kDefaultWaitTimeoutS;
      const JsonValue* t = root->get("timeout_s");
      if (t != nullptr) {
        if (!t->is_number() || t->as_number() < 0.0 || !std::isfinite(t->as_number())) {
          return error_reply("\"timeout_s\" must be a non-negative number");
        }
        timeout_s = std::min(t->as_number(), kMaxWaitTimeoutS);
      }
      JobStatus s;
      if (service.wait(id, s, timeout_s)) st = s;
    } else {
      st = service.status(id);
    }
    if (!st) return error_reply("unknown job");
    return {"{\"ok\":true,\"job\":" + job_status_json(*st) + "}", false};
  }
  if (c == "jobs") {
    std::string out = "{\"ok\":true,\"jobs\":[";
    bool first = true;
    for (const auto& s : service.jobs()) {
      if (!first) out += ',';
      first = false;
      out += job_status_json(s);
    }
    out += "]}";
    return {out, false};
  }
  if (c == "result") {
    std::uint64_t id = 0;
    ProtocolReply err;
    if (!get_id(*root, id, err)) return err;
    JobPayload payload;
    std::string error;
    if (!service.result(id, payload, error)) return error_reply(error);
    const auto st = service.status(id);
    std::string out = "{\"ok\":true";
    if (st && !st->output_dir.empty()) {
      out += ",\"output_dir\":\"" + json_escape(st->output_dir) + "\"";
    }
    out += ",\"cached\":" + std::string{st && st->cached ? "true" : "false"};
    out += ",\"manifest\":" + payload.manifest_json;  // verbatim: already JSON
    out += "}";
    return {out, false};
  }
  if (c == "cancel" || c == "release") {
    std::uint64_t id = 0;
    ProtocolReply err;
    if (!get_id(*root, id, err)) return err;
    const bool ok = c == "cancel" ? service.cancel(id) : service.release(id);
    if (!ok) return error_reply("job not in a " + c + "able state");
    return {"{\"ok\":true}", false};
  }
  if (c == "preempt") {
    std::uint64_t id = 0;
    ProtocolReply err;
    if (!get_id(*root, id, err)) return err;
    const JsonValue* hold = root->get("hold");
    if (hold != nullptr && !hold->is_bool()) return error_reply("\"hold\" must be a boolean");
    if (!service.preempt(id, hold != nullptr && hold->as_bool())) {
      return error_reply("job not in a preemptable state");
    }
    return {"{\"ok\":true}", false};
  }
  if (c == "stats") {
    return {"{\"ok\":true,\"stats\":" + stats_json(service.stats()) + "}", false};
  }
  if (c == "drain") {
    const std::size_t n = service.drain();
    char buf[64];
    std::snprintf(buf, sizeof buf, "{\"ok\":true,\"persisted\":%zu}", n);
    return {buf, false};
  }
  if (c == "shutdown") {
    return {"{\"ok\":true}", true};
  }
  return error_reply("unknown command \"" + c + "\"");
}

}  // namespace lbchat::svc
