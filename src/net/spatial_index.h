// Radio-range neighbor index over the fleet's per-tick position snapshot.
//
// Strategies ask "who is within radio range of vehicle v?" every tick; the
// all-pairs answer is O(n^2) per tick and a hard wall past a few hundred
// vehicles. This index rebuilds a uniform grid (cell size >= the query
// range, so a disc query touches at most a 3x3 cell neighborhood) once per
// tick from the cached vehicle positions and answers each query in output
// size + local density.
//
// Exactness contract (DESIGN.md §11): query(v) returns EXACTLY the vehicles
// b != v with distance(pos[v], pos[b]) <= range, in ascending-id order —
// the same set, same order, same inclusive boundary predicate as the legacy
// brute-force scan. Engine behaviour is therefore bit-identical with the
// index on or off, which is what keeps the committed golden digests valid.
#pragma once

#include <span>
#include <vector>

#include "common/geometry.h"
#include "common/spatial_grid.h"

namespace lbchat::net {

class NeighborIndex {
 public:
  /// Rebuild over a position snapshot (index i = vehicle id i). O(n).
  void rebuild(std::span<const Vec2> positions, double range_m);

  /// Append to `out` (after clearing it) every vehicle b != v with
  /// distance(pos[v], pos[b]) <= range, ascending by id.
  void query(int v, std::vector<int>& out) const;

  [[nodiscard]] double range() const { return range_m_; }
  [[nodiscard]] std::size_t size() const { return positions_.size(); }

 private:
  UniformGrid grid_;
  std::vector<Vec2> positions_;
  double range_m_ = 0.0;
};

}  // namespace lbchat::net
