#include "net/spatial_index.h"

#include <algorithm>

namespace lbchat::net {

void NeighborIndex::rebuild(std::span<const Vec2> positions, double range_m) {
  positions_.assign(positions.begin(), positions.end());
  range_m_ = range_m;
  // Cell size >= range keeps every disc query within a 3x3 neighborhood.
  grid_.rebuild(positions_, std::max(range_m, 1e-6));
}

void NeighborIndex::query(int v, std::vector<int>& out) const {
  out.clear();
  const Vec2& p = positions_[static_cast<std::size_t>(v)];
  grid_.for_each_candidate(p, range_m_, [&](std::uint32_t i) {
    if (static_cast<int>(i) == v) return;
    // Exact filter with the inclusive boundary the legacy scan uses
    // (FleetSim::in_range), against the same snapshot positions.
    if (distance(positions_[i], p) <= range_m_) out.push_back(static_cast<int>(i));
  });
  // Candidates arrive cell-major; the API contract is ascending id (so
  // strategy argmax loops visit peers in the same order as a brute scan).
  std::sort(out.begin(), out.end());
}

}  // namespace lbchat::net
