// Wireless communication substrate (paper §IV-A):
//  * distance -> packet-loss lookup table (shape follows the V2X PHY
//    evaluations of [13]: low loss near, steep rise toward max range);
//  * packet-level transfer progress with retransmissions and bandwidth;
//  * the WireSizeModel that maps logical payloads to paper-scale wire bytes
//    (52 MB model, 0.6 MB coreset, 184 B assist info) so transfer timings
//    match the paper even though the computational substrate is miniature.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace lbchat::net {

struct RadioConfig {
  double bandwidth_bps = 31e6;  ///< 31 Mbps max bandwidth
  int packet_bytes = 1500;
  int max_retransmissions = 3;  ///< per packet, upon losses
  /// Maximum communication range. The paper states 500 m in CARLA's city,
  /// where buildings and traffic shadow the link; on this simulator's open
  /// plane a shorter nominal range reproduces the same contact-duration
  /// statistics (tens of seconds, §I) that make the time budget binding.
  double max_range_m = 180.0;

  [[nodiscard]] double packets_per_second() const {
    return bandwidth_bps / (8.0 * static_cast<double>(packet_bytes));
  }
};

/// Distance-based per-packet loss probability via a lookup table with linear
/// interpolation (paper: "a distance-loss lookup table based on [13]").
class WirelessLossModel {
 public:
  WirelessLossModel(std::vector<double> distances, std::vector<double> losses);
  /// The default table used throughout the experiments, with its distance
  /// axis scaled to `max_range_m` (the loss *shape* is range-independent).
  static WirelessLossModel default_table(double max_range_m = 500.0);

  /// Per-packet loss probability at `distance` (1.0 beyond the table).
  [[nodiscard]] double packet_loss(double distance) const;

  /// Probability a packet is delivered within 1 + max_retransmissions
  /// attempts.
  [[nodiscard]] double delivery_probability(double distance, int max_retransmissions) const;

  /// Loss probability at a distance sampled uniformly from the table's
  /// support — the paper's model for infrastructure links ("a wireless loss
  /// uniformly sampled from the distance-loss lookup table").
  [[nodiscard]] double sample_uniform_loss(Rng& rng) const;

  [[nodiscard]] double max_distance() const { return distances_.back(); }

 private:
  std::vector<double> distances_;
  std::vector<double> losses_;
};

/// Paper-scale wire sizes for the logical payloads (see DESIGN.md).
struct WireSizeModel {
  std::size_t model_bytes = 52ull * 1024 * 1024;  ///< uncompressed model, 52 MB
  std::size_t coreset_bytes_per_sample = 4096;    ///< 150 samples ~ 0.6 MB
  std::size_t assist_info_bytes = 184;            ///< route + bandwidth info

  [[nodiscard]] std::size_t coreset_bytes(std::size_t num_samples) const {
    return num_samples * coreset_bytes_per_sample;
  }
  /// Wire bytes of a model compressed to reciprocal ratio psi. Rounded *up*
  /// so any nonzero psi costs at least one byte: truncation toward zero let a
  /// tiny psi map to a 0-byte — instantly "complete" — transfer.
  [[nodiscard]] std::size_t model_bytes_at(double psi) const {
    if (psi <= 0.0) return 0;
    if (psi >= 1.0) return model_bytes;
    return static_cast<std::size_t>(std::ceil(psi * static_cast<double>(model_bytes)));
  }
};

/// One in-flight point-to-point transfer. Progress is fluid per tick:
/// the expected goodput at the current distance is bandwidth * (1 - p) with
/// binomial packet noise (failed packets are re-queued by the link layer; the
/// retransmission cap enters the completion-probability *estimates*, matching
/// the paper's usage of [7]). A transfer fails when the pair leaves radio
/// range before completion.
class Transfer {
 public:
  Transfer(std::size_t total_bytes, const RadioConfig& radio) : radio_(radio),
                                                                remaining_(total_bytes) {}

  /// Advance by `dt` seconds at `distance`; `loss` is the per-packet loss
  /// model. `extra_loss` is an additional, independent per-packet loss
  /// probability (interference bursts from the fault model; 1.0 = the link
  /// is blacked out). Returns bytes delivered this tick.
  std::size_t tick(double distance, double dt, const WirelessLossModel& loss, Rng& rng,
                   double extra_loss = 0.0);

  [[nodiscard]] bool complete() const { return remaining_ == 0; }
  [[nodiscard]] std::size_t remaining_bytes() const { return remaining_; }

 private:
  RadioConfig radio_;
  std::size_t remaining_;
};

/// Expected time to push `bytes` across a link at (assumed constant)
/// `distance`, accounting for loss-driven goodput reduction. Infinity when
/// out of range.
[[nodiscard]] double expected_transfer_time(std::size_t bytes, double distance,
                                            const RadioConfig& radio,
                                            const WirelessLossModel& loss);

}  // namespace lbchat::net
