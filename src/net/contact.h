// Contact estimation and the exchange-priority score (paper §III-A, Eq. (5)).
//
// Vehicles exchange assistive information (location, speed, route over the
// next few minutes, available bandwidth — 184 bytes) and estimate:
//   * T_contact   — how long the pair stays within radio range,
//   * z_ij        — the truncated contact-duration priority of RoadTrain [7],
//   * p_ij        — the probability the model exchange completes, from the
//                   distance-based loss along the predicted trajectory,
//   * c_ij = z_ij * p_ij * min{B_i, B_j}   (Eq. (5)).
#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "net/wireless.h"
#include "sim/route.h"

namespace lbchat::net {

/// The assistive information a vehicle shares on encounter (184 bytes on the
/// wire per the paper; contents: pose, speed, near-future route, bandwidth).
struct AssistInfo {
  Vec2 pos;
  Vec2 velocity;   ///< current velocity vector (fallback predictor)
  double speed = 0.0;
  double route_s = 0.0;                 ///< current arc length on `route`
  /// Route for the next few minutes. Only LbChat shares routes; baselines
  /// leave this null and contact prediction falls back to constant-velocity
  /// extrapolation, which goes stale as soon as a vehicle turns — that
  /// difference is the paper's "route sharing" robustness mechanism.
  const sim::Route* route = nullptr;
  double bandwidth_bps = 31e6;
};

struct ContactEstimate {
  double duration_s = 0.0;     ///< predicted remaining time within range
  double mean_delivery = 0.0;  ///< mean per-packet delivery prob over the contact
  /// Mean goodput fraction (1 - packet loss) over the contact: the expected
  /// effective bandwidth is bandwidth * mean_goodput. LbChat sizes its
  /// exchanges against this (loss-aware); the baselines do not.
  double mean_goodput = 0.0;
  std::vector<double> distances;  ///< sampled predicted pair distances (1 Hz)
};

/// Predict the contact window by rolling both vehicles forward along their
/// shared routes at their current speeds (sampled at 1 s for `horizon_s`).
[[nodiscard]] ContactEstimate estimate_contact(const AssistInfo& a, const AssistInfo& b,
                                               const RadioConfig& radio,
                                               const WirelessLossModel& loss,
                                               double horizon_s = 120.0);

/// z_ij: truncated ratio of predicted contact duration to the time needed for
/// a full exchange (T_need): min(T_contact / T_need, 1). Larger means the
/// contact, though possibly short, suffices.
[[nodiscard]] double contact_priority(const ContactEstimate& contact, double needed_s);

/// p_ij: probability proxy for completing a model send within the contact,
/// from the per-packet delivery probabilities along the predicted trajectory.
[[nodiscard]] double completion_probability(const ContactEstimate& contact);

/// Eq. (5): c_ij = z_ij * p_ij * min{B_i, B_j}.
[[nodiscard]] double priority_score(const AssistInfo& a, const AssistInfo& b,
                                    const ContactEstimate& contact, double needed_s);

}  // namespace lbchat::net
