#include "net/contact.h"

#include <algorithm>
#include <cmath>

namespace lbchat::net {

namespace {

Vec2 predicted_position(const AssistInfo& v, double dt) {
  if (v.route == nullptr || v.route->empty()) return v.pos + v.velocity * dt;
  return v.route->position_at(v.route_s + v.speed * dt);
}

}  // namespace

ContactEstimate estimate_contact(const AssistInfo& a, const AssistInfo& b,
                                 const RadioConfig& radio, const WirelessLossModel& loss,
                                 double horizon_s) {
  ContactEstimate est;
  double delivery_sum = 0.0;
  double goodput_sum = 0.0;
  for (double t = 0.0; t <= horizon_s; t += 1.0) {
    const double d = distance(predicted_position(a, t), predicted_position(b, t));
    if (d > radio.max_range_m) break;
    est.distances.push_back(d);
    delivery_sum += loss.delivery_probability(d, radio.max_retransmissions);
    goodput_sum += 1.0 - loss.packet_loss(d);
    est.duration_s = t + 1.0;
  }
  if (!est.distances.empty()) {
    const auto n = static_cast<double>(est.distances.size());
    est.mean_delivery = delivery_sum / n;
    est.mean_goodput = goodput_sum / n;
  }
  return est;
}

double contact_priority(const ContactEstimate& contact, double needed_s) {
  if (needed_s <= 0.0) return 1.0;
  return std::min(contact.duration_s / needed_s, 1.0);
}

double completion_probability(const ContactEstimate& contact) {
  return std::clamp(contact.mean_delivery, 0.0, 1.0);
}

double priority_score(const AssistInfo& a, const AssistInfo& b, const ContactEstimate& contact,
                      double needed_s) {
  return contact_priority(contact, needed_s) * completion_probability(contact) *
         std::min(a.bandwidth_bps, b.bandwidth_bps);
}

}  // namespace lbchat::net
