#include "net/wireless.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/interpolation.h"
#include "obs/trace.h"

namespace lbchat::net {

WirelessLossModel::WirelessLossModel(std::vector<double> distances, std::vector<double> losses)
    : distances_(std::move(distances)), losses_(std::move(losses)) {
  if (distances_.size() != losses_.size() || distances_.size() < 2) {
    throw std::invalid_argument{"WirelessLossModel: bad table"};
  }
  for (std::size_t i = 1; i < distances_.size(); ++i) {
    if (distances_[i] <= distances_[i - 1]) {
      throw std::invalid_argument{"WirelessLossModel: distances must increase"};
    }
  }
  for (const double l : losses_) {
    if (l < 0.0 || l > 1.0) throw std::invalid_argument{"WirelessLossModel: loss out of [0,1]"};
  }
}

WirelessLossModel WirelessLossModel::default_table(double max_range_m) {
  // Qualitative shape of the 802.11bd-class V2X PHY evaluations in [13]:
  // near-zero loss close in, a knee in the mid range, steep rise toward the
  // maximum communication range.
  std::vector<double> distances{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  for (double& d : distances) d *= max_range_m;
  return WirelessLossModel{std::move(distances),
                           {0.02, 0.05, 0.10, 0.15, 0.22, 0.30, 0.40, 0.55, 0.70, 0.85, 0.95}};
}

double WirelessLossModel::packet_loss(double distance) const {
  if (distance >= distances_.back()) return 1.0;
  return lerp_table(distances_, losses_, distance);
}

double WirelessLossModel::delivery_probability(double distance, int max_retransmissions) const {
  const double p = packet_loss(distance);
  return 1.0 - std::pow(p, static_cast<double>(max_retransmissions + 1));
}

double WirelessLossModel::sample_uniform_loss(Rng& rng) const {
  return packet_loss(rng.uniform(distances_.front(), distances_.back()));
}

std::size_t Transfer::tick(double distance, double dt, const WirelessLossModel& loss, Rng& rng,
                           double extra_loss) {
  LBCHAT_OBS_SPAN("net.transfer_tick");
  if (remaining_ == 0 || dt <= 0.0) return 0;
  if (distance > radio_.max_range_m) return 0;
  // Independent loss processes compose: p = 1 - (1-p_dist)(1-p_extra).
  // extra_loss == 0 reduces to p_dist exactly (bit-identical to a run
  // without the fault model).
  const double p_dist = loss.packet_loss(distance);
  const double p = p_dist + extra_loss - p_dist * extra_loss;
  const double attempts = radio_.packets_per_second() * dt;
  if (attempts <= 0.0 || p >= 1.0) return 0;
  // Expected successes with normal-approximated binomial noise; each failed
  // attempt is re-queued, so goodput per attempt is (1 - p).
  const double mean_ok = attempts * (1.0 - p);
  const double sd = std::sqrt(std::max(attempts * p * (1.0 - p), 0.0));
  const double ok = std::max(0.0, rng.normal(mean_ok, sd));
  auto bytes = static_cast<std::size_t>(ok * static_cast<double>(radio_.packet_bytes));
  bytes = std::min(bytes, remaining_);
  remaining_ -= bytes;
  return bytes;
}

double expected_transfer_time(std::size_t bytes, double distance, const RadioConfig& radio,
                              const WirelessLossModel& loss) {
  if (bytes == 0) return 0.0;
  if (distance > radio.max_range_m) return std::numeric_limits<double>::infinity();
  const double p = loss.packet_loss(distance);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  const double goodput_bps = radio.bandwidth_bps * (1.0 - p);
  return static_cast<double>(bytes) * 8.0 / goodput_bps;
}

}  // namespace lbchat::net
