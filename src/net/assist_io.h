// Wire serialization of assistive information (net::AssistInfo).
//
// The shared route travels as its road-graph node sequence (compact — the
// receiver holds the same map and rebuilds the polyline, as a navigation
// service would). AssistInfo::route is a non-owning pointer, so the rebuilt
// Route must outlive the AssistInfo referencing it — DeserializedAssist
// bundles the two.
#pragma once

#include <cmath>
#include <stdexcept>

#include "common/bytes.h"
#include "common/frame.h"
#include "net/contact.h"

namespace lbchat::net {

// Magnitude bounds for deserialized assist fields. Generous — a metro-scale
// world is O(1e4) m and V2V bandwidth O(1e8) bps — but finite, so a hostile
// frame cannot park absurd coordinates or bandwidth claims in the contact
// estimator. All enforced in read_assist via WireValueError.
inline constexpr double kMaxWireAssistCoordM = 1e7;
inline constexpr double kMaxWireAssistSpeedMps = 1e4;
inline constexpr double kMaxWireAssistRouteS = 1e9;
inline constexpr double kMaxWireAssistBandwidthBps = 1e12;

inline void write_assist(ByteWriter& w, const AssistInfo& info) {
  w.write_f64(info.pos.x);
  w.write_f64(info.pos.y);
  w.write_f64(info.velocity.x);
  w.write_f64(info.velocity.y);
  w.write_f64(info.speed);
  w.write_f64(info.route_s);
  w.write_f64(info.bandwidth_bps);
  std::uint32_t n = 0;
  if (info.route != nullptr && !info.route->empty()) {
    n = static_cast<std::uint32_t>(info.route->node_sequence().size());
  }
  w.write_u32(n);
  if (n > 0) {
    for (const int node : info.route->node_sequence()) {
      w.write_i32(node);
    }
  }
}

/// AssistInfo plus the storage backing its route pointer. `info.route` is
/// kept null in storage (the struct stays safely movable); call view() to get
/// an AssistInfo bound to the rebuilt route.
struct DeserializedAssist {
  AssistInfo info;
  sim::Route route;  ///< rebuilt shared route (empty when none was sent)

  /// The received AssistInfo with its route pointer bound to `route`. The
  /// returned value must not outlive this DeserializedAssist.
  [[nodiscard]] AssistInfo view() const {
    AssistInfo v = info;
    v.route = route.empty() ? nullptr : &route;
    return v;
  }
};

/// Reads and validates assist info against the shared town map. Throws
/// std::out_of_range (truncated), WireValueError (non-finite or out-of-bound
/// fields), or std::runtime_error (route node ids outside the map) — corrupt
/// values would otherwise poison every downstream contact estimate.
inline DeserializedAssist read_assist(ByteReader& r, const sim::TownMap& map) {
  DeserializedAssist out;
  AssistInfo& info = out.info;
  info.pos.x = r.read_f64();
  info.pos.y = r.read_f64();
  info.velocity.x = r.read_f64();
  info.velocity.y = r.read_f64();
  info.speed = r.read_f64();
  info.route_s = r.read_f64();
  info.bandwidth_bps = r.read_f64();
  const auto bounded = [](double v, double cap) {
    return std::isfinite(v) && std::fabs(v) <= cap;
  };
  if (!bounded(info.pos.x, kMaxWireAssistCoordM) ||
      !bounded(info.pos.y, kMaxWireAssistCoordM) ||
      !bounded(info.velocity.x, kMaxWireAssistSpeedMps) ||
      !bounded(info.velocity.y, kMaxWireAssistSpeedMps) ||
      !bounded(info.speed, kMaxWireAssistSpeedMps) ||
      !bounded(info.route_s, kMaxWireAssistRouteS) ||
      !std::isfinite(info.bandwidth_bps) || info.bandwidth_bps < 0.0 ||
      info.bandwidth_bps > kMaxWireAssistBandwidthBps) {
    throw WireValueError{"read_assist: field out of range"};
  }
  const std::uint32_t n = r.read_u32();
  if (n > 0) {
    // Each node id is 4 bytes; reject a corrupt count before reserving.
    if (n > r.remaining() / 4) {
      throw std::out_of_range{"read_assist: route length underflow"};
    }
    std::vector<int> seq;
    seq.reserve(n);
    const auto num_nodes = static_cast<int>(map.nodes().size());
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::int32_t node = r.read_i32();
      if (node < 0 || node >= num_nodes) {
        throw std::runtime_error{"read_assist: route node id out of range"};
      }
      seq.push_back(node);
    }
    out.route = sim::Route{std::move(seq), map};
  }
  return out;
}

}  // namespace lbchat::net
