// Online evaluation (paper §IV-D): deploy a trained model on a testing
// autopilot and navigate predefined routes; the metric is the driving
// success rate — reaching the destination within a time budget without
// colliding with cars or pedestrians.
//
// Conditions mirror the CARLA benchmark [24]: Straight, One Turn, full
// navigation in an empty town (Navi. Empty), with traffic (Navi. Normal),
// and with 1.2x traffic (Navi. Dense).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "nn/policy.h"
#include "sim/world.h"

namespace lbchat::eval {

enum class DrivingTask : int {
  kStraight = 0,
  kOneTurn = 1,
  kNaviEmpty = 2,
  kNaviNormal = 3,
  kNaviDense = 4,
};

inline constexpr std::array<DrivingTask, 5> kAllTasks{
    DrivingTask::kStraight, DrivingTask::kOneTurn, DrivingTask::kNaviEmpty,
    DrivingTask::kNaviNormal, DrivingTask::kNaviDense};

[[nodiscard]] std::string_view task_name(DrivingTask task);

struct EvalConfig {
  /// Base world (its map seed should match the training scenario so models
  /// are evaluated on the town they trained in, as in the paper).
  sim::WorldConfig world{};
  std::uint64_t world_seed = 1;
  int trials = 16;  ///< trials per condition

  // Test-autopilot controller.
  double control_dt = 0.25;
  double bev_period_s = 0.5;  ///< model inference period (2 fps, as collected)
  double max_speed = 12.0;
  double accel = 2.5;
  double brake_decel = 4.5;
  double max_yaw_rate = 1.5;  ///< rad/s steering authority

  // Trial termination.
  double goal_radius_m = 10.0;
  double budget_factor = 2.5;    ///< time budget = factor * length / nominal
  double nominal_speed = 7.0;    ///< m/s
  double min_budget_s = 45.0;
  double abort_offroute_m = 30.0;  ///< declare the car lost beyond this

  // Condition parameters.
  double dense_traffic_factor = 1.2;  ///< Navi. Dense vs Navi. Normal
  double warmup_max_s = 40.0;         ///< traffic warm-up randomized per trial

  // Route selection.
  double straight_min_m = 150.0;
  double navi_min_m = 400.0;
  int route_attempts = 200;
};

struct TrialResult {
  bool success = false;
  bool collision = false;
  bool timeout = false;
  bool lost = false;  ///< wandered too far off the route
  double duration_s = 0.0;
  double route_length_m = 0.0;
};

class OnlineEvaluator {
 public:
  explicit OnlineEvaluator(EvalConfig cfg = {});

  /// Fraction of successful trials for `model` under `task`. Routes, traffic,
  /// and warm-ups are deterministic in (task, trial index), so different
  /// models face identical situations (paired comparison).
  [[nodiscard]] double success_rate(const nn::DrivingPolicy& model, DrivingTask task) const;

  [[nodiscard]] TrialResult run_trial(const nn::DrivingPolicy& model, DrivingTask task,
                                      int trial) const;

  [[nodiscard]] const EvalConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] sim::WorldConfig world_for(DrivingTask task) const;
  [[nodiscard]] sim::Route pick_route(const sim::TownMap& map, DrivingTask task, Rng& rng) const;

  EvalConfig cfg_;
};

}  // namespace lbchat::eval
