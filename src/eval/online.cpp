#include "eval/online.h"

#include <algorithm>
#include <cmath>

#include "sim/route.h"

namespace lbchat::eval {

using data::Command;
using sim::Route;

std::string_view task_name(DrivingTask task) {
  switch (task) {
    case DrivingTask::kStraight: return "Straight";
    case DrivingTask::kOneTurn: return "One Turn";
    case DrivingTask::kNaviEmpty: return "Navi. (Empty)";
    case DrivingTask::kNaviNormal: return "Navi. (Normal)";
    case DrivingTask::kNaviDense: return "Navi. (Dense)";
  }
  return "?";
}

OnlineEvaluator::OnlineEvaluator(EvalConfig cfg) : cfg_(cfg) {}

sim::WorldConfig OnlineEvaluator::world_for(DrivingTask task) const {
  sim::WorldConfig w = cfg_.world;
  switch (task) {
    case DrivingTask::kStraight:
    case DrivingTask::kOneTurn:
    case DrivingTask::kNaviEmpty:
      w.num_background_cars = 0;
      w.num_pedestrians = 0;
      break;
    case DrivingTask::kNaviNormal:
      break;
    case DrivingTask::kNaviDense:
      w.num_background_cars = static_cast<int>(
          std::lround(w.num_background_cars * cfg_.dense_traffic_factor));
      w.num_pedestrians =
          static_cast<int>(std::lround(w.num_pedestrians * cfg_.dense_traffic_factor));
      break;
  }
  return w;
}

namespace {

/// Number of actual turn commands (left/right/straight-at-intersection).
int count_turns(const Route& r) { return static_cast<int>(r.turns().size()); }

/// Sharp geometric direction changes anywhere along the polyline (includes
/// commanded turns AND command-less degree-2 corners such as the rural ring
/// bends). "Straight" routes must have none.
int sharp_bends(const Route& r) {
  const auto& pts = r.points();
  int bends = 0;
  for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
    const double angle = wrap_angle((pts[i + 1] - pts[i]).heading() -
                                    (pts[i] - pts[i - 1]).heading());
    if (std::abs(angle) > M_PI / 6.0) ++bends;
  }
  return bends;
}

}  // namespace

Route OnlineEvaluator::pick_route(const sim::TownMap& map, DrivingTask task, Rng& rng) const {
  Route best;
  double best_score = -1e18;
  for (int attempt = 0; attempt < cfg_.route_attempts; ++attempt) {
    const int from = map.random_node(rng);
    const int to = map.random_node(rng);
    if (from == to) continue;
    Route r = sim::plan_route(map, from, to);
    if (r.empty()) continue;
    const double len = r.length();
    const int turns = count_turns(r);
    const int bends = sharp_bends(r);
    double score = 0.0;
    switch (task) {
      case DrivingTask::kStraight:
        // A sufficiently long route with no decisions AND no sharp geometry.
        if (turns != 0 || bends != 0 || len < cfg_.straight_min_m) continue;
        score = -std::abs(len - 250.0);
        break;
      case DrivingTask::kOneTurn:
        if (turns != 1 || bends > 1 || len < cfg_.straight_min_m) continue;
        score = -std::abs(len - 300.0);
        break;
      default:
        // Full navigation: long route with multiple decision points.
        if (turns < 2 || len < cfg_.navi_min_m) continue;
        score = static_cast<double>(turns) - std::abs(len - 600.0) / 1000.0;
        break;
    }
    if (score > best_score) {
      best_score = score;
      best = std::move(r);
    }
    if (best_score > -40.0 && attempt > cfg_.route_attempts / 2) break;
  }
  if (best.empty()) {
    // Fallback: relax to "any non-trivial route" so a trial always exists.
    for (int attempt = 0; attempt < cfg_.route_attempts; ++attempt) {
      Route r = sim::plan_route(map, map.random_node(rng), map.random_node(rng));
      if (!r.empty() && r.length() >= 100.0) return r;
    }
  }
  return best;
}

TrialResult OnlineEvaluator::run_trial(const nn::DrivingPolicy& model, DrivingTask task,
                                       int trial) const {
  sim::World world{world_for(task), /*num_vehicles=*/0, cfg_.world_seed};
  Rng rng = Rng{cfg_.world_seed}
                .fork("online-eval")
                .fork(hash_name(task_name(task)))
                .fork(static_cast<std::uint64_t>(trial));

  // Deterministic per-trial traffic warm-up so trials differ but repeat.
  const double warmup = rng.uniform(0.0, cfg_.warmup_max_s);
  for (double t = 0.0; t < warmup; t += 0.5) world.step(0.5);

  const Route route = pick_route(world.map(), task, rng);
  TrialResult result;
  if (route.empty()) return result;
  result.route_length_m = route.length();

  // Start in the right-hand lane (the pose distribution the model trained
  // on), and let traffic clear the spawn point first if it is occupied.
  Vec2 pos = world.lane_position(route, 0.0);
  // Wait for a generous clear zone so the test car neither spawns into
  // traffic nor gets rear-ended while accelerating from rest.
  for (int wait = 0; wait < 80 && world.collides(pos, 10.0); ++wait) {
    world.step(0.5);
  }
  double heading = route.heading_at(0.0);
  double speed = 0.0;
  const Vec2 goal = route.position_at(route.length());
  const double budget =
      std::max(cfg_.budget_factor * route.length() / cfg_.nominal_speed, cfg_.min_budget_s);

  // Controller state refreshed at each model inference.
  Vec2 aim_world = route.position_at(std::min(10.0, route.length()));
  double desired_speed = 0.0;
  double next_infer = 0.0;

  const double wp_dt = world.config().waypoint_dt_s;
  for (double t = 0.0; t < budget; t += cfg_.control_dt) {
    world.set_external_car(pos);
    world.step(cfg_.control_dt);

    if (t >= next_infer) {
      next_infer = t + cfg_.bev_period_s;
      const double s_proj = route.project(pos);
      const Command cmd = route.command_at(s_proj);
      const data::BevGrid bev = world.render_ego_bev(pos, heading, route, s_proj);
      const nn::WaypointVector wp = model.predict(bev, cmd);
      // First waypoint (t + wp_dt) sets the speed; the second sets the aim.
      const Vec2 w0{wp[0] * data::kWaypointScale, wp[1] * data::kWaypointScale};
      const Vec2 w1{wp[2] * data::kWaypointScale, wp[3] * data::kWaypointScale};
      desired_speed = std::clamp(w0.norm() / wp_dt, 0.0, cfg_.max_speed);
      const Vec2 aim_ego = w1.norm() > 1.0 ? w1 : w0;
      aim_world = to_world_frame(aim_ego, pos, heading);
    }

    // Steering: turn toward the aim point (only while moving).
    if (speed > 0.3) {
      const Vec2 aim_ego = to_ego_frame(aim_world, pos, heading);
      const double err = std::atan2(aim_ego.y, std::max(aim_ego.x, 0.1));
      const double max_step = cfg_.max_yaw_rate * cfg_.control_dt;
      heading = wrap_angle(heading + std::clamp(err, -max_step, max_step));
    }
    // Longitudinal control. A short-range automatic-emergency-braking layer
    // caps the commanded speed against obstacles dead ahead (<= 18 m): a
    // fixed controller-level safety net applied identically to every model,
    // as production vehicles would run under any driving policy.
    double command_speed = desired_speed;
    {
      double gap = 1e18;
      const auto scan = [&](const Vec2& obstacle, double radius) {
        const Vec2 e = to_ego_frame(obstacle, pos, heading);
        if (e.x > 0.3 && e.x <= 18.0 && std::abs(e.y) <= 1.6 + radius) {
          gap = std::min(gap, e.x);
        }
      };
      for (const Vec2& c : world.car_positions()) scan(c, world.config().car_radius_m);
      for (const Vec2& p : world.pedestrian_positions()) scan(p, world.config().ped_radius_m);
      if (gap < 1e18) {
        const double cap = std::sqrt(2.0 * cfg_.brake_decel * std::max(gap - 4.0, 0.0));
        command_speed = std::min(command_speed, cap);
      }
    }
    if (speed < command_speed) {
      speed = std::min(command_speed, speed + cfg_.accel * cfg_.control_dt);
    } else {
      speed = std::max(command_speed, speed - cfg_.brake_decel * cfg_.control_dt);
    }
    pos += Vec2{std::cos(heading), std::sin(heading)} * (speed * cfg_.control_dt);

    result.duration_s = t;
    if (world.collides(pos, world.config().car_radius_m)) {
      result.collision = true;
      break;
    }
    if (distance(pos, goal) <= cfg_.goal_radius_m) {
      result.success = true;
      break;
    }
    const double s_now = route.project(pos);
    if (distance(pos, route.position_at(s_now)) > cfg_.abort_offroute_m) {
      result.lost = true;
      break;
    }
  }
  if (!result.success && !result.collision && !result.lost) result.timeout = true;
  world.set_external_car(std::nullopt);
  return result;
}

double OnlineEvaluator::success_rate(const nn::DrivingPolicy& model, DrivingTask task) const {
  if (cfg_.trials <= 0) return 0.0;
  int ok = 0;
  for (int trial = 0; trial < cfg_.trials; ++trial) {
    if (run_trial(model, task, trial).success) ++ok;
  }
  return static_cast<double>(ok) / cfg_.trials;
}

}  // namespace lbchat::eval
