// Coreset construction and evaluation (paper §II-B, §III-B, §III-D).
//
// Implements:
//  * the penalized local loss f(x; xi) of Eq. (6): weighted empirical risk
//    + lambda_1 * ||x|| (L2 of the parameters) + lambda_2 * sigma(x), where
//    sigma is the per-command loss-balance penalty;
//  * Algorithm 1, layered-sampling coreset construction [15]: partition the
//    dataset into concentric loss-rings around the smallest-loss sample and
//    take a w(d)-weighted random sample from each ring;
//  * coreset merge (union) and 'reduce' [10], which together keep the coreset
//    size constant under frequent encounters (§III-D fast path).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/frame.h"
#include "nn/policy.h"

namespace lbchat::nn {
class Int8Policy;  // nn/int8_policy.h — forward-only quantized eval twin
}

namespace lbchat::coreset {

/// Coefficients of the two penalty terms in Eq. (6).
struct PenaltyConfig {
  double lambda1 = 1e-4;  ///< structural risk: L2 norm of the parameters
  double lambda2 = 0.05;  ///< problem-dependent sigma(x): command-balance
};

/// sigma(x) for the BEV driving model: the paper defines it as "the entropy of
/// the losses observed with data samples of different driving commands" so the
/// model addresses all commands without bias. Uniform per-command losses are
/// the desired (unbiased) state and have *maximal* entropy, so the quantity
/// actually minimized is the entropy gap log(#commands) - H(normalized
/// per-command losses), which is >= 0 and zero exactly at balance.
double command_balance_penalty(const nn::DrivingPolicy& model,
                               std::span<const data::Sample> samples,
                               std::span<const double> weights = {});
double command_balance_penalty(const nn::Int8Policy& model,
                               std::span<const data::Sample> samples,
                               std::span<const double> weights = {});

/// Full penalized loss f(x; xi) of Eq. (6) over weighted samples. `weights`
/// empty means "use each sample's own w(d)". Note this is a weighted *sum*
/// (Eq. (2)/(4)), not a mean, so f(x; C) approximates f(x; D) in magnitude.
double penalized_loss(const nn::DrivingPolicy& model, std::span<const data::Sample> samples,
                      std::span<const double> weights = {}, const PenaltyConfig& penalty = {});
/// Int8 twin (DESIGN.md §15): same reductions over the quantized model's
/// sample losses; the ||x|| term uses the dequantized parameter norm.
double penalized_loss(const nn::Int8Policy& model, std::span<const data::Sample> samples,
                      std::span<const double> weights = {}, const PenaltyConfig& penalty = {});

/// A coreset C: samples plus their in-coreset weights w_C(d) (distinct from
/// the original weights w(d), which remain in Sample::weight).
struct Coreset {
  data::BevSpec spec = data::kDefaultBevSpec;
  std::vector<data::Sample> samples;
  std::vector<double> wc;  ///< w_C(d), parallel to samples

  [[nodiscard]] std::size_t size() const { return samples.size(); }
  [[nodiscard]] bool empty() const { return samples.empty(); }
  [[nodiscard]] double total_weight() const;
  /// Logical wire size (packed BEV bits + labels + w_C), before the
  /// net::WireSizeModel rescales it to paper-scale bytes.
  [[nodiscard]] std::size_t logical_bytes() const;
};

struct CoresetConfig {
  std::size_t target_size = 150;  ///< |C|; the paper's default is 150 frames
  PenaltyConfig penalty;
};

/// Result of the layer partition step of Algorithm 1 (exposed for tests).
struct LayerPartition {
  double center_loss = 0.0;          ///< f(x; d~) = min_d f(x; d)
  double ring_radius = 0.0;          ///< R = f(x; D) / |D|
  std::vector<int> layer_of;         ///< layer index per dataset sample
  int num_layers = 0;                ///< L + 1 populated layer slots
};

/// Lines 1-6 of Algorithm 1: partition by per-sample loss into concentric
/// rings. A sample with loss distance dist <= R lands in layer 0; otherwise in
/// layer floor(log2(dist / R)), clamped to ceil(log2(|D| + 1)) layers.
LayerPartition partition_into_layers(const nn::DrivingPolicy& model,
                                     const data::WeightedDataset& dataset);

/// Algorithm 1 end-to-end: layered-sampling coreset construction. Per-layer
/// budgets are proportional to layer weight mass (>= 1 sample per non-empty
/// layer); sampling within a layer is w(d)-weighted without replacement; the
/// in-coreset weight is w_C(d) = w(d) * (layer weight) / (selected weight),
/// which preserves each layer's total mass and reduces to the paper's line 12
/// under equal w(d).
Coreset build_layered_coreset(const data::WeightedDataset& dataset,
                              const nn::DrivingPolicy& model, const CoresetConfig& cfg, Rng& rng);

/// f(x; C) of Eq. (4)/(6): penalized weighted-sum loss on the coreset.
double evaluate_on_coreset(const nn::DrivingPolicy& model, const Coreset& c,
                           const PenaltyConfig& penalty = {});
double evaluate_on_coreset(const nn::Int8Policy& model, const Coreset& c,
                           const PenaltyConfig& penalty = {});

/// Union of two coresets (valid epsilon-coreset of the union of the original
/// datasets when those are disjoint; paper §III-D).
Coreset merge_coresets(const Coreset& a, const Coreset& b);

/// 'Reduce' operation: shrink a coreset back to `target` samples by running
/// layered sampling over the coreset itself (treating w_C as the weights), so
/// merge-then-reduce keeps |C| constant under frequent encounters.
Coreset reduce_coreset(const Coreset& c, const nn::DrivingPolicy& model, std::size_t target,
                       Rng& rng);

}  // namespace lbchat::coreset
