// Alternative coreset construction strategies (paper §V "Discussion"):
// the paper notes that "other kinds of coreset construction strategies
// (e.g., random sampling based [16] and clustering based algorithms [31])"
// can be adapted in LbChat, since model-value assessment only needs loss
// differences on the same sets of data samples.
//
// Implemented here:
//  * uniform / sensitivity-flavoured random sampling (importance sampling by
//    per-sample loss, the practical core of [16]);
//  * clustering-based construction in loss space (greedy k-centre over
//    per-sample losses, one representative per cluster, cluster-mass weights
//    — the spirit of the robust coreset of [31] at this substrate's scale).
//
// All constructions return the same Coreset type, so LbChat can swap them in
// unchanged (CoresetMethod in the strategy options).
#pragma once

#include <string_view>

#include "coreset/coreset.h"

namespace lbchat::coreset {

enum class CoresetMethod {
  kLayered = 0,    ///< Algorithm 1 (the paper's default)
  kUniform = 1,    ///< w(d)-weighted random sampling, no layering
  kSensitivity = 2,  ///< importance sampling proportional to w(d) * loss
  kClustering = 3,   ///< greedy k-centre in loss space
};

[[nodiscard]] std::string_view coreset_method_name(CoresetMethod method);

/// w(d)-weighted random sampling without replacement; w_C rescales the
/// selected mass back to the dataset mass (an unbiased estimator, but without
/// Algorithm 1's per-ring variance control).
[[nodiscard]] Coreset build_uniform_coreset(const data::WeightedDataset& dataset,
                                            const CoresetConfig& cfg, Rng& rng);

/// Sensitivity-style importance sampling: selection probability proportional
/// to w(d) * (loss + epsilon), with inverse-probability w_C weights — samples
/// that dominate the objective are kept preferentially ([16]'s principle).
[[nodiscard]] Coreset build_sensitivity_coreset(const data::WeightedDataset& dataset,
                                                const nn::DrivingPolicy& model,
                                                const CoresetConfig& cfg, Rng& rng);

/// Clustering-based construction: greedy k-centre over per-sample losses;
/// each selected centre represents its loss-space cluster and carries the
/// cluster's weight mass.
[[nodiscard]] Coreset build_clustering_coreset(const data::WeightedDataset& dataset,
                                               const nn::DrivingPolicy& model,
                                               const CoresetConfig& cfg, Rng& rng);

/// Dispatch on the method (kLayered routes to build_layered_coreset).
[[nodiscard]] Coreset build_coreset(CoresetMethod method, const data::WeightedDataset& dataset,
                                    const nn::DrivingPolicy& model, const CoresetConfig& cfg,
                                    Rng& rng);

}  // namespace lbchat::coreset
