#include "coreset/alternatives.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lbchat::coreset {

std::string_view coreset_method_name(CoresetMethod method) {
  switch (method) {
    case CoresetMethod::kLayered: return "layered";
    case CoresetMethod::kUniform: return "uniform";
    case CoresetMethod::kSensitivity: return "sensitivity";
    case CoresetMethod::kClustering: return "clustering";
  }
  return "?";
}

namespace {

Coreset whole_dataset_as_coreset(const data::WeightedDataset& dataset) {
  Coreset out;
  out.spec = dataset.spec();
  out.samples = dataset.samples();
  out.wc.reserve(dataset.size());
  for (const auto& s : out.samples) out.wc.push_back(s.weight);
  return out;
}

}  // namespace

Coreset build_uniform_coreset(const data::WeightedDataset& dataset, const CoresetConfig& cfg,
                              Rng& rng) {
  Coreset out;
  out.spec = dataset.spec();
  if (dataset.empty() || cfg.target_size == 0) return out;
  if (cfg.target_size >= dataset.size()) return whole_dataset_as_coreset(dataset);

  std::vector<double> weights(dataset.size());
  double mass = 0.0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    weights[i] = std::max(dataset[i].weight, 0.0);
    mass += weights[i];
  }
  const auto picked = rng.weighted_sample_without_replacement(weights, cfg.target_size);
  double selected = 0.0;
  for (const auto i : picked) selected += weights[i];
  const double scale = selected > 0.0 ? mass / selected : 1.0;
  for (const auto i : picked) {
    out.samples.push_back(dataset[i]);
    out.wc.push_back(weights[i] * scale);
  }
  return out;
}

Coreset build_sensitivity_coreset(const data::WeightedDataset& dataset,
                                  const nn::DrivingPolicy& model, const CoresetConfig& cfg,
                                  Rng& rng) {
  Coreset out;
  out.spec = dataset.spec();
  if (dataset.empty() || cfg.target_size == 0) return out;
  if (cfg.target_size >= dataset.size()) return whole_dataset_as_coreset(dataset);

  // Importance ~ w(d) * (loss(d) + eps): the per-sample contribution to the
  // weighted objective. w_C uses inverse importance so the estimator stays
  // unbiased for f(x; D) at the construction model.
  const double eps = 1e-3;
  std::vector<double> importance(dataset.size());
  double dataset_mass = 0.0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    importance[i] = std::max(dataset[i].weight, 0.0) * (model.sample_loss(dataset[i]) + eps);
    dataset_mass += std::max(dataset[i].weight, 0.0);
  }
  double total_importance = 0.0;
  for (const double v : importance) total_importance += v;
  if (total_importance <= 0.0) return build_uniform_coreset(dataset, cfg, rng);

  const auto picked = rng.weighted_sample_without_replacement(importance, cfg.target_size);
  // Inverse-probability weighting, then rescale so the coreset carries the
  // dataset's full weight mass (keeps f(x; C) on the f(x; D) scale).
  double mass = 0.0;
  std::vector<double> raw(picked.size());
  for (std::size_t k = 0; k < picked.size(); ++k) {
    const auto i = picked[k];
    raw[k] = std::max(dataset[i].weight, 0.0) * total_importance /
             (static_cast<double>(picked.size()) * importance[i]);
    mass += raw[k];
  }
  const double scale = mass > 0.0 ? dataset_mass / mass : 1.0;
  for (std::size_t k = 0; k < picked.size(); ++k) {
    out.samples.push_back(dataset[picked[k]]);
    out.wc.push_back(raw[k] * scale);
  }
  return out;
}

Coreset build_clustering_coreset(const data::WeightedDataset& dataset,
                                 const nn::DrivingPolicy& model, const CoresetConfig& cfg,
                                 Rng& rng) {
  Coreset out;
  out.spec = dataset.spec();
  if (dataset.empty() || cfg.target_size == 0) return out;
  if (cfg.target_size >= dataset.size()) return whole_dataset_as_coreset(dataset);

  const std::size_t n = dataset.size();
  std::vector<double> losses(n);
  for (std::size_t i = 0; i < n; ++i) losses[i] = model.sample_loss(dataset[i]);

  // Greedy k-centre in loss space: start from a random sample, repeatedly add
  // the sample farthest from its nearest centre.
  std::vector<std::size_t> centres;
  centres.push_back(rng.uniform_index(n));
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  while (centres.size() < cfg.target_size) {
    const double c_loss = losses[centres.back()];
    std::size_t farthest = 0;
    double far_d = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i], std::abs(losses[i] - c_loss));
      if (nearest[i] > far_d) {
        far_d = nearest[i];
        farthest = i;
      }
    }
    if (far_d <= 0.0) break;  // all remaining samples coincide with a centre
    centres.push_back(farthest);
  }

  // Assign every sample to its nearest centre; centres carry cluster mass.
  std::vector<double> cluster_mass(centres.size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centres.size(); ++c) {
      const double d = std::abs(losses[i] - losses[centres[c]]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    cluster_mass[best] += std::max(dataset[i].weight, 0.0);
  }
  for (std::size_t c = 0; c < centres.size(); ++c) {
    out.samples.push_back(dataset[centres[c]]);
    out.wc.push_back(cluster_mass[c]);
  }
  return out;
}

Coreset build_coreset(CoresetMethod method, const data::WeightedDataset& dataset,
                      const nn::DrivingPolicy& model, const CoresetConfig& cfg, Rng& rng) {
  switch (method) {
    case CoresetMethod::kLayered:
      return build_layered_coreset(dataset, model, cfg, rng);
    case CoresetMethod::kUniform:
      return build_uniform_coreset(dataset, cfg, rng);
    case CoresetMethod::kSensitivity:
      return build_sensitivity_coreset(dataset, model, cfg, rng);
    case CoresetMethod::kClustering:
      return build_clustering_coreset(dataset, model, cfg, rng);
  }
  throw std::invalid_argument{"build_coreset: unknown method"};
}

}  // namespace lbchat::coreset
