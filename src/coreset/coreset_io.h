// Wire serialization of coresets (samples + in-coreset weights w_C).
#pragma once

#include <cmath>
#include <stdexcept>

#include "common/bytes.h"
#include "common/frame.h"
#include "coreset/coreset.h"
#include "data/sample_io.h"

namespace lbchat::coreset {

/// Largest in-coreset weight w_C a deserialized coreset may carry. w_C
/// entries are data-mass estimates (sums of sample weights), so the cap sits
/// well above anything a real fleet produces while still bounding what a
/// weight-sensitive aggregator can be fed.
inline constexpr double kMaxWireCoresetWeight = 1e9;

inline void write_coreset(ByteWriter& w, const Coreset& c) {
  w.write_u8(static_cast<std::uint8_t>(c.spec.channels));
  w.write_u8(static_cast<std::uint8_t>(c.spec.height));
  w.write_u8(static_cast<std::uint8_t>(c.spec.width));
  w.write_f64(c.spec.cell_m);
  w.write_u32(static_cast<std::uint32_t>(c.samples.size()));
  for (const data::Sample& s : c.samples) data::write_sample(w, s);
  w.write_f64_vec(c.wc);
}

/// Reads and validates a coreset against the fleet-wide `expected` BevSpec.
/// Throws std::out_of_range (truncated), std::runtime_error (spec mismatch,
/// weight vector not parallel to samples, malformed frame), or WireValueError
/// (non-finite / out-of-range w_C entries).
inline Coreset read_coreset(ByteReader& r, const data::BevSpec& expected) {
  Coreset c;
  c.spec.channels = r.read_u8();
  c.spec.height = r.read_u8();
  c.spec.width = r.read_u8();
  c.spec.cell_m = r.read_f64();
  if (!(c.spec == expected)) {
    throw std::runtime_error{"read_coreset: BevSpec mismatch"};
  }
  const std::uint32_t n = r.read_u32();
  // Each serialized sample occupies > 1 byte, so a count past the remaining
  // bytes is corrupt — reject before reserving storage for it.
  if (n > r.remaining()) throw std::out_of_range{"read_coreset: sample count underflow"};
  c.samples.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) c.samples.push_back(data::read_sample(r, c.spec));
  c.wc = r.read_f64_vec();
  if (c.wc.size() != c.samples.size()) {
    throw std::runtime_error{"read_coreset: weight vector length mismatch"};
  }
  for (const double wc : c.wc) {
    if (!std::isfinite(wc) || wc < 0.0 || wc > kMaxWireCoresetWeight) {
      throw WireValueError{"read_coreset: w_C out of range"};
    }
  }
  return c;
}

}  // namespace lbchat::coreset
