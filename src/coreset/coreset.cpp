#include "coreset/coreset.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/stats.h"
#include "nn/int8_policy.h"

namespace lbchat::coreset {

using data::Sample;
using data::WeightedDataset;

namespace {

/// ||x|| of Eq. (6) for either model flavour: float parameters directly, or
/// the dequantized norm the int8 snapshot actually represents.
double model_param_norm(const nn::DrivingPolicy& model) {
  return nn::param_l2_norm(model.params());
}
double model_param_norm(const nn::Int8Policy& model) { return model.param_l2_norm(); }

/// Shared bodies: the float and int8 policies expose the same sample_loss
/// surface, so the Eq. (6) reductions are written once and instantiated for
/// both (identical summation order — the int8 overloads differ only in what
/// sample_loss computes).
template <class Model>
double command_balance_penalty_impl(const Model& model, std::span<const Sample> samples,
                                    std::span<const double> weights) {
  if (samples.empty()) return 0.0;
  if (!weights.empty() && weights.size() != samples.size()) {
    throw std::invalid_argument{"command_balance_penalty: weights size mismatch"};
  }
  std::array<double, data::kNumCommands> loss_mass{};
  std::array<double, data::kNumCommands> weight_mass{};
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double w = weights.empty() ? samples[i].weight : weights[i];
    if (w <= 0.0) continue;
    const auto c = static_cast<std::size_t>(samples[i].command);
    loss_mass[c] += w * model.sample_loss(samples[i]);
    weight_mass[c] += w;
  }
  // Mean loss per command, over commands actually present.
  std::vector<double> per_command;
  per_command.reserve(data::kNumCommands);
  for (std::size_t c = 0; c < data::kNumCommands; ++c) {
    if (weight_mass[c] > 0.0) per_command.push_back(loss_mass[c] / weight_mass[c]);
  }
  if (per_command.size() < 2) return 0.0;
  double total = 0.0;
  for (const double v : per_command) total += v;
  // All commands at (near-)zero loss is the perfectly balanced state.
  if (total < 1e-12) return 0.0;
  const double max_h = std::log(static_cast<double>(per_command.size()));
  return max_h - entropy(per_command);
}

template <class Model>
double penalized_loss_impl(const Model& model, std::span<const Sample> samples,
                           std::span<const double> weights, const PenaltyConfig& penalty) {
  if (!weights.empty() && weights.size() != samples.size()) {
    throw std::invalid_argument{"penalized_loss: weights size mismatch"};
  }
  double empirical = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double w = weights.empty() ? samples[i].weight : weights[i];
    if (w <= 0.0) continue;
    empirical += w * model.sample_loss(samples[i]);
  }
  return empirical + penalty.lambda1 * model_param_norm(model) +
         penalty.lambda2 * command_balance_penalty_impl(model, samples, weights);
}

}  // namespace

double command_balance_penalty(const nn::DrivingPolicy& model, std::span<const Sample> samples,
                               std::span<const double> weights) {
  return command_balance_penalty_impl(model, samples, weights);
}

double command_balance_penalty(const nn::Int8Policy& model, std::span<const Sample> samples,
                               std::span<const double> weights) {
  return command_balance_penalty_impl(model, samples, weights);
}

double penalized_loss(const nn::DrivingPolicy& model, std::span<const Sample> samples,
                      std::span<const double> weights, const PenaltyConfig& penalty) {
  return penalized_loss_impl(model, samples, weights, penalty);
}

double penalized_loss(const nn::Int8Policy& model, std::span<const Sample> samples,
                      std::span<const double> weights, const PenaltyConfig& penalty) {
  return penalized_loss_impl(model, samples, weights, penalty);
}

double Coreset::total_weight() const {
  double s = 0.0;
  for (const double w : wc) s += w;
  return s;
}

std::size_t Coreset::logical_bytes() const {
  // Packed frame + 4-byte float w_C per sample, plus a small header.
  return 16 + samples.size() * (data::packed_sample_bytes(spec) + 4);
}

LayerPartition partition_into_layers(const nn::DrivingPolicy& model,
                                     const WeightedDataset& dataset) {
  if (dataset.empty()) throw std::invalid_argument{"partition_into_layers: empty dataset"};
  LayerPartition part;
  const std::size_t n = dataset.size();

  // Per-sample losses; the center d~ is the smallest-loss sample (line 1).
  std::vector<double> losses(n);
  double weighted_sum = 0.0;
  double min_loss = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    losses[i] = model.sample_loss(dataset[i]);
    weighted_sum += dataset[i].weight * losses[i];
    min_loss = std::min(min_loss, losses[i]);
  }
  part.center_loss = min_loss;
  // Line 2: R = f(x; D) / |D| — the weighted-sum loss divided by the size.
  part.ring_radius = std::max(weighted_sum / static_cast<double>(n), 1e-9);

  // Lines 3-6: ring index by loss distance from the center; at most
  // ceil(log2(|D| + 1)) layers beyond layer 0 (outliers clamp to the last).
  const int max_layer =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(n) + 1.0)));
  part.layer_of.resize(n);
  int top = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dist = losses[i] - part.center_loss;
    int layer = 0;
    if (dist > part.ring_radius) {
      layer = std::min(static_cast<int>(std::floor(std::log2(dist / part.ring_radius))) + 1,
                       max_layer);
    }
    part.layer_of[i] = layer;
    top = std::max(top, layer);
  }
  part.num_layers = top + 1;
  return part;
}

namespace {

/// Shared core of Algorithm 1 lines 7-15, parameterized over an abstract
/// weighted sample view so both build (from a dataset) and reduce (from a
/// coreset) reuse it.
Coreset layered_sample(std::span<const Sample> samples, std::span<const double> weights,
                       std::span<const int> layer_of, int num_layers, std::size_t target,
                       const data::BevSpec& spec, Rng& rng) {
  Coreset out;
  out.spec = spec;
  if (samples.empty() || target == 0) return out;
  if (target >= samples.size()) {
    // Degenerate: the whole set is its own coreset with w_C = w.
    out.samples.assign(samples.begin(), samples.end());
    out.wc.assign(weights.begin(), weights.end());
    return out;
  }

  // Group indices per layer and compute layer weight masses.
  std::vector<std::vector<std::size_t>> layers(static_cast<std::size_t>(num_layers));
  std::vector<double> layer_mass(static_cast<std::size_t>(num_layers), 0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto l = static_cast<std::size_t>(layer_of[i]);
    layers[l].push_back(i);
    layer_mass[l] += std::max(weights[i], 0.0);
  }
  double total_mass = 0.0;
  for (const double m : layer_mass) total_mass += m;
  if (total_mass <= 0.0) total_mass = 1.0;

  // Per-layer budgets: proportional to mass, at least 1 for non-empty layers,
  // then trimmed/topped-up to hit the target exactly.
  std::vector<std::size_t> budget(layers.size(), 0);
  std::size_t assigned = 0;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    if (layers[l].empty()) continue;
    const auto want = static_cast<std::size_t>(
        std::round(static_cast<double>(target) * layer_mass[l] / total_mass));
    budget[l] = std::clamp<std::size_t>(want, 1, layers[l].size());
    assigned += budget[l];
  }
  // Top up (largest remaining capacity first) or trim (smallest layers first).
  while (assigned < target) {
    std::size_t best = layers.size();
    std::size_t best_room = 0;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const std::size_t room = layers[l].size() - budget[l];
      if (room > best_room) {
        best_room = room;
        best = l;
      }
    }
    if (best == layers.size()) break;  // every sample selected
    ++budget[best];
    ++assigned;
  }
  while (assigned > target) {
    std::size_t best = layers.size();
    for (std::size_t l = 0; l < layers.size(); ++l) {
      if (budget[l] > 1 && (best == layers.size() || budget[l] > budget[best])) best = l;
    }
    if (best != layers.size()) {
      --budget[best];
      --assigned;
      continue;
    }
    // Every remaining budget is 1 but the target is smaller than the number
    // of non-empty layers: drop the lightest layers entirely.
    std::size_t lightest = layers.size();
    for (std::size_t l = 0; l < layers.size(); ++l) {
      if (budget[l] == 1 && (lightest == layers.size() || layer_mass[l] < layer_mass[lightest])) {
        lightest = l;
      }
    }
    if (lightest == layers.size()) break;
    budget[lightest] = 0;
    --assigned;
  }

  // Lines 8-14: per-layer weighted sampling without replacement and w_C
  // assignment preserving each layer's weight mass.
  for (std::size_t l = 0; l < layers.size(); ++l) {
    if (layers[l].empty() || budget[l] == 0) continue;
    std::vector<double> w_layer;
    w_layer.reserve(layers[l].size());
    for (const std::size_t i : layers[l]) w_layer.push_back(std::max(weights[i], 0.0));
    std::vector<std::size_t> picked = rng.weighted_sample_without_replacement(w_layer, budget[l]);
    if (picked.empty()) {
      // All-zero weights in this layer: fall back to uniform choice.
      picked.push_back(rng.uniform_index(layers[l].size()));
    }
    double selected_mass = 0.0;
    for (const std::size_t p : picked) selected_mass += w_layer[p];
    const double mass = layer_mass[l] > 0.0 ? layer_mass[l]
                                            : static_cast<double>(layers[l].size());
    for (const std::size_t p : picked) {
      const std::size_t i = layers[l][p];
      out.samples.push_back(samples[i]);
      const double w = selected_mass > 0.0 ? weights[i] * mass / selected_mass
                                           : mass / static_cast<double>(picked.size());
      out.wc.push_back(w);
    }
  }
  return out;
}

}  // namespace

Coreset build_layered_coreset(const WeightedDataset& dataset, const nn::DrivingPolicy& model,
                              const CoresetConfig& cfg, Rng& rng) {
  if (dataset.empty()) return Coreset{dataset.spec(), {}, {}};
  const LayerPartition part = partition_into_layers(model, dataset);
  std::vector<double> weights(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) weights[i] = dataset[i].weight;
  return layered_sample(dataset.samples(), weights, part.layer_of, part.num_layers,
                        cfg.target_size, dataset.spec(), rng);
}

double evaluate_on_coreset(const nn::DrivingPolicy& model, const Coreset& c,
                           const PenaltyConfig& penalty) {
  return penalized_loss(model, c.samples, c.wc, penalty);
}

double evaluate_on_coreset(const nn::Int8Policy& model, const Coreset& c,
                           const PenaltyConfig& penalty) {
  return penalized_loss(model, c.samples, c.wc, penalty);
}

Coreset merge_coresets(const Coreset& a, const Coreset& b) {
  if (!a.empty() && !b.empty() && !(a.spec == b.spec)) {
    throw std::invalid_argument{"merge_coresets: BEV spec mismatch"};
  }
  Coreset out;
  out.spec = a.empty() ? b.spec : a.spec;
  out.samples = a.samples;
  out.wc = a.wc;
  out.samples.insert(out.samples.end(), b.samples.begin(), b.samples.end());
  out.wc.insert(out.wc.end(), b.wc.begin(), b.wc.end());
  return out;
}

Coreset reduce_coreset(const Coreset& c, const nn::DrivingPolicy& model, std::size_t target,
                       Rng& rng) {
  if (c.size() <= target) return c;
  // Re-run the layer partition over the coreset itself, with w_C as weights.
  const std::size_t n = c.size();
  std::vector<double> losses(n);
  double weighted_sum = 0.0;
  double min_loss = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    losses[i] = model.sample_loss(c.samples[i]);
    weighted_sum += std::max(c.wc[i], 0.0) * losses[i];
    min_loss = std::min(min_loss, losses[i]);
  }
  const double radius = std::max(weighted_sum / static_cast<double>(n), 1e-9);
  const int max_layer = static_cast<int>(std::ceil(std::log2(static_cast<double>(n) + 1.0)));
  std::vector<int> layer_of(n);
  int top = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dist = losses[i] - min_loss;
    int layer = 0;
    if (dist > radius) {
      layer = std::min(static_cast<int>(std::floor(std::log2(dist / radius))) + 1, max_layer);
    }
    layer_of[i] = layer;
    top = std::max(top, layer);
  }
  return layered_sample(c.samples, c.wc, layer_of, top + 1, target, c.spec, rng);
}

}  // namespace lbchat::coreset
