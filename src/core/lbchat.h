// LbChat — the paper's contribution (Algorithm 2), as an engine Strategy.
//
// Per vehicle: continuous local training; a continuously maintained coreset
// (Algorithm 1 rebuilds + merge-reduce fast path). On encounters:
//   1. exchange assist info and pick the peer with the highest priority
//      score c_ij (Eq. (5));
//   2. exchange coresets; each side absorbs the peer coreset into its local
//      dataset (§III-D) and updates its own coreset by merge + reduce;
//   3. evaluate models on both coresets, build the phi mappings, exchange the
//      results, and solve Eq. (7) for (psi_i, psi_j);
//   4. exchange top-k-compressed models and aggregate with the coreset-
//      weighted rule (Eq. (8), cross-weighted per DESIGN.md ambiguity #1).
//
// The same class also provides the paper's ablations and the SCO variant:
//   * share_model = false            -> SCO (§IV-G): coresets only;
//   * adaptive_compression = false   -> Table V: equal, fit-to-window ratios;
//   * coreset_weighted_aggregation = false -> Table VI: plain averaging.
#pragma once

#include <memory>
#include <vector>

#include "core/compress_opt.h"
#include "coreset/alternatives.h"
#include "coreset/coreset.h"
#include "engine/fleet.h"

namespace lbchat::core {

struct LbChatOptions {
  bool share_model = true;
  bool adaptive_compression = true;
  bool coreset_weighted_aggregation = true;
  /// Evaluation cap for in-chat coreset evaluations (computational shortcut;
  /// mass-preserving subsample, see subsample_coreset).
  std::size_t eval_cap = 64;
  /// Coreset construction strategy (paper §V: alternative constructions can
  /// be adapted in LbChat unchanged). Algorithm 1 by default.
  coreset::CoresetMethod coreset_method = coreset::CoresetMethod::kLayered;
};

class LbChatStrategy final : public engine::Strategy {
 public:
  explicit LbChatStrategy(LbChatOptions opts = {});

  [[nodiscard]] std::string_view name() const override;
  void setup(engine::FleetSim& sim) override;
  void on_tick(engine::FleetSim& sim) override;
  void on_transfer_complete(engine::FleetSim& sim, engine::PairSession& s,
                            const engine::StageTag& tag) override;
  void on_session_idle(engine::FleetSim& sim, engine::PairSession& s) override;
  void on_session_aborted(engine::FleetSim& sim, engine::PairSession& s) override;

  // Checkpoint hooks: per-vehicle coreset stores + per-session chat scratch.
  void save_state(const engine::FleetSim& sim, ByteWriter& w) const override;
  void load_state(engine::FleetSim& sim, ByteReader& r) override;
  void save_session_state(const engine::FleetSim& sim, const engine::PairSession& s,
                          ByteWriter& w) const override;
  void load_session_state(engine::FleetSim& sim, engine::PairSession& s,
                          ByteReader& r) override;

  /// The live coreset of a vehicle (tests/diagnostics).
  [[nodiscard]] const coreset::Coreset& coreset_of(int v) const;

 private:
  struct VehicleState {
    coreset::Coreset cs;
    double last_rebuild_s = -1e18;
  };
  struct ChatData;

  void maybe_rebuild_coreset(engine::FleetSim& sim, int v, bool force);
  void start_chat(engine::FleetSim& sim, int a, int b);
  void begin_model_phase(engine::FleetSim& sim, engine::PairSession& s);
  void aggregate_received(engine::FleetSim& sim, int receiver, int sender,
                          const nn::SparseModel& sparse, const coreset::Coreset& peer_coreset);

  LbChatOptions opts_;
  std::vector<VehicleState> vehicles_;
};

}  // namespace lbchat::core
