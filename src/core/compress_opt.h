// Model-value assessment and adaptive compression (paper §III-C).
//
// phi mapping: a vehicle samples a series of reciprocal compression ratios
// psi, compresses its model at each, evaluates the compressed models on its
// own coreset, and fits a curve through the (psi, loss) pairs with Akima
// interpolation [21]. The mapping predicts the loss of the compressed model
// at any psi, letting the pair solve Eq. (7) for the optimal (psi_i, psi_j).
//
// Direction of the value terms (DESIGN.md ambiguity #3): the printed Eq. (7)
// and its prose disagree on sign conventions; we implement the construction
// that matches every behavioural claim in the paper: the gain v_i obtains by
// receiving x_j at psi_j is
//     gain_i(psi_j) = relu( f(x_i; C_j) - phi_j(psi_j) ),  gain_i(0) = 0,
// i.e. positive exactly when the peer's (compressed) model still beats v_i's
// model on the peer's own coreset, shrinking as compression degrades it.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/interpolation.h"
#include "coreset/coreset.h"
#include "nn/compress.h"
#include "nn/policy.h"

namespace lbchat::core {

/// Deterministic mass-preserving subsample of a coreset (stride selection,
/// weights rescaled so the total weight is unchanged). Used to keep in-chat
/// evaluations cheap; a no-op when the coreset is already small enough.
[[nodiscard]] coreset::Coreset subsample_coreset(const coreset::Coreset& c, std::size_t max_n);

/// Normalized (per unit weight) penalized loss of a model on a coreset —
/// the loss scale used for value assessment, so magnitudes are comparable
/// across coresets of different mass.
[[nodiscard]] double normalized_coreset_loss(const nn::DrivingPolicy& model,
                                             const coreset::Coreset& c,
                                             const coreset::PenaltyConfig& penalty);
/// Int8 twin (DESIGN.md §15): value scoring through a quantized snapshot of
/// the model, used when ScenarioConfig::int8_eval.scores_values() is on.
[[nodiscard]] double normalized_coreset_loss(const nn::Int8Policy& model,
                                             const coreset::Coreset& c,
                                             const coreset::PenaltyConfig& penalty);

/// The psi -> predicted-loss mapping of one vehicle's model on one coreset.
class PhiMapping {
 public:
  /// Sampled psi grid used by default (0 is handled analytically: no model).
  /// Dense sampling near 1.0 matters: top-k pruning of *model weights* has a
  /// sharp loss cliff just below the lossless point, and a sparse grid lets
  /// the interpolant under-predict the cost of near-full compression.
  static constexpr double kDefaultPsis[7] = {0.125, 0.25, 0.5, 0.75, 0.875, 0.95, 1.0};

  /// Compress `model` at each sample psi, evaluate on (a subsample of) `c`,
  /// and fit the Akima interpolant. With `int8_eval`, each compressed model
  /// is evaluated through an int8 snapshot (the same estimator the chat's
  /// value scoring uses when the int8 eval knob is on).
  static PhiMapping build(const nn::DrivingPolicy& model, const coreset::Coreset& c,
                          const coreset::PenaltyConfig& penalty,
                          std::span<const double> psis = kDefaultPsis,
                          std::size_t eval_cap = 64, bool int8_eval = false);

  /// Construct directly from (psi, loss) pairs — this is what travels to the
  /// peer as "the results" in Algorithm 2 line 12.
  PhiMapping(std::vector<double> psis, std::vector<double> losses);
  PhiMapping() = default;

  /// Predicted normalized loss of the compressed model at psi (clamped to the
  /// sampled range; psi = 0 returns the worst sampled loss as a sentinel —
  /// callers treat psi = 0 as "no transfer" explicitly).
  [[nodiscard]] double operator()(double psi) const;

  [[nodiscard]] bool valid() const { return spline_.has_value(); }
  [[nodiscard]] const std::vector<double>& sample_psis() const { return psis_; }
  [[nodiscard]] const std::vector<double>& sample_losses() const { return losses_; }

 private:
  std::vector<double> psis_;
  std::vector<double> losses_;
  std::optional<AkimaSpline> spline_;
};

/// Inputs of Eq. (7) as seen by one pair after exchanging coresets and
/// evaluation results. All losses normalized (per unit coreset weight).
struct CompressionProblem {
  double loss_i_on_cj = 0.0;  ///< f(x_i; C_j): v_i's model on the peer coreset
  double loss_j_on_ci = 0.0;  ///< f(x_j; C_i)
  PhiMapping phi_i;           ///< predicted loss of compressed x_i on C_i
  PhiMapping phi_j;           ///< predicted loss of compressed x_j on C_j
  double model_bytes = 0.0;   ///< S (wire size of the uncompressed model)
  double bandwidth_bps = 0.0; ///< min{B_i, B_j}
  double time_budget_s = 15.0;    ///< T_B
  double contact_s = 1e9;         ///< estimated remaining contact duration
  double lambda_c = 0.004;        ///< award-term coefficient
};

struct CompressionDecision {
  double psi_i = 0.0;
  double psi_j = 0.0;
  double objective = 0.0;
  double exchange_time_s = 0.0;  ///< T_c at the optimum

  /// The two gain terms at the optimum (diagnostics).
  double gain_to_j = 0.0;  ///< from receiving x_i at psi_i
  double gain_to_i = 0.0;  ///< from receiving x_j at psi_j
};

/// The gain term of Eq. (7): relu(receiver's loss on the sender's coreset
/// minus the predicted loss of the sender's compressed model); 0 at psi = 0.
[[nodiscard]] double exchange_gain(double receiver_loss_on_sender_coreset,
                                   const PhiMapping& sender_phi, double psi);

/// Solve Eq. (7) by exhaustive search over a (grid+1)^2 psi lattice —
/// exact on the lattice for this 2-D box-and-halfplane feasible set.
[[nodiscard]] CompressionDecision optimize_compression(const CompressionProblem& p,
                                                       int grid = 40);

}  // namespace lbchat::core
