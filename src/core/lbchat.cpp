#include "core/lbchat.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <limits>

#include "common/bytes.h"
#include "common/frame.h"
#include "common/log.h"
#include "coreset/coreset_io.h"
#include "net/assist_io.h"
#include "nn/int8_policy.h"
#include "nn/model_io.h"

namespace lbchat::core {

using engine::FleetSim;
using engine::PairSession;
using engine::StageTag;

/// Per-session protocol scratch, carried in PairSession::data.
struct LbChatStrategy::ChatData {
  // Coreset snapshots as transmitted (sender side frozen at queue time; the
  // receiver works from the framed wire copy, which round-trips losslessly).
  coreset::Coreset coreset_a;
  coreset::Coreset coreset_b;
  bool a_received_coreset = false;
  bool b_received_coreset = false;
  double contact_estimate_s = 0.0;
};

namespace {
constexpr int kPhaseCoresets = 0;
constexpr int kPhaseModels = 1;

frame::FrameType frame_type_for(StageTag::Kind kind) {
  switch (kind) {
    case StageTag::kAssist:
      return frame::FrameType::kAssist;
    case StageTag::kCoreset:
      return frame::FrameType::kCoreset;
    default:
      return frame::FrameType::kModel;
  }
}
}  // namespace

LbChatStrategy::LbChatStrategy(LbChatOptions opts) : opts_(opts) {}

std::string_view LbChatStrategy::name() const {
  if (!opts_.share_model) return "SCO";
  if (!opts_.adaptive_compression) return "LbChat(equal-comp)";
  if (!opts_.coreset_weighted_aggregation) return "LbChat(avg-agg)";
  return "LbChat";
}

const coreset::Coreset& LbChatStrategy::coreset_of(int v) const {
  return vehicles_.at(static_cast<std::size_t>(v)).cs;
}

void LbChatStrategy::setup(FleetSim& sim) {
  vehicles_.clear();
  vehicles_.resize(static_cast<std::size_t>(sim.num_vehicles()));
  for (int v = 0; v < sim.num_vehicles(); ++v) maybe_rebuild_coreset(sim, v, /*force=*/true);
}

void LbChatStrategy::maybe_rebuild_coreset(FleetSim& sim, int v, bool force) {
  VehicleState& st = vehicles_[static_cast<std::size_t>(v)];
  if (!force &&
      sim.time() - st.last_rebuild_s < sim.config().coreset_rebuild_interval_s) {
    return;
  }
  auto& node = sim.node(v);
  coreset::CoresetConfig ccfg;
  ccfg.target_size = sim.config().coreset_size;
  ccfg.penalty = sim.config().penalty;
  st.cs = coreset::build_coreset(opts_.coreset_method, node.dataset, node.model, ccfg,
                                 node.rng);
  st.last_rebuild_s = sim.time();
}

void LbChatStrategy::on_tick(FleetSim& sim) {
  // Periodic full coreset rebuilds (between rebuilds the merge-reduce fast
  // path keeps the coreset fresh after each absorption). Offline vehicles
  // pause maintenance and resume where they left off.
  for (int v = 0; v < sim.num_vehicles(); ++v) {
    if (!sim.is_online(v)) continue;
    maybe_rebuild_coreset(sim, v, false);
  }

  // Encounter initiation: each idle vehicle picks the in-range idle peer
  // with the highest priority score c_ij (Eq. (5)).
  const auto& cfg = sim.config();
  // T_need: a full chat = both coresets + both (uncompressed) models.
  const double needed_s =
      8.0 *
      static_cast<double>(2 * cfg.wire.coreset_bytes(cfg.coreset_size) + 2 * cfg.wire.model_bytes) /
      cfg.radio.bandwidth_bps;
  for (int a = 0; a < sim.num_vehicles(); ++a) {
    if (!sim.is_idle(a)) continue;
    int best = -1;
    double best_score = 0.0;
    net::ContactEstimate best_contact;
    // Grid-backed neighbor query: same candidates, same ascending order as
    // the old all-pairs scan, so the argmax below is unchanged.
    for (const int b : sim.neighbors_in_range(a)) {
      if (!sim.is_idle(b)) continue;
      if (!sim.cooldown_passed(a, b)) continue;
      const net::ContactEstimate contact = sim.estimate_contact_between(a, b);
      const double score =
          net::priority_score(sim.assist_info(a), sim.assist_info(b), contact, needed_s);
      if (score > best_score) {
        best_score = score;
        best = b;
        best_contact = contact;
      }
    }
    if (best >= 0) {
      PairSession& s = sim.start_session(a, best);
      auto chat = std::make_shared<ChatData>();
      chat->contact_estimate_s = best_contact.duration_s;
      // Snapshot both coresets as they leave the senders.
      chat->coreset_a = vehicles_[static_cast<std::size_t>(a)].cs;
      chat->coreset_b = vehicles_[static_cast<std::size_t>(best)].cs;
      s.data = chat;
      s.phase = kPhaseCoresets;
      const auto& wire = cfg.wire;
      // Assist info both ways, then coresets both ways. Every payload ships
      // inside a CRC-checksummed frame envelope; the WireSizeModel byte
      // counts still govern transfer duration (paper-scale sizes).
      ByteWriter assist_a;
      net::write_assist(assist_a, sim.assist_info(a));
      ByteWriter assist_b;
      net::write_assist(assist_b, sim.assist_info(best));
      ByteWriter cs_a;
      coreset::write_coreset(cs_a, chat->coreset_a);
      ByteWriter cs_b;
      coreset::write_coreset(cs_b, chat->coreset_b);
      sim.queue_transfer(s, a, wire.assist_info_bytes, {StageTag::kAssist, a, 0},
                         frame::encode(frame::FrameType::kAssist, assist_a.bytes()));
      sim.queue_transfer(s, best, wire.assist_info_bytes, {StageTag::kAssist, best, 0},
                         frame::encode(frame::FrameType::kAssist, assist_b.bytes()));
      sim.queue_transfer(s, a, wire.coreset_bytes(chat->coreset_a.size()),
                         {StageTag::kCoreset, a, 0},
                         frame::encode(frame::FrameType::kCoreset, cs_a.bytes()));
      sim.queue_transfer(s, best, wire.coreset_bytes(chat->coreset_b.size()),
                         {StageTag::kCoreset, best, 0},
                         frame::encode(frame::FrameType::kCoreset, cs_b.bytes()));
    }
  }
}

void LbChatStrategy::on_transfer_complete(FleetSim& sim, PairSession& s, const StageTag& tag) {
  auto chat = std::static_pointer_cast<ChatData>(s.data);
  if (chat == nullptr) return;
  const bool from_a = tag.from == s.vehicle_a();
  const int receiver = from_a ? s.vehicle_b() : s.vehicle_a();

  // Verify the frame envelope before touching the payload. The fault model
  // may have flipped bits in transit; a bad checksum (or a payload that fails
  // structural validation despite a colliding checksum) means the receiver
  // keeps its local state, records the event, and the pair backs off.
  const frame::Decoded dec = frame::decode(s.delivered_payload());
  bool ok = dec.ok() && dec.type == frame_type_for(tag.kind);
  bool invalid_values = false;
  if (ok) {
    try {
      ByteReader r{dec.payload};
      if (tag.kind == StageTag::kAssist) {
        // Validated but otherwise unused: the engine's contact estimates
        // model continuous beaconing with fresh positions.
        (void)net::read_assist(r, sim.world().map());
      } else if (tag.kind == StageTag::kCoreset) {
        // Receiver absorbs the peer coreset into its local dataset (§III-D)
        // and refreshes its own coreset by merge + reduce. The wire copy
        // round-trips losslessly, so this matches the sender's snapshot.
        const coreset::Coreset received =
            coreset::read_coreset(r, sim.config().policy.bev);
        if (from_a) {
          chat->b_received_coreset = true;
        } else {
          chat->a_received_coreset = true;
        }
        auto& node = sim.node(receiver);
        node.dataset.absorb(received.samples);
        VehicleState& st = vehicles_[static_cast<std::size_t>(receiver)];
        st.cs = coreset::reduce_coreset(coreset::merge_coresets(st.cs, received), node.model,
                                        sim.config().coreset_size, node.rng);
        obs::emit(sim.time(), obs::EventKind::kCoresetExchange, receiver, tag.from,
                  static_cast<double>(received.size()));
      } else if (tag.kind == StageTag::kModel) {
        const nn::SparseModel sparse = nn::read_sparse_model(r);
        // Aggregate against the *sender's* coreset (the freshest estimate of
        // the sender's data distribution), merged into the receiver's own.
        aggregate_received(sim, receiver, tag.from, sparse,
                           from_a ? chat->coreset_a : chat->coreset_b);
      }
    } catch (const WireValueError& e) {
      // Structurally valid frame carrying semantically impossible values
      // (non-finite / out-of-range weights) — tracked separately from
      // transport damage.
      LBCHAT_LOG_DEBUG("chat %d<->%d: payload values rejected: %s", s.vehicle_a(),
                       s.vehicle_b(), e.what());
      ok = false;
      invalid_values = true;
    } catch (const std::exception& e) {
      LBCHAT_LOG_DEBUG("chat %d<->%d: payload rejected after decode: %s", s.vehicle_a(),
                       s.vehicle_b(), e.what());
      ok = false;
    }
  }
  if (!ok) {
    sim.note_frame_rejected(receiver, tag.kind == StageTag::kModel, invalid_values);
    sim.note_pair_failure(s.vehicle_a(), s.vehicle_b());
    // A corrupt assist frame leaves the pair without trustworthy planning
    // info — degrade gracefully by ending the chat before the bulk stages.
    if (tag.kind == StageTag::kAssist) s.close();
    return;
  }
  if (tag.kind != StageTag::kAssist) sim.note_pair_success(s.vehicle_a(), s.vehicle_b());
}

void LbChatStrategy::on_session_aborted(FleetSim& sim, PairSession& s) {
  // An aborted chat (range loss, blackout, churn) counts as a pair failure
  // for the exponential-backoff policy; with chat_backoff off this is a
  // no-op and stock behaviour is unchanged.
  if (!s.infrastructure()) sim.note_pair_failure(s.vehicle_a(), s.vehicle_b());
}

void LbChatStrategy::on_session_idle(FleetSim& sim, PairSession& s) {
  if (s.phase == kPhaseCoresets) {
    auto chat = std::static_pointer_cast<ChatData>(s.data);
    if (chat == nullptr || !chat->a_received_coreset || !chat->b_received_coreset ||
        !opts_.share_model) {
      s.close();
      return;
    }
    begin_model_phase(sim, s);
  } else {
    s.close();
  }
}

void LbChatStrategy::begin_model_phase(FleetSim& sim, PairSession& s) {
  auto chat = std::static_pointer_cast<ChatData>(s.data);
  const auto& cfg = sim.config();
  const int a = s.vehicle_a();
  const int b = s.vehicle_b();
  auto& node_a = sim.node(a);
  auto& node_b = sim.node(b);

  double psi_a = 0.0;
  double psi_b = 0.0;
  // Re-estimate the contact with fresh positions (the coreset exchange took
  // a few seconds) — LbChat's route sharing makes this estimate reliable.
  const net::ContactEstimate contact = sim.estimate_contact_between(a, b);
  const double contact_left = contact.duration_s;

  if (opts_.adaptive_compression) {
    // Evaluate both models on both coresets, build the phi mappings, and
    // solve Eq. (7). (Compute time is not charged, matching the paper.)
    const coreset::Coreset ca = subsample_coreset(chat->coreset_a, opts_.eval_cap);
    const coreset::Coreset cb = subsample_coreset(chat->coreset_b, opts_.eval_cap);
    CompressionProblem prob;
    // Value scoring optionally runs through int8 snapshots (DESIGN.md §15):
    // chat handshakes only need inference-grade estimates of Eq. (7)'s loss
    // terms, and these evaluations dominate handshake compute at scale.
    const bool int8 = cfg.int8_eval.scores_values();
    if (int8) {
      const nn::Int8Policy qa{node_a.model};
      const nn::Int8Policy qb{node_b.model};
      prob.loss_i_on_cj = normalized_coreset_loss(qa, cb, cfg.penalty);
      prob.loss_j_on_ci = normalized_coreset_loss(qb, ca, cfg.penalty);
    } else {
      prob.loss_i_on_cj = normalized_coreset_loss(node_a.model, cb, cfg.penalty);
      prob.loss_j_on_ci = normalized_coreset_loss(node_b.model, ca, cfg.penalty);
    }
    prob.phi_i = PhiMapping::build(node_a.model, ca, cfg.penalty, PhiMapping::kDefaultPsis,
                                   opts_.eval_cap, int8);
    prob.phi_j = PhiMapping::build(node_b.model, cb, cfg.penalty, PhiMapping::kDefaultPsis,
                                   opts_.eval_cap, int8);
    prob.model_bytes = static_cast<double>(cfg.wire.model_bytes);
    // Loss-aware sizing: budget transfer time against the *expected goodput*
    // along the predicted trajectory (with a small safety margin), not the
    // raw bandwidth — this is what keeps LbChat's receiving rate high under
    // wireless loss while the blind baselines overrun their windows.
    prob.bandwidth_bps =
        cfg.radio.bandwidth_bps * std::max(contact.mean_goodput, 0.05) * 0.9;
    prob.time_budget_s = cfg.time_budget_s;
    prob.contact_s = contact_left;
    prob.lambda_c = cfg.lambda_c;
    const CompressionDecision d = optimize_compression(prob);
    psi_a = d.psi_i;
    psi_b = d.psi_j;
    LBCHAT_LOG_DEBUG(
        "chat %d<->%d: f(a;Cb)=%.4f f(b;Ca)=%.4f phi_a(1)=%.4f phi_b(1)=%.4f -> "
        "psi=(%.2f,%.2f) gains=(%.4f,%.4f) Tc=%.1fs window=%.1fs",
        a, b, prob.loss_i_on_cj, prob.loss_j_on_ci, prob.phi_i.sample_losses().back(),
        prob.phi_j.sample_losses().back(), psi_a, psi_b, d.gain_to_j, d.gain_to_i,
        d.exchange_time_s, std::min(cfg.time_budget_s, contact_left));
    s.deadline_s = sim.time() + std::min(cfg.time_budget_s, contact_left) + 2.0;
  } else {
    s.deadline_s =
        sim.time() + std::min(cfg.time_budget_s, std::max(contact_left, cfg.tick_s));
    // Table V ablation: equal compression ratios, blindly sized so both
    // directions fit the available window.
    const double window = std::min(cfg.time_budget_s, contact_left);
    const double full_time =
        2.0 * static_cast<double>(cfg.wire.model_bytes) * 8.0 / cfg.radio.bandwidth_bps;
    const double psi = full_time > 0.0 ? std::clamp(window / full_time, 0.0, 1.0) : 0.0;
    psi_a = psi;
    psi_b = psi;
  }

  if (psi_a <= 0.0 && psi_b <= 0.0) {
    s.close();
    return;
  }
  s.phase = kPhaseModels;
  if (psi_a > 0.0) {
    const nn::SparseModel m = nn::compress_for_psi(node_a.model.params(), psi_a);
    ByteWriter w;
    nn::write_sparse_model(w, m);
    sim.queue_transfer(s, a, cfg.wire.model_bytes_at(psi_a), {StageTag::kModel, a, 0},
                       frame::encode(frame::FrameType::kModel, w.bytes()));
  }
  if (psi_b > 0.0) {
    const nn::SparseModel m = nn::compress_for_psi(node_b.model.params(), psi_b);
    ByteWriter w;
    nn::write_sparse_model(w, m);
    sim.queue_transfer(s, b, cfg.wire.model_bytes_at(psi_b), {StageTag::kModel, b, 0},
                       frame::encode(frame::FrameType::kModel, w.bytes()));
  }
}

void LbChatStrategy::aggregate_received(FleetSim& sim, int receiver, int sender,
                                        const nn::SparseModel& sparse,
                                        const coreset::Coreset& peer_coreset) {
  auto& node = sim.node(receiver);
  const std::vector<float> peer_params = sparse.densify();
  if (peer_params.size() != node.model.param_count()) return;

  double w_self = 0.5;
  double w_peer = 0.5;
  if (opts_.coreset_weighted_aggregation) {
    // Eq. (8) on D_i union C_j, approximated by the coreset fast path
    // f(x; C_i union C_j) (§III-D). Cross-weighted: the better-performing
    // model (lower loss) receives the larger weight.
    const coreset::Coreset joint = subsample_coreset(
        coreset::merge_coresets(vehicles_[static_cast<std::size_t>(receiver)].cs, peer_coreset),
        2 * opts_.eval_cap);
    nn::DrivingPolicy peer_model{node.model.config(), /*init_seed=*/0};
    peer_model.set_params(peer_params);
    double loss_self = 0.0;
    double loss_peer = 0.0;
    if (sim.config().int8_eval.scores_values()) {
      loss_self = normalized_coreset_loss(nn::Int8Policy{node.model}, joint,
                                          sim.config().penalty);
      loss_peer = normalized_coreset_loss(nn::Int8Policy{peer_model}, joint,
                                          sim.config().penalty);
    } else {
      loss_self = normalized_coreset_loss(node.model, joint, sim.config().penalty);
      loss_peer = normalized_coreset_loss(peer_model, joint, sim.config().penalty);
    }
    // The logical end of "larger weights to better-performing models": a
    // received model that is clearly worse than the local one (e.g. damaged
    // by compression beyond what the phi mapping predicted) is not merged at
    // all — the coreset evaluation is what detects this.
    if (loss_peer > 2.0 * loss_self) return;
    const double denom = loss_self + loss_peer;
    if (denom > 1e-12) {
      w_self = loss_peer / denom;
      w_peer = loss_self / denom;
    }
  }
  auto params = node.model.params();
  for (std::size_t k = 0; k < params.size(); ++k) {
    params[k] = static_cast<float>(w_self * params[k] + w_peer * peer_params[k]);
  }
  sim.note_aggregate(receiver, sender, w_peer);
}

void LbChatStrategy::save_state(const engine::FleetSim& sim, ByteWriter& w) const {
  (void)sim;
  w.write_u32(static_cast<std::uint32_t>(vehicles_.size()));
  for (const VehicleState& st : vehicles_) {
    coreset::write_coreset(w, st.cs);
    w.write_f64(st.last_rebuild_s);
  }
}

void LbChatStrategy::load_state(engine::FleetSim& sim, ByteReader& r) {
  const auto n = r.read_u32();
  if (n != static_cast<std::uint32_t>(sim.num_vehicles())) {
    throw std::runtime_error{"LbChat::load_state: vehicle count mismatch"};
  }
  vehicles_.clear();
  vehicles_.resize(n);
  for (VehicleState& st : vehicles_) {
    st.cs = coreset::read_coreset(r, sim.config().policy.bev);
    st.last_rebuild_s = r.read_f64();
  }
}

void LbChatStrategy::save_session_state(const engine::FleetSim& sim,
                                        const engine::PairSession& s, ByteWriter& w) const {
  (void)sim;
  const auto* chat = static_cast<const ChatData*>(s.data.get());
  w.write_u8(chat != nullptr ? 1 : 0);
  if (chat == nullptr) return;
  coreset::write_coreset(w, chat->coreset_a);
  coreset::write_coreset(w, chat->coreset_b);
  w.write_u8(chat->a_received_coreset ? 1 : 0);
  w.write_u8(chat->b_received_coreset ? 1 : 0);
  w.write_f64(chat->contact_estimate_s);
}

void LbChatStrategy::load_session_state(engine::FleetSim& sim, engine::PairSession& s,
                                        ByteReader& r) {
  if (r.read_u8() == 0) return;
  auto chat = std::make_shared<ChatData>();
  chat->coreset_a = coreset::read_coreset(r, sim.config().policy.bev);
  chat->coreset_b = coreset::read_coreset(r, sim.config().policy.bev);
  chat->a_received_coreset = r.read_u8() != 0;
  chat->b_received_coreset = r.read_u8() != 0;
  chat->contact_estimate_s = r.read_f64();
  s.data = std::move(chat);
}

}  // namespace lbchat::core
