#include "core/compress_opt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/int8_policy.h"

namespace lbchat::core {

coreset::Coreset subsample_coreset(const coreset::Coreset& c, std::size_t max_n) {
  if (c.size() <= max_n || max_n == 0) return c;
  coreset::Coreset out;
  out.spec = c.spec;
  const double before = c.total_weight();
  const std::size_t stride = (c.size() + max_n - 1) / max_n;
  double kept = 0.0;
  for (std::size_t i = 0; i < c.size(); i += stride) {
    out.samples.push_back(c.samples[i]);
    out.wc.push_back(c.wc[i]);
    kept += c.wc[i];
  }
  // Rescale so the subsample carries the full coreset mass.
  if (kept > 0.0) {
    const double scale = before / kept;
    for (double& w : out.wc) w *= scale;
  }
  return out;
}

double normalized_coreset_loss(const nn::DrivingPolicy& model, const coreset::Coreset& c,
                               const coreset::PenaltyConfig& penalty) {
  const double mass = c.total_weight();
  if (mass <= 0.0) return 0.0;
  return coreset::evaluate_on_coreset(model, c, penalty) / mass;
}

double normalized_coreset_loss(const nn::Int8Policy& model, const coreset::Coreset& c,
                               const coreset::PenaltyConfig& penalty) {
  const double mass = c.total_weight();
  if (mass <= 0.0) return 0.0;
  return coreset::evaluate_on_coreset(model, c, penalty) / mass;
}

PhiMapping::PhiMapping(std::vector<double> psis, std::vector<double> losses)
    : psis_(std::move(psis)), losses_(std::move(losses)) {
  if (psis_.size() != losses_.size() || psis_.size() < 2) {
    throw std::invalid_argument{"PhiMapping: need >= 2 (psi, loss) pairs"};
  }
  spline_.emplace(psis_, losses_);
}

PhiMapping PhiMapping::build(const nn::DrivingPolicy& model, const coreset::Coreset& c,
                             const coreset::PenaltyConfig& penalty, std::span<const double> psis,
                             std::size_t eval_cap, bool int8_eval) {
  const coreset::Coreset sub = subsample_coreset(c, eval_cap);
  std::vector<double> xs(psis.begin(), psis.end());
  std::vector<double> ys;
  ys.reserve(xs.size());
  nn::DrivingPolicy compressed{model.config(), /*init_seed=*/0};
  for (const double psi : xs) {
    const nn::SparseModel sm = nn::compress_for_psi(model.params(), psi);
    compressed.set_params(sm.densify());
    ys.push_back(int8_eval
                     ? normalized_coreset_loss(nn::Int8Policy{compressed}, sub, penalty)
                     : normalized_coreset_loss(compressed, sub, penalty));
  }
  return PhiMapping{std::move(xs), std::move(ys)};
}

double PhiMapping::operator()(double psi) const {
  if (!spline_.has_value()) throw std::logic_error{"PhiMapping: empty"};
  if (psi <= psis_.front()) {
    // psi below the sampled range: the model is (nearly) not transmitted;
    // report the worst sampled loss as a conservative sentinel.
    return *std::max_element(losses_.begin(), losses_.end());
  }
  const double clamped = std::min(psi, psis_.back());
  return (*spline_)(clamped);
}

double exchange_gain(double receiver_loss_on_sender_coreset, const PhiMapping& sender_phi,
                     double psi) {
  if (psi <= 0.0) return 0.0;  // nothing transmitted, nothing gained
  // A compressed model is never assessed as MORE valuable than its
  // uncompressed original. Without this clamp, a barely-trained model whose
  // top-k pruning shrinks its (random) outputs toward zero can measure a
  // *lower* coreset loss than the original — predicting zero waypoints is a
  // local loss attractor — and the fleet then floods itself with near-zero
  // models and collapses onto that attractor.
  const double predicted = std::max(sender_phi(psi), sender_phi(1.0));
  return std::max(receiver_loss_on_sender_coreset - predicted, 0.0);
}

CompressionDecision optimize_compression(const CompressionProblem& p, int grid) {
  if (grid < 1) throw std::invalid_argument{"optimize_compression: grid < 1"};
  if (p.bandwidth_bps <= 0.0 || p.model_bytes < 0.0) {
    throw std::invalid_argument{"optimize_compression: bad link parameters"};
  }
  const double window = std::min(p.time_budget_s, p.contact_s);
  const double seconds_per_psi = p.model_bytes * 8.0 / p.bandwidth_bps;

  CompressionDecision best;
  best.objective = p.lambda_c * window;  // the (0, 0) point: full award, no gain
  best.exchange_time_s = 0.0;

  for (int gi = 0; gi <= grid; ++gi) {
    const double psi_i = static_cast<double>(gi) / grid;
    const double t_i = psi_i * seconds_per_psi;
    if (t_i > window + 1e-12) break;  // larger psi_i only worse
    const double gain_j = exchange_gain(p.loss_j_on_ci, p.phi_i, psi_i);
    for (int gj = 0; gj <= grid; ++gj) {
      const double psi_j = static_cast<double>(gj) / grid;
      const double t_c = t_i + psi_j * seconds_per_psi;
      if (t_c > window + 1e-12) break;
      const double gain_i = exchange_gain(p.loss_i_on_cj, p.phi_j, psi_j);
      const double obj = gain_i + gain_j + p.lambda_c * (window - t_c);
      if (obj > best.objective + 1e-15) {
        best.objective = obj;
        best.psi_i = psi_i;
        best.psi_j = psi_j;
        best.exchange_time_s = t_c;
        best.gain_to_i = gain_i;
        best.gain_to_j = gain_j;
      }
    }
  }
  return best;
}

}  // namespace lbchat::core
