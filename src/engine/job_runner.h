// JobRunner: drives one FleetSim run in bounded sim-time slices so a host —
// the fleet service's worker pool (src/svc), a CLI loop — can checkpoint,
// preempt, and resume the run between slices. The determinism contract is
// FleetSim's (DESIGN.md §10): a run advanced in any slicing, through any
// number of save/restore hops across processes or workers, is bit-identical
// to a straight run.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "engine/checkpoint.h"
#include "engine/fleet.h"

namespace lbchat::engine {

class JobRunner {
 public:
  JobRunner(const ScenarioConfig& cfg, std::unique_ptr<Strategy> strategy);

  /// Restore run state from checkpoint bytes produced by save_checkpoint()
  /// under the same configuration + strategy. Call before the first run_to.
  [[nodiscard]] CkptStatus resume(std::span<const std::uint8_t> ckpt);

  /// Advance sim time to min(t_target, horizon) — prepares the run on first
  /// call. Returns true once the horizon is reached.
  bool run_to(double t_target);

  /// Serialize the current run state (call between run_to slices).
  void save_checkpoint(ByteWriter& w) const { sim_.save_checkpoint(w); }

  /// Final evaluation + metrics assembly. Call once, after run_to returned
  /// true.
  [[nodiscard]] RunMetrics finish() { return sim_.finalize(); }

  [[nodiscard]] double time() const { return sim_.time(); }
  [[nodiscard]] double horizon() const { return horizon_; }
  [[nodiscard]] bool done() const { return sim_.time() >= horizon_; }
  [[nodiscard]] const ScenarioConfig& config() const { return sim_.config(); }

 private:
  double horizon_;
  FleetSim sim_;
};

}  // namespace lbchat::engine
