#include "engine/fleet.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "common/bytes.h"
#include "common/log.h"
#include "nn/int8_policy.h"

namespace lbchat::engine {

namespace {

std::uint64_t pair_key(int a, int b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

net::WirelessLossModel zero_loss() {
  return net::WirelessLossModel{{0.0, 1e9}, {0.0, 0.0}};
}

/// Slow-tick period for pair-map pruning (satellite of the checkpoint PR):
/// coarse on purpose — pruning only reclaims memory, never changes behaviour.
constexpr double kPairMapPruneIntervalS = 60.0;

}  // namespace

void Strategy::local_train(FleetSim& sim, int v) { sim.default_local_train(v); }

void Strategy::save_state(const FleetSim& sim, ByteWriter& w) const {
  (void)sim;
  (void)w;
}
void Strategy::load_state(FleetSim& sim, ByteReader& r) {
  (void)sim;
  (void)r;
}
void Strategy::save_session_state(const FleetSim& sim, const PairSession& s, ByteWriter& w) const {
  (void)sim;
  (void)s;
  (void)w;
}
void Strategy::load_session_state(FleetSim& sim, PairSession& s, ByteReader& r) {
  (void)sim;
  (void)s;
  (void)r;
}

FleetSim::FleetSim(const ScenarioConfig& cfg, std::unique_ptr<Strategy> strategy)
    : cfg_(cfg),
      loss_(net::WirelessLossModel::default_table(cfg.radio.max_range_m)),
      no_loss_(zero_loss()),
      world_(cfg.world, cfg.num_vehicles, cfg.seed),
      strategy_(std::move(strategy)),
      faults_(cfg.faults, cfg.seed, world_.map().extent(), cfg.num_vehicles),
      adversary_(cfg.adversary, cfg.seed, cfg.num_vehicles),
      hetero_(cfg.hetero, cfg.seed, cfg.num_vehicles),
      strategy_rng_(Rng{cfg.seed}.fork("strategy")),
      net_rng_(Rng{cfg.seed}.fork("net")),
      infra_rng_(Rng{cfg.seed}.fork("infra")) {
  if (strategy_ == nullptr) throw std::invalid_argument{"FleetSim: null strategy"};
  if (cfg.num_threads != 1) pool_ = std::make_unique<ThreadPool>(cfg.num_threads);
  // Lend the pool to the world for snapshot-mode stepping (no-op when null
  // or when snapshot_mobility is off).
  world_.set_pool(pool_.get());
  nodes_.resize(static_cast<std::size_t>(cfg.num_vehicles));
  for_each_vehicle([this](std::int64_t v) {
    // Identical model initialization across vehicles (paper §II-A assumes
    // the same initialization), but per-vehicle RNG streams for sampling.
    auto node = std::make_unique<VehicleNode>(
        static_cast<int>(v), cfg_.policy, cfg_.seed ^ 0xA11CEull,
        Rng{cfg_.seed}.fork(hash_name("vehicle") + static_cast<std::uint64_t>(v)));
    node->opt = std::make_unique<nn::Adam>(cfg_.learning_rate);
    node->dataset = data::WeightedDataset{cfg_.policy.bev};
    nodes_[static_cast<std::size_t>(v)] = std::move(node);
  });
  busy_.assign(static_cast<std::size_t>(cfg.num_vehicles), nullptr);
  vstats_.assign(static_cast<std::size_t>(cfg.num_vehicles), VehicleTransferStats{});
  sync_positions();
}

void FleetSim::for_each_vehicle(const std::function<void(std::int64_t)>& fn) const {
  const auto n = static_cast<std::int64_t>(nodes_.size());
  if (pool_ != nullptr) {
    pool_->parallel_for(0, n, fn);
  } else {
    for (std::int64_t v = 0; v < n; ++v) fn(v);
  }
}

FleetSim::~FleetSim() = default;

void FleetSim::collect_phase() {
  // Vehicles drive for collect_duration_s, grabbing one frame per 1/fps of
  // simulated time (paper: 2 fps for one hour; scaled). Frames are then split
  // per vehicle into (shared eval) / (local validation) / (local dataset).
  const double frame_dt = 1.0 / cfg_.collect_fps;
  const int frames = static_cast<int>(cfg_.collect_duration_s * cfg_.collect_fps);
  std::vector<std::vector<data::Sample>> collected(
      static_cast<std::size_t>(cfg_.num_vehicles));
  for (int f = 0; f < frames; ++f) {
    world_.step(frame_dt);
    for (int v = 0; v < cfg_.num_vehicles; ++v) {
      const std::uint64_t id =
          (static_cast<std::uint64_t>(v) << 32) | static_cast<std::uint32_t>(f);
      collected[static_cast<std::size_t>(v)].push_back(world_.collect_sample(v, id));
    }
  }
  for (int v = 0; v < cfg_.num_vehicles; ++v) {
    auto& frames_v = collected[static_cast<std::size_t>(v)];
    const std::size_t n = frames_v.size();
    if (n == 0) throw std::logic_error{"collect_phase: no frames collected"};
    const std::size_t eval_n =
        std::min<std::size_t>(static_cast<std::size_t>(cfg_.eval_frames_per_vehicle), n);
    const std::size_t eval_stride = std::max<std::size_t>(n / std::max<std::size_t>(eval_n, 1), 1);
    std::vector<char> taken(n, 0);
    for (std::size_t k = 0; k < eval_n; ++k) {
      const std::size_t idx = std::min(k * eval_stride, n - 1);
      if (taken[idx] != 0) continue;
      taken[idx] = 1;
      eval_set_.push_back(frames_v[idx]);
    }
    auto& node = *nodes_[static_cast<std::size_t>(v)];
    const auto valid_every = static_cast<std::size_t>(
        cfg_.validation_fraction > 0.0 ? std::llround(1.0 / cfg_.validation_fraction) : 0);
    // Original sample weights w(d): inverse per-command frequency, so rare
    // commands (turns) are not drowned out by lane-following frames. This is
    // the command-balance goal of the paper's sigma(x) penalty (Eq. (6))
    // carried into the weighted dataset: weighted batch sampling and the
    // w(d)-weighted layered sampling of Algorithm 1 both see balanced
    // commands.
    std::array<std::size_t, data::kNumCommands> counts{};
    for (const auto& s : frames_v) ++counts[static_cast<std::size_t>(s.command)];
    for (std::size_t i = 0; i < n; ++i) {
      if (taken[i] != 0) continue;
      data::Sample s = frames_v[i];
      const auto c = counts[static_cast<std::size_t>(s.command)];
      if (c > 0) {
        // Multiplied onto the braking upweight collect_sample already set.
        s.weight *= std::clamp(
            static_cast<double>(n) / (data::kNumCommands * static_cast<double>(c)), 0.25, 8.0);
        s.weight = std::clamp(s.weight, 0.25, 10.0);
      }
      if (valid_every > 0 && i % valid_every == valid_every - 1) {
        node.validation.push_back(std::move(s));
      } else {
        node.dataset.add(std::move(s));
      }
    }
    // Heterogeneity: skewed dataset sizes. Stride-decimate the training set
    // down to the vehicle's keep fraction (Bresenham-style integer selection
    // — deterministic, no per-sample RNG). Eval/validation splits untouched;
    // keep >= 1 leaves the dataset byte-identical to the unskewed path.
    const double keep = hetero_.dataset_keep(v);
    if (keep < 1.0 && node.dataset.samples().size() > 1) {
      const std::size_t total = node.dataset.samples().size();
      const auto kept = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(keep * static_cast<double>(total))));
      if (kept < total) {
        data::WeightedDataset trimmed{cfg_.policy.bev};
        for (std::size_t j = 0; j < total; ++j) {
          if ((j + 1) * kept / total > j * kept / total) {
            trimmed.add(node.dataset.samples()[j]);
          }
        }
        node.dataset = std::move(trimmed);
      }
    }
    if (node.dataset.empty()) throw std::logic_error{"collect_phase: empty local dataset"};
  }
  sync_positions();
}

void FleetSim::sync_positions() {
  vpos_.resize(static_cast<std::size_t>(cfg_.num_vehicles));
  for (int v = 0; v < cfg_.num_vehicles; ++v) {
    vpos_[static_cast<std::size_t>(v)] = world_.vehicle(v).pos;
  }
  if (cfg_.spatial_index) nindex_.rebuild(vpos_, cfg_.radio.max_range_m);
}

double FleetSim::pair_distance(int a, int b) const {
  return distance(vpos_[static_cast<std::size_t>(a)], vpos_[static_cast<std::size_t>(b)]);
}

bool FleetSim::in_range(int a, int b) const {
  return pair_distance(a, b) <= cfg_.radio.max_range_m;
}

const std::vector<int>& FleetSim::neighbors_in_range(int v) const {
  neighbor_scratch_.clear();
  if (cfg_.spatial_index) {
    nindex_.query(v, neighbor_scratch_);
  } else {
    for (int b = 0; b < num_vehicles(); ++b) {
      if (b != v && in_range(v, b)) neighbor_scratch_.push_back(b);
    }
  }
  return neighbor_scratch_;
}

bool FleetSim::cooldown_passed(int a, int b) const {
  const auto it = last_chat_.find(pair_key(a, b));
  if (it == last_chat_.end()) return true;
  double cooldown = cfg_.pair_cooldown_s;
  if (cfg_.faults.chat_backoff) {
    const auto bo = pair_backoff_.find(pair_key(a, b));
    if (bo != pair_backoff_.end() && bo->second > 0) {
      const int exp = std::min(bo->second, cfg_.faults.backoff_max_exp);
      cooldown *= std::pow(cfg_.faults.backoff_base, exp);
    }
  }
  return time_ - it->second >= cooldown;
}

void FleetSim::note_pair_failure(int a, int b) {
  if (!cfg_.faults.chat_backoff || b < 0) return;
  ++backoff_inserts_;
  const int consecutive = ++pair_backoff_[pair_key(a, b)];
  ++stats_.backoff_retries;
  obs::emit(time_, obs::EventKind::kBackoffExtend, a, b, consecutive);
}

void FleetSim::note_frame_rejected(int receiver, bool is_model, bool invalid_values) {
  ++stats_.frames_rejected;
  if (is_model) ++stats_.model_frames_rejected;
  if (invalid_values) ++stats_.frames_rejected_invalid;
  if (receiver >= 0) {
    VehicleTransferStats& vs = vehicle_stats(receiver);
    ++vs.frames_rejected;
    if (is_model) ++vs.model_frames_rejected;
  }
  obs::emit(time_, obs::EventKind::kFrameReject, receiver, -1, is_model ? 1.0 : 0.0);
}

void FleetSim::note_aggregate(int receiver, int sender, double peer_weight) {
  // Attacker-weight share: accumulate the peer-weight mass honest receivers
  // grant, split by sender cohort. Byzantine receivers are excluded — their
  // merges do not dilute the honest fleet.
  if (adversary_.active() && receiver >= 0 && !adversary_.byzantine(receiver)) {
    stats_.total_peer_weight += peer_weight;
    if (sender >= 0 && adversary_.byzantine(sender)) {
      stats_.attacker_peer_weight += peer_weight;
    }
  }
  obs::emit(time_, obs::EventKind::kAggregate, receiver, sender, peer_weight);
}

void FleetSim::note_pair_success(int a, int b) {
  if (!cfg_.faults.chat_backoff || b < 0) return;
  pair_backoff_.erase(pair_key(a, b));
}

net::AssistInfo FleetSim::assist_info(int v, bool share_route) const {
  const sim::CarAgent& car = world_.vehicle(v);
  net::AssistInfo info;
  info.pos = car.pos;
  info.velocity = Vec2{std::cos(car.heading), std::sin(car.heading)} * car.speed;
  info.speed = car.speed;
  info.route_s = car.s;
  info.route = share_route ? &car.route : nullptr;
  info.bandwidth_bps = cfg_.radio.bandwidth_bps;
  // Heterogeneity: a slow radio advertises its scaled bandwidth, so priority
  // scores (min{B_i, B_j}, Eq. (5)) see the true link capacity.
  if (hetero_.active()) info.bandwidth_bps *= hetero_.radio_scale(v);
  return info;
}

net::ContactEstimate FleetSim::estimate_contact_between(int a, int b, bool share_routes) const {
  // Estimates use the loss model that actually governs the channel, so the
  // no-wireless-loss configuration predicts full-bandwidth goodput.
  return net::estimate_contact(assist_info(a, share_routes), assist_info(b, share_routes),
                               cfg_.radio, cfg_.wireless_loss ? loss_ : no_loss_);
}

PairSession& FleetSim::start_session(int a, int b) {
  if (!is_idle(a) || !is_idle(b)) throw std::logic_error{"start_session: endpoint busy"};
  auto s = std::make_unique<PairSession>();
  s->a_ = a;
  s->b_ = b;
  s->started_at_ = time_;
  busy_[static_cast<std::size_t>(a)] = s.get();
  busy_[static_cast<std::size_t>(b)] = s.get();
  last_chat_[pair_key(a, b)] = time_;
  ++chat_inserts_;
  ++stats_.sessions_started;
  if (cfg_.parallel_sessions) {
    // Session-ordinal RNG stream: reproducible from (seed, start count), and
    // private to this session so transfer ticks can run on concurrent lanes.
    s->rng_ = Rng{cfg_.seed}.fork(hash_name("session") +
                                  static_cast<std::uint64_t>(stats_.sessions_started));
  }
  ++vehicle_stats(a).chats_started;
  ++vehicle_stats(b).chats_started;
  obs::emit(time_, obs::EventKind::kChatStart, a, b);
  sessions_.push_back(std::move(s));
  return *sessions_.back();
}

PairSession& FleetSim::start_infra_session(int a, const Vec2& pos) {
  if (!is_idle(a)) throw std::logic_error{"start_infra_session: vehicle busy"};
  auto s = std::make_unique<PairSession>();
  s->a_ = a;
  s->b_ = -1;
  s->fixed_pos_ = pos;
  s->started_at_ = time_;
  busy_[static_cast<std::size_t>(a)] = s.get();
  ++stats_.sessions_started;
  if (cfg_.parallel_sessions) {
    s->rng_ = Rng{cfg_.seed}.fork(hash_name("session") +
                                  static_cast<std::uint64_t>(stats_.sessions_started));
  }
  ++vehicle_stats(a).chats_started;
  obs::emit(time_, obs::EventKind::kChatStart, a, -1);
  sessions_.push_back(std::move(s));
  return *sessions_.back();
}

net::RadioConfig FleetSim::session_radio(int a, int b) const {
  net::RadioConfig radio = cfg_.radio;
  if (hetero_.active()) {
    const double sa = hetero_.radio_scale(a);
    const double sb = b >= 0 ? hetero_.radio_scale(b) : 1.0;
    radio.bandwidth_bps *= std::min(sa, sb);
  }
  return radio;
}

void FleetSim::queue_transfer(PairSession& s, int from_vehicle, std::size_t bytes,
                              StageTag tag, std::vector<std::uint8_t> payload) {
  tag.from = from_vehicle;
  const int receiver = s.peer_of(from_vehicle);
  // Byzantine mutation happens here — at payload-construction time, before
  // the bytes enter the wire — so every poisoned frame re-encodes with a
  // valid CRC and only value-level scoring at the receiver can catch it.
  // queue_transfer runs on the single-threaded tick path (strategy on_tick /
  // session callbacks), so the adversary's noise stream needs no locking.
  if (adversary_.active() && from_vehicle >= 0 && adversary_.byzantine(from_vehicle) &&
      !payload.empty()) {
    if (adversary_.transform_payload(static_cast<int>(tag.kind), payload,
                                     cfg_.policy.bev)) {
      ++stats_.byzantine_payloads_sent;
      obs::emit(time_, obs::EventKind::kByzantinePayload, from_vehicle, receiver,
                static_cast<double>(tag.kind));
    }
  }
  if (tag.kind == StageTag::kModel && bytes > 0) {
    ++stats_.model_sends_started;
    if (receiver >= 0) ++vehicle_stats(receiver).model_recv_started;
    obs::emit(time_, obs::EventKind::kModelSend, from_vehicle, receiver,
              static_cast<double>(bytes));
  }
  if (tag.kind == StageTag::kCoreset && bytes > 0) ++stats_.coreset_sends_started;
  s.queue_.push_back(PairSession::Stage{tag, net::Transfer{bytes, session_radio(s.a_, s.b_)},
                                        std::move(payload)});
}

bool FleetSim::infra_transfer_succeeds(Rng& r) {
  if (!cfg_.wireless_loss) return true;
  const double p = loss_.sample_uniform_loss(r);
  return r.chance(1.0 - p);
}

double FleetSim::session_distance(const PairSession& s) const {
  const Vec2& pa = vpos_[static_cast<std::size_t>(s.a_)];
  if (s.infrastructure()) return distance(pa, s.fixed_pos_);
  return distance(pa, vpos_[static_cast<std::size_t>(s.b_)]);
}

void FleetSim::tick_sessions(double dt) {
  LBCHAT_OBS_SPAN("engine.tick_sessions");
  const net::WirelessLossModel& active_loss = cfg_.wireless_loss ? loss_ : no_loss_;
  // Iterate over a snapshot: callbacks may start new sessions.
  const std::size_t count = sessions_.size();

  // Parallel-sessions mode (DESIGN.md §11). The branch is on the config flag
  // alone — never on pool availability — so 1-thread and 4-thread runs
  // execute the identical two-phase algorithm and stay bit-identical.
  //
  // Phase 1 (concurrent lanes): per-session geometry, the abort verdict, and
  // — when the head transfer is incomplete at tick start — one transfer tick
  // drawing from the session's private RNG stream. Touches only
  // session-owned state plus an index-addressed plan slot; every piece of
  // shared accounting (stats, traces, strategy callbacks) waits for the
  // sequential id-ordered phase 2 below.
  struct Plan {
    double d = 0.0;
    double extra = 0.0;
    bool abort = false;
    bool ticked = false;  ///< phase 1 advanced the head transfer
    std::uint64_t delivered = 0;
  };
  std::vector<Plan> plans;
  if (cfg_.parallel_sessions) {
    plans.resize(count);
    const auto prep = [&](std::int64_t idx) {
      PairSession& s = *sessions_[static_cast<std::size_t>(idx)];
      if (s.closed_ && s.queue_.empty()) return;
      Plan& p = plans[static_cast<std::size_t>(idx)];
      p.d = session_distance(s);
      const Vec2& pos_a = vpos_[static_cast<std::size_t>(s.a_)];
      const Vec2 pos_b =
          s.infrastructure() ? s.fixed_pos_ : vpos_[static_cast<std::size_t>(s.b_)];
      p.extra = faults_.extra_loss(pos_a, pos_b);
      p.abort = p.d > cfg_.radio.max_range_m || (!s.queue_.empty() && time_ > s.deadline_s) ||
                (!s.queue_.empty() && time_ - s.started_at_ > cfg_.session_timeout_s);
      if (p.abort || s.queue_.empty()) return;
      auto& stage = s.queue_.front();
      // A complete (zero-byte) head is drained — and the next incomplete
      // stage ticked inline — by phase 2, which may consume s.rng_ there.
      if (!stage.transfer.complete()) {
        p.delivered = stage.transfer.tick(p.d, dt, active_loss, s.rng_, p.extra);
        p.ticked = true;
      }
    };
    if (pool_ != nullptr) {
      pool_->parallel_for(0, static_cast<std::int64_t>(count), prep);
    } else {
      for (std::size_t i = 0; i < count; ++i) prep(static_cast<std::int64_t>(i));
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    PairSession& s = *sessions_[i];
    if (s.closed_ && s.queue_.empty()) continue;
    double d = 0.0;
    double extra = 0.0;
    bool abort_now = false;
    if (cfg_.parallel_sessions) {
      d = plans[i].d;
      extra = plans[i].extra;
      abort_now = plans[i].abort;
    } else {
      d = session_distance(s);
      // Interference bursts add per-packet loss on top of the distance table
      // (0.0 when no burst covers either endpoint, which is always true with
      // fault injection off).
      const Vec2& pos_a = vpos_[static_cast<std::size_t>(s.a_)];
      const Vec2 pos_b =
          s.infrastructure() ? s.fixed_pos_ : vpos_[static_cast<std::size_t>(s.b_)];
      extra = faults_.extra_loss(pos_a, pos_b);
      abort_now = d > cfg_.radio.max_range_m || (!s.queue_.empty() && time_ > s.deadline_s) ||
                  (!s.queue_.empty() && time_ - s.started_at_ > cfg_.session_timeout_s);
    }
    if (abort_now) {
      ++stats_.sessions_aborted;
      // A deadline/timeout abort while a burst blacks the link out is
      // attributed to the blackout: the transfer could not make progress.
      const bool blackout = extra >= 1.0 && !s.queue_.empty();
      if (blackout) ++stats_.sessions_lost_to_blackout;
      ++vehicle_stats(s.a_).chats_aborted;
      if (s.b_ >= 0) ++vehicle_stats(s.b_).chats_aborted;
      obs::emit(time_, obs::EventKind::kChatAbort, s.a_, s.b_, blackout ? 1.0 : 0.0);
      s.queue_.clear();
      s.closed_ = true;
      s.aborted_ = true;
      strategy_->on_session_aborted(*this, s);
      continue;
    }
    // Drain any zero-byte stages, then advance the head transfer once.
    const auto credit = [&](std::uint64_t delivered, const PairSession::Stage& stage) {
      stats_.bytes_delivered += delivered;
      if (delivered > 0) {
        if (stage.tag.from >= 0) vehicle_stats(stage.tag.from).bytes_sent += delivered;
        const int to = s.peer_of(stage.tag.from);
        if (to >= 0) vehicle_stats(to).bytes_received += delivered;
      }
    };
    bool ticked = false;
    if (cfg_.parallel_sessions && plans[i].ticked) {
      // Phase 1 already advanced the head on a worker lane; book the bytes
      // here, in session order, so the accounting is thread-count-invariant.
      credit(plans[i].delivered, s.queue_.front());
      ticked = true;
    }
    while (!s.queue_.empty()) {
      auto& stage = s.queue_.front();
      if (!stage.transfer.complete() && !ticked) {
        Rng& stream = cfg_.parallel_sessions ? s.rng_ : net_rng_;
        credit(stage.transfer.tick(d, dt, active_loss, stream, extra), stage);
        ticked = true;
      }
      if (!stage.transfer.complete()) break;
      const StageTag tag = stage.tag;
      s.delivered_payload_ = std::move(stage.payload);
      s.queue_.pop_front();
      if (!s.delivered_payload_.empty() &&
          faults_.corrupt_delivery(d, cfg_.radio.max_range_m)) {
        faults_.corrupt_payload(s.delivered_payload_);
      }
      if (tag.kind == StageTag::kModel) {
        ++stats_.model_sends_completed;
        const int to = s.peer_of(tag.from);
        if (to >= 0) ++vehicle_stats(to).model_recv_completed;
      }
      if (tag.kind == StageTag::kCoreset) ++stats_.coreset_sends_completed;
      strategy_->on_transfer_complete(*this, s, tag);
      s.delivered_payload_.clear();
      if (s.closed_) {
        s.queue_.clear();
        break;
      }
    }
    if (s.queue_.empty() && !s.closed_) {
      strategy_->on_session_idle(*this, s);
    }
  }
  reap_sessions();
}

void FleetSim::reap_sessions() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    PairSession& s = **it;
    if (s.closed_ && s.queue_.empty()) {
      if (busy_[static_cast<std::size_t>(s.a_)] == &s) {
        busy_[static_cast<std::size_t>(s.a_)] = nullptr;
      }
      if (s.b_ >= 0 && busy_[static_cast<std::size_t>(s.b_)] == &s) {
        busy_[static_cast<std::size_t>(s.b_)] = nullptr;
        last_chat_[pair_key(s.a_, s.b_)] = time_;
        ++chat_inserts_;
      }
      if (!s.aborted_) {
        const double duration = time_ - s.started_at_;
        ++vehicle_stats(s.a_).chats_completed;
        if (s.b_ >= 0) ++vehicle_stats(s.b_).chats_completed;
        obs::emit(time_, obs::EventKind::kChatComplete, s.a_, s.b_, duration);
        if (obs::events_enabled()) {
          static const auto kChatDuration = obs::registry().histogram(
              "chat.duration_s",
              std::array<double, 7>{1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0});
          obs::registry().observe(kChatDuration, duration);
        }
      }
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void FleetSim::abort_sessions_of(int v) {
  PairSession* s = busy_[static_cast<std::size_t>(v)];
  if (s == nullptr || (s->closed_ && s->queue_.empty())) return;
  ++stats_.sessions_aborted;
  ++vehicle_stats(s->a_).chats_aborted;
  if (s->b_ >= 0) ++vehicle_stats(s->b_).chats_aborted;
  obs::emit(time_, obs::EventKind::kChatAbort, s->a_, s->b_, 0.0);
  s->queue_.clear();
  s->closed_ = true;
  s->aborted_ = true;
  strategy_->on_session_aborted(*this, *s);
}

double FleetSim::default_local_train(int v) {
  LBCHAT_OBS_SPAN("engine.local_train");
  if (obs::events_enabled()) {
    static const auto kTrainSteps = obs::registry().counter("train.steps");
    obs::registry().add(kTrainSteps);
  }
  VehicleNode& n = node(v);
  const auto idx = n.dataset.sample_batch(n.rng, static_cast<std::size_t>(cfg_.batch_size));
  std::vector<const data::Sample*> batch;
  batch.reserve(idx.size());
  for (const std::size_t i : idx) batch.push_back(&n.dataset[i]);
  ++train_steps_;
  return n.model.train_batch(batch, *n.opt);
}

double FleetSim::mean_eval_loss() const {
  LBCHAT_OBS_SPAN("engine.mean_eval_loss");
  if (eval_set_.empty() || nodes_.empty()) return 0.0;
  // Per-vehicle losses land in an index-addressed slot and are reduced
  // sequentially afterwards, so the sum is bit-identical for any lane count.
  const bool int8 = cfg_.int8_eval.scores_eval_loss();
  std::vector<double> losses(nodes_.size(), 0.0);
  for_each_vehicle([&](std::int64_t v) {
    const nn::DrivingPolicy& model = nodes_[static_cast<std::size_t>(v)]->model;
    losses[static_cast<std::size_t>(v)] = int8
                                              ? nn::Int8Policy{model}.weighted_loss(eval_set_)
                                              : model.weighted_loss(eval_set_);
  });
  double sum = 0.0;
  for (const double l : losses) sum += l;
  return sum / static_cast<double>(nodes_.size());
}

void FleetSim::eval_and_record(RunMetrics& metrics, double t) {
  LBCHAT_OBS_SPAN("engine.mean_eval_loss");
  if (eval_set_.empty() || nodes_.empty()) {
    metrics.loss_curve.add(t, 0.0);
    return;
  }
  // Same computation and reduction order as mean_eval_loss(): per-vehicle
  // losses land in index-addressed slots, then one sequential sum — so the
  // recorded curve stays bit-identical to the pre-observability engine.
  const bool int8 = cfg_.int8_eval.scores_eval_loss();
  std::vector<double> losses(nodes_.size(), 0.0);
  for_each_vehicle([&](std::int64_t v) {
    const nn::DrivingPolicy& model = nodes_[static_cast<std::size_t>(v)]->model;
    losses[static_cast<std::size_t>(v)] = int8
                                              ? nn::Int8Policy{model}.weighted_loss(eval_set_)
                                              : model.weighted_loss(eval_set_);
  });
  double sum = 0.0;
  for (const double l : losses) sum += l;
  const double mean = sum / static_cast<double>(nodes_.size());
  metrics.loss_curve.add(t, mean);
  if (adversary_.active()) {
    // Cohort split from the same per-vehicle losses (sequential reduction,
    // same order). Degenerate cohorts record 0 to keep the series aligned.
    double honest_sum = 0.0, attacker_sum = 0.0;
    std::size_t honest_n = 0, attacker_n = 0;
    for (std::size_t v = 0; v < nodes_.size(); ++v) {
      if (adversary_.byzantine(static_cast<int>(v))) {
        attacker_sum += losses[v];
        ++attacker_n;
      } else {
        honest_sum += losses[v];
        ++honest_n;
      }
    }
    metrics.honest_loss_curve.add(t, honest_n > 0 ? honest_sum / static_cast<double>(honest_n)
                                                  : 0.0);
    metrics.attacker_loss_curve.add(
        t, attacker_n > 0 ? attacker_sum / static_cast<double>(attacker_n) : 0.0);
  }
  metrics.per_vehicle_loss.resize(nodes_.size());
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    metrics.per_vehicle_loss[v].add(t, losses[v]);
  }
  obs::emit(t, obs::EventKind::kEval, -1, -1, mean);
}

void FleetSim::publish_run_metrics() const {
  if (!obs::events_enabled()) return;
  auto& reg = obs::registry();
  const auto set = [&reg](std::string_view name, double value) {
    reg.set(reg.gauge(name), value);
  };
  set("transfer.bytes_delivered", static_cast<double>(stats_.bytes_delivered));
  set("transfer.model_sends_started", stats_.model_sends_started);
  set("transfer.model_sends_completed", stats_.model_sends_completed);
  set("transfer.coreset_sends_started", stats_.coreset_sends_started);
  set("transfer.coreset_sends_completed", stats_.coreset_sends_completed);
  set("transfer.sessions_started", stats_.sessions_started);
  set("transfer.sessions_aborted", stats_.sessions_aborted);
  set("transfer.frames_rejected", stats_.frames_rejected);
  set("transfer.model_frames_rejected", stats_.model_frames_rejected);
  set("transfer.sessions_lost_to_blackout", stats_.sessions_lost_to_blackout);
  set("transfer.backoff_retries", stats_.backoff_retries);
  set("transfer.offline_vehicle_seconds", stats_.offline_vehicle_seconds);
  set("transfer.model_receiving_rate", stats_.model_receiving_rate());
  set("transfer.effective_model_receiving_rate", stats_.effective_model_receiving_rate());
  // Gated on configuration (not just nonzero values) so runs without an
  // adversary/heterogeneity block — including the committed golden scenarios
  // — publish a byte-identical registry snapshot.
  if (cfg_.adversary.enabled()) {
    set("adversary.byzantine_payloads_sent", stats_.byzantine_payloads_sent);
    set("adversary.attacker_weight_share", stats_.attacker_weight_share());
    set("adversary.frames_rejected_invalid", stats_.frames_rejected_invalid);
  }
  if (cfg_.hetero.enabled()) {
    set("hetero.straggler_train_skips", static_cast<double>(stats_.straggler_train_skips));
  }
}

void FleetSim::prepare() {
  if (prepared_) return;
  collect_phase();
  strategy_->setup(*this);
  eval_and_record(metrics_, 0.0);
  next_train_ = cfg_.train_interval_s;
  next_eval_ = cfg_.eval_interval_s;
  next_prune_ = kPairMapPruneIntervalS;
  prepared_ = true;
}

void FleetSim::run_until(double t_end) {
  prepare();
  const double end = std::min(t_end, cfg_.duration_s);
  while (time_ < end) {
    world_.step(cfg_.tick_s);
    sync_positions();
    time_ += cfg_.tick_s;
    faults_.advance(time_, cfg_.tick_s);
    // Churn: a vehicle dropping out mid-session aborts it (the peer sees
    // on_session_aborted, as if the link died); its own training and
    // chatting pause until it rejoins, state intact.
    for (const int v : faults_.went_offline()) abort_sessions_of(v);
    if (faults_.offline_count() > 0) {
      stats_.offline_vehicle_seconds += cfg_.tick_s * faults_.offline_count();
      for (int v = 0; v < num_vehicles(); ++v) {
        if (faults_.offline(v)) vehicle_stats(v).offline_seconds += cfg_.tick_s;
      }
      reap_sessions();
    }
    if (time_ >= next_train_) {
      // Straggler dispatch runs sequentially before the (possibly parallel)
      // train loop: the credit accumulators mutate in vehicle order and the
      // skip events/counters land on the single-threaded path, so the gate —
      // and everything downstream of it — is thread-count-invariant.
      if (hetero_.active()) {
        train_gate_.assign(static_cast<std::size_t>(num_vehicles()), 1);
        for (int v = 0; v < num_vehicles(); ++v) {
          if (faults_.offline(v)) {
            train_gate_[static_cast<std::size_t>(v)] = 0;
            continue;
          }
          if (!hetero_.should_train(v)) {
            train_gate_[static_cast<std::size_t>(v)] = 0;
            ++stats_.straggler_train_skips;
            obs::emit(time_, obs::EventKind::kStragglerSkip, v);
          }
        }
      }
      const auto gated = [this](int v) {
        return hetero_.active() ? train_gate_[static_cast<std::size_t>(v)] == 0
                                : faults_.offline(v);
      };
      if (strategy_->parallel_local_train()) {
        for_each_vehicle([this, &gated](std::int64_t v) {
          if (gated(static_cast<int>(v))) return;
          LBCHAT_OBS_SPAN("engine.local_train_lane");
          strategy_->local_train(*this, static_cast<int>(v));
        });
      } else {
        for (int v = 0; v < num_vehicles(); ++v) {
          if (gated(v)) continue;
          LBCHAT_OBS_SPAN("engine.local_train_lane");
          strategy_->local_train(*this, v);
        }
      }
      next_train_ += cfg_.train_interval_s;
    }
    strategy_->on_tick(*this);
    tick_sessions(cfg_.tick_s);
    if (time_ >= next_eval_) {
      eval_and_record(metrics_, time_);
      next_eval_ += cfg_.eval_interval_s;
    }
    if (time_ >= next_prune_) {
      prune_pair_maps();
      next_prune_ = time_ + kPairMapPruneIntervalS;
    }
  }
}

RunMetrics FleetSim::finalize() {
  if (metrics_.loss_curve.times.empty() || metrics_.loss_curve.times.back() < cfg_.duration_s) {
    eval_and_record(metrics_, cfg_.duration_s);
  }
  metrics_.transfers = stats_;
  metrics_.per_vehicle = vstats_;
  metrics_.train_steps = train_steps_.load();
  metrics_.final_params.clear();
  metrics_.final_params.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    metrics_.final_params.emplace_back(n->model.params().begin(), n->model.params().end());
  }
  publish_run_metrics();
  return metrics_;
}

RunMetrics FleetSim::run() {
  prepare();
  run_until(cfg_.duration_s);
  return finalize();
}

void FleetSim::prune_pair_maps() {
  // Scan budget per slow tick: a multiple of the inserts since the last
  // prune, floored so that at default fleet sizes it exceeds both map sizes
  // and the sweep degenerates to the original full two-pass sweep (same
  // entries removed — so historical runs and goldens are unaffected). At
  // metro scale the budget bounds the per-tick work while still retiring
  // entries 4x faster than they arrive, so map sizes plateau.
  const std::size_t budget =
      std::max<std::size_t>(256, 4 * (chat_inserts_ + backoff_inserts_));
  chat_inserts_ = 0;
  backoff_inserts_ = 0;
  // Same predicate as cooldown_passed(): once it holds, the entry is
  // indistinguishable from an absent one, so dropping it never changes
  // behaviour — which is also why the sweep order/cursor is free to differ
  // across restores (the cursors are deliberately not checkpointed).
  const auto expired = [this](std::uint64_t key, double last) {
    double cooldown = cfg_.pair_cooldown_s;
    if (cfg_.faults.chat_backoff) {
      const auto bo = pair_backoff_.find(key);
      if (bo != pair_backoff_.end() && bo->second > 0) {
        const int exp = std::min(bo->second, cfg_.faults.backoff_max_exp);
        cooldown *= std::pow(cfg_.faults.backoff_base, exp);
      }
    }
    return time_ - last >= cooldown;
  };
  // Bucket-cursor sweep: std::unordered_map never rehashes on erase, so
  // bucket indices stay stable while we collect-then-erase per bucket, and
  // the cursor survives across calls as a plain index.
  std::vector<std::uint64_t> doomed;
  std::size_t scanned = 0;
  if (!last_chat_.empty()) {
    const std::size_t nb = last_chat_.bucket_count();
    std::size_t b = prune_chat_bucket_ % nb;
    for (std::size_t step = 0; step < nb && scanned < budget; ++step) {
      doomed.clear();
      for (auto it = last_chat_.begin(b); it != last_chat_.end(b); ++it) {
        ++scanned;
        if (expired(it->first, it->second)) doomed.push_back(it->first);
      }
      for (const std::uint64_t k : doomed) last_chat_.erase(k);
      b = (b + 1) % nb;
    }
    prune_chat_bucket_ = b;
  }
  // Backoff counts for pairs with no surviving cooldown entry have expired:
  // the pair has been quiet for its full (extended) cooldown, so the retry
  // budget resets instead of penalizing the next contact forever.
  if (!pair_backoff_.empty()) {
    const std::size_t nb = pair_backoff_.bucket_count();
    std::size_t b = prune_backoff_bucket_ % nb;
    scanned = 0;
    for (std::size_t step = 0; step < nb && scanned < budget; ++step) {
      doomed.clear();
      for (auto it = pair_backoff_.begin(b); it != pair_backoff_.end(b); ++it) {
        ++scanned;
        if (last_chat_.find(it->first) == last_chat_.end()) doomed.push_back(it->first);
      }
      for (const std::uint64_t k : doomed) pair_backoff_.erase(k);
      b = (b + 1) % nb;
    }
    prune_backoff_bucket_ = b;
  }
}

}  // namespace lbchat::engine
