// Fleet simulation engine: drives the world, local training, opportunistic
// pairwise exchange sessions over the wireless channel, and metrics.
//
// The engine is strategy-agnostic: LbChat, the gossip baselines, and the
// infrastructure baselines all plug in through the Strategy interface.
// Sessions model the paper's pairwise "chats": a sequence of directional
// transfers over one shared link (rate min{B_i, B_j}) that aborts when the
// pair leaves radio range — exactly the failure mode behind the paper's
// "successful model receiving rate" metric (§IV-C).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "engine/checkpoint.h"
#include "engine/faults.h"
#include "engine/metrics.h"
#include "engine/scenario.h"
#include "net/contact.h"
#include "net/spatial_index.h"
#include "net/wireless.h"
#include "nn/optim.h"
#include "nn/policy.h"
#include "obs/obs.h"
#include "sim/world.h"

namespace lbchat::engine {

/// Per-vehicle training state owned by the engine.
struct VehicleNode {
  int id = 0;
  data::WeightedDataset dataset;
  std::vector<data::Sample> validation;  ///< local hold-out (DP baseline)
  nn::DrivingPolicy model;
  std::unique_ptr<nn::Optimizer> opt;
  Rng rng;

  VehicleNode(int id_, const nn::PolicyConfig& policy, std::uint64_t init_seed, Rng rng_)
      : id(id_), model(policy, init_seed), rng(rng_) {}
};

/// Strategy-visible label on a queued transfer.
struct StageTag {
  enum Kind : int { kAssist = 0, kCoreset = 1, kModel = 2, kOther = 3 };
  Kind kind = kOther;
  int from = -1;    ///< sending vehicle id (or -1 for the infrastructure side)
  int payload = 0;  ///< strategy-defined discriminator
};

/// One pairwise exchange session. `vehicle_b < 0` denotes an infrastructure
/// endpoint (RSU) at `fixed_pos`.
class PairSession {
 public:
  [[nodiscard]] int vehicle_a() const { return a_; }
  [[nodiscard]] int vehicle_b() const { return b_; }
  [[nodiscard]] bool infrastructure() const { return b_ < 0; }
  [[nodiscard]] const Vec2& fixed_pos() const { return fixed_pos_; }
  [[nodiscard]] double started_at() const { return started_at_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] bool closed() const { return closed_; }
  /// Mark the session finished; it is reaped once the queue drains (close
  /// with a non-empty queue drops the remaining stages).
  void close() { closed_ = true; }

  /// The other vehicle of the pair from `v`'s perspective.
  [[nodiscard]] int peer_of(int v) const { return v == a_ ? b_ : a_; }

  // Strategy scratch.
  int phase = 0;
  std::shared_ptr<void> data;
  /// Absolute give-up time: the engine aborts the session past this point
  /// (strategies set it to the planned exchange window so vehicles decouple
  /// and move on, per the paper's time-budget semantics).
  double deadline_s = std::numeric_limits<double>::infinity();

  /// Framed wire bytes of the transfer that just completed — valid only
  /// inside Strategy::on_transfer_complete, and only for stages queued with
  /// a payload (empty otherwise). Receivers verify the frame envelope
  /// (common/frame.h) before deserializing; the fault model may have
  /// flipped bits in it.
  [[nodiscard]] const std::vector<std::uint8_t>& delivered_payload() const {
    return delivered_payload_;
  }

 private:
  friend class FleetSim;
  struct Stage {
    StageTag tag;
    net::Transfer transfer;
    std::vector<std::uint8_t> payload;  ///< framed wire bytes (may be empty)
  };
  int a_ = -1;
  int b_ = -1;
  Vec2 fixed_pos_{};
  double started_at_ = 0.0;
  bool closed_ = false;
  bool aborted_ = false;  ///< closed by range/deadline/churn, not gracefully
  std::deque<Stage> queue_;
  std::vector<std::uint8_t> delivered_payload_;
  /// Private packet-noise stream (ScenarioConfig::parallel_sessions only):
  /// derived from (seed, session ordinal) at session start so transfer
  /// ticks of distinct sessions can run on concurrent lanes without sharing
  /// the engine's net RNG. Unused (and not checkpointed) in the default
  /// sequential mode, which draws from the shared stream.
  Rng rng_{0};
};

class FleetSim;

/// A collaborative-training approach (LbChat or a baseline).
class Strategy {
 public:
  virtual ~Strategy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once after data collection, before the training loop.
  virtual void setup(FleetSim& sim) { (void)sim; }
  /// One local training step for vehicle `v` (default: one weighted
  /// minibatch through the vehicle's optimizer).
  ///
  /// Contract for the parallel training loop: when parallel_local_train()
  /// is true (the default), local_train(sim, v) calls for distinct `v` may
  /// run concurrently on the engine's thread pool, so the body must only
  /// touch vehicle-v state (its VehicleNode: model, optimizer, dataset,
  /// Rng) plus atomics/engine counters that commute. Override
  /// parallel_local_train() to return false to force the sequential loop.
  virtual void local_train(FleetSim& sim, int v);
  /// Whether local_train calls for distinct vehicles are safe to run
  /// concurrently (see the contract above).
  [[nodiscard]] virtual bool parallel_local_train() const { return true; }
  /// Called every engine tick: initiate encounters, run round logic, etc.
  virtual void on_tick(FleetSim& sim) = 0;

  // Session callbacks.
  virtual void on_transfer_complete(FleetSim& sim, PairSession& s, const StageTag& tag) {
    (void)sim;
    (void)s;
    (void)tag;
  }
  /// Queue drained and session not closed: queue the next protocol stage or
  /// close.
  virtual void on_session_idle(FleetSim& sim, PairSession& s) {
    (void)sim;
    s.close();
  }
  /// The endpoints left radio range with work pending.
  virtual void on_session_aborted(FleetSim& sim, PairSession& s) {
    (void)sim;
    (void)s;
  }

  // Checkpoint hooks. Strategies with private mutable state (coreset stores,
  // round schedules, control variates, session scratch) override these so a
  // restored run continues bit-identically; stateless strategies keep the
  // no-op defaults. load_state must consume exactly the bytes save_state
  // wrote and may throw std::exception on malformed input (the engine maps
  // it to CkptStatus::kMalformed). Restore does NOT call setup() — setup
  // consumes RNG streams — so load_state must fully reconstruct what setup
  // built.
  virtual void save_state(const FleetSim& sim, ByteWriter& w) const;
  virtual void load_state(FleetSim& sim, ByteReader& r);
  /// Per-session scratch (PairSession::phase is saved by the engine; the
  /// opaque `data` pointer is the strategy's to serialize here).
  virtual void save_session_state(const FleetSim& sim, const PairSession& s, ByteWriter& w) const;
  virtual void load_session_state(FleetSim& sim, PairSession& s, ByteReader& r);
};

class FleetSim {
 public:
  FleetSim(const ScenarioConfig& cfg, std::unique_ptr<Strategy> strategy);
  ~FleetSim();

  /// Execute the full run: data collection, then the training loop.
  /// Equivalent to prepare(); run_until(cfg.duration_s); finalize().
  RunMetrics run();

  // --- phased execution (checkpoint/resume entry points) ---
  /// Data collection + strategy setup + the t=0 evaluation. Idempotent.
  void prepare();
  /// Advance the simulation to min(t_end, cfg.duration_s). Calls prepare()
  /// first if it has not run. May be called repeatedly.
  void run_until(double t_end);
  /// Final evaluation (if the horizon's eval is still missing) + metrics
  /// assembly. Returns the run metrics accumulated so far.
  RunMetrics finalize();

  // --- checkpoint/restore (engine/checkpoint.h; DESIGN.md §10) ---
  /// Serialize the complete run state as one CRC32-checksummed frame.
  void save_checkpoint(ByteWriter& w) const;
  /// Restore from a checkpoint produced by save_checkpoint under the same
  /// configuration and strategy. Call on a freshly constructed sim; never
  /// throws — every failure maps to a status, but a failed restore leaves
  /// this sim in an unspecified state (construct a new one).
  [[nodiscard]] CkptStatus restore(ByteReader& in);

  // --- accessors for strategies ---
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] sim::World& world() { return world_; }
  [[nodiscard]] const sim::World& world() const { return world_; }
  [[nodiscard]] const net::WirelessLossModel& loss_model() const { return loss_; }
  [[nodiscard]] bool wireless_enabled() const { return cfg_.wireless_loss; }
  [[nodiscard]] int num_vehicles() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] VehicleNode& node(int v) { return *nodes_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] const std::vector<data::Sample>& eval_set() const { return eval_set_; }
  [[nodiscard]] Rng& rng() { return strategy_rng_; }
  [[nodiscard]] TransferStats& stats() { return stats_; }
  /// Per-vehicle accounting slice (always maintained; see VehicleTransferStats).
  [[nodiscard]] VehicleTransferStats& vehicle_stats(int v) {
    return vstats_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] double pair_distance(int a, int b) const;
  [[nodiscard]] bool in_range(int a, int b) const;
  /// All peers within radio range of `v` (inclusive boundary, like
  /// in_range), ascending by id — exactly the set and order a brute-force
  /// all-pairs scan yields, answered from the per-tick spatial grid when
  /// ScenarioConfig::spatial_index is on (DESIGN.md §11). The reference is
  /// to a scratch buffer, valid until the next neighbors_in_range call.
  [[nodiscard]] const std::vector<int>& neighbors_in_range(int v) const;
  /// Free to start a session: no active session AND not churned offline.
  [[nodiscard]] bool is_idle(int v) const {
    return busy_[static_cast<std::size_t>(v)] == nullptr && !faults_.offline(v);
  }
  /// False while the fault model holds vehicle `v` offline (churn). Offline
  /// vehicles neither train nor chat; they rejoin with their state intact.
  [[nodiscard]] bool is_online(int v) const { return !faults_.offline(v); }
  /// Number of vehicles currently online.
  [[nodiscard]] int online_vehicles() const {
    return num_vehicles() - faults_.offline_count();
  }
  [[nodiscard]] const FaultInjector& faults() const { return faults_; }
  [[nodiscard]] bool cooldown_passed(int a, int b) const;
  /// Graceful-degradation hooks: a strategy reports a failed exchange with a
  /// pair (aborted session, rejected frame) or a successful one. With
  /// FaultConfig::chat_backoff enabled, failures exponentially extend the
  /// pair's chat cooldown (bounded retry) and successes reset it; otherwise
  /// both are no-ops.
  void note_pair_failure(int a, int b);
  void note_pair_success(int a, int b);
  /// A strategy rejected a delivered frame at verification. Centralizes the
  /// fleet + per-vehicle counters and the kFrameReject trace event.
  /// `invalid_values` marks a frame that decoded structurally but carried
  /// semantically impossible values (WireValueError, common/frame.h) — it is
  /// additionally booked under TransferStats::frames_rejected_invalid.
  void note_frame_rejected(int receiver, bool is_model, bool invalid_values = false);
  /// A strategy merged a peer model with weight `peer_weight` (the blend
  /// coefficient on the received parameters). Emits the kAggregate event
  /// exactly as the strategies used to, and — when an adversary is
  /// configured — accumulates the attacker-weight-share accounting for
  /// honest receivers. Call in place of emitting kAggregate directly.
  void note_aggregate(int receiver, int sender, double peer_weight);
  [[nodiscard]] const AdversaryModel& adversary() const { return adversary_; }
  [[nodiscard]] const HeteroModel& hetero() const { return hetero_; }
  /// Assist info for a vehicle. `share_route = false` yields the baseline
  /// view (constant-velocity extrapolation instead of the shared route).
  [[nodiscard]] net::AssistInfo assist_info(int v, bool share_route = true) const;
  [[nodiscard]] net::ContactEstimate estimate_contact_between(int a, int b,
                                                              bool share_routes = true) const;

  /// Start a vehicle-vehicle session (both must be idle and in range).
  PairSession& start_session(int a, int b);
  /// Start a vehicle-infrastructure session (RSU at `pos`); only the vehicle
  /// becomes busy.
  PairSession& start_infra_session(int a, const Vec2& pos);
  /// Queue a directional transfer on a session; model transfers are counted
  /// toward the receiving-rate statistics. `payload` carries the framed wire
  /// bytes (common/frame.h) delivered to the receiver on completion — the
  /// logical `bytes` count (WireSizeModel scale) still governs transfer
  /// duration; the payload rides along as metadata.
  void queue_transfer(PairSession& s, int from_vehicle, std::size_t bytes, StageTag tag,
                      std::vector<std::uint8_t> payload = {});

  /// Bernoulli success of an idealized backend transfer: the paper models
  /// infrastructure links as suffering "a wireless loss uniformly sampled
  /// from the distance-loss lookup table". Always succeeds when the run is
  /// configured without wireless loss.
  bool infra_transfer_succeeds(Rng& r);

  /// Default local training: one w(d)-weighted minibatch + optimizer step.
  /// Returns the batch loss.
  double default_local_train(int v);

  /// Mean held-out loss across all vehicles' models (the loss-curve metric).
  [[nodiscard]] double mean_eval_loss() const;

  /// (last_chat size, pair_backoff size) — observability for the pair-map
  /// pruning that keeps both bounded over long runs.
  [[nodiscard]] std::pair<std::size_t, std::size_t> pair_map_sizes() const {
    return {last_chat_.size(), pair_backoff_.size()};
  }

 private:
  void collect_phase();
  /// Evaluate the fleet at sim time `t` and record the mean + per-vehicle
  /// losses into `metrics` (same reduction order as mean_eval_loss()).
  void eval_and_record(RunMetrics& metrics, double t);
  /// Mirror TransferStats into registry gauges (when events are enabled).
  void publish_run_metrics() const;
  void tick_sessions(double dt);
  void reap_sessions();
  /// Abort every session a churned-out vehicle participates in.
  void abort_sessions_of(int v);
  [[nodiscard]] double session_distance(const PairSession& s) const;
  /// Drop last_chat_/pair_backoff_ entries whose cooldown (with any backoff
  /// multiplier) has fully elapsed — they can no longer affect
  /// cooldown_passed(), so pruning never changes behaviour, only memory.
  /// Incremental at scale: each slow tick scans a bounded budget of entries
  /// (resuming bucket-wise from a cursor) sized to cover the whole map at
  /// default fleet sizes and to outpace the insert rate at metro scale.
  void prune_pair_maps();
  /// Refresh the per-tick vehicle position cache (pair_distance/in_range
  /// read it instead of recomputing from world state per call) and rebuild
  /// the neighbor index over it. Called after every world step and restore.
  void sync_positions();
  /// Run fn(v) for every vehicle, on the pool when one is configured.
  /// Deterministic provided fn(v) only touches vehicle-v state.
  void for_each_vehicle(const std::function<void(std::int64_t)>& fn) const;
  /// RadioConfig governing a session link between `a` and `b` (b < 0 = RSU):
  /// the configured radio with bandwidth scaled by min of the endpoints'
  /// heterogeneity scales (the session rate is min{B_i, B_j}). Identical to
  /// cfg_.radio with heterogeneity off. Used at Transfer construction and,
  /// identically, at checkpoint restore.
  [[nodiscard]] net::RadioConfig session_radio(int a, int b) const;

  ScenarioConfig cfg_;
  net::WirelessLossModel loss_;
  net::WirelessLossModel no_loss_;
  sim::World world_;
  std::unique_ptr<Strategy> strategy_;
  std::vector<std::unique_ptr<VehicleNode>> nodes_;
  std::vector<data::Sample> eval_set_;
  std::vector<std::unique_ptr<PairSession>> sessions_;
  std::vector<PairSession*> busy_;
  std::unordered_map<std::uint64_t, double> last_chat_;  // pair key -> time
  /// pair key -> consecutive reported failures (chat_backoff bookkeeping).
  std::unordered_map<std::uint64_t, int> pair_backoff_;
  // Incremental-prune state: bucket cursors + inserts since the last prune
  // (the scan budget is a multiple of the insert rate). Memory-only — never
  // serialized; a restored run re-prunes from scratch, which can only delay
  // reclamation, never change behaviour (DESIGN.md §11).
  std::size_t prune_chat_bucket_ = 0;
  std::size_t prune_backoff_bucket_ = 0;
  std::size_t chat_inserts_ = 0;
  std::size_t backoff_inserts_ = 0;
  /// Per-tick vehicle position cache; vpos_[v] == world_.vehicle(v).pos
  /// between world steps (positions only move inside World::step).
  std::vector<Vec2> vpos_;
  net::NeighborIndex nindex_;
  mutable std::vector<int> neighbor_scratch_;
  FaultInjector faults_;
  AdversaryModel adversary_;
  HeteroModel hetero_;
  /// Per-train-interval straggler gate scratch (filled by the sequential
  /// dispatch in run_until before the — possibly parallel — train loop, so
  /// skip decisions and their trace events stay thread-count-invariant).
  std::vector<char> train_gate_;
  TransferStats stats_;
  std::vector<VehicleTransferStats> vstats_;
  Rng strategy_rng_;
  Rng net_rng_;
  Rng infra_rng_;
  double time_ = 0.0;
  // Phased-execution state (serialized in checkpoints).
  RunMetrics metrics_;
  double next_train_ = 0.0;
  double next_eval_ = 0.0;
  double next_prune_ = 0.0;
  bool prepared_ = false;
  /// Atomic: incremented from concurrent local_train lanes; the final count
  /// is order-independent, so determinism is unaffected.
  std::atomic<long> train_steps_{0};
  /// Worker pool for per-vehicle loops (null when cfg.num_threads == 1).
  /// Mutable: parallel dispatch from const evaluation paths mutates only
  /// pool bookkeeping, not simulation state.
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace lbchat::engine
