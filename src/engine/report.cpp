#include "engine/report.h"

namespace lbchat::engine {

obs::RunReport build_run_report(std::string_view approach, const ScenarioConfig& cfg,
                                const RunMetrics& metrics) {
  obs::RunReport report;
  report.approach = std::string{approach};
  report.seed = cfg.seed;
  report.duration_s = cfg.duration_s;
  report.final_mean_loss =
      metrics.loss_curve.values.empty() ? 0.0 : metrics.loss_curve.values.back();
  report.vehicles.reserve(metrics.per_vehicle.size());
  for (std::size_t v = 0; v < metrics.per_vehicle.size(); ++v) {
    const VehicleTransferStats& vs = metrics.per_vehicle[v];
    obs::VehicleReport row;
    row.id = static_cast<int>(v);
    row.bytes_sent = vs.bytes_sent;
    row.bytes_received = vs.bytes_received;
    row.chats_started = static_cast<std::uint64_t>(vs.chats_started);
    row.chats_completed = static_cast<std::uint64_t>(vs.chats_completed);
    row.chats_aborted = static_cast<std::uint64_t>(vs.chats_aborted);
    row.model_recv_started = static_cast<std::uint64_t>(vs.model_recv_started);
    row.model_recv_completed = static_cast<std::uint64_t>(vs.model_recv_completed);
    row.frames_rejected = static_cast<std::uint64_t>(vs.frames_rejected);
    row.online_seconds = cfg.duration_s - vs.offline_seconds;
    row.effective_model_receiving_rate = vs.effective_model_receiving_rate();
    if (v < metrics.per_vehicle_loss.size() && !metrics.per_vehicle_loss[v].values.empty()) {
      const TimeSeries& ts = metrics.per_vehicle_loss[v];
      row.first_loss = ts.values.front();
      row.final_loss = ts.last();
    }
    report.vehicles.push_back(row);
  }
  return report;
}

}  // namespace lbchat::engine
