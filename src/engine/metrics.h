// Per-run measurements: the training-loss curve (Figs. 2-3), the successful
// model receiving rate (§IV-C), and byte accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace lbchat::engine {

struct TransferStats {
  int model_sends_started = 0;
  int model_sends_completed = 0;
  int coreset_sends_started = 0;
  int coreset_sends_completed = 0;
  int sessions_started = 0;
  int sessions_aborted = 0;
  std::uint64_t bytes_delivered = 0;

  /// §IV-C: "successful model receiving rate on average".
  [[nodiscard]] double model_receiving_rate() const {
    return model_sends_started > 0
               ? static_cast<double>(model_sends_completed) / model_sends_started
               : 0.0;
  }
};

struct RunMetrics {
  /// Mean held-out loss of all vehicles' models vs simulated time.
  TimeSeries loss_curve;
  TransferStats transfers;
  /// Final model parameters, one vector per vehicle.
  std::vector<std::vector<float>> final_params;
  /// Number of local SGD steps executed across the fleet.
  long train_steps = 0;
};

}  // namespace lbchat::engine
