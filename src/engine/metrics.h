// Per-run measurements: the training-loss curve (Figs. 2-3), the successful
// model receiving rate (§IV-C), and byte accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace lbchat::engine {

struct TransferStats {
  int model_sends_started = 0;
  int model_sends_completed = 0;
  int coreset_sends_started = 0;
  int coreset_sends_completed = 0;
  int sessions_started = 0;
  int sessions_aborted = 0;
  std::uint64_t bytes_delivered = 0;

  // --- Robustness / fault-model observability (all zero with faults off) ---
  /// Delivered frames whose envelope failed verification (any payload kind).
  int frames_rejected = 0;
  /// Model frames among `frames_rejected` (they complete at the link layer
  /// but carry no usable model — see effective_model_receiving_rate()).
  int model_frames_rejected = 0;
  /// Session aborts that happened while an interference burst blacked out
  /// the link (subset of `sessions_aborted`).
  int sessions_lost_to_blackout = 0;
  /// Times a pair's chat cooldown was exponentially extended after a
  /// reported failure (FaultConfig::chat_backoff).
  int backoff_retries = 0;
  /// Integrated vehicle-seconds spent offline due to churn.
  double offline_vehicle_seconds = 0.0;

  // --- Adversary / heterogeneity observability (all zero when both off) ---
  /// Payloads a Byzantine sender mutated before the wire (CRC stays valid).
  int byzantine_payloads_sent = 0;
  /// Train intervals skipped by compute stragglers (HeteroConfig).
  long straggler_train_skips = 0;
  /// Delivered frames rejected because a structurally valid payload carried
  /// semantically impossible values (non-finite / out-of-range weights) —
  /// a subset of `frames_rejected`. Checkpointed only when the adversary or
  /// heterogeneity layer is configured (it cannot become nonzero otherwise
  /// short of a CRC collision).
  int frames_rejected_invalid = 0;
  /// Aggregate peer-weight mass honest receivers granted, split by whether
  /// the sender was Byzantine. attacker_weight_share() is the headline: the
  /// fraction of merged peer influence attackers captured (uniform baseline
  /// = the Byzantine fraction; a value-scoring defense pushes it lower).
  double attacker_peer_weight = 0.0;
  double total_peer_weight = 0.0;

  [[nodiscard]] double attacker_weight_share() const {
    return total_peer_weight > 0.0 ? attacker_peer_weight / total_peer_weight : 0.0;
  }

  /// §IV-C: "successful model receiving rate on average".
  [[nodiscard]] double model_receiving_rate() const {
    return model_sends_started > 0
               ? static_cast<double>(model_sends_completed) / model_sends_started
               : 0.0;
  }

  /// Receiving rate counting only models that also passed envelope
  /// verification — the robustness headline under payload corruption.
  /// Equals model_receiving_rate() when no frames were rejected.
  [[nodiscard]] double effective_model_receiving_rate() const {
    return model_sends_started > 0
               ? static_cast<double>(model_sends_completed - model_frames_rejected) /
                     model_sends_started
               : 0.0;
  }
};

/// Per-vehicle slice of the fleet accounting. Updated from the engine's
/// single-threaded tick path, so it is deterministic and always on (the
/// counters are cheap enough not to need a flag) — the run-report exporters
/// read it without requiring tracing.
struct VehicleTransferStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  int chats_started = 0;
  int chats_completed = 0;
  int chats_aborted = 0;
  /// Model transfers addressed to this vehicle.
  int model_recv_started = 0;
  int model_recv_completed = 0;
  /// Delivered frames this vehicle rejected at verification.
  int frames_rejected = 0;
  int model_frames_rejected = 0;
  /// Seconds spent offline due to churn.
  double offline_seconds = 0.0;

  /// Per-vehicle analogue of TransferStats::effective_model_receiving_rate().
  [[nodiscard]] double effective_model_receiving_rate() const {
    return model_recv_started > 0
               ? static_cast<double>(model_recv_completed - model_frames_rejected) /
                     model_recv_started
               : 0.0;
  }
};

struct RunMetrics {
  /// Mean held-out loss of all vehicles' models vs simulated time.
  TimeSeries loss_curve;
  /// Cohort split of the loss curve, recorded only when an adversary is
  /// configured (both empty otherwise): mean held-out loss of the honest
  /// vehicles' models and of the Byzantine vehicles' models. The honest
  /// curve is the robustness headline — what collaboration is worth to a
  /// vehicle that is *not* attacking.
  TimeSeries honest_loss_curve;
  TimeSeries attacker_loss_curve;
  TransferStats transfers;
  /// Per-vehicle byte/chat/reception accounting (index = vehicle id).
  std::vector<VehicleTransferStats> per_vehicle;
  /// Per-vehicle held-out loss at each evaluation point (index = vehicle id).
  std::vector<TimeSeries> per_vehicle_loss;
  /// Final model parameters, one vector per vehicle.
  std::vector<std::vector<float>> final_params;
  /// Number of local SGD steps executed across the fleet.
  long train_steps = 0;
};

}  // namespace lbchat::engine
