// Checkpoint/restore implementation (see engine/checkpoint.h and DESIGN.md
// §10 for the wire layout). save_checkpoint/restore are FleetSim members so
// the serializer reaches engine privates without widening the public API.
#include "engine/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/bytes.h"
#include "common/frame.h"
#include "coreset/coreset_io.h"
#include "data/sample_io.h"
#include "engine/fleet.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lbchat::engine {

namespace {

constexpr std::uint8_t kNumSections = 9;
constexpr std::uint8_t kMaxEventKind =
    static_cast<std::uint8_t>(obs::EventKind::kStragglerSkip);

void fnv_mix(std::uint64_t& h, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
}

/// Serialize every config field that shapes simulation state, in declaration
/// order. duration_s and num_threads are deliberately absent (checkpoint.h).
void write_config(ByteWriter& w, const ScenarioConfig& c) {
  w.write_u64(c.seed);
  w.write_i32(c.num_vehicles);
  const sim::TownConfig& t = c.world.town;
  w.write_f64(t.extent_m);
  w.write_i32(t.urban_grid);
  w.write_f64(t.urban_spacing_m);
  w.write_f64(t.urban_origin_m);
  w.write_f64(t.rural_margin_m);
  w.write_i32(t.rural_ring_nodes);
  w.write_f64(t.edge_drop_prob);
  w.write_f64(t.road_half_width_m);
  w.write_f64(t.raster_cell_m);
  const auto write_bev = [&w](const data::BevSpec& b) {
    w.write_i32(b.channels);
    w.write_i32(b.height);
    w.write_i32(b.width);
    w.write_f64(b.cell_m);
  };
  const sim::WorldConfig& wc = c.world;
  write_bev(wc.bev);
  w.write_i32(wc.num_background_cars);
  w.write_i32(wc.num_pedestrians);
  w.write_f64(wc.car_radius_m);
  w.write_f64(wc.ped_radius_m);
  w.write_f64(wc.car_max_speed);
  w.write_f64(wc.turn_speed);
  w.write_f64(wc.accel);
  w.write_f64(wc.brake_decel);
  w.write_f64(wc.min_gap_m);
  w.write_f64(wc.obstacle_lookahead_m);
  w.write_f64(wc.corridor_halfwidth_m);
  w.write_f64(wc.lane_offset_m);
  w.write_f64(wc.deadlock_patience_s);
  w.write_f64(wc.deadlock_ignore_s);
  w.write_f64(wc.bend_lookahead_m);
  w.write_f64(wc.bend_threshold_rad);
  w.write_f64(wc.perturb_prob);
  w.write_f64(wc.perturb_lateral_max_m);
  w.write_f64(wc.perturb_heading_max_rad);
  w.write_f64(wc.ped_speed);
  w.write_f64(wc.ped_target_radius_m);
  w.write_f64(wc.waypoint_dt_s);
  w.write_f64(wc.urban_dweller_fraction);
  w.write_f64(c.radio.bandwidth_bps);
  w.write_i32(c.radio.packet_bytes);
  w.write_i32(c.radio.max_retransmissions);
  w.write_f64(c.radio.max_range_m);
  w.write_u64(c.wire.model_bytes);
  w.write_u64(c.wire.coreset_bytes_per_sample);
  w.write_u64(c.wire.assist_info_bytes);
  w.write_u8(c.wireless_loss ? 1 : 0);
  w.write_f64(c.collect_duration_s);
  w.write_f64(c.collect_fps);
  w.write_f64(c.validation_fraction);
  w.write_i32(c.eval_frames_per_vehicle);
  w.write_f64(c.tick_s);
  w.write_f64(c.train_interval_s);
  w.write_i32(c.batch_size);
  w.write_f64(c.learning_rate);
  w.write_f64(c.eval_interval_s);
  w.write_f64(c.time_budget_s);
  w.write_u64(c.coreset_size);
  w.write_f64(c.pair_cooldown_s);
  w.write_f64(c.lambda_c);
  w.write_f64(c.session_timeout_s);
  w.write_f64(c.coreset_rebuild_interval_s);
  write_bev(c.policy.bev);
  w.write_i32(c.policy.conv1_channels);
  w.write_i32(c.policy.conv2_channels);
  w.write_i32(c.policy.fc_dim);
  w.write_i32(c.policy.branch_hidden);
  w.write_f64(c.penalty.lambda1);
  w.write_f64(c.penalty.lambda2);
  const FaultConfig& f = c.faults;
  w.write_f64(f.burst_rate_per_min);
  w.write_f64(f.burst_duration_s);
  w.write_f64(f.burst_radius_m);
  w.write_f64(f.burst_extra_loss);
  w.write_f64(f.churn_rate_per_min);
  w.write_f64(f.churn_offline_mean_s);
  w.write_f64(f.corrupt_prob_near);
  w.write_f64(f.corrupt_prob_far);
  w.write_u8(f.chat_backoff ? 1 : 0);
  w.write_f64(f.backoff_base);
  w.write_i32(f.backoff_max_exp);
  // Fleet-scaling knobs (DESIGN.md §11). spatial_index is deliberately
  // absent: neighbor queries through the grid are exact, so it is a pure
  // wall-clock knob like num_threads. snapshot_mobility and
  // parallel_sessions DO change trajectories / RNG stream assignment, so
  // they must fingerprint — but the block is written only when one of them
  // is on, keeping every pre-existing (default-config) checkpoint and golden
  // digest byte-identical.
  if (c.world.snapshot_mobility || c.parallel_sessions) {
    w.write_u8(0x5C);
    w.write_u8(c.world.snapshot_mobility ? 1 : 0);
    w.write_u8(c.parallel_sessions ? 1 : 0);
  }
  // Adversary/heterogeneity block (same conditional-tail pattern): written
  // only when one of the layers is configured, so all-off runs keep the
  // pre-existing fingerprint and checkpoint bytes. The fingerprint is hashed,
  // never parsed, so appending fields here is always safe.
  if (c.adversary.enabled() || c.hetero.enabled()) {
    w.write_u8(0xAD);
    const AdversaryConfig& a = c.adversary;
    w.write_f64(a.byzantine_frac);
    w.write_u8(a.poison_models ? 1 : 0);
    w.write_f64(a.poison_scale);
    w.write_f64(a.poison_noise);
    w.write_u8(a.inflate_coreset_weights ? 1 : 0);
    w.write_f64(a.coreset_inflation);
    w.write_u8(a.lie_assist ? 1 : 0);
    w.write_f64(a.assist_bandwidth_lie);
    const HeteroConfig& h = c.hetero;
    w.write_f64(h.straggler_frac);
    w.write_f64(h.straggler_rate);
    w.write_f64(h.slow_radio_frac);
    w.write_f64(h.slow_radio_scale);
    w.write_f64(h.dataset_skew);
    w.write_f64(h.dataset_keep_min);
  }
  // Int8-eval block (same conditional-tail pattern, marker 0x18): written
  // only when the quantized eval path is on, so default-config checkpoints
  // keep their pre-existing bytes. A resume must replay the same eval
  // numerics, hence the knob fingerprints whenever it is live.
  if (c.int8_eval.enabled) {
    w.write_u8(0x18);
    w.write_u8(c.int8_eval.value_scoring ? 1 : 0);
    w.write_u8(c.int8_eval.eval_loss ? 1 : 0);
  }
}

void write_time_series(ByteWriter& w, const TimeSeries& ts) {
  w.write_f64_vec(ts.times);
  w.write_f64_vec(ts.values);
}

TimeSeries read_time_series(ByteReader& r) {
  TimeSeries ts;
  ts.times = r.read_f64_vec();
  ts.values = r.read_f64_vec();
  if (ts.times.size() != ts.values.size()) {
    throw std::runtime_error{"checkpoint: time series length mismatch"};
  }
  return ts;
}

}  // namespace

std::string_view section_name(std::uint8_t tag) {
  switch (static_cast<CkptSection>(tag)) {
    case CkptSection::kCore: return "core";
    case CkptSection::kWorld: return "world";
    case CkptSection::kFaults: return "faults";
    case CkptSection::kNodes: return "nodes";
    case CkptSection::kSessions: return "sessions";
    case CkptSection::kStats: return "stats";
    case CkptSection::kMetrics: return "metrics";
    case CkptSection::kStrategy: return "strategy";
    case CkptSection::kObs: return "obs";
  }
  return "?";
}

std::string_view to_string(CkptStatus s) {
  switch (s) {
    case CkptStatus::kOk: return "ok";
    case CkptStatus::kBadFrame: return "bad_frame";
    case CkptStatus::kBadVersion: return "bad_version";
    case CkptStatus::kConfigMismatch: return "config_mismatch";
    case CkptStatus::kStrategyMismatch: return "strategy_mismatch";
    case CkptStatus::kMalformed: return "malformed";
  }
  return "?";
}

std::uint64_t config_fingerprint(const ScenarioConfig& cfg) {
  ByteWriter w;
  write_config(w, cfg);
  std::uint64_t h = 0xCBF29CE484222325ull;
  fnv_mix(h, w.bytes());
  return h;
}

std::string ckpt_info_json(const CkptInfo& info) {
  // Strategy names are short ASCII identifiers, but a hostile checkpoint can
  // put anything in that field — escape it like a JSON string must be.
  std::string strat;
  for (const char c : info.strategy) {
    switch (c) {
      case '"': strat += "\\\""; break;
      case '\\': strat += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          strat += buf;
        } else {
          strat += c;
        }
    }
  }
  char head[256];
  std::snprintf(head, sizeof head,
                "{\"version\":%u,\"fingerprint\":\"%016llx\",\"seed\":%llu,"
                "\"vehicles\":%u,\"strategy\":\"%s\",\"time_s\":",
                info.version, static_cast<unsigned long long>(info.config_fingerprint),
                static_cast<unsigned long long>(info.seed), info.num_vehicles,
                strat.c_str());
  std::string out{head};
  out += obs::format_double(info.time_s);
  out += ",\"sections\":[";
  for (std::size_t i = 0; i < info.sections.size(); ++i) {
    const auto& s = info.sections[i];
    char sec[96];
    std::snprintf(sec, sizeof sec, "%s{\"tag\":%u,\"name\":\"%s\",\"bytes\":%llu}",
                  i == 0 ? "" : ",", s.tag, std::string{section_name(s.tag)}.c_str(),
                  static_cast<unsigned long long>(s.bytes));
    out += sec;
  }
  out += "]}";
  return out;
}

CkptStatus inspect_checkpoint(std::span<const std::uint8_t> bytes, CkptInfo& info) {
  const auto dec = frame::decode(bytes);
  if (!dec.ok() || dec.type != frame::FrameType::kCheckpoint) return CkptStatus::kBadFrame;
  try {
    ByteReader r{dec.payload};
    info = CkptInfo{};
    info.version = r.read_u32();
    if (info.version != kCheckpointVersion) return CkptStatus::kBadVersion;
    info.config_fingerprint = r.read_u64();
    info.seed = r.read_u64();
    info.num_vehicles = r.read_u32();
    info.strategy = r.read_string();
    info.time_s = r.read_f64();
    const std::uint32_t nsec = r.read_u32();
    if (nsec > 255) return CkptStatus::kMalformed;
    for (std::uint32_t i = 0; i < nsec; ++i) {
      CkptInfo::Section s;
      s.tag = r.read_u8();
      const std::uint32_t len = r.read_u32();
      if (len > r.remaining()) return CkptStatus::kMalformed;
      s.bytes = len;
      r = ByteReader{r.rest().subspan(len)};  // skip the blob without copying
      info.sections.push_back(s);
    }
    if (!r.exhausted()) return CkptStatus::kMalformed;
    return CkptStatus::kOk;
  } catch (const std::exception&) {
    return CkptStatus::kMalformed;
  }
}

// ---------------------------------------------------------------------------
// FleetSim serialization (defined here; declared in engine/fleet.h)
// ---------------------------------------------------------------------------

void FleetSim::save_checkpoint(ByteWriter& out) const {
  ByteWriter body;
  body.write_u32(kCheckpointVersion);
  body.write_u64(config_fingerprint(cfg_));
  body.write_u64(cfg_.seed);
  body.write_u32(static_cast<std::uint32_t>(cfg_.num_vehicles));
  body.write_string(strategy_->name());
  body.write_f64(time_);
  body.write_u32(kNumSections);

  const auto section = [&body](CkptSection tag, const ByteWriter& blob) {
    body.write_u8(static_cast<std::uint8_t>(tag));
    body.write_bytes(blob.bytes());
  };

  {  // kCore: clock schedule, engine RNG streams, pair maps.
    ByteWriter w;
    w.write_u8(prepared_ ? 1 : 0);
    w.write_f64(next_train_);
    w.write_f64(next_eval_);
    w.write_f64(next_prune_);
    w.write_u64(static_cast<std::uint64_t>(train_steps_.load()));
    strategy_rng_.save(w);
    net_rng_.save(w);
    infra_rng_.save(w);
    // Hash maps iterate in unspecified order; sort by key so identical state
    // yields identical bytes.
    std::vector<std::pair<std::uint64_t, double>> chats{last_chat_.begin(), last_chat_.end()};
    std::sort(chats.begin(), chats.end());
    w.write_u32(static_cast<std::uint32_t>(chats.size()));
    for (const auto& [k, t] : chats) {
      w.write_u64(k);
      w.write_f64(t);
    }
    std::vector<std::pair<std::uint64_t, int>> backoff{pair_backoff_.begin(),
                                                       pair_backoff_.end()};
    std::sort(backoff.begin(), backoff.end());
    w.write_u32(static_cast<std::uint32_t>(backoff.size()));
    for (const auto& [k, n] : backoff) {
      w.write_u64(k);
      w.write_i32(n);
    }
    // Adversary/hetero mutable state: conditional tail, present exactly when
    // the config block fingerprints it (writer and reader always agree
    // because restore() verified the fingerprint first).
    if (cfg_.adversary.enabled() || cfg_.hetero.enabled()) {
      w.write_u8(0x5E);
      adversary_.save(w);
      hetero_.save(w);
    }
    section(CkptSection::kCore, w);
  }
  {  // kWorld
    ByteWriter w;
    world_.save(w);
    section(CkptSection::kWorld, w);
  }
  {  // kFaults
    ByteWriter w;
    faults_.save(w);
    section(CkptSection::kFaults, w);
  }
  {  // kNodes: shared eval set + per-vehicle training state.
    ByteWriter w;
    w.write_u32(static_cast<std::uint32_t>(eval_set_.size()));
    for (const auto& s : eval_set_) data::write_sample(w, s);
    w.write_u32(static_cast<std::uint32_t>(nodes_.size()));
    for (const auto& np : nodes_) {
      const VehicleNode& n = *np;
      n.rng.save(w);
      const auto params = n.model.params();
      w.write_f32_vec(params);
      w.write_string(n.opt->kind());
      n.opt->save_state(w);
      w.write_u32(static_cast<std::uint32_t>(n.dataset.samples().size()));
      for (const auto& s : n.dataset.samples()) data::write_sample(w, s);
      w.write_u32(static_cast<std::uint32_t>(n.validation.size()));
      for (const auto& s : n.validation) data::write_sample(w, s);
    }
    section(CkptSection::kNodes, w);
  }
  {  // kSessions: in-flight pair sessions with queued transfers.
    ByteWriter w;
    w.write_u32(static_cast<std::uint32_t>(sessions_.size()));
    for (const auto& sp : sessions_) {
      const PairSession& s = *sp;
      w.write_i32(s.a_);
      w.write_i32(s.b_);
      w.write_f64(s.fixed_pos_.x);
      w.write_f64(s.fixed_pos_.y);
      w.write_f64(s.started_at_);
      w.write_u8(s.closed_ ? 1 : 0);
      w.write_u8(s.aborted_ ? 1 : 0);
      w.write_i32(s.phase);
      w.write_f64(s.deadline_s);
      // The per-session RNG stream exists only in parallel-sessions mode
      // (which is part of the config fingerprint whenever on, so writer and
      // reader always agree on this field's presence).
      if (cfg_.parallel_sessions) s.rng_.save(w);
      w.write_u32(static_cast<std::uint32_t>(s.queue_.size()));
      for (const auto& st : s.queue_) {
        w.write_u8(static_cast<std::uint8_t>(st.tag.kind));
        w.write_i32(st.tag.from);
        w.write_i32(st.tag.payload);
        w.write_u64(st.transfer.remaining_bytes());
        w.write_bytes(st.payload);
      }
      ByteWriter scratch;
      strategy_->save_session_state(*this, s, scratch);
      w.write_bytes(scratch.bytes());
    }
    section(CkptSection::kSessions, w);
  }
  {  // kStats: fleet + per-vehicle accounting.
    ByteWriter w;
    w.write_i32(stats_.model_sends_started);
    w.write_i32(stats_.model_sends_completed);
    w.write_i32(stats_.coreset_sends_started);
    w.write_i32(stats_.coreset_sends_completed);
    w.write_i32(stats_.sessions_started);
    w.write_i32(stats_.sessions_aborted);
    w.write_u64(stats_.bytes_delivered);
    w.write_i32(stats_.frames_rejected);
    w.write_i32(stats_.model_frames_rejected);
    w.write_i32(stats_.sessions_lost_to_blackout);
    w.write_i32(stats_.backoff_retries);
    w.write_f64(stats_.offline_vehicle_seconds);
    w.write_u32(static_cast<std::uint32_t>(vstats_.size()));
    for (const auto& v : vstats_) {
      w.write_u64(v.bytes_sent);
      w.write_u64(v.bytes_received);
      w.write_i32(v.chats_started);
      w.write_i32(v.chats_completed);
      w.write_i32(v.chats_aborted);
      w.write_i32(v.model_recv_started);
      w.write_i32(v.model_recv_completed);
      w.write_i32(v.frames_rejected);
      w.write_i32(v.model_frames_rejected);
      w.write_f64(v.offline_seconds);
    }
    if (cfg_.adversary.enabled() || cfg_.hetero.enabled()) {
      w.write_u8(0x5E);
      w.write_i32(stats_.byzantine_payloads_sent);
      w.write_u64(static_cast<std::uint64_t>(stats_.straggler_train_skips));
      w.write_i32(stats_.frames_rejected_invalid);
      w.write_f64(stats_.attacker_peer_weight);
      w.write_f64(stats_.total_peer_weight);
    }
    section(CkptSection::kStats, w);
  }
  {  // kMetrics: loss curves accumulated so far. Transfer/param fields of
    // RunMetrics are filled by finalize() from live state, so only the
    // curves need serializing.
    ByteWriter w;
    write_time_series(w, metrics_.loss_curve);
    w.write_u32(static_cast<std::uint32_t>(metrics_.per_vehicle_loss.size()));
    for (const auto& ts : metrics_.per_vehicle_loss) write_time_series(w, ts);
    if (cfg_.adversary.enabled()) {
      w.write_u8(0x5E);
      write_time_series(w, metrics_.honest_loss_curve);
      write_time_series(w, metrics_.attacker_loss_curve);
    }
    section(CkptSection::kMetrics, w);
  }
  {  // kStrategy
    ByteWriter blob;
    strategy_->save_state(*this, blob);
    ByteWriter w;
    w.write_bytes(blob.bytes());
    section(CkptSection::kStrategy, w);
  }
  {  // kObs: event-trace ring + metrics-registry snapshot, captured only
    // when event tracing is on (with it off both are empty by contract).
    ByteWriter w;
    const bool captured = obs::events_enabled();
    w.write_u8(captured ? 1 : 0);
    if (captured) {
      const auto events = obs::tracer().events();
      w.write_u32(static_cast<std::uint32_t>(events.size()));
      for (const auto& e : events) {
        w.write_f64(e.t);
        w.write_u8(static_cast<std::uint8_t>(e.kind));
        w.write_i32(e.a);
        w.write_i32(e.b);
        w.write_f64(e.value);
      }
      w.write_u64(obs::tracer().dropped());
      const auto snap = obs::registry().snapshot();
      w.write_u32(static_cast<std::uint32_t>(snap.metrics.size()));
      for (const auto& m : snap.metrics) {
        w.write_string(m.name);
        w.write_u8(static_cast<std::uint8_t>(m.kind));
        w.write_u64(m.count);
        w.write_f64(m.value);
        w.write_f64_vec(m.bounds);
        w.write_u32(static_cast<std::uint32_t>(m.buckets.size()));
        for (const std::uint64_t b : m.buckets) w.write_u64(b);
      }
    }
    section(CkptSection::kObs, w);
  }

  out.append_raw(frame::encode(frame::FrameType::kCheckpoint, body.bytes()));
}

namespace {

/// Throws unless the sub-reader consumed its whole section blob.
void require_exhausted(const ByteReader& r, const char* what) {
  if (!r.exhausted()) {
    throw std::runtime_error{std::string{"checkpoint: trailing bytes in "} + what};
  }
}

}  // namespace

CkptStatus FleetSim::restore(ByteReader& in) {
  const auto dec = frame::decode(in.rest());
  if (!dec.ok() || dec.type != frame::FrameType::kCheckpoint) return CkptStatus::kBadFrame;
  try {
    ByteReader r{dec.payload};
    if (r.read_u32() != kCheckpointVersion) return CkptStatus::kBadVersion;
    if (r.read_u64() != config_fingerprint(cfg_)) return CkptStatus::kConfigMismatch;
    if (r.read_u64() != cfg_.seed) return CkptStatus::kConfigMismatch;
    if (r.read_u32() != static_cast<std::uint32_t>(cfg_.num_vehicles)) {
      return CkptStatus::kConfigMismatch;
    }
    if (r.read_string() != strategy_->name()) return CkptStatus::kStrategyMismatch;
    time_ = r.read_f64();
    const std::uint32_t nsec = r.read_u32();
    if (nsec != kNumSections) return CkptStatus::kMalformed;
    bool seen[kNumSections + 1] = {};
    for (std::uint32_t i = 0; i < nsec; ++i) {
      const std::uint8_t tag = r.read_u8();
      if (tag < 1 || tag > kNumSections || seen[tag]) return CkptStatus::kMalformed;
      seen[tag] = true;
      const auto blob = r.read_bytes();
      ByteReader s{blob};
      switch (static_cast<CkptSection>(tag)) {
        case CkptSection::kCore: {
          prepared_ = s.read_u8() != 0;
          next_train_ = s.read_f64();
          next_eval_ = s.read_f64();
          next_prune_ = s.read_f64();
          train_steps_.store(static_cast<long>(s.read_u64()));
          strategy_rng_.load(s);
          net_rng_.load(s);
          infra_rng_.load(s);
          last_chat_.clear();
          const std::uint32_t nc = s.read_u32();
          for (std::uint32_t k = 0; k < nc; ++k) {
            const std::uint64_t key = s.read_u64();
            last_chat_[key] = s.read_f64();
          }
          pair_backoff_.clear();
          const std::uint32_t nb = s.read_u32();
          for (std::uint32_t k = 0; k < nb; ++k) {
            const std::uint64_t key = s.read_u64();
            pair_backoff_[key] = s.read_i32();
          }
          if (cfg_.adversary.enabled() || cfg_.hetero.enabled()) {
            if (s.read_u8() != 0x5E) {
              throw std::runtime_error{"checkpoint: missing adversary core tail"};
            }
            adversary_.load(s);
            hetero_.load(s);
          }
          break;
        }
        case CkptSection::kWorld:
          world_.load(s);
          break;
        case CkptSection::kFaults:
          faults_.load(s);
          break;
        case CkptSection::kNodes: {
          eval_set_.clear();
          const std::uint32_t ne = s.read_u32();
          eval_set_.reserve(std::min<std::uint32_t>(ne, 1u << 20));
          for (std::uint32_t k = 0; k < ne; ++k) {
            eval_set_.push_back(data::read_sample(s, cfg_.policy.bev));
          }
          if (s.read_u32() != nodes_.size()) {
            throw std::runtime_error{"checkpoint: node count mismatch"};
          }
          for (auto& np : nodes_) {
            VehicleNode& n = *np;
            n.rng.load(s);
            const auto params = s.read_f32_vec();
            if (params.size() != n.model.param_count()) {
              throw std::runtime_error{"checkpoint: param count mismatch"};
            }
            n.model.set_params(params);
            if (s.read_string() != n.opt->kind()) {
              throw std::runtime_error{"checkpoint: optimizer kind mismatch"};
            }
            n.opt->load_state(s);
            // Replaying add() in saved order reproduces the weighted
            // dataset's cumulative-weight table bit-exactly.
            n.dataset = data::WeightedDataset{cfg_.policy.bev};
            const std::uint32_t nd = s.read_u32();
            for (std::uint32_t k = 0; k < nd; ++k) {
              n.dataset.add(data::read_sample(s, cfg_.policy.bev));
            }
            n.validation.clear();
            const std::uint32_t nv = s.read_u32();
            n.validation.reserve(std::min<std::uint32_t>(nv, 1u << 20));
            for (std::uint32_t k = 0; k < nv; ++k) {
              n.validation.push_back(data::read_sample(s, cfg_.policy.bev));
            }
          }
          require_exhausted(s, "nodes");
          break;
        }
        case CkptSection::kSessions: {
          sessions_.clear();
          std::fill(busy_.begin(), busy_.end(), nullptr);
          const std::uint32_t ns = s.read_u32();
          const int n = num_vehicles();
          for (std::uint32_t k = 0; k < ns; ++k) {
            auto sess = std::make_unique<PairSession>();
            sess->a_ = s.read_i32();
            sess->b_ = s.read_i32();
            if (sess->a_ < 0 || sess->a_ >= n || sess->b_ < -1 || sess->b_ >= n ||
                sess->b_ == sess->a_) {
              throw std::runtime_error{"checkpoint: session endpoint out of range"};
            }
            sess->fixed_pos_.x = s.read_f64();
            sess->fixed_pos_.y = s.read_f64();
            sess->started_at_ = s.read_f64();
            sess->closed_ = s.read_u8() != 0;
            sess->aborted_ = s.read_u8() != 0;
            sess->phase = s.read_i32();
            sess->deadline_s = s.read_f64();
            if (cfg_.parallel_sessions) sess->rng_.load(s);
            const std::uint32_t nq = s.read_u32();
            for (std::uint32_t q = 0; q < nq; ++q) {
              const std::uint8_t kind = s.read_u8();
              if (kind > StageTag::kOther) {
                throw std::runtime_error{"checkpoint: stage kind out of range"};
              }
              StageTag tag;
              tag.kind = static_cast<StageTag::Kind>(kind);
              tag.from = s.read_i32();
              tag.payload = s.read_i32();
              const std::uint64_t remaining = s.read_u64();
              auto payload = s.read_bytes();
              sess->queue_.push_back(
                  PairSession::Stage{tag,
                                     net::Transfer{static_cast<std::size_t>(remaining),
                                                   session_radio(sess->a_, sess->b_)},
                                     std::move(payload)});
            }
            const auto scratch = s.read_bytes();
            ByteReader sr{scratch};
            strategy_->load_session_state(*this, *sess, sr);
            require_exhausted(sr, "session scratch");
            if (busy_[static_cast<std::size_t>(sess->a_)] != nullptr ||
                (sess->b_ >= 0 && busy_[static_cast<std::size_t>(sess->b_)] != nullptr)) {
              throw std::runtime_error{"checkpoint: vehicle in two sessions"};
            }
            busy_[static_cast<std::size_t>(sess->a_)] = sess.get();
            if (sess->b_ >= 0) busy_[static_cast<std::size_t>(sess->b_)] = sess.get();
            sessions_.push_back(std::move(sess));
          }
          require_exhausted(s, "sessions");
          break;
        }
        case CkptSection::kStats: {
          stats_.model_sends_started = s.read_i32();
          stats_.model_sends_completed = s.read_i32();
          stats_.coreset_sends_started = s.read_i32();
          stats_.coreset_sends_completed = s.read_i32();
          stats_.sessions_started = s.read_i32();
          stats_.sessions_aborted = s.read_i32();
          stats_.bytes_delivered = s.read_u64();
          stats_.frames_rejected = s.read_i32();
          stats_.model_frames_rejected = s.read_i32();
          stats_.sessions_lost_to_blackout = s.read_i32();
          stats_.backoff_retries = s.read_i32();
          stats_.offline_vehicle_seconds = s.read_f64();
          if (s.read_u32() != vstats_.size()) {
            throw std::runtime_error{"checkpoint: vehicle stats count mismatch"};
          }
          for (auto& v : vstats_) {
            v.bytes_sent = s.read_u64();
            v.bytes_received = s.read_u64();
            v.chats_started = s.read_i32();
            v.chats_completed = s.read_i32();
            v.chats_aborted = s.read_i32();
            v.model_recv_started = s.read_i32();
            v.model_recv_completed = s.read_i32();
            v.frames_rejected = s.read_i32();
            v.model_frames_rejected = s.read_i32();
            v.offline_seconds = s.read_f64();
          }
          if (cfg_.adversary.enabled() || cfg_.hetero.enabled()) {
            if (s.read_u8() != 0x5E) {
              throw std::runtime_error{"checkpoint: missing adversary stats tail"};
            }
            stats_.byzantine_payloads_sent = s.read_i32();
            stats_.straggler_train_skips = static_cast<long>(s.read_u64());
            stats_.frames_rejected_invalid = s.read_i32();
            stats_.attacker_peer_weight = s.read_f64();
            stats_.total_peer_weight = s.read_f64();
          }
          require_exhausted(s, "stats");
          break;
        }
        case CkptSection::kMetrics: {
          metrics_ = RunMetrics{};
          metrics_.loss_curve = read_time_series(s);
          const std::uint32_t np = s.read_u32();
          if (np != 0 && np != nodes_.size()) {
            throw std::runtime_error{"checkpoint: per-vehicle curve count mismatch"};
          }
          metrics_.per_vehicle_loss.resize(np);
          for (auto& ts : metrics_.per_vehicle_loss) ts = read_time_series(s);
          if (cfg_.adversary.enabled()) {
            if (s.read_u8() != 0x5E) {
              throw std::runtime_error{"checkpoint: missing cohort metrics tail"};
            }
            metrics_.honest_loss_curve = read_time_series(s);
            metrics_.attacker_loss_curve = read_time_series(s);
          }
          require_exhausted(s, "metrics");
          break;
        }
        case CkptSection::kStrategy: {
          const auto blob2 = s.read_bytes();
          ByteReader sr{blob2};
          strategy_->load_state(*this, sr);
          require_exhausted(sr, "strategy state");
          require_exhausted(s, "strategy");
          break;
        }
        case CkptSection::kObs: {
          const bool captured = s.read_u8() != 0;
          if (captured) {
            const std::uint32_t nev = s.read_u32();
            std::vector<obs::Event> events;
            events.reserve(std::min<std::uint32_t>(nev, 1u << 20));
            for (std::uint32_t k = 0; k < nev; ++k) {
              obs::Event e;
              e.t = s.read_f64();
              const std::uint8_t kind = s.read_u8();
              if (kind > kMaxEventKind) {
                throw std::runtime_error{"checkpoint: event kind out of range"};
              }
              e.kind = static_cast<obs::EventKind>(kind);
              e.a = s.read_i32();
              e.b = s.read_i32();
              e.value = s.read_f64();
              events.push_back(e);
            }
            const std::uint64_t dropped = s.read_u64();
            obs::Snapshot snap;
            const std::uint32_t nm = s.read_u32();
            snap.metrics.reserve(std::min<std::uint32_t>(nm, 1024));
            for (std::uint32_t k = 0; k < nm; ++k) {
              obs::MetricValue m;
              m.name = s.read_string();
              const std::uint8_t kind = s.read_u8();
              if (kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram)) {
                throw std::runtime_error{"checkpoint: metric kind out of range"};
              }
              m.kind = static_cast<obs::MetricKind>(kind);
              m.count = s.read_u64();
              m.value = s.read_f64();
              m.bounds = s.read_f64_vec();
              const std::uint32_t nbk = s.read_u32();
              if (nbk > obs::MetricsRegistry::kBucketSlots) {
                throw std::runtime_error{"checkpoint: bucket count out of range"};
              }
              m.buckets.resize(nbk);
              for (auto& b : m.buckets) b = s.read_u64();
              snap.metrics.push_back(std::move(m));
            }
            // Re-applied only when tracing is on in this process; with it
            // off the captured state is read (validated) and discarded, as
            // the resumed run will not export events either.
            if (obs::events_enabled()) {
              obs::tracer().restore(std::move(events), dropped);
              obs::registry().restore(snap);
            }
          }
          require_exhausted(s, "obs");
          break;
        }
      }
      if (tag == static_cast<std::uint8_t>(CkptSection::kCore) ||
          tag == static_cast<std::uint8_t>(CkptSection::kWorld) ||
          tag == static_cast<std::uint8_t>(CkptSection::kFaults)) {
        require_exhausted(s, section_name(tag).data());
      }
    }
    for (std::uint8_t t = 1; t <= kNumSections; ++t) {
      if (!seen[t]) return CkptStatus::kMalformed;
    }
    if (!r.exhausted()) return CkptStatus::kMalformed;
    // The position cache and neighbor index are derived state, rebuilt here
    // rather than serialized (DESIGN.md §11): a rebuild from the restored
    // world is bit-identical to the saved run's cache, and skipping them
    // keeps the checkpoint byte layout independent of the spatial_index
    // wall-clock knob.
    sync_positions();
    return CkptStatus::kOk;
  } catch (const std::exception&) {
    return CkptStatus::kMalformed;
  }
}

}  // namespace lbchat::engine
