#include "engine/adversary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bytes.h"
#include "common/frame.h"
#include "coreset/coreset_io.h"
#include "nn/model_io.h"

namespace lbchat::engine {

namespace {

/// StageTag::Kind values (engine/fleet.h); duplicated as plain ints so this
/// module does not need the full engine header.
constexpr int kKindAssist = 0;
constexpr int kKindCoreset = 1;
constexpr int kKindModel = 2;

/// Keep inflated coreset weights comfortably inside the decoder's validity
/// range (coreset_io.h kMaxWireCoresetWeight): the attack must survive
/// structural validation — that is the point.
constexpr double kInflationCap = 1e6;

}  // namespace

AdversaryModel::AdversaryModel(const AdversaryConfig& cfg, std::uint64_t seed,
                               int num_vehicles)
    : cfg_(cfg),
      byzantine_(static_cast<std::size_t>(num_vehicles), 0),
      noise_rng_(Rng{seed}.fork("adversary-noise")) {
  if (!cfg_.enabled()) return;  // all-off: consume no randomness
  const auto n = static_cast<std::size_t>(num_vehicles);
  const auto k = static_cast<std::size_t>(std::clamp<long>(
      std::lround(cfg_.byzantine_frac * static_cast<double>(n)), 0,
      static_cast<long>(n)));
  // Membership: the first k ids of a seeded permutation — derived, never
  // serialized, identical at any thread count and across restores.
  Rng member = Rng{seed}.fork("adversary-membership");
  const auto perm = member.permutation(n);
  for (std::size_t i = 0; i < k; ++i) byzantine_[perm[i]] = 1;
  byzantine_count_ = static_cast<int>(k);
}

bool AdversaryModel::transform_payload(int kind, std::vector<std::uint8_t>& framed,
                                       const data::BevSpec& bev) {
  if (!active() || framed.empty()) return false;
  const frame::Decoded dec = frame::decode(framed);
  if (!dec.ok()) return false;
  try {
    if (kind == kKindModel && cfg_.poison_models &&
        dec.type == frame::FrameType::kModel) {
      // Sign-flip + scale the transmitted values (the classic model-poisoning
      // attack: pull every receiver away from its optimum). Trailing payload
      // bytes (e.g. a gossip composition vector) ride through verbatim.
      ByteReader r{dec.payload};
      nn::SparseModel m = nn::read_sparse_model(r);
      const auto rest = r.rest();
      for (float& v : m.values) {
        double pv = -cfg_.poison_scale * static_cast<double>(v);
        if (cfg_.poison_noise > 0.0) pv += noise_rng_.normal(0.0, cfg_.poison_noise);
        v = static_cast<float>(pv);
      }
      ByteWriter w;
      nn::write_sparse_model(w, m);
      w.append_raw(rest);
      framed = frame::encode(frame::FrameType::kModel, w.bytes());
      return true;
    }
    if (kind == kKindCoreset && cfg_.inflate_coreset_weights &&
        dec.type == frame::FrameType::kCoreset) {
      ByteReader r{dec.payload};
      coreset::Coreset c = coreset::read_coreset(r, bev);
      for (double& wc : c.wc) {
        wc = std::min(wc * cfg_.coreset_inflation, kInflationCap);
      }
      ByteWriter w;
      coreset::write_coreset(w, c);
      framed = frame::encode(frame::FrameType::kCoreset, w.bytes());
      return true;
    }
    if (kind == kKindAssist && cfg_.lie_assist &&
        dec.type == frame::FrameType::kAssist) {
      // Raw field rewrite (the layout of net/assist_io.h: 7 f64, then a
      // u32-counted i32 node sequence): negate the velocity, reverse the
      // route (a fabricated trajectory that is still a valid node sequence
      // on the shared map), and overstate the bandwidth so the attacker
      // wins priority-score comparisons.
      ByteReader r{dec.payload};
      double fields[7];
      for (double& f : fields) f = r.read_f64();
      fields[2] = -fields[2];  // velocity.x
      fields[3] = -fields[3];  // velocity.y
      fields[6] *= cfg_.assist_bandwidth_lie;
      const std::uint32_t n = r.read_u32();
      std::vector<std::int32_t> seq(n);
      for (auto& node : seq) node = r.read_i32();
      std::reverse(seq.begin(), seq.end());
      ByteWriter w;
      for (const double f : fields) w.write_f64(f);
      w.write_u32(n);
      for (const std::int32_t node : seq) w.write_i32(node);
      framed = frame::encode(frame::FrameType::kAssist, w.bytes());
      return true;
    }
  } catch (const std::exception&) {
    // Undecodable payload (should not happen for protocol frames): leave the
    // bytes untouched rather than corrupting them — corruption is the fault
    // model's job, not the adversary's.
    return false;
  }
  return false;
}

void AdversaryModel::save(ByteWriter& w) const { noise_rng_.save(w); }

void AdversaryModel::load(ByteReader& r) { noise_rng_.load(r); }

HeteroModel::HeteroModel(const HeteroConfig& cfg, std::uint64_t seed, int num_vehicles)
    : cfg_(cfg),
      compute_rate_(static_cast<std::size_t>(num_vehicles), 1.0),
      radio_scale_(static_cast<std::size_t>(num_vehicles), 1.0),
      dataset_keep_(static_cast<std::size_t>(num_vehicles), 1.0),
      credit_(static_cast<std::size_t>(num_vehicles), 0.0) {
  const auto n = static_cast<std::size_t>(num_vehicles);
  // Each knob draws from its own named stream, gated on that knob alone, so
  // enabling one class never perturbs the per-vehicle draws of another.
  if (cfg_.straggler_frac > 0.0) {
    Rng rng = Rng{seed}.fork("hetero-compute");
    const auto perm = rng.permutation(n);
    const auto k = static_cast<std::size_t>(std::clamp<long>(
        std::lround(cfg_.straggler_frac * static_cast<double>(n)), 0,
        static_cast<long>(n)));
    for (std::size_t i = 0; i < k; ++i) {
      compute_rate_[perm[i]] =
          std::clamp(cfg_.straggler_rate * rng.uniform(0.75, 1.25), 1e-3, 1.0);
    }
  }
  if (cfg_.slow_radio_frac > 0.0) {
    Rng rng = Rng{seed}.fork("hetero-radio");
    const auto perm = rng.permutation(n);
    const auto k = static_cast<std::size_t>(std::clamp<long>(
        std::lround(cfg_.slow_radio_frac * static_cast<double>(n)), 0,
        static_cast<long>(n)));
    for (std::size_t i = 0; i < k; ++i) {
      radio_scale_[perm[i]] =
          std::clamp(cfg_.slow_radio_scale * rng.uniform(0.75, 1.25), 1e-3, 1.0);
    }
  }
  if (cfg_.dataset_skew > 0.0) {
    Rng rng = Rng{seed}.fork("hetero-data");
    for (std::size_t v = 0; v < n; ++v) {
      dataset_keep_[v] = std::clamp(1.0 - cfg_.dataset_skew * rng.uniform(),
                                    std::clamp(cfg_.dataset_keep_min, 1e-3, 1.0), 1.0);
    }
  }
}

bool HeteroModel::should_train(int v) {
  const auto i = static_cast<std::size_t>(v);
  if (compute_rate_[i] >= 1.0) return true;
  credit_[i] += compute_rate_[i];
  if (credit_[i] >= 1.0) {
    credit_[i] -= 1.0;
    return true;
  }
  return false;
}

void HeteroModel::save(ByteWriter& w) const { w.write_f64_vec(credit_); }

void HeteroModel::load(ByteReader& r) {
  auto credit = r.read_f64_vec();
  if (credit.size() != credit_.size()) {
    throw std::runtime_error{"hetero: credit vector size mismatch"};
  }
  for (const double c : credit) {
    if (!(c >= 0.0 && c < 2.0)) {
      throw std::runtime_error{"hetero: credit out of range"};
    }
  }
  credit_ = std::move(credit);
}

}  // namespace lbchat::engine
