#include "engine/job_runner.h"

#include <algorithm>
#include <utility>

#include "common/bytes.h"

namespace lbchat::engine {

JobRunner::JobRunner(const ScenarioConfig& cfg, std::unique_ptr<Strategy> strategy)
    : horizon_(cfg.duration_s), sim_(cfg, std::move(strategy)) {}

CkptStatus JobRunner::resume(std::span<const std::uint8_t> ckpt) {
  ByteReader r{ckpt};
  return sim_.restore(r);
}

bool JobRunner::run_to(double t_target) {
  sim_.run_until(std::min(t_target, horizon_));
  return done();
}

}  // namespace lbchat::engine
