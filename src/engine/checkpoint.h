// Checkpoint/restore for fleet runs.
//
// A checkpoint is a single CRC32-checksummed frame (common/frame.h, type
// kCheckpoint) whose payload carries the complete mutable run state of a
// FleetSim — sim clock, world agents, per-vehicle models/optimizers/datasets,
// in-flight sessions with queued transfers, fault-injector and RNG stream
// state, accounting, and strategy-private state — such that
//
//     run to T2  ==  run to T1 + save + restore in a fresh process + run to T2
//
// bit-identically (loss curves, event logs, metrics exports). See DESIGN.md
// §10 for the wire layout and the exact determinism contract.
//
// Restore never throws past the API: every malformed, truncated, corrupt, or
// incompatible input maps to a CkptStatus. A failed restore leaves the target
// sim in an unspecified state — construct a fresh one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lbchat {
class ByteWriter;
class ByteReader;
}  // namespace lbchat

namespace lbchat::engine {

struct ScenarioConfig;

/// Bumped on any incompatible change to the checkpoint payload layout.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Section tags of the checkpoint body (u8 on the wire). Every section is
/// length-prefixed, so tooling can walk the structure without the config.
enum class CkptSection : std::uint8_t {
  kCore = 1,      ///< clock, schedule, engine RNGs, pair maps
  kWorld = 2,     ///< world agents + mobility RNG streams
  kFaults = 3,    ///< fault-injector state
  kNodes = 4,     ///< eval set + per-vehicle model/optimizer/dataset/RNG
  kSessions = 5,  ///< in-flight PairSessions with queued transfers
  kStats = 6,     ///< TransferStats + per-vehicle accounting
  kMetrics = 7,   ///< RunMetrics accumulated so far (loss curves)
  kStrategy = 8,  ///< strategy-private state (Strategy::save_state)
  kObs = 9,       ///< event-trace ring + metrics-registry snapshot
};

[[nodiscard]] std::string_view section_name(std::uint8_t tag);

/// Outcome of FleetSim::restore / inspect_checkpoint.
enum class CkptStatus : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,          ///< envelope rejected (magic/length/CRC)
  kBadVersion = 2,        ///< checkpoint layout version unsupported
  kConfigMismatch = 3,    ///< fingerprint/seed/vehicle count differ from the sim's
  kStrategyMismatch = 4,  ///< saved under a different strategy
  kMalformed = 5,         ///< payload structurally invalid past the CRC
};

[[nodiscard]] std::string_view to_string(CkptStatus s);

/// FNV-1a fingerprint of every ScenarioConfig field that shapes simulation
/// state. duration_s and num_threads are deliberately EXCLUDED: a resumed run
/// may extend the horizon or change the lane count without breaking
/// bit-exactness (the engine is deterministic across thread counts).
[[nodiscard]] std::uint64_t config_fingerprint(const ScenarioConfig& cfg);

/// Structural summary of a checkpoint, produced without a ScenarioConfig.
struct CkptInfo {
  std::uint32_t version = 0;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint32_t num_vehicles = 0;
  std::string strategy;
  double time_s = 0.0;
  struct Section {
    std::uint8_t tag = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Section> sections;
};

/// Validate the envelope and walk the section framing of checkpoint `bytes`,
/// filling `info`. Config-free (any checkpoint can be inspected); never
/// throws. Returns kOk only when the frame verifies, the version matches,
/// and every section is well-framed with no trailing bytes.
[[nodiscard]] CkptStatus inspect_checkpoint(std::span<const std::uint8_t> bytes, CkptInfo& info);

/// JSON rendering of a CkptInfo — one object with version, fingerprint (hex),
/// seed, vehicles, strategy, time_s, and a sections array of
/// {tag,name,bytes}. Shared by `ckpt_check --json` and the fleet service's
/// status endpoint (which embeds it for preempted jobs).
[[nodiscard]] std::string ckpt_info_json(const CkptInfo& info);

}  // namespace lbchat::engine
