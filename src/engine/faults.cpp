#include "engine/faults.h"

#include <algorithm>
#include <stdexcept>

#include "common/bytes.h"

#include "obs/trace.h"

namespace lbchat::engine {

FaultInjector::FaultInjector(const FaultConfig& cfg, std::uint64_t seed, double extent_m,
                             int num_vehicles)
    : cfg_(cfg),
      extent_m_(extent_m),
      burst_rng_(Rng{seed}.fork("fault-burst")),
      churn_rng_(Rng{seed}.fork("fault-churn")),
      corrupt_rng_(Rng{seed}.fork("fault-corrupt")),
      offline_until_(static_cast<std::size_t>(num_vehicles), 0.0) {}

void FaultInjector::advance(double time, double dt) {
  time_ = time;
  went_offline_.clear();

  if (cfg_.burst_rate_per_min > 0.0) {
    // Expire first so a burst lasts its sampled duration, not duration + dt.
    bursts_.erase(std::remove_if(bursts_.begin(), bursts_.end(),
                                 [time](const Burst& b) {
                                   if (time >= b.until_s) {
                                     obs::emit(time, obs::EventKind::kBurstEnd, -1, -1,
                                               b.extra_loss);
                                     return true;
                                   }
                                   return false;
                                 }),
                  bursts_.end());
    const double p_spawn = std::min(cfg_.burst_rate_per_min / 60.0 * dt, 1.0);
    if (burst_rng_.chance(p_spawn)) {
      Burst b;
      b.center = Vec2{burst_rng_.uniform(0.0, extent_m_), burst_rng_.uniform(0.0, extent_m_)};
      b.radius_m = cfg_.burst_radius_m;
      b.extra_loss = std::clamp(cfg_.burst_extra_loss, 0.0, 1.0);
      b.until_s = time + cfg_.burst_duration_s * burst_rng_.uniform(0.5, 1.5);
      obs::emit(time, obs::EventKind::kBurstBegin, -1, -1, b.until_s);
      bursts_.push_back(b);
    }
  }

  if (cfg_.churn_rate_per_min > 0.0) {
    const double p_drop = std::min(cfg_.churn_rate_per_min / 60.0 * dt, 1.0);
    for (std::size_t v = 0; v < offline_until_.size(); ++v) {
      if (offline_until_[v] > 0.0) {
        if (time >= offline_until_[v]) {
          // Rejoin: the vehicle's node state (model, optimizer, dataset,
          // RNG) was never touched, so it resumes where it left off.
          offline_until_[v] = 0.0;
          --offline_count_;
          obs::emit(time, obs::EventKind::kChurnOnline, static_cast<int>(v));
        }
        continue;
      }
      if (churn_rng_.chance(p_drop)) {
        const double dur = cfg_.churn_offline_mean_s * churn_rng_.uniform(0.5, 1.5);
        offline_until_[v] = time + std::max(dur, dt);
        ++offline_count_;
        went_offline_.push_back(static_cast<int>(v));
        obs::emit(time, obs::EventKind::kChurnOffline, static_cast<int>(v), -1,
                  offline_until_[v]);
      }
    }
  }
}

double FaultInjector::extra_loss(const Vec2& a, const Vec2& b) const {
  double worst = 0.0;
  for (const Burst& burst : bursts_) {
    if (distance(a, burst.center) <= burst.radius_m ||
        distance(b, burst.center) <= burst.radius_m) {
      worst = std::max(worst, burst.extra_loss);
    }
  }
  return worst;
}

bool FaultInjector::corrupt_delivery(double distance_m, double max_range_m) {
  const double near = cfg_.corrupt_prob_near;
  const double far = cfg_.corrupt_prob_far;
  if (near <= 0.0 && far <= 0.0) return false;
  const double t =
      max_range_m > 0.0 ? std::clamp(distance_m / max_range_m, 0.0, 1.0) : 0.0;
  const double p = std::clamp(near + (far - near) * t, 0.0, 1.0);
  return corrupt_rng_.chance(p);
}

void FaultInjector::corrupt_payload(std::vector<std::uint8_t>& payload) {
  if (payload.empty()) return;
  const auto flips = static_cast<int>(1 + corrupt_rng_.uniform_index(4));
  for (int i = 0; i < flips; ++i) {
    const std::size_t bit = static_cast<std::size_t>(
        corrupt_rng_.uniform_index(static_cast<std::uint64_t>(payload.size()) * 8));
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

void FaultInjector::save(ByteWriter& w) const {
  w.write_f64(time_);
  burst_rng_.save(w);
  churn_rng_.save(w);
  corrupt_rng_.save(w);
  w.write_u32(static_cast<std::uint32_t>(bursts_.size()));
  for (const auto& b : bursts_) {
    w.write_f64(b.center.x);
    w.write_f64(b.center.y);
    w.write_f64(b.radius_m);
    w.write_f64(b.extra_loss);
    w.write_f64(b.until_s);
  }
  w.write_f64_vec(offline_until_);
  w.write_u32(static_cast<std::uint32_t>(went_offline_.size()));
  for (const int v : went_offline_) w.write_i32(v);
}

void FaultInjector::load(ByteReader& r) {
  time_ = r.read_f64();
  burst_rng_.load(r);
  churn_rng_.load(r);
  corrupt_rng_.load(r);
  bursts_.resize(r.read_u32());
  for (auto& b : bursts_) {
    b.center.x = r.read_f64();
    b.center.y = r.read_f64();
    b.radius_m = r.read_f64();
    b.extra_loss = r.read_f64();
    b.until_s = r.read_f64();
  }
  auto offline = r.read_f64_vec();
  if (offline.size() != offline_until_.size()) {
    throw std::runtime_error{"FaultInjector::load: vehicle count mismatch"};
  }
  offline_until_ = std::move(offline);
  went_offline_.resize(r.read_u32());
  const int n = static_cast<int>(offline_until_.size());
  for (auto& v : went_offline_) {
    v = r.read_i32();
    if (v < 0 || v >= n) throw std::runtime_error{"FaultInjector::load: vehicle out of range"};
  }
  offline_count_ = 0;
  for (const double until : offline_until_) {
    if (until > 0.0) ++offline_count_;
  }
}

}  // namespace lbchat::engine
