// Byzantine peers and fleet heterogeneity for the fleet engine.
//
// The paper's coreset-value scoring (Eq. (8)) is, implicitly, a defense: a
// vehicle judges what a peer's contribution is *worth* before merging it.
// The CRC frame envelope (common/frame.h) only catches transport damage — a
// semantically valid hostile payload sails through it untouched. This module
// supplies exactly those payloads, plus the device heterogeneity that real
// fleets face, so the robustness matrix can measure whether LbChat's scoring
// down-weights attackers where the blind baselines average them in.
//
// Two independent layers, both part of ScenarioConfig:
//
//  1. AdversaryConfig / AdversaryModel — a seeded subset of vehicles is
//     flagged Byzantine. Their outgoing payloads are mutated at
//     payload-construction time (FleetSim::queue_transfer, before the bytes
//     enter the wire): model frames are sign-flipped/scaled (optionally with
//     Gaussian noise), coreset frames have their in-coreset weights w_C
//     inflated, and assist frames carry fabricated routes/velocity and lied
//     bandwidth. Every mutation re-encodes the frame envelope, so the result
//     is CRC-valid and structurally decodable — only value scoring can catch
//     it.
//
//  2. HeteroConfig / HeteroModel — per-vehicle compute-rate multipliers
//     (stragglers train fewer steps per interval via a deterministic credit
//     accumulator), per-vehicle radio bitrate scaling (a pair's link runs at
//     min of the endpoint scales, mirroring the session rate min{B_i, B_j}),
//     and skewed per-vehicle dataset sizes (stride decimation at collection).
//
// Determinism contract (mirrors engine/faults.h): all randomness comes from
// named RNG streams forked off the scenario seed; membership and per-vehicle
// scales are derived in the constructor (never serialized); with the default
// all-off configs neither model consumes randomness nor perturbs anything —
// runs are bit-identical to an engine without this subsystem, and the
// checkpoint/config-fingerprint bytes are unchanged (conditional-tail
// pattern, engine/checkpoint.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/frame.h"

namespace lbchat {
class ByteWriter;
class ByteReader;
}  // namespace lbchat

namespace lbchat::engine {

/// Byzantine-peer knobs. All off by default; part of ScenarioConfig.
struct AdversaryConfig {
  /// Fraction of the fleet flagged Byzantine (lround(frac * n) vehicles,
  /// chosen by a seeded permutation). 0 = the whole subsystem is inert.
  double byzantine_frac = 0.0;

  // --- Composable wire behaviors (apply only to flagged senders) ---
  /// Model poisoning: transmitted sparse-model values become
  /// -poison_scale * v (+ Gaussian noise of stddev poison_noise when > 0).
  bool poison_models = true;
  double poison_scale = 3.0;
  double poison_noise = 0.0;
  /// Coreset-weight inflation: transmitted w_C entries are multiplied by
  /// coreset_inflation (bounded below the wire-validity cap), overstating
  /// the attacker's data mass to any weight-sensitive aggregator.
  bool inflate_coreset_weights = true;
  double coreset_inflation = 8.0;
  /// Lying assist info: velocity negated and route sequence reversed
  /// (fabricated trajectory), claimed bandwidth multiplied by
  /// assist_bandwidth_lie — poisons the receiver's contact estimate and
  /// priority score while staying structurally valid.
  bool lie_assist = true;
  double assist_bandwidth_lie = 4.0;

  /// True when any Byzantine behavior can fire.
  [[nodiscard]] bool enabled() const { return byzantine_frac > 0.0; }
};

/// Fleet-heterogeneity knobs. All off by default; part of ScenarioConfig.
struct HeteroConfig {
  /// Fraction of vehicles that are compute stragglers (seeded permutation).
  double straggler_frac = 0.0;
  /// Straggler training rate: expected local-train steps per train interval
  /// (each straggler draws uniform [0.75, 1.25] * this, clamped to (0, 1]).
  double straggler_rate = 0.25;

  /// Fraction of vehicles with a slow radio.
  double slow_radio_frac = 0.0;
  /// Bitrate multiplier for slow radios (uniform [0.75, 1.25] * this,
  /// clamped to (0, 1]); a pair's link runs at min of the endpoint scales.
  double slow_radio_scale = 0.4;

  /// Dataset-size skew in [0, 1]: each vehicle keeps a fraction
  /// max(keep_min, 1 - skew * U[0,1)) of its collected training frames
  /// (eval/validation splits untouched). 0 = every frame kept.
  double dataset_skew = 0.0;
  double dataset_keep_min = 0.3;

  [[nodiscard]] bool enabled() const {
    return straggler_frac > 0.0 || slow_radio_frac > 0.0 || dataset_skew > 0.0;
  }
};

/// Derived Byzantine state. Owned by FleetSim; transform_payload runs on the
/// single-threaded session path (queue_transfer), so the mutable noise
/// stream needs no synchronization.
class AdversaryModel {
 public:
  AdversaryModel(const AdversaryConfig& cfg, std::uint64_t seed, int num_vehicles);

  [[nodiscard]] bool active() const { return cfg_.enabled(); }
  [[nodiscard]] bool byzantine(int v) const {
    return byzantine_[static_cast<std::size_t>(v)] != 0;
  }
  [[nodiscard]] int byzantine_count() const { return byzantine_count_; }

  /// Mutate a framed wire payload leaving a Byzantine sender. `kind` is the
  /// StageTag::Kind discriminator (0 assist, 1 coreset, 2 model); `bev` is
  /// the fleet BevSpec (coreset re-encode). Decodes the envelope, applies
  /// the configured behavior, and re-encodes — the result stays CRC-valid.
  /// Returns true when the payload was changed (false for behaviors that are
  /// switched off, non-protocol payloads, or undecodable input).
  bool transform_payload(int kind, std::vector<std::uint8_t>& framed,
                         const data::BevSpec& bev);

  /// Serialize/restore the mutable state (the Gaussian noise stream) into a
  /// model constructed with the same (cfg, seed, num_vehicles). Membership
  /// is derived, never serialized. load() throws on malformed input.
  void save(ByteWriter& w) const;
  void load(ByteReader& r);

 private:
  AdversaryConfig cfg_;
  std::vector<std::uint8_t> byzantine_;  ///< per-vehicle membership flag
  int byzantine_count_ = 0;
  Rng noise_rng_;  ///< consumed only when poison_noise > 0
};

/// Derived heterogeneity state. Per-vehicle scales are computed once in the
/// constructor; the only mutable state is the straggler credit accumulator,
/// advanced from the single-threaded train dispatch.
class HeteroModel {
 public:
  HeteroModel(const HeteroConfig& cfg, std::uint64_t seed, int num_vehicles);

  [[nodiscard]] bool active() const { return cfg_.enabled(); }
  /// Expected local-train steps per train interval (1.0 = full rate).
  [[nodiscard]] double compute_rate(int v) const {
    return compute_rate_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool straggler(int v) const { return compute_rate(v) < 1.0; }
  /// Radio bitrate multiplier in (0, 1].
  [[nodiscard]] double radio_scale(int v) const {
    return radio_scale_[static_cast<std::size_t>(v)];
  }
  /// Fraction of collected training frames vehicle `v` keeps, in (0, 1].
  [[nodiscard]] double dataset_keep(int v) const {
    return dataset_keep_[static_cast<std::size_t>(v)];
  }

  /// Straggler gate, called once per train interval per vehicle from the
  /// engine's single-threaded dispatch: accumulates compute-rate credit and
  /// returns whether `v` trains this interval (always true at full rate;
  /// touches only vehicle-v state, no RNG).
  bool should_train(int v);

  /// Serialize/restore the credit accumulators (scales are derived).
  void save(ByteWriter& w) const;
  void load(ByteReader& r);

 private:
  HeteroConfig cfg_;
  std::vector<double> compute_rate_;
  std::vector<double> radio_scale_;
  std::vector<double> dataset_keep_;
  std::vector<double> credit_;
};

}  // namespace lbchat::engine
