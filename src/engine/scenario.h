// Scenario configuration for a collaborative-training run (paper §IV-A).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "coreset/coreset.h"
#include "engine/adversary.h"
#include "engine/faults.h"
#include "net/wireless.h"
#include "nn/policy.h"
#include "sim/world.h"

namespace lbchat::engine {

/// Opt-in int8 forward-only inference for the evaluation-side model calls
/// (DESIGN.md §15): coreset value scoring inside LbChat handshakes and the
/// engine's mean_eval_loss sweeps. Off by default and bit-inert when off —
/// default-configured runs hash, checkpoint, and evaluate exactly as before.
/// When enabled, loss trajectories change (quantized eval numerics), so the
/// knob joins the scenario fingerprint and the checkpoint config fingerprint
/// via conditional tails like the adversary/scaling blocks.
struct Int8EvalConfig {
  bool enabled = false;
  /// Quantize the models evaluated during chat value scoring (Eq. (7)/(8)
  /// losses and the phi-mapping samples).
  bool value_scoring = true;
  /// Quantize the per-vehicle models in mean_eval_loss / eval_and_record.
  bool eval_loss = true;

  [[nodiscard]] bool scores_values() const { return enabled && value_scoring; }
  [[nodiscard]] bool scores_eval_loss() const { return enabled && eval_loss; }

  friend constexpr bool operator==(const Int8EvalConfig&, const Int8EvalConfig&) = default;
};

struct ScenarioConfig {
  std::uint64_t seed = 1;
  int num_vehicles = 16;  ///< paper: 32 expert autopilots (scaled down)
  /// Worker lanes for the per-vehicle training/eval loops: 0 = hardware
  /// concurrency, 1 = sequential. Runs are bit-identical for any value
  /// (every vehicle owns its Rng/ParamStore), so this is a pure wall-clock
  /// knob and is deliberately excluded from the bench cache fingerprint.
  int num_threads = 1;

  sim::WorldConfig world{};
  net::RadioConfig radio{};
  net::WireSizeModel wire{};
  /// Case (b) "with wireless loss" vs case (a) without (Fig. 2a/2b,
  /// Tables II/III).
  bool wireless_loss = true;

  // --- Local data collection phase (paper: 1 h at 2 fps; scaled down) ---
  double collect_duration_s = 600.0;
  double collect_fps = 2.0;
  /// Fraction of each vehicle's collected frames held out as its local
  /// validation set (used by the DP baseline's loss-based merging).
  double validation_fraction = 0.1;
  /// Frames per vehicle contributed to the shared held-out evaluation set
  /// that the loss-vs-time curves are measured on.
  int eval_frames_per_vehicle = 12;

  // --- Training phase ---
  double duration_s = 2400.0;
  double tick_s = 0.5;
  double train_interval_s = 4.0;  ///< one local SGD batch per vehicle per interval
  int batch_size = 32;            ///< paper: 64 at full scale
  double learning_rate = 1e-3;    ///< Adam step size (paper: 1e-4 at full scale)
  double eval_interval_s = 120.0;

  // --- Protocol parameters ---
  double time_budget_s = 15.0;  ///< T_B of Eq. (7)
  std::size_t coreset_size = 150;
  /// Minimum time between two chats of the same vehicle pair, so a fleet
  /// does not spend the whole contact re-exchanging with one neighbour.
  double pair_cooldown_s = 45.0;
  /// Penalty coefficient lambda_c of Eq. (7) (units: normalized-loss/second).
  double lambda_c = 0.0005;
  /// Give-up timer: a session older than this is abandoned (covers stalled
  /// transfers on a nearly-dead link; the paper's deadlock note, §III-A).
  double session_timeout_s = 60.0;
  /// How often a vehicle rebuilds its coreset from scratch with Algorithm 1
  /// (between rebuilds, the merge-reduce fast path keeps it fresh).
  double coreset_rebuild_interval_s = 240.0;

  // --- Fleet scaling (DESIGN.md §11) ---
  /// Answer strategy neighbor queries from a uniform spatial grid rebuilt
  /// once per tick instead of an O(n^2) all-pairs scan. The grid is an exact
  /// candidate filter (same set, same ascending-id order, same inclusive
  /// boundary as the scan), so runs are bit-identical either way: a pure
  /// wall-clock knob, excluded from the checkpoint config fingerprint like
  /// num_threads.
  bool spatial_index = true;
  /// Per-session RNG streams + parallel transfer ticks with an ordered
  /// sequential commit. Changes which RNG stream packet noise draws from
  /// (one stream per session instead of the shared engine stream), so it is
  /// OFF by default to keep historical runs bit-identical; with it on, runs
  /// are bit-identical across any num_threads.
  bool parallel_sessions = false;

  nn::PolicyConfig policy{};
  coreset::PenaltyConfig penalty{};

  /// Fault model (interference bursts, vehicle churn, payload corruption,
  /// chat backoff). All off by default: a default-constructed FaultConfig
  /// leaves every run bit-identical to an engine without fault injection.
  FaultConfig faults{};

  /// Byzantine-peer model (engine/adversary.h): a seeded subset of vehicles
  /// mutates its outgoing payloads — sign-flipped models, inflated coreset
  /// weights, lying assist info — all CRC-valid on the wire. Off by default
  /// (bit-inert, and absent from the checkpoint config fingerprint when off).
  AdversaryConfig adversary{};
  /// Fleet heterogeneity (engine/adversary.h): compute stragglers, slow
  /// radios, skewed dataset sizes. Off by default with the same bit-inertness
  /// contract as the adversary layer.
  HeteroConfig hetero{};

  /// Int8 evaluation path (above). Off by default; bit-inert when off.
  Int8EvalConfig int8_eval{};
};

/// One-line metro fleet: grow the scenario to `num_vehicles` while holding
/// density constant. The town is tiled by sqrt(count ratio) — map extent,
/// urban grid and rural ring all scale with the tile factor, background
/// traffic with the count ratio — and the scaling machinery (spatial index,
/// snapshot-parallel mobility, parallel session ticks) is switched on.
/// Exposed to the CLI as --num-vehicles.
inline void apply_metro_scale(ScenarioConfig& cfg, int num_vehicles) {
  const double f =
      static_cast<double>(std::max(num_vehicles, 1)) / std::max(cfg.num_vehicles, 1);
  const double tile = std::sqrt(f);
  sim::TownConfig& town = cfg.world.town;
  town.extent_m *= tile;
  town.urban_grid = std::max(2, static_cast<int>(std::lround(town.urban_grid * tile)));
  town.rural_ring_nodes =
      std::max(6, static_cast<int>(std::lround(town.rural_ring_nodes * tile)));
  cfg.world.num_background_cars =
      static_cast<int>(std::lround(cfg.world.num_background_cars * f));
  cfg.world.num_pedestrians = static_cast<int>(std::lround(cfg.world.num_pedestrians * f));
  cfg.num_vehicles = std::max(num_vehicles, 1);
  cfg.spatial_index = true;
  cfg.parallel_sessions = true;
  cfg.world.snapshot_mobility = true;
}

}  // namespace lbchat::engine
