// Bridges RunMetrics (engine accounting) to the obs run-report exporters.
#pragma once

#include <string_view>

#include "engine/metrics.h"
#include "engine/scenario.h"
#include "obs/export.h"

namespace lbchat::engine {

/// Assemble the per-vehicle run report from a finished run's metrics.
/// Deterministic: every field derives from the simulation.
[[nodiscard]] obs::RunReport build_run_report(std::string_view approach,
                                              const ScenarioConfig& cfg,
                                              const RunMetrics& metrics);

}  // namespace lbchat::engine
