// Deterministic fault injection for the fleet engine.
//
// The paper's robustness claim (§IV-C: LbChat holds ~87 % successful model
// receiving rate where blind baselines collapse to 51–60 %) is exercised by a
// single failure mode — leaving radio range mid-transfer. Real V2X
// deployments also face interference, churn, and corrupted payloads. This
// module models three additional fault classes, all driven from named RNG
// streams forked off the scenario seed so fault runs are reproducible
// bit-for-bit (and, because every injector call sits on the engine's
// single-threaded tick path, at any `num_threads`):
//
//  1. Radio interference bursts — timed windows in which a disc-shaped
//     region of the map suffers elevated per-packet loss (up to a full
//     blackout). Transfers whose endpoints sit inside stall or slow down.
//  2. Vehicle churn — a vehicle goes offline for a sampled duration: its
//     in-flight session aborts, it stops training and chatting, then rejoins
//     with its model/dataset/optimizer state intact.
//  3. Payload corruption — a *delivered* transfer is flagged corrupt with a
//     distance-dependent probability, modeling residual bit errors past the
//     retransmission cap. Corruption flips bits in the framed payload; the
//     CRC envelope (common/frame.h) is what lets receivers detect and
//     reject it instead of aggregating garbage.
//
// Determinism contract: with FaultConfig's defaults (all rates/probabilities
// zero) the injector consumes no randomness and perturbs nothing — runs are
// bit-identical to an engine without the fault subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

namespace lbchat {
class ByteWriter;
class ByteReader;
}  // namespace lbchat

namespace lbchat::engine {

/// Fault-model knobs, all off by default. Part of ScenarioConfig.
struct FaultConfig {
  // --- Radio interference bursts ---
  /// Expected bursts spawning per minute across the whole map (0 = off).
  double burst_rate_per_min = 0.0;
  /// Mean burst duration; each burst samples uniform [0.5, 1.5] * mean.
  double burst_duration_s = 20.0;
  /// Radius of the affected disc (centre uniform over the map extent).
  double burst_radius_m = 250.0;
  /// Additional per-packet loss inside the disc; 1.0 blacks the link out.
  double burst_extra_loss = 1.0;

  // --- Vehicle churn ---
  /// Per-vehicle offline events per minute (0 = off).
  double churn_rate_per_min = 0.0;
  /// Mean offline duration; each event samples uniform [0.5, 1.5] * mean.
  double churn_offline_mean_s = 30.0;

  // --- Payload corruption ---
  /// Probability a *delivered* framed payload arrives corrupt, linear in
  /// distance between `corrupt_prob_near` (at distance 0) and
  /// `corrupt_prob_far` (at radio max range). Both 0 = off.
  double corrupt_prob_near = 0.0;
  double corrupt_prob_far = 0.0;

  // --- Graceful degradation: per-pair chat backoff ---
  /// When true, a strategy-reported pair failure (aborted session, rejected
  /// frame) multiplies that pair's chat cooldown by backoff_base per
  /// consecutive failure (capped), so a flaky pair is retried with bounded
  /// frequency instead of re-burning every contact window. Off by default:
  /// the stock protocol's behaviour is unchanged.
  bool chat_backoff = false;
  double backoff_base = 2.0;
  int backoff_max_exp = 4;

  /// True when any fault class can fire.
  [[nodiscard]] bool any_faults() const {
    return burst_rate_per_min > 0.0 || churn_rate_per_min > 0.0 || corrupt_prob_near > 0.0 ||
           corrupt_prob_far > 0.0;
  }
};

/// Drives the three fault classes. Owned by FleetSim; advance() is called
/// once per engine tick from the single-threaded simulation loop.
class FaultInjector {
 public:
  /// `extent_m` is the map side length (burst centres are uniform over it);
  /// `seed` is the scenario seed (streams are forked by name, so the
  /// injector never perturbs other consumers).
  FaultInjector(const FaultConfig& cfg, std::uint64_t seed, double extent_m, int num_vehicles);

  /// Advance to `time` (one engine tick of length `dt`): expire and spawn
  /// bursts, process churn transitions. After this call, went_offline()
  /// lists the vehicles that dropped out during this tick.
  void advance(double time, double dt);

  /// Additional per-packet loss for a link between `a` and `b` (max over
  /// active bursts covering either endpoint; 0 when clear).
  [[nodiscard]] double extra_loss(const Vec2& a, const Vec2& b) const;
  /// True when extra_loss() reaches 1.0 (the link cannot make progress).
  [[nodiscard]] bool blackout(const Vec2& a, const Vec2& b) const {
    return extra_loss(a, b) >= 1.0;
  }

  [[nodiscard]] bool offline(int v) const {
    return offline_until_[static_cast<std::size_t>(v)] > 0.0;
  }
  [[nodiscard]] int offline_count() const { return offline_count_; }
  /// Vehicles that went offline during the latest advance() tick.
  [[nodiscard]] const std::vector<int>& went_offline() const { return went_offline_; }

  /// Bernoulli: is a payload delivered over `distance` (of a link with
  /// `max_range_m`) corrupt? Consumes the corruption stream only when the
  /// configured probability is positive.
  [[nodiscard]] bool corrupt_delivery(double distance, double max_range_m);

  /// Flip 1–4 bits of `payload` at positions drawn from the corruption
  /// stream (no-op on an empty payload).
  void corrupt_payload(std::vector<std::uint8_t>& payload);

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] int active_bursts() const { return static_cast<int>(bursts_.size()); }

  /// Serialize/restore the injector's mutable state (clock, RNG streams,
  /// active bursts, offline timers) into an injector constructed with the
  /// same (cfg, seed, extent, num_vehicles). load() throws std::exception on
  /// malformed input.
  void save(ByteWriter& w) const;
  void load(ByteReader& r);

 private:
  struct Burst {
    Vec2 center;
    double radius_m = 0.0;
    double extra_loss = 0.0;
    double until_s = 0.0;
  };

  FaultConfig cfg_;
  double extent_m_ = 0.0;
  Rng burst_rng_;
  Rng churn_rng_;
  Rng corrupt_rng_;
  std::vector<Burst> bursts_;
  /// Per-vehicle "offline until" time; 0 = online.
  std::vector<double> offline_until_;
  std::vector<int> went_offline_;
  int offline_count_ = 0;
  double time_ = 0.0;
};

}  // namespace lbchat::engine
