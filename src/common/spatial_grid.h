// Uniform spatial hash grid over a set of 2-D points.
//
// The scaling substrate for radio-range neighbor queries and obstacle scans
// (DESIGN.md §11): points are bucketed into square cells of a caller-chosen
// size, rebuilt from scratch each tick in O(n) with a counting sort, and a
// disc query visits only the cells overlapping the disc. With cell size >=
// query radius that is at most a 3x3 neighborhood, so per-query cost is
// proportional to local density instead of fleet size.
//
// The grid returns a candidate SUPERSET: callers filter with the exact
// predicate (e.g. distance <= range) against the same positions the grid was
// built from, which makes grid-backed queries bit-identical to a brute-force
// scan. Within one cell, ids are stored in ascending order (counting sort is
// stable over the insertion sweep), but ids across cells are not globally
// ordered — callers needing ascending-id results sort the filtered matches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/geometry.h"

namespace lbchat {

class UniformGrid {
 public:
  /// Rebuild the grid over `points` with square cells of `cell_m` per side.
  /// The grid bounds are the points' bounding box, so callers never need to
  /// know the map extent (tiled metro maps included).
  void rebuild(std::span<const Vec2> points, double cell_m) {
    cell_ = std::max(cell_m, 1e-9);
    const auto n = points.size();
    if (n == 0) {
      nx_ = ny_ = 0;
      cell_start_.assign(1, 0);
      ids_.clear();
      return;
    }
    min_x_ = points[0].x;
    min_y_ = points[0].y;
    double max_x = points[0].x;
    double max_y = points[0].y;
    for (const Vec2& p : points) {
      min_x_ = std::min(min_x_, p.x);
      min_y_ = std::min(min_y_, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    nx_ = static_cast<int>((max_x - min_x_) / cell_) + 1;
    ny_ = static_cast<int>((max_y - min_y_) / cell_) + 1;
    const std::size_t ncells = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
    cell_start_.assign(ncells + 1, 0);
    cell_of_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = cell_index(points[i]);
      cell_of_[i] = c;
      ++cell_start_[c + 1];
    }
    for (std::size_t c = 1; c <= ncells; ++c) cell_start_[c] += cell_start_[c - 1];
    ids_.resize(n);
    fill_cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      ids_[fill_cursor_[cell_of_[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  /// Invoke fn(point_index) for every point in a cell overlapping the disc
  /// (center, radius) — a superset of the exact matches. Order: cell-major,
  /// ascending index within each cell.
  template <class Fn>
  void for_each_candidate(const Vec2& center, double radius, Fn&& fn) const {
    if (nx_ == 0) return;
    const int cx0 = clamp_cx(static_cast<int>(std::floor((center.x - radius - min_x_) / cell_)));
    const int cx1 = clamp_cx(static_cast<int>(std::floor((center.x + radius - min_x_) / cell_)));
    const int cy0 = clamp_cy(static_cast<int>(std::floor((center.y - radius - min_y_) / cell_)));
    const int cy1 = clamp_cy(static_cast<int>(std::floor((center.y + radius - min_y_) / cell_)));
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        const std::size_t c =
            static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
            static_cast<std::size_t>(cx);
        for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          fn(ids_[k]);
        }
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] double cell_size() const { return cell_; }

 private:
  [[nodiscard]] std::uint32_t cell_index(const Vec2& p) const {
    const int cx = clamp_cx(static_cast<int>((p.x - min_x_) / cell_));
    const int cy = clamp_cy(static_cast<int>((p.y - min_y_) / cell_));
    return static_cast<std::uint32_t>(cy) * static_cast<std::uint32_t>(nx_) +
           static_cast<std::uint32_t>(cx);
  }
  [[nodiscard]] int clamp_cx(int cx) const { return std::clamp(cx, 0, nx_ - 1); }
  [[nodiscard]] int clamp_cy(int cy) const { return std::clamp(cy, 0, ny_ - 1); }

  double cell_ = 1.0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<std::uint32_t> cell_start_;   // CSR offsets, ncells + 1
  std::vector<std::uint32_t> ids_;          // point ids grouped by cell
  std::vector<std::uint32_t> cell_of_;      // rebuild scratch
  std::vector<std::uint32_t> fill_cursor_;  // rebuild scratch
};

}  // namespace lbchat
