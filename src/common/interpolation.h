// Akima spline interpolation (Akima, JACM 1970) — the curve-fitting method the
// paper uses ([21]) to build the mapping function phi between the reciprocal
// compression ratio psi and the loss of the compressed model on a coreset.
#pragma once

#include <span>
#include <vector>

namespace lbchat {

/// One-dimensional Akima interpolant through strictly-increasing abscissae.
///
/// Akima's method fits a piecewise cubic whose derivative at each knot is a
/// locally weighted average of neighbouring secant slopes; unlike a natural
/// cubic spline it does not oscillate around outliers, which matters here
/// because the sampled (psi, loss) pairs are noisy.
class AkimaSpline {
 public:
  /// Build from knots. Requires xs.size() == ys.size() >= 2 and xs strictly
  /// increasing; throws std::invalid_argument otherwise. With exactly 2 points
  /// the interpolant degenerates to the connecting line.
  AkimaSpline(std::span<const double> xs, std::span<const double> ys);

  /// Evaluate at `x`. Outside [xs.front(), xs.back()] the boundary cubic is
  /// clamped to linear extrapolation from the nearest knot's slope.
  [[nodiscard]] double operator()(double x) const;

  /// First derivative at `x` (same extrapolation rule).
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] double min_x() const { return xs_.front(); }
  [[nodiscard]] double max_x() const { return xs_.back(); }

 private:
  [[nodiscard]] std::size_t interval_of(double x) const;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> slopes_;  // derivative at each knot
};

/// Linear interpolation through a table of (x, y) pairs with clamped ends.
/// Used for the distance→wireless-loss lookup table.
double lerp_table(std::span<const double> xs, std::span<const double> ys, double x);

}  // namespace lbchat
