// Minimal leveled logging to stderr. Quiet by default so tests and benches
// stay readable; raise the level with lbchat::set_log_level or the
// LBCHAT_LOG env var (error|warn|info|debug).
#pragma once

#include <cstdio>
#include <string_view>
#include <utility>

namespace lbchat {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}

#define LBCHAT_LOG_ERROR(...) ::lbchat::detail::vlog(::lbchat::LogLevel::kError, __VA_ARGS__)
#define LBCHAT_LOG_WARN(...) ::lbchat::detail::vlog(::lbchat::LogLevel::kWarn, __VA_ARGS__)
#define LBCHAT_LOG_INFO(...) ::lbchat::detail::vlog(::lbchat::LogLevel::kInfo, __VA_ARGS__)
#define LBCHAT_LOG_DEBUG(...) ::lbchat::detail::vlog(::lbchat::LogLevel::kDebug, __VA_ARGS__)

}  // namespace lbchat
