// Fixed-size worker pool with a statically-chunked parallel_for.
//
// Built for the fleet engine's embarrassingly-parallel per-vehicle loops:
// each index owns disjoint state (its VehicleNode, Rng, ParamStore), so the
// loop body runs bit-identically no matter which thread executes it, and the
// pool only has to hand out contiguous index chunks. The calling thread
// participates as lane 0, so a pool sized 1 is exactly a sequential loop and
// a pool with zero workers degrades gracefully to inline execution.
//
// parallel_for blocks until every index has run and rethrows the first
// exception a lane raised. It is NOT reentrant: calling parallel_for from
// inside a loop body deadlocks by design (the engine never nests it).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lbchat {

class ThreadPool {
 public:
  /// `num_threads` counts total lanes including the caller: 0 picks the
  /// hardware concurrency, 1 means sequential (no workers spawned), n > 1
  /// spawns n-1 workers.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (spawned workers + the calling thread).
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invoke fn(i) exactly once for every i in [begin, end), split into at
  /// most size() contiguous chunks. Blocks until all indices ran; rethrows
  /// the first exception thrown by any lane (remaining indices of other
  /// chunks still run).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn);

  /// Map a config knob to a lane count: <= 0 -> hardware concurrency
  /// (at least 1), otherwise the requested value.
  [[nodiscard]] static int resolve_num_threads(int requested);

 private:
  void worker_loop();
  /// Run chunk `part` of the current job; never throws (stores the error).
  void run_chunk(int part);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job (valid while pending_parts_ > 0).
  const std::function<void(std::int64_t)>* fn_ = nullptr;
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  int parts_ = 0;
  int next_part_ = 0;
  int pending_parts_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace lbchat
