// Small statistics helpers and the time-series container used to record
// training-loss-vs-time curves (Figs. 2 and 3 of the paper).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace lbchat {

inline double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

inline double stddev(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

/// Linear-interpolated percentile, p in [0, 100]. Copies the input only when
/// it is not already sorted.
inline double percentile(std::span<const double> v, double p) {
  if (v.empty()) throw std::invalid_argument{"percentile: empty"};
  std::vector<double> scratch;
  if (!std::is_sorted(v.begin(), v.end())) {
    scratch.assign(v.begin(), v.end());
    std::sort(scratch.begin(), scratch.end());
    v = scratch;
  }
  const double idx = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - t) + v[hi] * t;
}

/// Shannon entropy of a discrete distribution given as non-negative masses
/// (normalized internally); returns 0 for an all-zero input. Natural log.
inline double entropy(std::span<const double> masses) {
  double total = 0.0;
  for (const double m : masses) total += std::max(m, 0.0);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const double m : masses) {
    if (m > 0.0) {
      const double p = m / total;
      h -= p * std::log(p);
    }
  }
  return h;
}

/// A (time, value) series; append-only, time must be non-decreasing.
struct TimeSeries {
  std::vector<double> times;
  std::vector<double> values;

  void add(double t, double v) {
    if (!times.empty() && t < times.back()) {
      throw std::invalid_argument{"TimeSeries: time must be non-decreasing"};
    }
    times.push_back(t);
    values.push_back(v);
  }

  [[nodiscard]] std::size_t size() const { return times.size(); }
  [[nodiscard]] bool empty() const { return times.empty(); }

  /// Most recent value (throws on an empty series).
  [[nodiscard]] double last() const {
    if (values.empty()) throw std::out_of_range{"TimeSeries: empty"};
    return values.back();
  }
  /// Time of the most recent sample (throws on an empty series).
  [[nodiscard]] double last_time() const {
    if (times.empty()) throw std::out_of_range{"TimeSeries: empty"};
    return times.back();
  }

  /// Value at time `t` by step interpolation (last value at or before t);
  /// before the first sample returns the first value.
  [[nodiscard]] double at(double t) const {
    if (times.empty()) throw std::out_of_range{"TimeSeries: empty"};
    auto it = std::upper_bound(times.begin(), times.end(), t);
    if (it == times.begin()) return values.front();
    return values[static_cast<std::size_t>(std::distance(times.begin(), it)) - 1];
  }

  /// First time at which the value drops to or below `threshold`, or a
  /// negative value if it never does. Used for convergence-time comparisons
  /// (Fig. 3: SCO takes 1.5-1.8x longer to reach the same loss).
  [[nodiscard]] double first_time_below(double threshold) const {
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] <= threshold) return times[i];
    }
    return -1.0;
  }
};

}  // namespace lbchat
