#include "common/thread_pool.h"

#include <algorithm>

namespace lbchat {

int ThreadPool::resolve_num_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) {
  const int lanes = resolve_num_threads(num_threads);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 1; i < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_chunk(int part) {
  // Job fields are stable while pending_parts_ > 0, so reading them without
  // the lock here is safe.
  const std::int64_t n = end_ - begin_;
  const std::int64_t lo = begin_ + n * part / parts_;
  const std::int64_t hi = begin_ + n * (part + 1) / parts_;
  try {
    for (std::int64_t i = lo; i < hi; ++i) (*fn_)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lk{mutex_};
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk{mutex_};
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || (generation_ != seen && next_part_ < parts_); });
    if (stop_) return;
    seen = generation_;
    while (next_part_ < parts_) {
      const int part = next_part_++;
      lk.unlock();
      run_chunk(part);
      lk.lock();
      if (--pending_parts_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const int parts = static_cast<int>(std::min<std::int64_t>(size(), n));
  if (workers_.empty() || parts <= 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk{mutex_};
    fn_ = &fn;
    begin_ = begin;
    end_ = end;
    parts_ = parts;
    next_part_ = 1;  // the caller takes chunk 0
    pending_parts_ = parts;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  run_chunk(0);
  std::unique_lock<std::mutex> lk{mutex_};
  --pending_parts_;
  done_cv_.wait(lk, [&] { return pending_parts_ == 0; });
  fn_ = nullptr;
  parts_ = 0;  // stragglers waking late see no work
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace lbchat
