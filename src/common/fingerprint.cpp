#include "common/fingerprint.h"

#include "engine/scenario.h"

namespace lbchat {

namespace {

/// Serialize every fingerprinted scenario field, in the exact order the
/// bench harness historically hashed them. Field order and encoding are
/// frozen (tests/fingerprint_test.cpp pins digests); append-only changes go
/// behind conditional tails like the adversary block below.
void hash_scenario(FnvHasher& h, const engine::ScenarioConfig& c) {
  h.add(static_cast<std::uint64_t>(kScenarioFingerprintVersion));
  h.add(c.seed);
  h.add(c.num_vehicles);
  h.add(c.wireless_loss);
  h.add(c.collect_duration_s);
  h.add(c.collect_fps);
  h.add(c.validation_fraction);
  h.add(c.eval_frames_per_vehicle);
  h.add(c.duration_s);
  h.add(c.tick_s);
  h.add(c.train_interval_s);
  h.add(c.batch_size);
  h.add(c.learning_rate);
  h.add(c.eval_interval_s);
  h.add(c.time_budget_s);
  h.add(static_cast<std::uint64_t>(c.coreset_size));
  h.add(c.pair_cooldown_s);
  h.add(c.lambda_c);
  h.add(c.session_timeout_s);
  h.add(c.coreset_rebuild_interval_s);
  h.add(c.radio.bandwidth_bps);
  h.add(c.radio.packet_bytes);
  h.add(c.radio.max_retransmissions);
  h.add(c.radio.max_range_m);
  h.add(static_cast<std::uint64_t>(c.wire.model_bytes));
  h.add(static_cast<std::uint64_t>(c.wire.coreset_bytes_per_sample));
  h.add(static_cast<std::uint64_t>(c.wire.assist_info_bytes));
  h.add(c.world.num_background_cars);
  h.add(c.world.num_pedestrians);
  h.add(c.world.car_max_speed);
  h.add(c.world.urban_dweller_fraction);
  h.add(c.world.perturb_prob);
  h.add(c.penalty.lambda1);
  h.add(c.penalty.lambda2);
  h.add(c.policy.conv1_channels);
  h.add(c.policy.conv2_channels);
  h.add(c.policy.fc_dim);
  h.add(c.policy.branch_hidden);
  h.add(c.faults.burst_rate_per_min);
  h.add(c.faults.burst_duration_s);
  h.add(c.faults.burst_radius_m);
  h.add(c.faults.burst_extra_loss);
  h.add(c.faults.churn_rate_per_min);
  h.add(c.faults.churn_offline_mean_s);
  h.add(c.faults.corrupt_prob_near);
  h.add(c.faults.corrupt_prob_far);
  h.add(c.faults.chat_backoff);
  h.add(c.faults.backoff_base);
  h.add(c.faults.backoff_max_exp);
  // Conditional tail, mirroring the checkpoint config fingerprint: an
  // all-off adversary/heterogeneity config hashes exactly like a scenario
  // that never mentions the robustness layer, so the (bit-inert) layer's
  // existence cannot split cache keys for non-adversarial runs.
  if (c.adversary.enabled() || c.hetero.enabled()) {
    h.add(std::string_view{"adversary-v1"});
    h.add(c.adversary.byzantine_frac);
    h.add(c.adversary.poison_models);
    h.add(c.adversary.poison_scale);
    h.add(c.adversary.poison_noise);
    h.add(c.adversary.inflate_coreset_weights);
    h.add(c.adversary.coreset_inflation);
    h.add(c.adversary.lie_assist);
    h.add(c.adversary.assist_bandwidth_lie);
    h.add(c.hetero.straggler_frac);
    h.add(c.hetero.straggler_rate);
    h.add(c.hetero.slow_radio_frac);
    h.add(c.hetero.slow_radio_scale);
    h.add(c.hetero.dataset_skew);
    h.add(c.hetero.dataset_keep_min);
  }
  // Int8-eval tail (same conditional pattern): the quantized eval changes
  // loss trajectories, so an enabled knob must split cache keys — but a
  // disabled one hashes exactly like a scenario that never mentions it.
  if (c.int8_eval.enabled) {
    h.add(std::string_view{"int8-eval-v1"});
    h.add(c.int8_eval.value_scoring);
    h.add(c.int8_eval.eval_loss);
  }
}

}  // namespace

std::uint64_t scenario_fingerprint(const engine::ScenarioConfig& cfg,
                                   std::string_view approach) {
  return scenario_fingerprint(cfg, approach, {});
}

std::uint64_t scenario_fingerprint(const engine::ScenarioConfig& cfg,
                                   std::string_view approach,
                                   std::span<const StrategyOptionKv> options) {
  FnvHasher h;
  h.add(approach);
  // Protocol revision salt for the LbChat-family strategies (phi sampling +
  // aggregation guard changes invalidate only their cached runs).
  if (approach == "LbChat" || approach == "LbChat(equal-comp)" ||
      approach == "LbChat(avg-agg)") {
    h.add(std::string_view{"lbchat-proto-v3"});
  }
  hash_scenario(h, cfg);
  // Conditional tail: a strategy running on its schema defaults hashes
  // exactly like one whose options were never mentioned, so the registry's
  // existence cannot split cache keys for default-configured runs.
  if (!options.empty()) {
    h.add(std::string_view{"strategy-options-v1"});
    for (const StrategyOptionKv& kv : options) {
      h.add(std::string_view{kv.key});
      h.add(kv.value);
    }
  }
  return h.digest();
}

}  // namespace lbchat
