// FNV-1a fingerprinting shared by every result cache in the repo.
//
// The bench harness caches training runs on disk keyed by a fingerprint of
// the full scenario configuration + approach name; the fleet-evaluation
// service (src/svc) keys its ResultCache the same way so a job submitted
// twice runs once. Both caches MUST derive their keys from the one
// implementation here — tests/fingerprint_test.cpp pins known digests so the
// key derivation cannot silently drift and stale cache entries cannot be
// served for changed configurations.
//
// Scheme: typed fields are serialized through a ByteWriter (the same
// little-endian layout as the wire formats) and the byte stream is hashed
// with 64-bit FNV-1a. Deliberately NOT hashed: num_threads and the
// spatial-index knob (bit-identical results for any value — pure wall-clock
// knobs). duration_s IS hashed: a cache entry answers one exact horizon.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace lbchat::engine {
struct ScenarioConfig;
}  // namespace lbchat::engine

namespace lbchat {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

/// Plain 64-bit FNV-1a over a byte span, chainable via `h`.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                            std::uint64_t h = kFnvOffsetBasis) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

/// Typed FNV-1a accumulator: fields are serialized little-endian through a
/// ByteWriter, then digested. The add() overload set (and its byte layout)
/// is frozen by the pinned digests in tests/fingerprint_test.cpp — widening
/// it is fine, changing existing overloads is a cache-key break.
class FnvHasher {
 public:
  void add(double v) { w_.write_f64(v); }
  void add(std::uint64_t v) { w_.write_u64(v); }
  void add(int v) { w_.write_i32(v); }
  void add(bool v) { w_.write_u8(v ? 1 : 0); }
  void add(std::string_view s) { w_.write_string(s); }

  [[nodiscard]] std::uint64_t digest() const { return fnv1a(w_.bytes()); }

 private:
  ByteWriter w_;
};

/// Version salt mixed into every scenario fingerprint. Bump to invalidate
/// all cached results (bench .bench_cache entries and svc ResultCache
/// entries alike) after behavioural code changes.
inline constexpr std::uint32_t kScenarioFingerprintVersion = 3;

/// Deterministic fingerprint of a scenario (every behaviour-shaping field,
/// including duration_s) + the approach name, exactly as the bench cache has
/// always computed it. An all-off adversary/heterogeneity config hashes like
/// a scenario that never mentions the robustness layer, so the bit-inert
/// layer's existence cannot split cache keys for non-adversarial runs.
[[nodiscard]] std::uint64_t scenario_fingerprint(const engine::ScenarioConfig& cfg,
                                                 std::string_view approach);

/// One canonical (non-default, schema-validated) strategy option as it enters
/// the fingerprint. Produced by baselines::StrategyRegistry::
/// fingerprint_options — sorted by key, defaults dropped — so two spellings
/// of the same configuration hash identically.
struct StrategyOptionKv {
  std::string key;
  double value = 0.0;
};

/// Options-aware fingerprint: identical to the two-argument overload when
/// `options` is empty (default-configured strategies keep their historical
/// cache keys, bench goldens and svc ResultCache entries alike); non-default
/// options enter via a marked conditional tail, the same trick as the
/// adversary tail above and the checkpoint 0x5C/0xAD section markers.
[[nodiscard]] std::uint64_t scenario_fingerprint(const engine::ScenarioConfig& cfg,
                                                 std::string_view approach,
                                                 std::span<const StrategyOptionKv> options);

}  // namespace lbchat
