#include "common/rng.h"

#include "common/bytes.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lbchat {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::string_view name) const { return fork(hash_name(name)); }

Rng Rng::fork(std::uint64_t salt) const {
  // Mix the salt into the seed material with one SplitMix64 round so that
  // fork(a).fork(b) == fork(b).fork(a) does NOT hold but fork order at one
  // level never matters (each fork only reads seed_, not generator state).
  std::uint64_t mixed = seed_ ^ (salt + 0x9E3779B97F4A7C15ULL + (seed_ << 6) + (seed_ >> 2));
  return Rng{splitmix64(mixed)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument{"uniform_index: n must be > 0"};
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument{"uniform_int: hi < lo"};
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = r * std::sin(2.0 * M_PI * u2);
  have_spare_normal_ = true;
  return r * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::chance(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::weighted_sample_without_replacement(
    std::span<const double> weights, std::size_t k) {
  // Efraimidis–Spirakis: key_i = u_i^(1/w_i); take the k largest keys.
  // Equivalent (and numerically safer) in log space: key = log(u)/w.
  std::vector<std::pair<double, std::size_t>> keys;
  keys.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      double u = 0.0;
      do {
        u = uniform();
      } while (u <= 1e-300);
      keys.emplace_back(std::log(u) / weights[i], i);
    }
  }
  const std::size_t take = std::min(k, keys.size());
  std::partial_sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(take), keys.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::size_t> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(keys[i].second);
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

void Rng::save(ByteWriter& w) const {
  w.write_u64(seed_);
  for (const auto s : s_) w.write_u64(s);
  w.write_u8(have_spare_normal_ ? 1 : 0);
  w.write_f64(spare_normal_);
}

void Rng::load(ByteReader& r) {
  seed_ = r.read_u64();
  for (auto& s : s_) s = r.read_u64();
  have_spare_normal_ = r.read_u8() != 0;
  spare_normal_ = r.read_f64();
}

}  // namespace lbchat
