// 2-D geometry primitives used by the driving-world and network simulators.
#pragma once

#include <cmath>
#include <compare>

namespace lbchat {

/// A 2-D point / vector in metres (world frame) or in the ego frame.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  friend constexpr bool operator==(const Vec2&, const Vec2&) = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; >0 when `o` is counter-clockwise of *this.
  [[nodiscard]] constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  [[nodiscard]] double heading() const { return std::atan2(y, x); }

  /// Unit vector in the same direction; returns {1,0} for the zero vector.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 1e-12 ? Vec2{x / n, y / n} : Vec2{1.0, 0.0};
  }

  /// Rotate counter-clockwise by `angle` radians.
  [[nodiscard]] Vec2 rotated(double angle) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
};

inline constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

/// Normalize an angle into (-pi, pi].
inline double wrap_angle(double a) {
  while (a > M_PI) a -= 2.0 * M_PI;
  while (a <= -M_PI) a += 2.0 * M_PI;
  return a;
}

/// Express world point `p` in the frame of an observer at `origin` with heading
/// `heading` (x forward, y left).
inline Vec2 to_ego_frame(const Vec2& p, const Vec2& origin, double heading) {
  return (p - origin).rotated(-heading);
}

/// Inverse of to_ego_frame.
inline Vec2 to_world_frame(const Vec2& p, const Vec2& origin, double heading) {
  return origin + p.rotated(heading);
}

/// Distance from point `p` to the segment [a, b].
inline double point_segment_distance(const Vec2& p, const Vec2& a, const Vec2& b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 < 1e-12) return distance(p, a);
  double t = (p - a).dot(ab) / len2;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return distance(p, a + ab * t);
}

}  // namespace lbchat
