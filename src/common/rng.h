// Deterministic random-number generation.
//
// Every stochastic component of the simulator draws from its own named stream
// derived from (root seed, stream name), so experiments are reproducible
// bit-for-bit and adding a consumer never perturbs unrelated components.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace lbchat {

class ByteWriter;
class ByteReader;

/// xoshiro256** seeded via SplitMix64. Small, fast, and good enough statistical
/// quality for simulation workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derive an independent child stream from this generator's seed material
  /// and a textual name (order-independent: deriving "a" then "b" equals
  /// deriving "b" then "a").
  [[nodiscard]] Rng fork(std::string_view name) const;
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) ; n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller.
  double normal();
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double p);

  /// Sample `k` distinct indices from [0, weights.size()) with probability
  /// proportional to `weights` (without replacement). Zero/negative weights are
  /// never selected. If fewer than `k` positive weights exist, returns all of
  /// them. O(n log n) via the exponential-sort (Efraimidis–Spirakis) method.
  [[nodiscard]] std::vector<std::size_t> weighted_sample_without_replacement(
      std::span<const double> weights, std::size_t k);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  [[nodiscard]] std::uint64_t seed_material() const { return seed_; }

  /// Serialize/restore the complete generator state (seed material, the
  /// xoshiro words, and the cached Box-Muller spare), so a restored stream
  /// continues bit-identically.
  void save(ByteWriter& w) const;
  void load(ByteReader& r);

 private:
  std::uint64_t seed_;  // original seed material, used by fork()
  std::uint64_t s_[4];  // xoshiro256** state
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// FNV-1a hash of a string, for naming RNG streams.
std::uint64_t hash_name(std::string_view name);

}  // namespace lbchat
