#include "common/interpolation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lbchat {

AkimaSpline::AkimaSpline(std::span<const double> xs, std::span<const double> ys)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  if (xs_.size() != ys_.size()) throw std::invalid_argument{"AkimaSpline: size mismatch"};
  if (xs_.size() < 2) throw std::invalid_argument{"AkimaSpline: need >= 2 points"};
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (!(xs_[i] > xs_[i - 1])) {
      throw std::invalid_argument{"AkimaSpline: xs must be strictly increasing"};
    }
  }

  const std::size_t n = xs_.size();
  // Secant slopes m_i over [x_i, x_{i+1}], padded with two extrapolated slopes
  // on each side as Akima prescribes.
  std::vector<double> m(n + 3);
  for (std::size_t i = 0; i < n - 1; ++i) {
    m[i + 2] = (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);
  }
  // Valid secants occupy m[2..n]; extrapolate two pads on each side. With only
  // two points (one secant) the pads all collapse to that secant's slope.
  m[1] = n >= 3 ? 2.0 * m[2] - m[3] : m[2];
  m[0] = 2.0 * m[1] - m[2];
  m[n + 1] = n >= 3 ? 2.0 * m[n] - m[n - 1] : m[n];
  m[n + 2] = 2.0 * m[n + 1] - m[n];

  slopes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w1 = std::abs(m[i + 3] - m[i + 2]);
    const double w2 = std::abs(m[i + 1] - m[i]);
    if (w1 + w2 < 1e-12) {
      slopes_[i] = 0.5 * (m[i + 1] + m[i + 2]);
    } else {
      slopes_[i] = (w1 * m[i + 1] + w2 * m[i + 2]) / (w1 + w2);
    }
  }
}

std::size_t AkimaSpline::interval_of(double x) const {
  // Largest i with xs_[i] <= x, clamped to [0, n-2].
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto idx = static_cast<std::size_t>(std::distance(xs_.begin(), it));
  if (idx == 0) return 0;
  return std::min(idx - 1, xs_.size() - 2);
}

double AkimaSpline::operator()(double x) const {
  if (x <= xs_.front()) return ys_.front() + slopes_.front() * (x - xs_.front());
  if (x >= xs_.back()) return ys_.back() + slopes_.back() * (x - xs_.back());
  const std::size_t i = interval_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double m = (ys_[i + 1] - ys_[i]) / h;
  // Hermite basis with endpoint derivatives slopes_[i], slopes_[i+1].
  const double a = ys_[i];
  const double b = slopes_[i];
  const double c = (3.0 * m - 2.0 * slopes_[i] - slopes_[i + 1]) / h;
  const double d = (slopes_[i] + slopes_[i + 1] - 2.0 * m) / (h * h);
  const double dx = x - xs_[i];
  (void)t;
  return a + dx * (b + dx * (c + dx * d));
}

double AkimaSpline::derivative(double x) const {
  if (x <= xs_.front()) return slopes_.front();
  if (x >= xs_.back()) return slopes_.back();
  const std::size_t i = interval_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double m = (ys_[i + 1] - ys_[i]) / h;
  const double b = slopes_[i];
  const double c = (3.0 * m - 2.0 * slopes_[i] - slopes_[i + 1]) / h;
  const double d = (slopes_[i] + slopes_[i + 1] - 2.0 * m) / (h * h);
  const double dx = x - xs_[i];
  return b + dx * (2.0 * c + dx * 3.0 * d);
}

double lerp_table(std::span<const double> xs, std::span<const double> ys, double x) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument{"lerp_table: bad table"};
  }
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const auto i = static_cast<std::size_t>(std::distance(xs.begin(), it)) - 1;
  const double t = (x - xs[i]) / (xs[i + 1] - xs[i]);
  return ys[i] + t * (ys[i + 1] - ys[i]);
}

}  // namespace lbchat
