#include "common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace lbchat {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("LBCHAT_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

/// Relaxed atomic: the level can be read from worker threads (e.g. debug
/// logging inside parallel local_train) while a test adjusts it.
std::atomic<LogLevel> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace detail {

void vlog(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  // Format the whole line into one buffer and write it with a single stdio
  // call: three separate writes interleave mid-line when worker threads log
  // concurrently (stdio locks per call, not per line).
  char prefix[32];
  const int plen = std::snprintf(prefix, sizeof prefix, "[lbchat %s] ", level_name(level));
  char stack_buf[512];
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int mlen = std::vsnprintf(stack_buf, sizeof stack_buf, fmt, args);
  va_end(args);
  if (mlen < 0) {
    va_end(args_copy);
    return;
  }
  std::vector<char> line(static_cast<std::size_t>(plen) + static_cast<std::size_t>(mlen) + 1);
  std::memcpy(line.data(), prefix, static_cast<std::size_t>(plen));
  if (static_cast<std::size_t>(mlen) < sizeof stack_buf) {
    std::memcpy(line.data() + plen, stack_buf, static_cast<std::size_t>(mlen));
  } else {
    std::vsnprintf(line.data() + plen, static_cast<std::size_t>(mlen) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  line[line.size() - 1] = '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail

}  // namespace lbchat
