#include "common/log.h"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace lbchat {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("LBCHAT_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

LogLevel g_level = initial_level();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

void vlog(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[lbchat %s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace detail

}  // namespace lbchat
