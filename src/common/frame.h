// Versioned, CRC32-checksummed wire envelope for the protocol payloads
// (models, coresets, assist info). Delivered transfers can arrive damaged —
// residual bit errors past the retransmission cap, or injected corruption
// from the fault model — and the envelope is what makes that *detectable*:
// receivers verify the checksum before deserializing and reject bad frames
// instead of silently aggregating garbage.
//
// Layout (little-endian):
//   u32 magic      'LBCF'
//   u8  version    kFrameVersion
//   u8  type       FrameType
//   u32 length     payload byte count
//   u32 crc32      over (version, type, length, payload)
//   ..  payload
//
// decode() never throws and never reads out of bounds: any malformed input
// maps to a FrameStatus other than kOk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lbchat {

/// Thrown by payload deserializers when a *structurally* valid frame carries
/// semantically impossible values (non-finite or absurdly out-of-range
/// weights/fields). A CRC envelope cannot catch these — a hostile or buggy
/// sender computes a correct checksum over bad values — so decoders bound
/// every value they accept. Derives from std::runtime_error, keeping every
/// existing catch(std::exception)/catch(std::runtime_error) rejection path
/// working; receivers that want to count these separately catch it first
/// (TransferStats::frames_rejected_invalid).
class WireValueError : public std::runtime_error {
 public:
  explicit WireValueError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace lbchat

namespace lbchat::frame {

inline constexpr std::uint32_t kFrameMagic = 0x4643424Cu;  // "LBCF" on the wire
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kHeaderBytes = 4 + 1 + 1 + 4 + 4;

/// Payload discriminator carried in the header.
enum class FrameType : std::uint8_t {
  kAssist = 0,      ///< assistive information (pose, velocity, bandwidth)
  kCoreset = 1,     ///< a coreset (samples + in-coreset weights)
  kModel = 2,       ///< a (top-k sparsified) model
  kCheckpoint = 3,  ///< a full FleetSim run-state checkpoint (engine/checkpoint.h)
};

enum class FrameStatus : std::uint8_t {
  kOk = 0,
  kTooShort = 1,     ///< input smaller than the header
  kBadMagic = 2,
  kBadVersion = 3,
  kBadLength = 4,    ///< declared payload length exceeds the input
  kBadChecksum = 5,  ///< CRC mismatch (header or payload damaged)
};

[[nodiscard]] std::string_view to_string(FrameStatus s);

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320) of `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Wrap `payload` in a checksummed envelope.
[[nodiscard]] std::vector<std::uint8_t> encode(FrameType type,
                                               std::span<const std::uint8_t> payload);

/// Result of decode(); `payload` views into the input buffer and is only
/// valid while that buffer lives. `payload` is empty unless status == kOk.
struct Decoded {
  FrameStatus status = FrameStatus::kTooShort;
  FrameType type = FrameType::kModel;
  std::span<const std::uint8_t> payload;

  [[nodiscard]] bool ok() const { return status == FrameStatus::kOk; }
};

/// Parse and verify an envelope. Never throws; rejects with a status instead.
[[nodiscard]] Decoded decode(std::span<const std::uint8_t> bytes);

}  // namespace lbchat::frame
