// Little-endian byte (de)serialization used for model/coreset wire formats and
// for the bench result cache.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lbchat {

/// Append-only byte buffer writer.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i32(std::int32_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_string(std::string_view s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    write_raw(s.data(), s.size());
  }

  void write_f32_vec(std::span<const float> v) {
    write_u32(static_cast<std::uint32_t>(v.size()));
    write_raw(v.data(), v.size() * sizeof(float));
  }

  void write_f64_vec(std::span<const double> v) {
    write_u32(static_cast<std::uint32_t>(v.size()));
    write_raw(v.data(), v.size() * sizeof(double));
  }

  void write_u32_vec(std::span<const std::uint32_t> v) {
    write_u32(static_cast<std::uint32_t>(v.size()));
    write_raw(v.data(), v.size() * sizeof(std::uint32_t));
  }

  void write_bytes(std::span<const std::uint8_t> v) {
    write_u32(static_cast<std::uint32_t>(v.size()));
    write_raw(v.data(), v.size());
  }

  /// Append raw bytes with no length prefix (pre-framed blobs).
  void append_raw(std::span<const std::uint8_t> v) { write_raw(v.data(), v.size()); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void write_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a byte span; throws std::out_of_range on underflow.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int32_t read_i32() { return read_pod<std::int32_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const auto n = read_u32();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<float> read_f32_vec() { return read_pod_vec<float>(); }
  std::vector<double> read_f64_vec() { return read_pod_vec<double>(); }
  std::vector<std::uint32_t> read_u32_vec() { return read_pod_vec<std::uint32_t>(); }

  std::vector<std::uint8_t> read_bytes() {
    const auto n = read_u32();
    check(n);
    std::vector<std::uint8_t> v(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// View of the unread remainder; does not consume.
  [[nodiscard]] std::span<const std::uint8_t> rest() const { return data_.subspan(pos_); }

 private:
  template <typename T>
  T read_pod() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> read_pod_vec() {
    const auto n = read_u32();
    // Divide instead of multiplying so `n * sizeof(T)` cannot overflow
    // std::size_t before the bound check (32-bit size_t would wrap).
    if (n > (data_.size() - pos_) / sizeof(T)) {
      throw std::out_of_range{"ByteReader: underflow"};
    }
    std::vector<T> v(n);
    // Guard: memcpy with a null destination is UB even for zero bytes, and
    // an empty vector's data() may be null.
    if (n != 0) std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  void check(std::size_t n) const {
    // Phrased as a subtraction (pos_ <= size always holds) so a huge `n` —
    // e.g. a corrupt u32 length prefix scaled by sizeof(T) — cannot wrap
    // `pos_ + n` past SIZE_MAX and sneak under the bound.
    if (n > data_.size() - pos_) throw std::out_of_range{"ByteReader: underflow"};
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace lbchat
