#include "common/frame.h"

#include <array>
#include <cstring>

#include "obs/trace.h"

namespace lbchat::frame {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  for (const std::uint8_t b : data) {
    crc = kCrcTable[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFFu));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

/// CRC over (version, type, length-le, payload): protects the header fields
/// the receiver acts on, not just the payload bytes.
std::uint32_t frame_crc(std::uint8_t version, std::uint8_t type, std::uint32_t length,
                        std::span<const std::uint8_t> payload) {
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::array<std::uint8_t, 6> head{
      version,
      type,
      static_cast<std::uint8_t>(length & 0xFFu),
      static_cast<std::uint8_t>((length >> 8) & 0xFFu),
      static_cast<std::uint8_t>((length >> 16) & 0xFFu),
      static_cast<std::uint8_t>((length >> 24) & 0xFFu),
  };
  crc = crc32_update(crc, head);
  crc = crc32_update(crc, payload);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

std::string_view to_string(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kTooShort: return "too-short";
    case FrameStatus::kBadMagic: return "bad-magic";
    case FrameStatus::kBadVersion: return "bad-version";
    case FrameStatus::kBadLength: return "bad-length";
    case FrameStatus::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_update(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode(FrameType type, std::span<const std::uint8_t> payload) {
  LBCHAT_OBS_SPAN("frame.encode");
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, length);
  put_u32(out, frame_crc(kFrameVersion, static_cast<std::uint8_t>(type), length, payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Decoded decode(std::span<const std::uint8_t> bytes) {
  LBCHAT_OBS_SPAN("frame.decode");
  Decoded d;
  if (bytes.size() < kHeaderBytes) {
    d.status = FrameStatus::kTooShort;
    return d;
  }
  if (get_u32(bytes.data()) != kFrameMagic) {
    d.status = FrameStatus::kBadMagic;
    return d;
  }
  const std::uint8_t version = bytes[4];
  const std::uint8_t type = bytes[5];
  const std::uint32_t length = get_u32(bytes.data() + 6);
  const std::uint32_t crc = get_u32(bytes.data() + 10);
  if (version != kFrameVersion) {
    d.status = FrameStatus::kBadVersion;
    return d;
  }
  if (static_cast<std::size_t>(length) > bytes.size() - kHeaderBytes) {
    d.status = FrameStatus::kBadLength;
    return d;
  }
  const std::span<const std::uint8_t> payload = bytes.subspan(kHeaderBytes, length);
  if (frame_crc(version, type, length, payload) != crc) {
    d.status = FrameStatus::kBadChecksum;
    return d;
  }
  d.status = FrameStatus::kOk;
  d.type = static_cast<FrameType>(type);
  d.payload = payload;
  return d;
}

}  // namespace lbchat::frame
