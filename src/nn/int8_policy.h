// Forward-only int8 twin of DrivingPolicy (DESIGN.md §15).
//
// The two hottest evaluation-side calls at fleet scale — coreset value
// scoring inside LbChat handshakes and the engine's mean_eval_loss — only
// need inference-grade precision. Int8Policy snapshots a float policy into
// per-output-channel int8 weights (symmetric absmax, nn/quantize.h
// conventions) and runs the forward pass through the integer GEMM kernel
// (nn::igemm_abt_u8s8): the binary BEV maps straight to {0,127} codes at
// scale 1/127, interior activations are re-quantized per tensor before each
// layer, accumulation is exact int32, and dequantize+bias+ReLU happen in
// float between layers. Activations live in channel-last layout ([h][w][c])
// so the conv unfold is a handful of clipped memcpys per output pixel; the
// conv/fc weights are permuted to match once at construction (a permutation
// moves neither the per-row absmax nor any dot-product value). Every
// activation tensor is non-negative (binary input, post-ReLU interiors),
// which is what licenses the u8s8 kernel. Because integer accumulation is
// exact on every dispatch path, an int8 evaluation is reproducible across
// scalar/AVX2 — the float layers around it are the only per-path numerics.
//
// Cost model: quantizing the ~27k parameters is a few microseconds, done
// once per snapshot; each eval call then replaces float GEMMs with int8
// ones. The engine constructs one Int8Policy per vehicle per eval sweep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/frame.h"
#include "nn/policy.h"

namespace lbchat::nn {

class Int8Policy {
 public:
  /// Snapshot `src` into int8. The float model is not retained.
  explicit Int8Policy(const DrivingPolicy& src);

  [[nodiscard]] const PolicyConfig& config() const { return cfg_; }

  /// Inference on one frame (int8 forward pass).
  [[nodiscard]] WaypointVector predict(const data::BevGrid& bev, data::Command cmd) const;

  /// L1 waypoint loss on one sample — same reduction as the float policy.
  [[nodiscard]] double sample_loss(const data::Sample& s) const;

  /// Weighted mean loss; mirrors DrivingPolicy::weighted_loss bit-for-bit in
  /// reduction order, so thread-count bit-identity carries over.
  [[nodiscard]] double weighted_loss(std::span<const data::Sample> samples,
                                     std::span<const double> weights = {}) const;

  /// L2 norm of the *dequantized* parameter vector — the ||x|| the quantized
  /// model actually represents, used by the int8 penalized_loss overloads.
  [[nodiscard]] double param_l2_norm() const { return param_l2_; }

 private:
  struct QLinear {
    int in = 0, out = 0;
    std::vector<std::int8_t> w;  ///< [out, in] codes (fc rows in channel-last order)
    std::vector<float> scale;    ///< per-out-row dequant scale
    std::vector<float> bias;     ///< float biases (exact)
  };
  struct QConv {
    Conv2d geom;                 ///< shape/stride/pad descriptor (offsets unused)
    int kpad = 0;                ///< col_rows() rounded up to 32 (zero-padded codes)
    std::vector<std::int8_t> w;  ///< [out_ch, kpad] codes in [kr][kc][ic] order
    std::vector<float> scale;    ///< per-out-channel dequant scale
    std::vector<float> bias;
  };
  struct Workspace;

  void forward_one(data::Command cmd, float xs1, Workspace& ws) const;
  void qconv_forward(const QConv& qc, const std::int8_t* xq, float x_scale, float* y,
                     Workspace& ws) const;
  void qlinear_forward(const QLinear& ql, std::span<const float> x, float* y,
                       Workspace& ws) const;

  PolicyConfig cfg_;
  QConv conv1_, conv2_;
  QLinear fc_;
  struct QBranch {
    QLinear hidden;
    QLinear out;
  };
  std::vector<QBranch> branches_;
  double param_l2_ = 0.0;
};

}  // namespace lbchat::nn
