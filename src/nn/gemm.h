// Register-blocked single-precision GEMM kernels for the NN hot path.
//
// All matrices are dense row-major and every kernel *accumulates* into C
// (C += ...), matching how backward passes sum gradients over a batch. Three
// transpose variants cover everything the layers need:
//
//   sgemm      C[M,N] += A[M,K]  · B[K,N]    (conv forward, linear input grad)
//   sgemm_atb  C[M,N] += A[K,M]ᵀ · B[K,N]    (weight grads, conv input grad)
//   sgemm_abt  C[M,N] += A[M,K]  · B[N,K]ᵀ   (linear forward, conv weight grad)
//
// The kernels are plain scalar C++ laid out so the compiler auto-vectorizes
// them: the inner loop always walks contiguous memory in A, B and C, rows are
// register-blocked four at a time to amortize loads, and the K dimension is
// tiled in kBlock chunks so the streamed panels stay cache-resident. The
// `naive_*` twins are the deliberately simple triple loops kept as parity
// oracles for tests; they must produce the same result up to floating-point
// reassociation.
#pragma once

namespace lbchat::nn {

/// K-dimension tile size for the blocked kernels (floats; 64*4 B = one panel
/// row fits comfortably in L1 alongside the C accumulator rows).
inline constexpr int kGemmKBlock = 64;

/// C[M,N] += A[M,K] · B[K,N].
void sgemm(int m, int n, int k, const float* a, const float* b, float* c);

/// C[M,N] += Aᵀ · B where A is stored [K,M] and B is [K,N].
void sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c);

/// C[M,N] += A · Bᵀ where A is stored [M,K] and B is [N,K].
void sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c);

/// Reference triple-loop implementations (parity oracles; slow).
void naive_sgemm(int m, int n, int k, const float* a, const float* b, float* c);
void naive_sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c);
void naive_sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c);

}  // namespace lbchat::nn
