// Register-blocked single-precision GEMM kernels for the NN hot path.
//
// All matrices are dense row-major and every kernel *accumulates* into C
// (C += ...), matching how backward passes sum gradients over a batch. Three
// transpose variants cover everything the layers need:
//
//   sgemm      C[M,N] += A[M,K]  · B[K,N]    (conv forward, linear input grad)
//   sgemm_atb  C[M,N] += A[K,M]ᵀ · B[K,N]    (weight grads, conv input grad)
//   sgemm_abt  C[M,N] += A[M,K]  · B[N,K]ᵀ   (linear forward, conv weight grad)
//
// The public entry points dispatch at runtime between hand-written backends
// (nn/kernel_dispatch.h): the scalar C++ kernels — laid out so the compiler
// auto-vectorizes them, and the mandatory fallback every build carries — and
// AVX2+FMA microkernels on x86-64 (NEON is a guarded stub). The `naive_*`
// twins are the deliberately simple triple loops kept as parity oracles for
// tests; every backend must match them up to the tolerance contract of
// DESIGN.md §15 (scalar sgemm/sgemm_atb bit-exactly when C starts zeroed,
// everything else within float-reassociation error).
//
// igemm_abt is the int8 sibling used by the forward-only quantized eval path:
// int32 accumulation of int8 products is exact integer arithmetic, so *all*
// backends must agree with naive_igemm_abt bit-for-bit.
#pragma once

#include <cstdint>

#include "nn/kernel_dispatch.h"

namespace lbchat::nn {

/// K-dimension tile size for the blocked kernels (floats; 64*4 B = one panel
/// row fits comfortably in L1 alongside the C accumulator rows).
inline constexpr int kGemmKBlock = 64;

/// C[M,N] += A[M,K] · B[K,N].
void sgemm(int m, int n, int k, const float* a, const float* b, float* c);

/// C[M,N] += Aᵀ · B where A is stored [K,M] and B is [K,N].
void sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c);

/// C[M,N] += A · Bᵀ where A is stored [M,K] and B is [N,K].
void sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c);

/// C[M,N] += A[M,K] · B[N,K]ᵀ over int8 operands with int32 accumulation.
/// Exact for k < 2^16 (|a·b| <= 127*127, summed in int32); every dispatch
/// path must produce bit-identical results.
void igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
               std::int32_t* c);

/// igemm_abt specialization for A codes in [0, 127] — every activation tensor
/// the int8 eval path produces (binary BEV codes and post-ReLU quantizations
/// are non-negative). The precondition lets the AVX2 backend use vpmaddubsw
/// (unsigned×signed, 32 products per instruction, saturation-free because
/// pair sums stay ≤ 2·127·127 < 2^15). Results are bit-identical to
/// igemm_abt/naive_igemm_abt on conforming inputs on every path; feeding
/// negative A codes is a contract violation and silently wrong on AVX2.
void igemm_abt_u8s8(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
                    std::int32_t* c);

/// Reference triple-loop implementations (parity oracles; slow).
void naive_sgemm(int m, int n, int k, const float* a, const float* b, float* c);
void naive_sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c);
void naive_sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c);
void naive_igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c);

/// Route one call to an explicit backend, bypassing active_kernel_path().
/// Used by the parity tests to pin every path against the oracles; throws
/// std::invalid_argument when `path` is not available on this build/CPU.
void sgemm_on(KernelPath path, int m, int n, int k, const float* a, const float* b, float* c);
void sgemm_atb_on(KernelPath path, int m, int n, int k, const float* a, const float* b,
                  float* c);
void sgemm_abt_on(KernelPath path, int m, int n, int k, const float* a, const float* b,
                  float* c);
void igemm_abt_on(KernelPath path, int m, int n, int k, const std::int8_t* a,
                  const std::int8_t* b, std::int32_t* c);
void igemm_abt_u8s8_on(KernelPath path, int m, int n, int k, const std::int8_t* a,
                       const std::int8_t* b, std::int32_t* c);

namespace detail {

/// The scalar backend (always compiled; the bit-reproducibility anchor).
namespace scalar {
void sgemm(int m, int n, int k, const float* a, const float* b, float* c);
void sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c);
void sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c);
void igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
               std::int32_t* c);
}  // namespace scalar
// The scalar and NEON backends have no unsigned×signed shortcut: on
// conforming inputs ([0,127] is the same value signed or unsigned) the plain
// signed kernel already is the u8s8 result, so only AVX2 gets its own body.

#if defined(__x86_64__) || defined(__i386__)
/// Hand-written AVX2+FMA microkernels (gemm_avx2.cpp; x86-64 builds only —
/// call only when kernel_path_available(KernelPath::kAvx2)).
namespace avx2 {
void sgemm(int m, int n, int k, const float* a, const float* b, float* c);
void sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c);
void sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c);
void igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
               std::int32_t* c);
void igemm_abt_u8s8(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
                    std::int32_t* c);
}  // namespace avx2
#endif

#if defined(__ARM_NEON)
/// NEON stubs (gemm_neon.cpp): registered as a path so the dispatch plumbing
/// is exercised on AArch64, currently forwarding to the scalar kernels until
/// tuned on hardware.
namespace neon {
void sgemm(int m, int n, int k, const float* a, const float* b, float* c);
void sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c);
void sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c);
void igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
               std::int32_t* c);
}  // namespace neon
#endif

}  // namespace detail

}  // namespace lbchat::nn
