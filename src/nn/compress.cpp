#include "nn/compress.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lbchat::nn {

namespace {
constexpr std::size_t kHeaderBytes = 8;  // dim + flags/count
}

std::size_t SparseModel::logical_bytes() const {
  if (dense) return kHeaderBytes + static_cast<std::size_t>(dim) * 4;
  return kHeaderBytes + indices.size() * 8;
}

std::vector<float> SparseModel::densify() const {
  if (dense) return values;
  std::vector<float> out(dim, 0.0f);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= dim) throw std::out_of_range{"SparseModel::densify: bad index"};
    out[indices[i]] = values[i];
  }
  return out;
}

double SparseModel::psi() const {
  if (dim == 0) return 0.0;
  if (dense) return 1.0;
  return static_cast<double>(indices.size() * 8) / (static_cast<double>(dim) * 4);
}

std::size_t top_k_for_psi(double psi, std::size_t dim) {
  if (psi <= 0.0) return 0;
  if (psi >= 1.0) return dim;
  const auto k = static_cast<std::size_t>(std::floor(psi * static_cast<double>(dim) / 2.0));
  return std::min(k, dim);
}

SparseModel top_k_sparsify(std::span<const float> params, std::size_t k) {
  SparseModel m;
  m.dim = static_cast<std::uint32_t>(params.size());
  if (k >= params.size() || k > params.size() / 2) {
    // Sparse encoding would not be smaller than dense: send dense.
    m.dense = true;
    m.values.assign(params.begin(), params.end());
    return m;
  }
  if (k == 0) return m;  // psi = 0: nothing transmitted

  std::vector<std::uint32_t> order(params.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return std::abs(params[a]) > std::abs(params[b]);
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());  // ascending indices: friendlier wire format
  m.indices = std::move(order);
  m.values.reserve(k);
  for (const std::uint32_t i : m.indices) m.values.push_back(params[i]);
  return m;
}

SparseModel compress_for_psi(std::span<const float> params, double psi) {
  if (psi >= 1.0) {
    SparseModel m;
    m.dim = static_cast<std::uint32_t>(params.size());
    m.dense = true;
    m.values.assign(params.begin(), params.end());
    return m;
  }
  return top_k_sparsify(params, top_k_for_psi(psi, params.size()));
}

}  // namespace lbchat::nn
