// The BEV-based driving decision model (paper §IV-A).
//
// Miniature analogue of the privileged imitation-learning agent of
// "Learning by Cheating" [19]: input is a binary BEV raster plus a high-level
// navigation command; output is the next kNumWaypoints waypoints in the ego
// frame. The command conditions the output through per-command branch heads,
// as in conditional imitation learning.
//
// Architecture (defaults, ~27k parameters):
//   BEV [4,16,16] -> Conv 3x3 s2 (8ch) -> ReLU -> Conv 3x3 s2 (16ch) -> ReLU
//   -> flatten(256) -> Linear(64) -> ReLU -> branch[cmd]: Linear(32) -> ReLU
//   -> Linear(2*kNumWaypoints)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "data/frame.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace lbchat::nn {

struct PolicyConfig {
  data::BevSpec bev = data::kDefaultBevSpec;
  int conv1_channels = 8;
  int conv2_channels = 16;
  int fc_dim = 64;
  int branch_hidden = 32;

  friend constexpr bool operator==(const PolicyConfig&, const PolicyConfig&) = default;
};

/// Per-sample model output: normalized ego-frame waypoints, interleaved x,y.
using WaypointVector = std::array<float, 2 * data::kNumWaypoints>;

class DrivingPolicy {
 public:
  explicit DrivingPolicy(const PolicyConfig& cfg = {}, std::uint64_t init_seed = 42);

  [[nodiscard]] const PolicyConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t param_count() const { return store_.size(); }
  [[nodiscard]] std::span<const float> params() const { return store_.params(); }
  [[nodiscard]] std::span<float> params() { return store_.params(); }
  void set_params(std::span<const float> p);

  /// Inference on one frame.
  [[nodiscard]] WaypointVector predict(const data::BevGrid& bev, data::Command cmd) const;

  /// L1 waypoint loss of the model's prediction on one sample.
  [[nodiscard]] double sample_loss(const data::Sample& s) const;

  /// Mean loss over `samples` weighted by `weights` (must match in size, or
  /// weights may be empty for uniform). This is the plain empirical term of
  /// f(x; xi) in Eq. (6); the penalty terms live in coreset::penalized_loss.
  [[nodiscard]] double weighted_loss(std::span<const data::Sample> samples,
                                     std::span<const double> weights = {}) const;

  /// Compute the minibatch gradient into the internal gradient buffer
  /// (zeroed first) without touching the parameters; returns the batch loss.
  /// Exposed so strategies with bespoke update rules (e.g. ProxSkip control
  /// variates) can post-process the gradient before stepping.
  double compute_batch_gradient(std::span<const data::Sample* const> batch);
  [[nodiscard]] std::span<const float> grads() const { return store_.grads(); }

  /// One optimizer step on the given minibatch (already sampled, typically by
  /// w(d)-weighted sampling, so the batch loss is unweighted). Returns the
  /// batch loss before the update.
  double train_batch(std::span<const data::Sample* const> batch, Optimizer& opt);

 private:
  /// The int8 forward-only twin (nn/int8_policy.h) snapshots the layer
  /// descriptors and parameter store directly at quantization time.
  friend class Int8Policy;

  struct Workspace;
  /// Forward pass over a batch; fills the workspace with all activations.
  void forward(const float* x, std::span<const data::Command> cmds, int batch,
               Workspace& ws) const;
  void rasterize(const data::BevGrid& bev, float* out) const;

  PolicyConfig cfg_;
  ParamStore store_;
  Conv2d conv1_, conv2_;
  Linear fc_;
  struct Branch {
    Linear hidden;
    Linear out;
  };
  std::vector<Branch> branches_;
};

/// Euclidean L2 norm of a parameter vector (the ||x|| regularizer of Eq. (6)).
[[nodiscard]] double param_l2_norm(std::span<const float> params);

}  // namespace lbchat::nn
