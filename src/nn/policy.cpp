#include "nn/policy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace lbchat::nn {

using data::Command;
using data::kNumCommands;

struct DrivingPolicy::Workspace {
  int batch = 0;
  std::vector<Command> cmds;
  std::vector<float> x;        // [B, C, H, W]
  std::vector<float> a1;       // conv1 post-ReLU
  std::vector<float> a2;       // conv2 post-ReLU (== flattened input to fc)
  std::vector<float> h;        // fc post-ReLU [B, fc_dim]
  std::vector<float> bh;       // branch hidden post-ReLU [B, branch_hidden]
  std::vector<float> out;      // [B, out_dim]
  // gradients (same shapes)
  std::vector<float> g_out, g_bh, g_h, g_a2, g_a1;
  // im2col scratch shared by both conv layers (resized to the larger need
  // once, then reused — no per-call allocation on the training hot path)
  std::vector<float> col, gcol;
};

DrivingPolicy::DrivingPolicy(const PolicyConfig& cfg, std::uint64_t init_seed) : cfg_(cfg) {
  Rng init{init_seed};
  Rng r1 = init.fork("conv1");
  Rng r2 = init.fork("conv2");
  Rng r3 = init.fork("fc");
  conv1_ = Conv2d(store_, cfg.bev.channels, cfg.conv1_channels, cfg.bev.height, cfg.bev.width,
                  /*kernel=*/3, /*stride=*/2, /*pad=*/1, r1);
  conv2_ = Conv2d(store_, cfg.conv1_channels, cfg.conv2_channels, conv1_.out_h, conv1_.out_w,
                  /*kernel=*/3, /*stride=*/2, /*pad=*/1, r2);
  const int flat = static_cast<int>(conv2_.out_numel());
  fc_ = Linear(store_, flat, cfg.fc_dim, r3);
  branches_.reserve(kNumCommands);
  for (int b = 0; b < kNumCommands; ++b) {
    Rng rb = init.fork(hash_name("branch") + static_cast<std::uint64_t>(b));
    Branch br;
    br.hidden = Linear(store_, cfg.fc_dim, cfg.branch_hidden, rb);
    br.out = Linear(store_, cfg.branch_hidden, 2 * data::kNumWaypoints, rb);
    branches_.push_back(br);
  }
}

void DrivingPolicy::set_params(std::span<const float> p) {
  if (p.size() != store_.size()) throw std::invalid_argument{"set_params: size mismatch"};
  std::copy(p.begin(), p.end(), store_.params().begin());
}

void DrivingPolicy::rasterize(const data::BevGrid& bev, float* out) const {
  const auto n = static_cast<std::size_t>(cfg_.bev.numel());
  if (bev.cells.size() != n) throw std::invalid_argument{"rasterize: BEV size mismatch"};
  for (std::size_t i = 0; i < n; ++i) out[i] = bev.cells[i] != 0 ? 1.0f : 0.0f;
}

void DrivingPolicy::forward(const float* x, std::span<const Command> cmds, int batch,
                            Workspace& ws) const {
  const int out_dim = 2 * data::kNumWaypoints;
  ws.batch = batch;
  ws.cmds.assign(cmds.begin(), cmds.end());
  const std::size_t in_n = static_cast<std::size_t>(cfg_.bev.numel());
  ws.x.assign(x, x + static_cast<std::size_t>(batch) * in_n);
  ws.a1.assign(static_cast<std::size_t>(batch) * conv1_.out_numel(), 0.0f);
  ws.a2.assign(static_cast<std::size_t>(batch) * conv2_.out_numel(), 0.0f);
  ws.h.assign(static_cast<std::size_t>(batch) * cfg_.fc_dim, 0.0f);
  ws.bh.assign(static_cast<std::size_t>(batch) * cfg_.branch_hidden, 0.0f);
  ws.out.assign(static_cast<std::size_t>(batch) * out_dim, 0.0f);

  conv1_.forward(store_, ws.x, ws.a1, batch, ws.col);
  relu_forward(ws.a1);
  conv2_.forward(store_, ws.a1, ws.a2, batch, ws.col);
  relu_forward(ws.a2);
  fc_.forward(store_, ws.a2, ws.h, batch);
  relu_forward(ws.h);
  // Branch routing: each sample goes through the head of its command.
  for (int n = 0; n < batch; ++n) {
    const auto& br = branches_[static_cast<std::size_t>(ws.cmds[static_cast<std::size_t>(n)])];
    const auto h_n = std::span<const float>{ws.h}.subspan(
        static_cast<std::size_t>(n) * cfg_.fc_dim, static_cast<std::size_t>(cfg_.fc_dim));
    const auto bh_n = std::span<float>{ws.bh}.subspan(
        static_cast<std::size_t>(n) * cfg_.branch_hidden,
        static_cast<std::size_t>(cfg_.branch_hidden));
    const auto out_n = std::span<float>{ws.out}.subspan(static_cast<std::size_t>(n) * out_dim,
                                                        static_cast<std::size_t>(out_dim));
    br.hidden.forward(store_, h_n, bh_n, 1);
    relu_forward(bh_n);
    br.out.forward(store_, bh_n, out_n, 1);
  }
}

WaypointVector DrivingPolicy::predict(const data::BevGrid& bev, Command cmd) const {
  thread_local Workspace ws;
  std::vector<float> x(static_cast<std::size_t>(cfg_.bev.numel()));
  rasterize(bev, x.data());
  const Command cmds[1] = {cmd};
  forward(x.data(), cmds, 1, ws);
  WaypointVector out{};
  std::copy(ws.out.begin(), ws.out.end(), out.begin());
  return out;
}

double DrivingPolicy::sample_loss(const data::Sample& s) const {
  const WaypointVector pred = predict(s.bev, s.command);
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    loss += std::abs(static_cast<double>(pred[i]) - static_cast<double>(s.waypoints[i]));
  }
  return loss / static_cast<double>(pred.size());
}

double DrivingPolicy::weighted_loss(std::span<const data::Sample> samples,
                                    std::span<const double> weights) const {
  LBCHAT_OBS_SPAN("nn.weighted_loss");
  if (samples.empty()) return 0.0;
  if (!weights.empty() && weights.size() != samples.size()) {
    throw std::invalid_argument{"weighted_loss: weights size mismatch"};
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w <= 0.0) continue;
    num += w * sample_loss(samples[i]);
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

double DrivingPolicy::train_batch(std::span<const data::Sample* const> batch, Optimizer& opt) {
  LBCHAT_OBS_SPAN("nn.train_batch");
  const double loss = compute_batch_gradient(batch);
  if (!batch.empty()) opt.step(store_.params(), store_.grads());
  return loss;
}

double DrivingPolicy::compute_batch_gradient(std::span<const data::Sample* const> batch) {
  if (batch.empty()) return 0.0;
  const int B = static_cast<int>(batch.size());
  const int out_dim = 2 * data::kNumWaypoints;
  const std::size_t in_n = static_cast<std::size_t>(cfg_.bev.numel());

  thread_local Workspace ws;
  std::vector<float> x(static_cast<std::size_t>(B) * in_n);
  std::vector<Command> cmds(static_cast<std::size_t>(B));
  for (int n = 0; n < B; ++n) {
    rasterize(batch[static_cast<std::size_t>(n)]->bev, x.data() + static_cast<std::size_t>(n) * in_n);
    cmds[static_cast<std::size_t>(n)] = batch[static_cast<std::size_t>(n)]->command;
  }
  forward(x.data(), cmds, B, ws);

  // L1 loss and its gradient. Per-sample loss is the mean abs error over
  // the out_dim coordinates; the batch loss is the mean over samples.
  double loss = 0.0;
  ws.g_out.assign(ws.out.size(), 0.0f);
  const float gscale = 1.0f / (static_cast<float>(B) * static_cast<float>(out_dim));
  for (int n = 0; n < B; ++n) {
    for (int k = 0; k < out_dim; ++k) {
      const std::size_t i = static_cast<std::size_t>(n) * out_dim + k;
      const float diff = ws.out[i] - batch[static_cast<std::size_t>(n)]->waypoints[
                                         static_cast<std::size_t>(k)];
      loss += std::abs(static_cast<double>(diff));
      ws.g_out[i] = (diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f)) * gscale;
    }
  }
  loss /= static_cast<double>(B) * out_dim;

  // Backward.
  store_.zero_grads();
  ws.g_bh.assign(ws.bh.size(), 0.0f);
  ws.g_h.assign(ws.h.size(), 0.0f);
  ws.g_a2.assign(ws.a2.size(), 0.0f);
  ws.g_a1.assign(ws.a1.size(), 0.0f);

  for (int n = 0; n < B; ++n) {
    const auto& br = branches_[static_cast<std::size_t>(cmds[static_cast<std::size_t>(n)])];
    const auto bh_n = std::span<const float>{ws.bh}.subspan(
        static_cast<std::size_t>(n) * cfg_.branch_hidden,
        static_cast<std::size_t>(cfg_.branch_hidden));
    const auto h_n = std::span<const float>{ws.h}.subspan(
        static_cast<std::size_t>(n) * cfg_.fc_dim, static_cast<std::size_t>(cfg_.fc_dim));
    const auto g_out_n = std::span<const float>{ws.g_out}.subspan(
        static_cast<std::size_t>(n) * out_dim, static_cast<std::size_t>(out_dim));
    const auto g_bh_n = std::span<float>{ws.g_bh}.subspan(
        static_cast<std::size_t>(n) * cfg_.branch_hidden,
        static_cast<std::size_t>(cfg_.branch_hidden));
    const auto g_h_n = std::span<float>{ws.g_h}.subspan(
        static_cast<std::size_t>(n) * cfg_.fc_dim, static_cast<std::size_t>(cfg_.fc_dim));
    br.out.backward(store_, bh_n, g_out_n, g_bh_n, 1);
    relu_backward(bh_n, g_bh_n);
    br.hidden.backward(store_, h_n, g_bh_n, g_h_n, 1);
  }
  relu_backward(ws.h, ws.g_h);
  fc_.backward(store_, ws.a2, ws.g_h, ws.g_a2, B);
  relu_backward(ws.a2, ws.g_a2);
  conv2_.backward(store_, ws.a1, ws.g_a2, ws.g_a1, B, ws.col, ws.gcol);
  relu_backward(ws.a1, ws.g_a1);
  conv1_.backward(store_, ws.x, ws.g_a1, /*gx=*/{}, B, ws.col, ws.gcol);
  return loss;
}

double param_l2_norm(std::span<const float> params) {
  double s = 0.0;
  for (const float v : params) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

}  // namespace lbchat::nn
