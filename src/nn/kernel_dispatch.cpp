#include "nn/kernel_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/fingerprint.h"

namespace lbchat::nn {

namespace {

bool avx2_supported() {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  // The AVX2 kernels use FMA contractions, so both bits must be present.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool neon_supported() {
#if defined(__ARM_NEON)
  return true;
#else
  return false;
#endif
}

KernelPath resolve_from_env() {
  const char* env = std::getenv("LBCHAT_KERNEL");
  if (env == nullptr || *env == '\0' || std::string_view{env} == "auto") {
    return best_kernel_path();
  }
  const std::optional<KernelPath> parsed = parse_kernel_path(env);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "lbchat: LBCHAT_KERNEL=%s is not one of auto/scalar/avx2/neon; "
                 "using the scalar kernels\n",
                 env);
    return KernelPath::kScalar;
  }
  if (!kernel_path_available(*parsed)) {
    std::fprintf(stderr,
                 "lbchat: LBCHAT_KERNEL=%s is not available on this build/CPU; "
                 "using the scalar kernels\n",
                 env);
    return KernelPath::kScalar;
  }
  return *parsed;
}

std::atomic<int>& active_slot() {
  static std::atomic<int> slot{static_cast<int>(resolve_from_env())};
  return slot;
}

}  // namespace

bool kernel_path_available(KernelPath p) {
  switch (p) {
    case KernelPath::kScalar:
      return true;
    case KernelPath::kAvx2:
      return avx2_supported();
    case KernelPath::kNeon:
      return neon_supported();
  }
  return false;
}

KernelPath best_kernel_path() {
  if (avx2_supported()) return KernelPath::kAvx2;
  if (neon_supported()) return KernelPath::kNeon;
  return KernelPath::kScalar;
}

KernelPath active_kernel_path() {
  return static_cast<KernelPath>(active_slot().load(std::memory_order_relaxed));
}

void set_kernel_path(KernelPath p) {
  if (!kernel_path_available(p)) {
    throw std::invalid_argument{"set_kernel_path: path not available on this build/CPU"};
  }
  active_slot().store(static_cast<int>(p), std::memory_order_relaxed);
}

std::string_view kernel_path_name(KernelPath p) {
  switch (p) {
    case KernelPath::kScalar:
      return "scalar";
    case KernelPath::kAvx2:
      return "avx2";
    case KernelPath::kNeon:
      return "neon";
  }
  return "scalar";
}

std::optional<KernelPath> parse_kernel_path(std::string_view name) {
  if (name == "scalar") return KernelPath::kScalar;
  if (name == "avx2") return KernelPath::kAvx2;
  if (name == "neon") return KernelPath::kNeon;
  return std::nullopt;
}

std::uint64_t salt_with_kernel_path(std::uint64_t key) {
  const KernelPath path = active_kernel_path();
  if (path == KernelPath::kScalar) return key;
  FnvHasher h;
  h.add(key);
  h.add(std::string_view{"kernel-path-v1"});
  h.add(kernel_path_name(path));
  return h.digest();
}

}  // namespace lbchat::nn
