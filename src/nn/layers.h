// Minimal neural-network building blocks with manual backpropagation.
//
// The library keeps every parameter of a model in one flat float vector (a
// ParamStore); layers are descriptors holding offsets into that store. This
// makes the operations LbChat performs on whole models — top-k sparsification,
// weighted aggregation (Eq. (8)), serialization for the wire — trivial views
// over a single contiguous array.
//
// All shapes are row-major and batch-first.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace lbchat::nn {

/// Flat parameter + gradient storage for one model.
class ParamStore {
 public:
  /// Reserve `n` consecutive parameters; returns their offset.
  std::size_t allocate(std::size_t n) {
    const std::size_t off = params_.size();
    params_.resize(off + n, 0.0f);
    grads_.resize(off + n, 0.0f);
    return off;
  }

  [[nodiscard]] std::size_t size() const { return params_.size(); }
  [[nodiscard]] std::span<float> params() { return params_; }
  [[nodiscard]] std::span<const float> params() const { return params_; }
  [[nodiscard]] std::span<float> grads() { return grads_; }
  [[nodiscard]] std::span<const float> grads() const { return grads_; }

  [[nodiscard]] std::span<float> param(std::size_t off, std::size_t n) {
    return std::span<float>{params_}.subspan(off, n);
  }
  [[nodiscard]] std::span<const float> param(std::size_t off, std::size_t n) const {
    return std::span<const float>{params_}.subspan(off, n);
  }
  [[nodiscard]] std::span<float> grad(std::size_t off, std::size_t n) {
    return std::span<float>{grads_}.subspan(off, n);
  }

  void zero_grads() { std::fill(grads_.begin(), grads_.end(), 0.0f); }

 private:
  std::vector<float> params_;
  std::vector<float> grads_;
};

/// Fully-connected layer descriptor: y = x W^T + b, W is [out, in].
///
/// forward/backward run through the blocked SGEMM kernels (nn/gemm.h); the
/// naive_* twins keep the original scalar loops as the parity oracle for
/// tests. Both pairs compute the same math up to float reassociation.
struct Linear {
  int in = 0;
  int out = 0;
  std::size_t w_off = 0;  ///< offset of W in the store (out*in floats)
  std::size_t b_off = 0;  ///< offset of b (out floats)

  Linear() = default;
  Linear(ParamStore& store, int in_dim, int out_dim, Rng& init);

  /// x: [B, in], y: [B, out].
  void forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
               int batch) const;
  /// Accumulates parameter grads into the store; gx may be empty to skip
  /// input-gradient computation (first layer). gx is accumulated (+=).
  void backward(ParamStore& store, std::span<const float> x, std::span<const float> gy,
                std::span<float> gx, int batch) const;

  /// Reference scalar implementations (slow; parity oracle).
  void naive_forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
                     int batch) const;
  void naive_backward(ParamStore& store, std::span<const float> x, std::span<const float> gy,
                      std::span<float> gx, int batch) const;
};

/// 2-D convolution descriptor (square kernel, zero padding).
struct Conv2d {
  int in_ch = 0, out_ch = 0, kernel = 3, stride = 1, pad = 1;
  int in_h = 0, in_w = 0;    ///< expected input spatial size
  int out_h = 0, out_w = 0;  ///< derived output spatial size
  std::size_t w_off = 0;     ///< [out_ch, in_ch, k, k]
  std::size_t b_off = 0;     ///< [out_ch]

  Conv2d() = default;
  Conv2d(ParamStore& store, int in_channels, int out_channels, int in_height, int in_width,
         int kernel_size, int stride_, int pad_, Rng& init);

  [[nodiscard]] std::size_t out_numel() const {
    return static_cast<std::size_t>(out_ch) * out_h * out_w;
  }
  [[nodiscard]] std::size_t in_numel() const {
    return static_cast<std::size_t>(in_ch) * in_h * in_w;
  }

  /// x: [B, in_ch, in_h, in_w], y: [B, out_ch, out_h, out_w].
  ///
  /// The two-argument-scratch overloads run im2col + GEMM using the
  /// caller-owned buffers (resized as needed, so repeat calls never
  /// allocate); the short forms fall back to thread-local scratch.
  void forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
               int batch) const;
  void forward(const ParamStore& store, std::span<const float> x, std::span<float> y, int batch,
               std::vector<float>& col_scratch) const;
  /// gx (when non-empty) is accumulated (+=), param grads always accumulate.
  void backward(ParamStore& store, std::span<const float> x, std::span<const float> gy,
                std::span<float> gx, int batch) const;
  void backward(ParamStore& store, std::span<const float> x, std::span<const float> gy,
                std::span<float> gx, int batch, std::vector<float>& col_scratch,
                std::vector<float>& gcol_scratch) const;

  /// Reference direct-convolution implementations (slow; parity oracle).
  void naive_forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
                     int batch) const;
  void naive_backward(ParamStore& store, std::span<const float> x, std::span<const float> gy,
                      std::span<float> gx, int batch) const;

  /// Rows of the im2col matrix (= in_ch * kernel * kernel).
  [[nodiscard]] int col_rows() const { return in_ch * kernel * kernel; }

 private:
  /// Unfold one sample [in_ch, in_h, in_w] into col [col_rows, out_h*out_w].
  void im2col(const float* x, float* col) const;
  /// Fold col-shaped gradients back onto one sample's gx (accumulating).
  void col2im(const float* col, float* gx) const;
};

/// y = max(x, 0), in place.
void relu_forward(std::span<float> x);
/// gx = gy * (y > 0), in place on gy, given the *post-activation* values y.
void relu_backward(std::span<const float> y, std::span<float> gy);

}  // namespace lbchat::nn
