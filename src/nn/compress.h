// Top-k sparsification model compression (paper §III-C, [22]) with
// index-value pair encoding ([23]).
//
// The paper defines the compression ratio phi = S / S_c and its reciprocal
// psi = S_c / S in [0, 1]: psi = 0 means "do not send", psi = 1 means "send
// uncompressed". An index-value pair costs 8 bytes (u32 index + f32 value)
// versus 4 bytes per dense coordinate, so sending the k largest-magnitude
// coordinates yields psi = 8k / (4 dim) = 2k / dim. psi = 1 is encoded densely.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lbchat::nn {

/// A top-k sparsified model as it travels on the wire.
struct SparseModel {
  std::uint32_t dim = 0;  ///< full parameter count of the dense model
  bool dense = false;     ///< psi == 1 encoding: `values` holds all dim floats
  std::vector<std::uint32_t> indices;
  std::vector<float> values;

  /// Logical wire size in (unscaled) bytes: dense -> 4*dim, sparse -> 8*k,
  /// plus a small fixed header.
  [[nodiscard]] std::size_t logical_bytes() const;

  /// Reconstruct the dense parameter vector; untransmitted coordinates are 0
  /// (standard top-k semantics — see DESIGN.md ambiguity #2).
  [[nodiscard]] std::vector<float> densify() const;

  /// The achieved reciprocal compression ratio psi = S_c / S.
  [[nodiscard]] double psi() const;
};

/// Number of coordinates to keep so the sparse encoding occupies a fraction
/// `psi` of the dense size. Clamped to [0, dim]; psi >= 1 selects all.
[[nodiscard]] std::size_t top_k_for_psi(double psi, std::size_t dim);

/// Compress by keeping the k largest-magnitude coordinates. k >= dim (or a
/// k whose sparse encoding would exceed the dense size, i.e. k > dim/2)
/// falls back to the dense encoding.
[[nodiscard]] SparseModel top_k_sparsify(std::span<const float> params, std::size_t k);

/// Convenience: compress directly for a target psi.
[[nodiscard]] SparseModel compress_for_psi(std::span<const float> params, double psi);

}  // namespace lbchat::nn
