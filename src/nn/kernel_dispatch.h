// Runtime selection of the GEMM microkernel implementation (DESIGN.md §15).
//
// The gemm.h entry points stay the single interface the layers call; this
// header decides which hand-written backend services them. Three paths exist:
//
//   kScalar  the register-blocked C++ kernels (mandatory fallback, present on
//            every build; the bit-reproducibility anchor — all committed
//            goldens were produced by it)
//   kAvx2    hand-written AVX2+FMA microkernels (x86-64 builds, used when the
//            CPU reports avx2+fma at runtime)
//   kNeon    guarded NEON stubs (AArch64 builds; currently forward to the
//            scalar kernels until tuned on hardware)
//
// The active path is resolved once, on first use, from the LBCHAT_KERNEL
// environment variable: "auto" (or unset) picks the best available path via
// CPUID; "scalar"/"avx2"/"neon" force one explicitly. Forcing a path the
// build or CPU cannot run warns on stderr and falls back to scalar rather
// than crashing, so a pinned-kernel run degrades loudly but safely.
// set_kernel_path() overrides the choice programmatically (CLI --kernel,
// golden reproduction, tests).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace lbchat::nn {

enum class KernelPath : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// True when this build + this CPU can execute `p`. kScalar is always true.
[[nodiscard]] bool kernel_path_available(KernelPath p);

/// The fastest available path on this machine (what "auto" resolves to).
[[nodiscard]] KernelPath best_kernel_path();

/// The path the gemm.h dispatchers currently route to. Resolved from
/// LBCHAT_KERNEL on first call; stable afterwards unless set_kernel_path().
[[nodiscard]] KernelPath active_kernel_path();

/// Force the dispatch target. Throws std::invalid_argument when `p` is not
/// available on this build/CPU (callers that want the warn-and-fallback
/// behaviour go through LBCHAT_KERNEL instead).
void set_kernel_path(KernelPath p);

/// "scalar" / "avx2" / "neon".
[[nodiscard]] std::string_view kernel_path_name(KernelPath p);

/// Parse a path name ("scalar", "avx2", "neon"); nullopt for anything else
/// (including "auto", which callers resolve via best_kernel_path()).
[[nodiscard]] std::optional<KernelPath> parse_kernel_path(std::string_view name);

/// Fold the active kernel path into a result-cache key. SIMD float
/// reassociation changes run results, so caches of *run results* (the bench
/// .bench_cache, the svc ResultCache) must not serve an entry produced by one
/// backend to a run on another. The scalar path — the backend every
/// historical entry was produced by — returns `key` unchanged so scalar runs
/// keep hitting pre-existing entries; any other path appends a marked FNV
/// tail. scenario_fingerprint itself stays kernel-independent: it hashes
/// configuration, not runtime state.
[[nodiscard]] std::uint64_t salt_with_kernel_path(std::uint64_t key);

/// RAII path override for scopes that must pin numerics to one backend
/// (golden reproduction, per-path parity tests). Restores on destruction.
class ScopedKernelPath {
 public:
  explicit ScopedKernelPath(KernelPath p) : prev_(active_kernel_path()) { set_kernel_path(p); }
  ~ScopedKernelPath() { set_kernel_path(prev_); }
  ScopedKernelPath(const ScopedKernelPath&) = delete;
  ScopedKernelPath& operator=(const ScopedKernelPath&) = delete;

 private:
  KernelPath prev_;
};

}  // namespace lbchat::nn
