// Uniform model quantization — the alternative compression the paper points
// to in §III-C: "other biased/unbiased model compression methods can also be
// applied to our design, such as quantization".
//
// Blocked symmetric uniform quantization: parameters are split into fixed
// blocks, each block stores one float scale (its absolute maximum) and packs
// every coordinate into `bits` signed levels. Optional stochastic rounding
// makes the quantizer unbiased (QSGD-style). The reciprocal compression ratio
// is psi ~= bits/32 (+ the per-block scale overhead), so LbChat's Eq. (7)
// machinery applies unchanged with bits playing the role of the knob.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace lbchat::nn {

struct QuantizedModel {
  std::uint32_t dim = 0;
  std::uint8_t bits = 8;        ///< 2..16 levels bits per coordinate
  std::uint32_t block = 1024;   ///< coordinates per scale block
  std::vector<float> scales;    ///< per-block absmax
  std::vector<std::uint32_t> packed;  ///< bit-packed signed levels

  /// Wire size: packed payload + per-block scales + a small header.
  [[nodiscard]] std::size_t logical_bytes() const;
  /// Achieved reciprocal compression ratio vs the 4-byte dense encoding.
  [[nodiscard]] double psi() const;
  /// Reconstruct the dense parameter vector.
  [[nodiscard]] std::vector<float> densify() const;
};

/// Quantize to `bits` in [2, 16]. With `stochastic`, rounding is randomized
/// so the quantizer is unbiased in expectation; otherwise round-to-nearest.
[[nodiscard]] QuantizedModel quantize_model(std::span<const float> params, int bits,
                                            Rng* stochastic = nullptr);

/// The number of bits whose quantized encoding best matches a target psi
/// (clamped to [2, 16]; psi >= ~0.5 saturates at 16 bits).
[[nodiscard]] int bits_for_psi(double psi);

// --- int8 inference quantization (DESIGN.md §15) -------------------------
//
// The forward-only int8 eval path uses the same symmetric-absmax convention
// as the wire quantizer above, but at a granularity matched to integer GEMM:
// one scale per weight row (= per output channel) and one per activation
// tensor, codes in [-127, 127] so products fit madd-style int16 pairs.
// Rounding is round-to-nearest (deterministic), dequantized value is
// code * scale.

/// Row-wise symmetric int8 quantization of a dense [rows, row_len] matrix.
struct Int8Rows {
  std::vector<std::int8_t> codes;  ///< [rows, row_len], row-major
  std::vector<float> scales;       ///< per-row dequant scale (absmax/127; 0 for all-zero rows)
};
[[nodiscard]] Int8Rows quantize_rows_s8(std::span<const float> w, std::size_t row_len);

/// Per-tensor symmetric int8 quantization into `out` (x.size() codes);
/// returns the dequant scale (absmax/127; 0 — and all-zero codes — when x
/// is all zeros).
float quantize_tensor_s8(std::span<const float> x, std::int8_t* out);

}  // namespace lbchat::nn
