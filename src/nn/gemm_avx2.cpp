// Hand-written AVX2+FMA microkernels behind the nn/gemm.h dispatch
// (DESIGN.md §15). This translation unit is compiled with -mavx2 -mfma on
// x86-64 builds only; nothing here runs unless kernel_path_available(kAvx2)
// reported true at runtime, so the rest of the binary stays baseline x86-64.
//
// Shapes in this codebase are small-to-medium (conv im2col panels, 27k-param
// policy layers), so the kernels favour simplicity over packing: 4x16 FMA
// register tiles for the B-row-major variants, 4-way independent dot
// accumulators for the Bᵀ variant, and scalar tails for ragged edges. Each
// kernel fixes its own summation order, so results are reproducible run-to-run
// and machine-to-machine for this path — they differ from the scalar path only
// by float reassociation (the §15 tolerance contract).
#include "nn/gemm.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace lbchat::nn::detail::avx2 {

namespace {

inline float hsum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

inline std::int32_t hsum8_i32(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(1, 0, 3, 2)));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(lo);
}

/// Fold four 8-lane int32 accumulators into one [Σv0, Σv1, Σv2, Σv3] vector.
/// Amortizes the horizontal-sum cost across four dot products — the dominant
/// overhead of the int8 kernel at conv-sized k (36/72 in the default policy).
inline __m128i hsum4x8_i32(__m256i v0, __m256i v1, __m256i v2, __m256i v3) {
  const __m128i s0 =
      _mm_add_epi32(_mm256_castsi256_si128(v0), _mm256_extracti128_si256(v0, 1));
  const __m128i s1 =
      _mm_add_epi32(_mm256_castsi256_si128(v1), _mm256_extracti128_si256(v1, 1));
  const __m128i s2 =
      _mm_add_epi32(_mm256_castsi256_si128(v2), _mm256_extracti128_si256(v2, 1));
  const __m128i s3 =
      _mm_add_epi32(_mm256_castsi256_si128(v3), _mm256_extracti128_si256(v3, 1));
  return _mm_hadd_epi32(_mm_hadd_epi32(s0, s1), _mm_hadd_epi32(s2, s3));
}

/// One K-slab update of four C rows against B[K,N]: 4x16 FMA tile, then a
/// 4x8 tile, then a scalar tail. `a_at(r, kk)` abstracts the A layout so
/// sgemm (row-major A) and sgemm_atb (A stored [K,M]) share the body.
template <class AAt>
inline void fma_rows4(int n, int k0, int k1, AAt a_at, const float* b, float* c0, float* c1,
                      float* c2, float* c3) {
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 acc00 = _mm256_loadu_ps(c0 + j);
    __m256 acc01 = _mm256_loadu_ps(c0 + j + 8);
    __m256 acc10 = _mm256_loadu_ps(c1 + j);
    __m256 acc11 = _mm256_loadu_ps(c1 + j + 8);
    __m256 acc20 = _mm256_loadu_ps(c2 + j);
    __m256 acc21 = _mm256_loadu_ps(c2 + j + 8);
    __m256 acc30 = _mm256_loadu_ps(c3 + j);
    __m256 acc31 = _mm256_loadu_ps(c3 + j + 8);
    for (int kk = k0; kk < k1; ++kk) {
      const float* bk = b + static_cast<long>(kk) * n + j;
      const __m256 b0 = _mm256_loadu_ps(bk);
      const __m256 b1 = _mm256_loadu_ps(bk + 8);
      const __m256 a0 = _mm256_set1_ps(a_at(0, kk));
      acc00 = _mm256_fmadd_ps(a0, b0, acc00);
      acc01 = _mm256_fmadd_ps(a0, b1, acc01);
      const __m256 a1 = _mm256_set1_ps(a_at(1, kk));
      acc10 = _mm256_fmadd_ps(a1, b0, acc10);
      acc11 = _mm256_fmadd_ps(a1, b1, acc11);
      const __m256 a2 = _mm256_set1_ps(a_at(2, kk));
      acc20 = _mm256_fmadd_ps(a2, b0, acc20);
      acc21 = _mm256_fmadd_ps(a2, b1, acc21);
      const __m256 a3 = _mm256_set1_ps(a_at(3, kk));
      acc30 = _mm256_fmadd_ps(a3, b0, acc30);
      acc31 = _mm256_fmadd_ps(a3, b1, acc31);
    }
    _mm256_storeu_ps(c0 + j, acc00);
    _mm256_storeu_ps(c0 + j + 8, acc01);
    _mm256_storeu_ps(c1 + j, acc10);
    _mm256_storeu_ps(c1 + j + 8, acc11);
    _mm256_storeu_ps(c2 + j, acc20);
    _mm256_storeu_ps(c2 + j + 8, acc21);
    _mm256_storeu_ps(c3 + j, acc30);
    _mm256_storeu_ps(c3 + j + 8, acc31);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc0 = _mm256_loadu_ps(c0 + j);
    __m256 acc1 = _mm256_loadu_ps(c1 + j);
    __m256 acc2 = _mm256_loadu_ps(c2 + j);
    __m256 acc3 = _mm256_loadu_ps(c3 + j);
    for (int kk = k0; kk < k1; ++kk) {
      const __m256 bk = _mm256_loadu_ps(b + static_cast<long>(kk) * n + j);
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a_at(0, kk)), bk, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a_at(1, kk)), bk, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a_at(2, kk)), bk, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a_at(3, kk)), bk, acc3);
    }
    _mm256_storeu_ps(c0 + j, acc0);
    _mm256_storeu_ps(c1 + j, acc1);
    _mm256_storeu_ps(c2 + j, acc2);
    _mm256_storeu_ps(c3 + j, acc3);
  }
  for (; j < n; ++j) {
    float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
    for (int kk = k0; kk < k1; ++kk) {
      const float bv = b[static_cast<long>(kk) * n + j];
      s0 += a_at(0, kk) * bv;
      s1 += a_at(1, kk) * bv;
      s2 += a_at(2, kk) * bv;
      s3 += a_at(3, kk) * bv;
    }
    c0[j] = s0;
    c1[j] = s1;
    c2[j] = s2;
    c3[j] = s3;
  }
}

template <class AAt>
inline void fma_row1(int n, int k0, int k1, AAt a_at, const float* b, float* c0) {
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_loadu_ps(c0 + j);
    for (int kk = k0; kk < k1; ++kk) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(a_at(0, kk)),
                            _mm256_loadu_ps(b + static_cast<long>(kk) * n + j), acc);
    }
    _mm256_storeu_ps(c0 + j, acc);
  }
  for (; j < n; ++j) {
    float s = c0[j];
    for (int kk = k0; kk < k1; ++kk) s += a_at(0, kk) * b[static_cast<long>(kk) * n + j];
    c0[j] = s;
  }
}

/// Dot product with four 8-lane accumulators folded lo-to-hi at the end; the
/// tail terms are added last, mirroring the scalar dot_lanes structure.
inline float dot_avx2(int k, const float* x, const float* y) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int kk = 0;
  for (; kk + 32 <= k; kk += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk), _mm256_loadu_ps(y + kk), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk + 8), _mm256_loadu_ps(y + kk + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk + 16), _mm256_loadu_ps(y + kk + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk + 24), _mm256_loadu_ps(y + kk + 24), acc3);
  }
  for (; kk + 8 <= k; kk += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk), _mm256_loadu_ps(y + kk), acc0);
  }
  acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
  float s = hsum8(acc0);
  for (; kk < k; ++kk) s += x[kk] * y[kk];
  return s;
}

}  // namespace

void sgemm(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int k0 = 0; k0 < k; k0 += kGemmKBlock) {
    const int k1 = k0 + kGemmKBlock < k ? k0 + kGemmKBlock : k;
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* ai = a + static_cast<long>(i) * k;
      float* ci = c + static_cast<long>(i) * n;
      fma_rows4(
          n, k0, k1, [&](int r, int kk) { return ai[static_cast<long>(r) * k + kk]; }, b, ci,
          ci + n, ci + 2 * static_cast<long>(n), ci + 3 * static_cast<long>(n));
    }
    for (; i < m; ++i) {
      const float* ai = a + static_cast<long>(i) * k;
      fma_row1(
          n, k0, k1, [&](int, int kk) { return ai[kk]; }, b, c + static_cast<long>(i) * n);
    }
  }
}

void sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int k0 = 0; k0 < k; k0 += kGemmKBlock) {
    const int k1 = k0 + kGemmKBlock < k ? k0 + kGemmKBlock : k;
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      float* ci = c + static_cast<long>(i) * n;
      fma_rows4(
          n, k0, k1, [&](int r, int kk) { return a[static_cast<long>(kk) * m + i + r]; }, b, ci,
          ci + n, ci + 2 * static_cast<long>(n), ci + 3 * static_cast<long>(n));
    }
    for (; i < m; ++i) {
      fma_row1(
          n, k0, k1, [&](int, int kk) { return a[static_cast<long>(kk) * m + i]; }, b,
          c + static_cast<long>(i) * n);
    }
  }
}

void sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<long>(i) * k;
    float* ci = c + static_cast<long>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* bj = b + static_cast<long>(j) * k;
      ci[j] += dot_avx2(k, ai, bj);
      ci[j + 1] += dot_avx2(k, ai, bj + k);
      ci[j + 2] += dot_avx2(k, ai, bj + 2 * static_cast<long>(k));
      ci[j + 3] += dot_avx2(k, ai, bj + 3 * static_cast<long>(k));
    }
    for (; j < n; ++j) {
      ci[j] += dot_avx2(k, ai, b + static_cast<long>(j) * k);
    }
  }
}

void igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
               std::int32_t* c) {
  // madd_epi16 of sign-extended int8 pairs: |a*b| <= 127*127, pair sums fit
  // int16-pair products in int32 with headroom for k < 2^16 — exact integer
  // arithmetic, bit-identical to the scalar path by construction. Four B rows
  // are processed per A-row pass so each sign-extended A slab is reused four
  // times and the four horizontal sums collapse into one hsum4x8_i32.
  for (int i = 0; i < m; ++i) {
    const std::int8_t* ai = a + static_cast<long>(i) * k;
    std::int32_t* ci = c + static_cast<long>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + static_cast<long>(j) * k;
      const std::int8_t* b1 = b0 + k;
      const std::int8_t* b2 = b1 + k;
      const std::int8_t* b3 = b2 + k;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      int kk = 0;
      for (; kk + 16 <= k; kk += 16) {
        const __m256i av = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ai + kk)));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                            reinterpret_cast<const __m128i*>(b0 + kk)))));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                            reinterpret_cast<const __m128i*>(b1 + kk)))));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                            reinterpret_cast<const __m128i*>(b2 + kk)))));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                            reinterpret_cast<const __m128i*>(b3 + kk)))));
      }
      alignas(16) std::int32_t s[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(s), hsum4x8_i32(acc0, acc1, acc2, acc3));
      for (; kk < k; ++kk) {
        const std::int32_t av = ai[kk];
        s[0] += av * static_cast<std::int32_t>(b0[kk]);
        s[1] += av * static_cast<std::int32_t>(b1[kk]);
        s[2] += av * static_cast<std::int32_t>(b2[kk]);
        s[3] += av * static_cast<std::int32_t>(b3[kk]);
      }
      ci[j] += s[0];
      ci[j + 1] += s[1];
      ci[j + 2] += s[2];
      ci[j + 3] += s[3];
    }
    for (; j < n; ++j) {
      const std::int8_t* bj = b + static_cast<long>(j) * k;
      __m256i acc = _mm256_setzero_si256();
      int kk = 0;
      for (; kk + 16 <= k; kk += 16) {
        const __m256i av = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ai + kk)));
        const __m256i bv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bj + kk)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
      }
      std::int32_t s = hsum8_i32(acc);
      for (; kk < k; ++kk) {
        s += static_cast<std::int32_t>(ai[kk]) * static_cast<std::int32_t>(bj[kk]);
      }
      ci[j] += s;
    }
  }
}

void igemm_abt_u8s8(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
                    std::int32_t* c) {
  // vpmaddubsw treats A as unsigned — valid because the u8s8 contract pins A
  // codes to [0,127], where the signed and unsigned readings coincide and the
  // int16 pair sums stay below 2·127·127 < 2^15 (no saturation). 32 products
  // per instruction instead of igemm_abt's 16, same exact int32 result.
  const __m256i ones = _mm256_set1_epi16(1);
  for (int i = 0; i < m; ++i) {
    const std::int8_t* ai = a + static_cast<long>(i) * k;
    std::int32_t* ci = c + static_cast<long>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + static_cast<long>(j) * k;
      const std::int8_t* b1 = b0 + k;
      const std::int8_t* b2 = b1 + k;
      const std::int8_t* b3 = b2 + k;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      int kk = 0;
      for (; kk + 32 <= k; kk += 32) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ai + kk));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(av, _mm256_loadu_si256(
                                                   reinterpret_cast<const __m256i*>(b0 + kk))),
                      ones));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(av, _mm256_loadu_si256(
                                                   reinterpret_cast<const __m256i*>(b1 + kk))),
                      ones));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(av, _mm256_loadu_si256(
                                                   reinterpret_cast<const __m256i*>(b2 + kk))),
                      ones));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(av, _mm256_loadu_si256(
                                                   reinterpret_cast<const __m256i*>(b3 + kk))),
                      ones));
      }
      for (; kk + 16 <= k; kk += 16) {
        const __m256i av = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ai + kk)));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                            reinterpret_cast<const __m128i*>(b0 + kk)))));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                            reinterpret_cast<const __m128i*>(b1 + kk)))));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                            reinterpret_cast<const __m128i*>(b2 + kk)))));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                                            reinterpret_cast<const __m128i*>(b3 + kk)))));
      }
      alignas(16) std::int32_t s[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(s), hsum4x8_i32(acc0, acc1, acc2, acc3));
      for (; kk < k; ++kk) {
        const std::int32_t av = ai[kk];
        s[0] += av * static_cast<std::int32_t>(b0[kk]);
        s[1] += av * static_cast<std::int32_t>(b1[kk]);
        s[2] += av * static_cast<std::int32_t>(b2[kk]);
        s[3] += av * static_cast<std::int32_t>(b3[kk]);
      }
      ci[j] += s[0];
      ci[j + 1] += s[1];
      ci[j + 2] += s[2];
      ci[j + 3] += s[3];
    }
    for (; j < n; ++j) {
      const std::int8_t* bj = b + static_cast<long>(j) * k;
      __m256i acc = _mm256_setzero_si256();
      int kk = 0;
      for (; kk + 32 <= k; kk += 32) {
        acc = _mm256_add_epi32(
            acc,
            _mm256_madd_epi16(
                _mm256_maddubs_epi16(
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ai + kk)),
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bj + kk))),
                ones));
      }
      for (; kk + 16 <= k; kk += 16) {
        const __m256i av = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ai + kk)));
        const __m256i bv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bj + kk)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
      }
      std::int32_t s = hsum8_i32(acc);
      for (; kk < k; ++kk) {
        s += static_cast<std::int32_t>(ai[kk]) * static_cast<std::int32_t>(bj[kk]);
      }
      ci[j] += s;
    }
  }
}

}  // namespace lbchat::nn::detail::avx2

#endif  // x86
