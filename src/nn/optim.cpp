#include "nn/optim.h"

#include <cmath>
#include <stdexcept>

#include "common/bytes.h"

namespace lbchat::nn {

void Sgd::step(std::span<float> params, std::span<const float> grads) {
  if (params.size() != grads.size()) throw std::invalid_argument{"Sgd::step: size mismatch"};
  if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0f);
  const auto lr = static_cast<float>(lr_);
  const auto mu = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g = grads[i] + wd * params[i];
    velocity_[i] = mu * velocity_[i] + g;
    params[i] -= lr * velocity_[i];
  }
}

void Adam::step(std::span<float> params, std::span<const float> grads) {
  if (params.size() != grads.size()) throw std::invalid_argument{"Adam::step: size mismatch"};
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0f);
    v_.assign(params.size(), 0.0f);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g = grads[i];
    m_[i] = b1 * m_[i] + (1.0f - b1) * g;
    v_[i] = b2 * v_[i] + (1.0f - b2) * g * g;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= static_cast<float>(lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                                           weight_decay_ * params[i]));
  }
}

void Sgd::save_state(ByteWriter& w) const { w.write_f32_vec(velocity_); }

void Sgd::load_state(ByteReader& r) { velocity_ = r.read_f32_vec(); }

void Adam::save_state(ByteWriter& w) const {
  w.write_f32_vec(m_);
  w.write_f32_vec(v_);
  w.write_u64(static_cast<std::uint64_t>(t_));
}

void Adam::load_state(ByteReader& r) {
  m_ = r.read_f32_vec();
  v_ = r.read_f32_vec();
  if (m_.size() != v_.size()) throw std::invalid_argument{"Adam::load_state: m/v size mismatch"};
  t_ = static_cast<long>(r.read_u64());
}

}  // namespace lbchat::nn
