#include "nn/gemm.h"

#include <algorithm>
#include <stdexcept>

#if defined(__GNUC__) || defined(__clang__)
#define LBCHAT_RESTRICT __restrict__
#else
#define LBCHAT_RESTRICT
#endif

namespace lbchat::nn {

namespace detail::scalar {

namespace {

/// Row-register-blocked SAXPY update shared by sgemm and sgemm_atb: for one k,
/// fold `ar` rows of A-coefficients times the contiguous B row `bk` into the
/// corresponding C rows. The j loop is the contiguous, auto-vectorizable one.
inline void axpy_rows4(int n, const float a0, const float a1, const float a2, const float a3,
                       const float* LBCHAT_RESTRICT bk, float* LBCHAT_RESTRICT c0,
                       float* LBCHAT_RESTRICT c1, float* LBCHAT_RESTRICT c2,
                       float* LBCHAT_RESTRICT c3) {
  for (int j = 0; j < n; ++j) {
    const float b = bk[j];
    c0[j] += a0 * b;
    c1[j] += a1 * b;
    c2[j] += a2 * b;
    c3[j] += a3 * b;
  }
}

inline void axpy_row1(int n, const float a0, const float* LBCHAT_RESTRICT bk,
                      float* LBCHAT_RESTRICT c0) {
  for (int j = 0; j < n; ++j) c0[j] += a0 * bk[j];
}

}  // namespace

void sgemm(int m, int n, int k, const float* LBCHAT_RESTRICT a, const float* LBCHAT_RESTRICT b,
           float* LBCHAT_RESTRICT c) {
  // C row-panel of 4 stays in registers/L1 while a kBlock-tall slab of B
  // streams through. A is read once per (row, k).
  for (int k0 = 0; k0 < k; k0 += kGemmKBlock) {
    const int k1 = std::min(k, k0 + kGemmKBlock);
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* ai0 = a + static_cast<long>(i) * k;
      const float* ai1 = ai0 + k;
      const float* ai2 = ai1 + k;
      const float* ai3 = ai2 + k;
      float* ci0 = c + static_cast<long>(i) * n;
      float* ci1 = ci0 + n;
      float* ci2 = ci1 + n;
      float* ci3 = ci2 + n;
      for (int kk = k0; kk < k1; ++kk) {
        axpy_rows4(n, ai0[kk], ai1[kk], ai2[kk], ai3[kk], b + static_cast<long>(kk) * n, ci0,
                   ci1, ci2, ci3);
      }
    }
    for (; i < m; ++i) {
      const float* ai = a + static_cast<long>(i) * k;
      float* ci = c + static_cast<long>(i) * n;
      for (int kk = k0; kk < k1; ++kk) {
        axpy_row1(n, ai[kk], b + static_cast<long>(kk) * n, ci);
      }
    }
  }
}

void sgemm_atb(int m, int n, int k, const float* LBCHAT_RESTRICT a,
               const float* LBCHAT_RESTRICT b, float* LBCHAT_RESTRICT c) {
  // A is [K,M]: element (i, kk) of the logical Aᵀ lives at a[kk*m + i], so a
  // row-block of four C rows reads four adjacent floats of each A row — no
  // strided column walk.
  for (int k0 = 0; k0 < k; k0 += kGemmKBlock) {
    const int k1 = std::min(k, k0 + kGemmKBlock);
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      float* ci0 = c + static_cast<long>(i) * n;
      float* ci1 = ci0 + n;
      float* ci2 = ci1 + n;
      float* ci3 = ci2 + n;
      for (int kk = k0; kk < k1; ++kk) {
        const float* ak = a + static_cast<long>(kk) * m + i;
        axpy_rows4(n, ak[0], ak[1], ak[2], ak[3], b + static_cast<long>(kk) * n, ci0, ci1, ci2,
                   ci3);
      }
    }
    for (; i < m; ++i) {
      float* ci = c + static_cast<long>(i) * n;
      for (int kk = k0; kk < k1; ++kk) {
        axpy_row1(n, a[static_cast<long>(kk) * m + i], b + static_cast<long>(kk) * n, ci);
      }
    }
  }
}

namespace {

/// Dot product of two contiguous rows via kLanes independent partial sums
/// (lane l accumulates the k ≡ l (mod kLanes) terms). The fixed-trip inner
/// loop maps straight onto SIMD lanes, so the compiler vectorizes the
/// reduction without being licensed to reassociate on its own — the
/// summation order is pinned by the source and thus bit-reproducible.
inline float dot_lanes(int k, const float* LBCHAT_RESTRICT x, const float* LBCHAT_RESTRICT y) {
  constexpr int kLanes = 8;
  float acc[kLanes] = {};
  int kk = 0;
  for (; kk + kLanes <= k; kk += kLanes) {
    for (int l = 0; l < kLanes; ++l) acc[l] += x[kk + l] * y[kk + l];
  }
  float tail = 0.0f;
  for (; kk < k; ++kk) tail += x[kk] * y[kk];
  float s = tail;
  for (int l = 0; l < kLanes; ++l) s += acc[l];
  return s;
}

}  // namespace

void sgemm_abt(int m, int n, int k, const float* LBCHAT_RESTRICT a,
               const float* LBCHAT_RESTRICT b, float* LBCHAT_RESTRICT c) {
  // Both operands are walked along contiguous K rows; four B rows share one
  // pass over the A row, so the inner loop is four independent vectorized
  // dot-product reductions.
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<long>(i) * k;
    float* ci = c + static_cast<long>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* bj = b + static_cast<long>(j) * k;
      ci[j] += dot_lanes(k, ai, bj);
      ci[j + 1] += dot_lanes(k, ai, bj + k);
      ci[j + 2] += dot_lanes(k, ai, bj + 2 * static_cast<long>(k));
      ci[j + 3] += dot_lanes(k, ai, bj + 3 * static_cast<long>(k));
    }
    for (; j < n; ++j) {
      ci[j] += dot_lanes(k, ai, b + static_cast<long>(j) * k);
    }
  }
}

void igemm_abt(int m, int n, int k, const std::int8_t* LBCHAT_RESTRICT a,
               const std::int8_t* LBCHAT_RESTRICT b, std::int32_t* LBCHAT_RESTRICT c) {
  // Integer accumulation is associative, so the plain dot loop both
  // auto-vectorizes and stays bit-identical to any other evaluation order.
  for (int i = 0; i < m; ++i) {
    const std::int8_t* ai = a + static_cast<long>(i) * k;
    std::int32_t* ci = c + static_cast<long>(i) * n;
    for (int j = 0; j < n; ++j) {
      const std::int8_t* bj = b + static_cast<long>(j) * k;
      std::int32_t s = 0;
      for (int kk = 0; kk < k; ++kk) {
        s += static_cast<std::int32_t>(ai[kk]) * static_cast<std::int32_t>(bj[kk]);
      }
      ci[j] += s;
    }
  }
}

}  // namespace detail::scalar

// ---------------------------------------------------------------------------
// Runtime dispatch (nn/kernel_dispatch.h). One relaxed atomic load per GEMM
// call — noise next to even the smallest branch-head matmul.
// ---------------------------------------------------------------------------

void sgemm_on(KernelPath path, int m, int n, int k, const float* a, const float* b, float* c) {
  switch (path) {
    case KernelPath::kScalar:
      detail::scalar::sgemm(m, n, k, a, b, c);
      return;
#if defined(__x86_64__) || defined(__i386__)
    case KernelPath::kAvx2:
      detail::avx2::sgemm(m, n, k, a, b, c);
      return;
#endif
#if defined(__ARM_NEON)
    case KernelPath::kNeon:
      detail::neon::sgemm(m, n, k, a, b, c);
      return;
#endif
    default:
      throw std::invalid_argument{"sgemm_on: kernel path not compiled into this build"};
  }
}

void sgemm_atb_on(KernelPath path, int m, int n, int k, const float* a, const float* b,
                  float* c) {
  switch (path) {
    case KernelPath::kScalar:
      detail::scalar::sgemm_atb(m, n, k, a, b, c);
      return;
#if defined(__x86_64__) || defined(__i386__)
    case KernelPath::kAvx2:
      detail::avx2::sgemm_atb(m, n, k, a, b, c);
      return;
#endif
#if defined(__ARM_NEON)
    case KernelPath::kNeon:
      detail::neon::sgemm_atb(m, n, k, a, b, c);
      return;
#endif
    default:
      throw std::invalid_argument{"sgemm_atb_on: kernel path not compiled into this build"};
  }
}

void sgemm_abt_on(KernelPath path, int m, int n, int k, const float* a, const float* b,
                  float* c) {
  switch (path) {
    case KernelPath::kScalar:
      detail::scalar::sgemm_abt(m, n, k, a, b, c);
      return;
#if defined(__x86_64__) || defined(__i386__)
    case KernelPath::kAvx2:
      detail::avx2::sgemm_abt(m, n, k, a, b, c);
      return;
#endif
#if defined(__ARM_NEON)
    case KernelPath::kNeon:
      detail::neon::sgemm_abt(m, n, k, a, b, c);
      return;
#endif
    default:
      throw std::invalid_argument{"sgemm_abt_on: kernel path not compiled into this build"};
  }
}

void igemm_abt_on(KernelPath path, int m, int n, int k, const std::int8_t* a,
                  const std::int8_t* b, std::int32_t* c) {
  switch (path) {
    case KernelPath::kScalar:
      detail::scalar::igemm_abt(m, n, k, a, b, c);
      return;
#if defined(__x86_64__) || defined(__i386__)
    case KernelPath::kAvx2:
      detail::avx2::igemm_abt(m, n, k, a, b, c);
      return;
#endif
#if defined(__ARM_NEON)
    case KernelPath::kNeon:
      detail::neon::igemm_abt(m, n, k, a, b, c);
      return;
#endif
    default:
      throw std::invalid_argument{"igemm_abt_on: kernel path not compiled into this build"};
  }
}

void igemm_abt_u8s8_on(KernelPath path, int m, int n, int k, const std::int8_t* a,
                       const std::int8_t* b, std::int32_t* c) {
  switch (path) {
    case KernelPath::kScalar:
      detail::scalar::igemm_abt(m, n, k, a, b, c);
      return;
#if defined(__x86_64__) || defined(__i386__)
    case KernelPath::kAvx2:
      detail::avx2::igemm_abt_u8s8(m, n, k, a, b, c);
      return;
#endif
#if defined(__ARM_NEON)
    case KernelPath::kNeon:
      detail::neon::igemm_abt(m, n, k, a, b, c);
      return;
#endif
    default:
      throw std::invalid_argument{
          "igemm_abt_u8s8_on: kernel path not compiled into this build"};
  }
}

void sgemm(int m, int n, int k, const float* a, const float* b, float* c) {
  sgemm_on(active_kernel_path(), m, n, k, a, b, c);
}

void sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c) {
  sgemm_atb_on(active_kernel_path(), m, n, k, a, b, c);
}

void sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c) {
  sgemm_abt_on(active_kernel_path(), m, n, k, a, b, c);
}

void igemm_abt_u8s8(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
                    std::int32_t* c) {
  igemm_abt_u8s8_on(active_kernel_path(), m, n, k, a, b, c);
}

void igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
               std::int32_t* c) {
  igemm_abt_on(active_kernel_path(), m, n, k, a, b, c);
}

// ---------------------------------------------------------------------------
// Parity oracles.
// ---------------------------------------------------------------------------

void naive_sgemm(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        s += a[static_cast<long>(i) * k + kk] * b[static_cast<long>(kk) * n + j];
      }
      c[static_cast<long>(i) * n + j] += s;
    }
  }
}

void naive_sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        s += a[static_cast<long>(kk) * m + i] * b[static_cast<long>(kk) * n + j];
      }
      c[static_cast<long>(i) * n + j] += s;
    }
  }
}

void naive_sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        s += a[static_cast<long>(i) * k + kk] * b[static_cast<long>(j) * k + kk];
      }
      c[static_cast<long>(i) * n + j] += s;
    }
  }
}

void naive_igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int32_t s = 0;
      for (int kk = 0; kk < k; ++kk) {
        s += static_cast<std::int32_t>(a[static_cast<long>(i) * k + kk]) *
             static_cast<std::int32_t>(b[static_cast<long>(j) * k + kk]);
      }
      c[static_cast<long>(i) * n + j] += s;
    }
  }
}

}  // namespace lbchat::nn
