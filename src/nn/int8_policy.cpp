#include "nn/int8_policy.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/gemm.h"
#include "nn/quantize.h"

namespace lbchat::nn {

using data::Command;

struct Int8Policy::Workspace {
  std::vector<std::int8_t> xq;    // quantized activation codes (largest tensor)
  std::vector<std::int8_t> colT;  // transposed int8 im2col panel [out_plane, kpad]
  std::vector<std::int32_t> acc;  // integer GEMM accumulator
  std::vector<float> deq;         // per-out-channel dequant factors for one call
  std::vector<float> a1, a2, h, bh;
  std::array<float, 2 * data::kNumWaypoints> out;
};

namespace {

/// Quantize one layer's weight block row-wise and fold its dequantized
/// energy + float biases into the running ||x||² accumulator.
Int8Rows quantize_block(std::span<const float> w, std::size_t row_len,
                        std::span<const float> bias, double& l2_acc) {
  Int8Rows q = quantize_rows_s8(w, row_len);
  const std::size_t rows = q.scales.size();
  for (std::size_t r = 0; r < rows; ++r) {
    // Σ(s·code)² = s²·Σcode²: the inner sum is exact integer arithmetic, so
    // the per-row energy costs one multiply instead of one per code.
    std::int64_t sq = 0;
    const std::int8_t* row = q.codes.data() + r * row_len;
    for (std::size_t i = 0; i < row_len; ++i) {
      sq += static_cast<std::int64_t>(row[i]) * row[i];
    }
    const double s = static_cast<double>(q.scales[r]);
    l2_acc += s * s * static_cast<double>(sq);
  }
  for (const float b : bias) l2_acc += static_cast<double>(b) * b;
  return q;
}

}  // namespace

Int8Policy::Int8Policy(const DrivingPolicy& src) : cfg_(src.config()) {
  double l2 = 0.0;
  const ParamStore& store = src.store_;

  const auto quantize_conv = [&](const Conv2d& cv) {
    QConv qc;
    qc.geom = cv;
    const std::size_t row_len = static_cast<std::size_t>(cv.col_rows());
    const auto w = store.param(cv.w_off, static_cast<std::size_t>(cv.out_ch) * row_len);
    const auto b = store.param(cv.b_off, static_cast<std::size_t>(cv.out_ch));
    // Reorder each filter from [ic][kr][kc] into the channel-last [kr][kc][ic]
    // order the unfold writes. A permutation moves neither the row absmax nor
    // any dot-product term, so scales and conv outputs are unchanged.
    std::vector<float> wl(w.size());
    const int kk2 = cv.kernel * cv.kernel;
    for (int oc = 0; oc < cv.out_ch; ++oc) {
      const float* srow = w.data() + static_cast<std::size_t>(oc) * row_len;
      float* drow = wl.data() + static_cast<std::size_t>(oc) * row_len;
      for (int ic = 0; ic < cv.in_ch; ++ic) {
        for (int t = 0; t < kk2; ++t) drow[t * cv.in_ch + ic] = srow[ic * kk2 + t];
      }
    }
    Int8Rows q = quantize_block(wl, row_len, b, l2);
    // Pad rows to a multiple of 32 codes so the AVX2 u8s8 kernel has no
    // scalar k-tail; zero codes are exact no-ops against zero panel padding.
    qc.kpad = (cv.col_rows() + 31) / 32 * 32;
    qc.w.assign(static_cast<std::size_t>(cv.out_ch) * qc.kpad, 0);
    for (int oc = 0; oc < cv.out_ch; ++oc) {
      std::copy_n(q.codes.data() + static_cast<std::size_t>(oc) * row_len, row_len,
                  qc.w.data() + static_cast<std::size_t>(oc) * qc.kpad);
    }
    qc.scale = std::move(q.scales);
    qc.bias.assign(b.begin(), b.end());
    return qc;
  };
  const auto quantize_linear_w = [&](std::span<const float> w, std::span<const float> b,
                                     int in, int out) {
    QLinear ql;
    ql.in = in;
    ql.out = out;
    Int8Rows q = quantize_block(w, static_cast<std::size_t>(in), b, l2);
    ql.w = std::move(q.codes);
    ql.scale = std::move(q.scales);
    ql.bias.assign(b.begin(), b.end());
    return ql;
  };
  const auto quantize_linear = [&](const Linear& l) {
    const auto w = store.param(l.w_off, static_cast<std::size_t>(l.out) * l.in);
    const auto b = store.param(l.b_off, static_cast<std::size_t>(l.out));
    return quantize_linear_w(w, b, l.in, l.out);
  };

  conv1_ = quantize_conv(src.conv1_);
  conv2_ = quantize_conv(src.conv2_);
  {
    // fc consumes the flattened conv2 output, which this class keeps
    // channel-last — permute the weight columns from [oc][pixel] to
    // [pixel][oc] to match.
    const Linear& l = src.fc_;
    const auto w = store.param(l.w_off, static_cast<std::size_t>(l.out) * l.in);
    const auto b = store.param(l.b_off, static_cast<std::size_t>(l.out));
    const std::size_t plane =
        static_cast<std::size_t>(conv2_.geom.out_h) * conv2_.geom.out_w;
    const int oc_n = conv2_.geom.out_ch;
    std::vector<float> wl(w.size());
    for (int o = 0; o < l.out; ++o) {
      const float* srow = w.data() + static_cast<std::size_t>(o) * l.in;
      float* drow = wl.data() + static_cast<std::size_t>(o) * l.in;
      for (int oc = 0; oc < oc_n; ++oc) {
        for (std::size_t p = 0; p < plane; ++p) {
          drow[p * static_cast<std::size_t>(oc_n) + oc] = srow[oc * plane + p];
        }
      }
    }
    fc_ = quantize_linear_w(wl, b, l.in, l.out);
  }
  branches_.reserve(src.branches_.size());
  for (const auto& br : src.branches_) {
    branches_.push_back(QBranch{quantize_linear(br.hidden), quantize_linear(br.out)});
  }
  param_l2_ = std::sqrt(l2);
}

void Int8Policy::qconv_forward(const QConv& qc, const std::int8_t* xq, float x_scale, float* y,
                               Workspace& ws) const {
  const Conv2d& g = qc.geom;
  const std::size_t out_plane = static_cast<std::size_t>(g.out_h) * g.out_w;

  // Channel-last unfold: with activations stored [h][w][c], one (pixel, kr)
  // pair's receptive-field row is a contiguous run of kernel*in_ch codes, so
  // the panel fills with one clipped memcpy per pair. Out-of-bounds rows and
  // the kpad tail stay zero codes (exact no-ops in the integer dot).
  ws.colT.assign(out_plane * static_cast<std::size_t>(qc.kpad), 0);
  const std::size_t in_row = static_cast<std::size_t>(g.in_w) * g.in_ch;
  for (int r = 0; r < g.out_h; ++r) {
    for (int kr = 0; kr < g.kernel; ++kr) {
      const int ri = r * g.stride - g.pad + kr;
      if (ri < 0 || ri >= g.in_h) continue;
      const std::int8_t* srow = xq + static_cast<std::size_t>(ri) * in_row;
      for (int c = 0; c < g.out_w; ++c) {
        const int c0 = c * g.stride - g.pad;  // input col under kc = 0
        const int kc_lo = c0 < 0 ? -c0 : 0;
        const int kc_hi = std::min(g.kernel, g.in_w - c0);
        if (kc_lo >= kc_hi) continue;
        std::int8_t* dst = ws.colT.data() +
                           (static_cast<std::size_t>(r) * g.out_w + c) * qc.kpad +
                           (static_cast<std::size_t>(kr) * g.kernel + kc_lo) * g.in_ch;
        std::memcpy(dst, srow + static_cast<std::size_t>(c0 + kc_lo) * g.in_ch,
                    static_cast<std::size_t>(kc_hi - kc_lo) * g.in_ch);
      }
    }
  }

  // acc [out_plane, out_ch] = colT · Wᵀ — already the channel-last layout the
  // next layer consumes, so dequant+bias is one contiguous sweep.
  ws.acc.assign(out_plane * static_cast<std::size_t>(g.out_ch), 0);
  igemm_abt_u8s8(static_cast<int>(out_plane), g.out_ch, qc.kpad, ws.colT.data(),
                 qc.w.data(), ws.acc.data());
  ws.deq.resize(static_cast<std::size_t>(g.out_ch));
  for (int oc = 0; oc < g.out_ch; ++oc) {
    ws.deq[static_cast<std::size_t>(oc)] = x_scale * qc.scale[static_cast<std::size_t>(oc)];
  }
  for (std::size_t p = 0; p < out_plane; ++p) {
    const std::int32_t* ap = ws.acc.data() + p * static_cast<std::size_t>(g.out_ch);
    float* yp = y + p * static_cast<std::size_t>(g.out_ch);
    for (int oc = 0; oc < g.out_ch; ++oc) {
      yp[oc] = static_cast<float>(ap[oc]) * ws.deq[static_cast<std::size_t>(oc)] +
               qc.bias[static_cast<std::size_t>(oc)];
    }
  }
}

void Int8Policy::qlinear_forward(const QLinear& ql, std::span<const float> x, float* y,
                                 Workspace& ws) const {
  // x is a post-ReLU tensor, so its codes are non-negative — u8s8 contract.
  ws.xq.resize(x.size());
  const float xs = quantize_tensor_s8(x, ws.xq.data());
  ws.acc.assign(static_cast<std::size_t>(ql.out), 0);
  igemm_abt_u8s8(1, ql.out, ql.in, ws.xq.data(), ql.w.data(), ws.acc.data());
  for (int o = 0; o < ql.out; ++o) {
    y[o] = static_cast<float>(ws.acc[static_cast<std::size_t>(o)]) * xs *
               ql.scale[static_cast<std::size_t>(o)] +
           ql.bias[static_cast<std::size_t>(o)];
  }
}

void Int8Policy::forward_one(Command cmd, float xs1, Workspace& ws) const {
  // Precondition: ws.xq holds the conv1 input codes at scale xs1 (predict
  // fills them straight from the binary BEV). Activations are re-quantized
  // per tensor before conv2 and each linear; per-output-channel weight
  // scales dequantize inside each layer.
  ws.a1.assign(conv1_.geom.out_numel(), 0.0f);
  ws.a2.assign(conv2_.geom.out_numel(), 0.0f);
  ws.h.assign(static_cast<std::size_t>(cfg_.fc_dim), 0.0f);
  ws.bh.assign(static_cast<std::size_t>(cfg_.branch_hidden), 0.0f);

  qconv_forward(conv1_, ws.xq.data(), xs1, ws.a1.data(), ws);
  relu_forward(ws.a1);

  ws.xq.resize(ws.a1.size());
  const float xs2 = quantize_tensor_s8(ws.a1, ws.xq.data());
  qconv_forward(conv2_, ws.xq.data(), xs2, ws.a2.data(), ws);
  relu_forward(ws.a2);

  qlinear_forward(fc_, ws.a2, ws.h.data(), ws);
  relu_forward(ws.h);

  const QBranch& br = branches_[static_cast<std::size_t>(cmd)];
  qlinear_forward(br.hidden, ws.h, ws.bh.data(), ws);
  relu_forward(ws.bh);
  qlinear_forward(br.out, ws.bh, ws.out.data(), ws);
}

WaypointVector Int8Policy::predict(const data::BevGrid& bev, Command cmd) const {
  const std::size_t n = static_cast<std::size_t>(cfg_.bev.numel());
  if (bev.cells.size() != n) throw std::invalid_argument{"Int8Policy: BEV size mismatch"};
  thread_local Workspace ws;
  // The BEV is binary, so its int8 codes are known without the float
  // rasterize + absmax pass: occupied cells quantize to exactly 127 at scale
  // 1/127 (the values quantize_tensor_s8 would produce for a {0,1} tensor,
  // including the all-zero grid, where every product term is zero anyway).
  ws.xq.resize(n);
  const std::size_t plane = static_cast<std::size_t>(cfg_.bev.height) * cfg_.bev.width;
  const int ch = cfg_.bev.channels;
  const std::uint8_t* cells = bev.cells.data();
  std::int8_t* xq = ws.xq.data();
  if (ch == 4) {
    // Fixed-width body for the default spec: a constant interleave factor is
    // what lets the compiler turn this byte transpose into shuffles.
    for (std::size_t p = 0; p < plane; ++p) {
      for (int ic = 0; ic < 4; ++ic) {
        xq[p * 4 + ic] = static_cast<std::int8_t>(
            (cells[static_cast<std::size_t>(ic) * plane + p] != 0) * 127);
      }
    }
  } else {
    for (std::size_t p = 0; p < plane; ++p) {
      for (int ic = 0; ic < ch; ++ic) {
        xq[p * static_cast<std::size_t>(ch) + ic] = static_cast<std::int8_t>(
            (cells[static_cast<std::size_t>(ic) * plane + p] != 0) * 127);
      }
    }
  }
  forward_one(cmd, 1.0f / 127.0f, ws);
  WaypointVector out{};
  std::copy(ws.out.begin(), ws.out.end(), out.begin());
  return out;
}

double Int8Policy::sample_loss(const data::Sample& s) const {
  const WaypointVector pred = predict(s.bev, s.command);
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    loss += std::abs(static_cast<double>(pred[i]) - static_cast<double>(s.waypoints[i]));
  }
  return loss / static_cast<double>(pred.size());
}

double Int8Policy::weighted_loss(std::span<const data::Sample> samples,
                                 std::span<const double> weights) const {
  if (samples.empty()) return 0.0;
  if (!weights.empty() && weights.size() != samples.size()) {
    throw std::invalid_argument{"weighted_loss: weights size mismatch"};
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w <= 0.0) continue;
    num += w * sample_loss(samples[i]);
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace lbchat::nn
