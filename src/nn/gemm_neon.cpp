// NEON backend stubs behind the nn/gemm.h dispatch (DESIGN.md §15).
//
// Compiled only on builds that define __ARM_NEON, so the kNeon path exists
// and is selectable on AArch64 — but the kernels currently forward to the
// scalar implementations (which GCC/Clang auto-vectorize to NEON at -O3
// anyway). Hand-tuned vfmaq/vmlal bodies should replace these forwards once
// there is ARM hardware in the loop to validate parity and measure a win;
// the tests/kernel_test.cpp battery already covers the path, so dropping in
// real intrinsics later is a leaf change.
#include "nn/gemm.h"

#if defined(__ARM_NEON)

namespace lbchat::nn::detail::neon {

void sgemm(int m, int n, int k, const float* a, const float* b, float* c) {
  scalar::sgemm(m, n, k, a, b, c);
}

void sgemm_atb(int m, int n, int k, const float* a, const float* b, float* c) {
  scalar::sgemm_atb(m, n, k, a, b, c);
}

void sgemm_abt(int m, int n, int k, const float* a, const float* b, float* c) {
  scalar::sgemm_abt(m, n, k, a, b, c);
}

void igemm_abt(int m, int n, int k, const std::int8_t* a, const std::int8_t* b,
               std::int32_t* c) {
  scalar::igemm_abt(m, n, k, a, b, c);
}

}  // namespace lbchat::nn::detail::neon

#endif  // __ARM_NEON
