#include "nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lbchat::nn {

namespace {
constexpr std::size_t kHeaderBytes = 12;  // dim + bits + block
}

std::size_t QuantizedModel::logical_bytes() const {
  return kHeaderBytes + scales.size() * 4 + packed.size() * 4;
}

double QuantizedModel::psi() const {
  if (dim == 0) return 0.0;
  return static_cast<double>(logical_bytes()) / (static_cast<double>(dim) * 4.0);
}

std::vector<float> QuantizedModel::densify() const {
  std::vector<float> out(dim, 0.0f);
  const std::uint32_t levels = (1u << (bits - 1)) - 1;  // symmetric range
  const std::uint32_t mask = (1u << bits) - 1;
  std::size_t bitpos = 0;
  for (std::uint32_t i = 0; i < dim; ++i) {
    const std::size_t word = bitpos / 32;
    const std::size_t off = bitpos % 32;
    std::uint64_t raw = packed[word];
    if (off + bits > 32 && word + 1 < packed.size()) {
      raw |= static_cast<std::uint64_t>(packed[word + 1]) << 32;
    }
    const auto code = static_cast<std::uint32_t>((raw >> off) & mask);
    // Sign-extend the two's-complement code.
    const auto half = 1u << (bits - 1);
    const int value = code >= half ? static_cast<int>(code) - static_cast<int>(mask + 1)
                                   : static_cast<int>(code);
    const float scale = scales[i / block];
    out[i] = levels > 0 ? scale * static_cast<float>(value) / static_cast<float>(levels)
                        : 0.0f;
    bitpos += bits;
  }
  return out;
}

QuantizedModel quantize_model(std::span<const float> params, int bits, Rng* stochastic) {
  if (bits < 2 || bits > 16) throw std::invalid_argument{"quantize_model: bits in [2,16]"};
  QuantizedModel q;
  q.dim = static_cast<std::uint32_t>(params.size());
  q.bits = static_cast<std::uint8_t>(bits);
  q.block = 1024;
  const std::size_t num_blocks = (params.size() + q.block - 1) / q.block;
  q.scales.resize(num_blocks, 0.0f);
  for (std::size_t i = 0; i < params.size(); ++i) {
    q.scales[i / q.block] = std::max(q.scales[i / q.block], std::abs(params[i]));
  }

  const int levels = (1 << (bits - 1)) - 1;
  const std::uint32_t mask = (1u << bits) - 1;
  const std::size_t total_bits = params.size() * static_cast<std::size_t>(bits);
  q.packed.assign((total_bits + 31) / 32, 0u);
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float scale = q.scales[i / q.block];
    double level = 0.0;
    if (scale > 0.0f) {
      const double exact = static_cast<double>(params[i]) / scale * levels;
      if (stochastic != nullptr) {
        const double lo = std::floor(exact);
        level = lo + (stochastic->uniform() < exact - lo ? 1.0 : 0.0);
      } else {
        level = std::round(exact);
      }
      level = std::clamp(level, static_cast<double>(-levels), static_cast<double>(levels));
    }
    const auto code = static_cast<std::uint32_t>(static_cast<int>(level)) & mask;
    const std::size_t word = bitpos / 32;
    const std::size_t off = bitpos % 32;
    q.packed[word] |= code << off;
    if (off + static_cast<std::size_t>(bits) > 32 && word + 1 < q.packed.size()) {
      q.packed[word + 1] |= code >> (32 - off);
    }
    bitpos += static_cast<std::size_t>(bits);
  }
  return q;
}

namespace {

/// One symmetric int8 code: clamp(round-half-away(x * 127 / absmax)). Pure
/// float arithmetic (add ±0.5, truncate) rather than lround so the loop
/// auto-vectorizes — activation tensors pass through here on every int8
/// forward call. The rounding point is pinned by the source, so codes are
/// identical on every build and dispatch path.
inline std::int8_t s8_code(float x, float inv_scale) {
  const float t = x * inv_scale;
  const int code = static_cast<int>(t + std::copysign(0.5f, t));
  return static_cast<std::int8_t>(std::clamp(code, -127, 127));
}

/// max |x[i]| with four independent partial maxima: float max reductions do
/// not auto-vectorize under strict FP semantics, so breaking the dependence
/// chain is what keeps this off the critical path of every int8 forward call.
inline float absmax_of(std::span<const float> x) {
  float m0 = 0.0f, m1 = 0.0f, m2 = 0.0f, m3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    m0 = std::max(m0, std::abs(x[i]));
    m1 = std::max(m1, std::abs(x[i + 1]));
    m2 = std::max(m2, std::abs(x[i + 2]));
    m3 = std::max(m3, std::abs(x[i + 3]));
  }
  for (; i < x.size(); ++i) m0 = std::max(m0, std::abs(x[i]));
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

}  // namespace

Int8Rows quantize_rows_s8(std::span<const float> w, std::size_t row_len) {
  if (row_len == 0 || w.size() % row_len != 0) {
    throw std::invalid_argument{"quantize_rows_s8: size not a multiple of row_len"};
  }
  const std::size_t rows = w.size() / row_len;
  Int8Rows q;
  q.codes.assign(w.size(), 0);
  q.scales.assign(rows, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* src = w.data() + r * row_len;
    const float absmax = absmax_of({src, row_len});
    if (absmax <= 0.0f) continue;
    q.scales[r] = absmax / 127.0f;
    const float inv = 127.0f / absmax;
    std::int8_t* dst = q.codes.data() + r * row_len;
    for (std::size_t i = 0; i < row_len; ++i) dst[i] = s8_code(src[i], inv);
  }
  return q;
}

float quantize_tensor_s8(std::span<const float> x, std::int8_t* out) {
  const float absmax = absmax_of(x);
  if (absmax <= 0.0f) {
    std::fill(out, out + x.size(), static_cast<std::int8_t>(0));
    return 0.0f;
  }
  const float inv = 127.0f / absmax;
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = s8_code(x[i], inv);
  return absmax / 127.0f;
}

int bits_for_psi(double psi) {
  // psi ~= bits/32 (block-scale overhead is < 0.4% at block 1024).
  const int bits = static_cast<int>(std::round(psi * 32.0));
  return std::clamp(bits, 2, 16);
}

}  // namespace lbchat::nn
