// Wire/disk serialization of models and sparse models.
#pragma once

#include "common/bytes.h"
#include "nn/compress.h"

namespace lbchat::nn {

inline void write_sparse_model(ByteWriter& w, const SparseModel& m) {
  w.write_u32(m.dim);
  w.write_u8(m.dense ? 1 : 0);
  w.write_u32_vec(m.indices);
  w.write_f32_vec(m.values);
}

inline SparseModel read_sparse_model(ByteReader& r) {
  SparseModel m;
  m.dim = r.read_u32();
  m.dense = r.read_u8() != 0;
  m.indices = r.read_u32_vec();
  m.values = r.read_f32_vec();
  return m;
}

inline void write_params(ByteWriter& w, std::span<const float> params) {
  w.write_f32_vec(params);
}

inline std::vector<float> read_params(ByteReader& r) { return r.read_f32_vec(); }

}  // namespace lbchat::nn
