// Wire/disk serialization of models and sparse models.
#pragma once

#include <stdexcept>

#include "common/bytes.h"
#include "nn/compress.h"

namespace lbchat::nn {

inline void write_sparse_model(ByteWriter& w, const SparseModel& m) {
  w.write_u32(m.dim);
  w.write_u8(m.dense ? 1 : 0);
  w.write_u32_vec(m.indices);
  w.write_f32_vec(m.values);
}

/// Reads and validates a sparse model. Throws std::out_of_range (truncated
/// buffer) or std::runtime_error (internally inconsistent payload: dense with
/// stray indices or the wrong value count, sparse with mismatched
/// indices/values lengths or indices past `dim`) — never applies garbage.
inline SparseModel read_sparse_model(ByteReader& r) {
  SparseModel m;
  m.dim = r.read_u32();
  m.dense = r.read_u8() != 0;
  m.indices = r.read_u32_vec();
  m.values = r.read_f32_vec();
  if (m.dense) {
    if (!m.indices.empty() || m.values.size() != m.dim) {
      throw std::runtime_error{"read_sparse_model: malformed dense payload"};
    }
  } else {
    if (m.indices.size() != m.values.size()) {
      throw std::runtime_error{"read_sparse_model: indices/values length mismatch"};
    }
    for (const std::uint32_t idx : m.indices) {
      if (idx >= m.dim) throw std::runtime_error{"read_sparse_model: index out of range"};
    }
  }
  return m;
}

inline void write_params(ByteWriter& w, std::span<const float> params) {
  w.write_f32_vec(params);
}

inline std::vector<float> read_params(ByteReader& r) { return r.read_f32_vec(); }

}  // namespace lbchat::nn
