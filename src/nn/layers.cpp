#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

#include "nn/gemm.h"
#include "obs/trace.h"

namespace lbchat::nn {

namespace {

/// He-normal initialization for a fan-in of `fan_in`.
void he_init(std::span<float> w, int fan_in, Rng& rng) {
  const double std = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, std));
}

/// Smallest output coordinate whose receptive field starts inside the input:
/// o*stride - pad + k >= 0, i.e. o >= (pad - k) / stride rounded up.
inline int first_valid(int pad_minus_k, int stride) {
  return pad_minus_k > 0 ? (pad_minus_k + stride - 1) / stride : 0;
}

/// One past the largest output coordinate still inside an input extent of
/// `limit`: o*stride - pad + k <= limit-1.
inline int last_valid(int limit, int pad_minus_k, int stride, int out_extent) {
  const int num = limit - 1 + pad_minus_k;
  if (num < 0) return 0;
  return std::min(out_extent, num / stride + 1);
}

}  // namespace

Linear::Linear(ParamStore& store, int in_dim, int out_dim, Rng& init)
    : in(in_dim), out(out_dim) {
  if (in_dim <= 0 || out_dim <= 0) throw std::invalid_argument{"Linear: bad dims"};
  w_off = store.allocate(static_cast<std::size_t>(in_dim) * out_dim);
  b_off = store.allocate(static_cast<std::size_t>(out_dim));
  he_init(store.param(w_off, static_cast<std::size_t>(in_dim) * out_dim), in_dim, init);
  // biases start at zero (already zero-filled by allocate)
}

void Linear::forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
                     int batch) const {
  const auto w = store.param(w_off, static_cast<std::size_t>(in) * out);
  const auto b = store.param(b_off, static_cast<std::size_t>(out));
  // y = b (broadcast), then y += x · Wᵀ.
  for (int n = 0; n < batch; ++n) {
    float* yn = y.data() + static_cast<std::size_t>(n) * out;
    for (int o = 0; o < out; ++o) yn[o] = b[static_cast<std::size_t>(o)];
  }
  sgemm_abt(batch, out, in, x.data(), w.data(), y.data());
}

void Linear::backward(ParamStore& store, std::span<const float> x, std::span<const float> gy,
                      std::span<float> gx, int batch) const {
  const auto w = store.param(w_off, static_cast<std::size_t>(in) * out);
  auto gw = store.grad(w_off, static_cast<std::size_t>(in) * out);
  auto gb = store.grad(b_off, static_cast<std::size_t>(out));
  for (int n = 0; n < batch; ++n) {
    const float* gyn = gy.data() + static_cast<std::size_t>(n) * out;
    for (int o = 0; o < out; ++o) gb[static_cast<std::size_t>(o)] += gyn[o];
  }
  // gW [out,in] += gyᵀ [out,B] · x [B,in].
  sgemm_atb(out, in, batch, gy.data(), x.data(), gw.data());
  // gx [B,in] += gy [B,out] · W [out,in].
  if (!gx.empty()) sgemm(batch, in, out, gy.data(), w.data(), gx.data());
}

void Linear::naive_forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
                           int batch) const {
  const auto w = store.param(w_off, static_cast<std::size_t>(in) * out);
  const auto b = store.param(b_off, static_cast<std::size_t>(out));
  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + static_cast<std::size_t>(n) * in;
    float* yn = y.data() + static_cast<std::size_t>(n) * out;
    for (int o = 0; o < out; ++o) {
      const float* wo = w.data() + static_cast<std::size_t>(o) * in;
      float acc = b[static_cast<std::size_t>(o)];
      for (int i = 0; i < in; ++i) acc += wo[i] * xn[i];
      yn[o] = acc;
    }
  }
}

void Linear::naive_backward(ParamStore& store, std::span<const float> x,
                            std::span<const float> gy, std::span<float> gx, int batch) const {
  const auto w = store.param(w_off, static_cast<std::size_t>(in) * out);
  auto gw = store.grad(w_off, static_cast<std::size_t>(in) * out);
  auto gb = store.grad(b_off, static_cast<std::size_t>(out));
  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + static_cast<std::size_t>(n) * in;
    const float* gyn = gy.data() + static_cast<std::size_t>(n) * out;
    for (int o = 0; o < out; ++o) {
      const float g = gyn[o];
      if (g == 0.0f) continue;
      gb[static_cast<std::size_t>(o)] += g;
      float* gwo = gw.data() + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) gwo[i] += g * xn[i];
    }
    if (!gx.empty()) {
      float* gxn = gx.data() + static_cast<std::size_t>(n) * in;
      for (int i = 0; i < in; ++i) {
        float acc = 0.0f;
        for (int o = 0; o < out; ++o) {
          acc += gyn[o] * w[static_cast<std::size_t>(o) * in + i];
        }
        gxn[i] += acc;
      }
    }
  }
}

Conv2d::Conv2d(ParamStore& store, int in_channels, int out_channels, int in_height, int in_width,
               int kernel_size, int stride_, int pad_, Rng& init)
    : in_ch(in_channels),
      out_ch(out_channels),
      kernel(kernel_size),
      stride(stride_),
      pad(pad_),
      in_h(in_height),
      in_w(in_width) {
  if (in_ch <= 0 || out_ch <= 0 || kernel <= 0 || stride <= 0 || pad < 0) {
    throw std::invalid_argument{"Conv2d: bad config"};
  }
  out_h = (in_h + 2 * pad - kernel) / stride + 1;
  out_w = (in_w + 2 * pad - kernel) / stride + 1;
  if (out_h <= 0 || out_w <= 0) throw std::invalid_argument{"Conv2d: degenerate output"};
  const std::size_t wn = static_cast<std::size_t>(out_ch) * in_ch * kernel * kernel;
  w_off = store.allocate(wn);
  b_off = store.allocate(static_cast<std::size_t>(out_ch));
  he_init(store.param(w_off, wn), in_ch * kernel * kernel, init);
}

void Conv2d::im2col(const float* x, float* col) const {
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t in_plane = static_cast<std::size_t>(in_h) * in_w;
  float* dst = col;
  for (int ic = 0; ic < in_ch; ++ic) {
    const float* xp = x + static_cast<std::size_t>(ic) * in_plane;
    for (int kr = 0; kr < kernel; ++kr) {
      const int r_lo = first_valid(pad - kr, stride);
      const int r_hi = last_valid(in_h, pad - kr, stride, out_h);
      for (int kc = 0; kc < kernel; ++kc) {
        const int c_lo = first_valid(pad - kc, stride);
        const int c_hi = last_valid(in_w, pad - kc, stride, out_w);
        std::fill(dst, dst + out_plane, 0.0f);
        for (int r = r_lo; r < r_hi; ++r) {
          const int ri = r * stride - pad + kr;
          const float* src = xp + static_cast<std::size_t>(ri) * in_w + (c_lo * stride - pad + kc);
          float* drow = dst + static_cast<std::size_t>(r) * out_w + c_lo;
          const int span = c_hi - c_lo;
          if (stride == 1) {
            for (int c = 0; c < span; ++c) drow[c] = src[c];
          } else {
            for (int c = 0; c < span; ++c) drow[c] = src[static_cast<std::size_t>(c) * stride];
          }
        }
        dst += out_plane;
      }
    }
  }
}

void Conv2d::col2im(const float* col, float* gx) const {
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t in_plane = static_cast<std::size_t>(in_h) * in_w;
  const float* src_row = col;
  for (int ic = 0; ic < in_ch; ++ic) {
    float* gxp = gx + static_cast<std::size_t>(ic) * in_plane;
    for (int kr = 0; kr < kernel; ++kr) {
      const int r_lo = first_valid(pad - kr, stride);
      const int r_hi = last_valid(in_h, pad - kr, stride, out_h);
      for (int kc = 0; kc < kernel; ++kc) {
        const int c_lo = first_valid(pad - kc, stride);
        const int c_hi = last_valid(in_w, pad - kc, stride, out_w);
        for (int r = r_lo; r < r_hi; ++r) {
          const int ri = r * stride - pad + kr;
          float* dst = gxp + static_cast<std::size_t>(ri) * in_w + (c_lo * stride - pad + kc);
          const float* srow = src_row + static_cast<std::size_t>(r) * out_w + c_lo;
          const int span = c_hi - c_lo;
          if (stride == 1) {
            for (int c = 0; c < span; ++c) dst[c] += srow[c];
          } else {
            for (int c = 0; c < span; ++c) dst[static_cast<std::size_t>(c) * stride] += srow[c];
          }
        }
        src_row += out_plane;
      }
    }
  }
}

void Conv2d::forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
                     int batch) const {
  thread_local std::vector<float> col;
  forward(store, x, y, batch, col);
}

void Conv2d::forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
                     int batch, std::vector<float>& col_scratch) const {
  LBCHAT_OBS_SPAN("nn.conv2d_fwd");
  const auto w = store.param(w_off, static_cast<std::size_t>(out_ch) * in_ch * kernel * kernel);
  const auto b = store.param(b_off, static_cast<std::size_t>(out_ch));
  const int kdim = col_rows();
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  col_scratch.resize(static_cast<std::size_t>(kdim) * out_plane);
  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + static_cast<std::size_t>(n) * in_numel();
    float* yn = y.data() + static_cast<std::size_t>(n) * out_numel();
    im2col(xn, col_scratch.data());
    for (int oc = 0; oc < out_ch; ++oc) {
      float* yp = yn + static_cast<std::size_t>(oc) * out_plane;
      const float bias = b[static_cast<std::size_t>(oc)];
      for (std::size_t i = 0; i < out_plane; ++i) yp[i] = bias;
    }
    // y_n [out_ch, out_plane] += W [out_ch, kdim] · col [kdim, out_plane].
    sgemm(out_ch, static_cast<int>(out_plane), kdim, w.data(), col_scratch.data(), yn);
  }
}

void Conv2d::backward(ParamStore& store, std::span<const float> x, std::span<const float> gy,
                      std::span<float> gx, int batch) const {
  thread_local std::vector<float> col;
  thread_local std::vector<float> gcol;
  backward(store, x, gy, gx, batch, col, gcol);
}

void Conv2d::backward(ParamStore& store, std::span<const float> x, std::span<const float> gy,
                      std::span<float> gx, int batch, std::vector<float>& col_scratch,
                      std::vector<float>& gcol_scratch) const {
  LBCHAT_OBS_SPAN("nn.conv2d_bwd");
  const auto w = store.param(w_off, static_cast<std::size_t>(out_ch) * in_ch * kernel * kernel);
  auto gw = store.grad(w_off, static_cast<std::size_t>(out_ch) * in_ch * kernel * kernel);
  auto gb = store.grad(b_off, static_cast<std::size_t>(out_ch));
  const int kdim = col_rows();
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const bool need_gx = !gx.empty();
  col_scratch.resize(static_cast<std::size_t>(kdim) * out_plane);
  if (need_gx) gcol_scratch.resize(static_cast<std::size_t>(kdim) * out_plane);
  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + static_cast<std::size_t>(n) * in_numel();
    const float* gyn = gy.data() + static_cast<std::size_t>(n) * out_numel();
    im2col(xn, col_scratch.data());
    for (int oc = 0; oc < out_ch; ++oc) {
      const float* gyp = gyn + static_cast<std::size_t>(oc) * out_plane;
      float acc = 0.0f;
      for (std::size_t i = 0; i < out_plane; ++i) acc += gyp[i];
      gb[static_cast<std::size_t>(oc)] += acc;
    }
    // gW [out_ch, kdim] += gy_n [out_ch, out_plane] · colᵀ.
    sgemm_abt(out_ch, kdim, static_cast<int>(out_plane), gyn, col_scratch.data(), gw.data());
    if (need_gx) {
      // gcol [kdim, out_plane] = Wᵀ · gy_n, then fold back onto gx_n.
      std::fill(gcol_scratch.begin(), gcol_scratch.end(), 0.0f);
      sgemm_atb(kdim, static_cast<int>(out_plane), out_ch, w.data(), gyn, gcol_scratch.data());
      col2im(gcol_scratch.data(), gx.data() + static_cast<std::size_t>(n) * in_numel());
    }
  }
}

void Conv2d::naive_forward(const ParamStore& store, std::span<const float> x, std::span<float> y,
                           int batch) const {
  const auto w = store.param(w_off, static_cast<std::size_t>(out_ch) * in_ch * kernel * kernel);
  const auto b = store.param(b_off, static_cast<std::size_t>(out_ch));
  const std::size_t in_plane = static_cast<std::size_t>(in_h) * in_w;
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + static_cast<std::size_t>(n) * in_ch * in_plane;
    float* yn = y.data() + static_cast<std::size_t>(n) * out_ch * out_plane;
    for (int oc = 0; oc < out_ch; ++oc) {
      float* yp = yn + static_cast<std::size_t>(oc) * out_plane;
      const float bias = b[static_cast<std::size_t>(oc)];
      for (std::size_t i = 0; i < out_plane; ++i) yp[i] = bias;
      for (int ic = 0; ic < in_ch; ++ic) {
        const float* xp = xn + static_cast<std::size_t>(ic) * in_plane;
        const float* wp =
            w.data() + ((static_cast<std::size_t>(oc) * in_ch + ic) * kernel) * kernel;
        for (int r = 0; r < out_h; ++r) {
          for (int c = 0; c < out_w; ++c) {
            float acc = 0.0f;
            const int r0 = r * stride - pad;
            const int c0 = c * stride - pad;
            for (int kr = 0; kr < kernel; ++kr) {
              const int ri = r0 + kr;
              if (ri < 0 || ri >= in_h) continue;
              for (int kc = 0; kc < kernel; ++kc) {
                const int ci = c0 + kc;
                if (ci < 0 || ci >= in_w) continue;
                acc += xp[static_cast<std::size_t>(ri) * in_w + ci] * wp[kr * kernel + kc];
              }
            }
            yp[static_cast<std::size_t>(r) * out_w + c] += acc;
          }
        }
      }
    }
  }
}

void Conv2d::naive_backward(ParamStore& store, std::span<const float> x,
                            std::span<const float> gy, std::span<float> gx, int batch) const {
  const auto w = store.param(w_off, static_cast<std::size_t>(out_ch) * in_ch * kernel * kernel);
  auto gw = store.grad(w_off, static_cast<std::size_t>(out_ch) * in_ch * kernel * kernel);
  auto gb = store.grad(b_off, static_cast<std::size_t>(out_ch));
  const std::size_t in_plane = static_cast<std::size_t>(in_h) * in_w;
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + static_cast<std::size_t>(n) * in_ch * in_plane;
    const float* gyn = gy.data() + static_cast<std::size_t>(n) * out_ch * out_plane;
    float* gxn = gx.empty() ? nullptr : gx.data() + static_cast<std::size_t>(n) * in_ch * in_plane;
    for (int oc = 0; oc < out_ch; ++oc) {
      const float* gyp = gyn + static_cast<std::size_t>(oc) * out_plane;
      for (std::size_t i = 0; i < out_plane; ++i) gb[static_cast<std::size_t>(oc)] += gyp[i];
      for (int ic = 0; ic < in_ch; ++ic) {
        const float* xp = xn + static_cast<std::size_t>(ic) * in_plane;
        const std::size_t w_base = (static_cast<std::size_t>(oc) * in_ch + ic) *
                                   static_cast<std::size_t>(kernel) * kernel;
        for (int r = 0; r < out_h; ++r) {
          const int r0 = r * stride - pad;
          for (int c = 0; c < out_w; ++c) {
            const float g = gyp[static_cast<std::size_t>(r) * out_w + c];
            if (g == 0.0f) continue;
            const int c0 = c * stride - pad;
            for (int kr = 0; kr < kernel; ++kr) {
              const int ri = r0 + kr;
              if (ri < 0 || ri >= in_h) continue;
              for (int kc = 0; kc < kernel; ++kc) {
                const int ci = c0 + kc;
                if (ci < 0 || ci >= in_w) continue;
                const std::size_t xi = static_cast<std::size_t>(ri) * in_w + ci;
                gw[w_base + static_cast<std::size_t>(kr) * kernel + kc] += g * xp[xi];
                if (gxn != nullptr) {
                  gxn[static_cast<std::size_t>(ic) * in_plane + xi] +=
                      g * w[w_base + static_cast<std::size_t>(kr) * kernel + kc];
                }
              }
            }
          }
        }
      }
    }
  }
}

void relu_forward(std::span<float> x) {
  for (float& v : x) v = v > 0.0f ? v : 0.0f;
}

void relu_backward(std::span<const float> y, std::span<float> gy) {
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0.0f) gy[i] = 0.0f;
  }
}

}  // namespace lbchat::nn
