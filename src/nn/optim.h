// First-order optimizers operating on flat parameter/gradient arrays.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace lbchat {
class ByteWriter;
class ByteReader;
}  // namespace lbchat

namespace lbchat::nn {

/// Interface for optimizers over one model's flat parameter vector.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update; params and grads must have the same (stable) size
  /// across calls.
  virtual void step(std::span<float> params, std::span<const float> grads) = 0;
  /// Reset internal state (momentum/moment buffers).
  virtual void reset() = 0;
  [[nodiscard]] virtual std::unique_ptr<Optimizer> clone() const = 0;

  /// Stable identifier of the concrete optimizer ("sgd", "adam"), used to
  /// validate checkpoint compatibility before load_state().
  [[nodiscard]] virtual std::string_view kind() const = 0;
  /// Serialize/restore the mutable state (moment buffers, step count) so a
  /// restored optimizer continues bit-identically. Hyperparameters are NOT
  /// serialized; they come from the reconstructed configuration.
  virtual void save_state(ByteWriter& w) const = 0;
  virtual void load_state(ByteReader& r) = 0;

  [[nodiscard]] double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// SGD with classical momentum and decoupled weight decay. The weight-decay
/// term realizes the lambda_1 * ||x|| structural-risk penalty of Eq. (6)
/// during training (its gradient), while the full penalized loss is evaluated
/// by coreset::penalized_loss.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr = 1e-4, double momentum = 0.9, double weight_decay = 0.0)
      : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void step(std::span<float> params, std::span<const float> grads) override;
  void reset() override { velocity_.clear(); }
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Sgd>(lr_, momentum_, weight_decay_);
  }
  [[nodiscard]] std::string_view kind() const override { return "sgd"; }
  void save_state(ByteWriter& w) const override;
  void load_state(ByteReader& r) override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<float> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW-style).
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr = 1e-4, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8,
                double weight_decay = 0.0)
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

  void step(std::span<float> params, std::span<const float> grads) override;
  void reset() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Adam>(lr_, beta1_, beta2_, eps_, weight_decay_);
  }
  [[nodiscard]] std::string_view kind() const override { return "adam"; }
  void save_state(ByteWriter& w) const override;
  void load_state(ByteReader& r) override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::vector<float> m_, v_;
  long t_ = 0;
};

}  // namespace lbchat::nn
