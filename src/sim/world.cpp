#include "sim/world.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/bytes.h"
#include "common/thread_pool.h"

namespace lbchat::sim {

World::World(const WorldConfig& cfg, int num_vehicles, std::uint64_t seed)
    : cfg_(cfg),
      map_([&] {
        Rng map_rng = Rng{seed}.fork("map");
        return TownMap::generate(cfg.town, map_rng);
      }()),
      route_rng_(Rng{seed}.fork("routes")),
      ped_rng_(Rng{seed}.fork("peds")) {
  Rng spawn = Rng{seed}.fork("spawn");

  vehicles_.resize(static_cast<std::size_t>(num_vehicles));
  for (int i = 0; i < num_vehicles; ++i) {
    CarAgent& a = vehicles_[static_cast<std::size_t>(i)];
    // Half the fleet prefers urban destinations, half rural: this regional
    // bias is what makes per-vehicle datasets heterogeneous.
    const bool urban = spawn.uniform() <
                       cfg.urban_dweller_fraction;  // deterministic per spawn order
    a.urban_bias = urban ? 0.92 : 0.12;
    a.at_node = map_.random_node_biased(spawn, a.urban_bias);
    a.pos = map_.nodes()[static_cast<std::size_t>(a.at_node)].pos;
    assign_new_route(a, spawn);
  }

  cars_.resize(static_cast<std::size_t>(cfg.num_background_cars));
  for (CarAgent& a : cars_) {
    a.urban_bias = 0.6;
    a.at_node = map_.random_node_biased(spawn, a.urban_bias);
    a.pos = map_.nodes()[static_cast<std::size_t>(a.at_node)].pos;
    assign_new_route(a, spawn);
  }

  peds_.resize(static_cast<std::size_t>(cfg.num_pedestrians));
  for (PedAgent& p : peds_) {
    p.pos = map_.random_road_point(spawn);
    p.target = map_.random_road_point(spawn);
  }
}

void World::assign_new_route(CarAgent& a, Rng& rng) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int dest = map_.random_node_biased(rng, a.urban_bias);
    if (dest == a.at_node) continue;
    Route r = plan_route(map_, a.at_node, dest);
    if (r.empty()) continue;
    a.route = std::move(r);
    a.s = 0.0;
    a.at_node = dest;
    a.heading = a.route.heading_at(0.0);
    return;
  }
  throw std::logic_error{"World::assign_new_route: could not plan a route"};
}

Vec2 World::lane_position(const Route& route, double s) const {
  const Vec2 centre = route.position_at(s);
  const double h = route.heading_at(s);
  // Right normal of the tangent: rotate (cos h, sin h) by -90 degrees.
  return centre + Vec2{std::sin(h), -std::cos(h)} * cfg_.lane_offset_m;
}

double World::allowed_speed_at(const Vec2& pos, double heading, double base_speed,
                               int exclude_vehicle, bool ignore_cars) const {
  double gap = std::numeric_limits<double>::infinity();
  const auto consider = [&](const Vec2& obstacle, double radius) {
    const Vec2 e = to_ego_frame(obstacle, pos, heading);
    if (e.x <= 0.5 || e.x > cfg_.obstacle_lookahead_m) return;
    if (std::abs(e.y) > cfg_.corridor_halfwidth_m + radius) return;
    gap = std::min(gap, e.x);
  };
  if (!ignore_cars) {
    for (int i = 0; i < num_vehicles(); ++i) {
      if (i == exclude_vehicle) continue;
      consider(vehicles_[static_cast<std::size_t>(i)].pos, cfg_.car_radius_m);
    }
    for (const CarAgent& c : cars_) consider(c.pos, cfg_.car_radius_m);
    if (external_car_.has_value()) consider(*external_car_, cfg_.car_radius_m);
  }
  for (const PedAgent& p : peds_) consider(p.pos, cfg_.ped_radius_m);

  if (!std::isfinite(gap)) return base_speed;
  const double headroom = std::max(gap - cfg_.min_gap_m, 0.0);
  return std::min(base_speed, std::sqrt(2.0 * cfg_.brake_decel * headroom));
}

double World::base_target_speed(const CarAgent& a) const {
  double base = cfg_.car_max_speed;
  if (a.route.command_at(a.s) != data::Command::kFollow) base = cfg_.turn_speed;
  // Slow for sharp geometric bends too (degree-2 corners carry no command
  // but are dynamically just as demanding as commanded turns).
  const double bend = std::abs(wrap_angle(a.route.heading_at(a.s + cfg_.bend_lookahead_m) -
                                          a.route.heading_at(a.s)));
  if (bend > cfg_.bend_threshold_rad) base = std::min(base, cfg_.turn_speed);
  return base;
}

double World::expert_target_speed(const CarAgent& a, int vehicle_index) const {
  const double base = base_target_speed(a);
  const bool ignore_cars = a.ignore_cars_until_s > time_;
  return allowed_speed_at(a.pos, a.heading, base, vehicle_index, ignore_cars);
}

double World::allowed_speed_snapshot(const Vec2& pos, double heading, double base_speed,
                                     int exclude, bool ignore_cars) const {
  double gap = std::numeric_limits<double>::infinity();
  // Same corridor predicate as allowed_speed_at. Every obstacle it accepts
  // lies within hypot(lookahead, halfwidth + radius) of the ego, so a disc
  // query of that radius yields a candidate superset, and min over the
  // filtered superset equals min over a full scan — the grid is exact.
  const auto consider = [&](const Vec2& obstacle, double radius) {
    const Vec2 e = to_ego_frame(obstacle, pos, heading);
    if (e.x <= 0.5 || e.x > cfg_.obstacle_lookahead_m) return;
    if (std::abs(e.y) > cfg_.corridor_halfwidth_m + radius) return;
    gap = std::min(gap, e.x);
  };
  const double max_radius = std::max(cfg_.car_radius_m, cfg_.ped_radius_m);
  const double query_r =
      std::hypot(cfg_.obstacle_lookahead_m, cfg_.corridor_halfwidth_m + max_radius) + 1e-9;
  snap_grid_.for_each_candidate(pos, query_r, [&](std::uint32_t i) {
    if (static_cast<int>(i) == exclude) return;
    const bool is_ped = i >= snap_peds_begin_;
    if (ignore_cars && !is_ped) return;
    consider(snap_pos_[i], is_ped ? cfg_.ped_radius_m : cfg_.car_radius_m);
  });
  if (!std::isfinite(gap)) return base_speed;
  const double headroom = std::max(gap - cfg_.min_gap_m, 0.0);
  return std::min(base_speed, std::sqrt(2.0 * cfg_.brake_decel * headroom));
}

void World::step_car(CarAgent& a, double dt, int vehicle_index, Rng& rng) {
  const double target = expert_target_speed(a, vehicle_index);
  if (a.speed < target) {
    a.speed = std::min(target, a.speed + cfg_.accel * dt);
  } else {
    a.speed = std::max(target, a.speed - cfg_.brake_decel * dt);
  }
  // Deadlock breaker: a car halted too long (crossing stalemate) briefly
  // ignores other cars and creeps through.
  if (a.speed < 0.1) {
    if (a.blocked_since_s < 0.0) a.blocked_since_s = time_;
    if (time_ - a.blocked_since_s > cfg_.deadlock_patience_s &&
        a.ignore_cars_until_s < time_) {
      a.ignore_cars_until_s = time_ + cfg_.deadlock_ignore_s;
      a.blocked_since_s = -1.0;
    }
  } else {
    a.blocked_since_s = -1.0;
  }
  a.s += a.speed * dt;
  if (a.s >= a.route.length() - 0.5) {
    assign_new_route(a, rng);
  }
  a.pos = lane_position(a.route, a.s);
  a.heading = a.route.heading_at(a.s);
}

void World::step(double dt) {
  if (cfg_.snapshot_mobility) {
    step_snapshot(dt);
    return;
  }
  for (int i = 0; i < num_vehicles(); ++i) {
    step_car(vehicles_[static_cast<std::size_t>(i)], dt, i, route_rng_);
  }
  for (CarAgent& c : cars_) step_car(c, dt, -1, route_rng_);
  step_peds(dt);
  time_ += dt;
}

void World::step_snapshot(double dt) {
  // Tick-start obstacle snapshot: vehicles, background cars, the external
  // car (if any), then pedestrians. Index i < snap_peds_begin_ is a car.
  const std::size_t nv = vehicles_.size();
  const std::size_t nc = cars_.size();
  snap_pos_.clear();
  snap_pos_.reserve(nv + nc + 1 + peds_.size());
  for (const CarAgent& a : vehicles_) snap_pos_.push_back(a.pos);
  for (const CarAgent& c : cars_) snap_pos_.push_back(c.pos);
  if (external_car_.has_value()) snap_pos_.push_back(*external_car_);
  snap_peds_begin_ = snap_pos_.size();
  for (const PedAgent& p : peds_) snap_pos_.push_back(p.pos);
  const double max_radius = std::max(cfg_.car_radius_m, cfg_.ped_radius_m);
  snap_grid_.rebuild(snap_pos_,
                     std::hypot(cfg_.obstacle_lookahead_m,
                                cfg_.corridor_halfwidth_m + max_radius) + 1e-6);

  // Phase 1 (parallel-safe): per-car speed/arc-length update against the
  // snapshot. Each lane writes only its own car's speed/s/deadlock fields
  // and reads only snapshot positions — pos/heading stay untouched until
  // the commit phase, so there are no cross-lane races and the result is
  // independent of lane count.
  const auto advance = [&](std::int64_t k) {
    CarAgent& a = k < static_cast<std::int64_t>(nv)
                      ? vehicles_[static_cast<std::size_t>(k)]
                      : cars_[static_cast<std::size_t>(k) - nv];
    const bool ignore_cars = a.ignore_cars_until_s > time_;
    const int exclude = k < static_cast<std::int64_t>(nv) ? static_cast<int>(k) : -1;
    const double target =
        allowed_speed_snapshot(a.pos, a.heading, base_target_speed(a), exclude, ignore_cars);
    if (a.speed < target) {
      a.speed = std::min(target, a.speed + cfg_.accel * dt);
    } else {
      a.speed = std::max(target, a.speed - cfg_.brake_decel * dt);
    }
    if (a.speed < 0.1) {
      if (a.blocked_since_s < 0.0) a.blocked_since_s = time_;
      if (time_ - a.blocked_since_s > cfg_.deadlock_patience_s &&
          a.ignore_cars_until_s < time_) {
        a.ignore_cars_until_s = time_ + cfg_.deadlock_ignore_s;
        a.blocked_since_s = -1.0;
      }
    } else {
      a.blocked_since_s = -1.0;
    }
    a.s += a.speed * dt;
  };
  const auto ncars = static_cast<std::int64_t>(nv + nc);
  if (pool_ != nullptr) {
    pool_->parallel_for(0, ncars, advance);
  } else {
    for (std::int64_t k = 0; k < ncars; ++k) advance(k);
  }

  // Phase 2 (ordered commit): route reassignment consumes the shared route
  // RNG strictly in agent order — the same id order at any thread count —
  // then positions/headings are published.
  for (std::int64_t k = 0; k < ncars; ++k) {
    CarAgent& a = k < static_cast<std::int64_t>(nv)
                      ? vehicles_[static_cast<std::size_t>(k)]
                      : cars_[static_cast<std::size_t>(k) - nv];
    if (a.s >= a.route.length() - 0.5) assign_new_route(a, route_rng_);
    a.pos = lane_position(a.route, a.s);
    a.heading = a.route.heading_at(a.s);
  }
  step_peds(dt);
  time_ += dt;
}

void World::step_peds(double dt) {
  for (PedAgent& p : peds_) {
    const Vec2 delta = p.target - p.pos;
    const double d = delta.norm();
    if (d < 1.0) {
      // Pick a new wander target near the current position (on a road, so
      // pedestrians keep crossing streets and creating braking events).
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Vec2 cand = map_.random_road_point(ped_rng_);
        if (distance(cand, p.pos) <= cfg_.ped_target_radius_m) {
          p.target = cand;
          break;
        }
      }
      if (distance(p.target, p.pos) < 1.0) p.target = map_.random_road_point(ped_rng_);
    } else {
      p.pos += delta * (std::min(cfg_.ped_speed * dt, d) / d);
    }
  }
}

std::vector<Vec2> World::car_positions(int exclude_vehicle) const {
  std::vector<Vec2> out;
  out.reserve(vehicles_.size() + cars_.size());
  for (int i = 0; i < num_vehicles(); ++i) {
    if (i == exclude_vehicle) continue;
    out.push_back(vehicles_[static_cast<std::size_t>(i)].pos);
  }
  for (const CarAgent& c : cars_) out.push_back(c.pos);
  return out;
}

std::vector<Vec2> World::pedestrian_positions() const {
  std::vector<Vec2> out;
  out.reserve(peds_.size());
  for (const PedAgent& p : peds_) out.push_back(p.pos);
  return out;
}

data::BevGrid World::render_ego_bev(const Vec2& pos, double heading, const Route& route,
                                    double route_s, int exclude_vehicle) const {
  return render_bev(cfg_.bev, map_, pos, heading, car_positions(exclude_vehicle),
                    pedestrian_positions(), route, route_s, cfg_.car_radius_m);
}

data::Sample World::collect_sample(int v, std::uint64_t sample_id) const {
  const CarAgent& a = vehicles_.at(static_cast<std::size_t>(v));

  // Recovery augmentation: deterministically (per sample id) offset the
  // recording pose sideways and in heading. The labels still aim at the
  // lane, so the cloned policy learns to steer *back* when it drifts.
  Vec2 pose_pos = a.pos;
  double pose_heading = a.heading;
  bool perturbed = false;
  Rng perturb = Rng{sample_id ^ 0x9E3779B97F4A7C15ULL}.fork("perturb");
  if (perturb.uniform() < cfg_.perturb_prob) {
    perturbed = true;
    const double lat = perturb.uniform(-cfg_.perturb_lateral_max_m, cfg_.perturb_lateral_max_m);
    const double dh =
        perturb.uniform(-cfg_.perturb_heading_max_rad, cfg_.perturb_heading_max_rad);
    pose_pos += Vec2{std::sin(a.heading), -std::cos(a.heading)} * lat;
    pose_heading = wrap_angle(a.heading + dh);
  }

  data::Sample s;
  s.bev = render_ego_bev(pose_pos, pose_heading, a.route, a.s, v);
  s.command = a.route.command_at(a.s);
  s.id = sample_id;
  s.source_vehicle = static_cast<std::uint32_t>(v);

  // Expert waypoint labels: future along-route positions under the current
  // obstacle-aware speed, relative to the (possibly perturbed) recording
  // pose. When blocked the waypoints bunch at the ego — that is the "stop"
  // signal the model imitates.
  const double v_expert = expert_target_speed(a, v);
  // Braking situations are rare but safety-critical: give them extra w(d) so
  // minibatch sampling and coreset construction both see them.
  s.weight = v_expert < 0.5 * cfg_.car_max_speed ? 3.0 : 1.0;
  // Perturbed frames keep a minimum forward progression so the recovery
  // label is "steer back to the lane", never "freeze off-road".
  const double v_label = std::max(v_expert, perturbed ? 3.0 : 0.0);
  for (int k = 0; k < data::kNumWaypoints; ++k) {
    const double ds = v_label * cfg_.waypoint_dt_s * static_cast<double>(k + 1);
    const Vec2 wp = to_ego_frame(lane_position(a.route, a.s + ds), pose_pos, pose_heading);
    s.waypoints[static_cast<std::size_t>(2 * k)] =
        static_cast<float>(wp.x / data::kWaypointScale);
    s.waypoints[static_cast<std::size_t>(2 * k + 1)] =
        static_cast<float>(wp.y / data::kWaypointScale);
  }
  return s;
}

bool World::collides(const Vec2& pos, double radius, int exclude_vehicle) const {
  for (int i = 0; i < num_vehicles(); ++i) {
    if (i == exclude_vehicle) continue;
    if (distance(pos, vehicles_[static_cast<std::size_t>(i)].pos) <
        radius + cfg_.car_radius_m) {
      return true;
    }
  }
  for (const CarAgent& c : cars_) {
    if (distance(pos, c.pos) < radius + cfg_.car_radius_m) return true;
  }
  for (const PedAgent& p : peds_) {
    if (distance(pos, p.pos) < radius + cfg_.ped_radius_m) return true;
  }
  return false;
}

namespace {

void save_car(ByteWriter& w, const CarAgent& a) {
  w.write_f64(a.pos.x);
  w.write_f64(a.pos.y);
  w.write_f64(a.heading);
  w.write_f64(a.speed);
  w.write_f64(a.s);
  w.write_i32(a.at_node);
  w.write_f64(a.urban_bias);
  w.write_f64(a.blocked_since_s);
  w.write_f64(a.ignore_cars_until_s);
  const auto& seq = a.route.node_sequence();
  w.write_u32(static_cast<std::uint32_t>(seq.size()));
  for (const int n : seq) w.write_i32(n);
}

void load_car(ByteReader& r, CarAgent& a, const TownMap& map) {
  a.pos.x = r.read_f64();
  a.pos.y = r.read_f64();
  a.heading = r.read_f64();
  a.speed = r.read_f64();
  a.s = r.read_f64();
  a.at_node = r.read_i32();
  a.urban_bias = r.read_f64();
  a.blocked_since_s = r.read_f64();
  a.ignore_cars_until_s = r.read_f64();
  const auto n = r.read_u32();
  if (n < 2) throw std::runtime_error{"World::load: route shorter than 2 nodes"};
  std::vector<int> seq(n);
  const int num_nodes = static_cast<int>(map.nodes().size());
  for (auto& id : seq) {
    id = r.read_i32();
    if (id < 0 || id >= num_nodes) throw std::runtime_error{"World::load: route node out of range"};
  }
  a.route = Route{std::move(seq), map};
}

}  // namespace

void World::save(ByteWriter& w) const {
  w.write_f64(time_);
  w.write_u32(static_cast<std::uint32_t>(vehicles_.size()));
  for (const auto& a : vehicles_) save_car(w, a);
  w.write_u32(static_cast<std::uint32_t>(cars_.size()));
  for (const auto& a : cars_) save_car(w, a);
  w.write_u32(static_cast<std::uint32_t>(peds_.size()));
  for (const auto& p : peds_) {
    w.write_f64(p.pos.x);
    w.write_f64(p.pos.y);
    w.write_f64(p.target.x);
    w.write_f64(p.target.y);
  }
  route_rng_.save(w);
  ped_rng_.save(w);
}

void World::load(ByteReader& r) {
  time_ = r.read_f64();
  if (r.read_u32() != vehicles_.size()) throw std::runtime_error{"World::load: vehicle count mismatch"};
  for (auto& a : vehicles_) load_car(r, a, map_);
  if (r.read_u32() != cars_.size()) throw std::runtime_error{"World::load: car count mismatch"};
  for (auto& a : cars_) load_car(r, a, map_);
  if (r.read_u32() != peds_.size()) throw std::runtime_error{"World::load: pedestrian count mismatch"};
  for (auto& p : peds_) {
    p.pos.x = r.read_f64();
    p.pos.y = r.read_f64();
    p.target.x = r.read_f64();
    p.target.y = r.read_f64();
  }
  route_rng_.load(r);
  ped_rng_.load(r);
}

}  // namespace lbchat::sim
