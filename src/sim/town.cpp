#include "sim/town.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace lbchat::sim {

namespace {

/// Union-find for connectivity bookkeeping during generation.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

TownMap TownMap::generate(const TownConfig& cfg, Rng& rng) {
  TownMap map;
  map.cfg_ = cfg;

  // --- Urban grid nodes ---
  const int g = cfg.urban_grid;
  for (int r = 0; r < g; ++r) {
    for (int c = 0; c < g; ++c) {
      RoadNode n;
      n.pos = {cfg.urban_origin_m + c * cfg.urban_spacing_m,
               cfg.urban_origin_m + r * cfg.urban_spacing_m};
      map.nodes_.push_back(std::move(n));
    }
  }
  map.urban_node_count_ = g * g;

  // --- Rural ring nodes, evenly spaced around the map border ---
  const double m = cfg.rural_margin_m;
  const double side = cfg.extent_m - 2.0 * m;
  const double perimeter = 4.0 * side;
  const int ring_n = std::max(cfg.rural_ring_nodes, 4);
  const int ring_base = static_cast<int>(map.nodes_.size());
  for (int i = 0; i < ring_n; ++i) {
    const double d = perimeter * static_cast<double>(i) / ring_n;
    Vec2 p;
    if (d < side) {
      p = {m + d, m};
    } else if (d < 2 * side) {
      p = {m + side, m + (d - side)};
    } else if (d < 3 * side) {
      p = {m + side - (d - 2 * side), m + side};
    } else {
      p = {m, m + side - (d - 3 * side)};
    }
    RoadNode n;
    n.pos = p;
    map.nodes_.push_back(std::move(n));
  }

  auto add_edge = [&](int a, int b) {
    if (a == b) return;
    for (const auto& [x, y] : map.edges_) {
      if ((x == a && y == b) || (x == b && y == a)) return;
    }
    map.edges_.emplace_back(a, b);
    map.nodes_[static_cast<std::size_t>(a)].neighbors.push_back(b);
    map.nodes_[static_cast<std::size_t>(b)].neighbors.push_back(a);
  };

  // Urban grid edges (4-neighbourhood), each dropped with a small
  // probability for street-pattern variety.
  for (int r = 0; r < g; ++r) {
    for (int c = 0; c < g; ++c) {
      const int idx = r * g + c;
      if (c + 1 < g && !rng.chance(cfg.edge_drop_prob)) add_edge(idx, idx + 1);
      if (r + 1 < g && !rng.chance(cfg.edge_drop_prob)) add_edge(idx, idx + g);
    }
  }
  // Rural ring edges.
  for (int i = 0; i < ring_n; ++i) add_edge(ring_base + i, ring_base + (i + 1) % ring_n);
  // Connector roads: every third ring node links to its nearest grid node.
  for (int i = 0; i < ring_n; i += 3) {
    const Vec2 p = map.nodes_[static_cast<std::size_t>(ring_base + i)].pos;
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (int j = 0; j < map.urban_node_count_; ++j) {
      const double d = distance(p, map.nodes_[static_cast<std::size_t>(j)].pos);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    add_edge(ring_base + i, best);
  }

  // Repair connectivity: greedily link closest node pairs across components.
  Dsu dsu{map.nodes_.size()};
  for (const auto& [a, b] : map.edges_) dsu.unite(a, b);
  for (;;) {
    int best_a = -1, best_b = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < map.nodes_.size(); ++a) {
      for (std::size_t b = a + 1; b < map.nodes_.size(); ++b) {
        if (dsu.find(static_cast<int>(a)) == dsu.find(static_cast<int>(b))) continue;
        const double d = distance(map.nodes_[a].pos, map.nodes_[b].pos);
        if (d < best_d) {
          best_d = d;
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
        }
      }
    }
    if (best_a < 0) break;  // single component
    add_edge(best_a, best_b);
    dsu.unite(best_a, best_b);
  }

  map.build_raster();
  return map;
}

void TownMap::build_raster() {
  raster_n_ = static_cast<int>(std::ceil(cfg_.extent_m / cfg_.raster_cell_m));
  road_mask_.assign(static_cast<std::size_t>(raster_n_) * raster_n_, 0);
  const double hw = cfg_.road_half_width_m;
  for (const auto& [a, b] : edges_) {
    const Vec2 pa = nodes_[static_cast<std::size_t>(a)].pos;
    const Vec2 pb = nodes_[static_cast<std::size_t>(b)].pos;
    // Rasterize only cells inside the segment's padded bounding box.
    const double min_x = std::min(pa.x, pb.x) - hw, max_x = std::max(pa.x, pb.x) + hw;
    const double min_y = std::min(pa.y, pb.y) - hw, max_y = std::max(pa.y, pb.y) + hw;
    const int c0 = std::max(0, static_cast<int>(min_x / cfg_.raster_cell_m));
    const int c1 = std::min(raster_n_ - 1, static_cast<int>(max_x / cfg_.raster_cell_m));
    const int r0 = std::max(0, static_cast<int>(min_y / cfg_.raster_cell_m));
    const int r1 = std::min(raster_n_ - 1, static_cast<int>(max_y / cfg_.raster_cell_m));
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        const Vec2 center{(c + 0.5) * cfg_.raster_cell_m, (r + 0.5) * cfg_.raster_cell_m};
        if (point_segment_distance(center, pa, pb) <= hw) {
          road_mask_[static_cast<std::size_t>(r) * raster_n_ + c] = 1;
        }
      }
    }
  }
  road_cells_.clear();
  for (std::uint32_t i = 0; i < road_mask_.size(); ++i) {
    if (road_mask_[i] != 0) road_cells_.push_back(i);
  }
  if (road_cells_.empty()) throw std::logic_error{"TownMap: no road cells rasterized"};
}

int TownMap::nearest_node(const Vec2& p) const {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const double d = distance(p, nodes_[i].pos);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int TownMap::random_node(Rng& rng) const {
  return static_cast<int>(rng.uniform_index(nodes_.size()));
}

int TownMap::random_node_biased(Rng& rng, double urban_prob) const {
  if (rng.chance(urban_prob)) {
    return static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(urban_node_count_)));
  }
  const auto rural = nodes_.size() - static_cast<std::size_t>(urban_node_count_);
  if (rural == 0) return random_node(rng);
  return urban_node_count_ + static_cast<int>(rng.uniform_index(rural));
}

bool TownMap::is_urban_node(int idx) const { return idx < urban_node_count_; }

bool TownMap::connected() const {
  if (nodes_.empty()) return true;
  std::vector<char> seen(nodes_.size(), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  std::size_t count = 1;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (const int v : nodes_[static_cast<std::size_t>(u)].neighbors) {
      if (seen[static_cast<std::size_t>(v)] == 0) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++count;
        q.push(v);
      }
    }
  }
  return count == nodes_.size();
}

bool TownMap::on_road(const Vec2& p) const {
  const int c = static_cast<int>(p.x / cfg_.raster_cell_m);
  const int r = static_cast<int>(p.y / cfg_.raster_cell_m);
  if (c < 0 || c >= raster_n_ || r < 0 || r >= raster_n_) return false;
  return road_mask_[static_cast<std::size_t>(r) * raster_n_ + c] != 0;
}

Vec2 TownMap::random_road_point(Rng& rng) const {
  const std::uint32_t cell = road_cells_[rng.uniform_index(road_cells_.size())];
  const int r = static_cast<int>(cell) / raster_n_;
  const int c = static_cast<int>(cell) % raster_n_;
  return {(c + rng.uniform()) * cfg_.raster_cell_m, (r + rng.uniform()) * cfg_.raster_cell_m};
}

}  // namespace lbchat::sim
