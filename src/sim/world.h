// The simulated driving world (CARLA substitute): expert autopilot vehicles
// that collect training data, background cars and pedestrians as traffic,
// kinematics, collision queries, and frame collection (paper §IV-A).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "common/spatial_grid.h"
#include "data/frame.h"
#include "sim/bev.h"
#include "sim/route.h"
#include "sim/town.h"

namespace lbchat {
class ByteWriter;
class ByteReader;
class ThreadPool;
}  // namespace lbchat

namespace lbchat::sim {

struct WorldConfig {
  TownConfig town{};
  data::BevSpec bev{};
  int num_background_cars = 25;  ///< paper: 50 at full CARLA scale
  int num_pedestrians = 60;      ///< paper: 250 at full CARLA scale
  double car_radius_m = 1.5;
  double ped_radius_m = 0.5;
  double car_max_speed = 12.0;       ///< cruise speed (m/s)
  double turn_speed = 6.0;           ///< speed cap while a turn command is active
  double accel = 2.5;                ///< m/s^2
  double brake_decel = 3.5;          ///< m/s^2
  double min_gap_m = 7.0;            ///< standstill gap behind an obstacle
  double obstacle_lookahead_m = 26.0;
  double corridor_halfwidth_m = 1.8;  ///< lateral window for obstacle relevance
  /// Right-hand lane offset from the road centreline: keeps opposing traffic
  /// on bidirectional roads laterally separated (no head-on deadlocks).
  double lane_offset_m = 2.2;
  /// Deadlock breaker for crossing stalemates at intersections: a car
  /// blocked this long ignores *car* obstacles (not pedestrians) briefly.
  double deadlock_patience_s = 20.0;
  double deadlock_ignore_s = 6.0;
  /// Experts slow to turn_speed when the road itself bends sharply ahead
  /// (degree-2 polyline corners, which carry no navigation command).
  double bend_lookahead_m = 18.0;
  double bend_threshold_rad = 0.45;
  /// Recovery augmentation (noise injection a la Codevilla et al.): a
  /// fraction of collected frames render the BEV and compute labels from a
  /// laterally/heading-perturbed ego pose, so the cloned policy learns to
  /// steer back onto the lane instead of drifting off forever.
  double perturb_prob = 0.3;
  double perturb_lateral_max_m = 3.0;
  double perturb_heading_max_rad = 0.35;
  double ped_speed = 1.3;
  double ped_target_radius_m = 40.0;
  double waypoint_dt_s = 0.8;  ///< time spacing of expert waypoint labels
  /// Fraction of peer vehicles whose destinations are urban-biased; the rest
  /// roam rural — this is what makes local datasets heterogeneous.
  double urban_dweller_fraction = 0.5;
  /// Snapshot-based mobility (DESIGN.md §11): each car's obstacle scan reads
  /// the tick-START positions of every other agent (via a spatial grid)
  /// instead of the in-place sweep where agent i sees agents < i already
  /// moved. Per-car speed updates become order-independent, so step() can
  /// fan them out across a thread pool and commit positions and route
  /// reassignments in a sequential, id-ordered phase — bit-identical at any
  /// thread count. The two modes produce (slightly) different trajectories,
  /// so this is OFF by default; metro-scale scenarios switch it on.
  bool snapshot_mobility = false;
};

/// A car glued to a road route (peer vehicle or background traffic).
struct CarAgent {
  Vec2 pos;
  double heading = 0.0;
  double speed = 0.0;
  double s = 0.0;  ///< arc length along the current route
  Route route;
  int at_node = -1;     ///< node the current route ends at
  double urban_bias = 0.5;
  double blocked_since_s = -1.0;     ///< when the car last came to a halt
  double ignore_cars_until_s = -1.0; ///< deadlock-breaker window
};

struct PedAgent {
  Vec2 pos;
  Vec2 target;
};

class World {
 public:
  /// `num_vehicles` peer (expert autopilot) vehicles, plus background traffic
  /// per `cfg`. Fully deterministic for a given seed.
  World(const WorldConfig& cfg, int num_vehicles, std::uint64_t seed);

  void step(double dt);

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] const TownMap& map() const { return map_; }
  [[nodiscard]] const WorldConfig& config() const { return cfg_; }
  [[nodiscard]] int num_vehicles() const { return static_cast<int>(vehicles_.size()); }
  [[nodiscard]] const CarAgent& vehicle(int i) const {
    return vehicles_[static_cast<std::size_t>(i)];
  }

  /// Positions of every car except peer vehicle `exclude_vehicle` (pass -1 to
  /// include all). Includes background cars.
  [[nodiscard]] std::vector<Vec2> car_positions(int exclude_vehicle = -1) const;
  [[nodiscard]] std::vector<Vec2> pedestrian_positions() const;

  /// Collect a training frame from peer vehicle `v` with the expert's
  /// waypoint labels (paper: BEV + next command + next planned waypoints).
  /// A deterministic (per sample id) fraction of frames is pose-perturbed
  /// for recovery augmentation (see WorldConfig::perturb_prob).
  [[nodiscard]] data::Sample collect_sample(int v, std::uint64_t sample_id) const;

  /// Render a BEV for an arbitrary pose (used by the online evaluator's test
  /// autopilot, which is not part of the world's own agent set).
  [[nodiscard]] data::BevGrid render_ego_bev(const Vec2& pos, double heading, const Route& route,
                                             double route_s, int exclude_vehicle = -1) const;

  /// Obstacle-aware allowed speed at an arbitrary pose: scans cars and
  /// pedestrians in the forward corridor. This is the expert's (and the
  /// labels') braking behaviour. `ignore_cars` is the deadlock-breaker mode
  /// (pedestrians are always respected).
  [[nodiscard]] double allowed_speed_at(const Vec2& pos, double heading, double base_speed,
                                        int exclude_vehicle = -1,
                                        bool ignore_cars = false) const;

  /// Lane-offset driving position for arc length `s` on `route` (right-hand
  /// traffic): centreline shifted lane_offset_m to the right of the tangent.
  [[nodiscard]] Vec2 lane_position(const Route& route, double s) const;

  /// True when a circle at `pos` with `radius` overlaps any car or pedestrian
  /// (peer vehicle `exclude_vehicle` excluded).
  [[nodiscard]] bool collides(const Vec2& pos, double radius, int exclude_vehicle = -1) const;

  /// Lend a worker pool for snapshot-mode stepping (non-owning, transient —
  /// never serialized). Null or absent: the snapshot phase runs inline,
  /// producing bit-identical results.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Register (or clear, with nullopt) the position of an external vehicle —
  /// the online evaluator's test autopilot — so that the world's own traffic
  /// brakes for it, the same courtesy CARLA agents extend to the ego car.
  /// The external car is never part of car_positions() or collides().
  void set_external_car(std::optional<Vec2> pos) { external_car_ = pos; }

  /// Serialize/restore the mutable world state (agents, routes, RNG streams,
  /// sim clock) into a World constructed with the same (cfg, num_vehicles,
  /// seed), so a restored world steps bit-identically. The map and the
  /// transient external-car marker are not serialized. load() throws
  /// std::exception on malformed or incompatible input.
  void save(ByteWriter& w) const;
  void load(ByteReader& r);

 private:
  void assign_new_route(CarAgent& a, Rng& rng);
  void step_car(CarAgent& a, double dt, int vehicle_index, Rng& rng);
  void step_snapshot(double dt);
  void step_peds(double dt);
  [[nodiscard]] double expert_target_speed(const CarAgent& a, int vehicle_index) const;
  /// Command/bend speed cap shared by the legacy and snapshot steppers.
  [[nodiscard]] double base_target_speed(const CarAgent& a) const;
  /// Snapshot-mode twin of allowed_speed_at: scans the tick-start obstacle
  /// grid instead of live agent state. `exclude` indexes snap_pos_ (< 0:
  /// exclude nothing; self-overlap is rejected by the corridor test anyway).
  [[nodiscard]] double allowed_speed_snapshot(const Vec2& pos, double heading,
                                              double base_speed, int exclude,
                                              bool ignore_cars) const;

  WorldConfig cfg_;
  TownMap map_;
  std::vector<CarAgent> vehicles_;
  std::vector<CarAgent> cars_;
  std::vector<PedAgent> peds_;
  std::optional<Vec2> external_car_;
  Rng route_rng_;
  Rng ped_rng_;
  double time_ = 0.0;
  ThreadPool* pool_ = nullptr;  // transient; not serialized
  // Snapshot-mode scratch (rebuilt each tick; never serialized).
  std::vector<Vec2> snap_pos_;
  UniformGrid snap_grid_;
  std::size_t snap_peds_begin_ = 0;  ///< snap_pos_ layout: cars, then peds
};

}  // namespace lbchat::sim
