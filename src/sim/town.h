// Procedural town map — the CARLA-substitute driving environment.
//
// The paper uses CARLA's largest built-in map (~1 km x 1 km, "including both
// town and rural areas"). We generate a comparable world: a dense urban street
// grid in one quarter of the map plus a sparse rural ring with connector
// roads. Roads are straight lane segments between intersection nodes; a
// precomputed occupancy bitmap answers "is this point on a road" queries in
// O(1) for BEV rendering.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

namespace lbchat::sim {

struct TownConfig {
  double extent_m = 1000.0;       ///< map side length
  int urban_grid = 6;             ///< urban intersections per side
  double urban_spacing_m = 90.0;  ///< urban block size
  double urban_origin_m = 80.0;   ///< offset of the urban grid corner
  double rural_margin_m = 60.0;   ///< distance of the rural ring from the border
  int rural_ring_nodes = 12;      ///< nodes on the rural ring
  double edge_drop_prob = 0.08;   ///< fraction of urban edges removed for variety
  double road_half_width_m = 4.0;
  double raster_cell_m = 2.0;  ///< road-bitmap resolution
};

struct RoadNode {
  Vec2 pos;
  std::vector<int> neighbors;  ///< adjacent node indices (bidirectional roads)

  [[nodiscard]] bool is_intersection() const { return neighbors.size() >= 3; }
};

class TownMap {
 public:
  /// Generate a map; always returns a single connected component.
  static TownMap generate(const TownConfig& cfg, Rng& rng);

  [[nodiscard]] const TownConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<RoadNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::pair<int, int>>& edges() const { return edges_; }
  [[nodiscard]] double extent() const { return cfg_.extent_m; }

  /// Index of the node nearest to `p`.
  [[nodiscard]] int nearest_node(const Vec2& p) const;
  /// A uniformly random node index.
  [[nodiscard]] int random_node(Rng& rng) const;
  /// A random node biased toward the urban grid (probability `urban_prob`)
  /// or the rural ring — used to give vehicles heterogeneous home regions.
  [[nodiscard]] int random_node_biased(Rng& rng, double urban_prob) const;
  [[nodiscard]] bool is_urban_node(int idx) const;

  /// True when all nodes are mutually reachable (generation guarantees this;
  /// exposed for tests).
  [[nodiscard]] bool connected() const;

  /// O(1) road-surface query against the precomputed bitmap.
  [[nodiscard]] bool on_road(const Vec2& p) const;

  /// A uniformly random on-road point (for pedestrian/bystander spawns).
  [[nodiscard]] Vec2 random_road_point(Rng& rng) const;

 private:
  void build_raster();

  TownConfig cfg_;
  std::vector<RoadNode> nodes_;
  std::vector<std::pair<int, int>> edges_;
  int urban_node_count_ = 0;  // nodes [0, urban_node_count_) are the grid

  int raster_n_ = 0;
  std::vector<std::uint8_t> road_mask_;
  std::vector<std::uint32_t> road_cells_;  // indices of on-road cells (spawns)
};

}  // namespace lbchat::sim
