// Route planning over the town lane graph, with high-level command
// extraction ("turn left", ...) — the navigation-service role in the paper:
// vehicles "have access to assistant information (e.g. future routes in next
// few minutes, which can be obtained from navigation services)".
#pragma once

#include <utility>
#include <vector>

#include "common/geometry.h"
#include "data/frame.h"
#include "sim/town.h"

namespace lbchat::sim {

/// A polyline route through road nodes, parameterized by arc length s.
class Route {
 public:
  Route() = default;
  /// Build from an ordered node sequence over `map` (>= 2 nodes).
  Route(std::vector<int> node_seq, const TownMap& map);

  [[nodiscard]] bool empty() const { return pts_.size() < 2; }
  [[nodiscard]] double length() const { return empty() ? 0.0 : cum_s_.back(); }
  [[nodiscard]] const std::vector<int>& node_sequence() const { return node_seq_; }
  [[nodiscard]] const std::vector<Vec2>& points() const { return pts_; }

  /// World position at arc length s (clamped to [0, length]).
  [[nodiscard]] Vec2 position_at(double s) const;
  /// Tangent heading (radians) at arc length s.
  [[nodiscard]] double heading_at(double s) const;

  /// High-level command for a vehicle at arc length s: the turn type of the
  /// next intersection within `lookahead` metres, else kFollow.
  [[nodiscard]] data::Command command_at(double s, double lookahead = 35.0) const;

  /// Arc length of the route point nearest to world position p (projection).
  [[nodiscard]] double project(const Vec2& p) const;

  /// Upcoming turn locations as (arc length, command) pairs (for tests).
  [[nodiscard]] const std::vector<std::pair<double, data::Command>>& turns() const {
    return turns_;
  }

 private:
  std::vector<int> node_seq_;
  std::vector<Vec2> pts_;
  std::vector<double> cum_s_;
  std::vector<std::pair<double, data::Command>> turns_;
};

/// A* shortest path between two nodes; returns an empty route when
/// from == to or no path exists (generation guarantees connectivity, so the
/// latter indicates a logic error upstream).
[[nodiscard]] Route plan_route(const TownMap& map, int from, int to);

}  // namespace lbchat::sim
