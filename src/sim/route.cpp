#include "sim/route.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace lbchat::sim {

using data::Command;

Route::Route(std::vector<int> node_seq, const TownMap& map) : node_seq_(std::move(node_seq)) {
  if (node_seq_.size() < 2) return;
  pts_.reserve(node_seq_.size());
  cum_s_.reserve(node_seq_.size());
  double s = 0.0;
  for (std::size_t i = 0; i < node_seq_.size(); ++i) {
    const Vec2 p = map.nodes()[static_cast<std::size_t>(node_seq_[i])].pos;
    if (i > 0) s += distance(pts_.back(), p);
    pts_.push_back(p);
    cum_s_.push_back(s);
  }
  // Turn classification at interior nodes. Only nodes with degree >= 3 are
  // decision points (degree-2 nodes are mere bends -> no command).
  for (std::size_t i = 1; i + 1 < node_seq_.size(); ++i) {
    const auto& node = map.nodes()[static_cast<std::size_t>(node_seq_[i])];
    if (!node.is_intersection()) continue;
    const Vec2 in_dir = (pts_[i] - pts_[i - 1]).normalized();
    const Vec2 out_dir = (pts_[i + 1] - pts_[i]).normalized();
    const double angle = wrap_angle(out_dir.heading() - in_dir.heading());
    Command cmd = Command::kStraight;
    if (angle > M_PI / 6.0) {
      cmd = Command::kLeft;
    } else if (angle < -M_PI / 6.0) {
      cmd = Command::kRight;
    }
    turns_.emplace_back(cum_s_[i], cmd);
  }
}

Vec2 Route::position_at(double s) const {
  if (empty()) return {};
  s = std::clamp(s, 0.0, length());
  const auto it = std::upper_bound(cum_s_.begin(), cum_s_.end(), s);
  if (it == cum_s_.begin()) return pts_.front();
  const auto i = static_cast<std::size_t>(std::distance(cum_s_.begin(), it));
  if (i >= pts_.size()) return pts_.back();
  const double seg = cum_s_[i] - cum_s_[i - 1];
  const double t = seg > 1e-9 ? (s - cum_s_[i - 1]) / seg : 0.0;
  return pts_[i - 1] + (pts_[i] - pts_[i - 1]) * t;
}

double Route::heading_at(double s) const {
  if (empty()) return 0.0;
  s = std::clamp(s, 0.0, length());
  auto it = std::upper_bound(cum_s_.begin(), cum_s_.end(), s);
  auto i = static_cast<std::size_t>(std::distance(cum_s_.begin(), it));
  if (i == 0) i = 1;
  if (i >= pts_.size()) i = pts_.size() - 1;
  return (pts_[i] - pts_[i - 1]).heading();
}

Command Route::command_at(double s, double lookahead) const {
  // The command stays active until well past the intersection (-10 m):
  // arc-length projection can jump ahead while the vehicle is still rounding
  // the corner, and dropping the command mid-turn strands it.
  for (const auto& [turn_s, cmd] : turns_) {
    if (turn_s >= s - 10.0 && turn_s <= s + lookahead) return cmd;
  }
  return Command::kFollow;
}

double Route::project(const Vec2& p) const {
  if (empty()) return 0.0;
  double best_s = 0.0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    const Vec2 a = pts_[i - 1];
    const Vec2 b = pts_[i];
    const Vec2 ab = b - a;
    const double len2 = ab.norm2();
    double t = len2 > 1e-12 ? (p - a).dot(ab) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const Vec2 q = a + ab * t;
    const double d = distance(p, q);
    if (d < best_d) {
      best_d = d;
      best_s = cum_s_[i - 1] + t * std::sqrt(len2);
    }
  }
  return best_s;
}

Route plan_route(const TownMap& map, int from, int to) {
  const auto n = map.nodes().size();
  if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= n ||
      static_cast<std::size_t>(to) >= n) {
    throw std::invalid_argument{"plan_route: node index out of range"};
  }
  if (from == to) return Route{};

  const auto h = [&](int a) {
    return distance(map.nodes()[static_cast<std::size_t>(a)].pos,
                    map.nodes()[static_cast<std::size_t>(to)].pos);
  };
  std::vector<double> g(n, std::numeric_limits<double>::infinity());
  std::vector<int> prev(n, -1);
  using Entry = std::pair<double, int>;  // (f, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  g[static_cast<std::size_t>(from)] = 0.0;
  open.emplace(h(from), from);
  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    if (u == to) break;
    if (f > g[static_cast<std::size_t>(u)] + h(u) + 1e-9) continue;  // stale entry
    for (const int v : map.nodes()[static_cast<std::size_t>(u)].neighbors) {
      const double cand = g[static_cast<std::size_t>(u)] +
                          distance(map.nodes()[static_cast<std::size_t>(u)].pos,
                                   map.nodes()[static_cast<std::size_t>(v)].pos);
      if (cand < g[static_cast<std::size_t>(v)] - 1e-9) {
        g[static_cast<std::size_t>(v)] = cand;
        prev[static_cast<std::size_t>(v)] = u;
        open.emplace(cand + h(v), v);
      }
    }
  }
  if (prev[static_cast<std::size_t>(to)] < 0) return Route{};
  std::vector<int> seq;
  for (int u = to; u != -1; u = prev[static_cast<std::size_t>(u)]) seq.push_back(u);
  std::reverse(seq.begin(), seq.end());
  return Route{std::move(seq), map};
}

}  // namespace lbchat::sim
