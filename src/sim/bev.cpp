#include "sim/bev.h"

#include <algorithm>
#include <cmath>

namespace lbchat::sim {

namespace {

/// Mark the cell containing ego-frame point `e` (x forward, y left) in
/// `channel`; no-op outside the raster.
void mark(data::BevGrid& g, const data::BevSpec& spec, data::BevChannel channel, const Vec2& e) {
  const int r = ego_row(spec) - static_cast<int>(std::lround(e.x / spec.cell_m));
  const int c = ego_col(spec) - static_cast<int>(std::lround(e.y / spec.cell_m));
  if (r < 0 || r >= spec.height || c < 0 || c >= spec.width) return;
  g.set(spec, static_cast<int>(channel), r, c);
}

}  // namespace

data::BevGrid render_bev(const data::BevSpec& spec, const TownMap& map, const Vec2& ego_pos,
                         double ego_heading, std::span<const Vec2> cars,
                         std::span<const Vec2> pedestrians, const Route& route, double route_s,
                         double car_radius_m) {
  data::BevGrid g{spec};

  // Road channel: sample each cell centre against the road bitmap.
  for (int r = 0; r < spec.height; ++r) {
    for (int c = 0; c < spec.width; ++c) {
      const Vec2 ego_pt{(ego_row(spec) - r) * spec.cell_m, (ego_col(spec) - c) * spec.cell_m};
      const Vec2 world_pt = to_world_frame(ego_pt, ego_pos, ego_heading);
      if (map.on_road(world_pt)) g.set(spec, static_cast<int>(data::BevChannel::kRoad), r, c);
    }
  }

  const double view_radius =
      spec.cell_m * static_cast<double>(std::max(spec.height, spec.width)) * 1.5;

  // Vehicles channel: footprint cells of each nearby car (circle of
  // car_radius_m around its centre, sampled at half-cell steps).
  for (const Vec2& car : cars) {
    if (distance(car, ego_pos) > view_radius) continue;
    const Vec2 centre = to_ego_frame(car, ego_pos, ego_heading);
    const double step = spec.cell_m * 0.5;
    for (double dx = -car_radius_m; dx <= car_radius_m; dx += step) {
      for (double dy = -car_radius_m; dy <= car_radius_m; dy += step) {
        if (dx * dx + dy * dy > car_radius_m * car_radius_m) continue;
        mark(g, spec, data::BevChannel::kVehicles, centre + Vec2{dx, dy});
      }
    }
  }

  // Pedestrians channel: point marks.
  for (const Vec2& ped : pedestrians) {
    if (distance(ped, ego_pos) > view_radius) continue;
    mark(g, spec, data::BevChannel::kPedestrians, to_ego_frame(ped, ego_pos, ego_heading));
  }

  // Route channel: the planned path ahead, sampled densely in arc length.
  if (!route.empty()) {
    const double ahead = spec.cell_m * static_cast<double>(spec.height) * 1.5;
    for (double ds = 0.0; ds <= ahead; ds += spec.cell_m * 0.75) {
      const double s = route_s + ds;
      if (s > route.length()) break;
      mark(g, spec, data::BevChannel::kRoute,
           to_ego_frame(route.position_at(s), ego_pos, ego_heading));
    }
  }

  return g;
}

}  // namespace lbchat::sim
