// Ego-centric bird-eye-view rasterization.
//
// The BEV is the model input of the driving decision task (paper §IV-A): a
// sparse binary tensor depicting the front view of the vehicle top-down.
// Channels: road surface, other vehicles, pedestrians, own planned route.
// The ego sits near the bottom-centre of the raster looking "up".
#pragma once

#include <span>

#include "common/geometry.h"
#include "data/frame.h"
#include "sim/route.h"
#include "sim/town.h"

namespace lbchat::sim {

/// Raster anchor: the ego occupies cell (ego_row(spec), width/2).
[[nodiscard]] constexpr int ego_row(const data::BevSpec& spec) { return spec.height - 3; }
[[nodiscard]] constexpr int ego_col(const data::BevSpec& spec) { return spec.width / 2; }

/// Render the BEV around pose (ego_pos, ego_heading).
/// `cars` / `pedestrians` are world positions of the other agents;
/// `route`/`route_s` identify the ego's planned path (route channel marks
/// ~45 m of it ahead of s). Pass an empty route to leave the channel blank.
[[nodiscard]] data::BevGrid render_bev(const data::BevSpec& spec, const TownMap& map,
                                       const Vec2& ego_pos, double ego_heading,
                                       std::span<const Vec2> cars,
                                       std::span<const Vec2> pedestrians, const Route& route,
                                       double route_s, double car_radius_m = 2.0);

}  // namespace lbchat::sim
