#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <utility>

namespace lbchat::obs {

std::string format_double(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e999" : (v < 0 ? "-1e999" : "0");
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string{buf, res.ptr};
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string events_jsonl(const std::vector<Event>& events, std::uint64_t dropped) {
  std::string out;
  out.reserve(events.size() * 64);
  for (const Event& e : events) {
    out += "{\"t\":";
    out += format_double(e.t);
    out += ",\"kind\":";
    append_escaped(out, to_string(e.kind));
    out += ",\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += ",\"value\":";
    out += format_double(e.value);
    out += "}\n";
  }
  if (dropped != 0) {
    out += "{\"dropped\":";
    out += std::to_string(dropped);
    out += "}\n";
  }
  return out;
}

std::string metrics_json(const Snapshot& snap) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : snap.metrics) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n  {\"name\":";
    append_escaped(out, m.name);
    out += ",\"kind\":";
    append_escaped(out, to_string(m.kind));
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"count\":";
        out += std::to_string(m.count);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":";
        out += format_double(m.value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":";
        out += std::to_string(m.count);
        out += ",\"sum\":";
        out += format_double(m.value);
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          if (i != 0) out.push_back(',');
          out += format_double(m.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i != 0) out.push_back(',');
          out += std::to_string(m.buckets[i]);
        }
        out.push_back(']');
        break;
      }
    }
    out.push_back('}');
  }
  out += "\n]}\n";
  return out;
}

std::string chrome_trace_json(const std::vector<Event>& events, const std::vector<Span>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto next = [&]() -> std::string& {
    if (!first) out.push_back(',');
    first = false;
    out += "\n ";
    return out;
  };

  next() += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
            "\"args\":{\"name\":\"sim\"}}";
  if (!spans.empty()) {
    next() += "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
              "\"args\":{\"name\":\"wallclock\"}}";
  }

  // Sim tracks: tid 0 carries fleet-wide events (a = -1), tid k vehicle k-1.
  std::set<std::int32_t> sim_tids;
  for (const Event& e : events) sim_tids.insert(e.a >= 0 ? e.a + 1 : 0);
  for (const std::int32_t tid : sim_tids) {
    auto& o = next();
    o += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    o += std::to_string(tid);
    o += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_escaped(o, tid == 0 ? std::string{"fleet"}
                               : "vehicle " + std::to_string(tid - 1));
    o += "}}";
  }
  std::set<std::uint32_t> span_tids;
  for (const Span& s : spans) span_tids.insert(s.tid);
  for (const std::uint32_t tid : span_tids) {
    auto& o = next();
    o += "{\"ph\":\"M\",\"pid\":2,\"tid\":";
    o += std::to_string(tid);
    o += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_escaped(o, "worker " + std::to_string(tid));
    o += "}}";
  }

  for (const Event& e : events) {
    auto& o = next();
    o += "{\"ph\":\"i\",\"pid\":1,\"tid\":";
    o += std::to_string(e.a >= 0 ? e.a + 1 : 0);
    o += ",\"ts\":";
    o += std::to_string(static_cast<std::int64_t>(std::llround(e.t * 1e6)));
    o += ",\"s\":\"t\",\"name\":";
    append_escaped(o, to_string(e.kind));
    o += ",\"args\":{\"a\":";
    o += std::to_string(e.a);
    o += ",\"b\":";
    o += std::to_string(e.b);
    o += ",\"value\":";
    o += format_double(e.value);
    o += "}}";
  }

  // Spans are already (tid, t0)-sorted by SpanStore::spans(); rebase to the
  // earliest start so the wall-clock process begins near ts 0.
  std::uint64_t base = 0;
  if (!spans.empty()) {
    base = spans.front().t0_ns;
    for (const Span& s : spans) base = std::min(base, s.t0_ns);
  }
  for (const Span& s : spans) {
    auto& o = next();
    o += "{\"ph\":\"X\",\"pid\":2,\"tid\":";
    o += std::to_string(s.tid);
    o += ",\"ts\":";
    o += format_double(static_cast<double>(s.t0_ns - base) / 1e3);
    o += ",\"dur\":";
    o += format_double(static_cast<double>(s.dur_ns) / 1e3);
    o += ",\"name\":";
    append_escaped(o, s.name != nullptr ? s.name : "?");
    o += "}";
  }

  out += "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON DOM + trace validation (no third-party dependencies).
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* get(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

  [[nodiscard]] std::string error() const { return error_; }

 private:
  bool fail(const char* msg) {
    if (error_.empty()) {
      error_ = std::string{msg} + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.str);
      case 't':
        if (text_.substr(pos_, 4) != "true") return fail("bad literal");
        pos_ += 4;
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (text_.substr(pos_, 5) != "false") return fail("bad literal");
        pos_ += 5;
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (text_.substr(pos_, 4) != "null") return fail("bad literal");
        pos_ += 4;
        out.type = JsonValue::Type::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // The validator only inspects ASCII keys; keep non-ASCII lossy.
            out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    double v = 0.0;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue elem;
      skip_ws();
      if (!parse_value(elem)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue val;
      skip_ws();
      if (!parse_value(val)) return false;
      out.object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string validate_chrome_trace(std::string_view json) {
  JsonValue root;
  JsonParser parser{json};
  if (!parser.parse(root)) return "parse error: " + parser.error();
  if (root.type != JsonValue::Type::kObject) return "top level is not an object";
  const JsonValue* events = root.get("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return "missing traceEvents array";
  }
  std::map<std::pair<double, double>, double> last_ts;  // (pid, tid) -> ts
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = " in traceEvents[" + std::to_string(i) + "]";
    if (e.type != JsonValue::Type::kObject) return "non-object event" + at;
    const JsonValue* ph = e.get("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString || ph->str.empty()) {
      return "missing ph" + at;
    }
    const JsonValue* pid = e.get("pid");
    if (pid == nullptr || pid->type != JsonValue::Type::kNumber) return "missing pid" + at;
    if (ph->str == "M") continue;  // metadata carries no timestamp
    const JsonValue* name = e.get("name");
    if (name == nullptr || name->type != JsonValue::Type::kString) return "missing name" + at;
    const JsonValue* tid = e.get("tid");
    if (tid == nullptr || tid->type != JsonValue::Type::kNumber) return "missing tid" + at;
    const JsonValue* ts = e.get("ts");
    if (ts == nullptr || ts->type != JsonValue::Type::kNumber) return "missing ts" + at;
    if (!std::isfinite(ts->number) || ts->number < 0) return "negative ts" + at;
    const std::pair<double, double> track{pid->number, tid->number};
    const auto it = last_ts.find(track);
    if (it != last_ts.end() && ts->number < it->second) {
      return "ts decreases on track" + at;
    }
    last_ts[track] = ts->number;
  }
  return "";
}

std::string run_report_json(const RunReport& report) {
  std::string out = "{\"approach\":";
  append_escaped(out, report.approach);
  out += ",\"seed\":";
  out += std::to_string(report.seed);
  out += ",\"duration_s\":";
  out += format_double(report.duration_s);
  out += ",\"final_mean_loss\":";
  out += format_double(report.final_mean_loss);
  out += ",\"vehicles\":[";
  bool first = true;
  for (const VehicleReport& v : report.vehicles) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n  {\"id\":";
    out += std::to_string(v.id);
    out += ",\"bytes_sent\":";
    out += std::to_string(v.bytes_sent);
    out += ",\"bytes_received\":";
    out += std::to_string(v.bytes_received);
    out += ",\"chats_started\":";
    out += std::to_string(v.chats_started);
    out += ",\"chats_completed\":";
    out += std::to_string(v.chats_completed);
    out += ",\"chats_aborted\":";
    out += std::to_string(v.chats_aborted);
    out += ",\"model_recv_started\":";
    out += std::to_string(v.model_recv_started);
    out += ",\"model_recv_completed\":";
    out += std::to_string(v.model_recv_completed);
    out += ",\"frames_rejected\":";
    out += std::to_string(v.frames_rejected);
    out += ",\"online_seconds\":";
    out += format_double(v.online_seconds);
    out += ",\"effective_model_receiving_rate\":";
    out += format_double(v.effective_model_receiving_rate);
    out += ",\"first_loss\":";
    out += format_double(v.first_loss);
    out += ",\"final_loss\":";
    out += format_double(v.final_loss);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string run_report_csv(const RunReport& report) {
  std::string out =
      "id,bytes_sent,bytes_received,chats_started,chats_completed,chats_aborted,"
      "model_recv_started,model_recv_completed,frames_rejected,online_seconds,"
      "effective_model_receiving_rate,first_loss,final_loss\n";
  for (const VehicleReport& v : report.vehicles) {
    out += std::to_string(v.id);
    out.push_back(',');
    out += std::to_string(v.bytes_sent);
    out.push_back(',');
    out += std::to_string(v.bytes_received);
    out.push_back(',');
    out += std::to_string(v.chats_started);
    out.push_back(',');
    out += std::to_string(v.chats_completed);
    out.push_back(',');
    out += std::to_string(v.chats_aborted);
    out.push_back(',');
    out += std::to_string(v.model_recv_started);
    out.push_back(',');
    out += std::to_string(v.model_recv_completed);
    out.push_back(',');
    out += std::to_string(v.frames_rejected);
    out.push_back(',');
    out += format_double(v.online_seconds);
    out.push_back(',');
    out += format_double(v.effective_model_receiving_rate);
    out.push_back(',');
    out += format_double(v.first_loss);
    out.push_back(',');
    out += format_double(v.final_loss);
    out.push_back('\n');
  }
  return out;
}

}  // namespace lbchat::obs
