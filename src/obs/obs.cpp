#include "obs/obs.h"

#include <cstdlib>
#include <string_view>

namespace lbchat::obs {

MetricsRegistry& registry() {
  static MetricsRegistry r;
  return r;
}

void reset() {
  registry().reset_values();
  tracer().clear();
  spans().clear();
}

bool init_from_env() {
  const char* env = std::getenv("LBCHAT_TRACE");
  const std::string_view v = env != nullptr ? std::string_view{env} : std::string_view{};
  bool events = false;
  bool wall = false;
  if (v == "1" || v == "on" || v == "all") {
    events = true;
    wall = true;
  } else if (v == "events") {
    events = true;
  } else if (v == "spans") {
    wall = true;
  }
  set_events_enabled(events);
  set_spans_enabled(wall);
  return events || wall;
}

}  // namespace lbchat::obs
