#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace lbchat::obs {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kChatStart: return "chat_start";
    case EventKind::kChatComplete: return "chat_complete";
    case EventKind::kChatAbort: return "chat_abort";
    case EventKind::kModelSend: return "model_send";
    case EventKind::kFrameReject: return "frame_reject";
    case EventKind::kCoresetExchange: return "coreset_exchange";
    case EventKind::kAggregate: return "aggregate";
    case EventKind::kBurstBegin: return "burst_begin";
    case EventKind::kBurstEnd: return "burst_end";
    case EventKind::kChurnOffline: return "churn_offline";
    case EventKind::kChurnOnline: return "churn_online";
    case EventKind::kBackoffExtend: return "backoff_extend";
    case EventKind::kRound: return "round";
    case EventKind::kEval: return "eval";
    case EventKind::kByzantinePayload: return "byzantine_payload";
    case EventKind::kStragglerSkip: return "straggler_skip";
  }
  return "?";
}

void EventTracer::emit(const Event& e) {
  std::lock_guard<std::mutex> lock{mu_};
  if (ring_.size() < cap_) {
    ring_.push_back(e);
    return;
  }
  ring_[next_] = e;
  next_ = (next_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<Event> EventTracer::events() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::vector<Event> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t EventTracer::dropped() const {
  std::lock_guard<std::mutex> lock{mu_};
  return dropped_;
}

void EventTracer::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock{mu_};
  cap_ = std::max<std::size_t>(cap, 1);
}

void EventTracer::clear() {
  std::lock_guard<std::mutex> lock{mu_};
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

void EventTracer::restore(std::vector<Event> events, std::uint64_t dropped) {
  std::lock_guard<std::mutex> lock{mu_};
  if (events.size() > cap_) {
    const std::size_t excess = events.size() - cap_;
    dropped += excess;
    events.erase(events.begin(), events.begin() + static_cast<std::ptrdiff_t>(excess));
  }
  ring_ = std::move(events);
  next_ = 0;  // the ring is stored oldest-first, so overwriting starts at 0
  dropped_ = dropped;
}

/// One thread's span ring. Only the owning thread writes records; spans()
/// and clear() read/reset it under the store mutex with workers quiescent.
struct SpanStore::Buffer {
  explicit Buffer(std::uint32_t tid, std::size_t cap) : tid_(tid), cap_(cap) {}

  void record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) {
    const Span s{name, t0_ns, t1_ns - t0_ns, tid_};
    if (ring_.size() < cap_) {
      ring_.push_back(s);
      return;
    }
    ring_[next_] = s;
    next_ = (next_ + 1) % ring_.size();
    ++dropped_;
  }

  std::uint32_t tid_;
  std::size_t cap_;
  std::vector<Span> ring_;
  std::size_t next_ = 0;
  std::uint64_t dropped_ = 0;
};

SpanStore::Buffer& SpanStore::local_buffer() {
  // Cache keyed on (store, epoch) so distinct stores — and a store whose
  // clear() dropped the buffers — never hand back a stale pointer.
  thread_local const SpanStore* cached_store = nullptr;
  thread_local std::uint64_t cached_epoch = 0;
  thread_local Buffer* cached = nullptr;
  {
    std::lock_guard<std::mutex> lock{mu_};
    if (cached_store != this || cached_epoch != epoch_) {
      buffers_.push_back(
          std::make_unique<Buffer>(static_cast<std::uint32_t>(buffers_.size()), cap_));
      cached = buffers_.back().get();
      cached_store = this;
      cached_epoch = epoch_;
    }
  }
  return *cached;
}

void SpanStore::record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  local_buffer().record(name, t0_ns, t1_ns);
}

std::vector<Span> SpanStore::spans() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::vector<Span> out;
  for (const auto& buf : buffers_) {
    for (std::size_t i = 0; i < buf->ring_.size(); ++i) {
      out.push_back(buf->ring_[(buf->next_ + i) % buf->ring_.size()]);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.t0_ns < b.t0_ns;
  });
  return out;
}

std::uint64_t SpanStore::dropped() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->dropped_;
  return total;
}

void SpanStore::set_capacity_per_thread(std::size_t cap) {
  std::lock_guard<std::mutex> lock{mu_};
  cap_ = std::max<std::size_t>(cap, 1);
}

void SpanStore::clear() {
  std::lock_guard<std::mutex> lock{mu_};
  buffers_.clear();
  ++epoch_;  // invalidates every thread's cached Buffer*
}

namespace {
std::atomic<bool> g_events_enabled{false};
std::atomic<bool> g_spans_enabled{false};
}  // namespace

bool events_enabled() { return g_events_enabled.load(std::memory_order_relaxed); }
bool spans_enabled() { return g_spans_enabled.load(std::memory_order_relaxed); }
void set_events_enabled(bool on) { g_events_enabled.store(on, std::memory_order_relaxed); }
void set_spans_enabled(bool on) { g_spans_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

EventTracer& tracer() {
  static EventTracer t;
  return t;
}

SpanStore& spans() {
  static SpanStore s;
  return s;
}

}  // namespace lbchat::obs
