// Exporters for the observability sinks.
//
// Three deterministic text artifacts (byte-identical at any thread count for
// the same scenario) and one mixed artifact:
//
//  * events_jsonl   — one JSON object per sim-time event (deterministic)
//  * metrics_json   — the merged registry snapshot (deterministic)
//  * run_report_*   — per-vehicle accounting table, JSON and CSV
//                     (deterministic)
//  * chrome_trace_json — Chrome trace-event format, loadable in Perfetto /
//        chrome://tracing. Sim-time events render as instants under pid 1
//        ("sim", one track per vehicle); wall-clock spans render as complete
//        events under pid 2 ("wallclock", one track per worker thread). The
//        sim section is deterministic; span timings are not, which is why
//        they live under their own process id.
//
// validate_chrome_trace() is a dependency-free structural checker shared by
// the CI smoke tool and the tests.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace lbchat::obs {

/// One JSON object per line: {"t":..,"kind":"..","a":..,"b":..,"value":..}.
/// A final {"dropped":N} line is appended when the ring overflowed.
[[nodiscard]] std::string events_jsonl(const std::vector<Event>& events, std::uint64_t dropped);

/// {"metrics":[{"name":..,"kind":..,...}]} — snapshot order (name-sorted).
[[nodiscard]] std::string metrics_json(const Snapshot& snap);

/// Chrome trace-event JSON combining sim instants and wall-clock spans.
[[nodiscard]] std::string chrome_trace_json(const std::vector<Event>& events,
                                            const std::vector<Span>& spans);

/// Structural validation: well-formed JSON, a traceEvents array of objects
/// with ph/pid fields, and non-decreasing ts within every (pid, tid) track.
/// Returns "" when valid, else a one-line description of the first problem.
[[nodiscard]] std::string validate_chrome_trace(std::string_view json);

/// Per-vehicle accounting row for the run report.
struct VehicleReport {
  int id = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t chats_started = 0;
  std::uint64_t chats_completed = 0;
  std::uint64_t chats_aborted = 0;
  std::uint64_t model_recv_started = 0;
  std::uint64_t model_recv_completed = 0;
  std::uint64_t frames_rejected = 0;
  double online_seconds = 0.0;
  /// Fraction of model receptions that started and were verified complete.
  double effective_model_receiving_rate = 0.0;
  double first_loss = 0.0;
  double final_loss = 0.0;
};

struct RunReport {
  std::string approach;
  std::uint64_t seed = 0;
  double duration_s = 0.0;
  double final_mean_loss = 0.0;
  std::vector<VehicleReport> vehicles;
};

[[nodiscard]] std::string run_report_json(const RunReport& report);
/// Header row + one row per vehicle.
[[nodiscard]] std::string run_report_csv(const RunReport& report);

/// Shortest-round-trip, locale-independent double formatting shared by every
/// exporter (std::to_chars), so deterministic values export deterministically.
[[nodiscard]] std::string format_double(double v);

}  // namespace lbchat::obs
