// Sim-time event tracing and wall-clock spans.
//
// Two strictly separated record kinds:
//
//  * Events — structured, sim-time-stamped protocol/fault occurrences
//    (chat start/abort/complete, frame reject, burst begin/end, churn
//    offline/online, backoff extension, aggregation, coreset exchange, ...).
//    They are emitted from the engine's single-threaded tick path (or from
//    strategy callbacks, which run on it), so their order and content are a
//    pure function of the scenario: the JSONL export of an enabled run is
//    byte-identical at any thread count. Stored in one bounded ring buffer
//    with drop-oldest semantics and an explicit dropped counter (no silent
//    truncation).
//
//  * Spans — RAII wall-clock timings around hot paths (conv/GEMM, local
//    training, evaluation, the wireless tick, frame encode/decode). These
//    are inherently nondeterministic, so they live in per-thread ring
//    buffers and are exported segregated from the sim-time sections (their
//    own process track in the Chrome trace; never in the JSONL/metrics
//    exports).
//
// Everything is gated by two process-wide flags (relaxed atomics): with both
// off — the default — emission points reduce to one load + branch, and runs
// are bit-identical to a build without this subsystem.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace lbchat::obs {

enum class EventKind : std::uint8_t {
  kChatStart = 0,      ///< pairwise session opened (a, b; b = -1 for RSU)
  kChatComplete,       ///< session drained gracefully (value = duration_s)
  kChatAbort,          ///< range loss / deadline / churn (value = 1 if blackout)
  kModelSend,          ///< model transfer queued (a = sender, b = receiver, value = wire bytes)
  kFrameReject,        ///< envelope/payload verification failed (a = receiver, value = 1 if model)
  kCoresetExchange,    ///< coreset absorbed (a = receiver, b = sender, value = |C|)
  kAggregate,          ///< model merged (a = receiver, b = sender or -1, value = peer weight)
  kBurstBegin,         ///< interference burst spawned (value = end time)
  kBurstEnd,           ///< interference burst expired
  kChurnOffline,       ///< vehicle dropped out (a = vehicle, value = rejoin time)
  kChurnOnline,        ///< vehicle rejoined (a = vehicle)
  kBackoffExtend,      ///< pair cooldown extended (a, b, value = consecutive failures)
  kRound,              ///< synchronization round fired (value = participants)
  kEval,               ///< fleet evaluation point (value = mean held-out loss)
  kByzantinePayload,   ///< Byzantine sender mutated a payload (a = sender, b = receiver, value = stage kind)
  kStragglerSkip,      ///< straggler skipped a train interval (a = vehicle)
};

[[nodiscard]] std::string_view to_string(EventKind kind);

/// One sim-time event. POD; every field is deterministic.
struct Event {
  double t = 0.0;  ///< simulated seconds
  EventKind kind = EventKind::kChatStart;
  std::int32_t a = -1;
  std::int32_t b = -1;
  double value = 0.0;
};

/// Bounded drop-oldest ring of sim-time events.
class EventTracer {
 public:
  void emit(const Event& e);
  /// Events in emission order (oldest first).
  [[nodiscard]] std::vector<Event> events() const;
  [[nodiscard]] std::uint64_t dropped() const;
  /// Applies to subsequently emitted events; existing content is kept.
  void set_capacity(std::size_t cap);
  void clear();
  /// Replace the ring content with `events` (oldest first) and the dropped
  /// counter with `dropped`, as if they had been emitted in order — used by
  /// checkpoint restore. If `events` exceeds the capacity, only the newest
  /// `cap` are kept and the excess is added to `dropped`.
  void restore(std::vector<Event> events, std::uint64_t dropped);

 private:
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::size_t cap_ = 1u << 18;
  std::size_t next_ = 0;  ///< overwrite position once the ring is full
  std::uint64_t dropped_ = 0;
};

/// One closed wall-clock span.
struct Span {
  const char* name = nullptr;  ///< must be a string literal
  std::uint64_t t0_ns = 0;     ///< monotonic clock
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< dense per-thread track index (registration order)
};

/// Per-thread drop-oldest rings of wall-clock spans.
class SpanStore {
 public:
  void record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns);
  /// All spans, sorted by (tid, t0) — i.e. time-ordered within each track.
  /// Call with worker threads quiescent.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::uint64_t dropped() const;
  /// Applies to buffers of threads that first record after the call.
  void set_capacity_per_thread(std::size_t cap);
  void clear();

 private:
  struct Buffer;
  Buffer& local_buffer();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::size_t cap_ = 1u << 16;
  std::uint64_t epoch_ = 1;  ///< bumped by clear() so cached buffers re-register
};

// --- process-wide enable flags (relaxed; checked on every emission point) ---
[[nodiscard]] bool events_enabled();
[[nodiscard]] bool spans_enabled();
void set_events_enabled(bool on);
void set_spans_enabled(bool on);

/// Monotonic wall clock for spans.
[[nodiscard]] std::uint64_t monotonic_ns();

// --- global sinks (one per process; see obs/obs.h for lifecycle helpers) ---
[[nodiscard]] EventTracer& tracer();
[[nodiscard]] SpanStore& spans();

/// Emit a sim-time event iff event tracing is enabled.
inline void emit(double t, EventKind kind, int a = -1, int b = -1, double value = 0.0) {
  if (events_enabled()) {
    tracer().emit(Event{t, kind, a, b, value});
  }
}

/// RAII wall-clock span; reads the clock only when span tracing is enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(spans_enabled() ? name : nullptr) {
    if (name_ != nullptr) t0_ = monotonic_ns();
  }
  ~ScopedSpan() {
    if (name_ != nullptr) spans().record(name_, t0_, monotonic_ns());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_ = 0;
};

#define LBCHAT_OBS_SPAN_CONCAT2(a, b) a##b
#define LBCHAT_OBS_SPAN_CONCAT(a, b) LBCHAT_OBS_SPAN_CONCAT2(a, b)
/// Times the enclosing scope under `name` (a string literal) when span
/// tracing is on; a relaxed load + branch otherwise.
#define LBCHAT_OBS_SPAN(name) \
  ::lbchat::obs::ScopedSpan LBCHAT_OBS_SPAN_CONCAT(lbchat_obs_span_, __LINE__) { name }

}  // namespace lbchat::obs
