#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lbchat::obs {

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

/// One thread's slice of every counter/histogram. Written only by the owning
/// thread (relaxed atomics keep it sanitizer-clean against the merging
/// reader); fixed-size so no hot-path allocation ever happens.
struct MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms * kBucketSlots> hist_buckets{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_count{};
  /// Sums in integer microunits: merging integers is order-independent, so
  /// the snapshot sum never depends on shard (i.e. thread-creation) order.
  std::array<std::atomic<std::int64_t>, kMaxHistograms> hist_sum_micro{};

  void zero() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& b : hist_buckets) b.store(0, std::memory_order_relaxed);
    for (auto& c : hist_count) c.store(0, std::memory_order_relaxed);
    for (auto& s : hist_sum_micro) s.store(0, std::memory_order_relaxed);
  }
};

namespace {

std::uint64_t next_registry_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MetricsRegistry::MetricsRegistry() : serial_(next_registry_serial()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Per-thread cache of the last (registry, shard) pair: after the first
  // touch, the hot path is one comparison plus the atomic bump.
  thread_local std::uint64_t cached_serial = 0;
  thread_local Shard* cached_shard = nullptr;
  if (cached_serial == serial_) return *cached_shard;
  std::lock_guard<std::mutex> lock{mu_};
  shards_.push_back(std::make_unique<Shard>());
  cached_serial = serial_;
  cached_shard = shards_.back().get();
  return *cached_shard;
}

CounterId MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = by_name_.find(std::string{name});
  if (it != by_name_.end()) {
    const Def& d = defs_[it->second];
    if (d.kind != MetricKind::kCounter) {
      throw std::invalid_argument{"MetricsRegistry: kind mismatch for " + std::string{name}};
    }
    return CounterId{d.slot};
  }
  if (num_counters_ >= kMaxCounters) throw std::length_error{"MetricsRegistry: counters full"};
  const CounterId id{num_counters_++};
  by_name_.emplace(std::string{name}, defs_.size());
  defs_.push_back(Def{std::string{name}, MetricKind::kCounter, id.slot, {}});
  return id;
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = by_name_.find(std::string{name});
  if (it != by_name_.end()) {
    const Def& d = defs_[it->second];
    if (d.kind != MetricKind::kGauge) {
      throw std::invalid_argument{"MetricsRegistry: kind mismatch for " + std::string{name}};
    }
    return GaugeId{d.slot};
  }
  if (num_gauges_ >= kMaxGauges) throw std::length_error{"MetricsRegistry: gauges full"};
  const GaugeId id{num_gauges_++};
  by_name_.emplace(std::string{name}, defs_.size());
  defs_.push_back(Def{std::string{name}, MetricKind::kGauge, id.slot, {}});
  return id;
}

HistogramId MetricsRegistry::histogram(std::string_view name, std::span<const double> bounds) {
  if (bounds.size() > kBucketSlots - 1) {
    throw std::invalid_argument{"MetricsRegistry: too many histogram bounds"};
  }
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument{"MetricsRegistry: histogram bounds must be sorted"};
  }
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = by_name_.find(std::string{name});
  if (it != by_name_.end()) {
    const Def& d = defs_[it->second];
    if (d.kind != MetricKind::kHistogram) {
      throw std::invalid_argument{"MetricsRegistry: kind mismatch for " + std::string{name}};
    }
    return HistogramId{d.slot};
  }
  if (num_histograms_ >= kMaxHistograms) {
    throw std::length_error{"MetricsRegistry: histograms full"};
  }
  const HistogramId id{num_histograms_++};
  by_name_.emplace(std::string{name}, defs_.size());
  defs_.push_back(
      Def{std::string{name}, MetricKind::kHistogram, id.slot, {bounds.begin(), bounds.end()}});
  return id;
}

void MetricsRegistry::add(CounterId id, std::uint64_t delta) {
  local_shard().counters[id.slot].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(GaugeId id, double value) {
  gauges_[id.slot].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(HistogramId id, double value) {
  Shard& s = local_shard();
  std::vector<double> bounds;
  {
    // Bounds are immutable after registration; copy-free lookup would need
    // the lock anyway, and observe sits off the per-sample hot path.
    std::lock_guard<std::mutex> lock{mu_};
    for (const Def& d : defs_) {
      if (d.kind == MetricKind::kHistogram && d.slot == id.slot) {
        bounds = d.bounds;
        break;
      }
    }
  }
  std::size_t bucket = bounds.size();  // overflow by default
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  s.hist_buckets[id.slot * kBucketSlots + bucket].fetch_add(1, std::memory_order_relaxed);
  s.hist_count[id.slot].fetch_add(1, std::memory_order_relaxed);
  s.hist_sum_micro[id.slot].fetch_add(std::llround(value * 1e6), std::memory_order_relaxed);
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock{mu_};
  Snapshot snap;
  snap.metrics.reserve(defs_.size());
  for (const Def& d : defs_) {
    MetricValue m;
    m.name = d.name;
    m.kind = d.kind;
    switch (d.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& sh : shards_) {
          total += sh->counters[d.slot].load(std::memory_order_relaxed);
        }
        m.count = total;
        break;
      }
      case MetricKind::kGauge:
        m.value = gauges_[d.slot].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        m.bounds = d.bounds;
        m.buckets.assign(d.bounds.size() + 1, 0);
        std::int64_t sum_micro = 0;
        for (const auto& sh : shards_) {
          m.count += sh->hist_count[d.slot].load(std::memory_order_relaxed);
          sum_micro += sh->hist_sum_micro[d.slot].load(std::memory_order_relaxed);
          for (std::size_t b = 0; b < m.buckets.size(); ++b) {
            m.buckets[b] +=
                sh->hist_buckets[d.slot * kBucketSlots + b].load(std::memory_order_relaxed);
          }
        }
        m.value = static_cast<double>(sum_micro) / 1e6;
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock{mu_};
  for (const auto& sh : shards_) sh->zero();
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

void MetricsRegistry::restore(const Snapshot& snap) {
  reset_values();
  Shard& shard = local_shard();  // all restored state lands in one shard
  for (const MetricValue& m : snap.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        if (m.count > 0) add(counter(m.name), m.count);
        break;
      case MetricKind::kGauge:
        set(gauge(m.name), m.value);
        break;
      case MetricKind::kHistogram: {
        const HistogramId id = histogram(m.name, m.bounds);  // throws on bound mismatch
        if (m.buckets.size() != m.bounds.size() + 1) {
          throw std::invalid_argument{"MetricsRegistry::restore: bucket count mismatch"};
        }
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          shard.hist_buckets[id.slot * kBucketSlots + b].fetch_add(m.buckets[b],
                                                                   std::memory_order_relaxed);
        }
        shard.hist_count[id.slot].fetch_add(m.count, std::memory_order_relaxed);
        shard.hist_sum_micro[id.slot].fetch_add(std::llround(m.value * 1e6),
                                                std::memory_order_relaxed);
        break;
      }
    }
  }
}

}  // namespace lbchat::obs
