// Process-wide observability surface: the global metrics registry, the event
// tracer and span store (from obs/trace.h), and lifecycle helpers.
//
// Typical use from a binary:
//
//   lbchat::obs::init_from_env();          // honours LBCHAT_TRACE
//   ... run the simulation ...
//   write_file(out, lbchat::obs::chrome_trace_json(...));   // obs/export.h
//
// or explicitly:
//
//   lbchat::obs::reset();
//   lbchat::obs::set_events_enabled(true);
#pragma once

#include "obs/registry.h"
#include "obs/trace.h"

namespace lbchat::obs {

/// The process-wide metrics registry. Handles obtained from it stay valid for
/// the process lifetime (reset() clears values, not definitions).
[[nodiscard]] MetricsRegistry& registry();

/// Clear all collected data — metric values, events, spans — without touching
/// the enable flags or metric definitions. Call between runs so exports only
/// contain the run that produced them.
void reset();

/// Configure from the LBCHAT_TRACE environment variable:
///   unset/"" / "0" / "off"  -> everything disabled (the default)
///   "1" / "on" / "all"      -> events + spans
///   "events"                -> sim-time events only (deterministic exports)
///   "spans"                 -> wall-clock spans only
/// Returns true when anything was enabled.
bool init_from_env();

}  // namespace lbchat::obs
