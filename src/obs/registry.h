// Fleet-wide metrics registry: named counters, gauges, and histograms.
//
// Counters and histograms are sharded per thread — the hot-path `add` /
// `observe` is a relaxed atomic bump in a shard only the calling thread
// writes — and `snapshot()` merges the shards into one deterministic view:
// counter totals and histogram bucket counts are integer sums (commutative,
// so the result is independent of thread count and scheduling), histogram
// sums are accumulated in integer microunits for the same reason, and the
// merged metrics are sorted by name. Gauges are plain last-write slots meant
// to be set from the single-threaded simulation path (e.g. publishing
// TransferStats totals at the end of a run).
//
// Determinism contract: everything a snapshot exposes is a function of the
// *simulation*, never of wall-clock time or thread scheduling — wall-clock
// measurements belong in the span store (obs/trace.h), which is exported
// segregated from the deterministic sections.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lbchat::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricKind kind);

// Typed handles: cheap value types returned by registration, resolved to a
// direct slot index on the hot path. Registering the same name twice returns
// the same handle (the kind must match).
struct CounterId {
  std::uint32_t slot = 0;
};
struct GaugeId {
  std::uint32_t slot = 0;
};
struct HistogramId {
  std::uint32_t slot = 0;
};

/// One merged metric in a snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  ///< counter total, or histogram observation count
  double value = 0.0;       ///< gauge value, or histogram sum
  std::vector<double> bounds;           ///< histogram upper bounds (empty otherwise)
  std::vector<std::uint64_t> buckets;   ///< bounds.size()+1 entries (last = overflow)
};

/// Deterministic merged view of the registry, sorted by metric name.
struct Snapshot {
  std::vector<MetricValue> metrics;

  /// Lookup helper for tests/reports; nullptr when absent.
  [[nodiscard]] const MetricValue* find(std::string_view name) const;
};

class MetricsRegistry {
 public:
  /// Hard slot caps: shards are fixed-size arrays so the hot path never
  /// allocates or resizes (a growing vector would race with snapshot()).
  static constexpr std::size_t kMaxCounters = 256;
  static constexpr std::size_t kMaxGauges = 128;
  static constexpr std::size_t kMaxHistograms = 64;
  /// Bucket slots per histogram, including the overflow bucket.
  static constexpr std::size_t kBucketSlots = 16;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (get-or-create by name; throws on kind mismatch or
  // slot exhaustion) ---
  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  /// `bounds` are strictly increasing upper bucket bounds (at most
  /// kBucketSlots-1 of them); an observation lands in the first bucket whose
  /// bound is >= value, or the overflow bucket.
  HistogramId histogram(std::string_view name, std::span<const double> bounds);

  // --- hot path ---
  void add(CounterId id, std::uint64_t delta = 1);
  void set(GaugeId id, double value);
  void observe(HistogramId id, double value);

  /// Merge all shards into a deterministic, name-sorted snapshot. Call with
  /// worker threads quiescent (between simulation phases / after a run).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every counter/gauge/histogram value. Metric *definitions* (names,
  /// handles) survive, so cached handles stay valid across runs.
  void reset_values();

  /// Reset all values, then re-apply `snap` — registering any missing
  /// metrics — so a subsequent snapshot() reproduces `snap` exactly (modulo
  /// metrics registered in this process but absent from `snap`, which read
  /// zero). Used by checkpoint restore. Throws std::exception on kind or
  /// bucket-shape mismatches with already-registered metrics.
  void restore(const Snapshot& snap);

 private:
  struct Shard;
  struct Def {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;
    std::vector<double> bounds;  // histograms only
  };

  Shard& local_shard();

  const std::uint64_t serial_;  ///< distinguishes registries for the TL cache
  mutable std::mutex mu_;
  std::vector<Def> defs_;
  std::unordered_map<std::string, std::size_t> by_name_;
  std::uint32_t num_counters_ = 0;
  std::uint32_t num_gauges_ = 0;
  std::uint32_t num_histograms_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
};

}  // namespace lbchat::obs
