#include "data/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace lbchat::data {

void WeightedDataset::add(Sample s) {
  if (s.weight < 0.0) throw std::invalid_argument{"WeightedDataset::add: negative weight"};
  ids_.insert(s.id);
  total_weight_ += s.weight;
  cumulative_weight_.push_back(total_weight_);
  samples_.push_back(std::move(s));
}

std::size_t WeightedDataset::absorb(std::span<const Sample> samples, double absorbed_weight) {
  std::size_t added = 0;
  for (const Sample& s : samples) {
    if (ids_.count(s.id) > 0) continue;
    Sample copy = s;
    if (absorbed_weight >= 0.0) copy.weight = absorbed_weight;
    add(std::move(copy));
    ++added;
  }
  return added;
}

std::vector<std::size_t> WeightedDataset::sample_batch(Rng& rng, std::size_t batch) const {
  if (samples_.empty()) throw std::logic_error{"WeightedDataset::sample_batch: empty dataset"};
  std::vector<std::size_t> out;
  out.reserve(batch);
  if (total_weight_ <= 0.0) {
    // All-zero weights degenerate to uniform sampling.
    for (std::size_t b = 0; b < batch; ++b) out.push_back(rng.uniform_index(samples_.size()));
    return out;
  }
  for (std::size_t b = 0; b < batch; ++b) {
    const double u = rng.uniform(0.0, total_weight_);
    const auto it = std::upper_bound(cumulative_weight_.begin(), cumulative_weight_.end(), u);
    auto idx = static_cast<std::size_t>(std::distance(cumulative_weight_.begin(), it));
    if (idx >= samples_.size()) idx = samples_.size() - 1;
    out.push_back(idx);
  }
  return out;
}

std::array<std::size_t, kNumCommands> WeightedDataset::command_histogram() const {
  std::array<std::size_t, kNumCommands> h{};
  for (const Sample& s : samples_) ++h[static_cast<std::size_t>(s.command)];
  return h;
}

}  // namespace lbchat::data
