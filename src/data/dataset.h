// Weighted dataset store (paper §II-A): each vehicle holds a local dataset of
// weighted samples that expands over time by absorbing received coresets.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "data/frame.h"

namespace lbchat::data {

/// A vehicle's local dataset D_i. Samples carry their original weights w(d);
/// the dataset supports weighted minibatch sampling for SGD and merging in
/// received coresets (whose in-coreset weights w_C(d) are dropped on
/// absorption — the paper keeps "the original weights w(d) of all data samples
/// in the expanded local dataset ... the same", §III-D).
class WeightedDataset {
 public:
  WeightedDataset() = default;
  explicit WeightedDataset(BevSpec spec) : spec_(spec) {}

  void add(Sample s);
  /// Absorb samples (e.g. a received coreset). Samples whose id is already
  /// present are skipped so repeated encounters do not duplicate data. A
  /// non-negative `absorbed_weight` overrides the incoming weights; the
  /// default keeps each sample's original w(d) (carried inside the coreset),
  /// so command balance survives absorption.
  /// Returns the number of samples actually added.
  std::size_t absorb(std::span<const Sample> samples, double absorbed_weight = -1.0);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const { return samples_[i]; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const BevSpec& spec() const { return spec_; }

  [[nodiscard]] double total_weight() const { return total_weight_; }

  /// w(d)-weighted minibatch sampling with replacement; returns indices.
  [[nodiscard]] std::vector<std::size_t> sample_batch(Rng& rng, std::size_t batch) const;

  /// Per-command sample counts (diagnostics + heterogeneity measurements).
  [[nodiscard]] std::array<std::size_t, kNumCommands> command_histogram() const;

  [[nodiscard]] bool contains(std::uint64_t id) const { return ids_.count(id) > 0; }

 private:
  BevSpec spec_ = kDefaultBevSpec;
  std::vector<Sample> samples_;
  std::vector<double> cumulative_weight_;  // prefix sums for O(log n) sampling
  double total_weight_ = 0.0;
  // Set of sample ids for dedup; a sorted vector would also do but the
  // dataset mutates often during encounters.
  std::unordered_set<std::uint64_t> ids_;
};

}  // namespace lbchat::data
