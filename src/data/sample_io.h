// Wire serialization of training frames (data::Sample).
//
// Lossless round trip: BEV packed to bits, command byte, float waypoints,
// double weight, plus provenance. Readers validate structure (command range,
// BEV size against the agreed BevSpec) and throw rather than return garbage —
// frames arrive over the radio inside a CRC envelope (common/frame.h), but a
// validating deserializer is the second line of defence.
#pragma once

#include <cmath>
#include <stdexcept>

#include "common/bytes.h"
#include "common/frame.h"
#include "data/frame.h"

namespace lbchat::data {

/// Largest importance weight a deserialized sample may carry. Collected
/// weights live in [0.25, 10] (data/collector.cpp); the cap leaves orders of
/// magnitude of headroom for merged/reweighted coresets while rejecting the
/// non-finite and astronomically scaled values a hostile sender could use to
/// dominate any weighted average.
inline constexpr double kMaxWireSampleWeight = 1e6;

/// Pack a binary occupancy raster to bits, LSB-first within each byte.
inline std::vector<std::uint8_t> pack_bev(const BevGrid& bev) {
  std::vector<std::uint8_t> out((bev.cells.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bev.cells.size(); ++i) {
    if (bev.cells[i] != 0) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

inline BevGrid unpack_bev(std::span<const std::uint8_t> packed, const BevSpec& spec) {
  const auto numel = static_cast<std::size_t>(spec.numel());
  if (packed.size() != (numel + 7) / 8) {
    throw std::runtime_error{"unpack_bev: packed size does not match BevSpec"};
  }
  BevGrid bev{spec};
  for (std::size_t i = 0; i < numel; ++i) {
    bev.cells[i] = (packed[i / 8] >> (i % 8)) & 1u;
  }
  return bev;
}

inline void write_sample(ByteWriter& w, const Sample& s) {
  w.write_u8(static_cast<std::uint8_t>(s.command));
  const auto packed = pack_bev(s.bev);
  w.write_bytes(packed);
  for (const float v : s.waypoints) w.write_f32(v);
  w.write_f64(s.weight);
  w.write_u64(s.id);
  w.write_u32(s.source_vehicle);
}

/// Reads and validates one frame against the fleet-wide `spec`. Throws
/// std::out_of_range (truncated), std::runtime_error (command out of range,
/// BEV size mismatch), or WireValueError (non-finite / out-of-range weight) —
/// never constructs a structurally invalid Sample.
inline Sample read_sample(ByteReader& r, const BevSpec& spec) {
  Sample s;
  const std::uint8_t cmd = r.read_u8();
  if (cmd >= static_cast<std::uint8_t>(kNumCommands)) {
    throw std::runtime_error{"read_sample: command out of range"};
  }
  s.command = static_cast<Command>(cmd);
  s.bev = unpack_bev(r.read_bytes(), spec);
  for (float& v : s.waypoints) v = r.read_f32();
  s.weight = r.read_f64();
  if (!std::isfinite(s.weight) || s.weight < 0.0 || s.weight > kMaxWireSampleWeight) {
    throw WireValueError{"read_sample: weight out of range"};
  }
  s.id = r.read_u64();
  s.source_vehicle = r.read_u32();
  return s;
}

}  // namespace lbchat::data
