// Data types for the BEV-based driving decision-making task (paper §IV-A).
//
// Each frame a vehicle collects contains the current bird-eye-view (BEV) of
// its surroundings, the next high-level navigation command, and the next few
// waypoints the expert planned — exactly the tuple the paper's imitation
// learning model ([19]) trains on, at miniature scale.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace lbchat::data {

/// High-level navigation command from the route planner (as in CARLA's
/// conditional imitation learning benchmarks).
enum class Command : std::uint8_t {
  kFollow = 0,    ///< follow the lane
  kLeft = 1,      ///< turn left at the next intersection
  kRight = 2,     ///< turn right at the next intersection
  kStraight = 3,  ///< go straight through the next intersection
};

inline constexpr int kNumCommands = 4;

/// BEV channel layout. The BEV is a sparse binary tensor depicting the front
/// view of the vehicle top-down (paper §IV-A); our miniature version keeps the
/// same structure with four channels.
enum class BevChannel : int {
  kRoad = 0,         ///< drivable surface
  kVehicles = 1,     ///< other cars (background traffic + peers)
  kPedestrians = 2,  ///< pedestrians
  kRoute = 3,        ///< the vehicle's own planned route ahead
};

/// Geometry of the BEV raster. The ego vehicle sits at the bottom-centre
/// looking "up" (+x forward maps to -row).
struct BevSpec {
  int channels = 4;
  int height = 16;
  int width = 16;
  double cell_m = 2.0;  ///< metres per cell

  [[nodiscard]] constexpr int numel() const { return channels * height * width; }
  friend constexpr bool operator==(const BevSpec&, const BevSpec&) = default;
};

inline constexpr BevSpec kDefaultBevSpec{};

/// Binary occupancy raster, row-major [channel][row][col]; one byte per cell
/// in memory (the wire format packs to bits, see data::packed_bev_bytes).
struct BevGrid {
  std::vector<std::uint8_t> cells;  // 0 or 1, size = spec.numel()

  BevGrid() = default;
  explicit BevGrid(const BevSpec& spec) : cells(static_cast<std::size_t>(spec.numel()), 0) {}

  [[nodiscard]] std::uint8_t at(const BevSpec& spec, int c, int r, int col) const {
    return cells[static_cast<std::size_t>((c * spec.height + r) * spec.width + col)];
  }
  void set(const BevSpec& spec, int c, int r, int col, std::uint8_t v = 1) {
    cells[static_cast<std::size_t>((c * spec.height + r) * spec.width + col)] = v;
  }
};

/// Number of future waypoints the model predicts.
inline constexpr int kNumWaypoints = 4;
/// Scale (metres) that normalizes ego-frame waypoint coordinates to ~[-1, 1].
inline constexpr double kWaypointScale = 20.0;

/// One training frame: (BEV, command) -> waypoints, plus bookkeeping.
struct Sample {
  BevGrid bev;
  Command command = Command::kFollow;
  /// Normalized ego-frame waypoints, interleaved (x0, y0, x1, y1, ...).
  std::array<float, 2 * kNumWaypoints> waypoints{};
  /// Original weight w(d) of the sample (paper Eq. (2)).
  double weight = 1.0;
  /// Globally unique sample id (vehicle id in the high bits, counter in low).
  std::uint64_t id = 0;
  /// Vehicle that collected the frame (provenance; used by DFL-DDS diversity).
  std::uint32_t source_vehicle = 0;
};

/// Logical wire size of one frame with simple lossless packing: BEV packed to
/// bits + command byte + float waypoints + weight. The network layer rescales
/// this to paper-scale sizes via net::WireSizeModel.
[[nodiscard]] constexpr std::size_t packed_sample_bytes(const BevSpec& spec) {
  return static_cast<std::size_t>((spec.numel() + 7) / 8) + 1 + 2 * kNumWaypoints * 4 + 8;
}

}  // namespace lbchat::data
