// Pairwise chat walkthrough: the LbChat protocol between two vehicles,
// narrated step by step (paper §III, Fig. 1).
//
// Two vehicles with different home regions (urban vs rural) collect local
// datasets, train briefly, then "chat": exchange coresets, evaluate each
// other's models on them, build the phi mappings, solve Eq. (7) for the
// compression ratios, exchange top-k-compressed models, and aggregate with
// the coreset-weighted rule of Eq. (8).
//
// Run:  ./build/examples/pairwise_chat

#include <cstdio>

#include "core/compress_opt.h"
#include "coreset/coreset.h"
#include "net/wireless.h"
#include "nn/optim.h"
#include "sim/world.h"

int main() {
  using namespace lbchat;

  // --- Two vehicles with different experiences -----------------------------
  sim::WorldConfig wc;
  sim::World world{wc, 2, /*seed=*/3};
  data::WeightedDataset ds_a{wc.bev};
  data::WeightedDataset ds_b{wc.bev};
  for (std::uint64_t f = 0; f < 500; ++f) {
    world.step(0.5);
    ds_a.add(world.collect_sample(0, f));
    ds_b.add(world.collect_sample(1, (1ull << 32) | f));
  }
  const auto train = [](nn::DrivingPolicy& m, const data::WeightedDataset& ds, Rng rng) {
    nn::Adam opt{1e-3};
    for (int step = 0; step < 400; ++step) {
      const auto idx = ds.sample_batch(rng, 32);
      std::vector<const data::Sample*> batch;
      for (const auto i : idx) batch.push_back(&ds[i]);
      m.train_batch(batch, opt);
    }
  };
  nn::DrivingPolicy model_a;
  nn::DrivingPolicy model_b;
  Rng rng{11};
  train(model_a, ds_a, rng.fork("a"));
  train(model_b, ds_b, rng.fork("b"));
  std::printf("vehicle A: %zu frames;  vehicle B: %zu frames\n", ds_a.size(), ds_b.size());

  // --- Step 1: coreset construction (Algorithm 1) --------------------------
  coreset::CoresetConfig ccfg;
  ccfg.target_size = 100;
  Rng cs_rng = rng.fork("coreset");
  const auto cs_a = coreset::build_layered_coreset(ds_a, model_a, ccfg, cs_rng);
  const auto cs_b = coreset::build_layered_coreset(ds_b, model_b, ccfg, cs_rng);
  const net::WireSizeModel wire;
  std::printf("coresets: |C_A|=%zu |C_B|=%zu (~%.2f MB each on the wire, model %.0f MB)\n",
              cs_a.size(), cs_b.size(),
              wire.coreset_bytes(cs_a.size()) / 1048576.0, wire.model_bytes / 1048576.0);

  // --- Step 2: cross-evaluation (value assessment) -------------------------
  const coreset::PenaltyConfig penalty;
  const double a_on_ca = core::normalized_coreset_loss(model_a, cs_a, penalty);
  const double a_on_cb = core::normalized_coreset_loss(model_a, cs_b, penalty);
  const double b_on_ca = core::normalized_coreset_loss(model_b, cs_a, penalty);
  const double b_on_cb = core::normalized_coreset_loss(model_b, cs_b, penalty);
  std::printf("losses: f(A;C_A)=%.4f f(A;C_B)=%.4f f(B;C_A)=%.4f f(B;C_B)=%.4f\n",
              a_on_ca, a_on_cb, b_on_ca, b_on_cb);
  std::printf("value of B's model to A: %.4f   value of A's model to B: %.4f\n",
              std::max(a_on_cb - b_on_cb, 0.0), std::max(b_on_ca - a_on_ca, 0.0));

  // --- Step 3: phi mappings + Eq. (7) --------------------------------------
  core::CompressionProblem prob;
  prob.loss_i_on_cj = a_on_cb;
  prob.loss_j_on_ci = b_on_ca;
  prob.phi_i = core::PhiMapping::build(model_a, cs_a, penalty);
  prob.phi_j = core::PhiMapping::build(model_b, cs_b, penalty);
  prob.model_bytes = static_cast<double>(wire.model_bytes);
  prob.bandwidth_bps = 31e6;
  prob.time_budget_s = 15.0;
  prob.contact_s = 40.0;
  prob.lambda_c = 0.0005;
  std::printf("phi_A samples:");
  for (std::size_t i = 0; i < prob.phi_i.sample_psis().size(); ++i) {
    std::printf(" (%.3f -> %.4f)", prob.phi_i.sample_psis()[i], prob.phi_i.sample_losses()[i]);
  }
  std::printf("\n");
  const core::CompressionDecision d = core::optimize_compression(prob);
  std::printf("Eq.(7): psi_A=%.2f psi_B=%.2f  T_c=%.1fs  gains=(to B: %.4f, to A: %.4f)\n",
              d.psi_i, d.psi_j, d.exchange_time_s, d.gain_to_j, d.gain_to_i);

  // --- Step 4: compressed exchange + Eq. (8) aggregation --------------------
  if (d.psi_j > 0.0) {
    const nn::SparseModel wire_model = nn::compress_for_psi(model_b.params(), d.psi_j);
    nn::DrivingPolicy received{model_a.config(), 0};
    received.set_params(wire_model.densify());
    const auto joint = coreset::merge_coresets(cs_a, cs_b);
    const double l_self = core::normalized_coreset_loss(model_a, joint, penalty);
    const double l_peer = core::normalized_coreset_loss(received, joint, penalty);
    const double w_self = l_peer / (l_self + l_peer);
    const double w_peer = l_self / (l_self + l_peer);
    std::printf("aggregation on C_A u C_B: losses (self %.4f, recv %.4f) -> weights (%.2f, %.2f)\n",
                l_self, l_peer, w_self, w_peer);
    auto params = model_a.params();
    const auto peer = received.params();
    for (std::size_t k = 0; k < params.size(); ++k) {
      params[k] = static_cast<float>(w_self * params[k] + w_peer * peer[k]);
    }
    const double after = core::normalized_coreset_loss(model_a, joint, penalty);
    std::printf("A's loss on the joint coreset: before %.4f -> after aggregation %.4f\n",
                l_self, after);
  } else {
    std::printf("Eq.(7) decided B's model is not worth receiving at this encounter.\n");
  }

  // --- Step 5: dataset expansion (paper §III-D) -----------------------------
  const auto added = ds_a.absorb(cs_b.samples);
  std::printf("A absorbed %zu of B's coreset frames; local dataset now %zu frames\n",
              added, ds_a.size());
  return 0;
}
