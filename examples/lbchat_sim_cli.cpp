// lbchat_sim_cli: run any approach/configuration from the command line and
// print the metrics the paper reports — loss curve, receiving rate, and
// (optionally) driving success rates.
//
// Usage:
//   lbchat_sim_cli [--strategy NAME] [--strategy-opt KEY=VALUE]...
//                  [--list-strategies] [--vehicles N] [--duration S]
//                  [--coreset N] [--seed N] [--no-wireless-loss] [--eval]
//                  [--kernel auto|scalar|avx2|neon] [--int8-eval]
//                  [--byzantine-frac F] [--straggler-frac F]
//                  [--trace-out F] [--events-out F] [--metrics-out F]
//                  [--report-out F] [--checkpoint-out F] [--resume-from F]
//                  [--checkpoint-every S]
//
// Strategies come from the registry (see --list-strategies for names and
// per-strategy options); --approach is a legacy alias of --strategy.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/bytes.h"
#include "engine/checkpoint.h"
#include "engine/fleet.h"
#include "engine/report.h"
#include "eval/online.h"
#include "nn/kernel_dispatch.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: lbchat_sim_cli [--strategy NAME] [--strategy-opt KEY=VALUE]...\n"
               "                      [--list-strategies]\n"
               "                      [--vehicles N] [--duration S]\n"
               "                      [--num-vehicles N] [--collect-duration S]\n"
               "                      [--coreset N] [--seed N] [--threads N]\n"
               "                      [--no-wireless-loss] [--eval]\n"
               "                      [--kernel auto|scalar|avx2|neon] [--int8-eval]\n"
               "                      [--byzantine-frac F] [--straggler-frac F]\n"
               "                      [--trace-out FILE] [--events-out FILE]\n"
               "                      [--metrics-out FILE] [--report-out FILE]\n"
               "  --strategy NAME   registry name (--approach is a legacy alias)\n"
               "  --strategy-opt KEY=VALUE  set a per-strategy tunable (repeatable;\n"
               "                    keys must exist in the strategy's schema)\n"
               "  --list-strategies print every registered strategy with its\n"
               "                    option schema, then exit\n"
               "  --threads N       worker lanes for per-vehicle training/eval\n"
               "                    (0 = all hardware threads, 1 = sequential;\n"
               "                    results are bit-identical for any value)\n"
               "  --kernel NAME     GEMM backend: auto (default; best available),\n"
               "                    scalar (bit-reproduces committed goldens),\n"
               "                    avx2, neon; errors if NAME is unavailable on\n"
               "                    this build/CPU (LBCHAT_KERNEL is the env\n"
               "                    equivalent, with warn-and-fallback instead)\n"
               "  --int8-eval       score coreset values and eval losses with the\n"
               "                    int8-quantized forward path (training stays\n"
               "                    fp32); changes run numerics + fingerprint\n"
               "  --num-vehicles N  metro scaling: grow the fleet to N while the\n"
               "                    town tiles to keep vehicle density constant,\n"
               "                    and switch on the spatial index, snapshot\n"
               "                    mobility, and parallel session ticks\n"
               "                    (--vehicles changes the count on a fixed map)\n"
               "  --collect-duration S  length of the data-collection phase\n"
               "  --byzantine-frac F  seed F*N Byzantine vehicles (sign-flipped\n"
               "                    models, inflated coreset weights, lying\n"
               "                    assist info; frames stay CRC-valid)\n"
               "  --straggler-frac F  heterogeneous fleet: F*N compute\n"
               "                    stragglers, F*N slow radios, dataset skew\n"
               "  --trace-out F     Chrome trace-event JSON (open in Perfetto);\n"
               "                    enables sim-event + wall-clock span tracing\n"
               "  --events-out F    sim-time event log, one JSON object per line\n"
               "  --metrics-out F   merged metrics-registry snapshot as JSON\n"
               "  --report-out F    per-vehicle run report (.csv => CSV, else JSON)\n"
               "  --checkpoint-out F   write a run-state checkpoint at the horizon\n"
               "  --resume-from F      restore run state from a checkpoint first\n"
               "  --checkpoint-every S also checkpoint periodically (sim seconds;\n"
               "                       overwrites --checkpoint-out each time)\n");
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok = out.empty() || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

bool save_checkpoint_file(const lbchat::engine::FleetSim& sim, const std::string& path) {
  lbchat::ByteWriter w;
  sim.save_checkpoint(w);
  const auto& bytes = w.bytes();
  return write_file(path, std::string{bytes.begin(), bytes.end()});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbchat;

  std::string approach_name = "LbChat";
  baselines::StrategyOptions strategy_opts;
  engine::ScenarioConfig cfg;
  cfg.num_vehicles = 8;
  cfg.duration_s = 900.0;
  bool run_eval = false;
  std::string trace_out;
  std::string events_out;
  std::string metrics_out;
  std::string report_out;
  std::string checkpoint_out;
  std::string resume_from;
  double checkpoint_every = 0.0;
  int metro_vehicles = 0;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--strategy") == 0 || std::strcmp(argv[i], "--approach") == 0) {
      approach_name = need_value(argv[i]);
    } else if (std::strcmp(argv[i], "--strategy-opt") == 0) {
      const std::string kv = need_value("--strategy-opt");
      const std::size_t eq = kv.find('=');
      if (eq == 0 || eq == std::string::npos) {
        std::fprintf(stderr, "--strategy-opt expects KEY=VALUE, got '%s'\n", kv.c_str());
        return 2;
      }
      strategy_opts.set(kv.substr(0, eq), std::atof(kv.c_str() + eq + 1));
    } else if (std::strcmp(argv[i], "--list-strategies") == 0) {
      for (const std::string& name : baselines::registry().list()) {
        std::printf("%s\n", name.c_str());
        for (const auto& opt : baselines::registry().option_schema(name)) {
          std::printf("  --strategy-opt %s=%g  %s\n", opt.name.c_str(), opt.default_value,
                      opt.description.c_str());
        }
      }
      return 0;
    } else if (std::strcmp(argv[i], "--vehicles") == 0) {
      cfg.num_vehicles = std::atoi(need_value("--vehicles"));
    } else if (std::strcmp(argv[i], "--num-vehicles") == 0) {
      metro_vehicles = std::atoi(need_value("--num-vehicles"));
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      cfg.duration_s = std::atof(need_value("--duration"));
    } else if (std::strcmp(argv[i], "--collect-duration") == 0) {
      cfg.collect_duration_s = std::atof(need_value("--collect-duration"));
    } else if (std::strcmp(argv[i], "--coreset") == 0) {
      cfg.coreset_size = static_cast<std::size_t>(std::atoi(need_value("--coreset")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      cfg.num_threads = std::atoi(need_value("--threads"));
    } else if (std::strcmp(argv[i], "--byzantine-frac") == 0) {
      cfg.adversary.byzantine_frac = std::atof(need_value("--byzantine-frac"));
    } else if (std::strcmp(argv[i], "--straggler-frac") == 0) {
      // One flag drives the whole heterogeneity profile: the same fraction
      // of compute stragglers and slow radios, plus moderate dataset skew.
      const double frac = std::atof(need_value("--straggler-frac"));
      cfg.hetero.straggler_frac = frac;
      cfg.hetero.slow_radio_frac = frac;
      cfg.hetero.dataset_skew = frac > 0.0 ? 0.5 : 0.0;
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      const std::string name = need_value("--kernel");
      if (name != "auto") {
        const auto parsed = nn::parse_kernel_path(name);
        if (!parsed.has_value()) {
          std::fprintf(stderr, "--kernel expects auto/scalar/avx2/neon, got '%s'\n", name.c_str());
          return 2;
        }
        if (!nn::kernel_path_available(*parsed)) {
          std::fprintf(stderr, "--kernel %s is not available on this build/CPU\n", name.c_str());
          return 2;
        }
        nn::set_kernel_path(*parsed);
      }
    } else if (std::strcmp(argv[i], "--int8-eval") == 0) {
      cfg.int8_eval.enabled = true;
    } else if (std::strcmp(argv[i], "--no-wireless-loss") == 0) {
      cfg.wireless_loss = false;
    } else if (std::strcmp(argv[i], "--eval") == 0) {
      run_eval = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = need_value("--trace-out");
    } else if (std::strcmp(argv[i], "--events-out") == 0) {
      events_out = need_value("--events-out");
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = need_value("--metrics-out");
    } else if (std::strcmp(argv[i], "--report-out") == 0) {
      report_out = need_value("--report-out");
    } else if (std::strcmp(argv[i], "--checkpoint-out") == 0) {
      checkpoint_out = need_value("--checkpoint-out");
    } else if (std::strcmp(argv[i], "--resume-from") == 0) {
      resume_from = need_value("--resume-from");
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      checkpoint_every = std::atof(need_value("--checkpoint-every"));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage();
      return 2;
    }
  }

  std::unique_ptr<engine::Strategy> strategy;
  try {
    strategy = baselines::registry().make(approach_name, strategy_opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage();
    return 2;
  }
  // Metro scaling last, so it composes with --vehicles (which then sets the
  // base the town tiles up from) regardless of flag order.
  if (metro_vehicles > 0) engine::apply_metro_scale(cfg, metro_vehicles);
  if (cfg.num_vehicles < 2 || cfg.duration_s <= 0.0) {
    std::fprintf(stderr, "need at least 2 vehicles and a positive duration\n");
    return 2;
  }
  if (cfg.num_threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }

  std::printf(
      "approach=%s vehicles=%d duration=%.0fs coreset=%zu wireless_loss=%d seed=%llu "
      "threads=%d kernel=%s int8_eval=%d\n",
      approach_name.c_str(), cfg.num_vehicles, cfg.duration_s, cfg.coreset_size,
      cfg.wireless_loss ? 1 : 0, static_cast<unsigned long long>(cfg.seed), cfg.num_threads,
      std::string{nn::kernel_path_name(nn::active_kernel_path())}.c_str(),
      cfg.int8_eval.enabled ? 1 : 0);

  // Tracing is opt-in: sim events feed every export; wall-clock spans are
  // only collected when the Chrome trace was requested (they appear nowhere
  // else). LBCHAT_TRACE can also enable collection without an output flag.
  obs::init_from_env();
  if (!trace_out.empty() || !events_out.empty() || !metrics_out.empty()) {
    obs::set_events_enabled(true);
  }
  if (!trace_out.empty()) obs::set_spans_enabled(true);

  engine::FleetSim sim{cfg, std::move(strategy)};

  if (!resume_from.empty()) {
    std::vector<std::uint8_t> bytes;
    if (!read_file(resume_from, bytes)) return 1;
    ByteReader r{bytes};
    const engine::CkptStatus st = sim.restore(r);
    if (st != engine::CkptStatus::kOk) {
      std::fprintf(stderr, "cannot resume from %s: %s\n", resume_from.c_str(),
                   std::string{engine::to_string(st)}.c_str());
      return 1;
    }
    std::printf("resumed from %s at t=%.1fs\n", resume_from.c_str(), sim.time());
  }

  sim.prepare();
  if (checkpoint_every > 0.0 && !checkpoint_out.empty()) {
    double next_ckpt = sim.time() + checkpoint_every;
    while (sim.time() < cfg.duration_s) {
      sim.run_until(next_ckpt < cfg.duration_s ? next_ckpt : cfg.duration_s);
      if (!save_checkpoint_file(sim, checkpoint_out)) return 1;
      next_ckpt += checkpoint_every;
    }
  } else {
    sim.run_until(cfg.duration_s);
    // The checkpoint captures the pre-finalize state, so resuming it with a
    // longer --duration continues the run bit-identically.
    if (!checkpoint_out.empty() && !save_checkpoint_file(sim, checkpoint_out)) return 1;
  }
  const engine::RunMetrics m = sim.finalize();

  int export_failures = 0;
  if (!trace_out.empty() || !events_out.empty() || !metrics_out.empty() ||
      !report_out.empty()) {
    const auto events = obs::tracer().events();
    if (!trace_out.empty() &&
        !write_file(trace_out, obs::chrome_trace_json(events, obs::spans().spans()))) {
      ++export_failures;
    }
    if (!events_out.empty() &&
        !write_file(events_out, obs::events_jsonl(events, obs::tracer().dropped()))) {
      ++export_failures;
    }
    if (!metrics_out.empty() &&
        !write_file(metrics_out, obs::metrics_json(obs::registry().snapshot()))) {
      ++export_failures;
    }
    if (!report_out.empty()) {
      const obs::RunReport report = engine::build_run_report(approach_name, cfg, m);
      const std::string body = ends_with(report_out, ".csv")
                                   ? obs::run_report_csv(report)
                                   : obs::run_report_json(report);
      if (!write_file(report_out, body)) ++export_failures;
    }
  }

  std::printf("\nloss curve:\n");
  for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
    std::printf("  %6.0fs  %.4f\n", m.loss_curve.times[i], m.loss_curve.values[i]);
  }
  std::printf("\nlocal SGD steps: %ld\n", m.train_steps);
  std::printf("sessions: %d started, %d aborted\n", m.transfers.sessions_started,
              m.transfers.sessions_aborted);
  std::printf("model sends: %d/%d completed (receiving rate %.0f%%)\n",
              m.transfers.model_sends_completed, m.transfers.model_sends_started,
              100.0 * m.transfers.model_receiving_rate());
  std::printf("coreset sends: %d/%d completed\n", m.transfers.coreset_sends_completed,
              m.transfers.coreset_sends_started);
  std::printf("bytes delivered: %.1f MB\n",
              static_cast<double>(m.transfers.bytes_delivered) / 1048576.0);
  if (cfg.adversary.enabled()) {
    std::printf("byzantine: %d poisoned payloads sent, attacker weight share %.3f, "
                "%d frames rejected for invalid values\n",
                m.transfers.byzantine_payloads_sent, m.transfers.attacker_weight_share(),
                m.transfers.frames_rejected_invalid);
  }
  if (cfg.hetero.enabled()) {
    std::printf("heterogeneity: %ld straggler train skips\n",
                m.transfers.straggler_train_skips);
  }

  if (run_eval) {
    eval::EvalConfig ec;
    ec.world_seed = cfg.seed;
    ec.trials = 12;
    const eval::OnlineEvaluator ev{ec};
    nn::DrivingPolicy model{cfg.policy, 0};
    model.set_params(m.final_params.front());
    std::printf("\ndriving success rates (vehicle 0's model, %d trials):\n", ec.trials);
    for (const auto task : eval::kAllTasks) {
      std::printf("  %-15s %3.0f%%\n", std::string{eval::task_name(task)}.c_str(),
                  100.0 * ev.success_rate(model, task));
    }
  }
  return export_failures == 0 ? 0 : 1;
}
