// Fleet training: a small end-to-end collaborative-training campaign.
//
// Runs a fleet of expert vehicles through the full pipeline — data
// collection, local training, opportunistic pairwise exchange — under two
// approaches (LbChat and the DP gossip baseline) and prints their training
// loss curves and transfer statistics side by side.
//
// Run:  ./build/examples/fleet_training [num_vehicles] [duration_s]

#include <cstdio>
#include <cstdlib>

#include "baselines/factory.h"
#include "engine/fleet.h"

int main(int argc, char** argv) {
  using namespace lbchat;

  engine::ScenarioConfig cfg;
  cfg.num_vehicles = argc > 1 ? std::atoi(argv[1]) : 8;
  cfg.duration_s = argc > 2 ? std::atof(argv[2]) : 600.0;
  cfg.collect_duration_s = 120.0;
  cfg.eval_interval_s = 60.0;
  cfg.world.num_background_cars = 12;
  cfg.world.num_pedestrians = 30;
  cfg.wireless_loss = true;

  for (const auto approach : {baselines::Approach::kLbChat, baselines::Approach::kDp}) {
    engine::FleetSim sim{cfg, baselines::make_strategy(approach)};
    const engine::RunMetrics m = sim.run();
    std::printf("\n=== %s ===\n", std::string{baselines::approach_name(approach)}.c_str());
    std::printf("loss curve (t, mean held-out loss):\n");
    for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
      std::printf("  %6.0fs  %.4f\n", m.loss_curve.times[i], m.loss_curve.values[i]);
    }
    std::printf("local SGD steps: %ld\n", m.train_steps);
    std::printf("sessions: %d started, %d aborted\n", m.transfers.sessions_started,
                m.transfers.sessions_aborted);
    std::printf("model sends: %d started, %d completed (receiving rate %.0f%%)\n",
                m.transfers.model_sends_started, m.transfers.model_sends_completed,
                100.0 * m.transfers.model_receiving_rate());
    std::printf("coreset sends: %d started, %d completed\n",
                m.transfers.coreset_sends_started, m.transfers.coreset_sends_completed);
  }
  return 0;
}
