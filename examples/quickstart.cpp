// Quickstart: the LbChat building blocks in ~80 lines.
//
// Spins up the simulated town, lets one expert vehicle collect a small BEV
// driving dataset, trains the miniature driving policy on it, constructs a
// coreset with Algorithm 1, and shows that evaluating on the coreset tracks
// evaluating on the full dataset — the property every LbChat decision rests
// on.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "coreset/coreset.h"
#include "data/dataset.h"
#include "nn/optim.h"
#include "nn/policy.h"
#include "sim/world.h"

int main() {
  using namespace lbchat;

  // 1. A simulated world with one expert autopilot and background traffic.
  sim::WorldConfig world_cfg;
  world_cfg.num_background_cars = 12;
  world_cfg.num_pedestrians = 30;
  sim::World world{world_cfg, /*num_vehicles=*/1, /*seed=*/7};
  std::printf("world: %zu road nodes, connected=%s\n", world.map().nodes().size(),
              world.map().connected() ? "yes" : "no");

  // 2. Collect a local driving dataset at 2 fps (BEV + command + waypoints).
  data::WeightedDataset dataset{world_cfg.bev};
  for (int frame = 0; frame < 400; ++frame) {
    world.step(0.5);
    dataset.add(world.collect_sample(0, static_cast<std::uint64_t>(frame)));
  }
  const auto hist = dataset.command_histogram();
  std::printf("dataset: %zu frames (follow=%zu left=%zu right=%zu straight=%zu)\n",
              dataset.size(), hist[0], hist[1], hist[2], hist[3]);

  // 3. Train the miniature BEV driving policy.
  nn::DrivingPolicy model;
  nn::Adam opt{1e-3};
  Rng rng{42};
  double loss = 0.0;
  for (int step = 0; step < 300; ++step) {
    const auto idx = dataset.sample_batch(rng, 32);
    std::vector<const data::Sample*> batch;
    for (const auto i : idx) batch.push_back(&dataset[i]);
    loss = model.train_batch(batch, opt);
    if (step % 100 == 0) std::printf("  train step %3d  batch loss %.4f\n", step, loss);
  }
  std::printf("model: %zu parameters, final batch loss %.4f\n", model.param_count(), loss);

  // 4. Build a coreset (Algorithm 1: layered sampling).
  coreset::CoresetConfig ccfg;
  ccfg.target_size = 60;
  Rng coreset_rng = rng.fork("coreset");
  const coreset::Coreset cs = coreset::build_layered_coreset(dataset, model, ccfg, coreset_rng);
  std::printf("coreset: %zu samples, mass %.1f (dataset mass %.1f), ~%zu wire bytes\n",
              cs.size(), cs.total_weight(), dataset.total_weight(), cs.logical_bytes());

  // 5. The coreset approximates the dataset for loss evaluation — the
  //    epsilon-coreset property that powers LbChat's model-value assessment.
  std::vector<double> ds_weights(dataset.size(), 1.0);
  const double full = coreset::penalized_loss(model, dataset.samples(), ds_weights);
  const double approx = coreset::evaluate_on_coreset(model, cs);
  std::printf("penalized loss: full dataset %.2f vs coreset estimate %.2f (gap %.1f%%)\n",
              full, approx, 100.0 * std::abs(full - approx) / full);
  return 0;
}
