// Driving demo: visualize the BEV the model sees and watch a trained policy
// drive a navigation route, as ASCII art.
//
// Run:  ./build/examples/driving_demo

#include <algorithm>
#include <cstdio>

#include "data/dataset.h"
#include "eval/online.h"
#include "nn/optim.h"
#include "sim/world.h"

namespace {

using namespace lbchat;

void print_bev(const data::BevSpec& spec, const data::BevGrid& bev) {
  // Overlay the four channels: '#' road, 'C' car, 'p' pedestrian, '.' route.
  for (int r = 0; r < spec.height; ++r) {
    std::fputs("  ", stdout);
    for (int c = 0; c < spec.width; ++c) {
      char ch = ' ';
      if (bev.at(spec, static_cast<int>(data::BevChannel::kRoad), r, c) != 0) ch = '#';
      if (bev.at(spec, static_cast<int>(data::BevChannel::kRoute), r, c) != 0) ch = '.';
      if (bev.at(spec, static_cast<int>(data::BevChannel::kVehicles), r, c) != 0) ch = 'C';
      if (bev.at(spec, static_cast<int>(data::BevChannel::kPedestrians), r, c) != 0) ch = 'p';
      if (r == sim::ego_row(spec) && c == sim::ego_col(spec)) ch = 'A';
      std::putchar(ch);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  sim::WorldConfig wc;
  sim::World world{wc, 2, 1};

  // Collect data and train a compact policy.
  data::WeightedDataset ds{wc.bev};
  for (std::uint64_t f = 0; f < 800; ++f) {
    world.step(0.5);
    ds.add(world.collect_sample(0, f));
    ds.add(world.collect_sample(1, (1ull << 32) | f));
  }
  nn::DrivingPolicy model;
  nn::Adam opt{1e-3};
  Rng rng{4};
  for (int step = 0; step < 800; ++step) {
    const auto idx = ds.sample_batch(rng, 32);
    std::vector<const data::Sample*> batch;
    for (const auto i : idx) batch.push_back(&ds[i]);
    model.train_batch(batch, opt);
  }

  // Show the world through the model's eyes on a few collected frames.
  std::printf("BEV legend: A=ego  #=road  .=planned route  C=car  p=pedestrian\n");
  for (const std::uint64_t f : {100ull, 400ull}) {
    const auto s = world.collect_sample(0, f);
    std::printf("\nframe %llu, command=%d, expert waypoint 1 = (%.1fm, %.1fm):\n",
                static_cast<unsigned long long>(f), static_cast<int>(s.command),
                s.waypoints[0] * data::kWaypointScale, s.waypoints[1] * data::kWaypointScale);
    print_bev(wc.bev, s.bev);
  }

  // Deploy on the testing autopilot across all five conditions.
  eval::EvalConfig ec;
  ec.trials = 8;
  const eval::OnlineEvaluator ev{ec};
  std::printf("\ndriving success rates (8 trials each):\n");
  for (const auto task : eval::kAllTasks) {
    const double rate = ev.success_rate(model, task);
    std::printf("  %-15s %3.0f%%\n", std::string{eval::task_name(task)}.c_str(), 100.0 * rate);
  }

  // Narrate one navigation trial.
  const auto r = ev.run_trial(model, eval::DrivingTask::kNaviNormal, 2);
  std::printf("\none Navi (Normal) trial: route %.0fm -> %s after %.0fs\n", r.route_length_m,
              r.success ? "SUCCESS" : (r.collision ? "collision" : (r.lost ? "lost" : "timeout")),
              r.duration_s);
  return 0;
}
