// Unit tests for the weighted dataset store.
#include <gtest/gtest.h>

#include "data/dataset.h"

namespace lbchat::data {
namespace {

Sample make(std::uint64_t id, Command cmd = Command::kFollow, double weight = 1.0) {
  Sample s;
  s.bev = BevGrid{kDefaultBevSpec};
  s.command = cmd;
  s.weight = weight;
  s.id = id;
  return s;
}

TEST(BevGridTest, SetAndGet) {
  BevGrid g{kDefaultBevSpec};
  EXPECT_EQ(g.cells.size(), static_cast<std::size_t>(kDefaultBevSpec.numel()));
  g.set(kDefaultBevSpec, 2, 5, 7);
  EXPECT_EQ(g.at(kDefaultBevSpec, 2, 5, 7), 1);
  EXPECT_EQ(g.at(kDefaultBevSpec, 2, 5, 8), 0);
  EXPECT_EQ(g.at(kDefaultBevSpec, 1, 5, 7), 0);
}

TEST(FrameTest, PackedSampleBytes) {
  // 4*16*16 bits packed = 128 bytes + command + 8 float waypoints + weight.
  EXPECT_EQ(packed_sample_bytes(kDefaultBevSpec), 128u + 1u + 32u + 8u);
}

TEST(DatasetTest, AddAndSize) {
  WeightedDataset ds;
  EXPECT_TRUE(ds.empty());
  ds.add(make(1));
  ds.add(make(2, Command::kLeft, 2.0));
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_DOUBLE_EQ(ds.total_weight(), 3.0);
  EXPECT_TRUE(ds.contains(1));
  EXPECT_FALSE(ds.contains(3));
}

TEST(DatasetTest, NegativeWeightRejected) {
  WeightedDataset ds;
  EXPECT_THROW(ds.add(make(1, Command::kFollow, -1.0)), std::invalid_argument);
}

TEST(DatasetTest, AbsorbDeduplicatesById) {
  WeightedDataset ds;
  ds.add(make(1));
  const std::vector<Sample> incoming{make(1), make(2), make(3), make(2)};
  const auto added = ds.absorb(incoming);
  EXPECT_EQ(added, 2u);  // ids 2 and 3; duplicate id 2 skipped
  EXPECT_EQ(ds.size(), 3u);
}

TEST(DatasetTest, AbsorbKeepsOriginalWeightsByDefault) {
  WeightedDataset ds;
  const std::vector<Sample> incoming{make(7, Command::kLeft, 4.0)};
  ds.absorb(incoming);
  EXPECT_DOUBLE_EQ(ds[0].weight, 4.0);
}

TEST(DatasetTest, AbsorbCanOverrideWeights) {
  WeightedDataset ds;
  const std::vector<Sample> incoming{make(7, Command::kLeft, 4.0)};
  ds.absorb(incoming, 1.5);
  EXPECT_DOUBLE_EQ(ds[0].weight, 1.5);
}

TEST(DatasetTest, SampleBatchThrowsOnEmpty) {
  WeightedDataset ds;
  Rng rng{1};
  EXPECT_THROW(ds.sample_batch(rng, 4), std::logic_error);
}

TEST(DatasetTest, SampleBatchRespectsWeights) {
  WeightedDataset ds;
  ds.add(make(0, Command::kFollow, 1.0));
  ds.add(make(1, Command::kFollow, 9.0));
  Rng rng{5};
  int heavy = 0;
  const int draws = 20000;
  for (int i = 0; i < draws / 10; ++i) {
    for (const auto idx : ds.sample_batch(rng, 10)) heavy += idx == 1 ? 1 : 0;
  }
  EXPECT_NEAR(heavy / static_cast<double>(draws), 0.9, 0.02);
}

TEST(DatasetTest, SampleBatchUniformWhenAllZeroWeights) {
  WeightedDataset ds;
  ds.add(make(0, Command::kFollow, 0.0));
  ds.add(make(1, Command::kFollow, 0.0));
  Rng rng{7};
  int ones = 0;
  const int draws = 10000;
  for (const auto idx : ds.sample_batch(rng, draws)) ones += idx == 1 ? 1 : 0;
  EXPECT_NEAR(ones / static_cast<double>(draws), 0.5, 0.03);
}

TEST(DatasetTest, CommandHistogram) {
  WeightedDataset ds;
  ds.add(make(0, Command::kFollow));
  ds.add(make(1, Command::kLeft));
  ds.add(make(2, Command::kLeft));
  ds.add(make(3, Command::kStraight));
  const auto h = ds.command_histogram();
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 0u);
  EXPECT_EQ(h[3], 1u);
}

TEST(DatasetTest, AbsorbAfterManyRoundsStaysDeduplicated) {
  WeightedDataset ds;
  std::vector<Sample> coreset;
  for (std::uint64_t i = 0; i < 50; ++i) coreset.push_back(make(i));
  for (int round = 0; round < 10; ++round) ds.absorb(coreset);
  EXPECT_EQ(ds.size(), 50u);
}

}  // namespace
}  // namespace lbchat::data
