// Unit tests for the byte (de)serialization layer.
#include <gtest/gtest.h>

#include "common/bytes.h"

namespace lbchat {
namespace {

TEST(BytesTest, ScalarRoundtrip) {
  ByteWriter w;
  w.write_u8(7);
  w.write_u32(123456u);
  w.write_u64(0xDEADBEEFCAFEBABEull);
  w.write_i32(-42);
  w.write_f32(1.5f);
  w.write_f64(-2.25);
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 123456u);
  EXPECT_EQ(r.read_u64(), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 1.5f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, StringAndVectorRoundtrip) {
  ByteWriter w;
  w.write_string("hello lbchat");
  w.write_f32_vec(std::vector<float>{1.0f, -2.0f, 3.5f});
  w.write_f64_vec(std::vector<double>{0.25, -0.5});
  w.write_u32_vec(std::vector<std::uint32_t>{9, 8, 7});
  w.write_bytes(std::vector<std::uint8_t>{0xAA, 0xBB});
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.read_string(), "hello lbchat");
  EXPECT_EQ(r.read_f32_vec(), (std::vector<float>{1.0f, -2.0f, 3.5f}));
  EXPECT_EQ(r.read_f64_vec(), (std::vector<double>{0.25, -0.5}));
  EXPECT_EQ(r.read_u32_vec(), (std::vector<std::uint32_t>{9, 8, 7}));
  EXPECT_EQ(r.read_bytes(), (std::vector<std::uint8_t>{0xAA, 0xBB}));
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, EmptyContainers) {
  ByteWriter w;
  w.write_string("");
  w.write_f32_vec({});
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.read_f32_vec().empty());
}

TEST(BytesTest, UnderflowThrows) {
  ByteWriter w;
  w.write_u8(1);
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.read_u8(), 1);
  EXPECT_THROW(r.read_u32(), std::out_of_range);
}

TEST(BytesTest, CorruptLengthThrows) {
  ByteWriter w;
  w.write_u32(1000);  // claims a 1000-element vector with no payload
  ByteReader r{w.bytes()};
  EXPECT_THROW(r.read_f32_vec(), std::out_of_range);
}

TEST(BytesTest, MaliciousLengthPrefixCannotWrapBoundsCheck) {
  // Regression: `pos_ + n` used to be compared against size(), so a length
  // prefix near SIZE_MAX (scaled by sizeof(T)) could wrap past SIZE_MAX and
  // sneak under the bound, driving a huge memcpy off the end of the buffer.
  {
    ByteWriter w;
    w.write_u32(0xFFFFFFFFu);  // 4 G elements claimed, 4 bytes of payload
    w.write_u32(0);
    ByteReader r{w.bytes()};
    EXPECT_THROW(r.read_f64_vec(), std::out_of_range);
  }
  {
    ByteWriter w;
    w.write_u32(0xFFFFFFFFu);
    ByteReader r{w.bytes()};
    EXPECT_THROW(r.read_string(), std::out_of_range);
  }
  {
    ByteWriter w;
    w.write_u32(0xFFFFFFF0u);
    w.write_u32(0);
    ByteReader r{w.bytes()};
    EXPECT_THROW(r.read_bytes(), std::out_of_range);
  }
  // u32 elements: n * 4 wraps a 32-bit size_t; the division-based check must
  // still reject on 64-bit too.
  {
    ByteWriter w;
    w.write_u32(0x40000001u);
    w.write_u32(1);
    ByteReader r{w.bytes()};
    EXPECT_THROW(r.read_u32_vec(), std::out_of_range);
  }
}

TEST(BytesTest, RemainingTracksPosition) {
  ByteWriter w;
  w.write_u32(5);
  w.write_u32(6);
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace lbchat
