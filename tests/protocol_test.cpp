// Protocol-level invariants across strategies: transfer accounting, session
// bounds, and option behaviours not covered by the per-module suites.
#include <gtest/gtest.h>

#include "baselines/dfl_dds.h"
#include "baselines/proxskip.h"
#include "baselines/rsul.h"
#include "core/lbchat.h"
#include "engine/fleet.h"

namespace lbchat {
namespace {

engine::ScenarioConfig proto_scenario() {
  engine::ScenarioConfig cfg;
  cfg.num_vehicles = 4;
  cfg.collect_duration_s = 90.0;
  cfg.duration_s = 200.0;
  cfg.eval_interval_s = 100.0;
  cfg.coreset_size = 40;
  cfg.pair_cooldown_s = 30.0;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  return cfg;
}

TEST(ProtocolTest, CompletedTransfersDeliverBytes) {
  engine::FleetSim sim{proto_scenario(), std::make_unique<core::LbChatStrategy>()};
  const auto m = sim.run();
  ASSERT_GT(m.transfers.coreset_sends_completed, 0);
  // Each coreset is ~164 KB on the wire at |C|=40.
  EXPECT_GT(m.transfers.bytes_delivered,
            static_cast<std::uint64_t>(m.transfers.coreset_sends_completed) * 100000);
}

TEST(ProtocolTest, CompletionsNeverExceedStarts) {
  for (const bool wireless : {false, true}) {
    auto cfg = proto_scenario();
    cfg.wireless_loss = wireless;
    engine::FleetSim sim{cfg, std::make_unique<core::LbChatStrategy>()};
    const auto m = sim.run();
    EXPECT_LE(m.transfers.model_sends_completed, m.transfers.model_sends_started);
    EXPECT_LE(m.transfers.coreset_sends_completed, m.transfers.coreset_sends_started);
    EXPECT_LE(m.transfers.sessions_aborted, m.transfers.sessions_started);
  }
}

TEST(ProtocolTest, NoWirelessLossMeansNearPerfectCoresetDelivery) {
  auto cfg = proto_scenario();
  cfg.wireless_loss = false;
  engine::FleetSim sim{cfg, std::make_unique<core::LbChatStrategy>()};
  const auto m = sim.run();
  ASSERT_GT(m.transfers.coreset_sends_started, 0);
  // Coresets are tiny (<1 s of airtime): without loss, only a contact that
  // breaks within that second can kill one.
  EXPECT_GE(static_cast<double>(m.transfers.coreset_sends_completed) /
                m.transfers.coreset_sends_started,
            0.9);
}

TEST(ProtocolTest, RsuExchangesBoundedByRevisitCooldown) {
  auto cfg = proto_scenario();
  baselines::RsuOptions opts;
  opts.revisit_cooldown_s = 50.0;
  engine::FleetSim sim{cfg, std::make_unique<baselines::RsuStrategy>(opts)};
  const auto m = sim.run();
  // Per vehicle, at most duration/cooldown visits (+1), each 2 sends.
  const int max_visits = static_cast<int>(cfg.duration_s / opts.revisit_cooldown_s) + 1;
  EXPECT_LE(m.transfers.model_sends_started, cfg.num_vehicles * max_visits * 2);
}

TEST(ProtocolTest, DflDdsSessionCountBoundedByRounds) {
  auto cfg = proto_scenario();
  engine::FleetSim sim{cfg, std::make_unique<baselines::DflDdsStrategy>()};
  const auto m = sim.run();
  const int rounds = static_cast<int>(cfg.duration_s / cfg.time_budget_s) + 1;
  // At most floor(N/2) pairs per synchronous round.
  EXPECT_LE(m.transfers.sessions_started, rounds * (cfg.num_vehicles / 2));
}

TEST(ProtocolTest, ProxSkipCommProbabilityScalesTraffic) {
  auto cfg = proto_scenario();
  cfg.wireless_loss = false;
  baselines::ProxSkipOptions rare;
  rare.comm_probability = 0.1;
  baselines::ProxSkipOptions often;
  often.comm_probability = 1.0;
  engine::FleetSim a{cfg, std::make_unique<baselines::ProxSkipStrategy>(rare)};
  engine::FleetSim b{cfg, std::make_unique<baselines::ProxSkipStrategy>(often)};
  const auto ma = a.run();
  const auto mb = b.run();
  EXPECT_LT(ma.transfers.model_sends_started, mb.transfers.model_sends_started);
}

TEST(ProtocolTest, ProxSkipControlVariatesOptionStillLearns) {
  auto cfg = proto_scenario();
  cfg.duration_s = 240.0;
  baselines::ProxSkipOptions opts;
  opts.variate_scale = 0.05;
  engine::FleetSim sim{cfg, std::make_unique<baselines::ProxSkipStrategy>(opts)};
  const auto m = sim.run();
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

TEST(ProtocolTest, LbChatSendsAssistInfoBeforeEveryChat) {
  engine::FleetSim sim{proto_scenario(), std::make_unique<core::LbChatStrategy>()};
  (void)sim.run();
  // Every chat starts with two assist exchanges and two coreset sends, so
  // coreset sends == 2 * sessions that reached the coreset stage.
  const auto& st = sim.stats();
  EXPECT_EQ(st.coreset_sends_started % 2, 0);
  EXPECT_LE(st.coreset_sends_started, 2 * st.sessions_started);
}

TEST(ProtocolTest, WirelessTogglePreservesDataCollection) {
  // Wireless loss must not leak into the data-collection phase: both runs
  // collect identical local datasets (loss only affects exchanges).
  auto cfg_a = proto_scenario();
  cfg_a.wireless_loss = false;
  auto cfg_b = proto_scenario();
  cfg_b.wireless_loss = true;
  engine::FleetSim a{cfg_a, std::make_unique<core::LbChatStrategy>()};
  engine::FleetSim b{cfg_b, std::make_unique<core::LbChatStrategy>()};
  (void)a.run();
  (void)b.run();
  // Initial collected frames (pre-absorption) match: compare validation sets,
  // which never change after collection.
  ASSERT_EQ(a.node(0).validation.size(), b.node(0).validation.size());
  for (std::size_t i = 0; i < a.node(0).validation.size(); ++i) {
    EXPECT_EQ(a.node(0).validation[i].id, b.node(0).validation[i].id);
    EXPECT_EQ(a.node(0).validation[i].bev.cells, b.node(0).validation[i].bev.cells);
  }
}

}  // namespace
}  // namespace lbchat
