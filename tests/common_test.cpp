// Unit tests for src/common: geometry, RNG streams, Akima interpolation,
// statistics helpers, time series, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/geometry.h"
#include "common/interpolation.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace lbchat {
namespace {

// ---------------------------------------------------------------- geometry

TEST(Vec2Test, ArithmeticAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  const Vec2 b = a + Vec2{1.0, -1.0};
  EXPECT_EQ(b, (Vec2{4.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{6.0, 8.0}));
  EXPECT_EQ(2.0 * a, (Vec2{6.0, 8.0}));
  EXPECT_EQ(a / 2.0, (Vec2{1.5, 2.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 24.0);
  EXPECT_DOUBLE_EQ((Vec2{1, 0}).cross(Vec2{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 1}).cross(Vec2{1, 0}), -1.0);
}

TEST(Vec2Test, NormalizedHandlesZero) {
  EXPECT_EQ((Vec2{0.0, 0.0}).normalized(), (Vec2{1.0, 0.0}));
  const Vec2 n = Vec2{0.0, -2.0}.normalized();
  EXPECT_NEAR(n.x, 0.0, 1e-12);
  EXPECT_NEAR(n.y, -1.0, 1e-12);
}

TEST(Vec2Test, RotationIsCcw) {
  const Vec2 r = Vec2{1.0, 0.0}.rotated(M_PI / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(GeometryTest, WrapAngle) {
  EXPECT_NEAR(wrap_angle(3.0 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(wrap_angle(-3.0 * M_PI), M_PI, 1e-12);  // (-pi, pi] convention
  EXPECT_NEAR(wrap_angle(0.5), 0.5, 1e-12);
  EXPECT_GT(wrap_angle(-M_PI), -M_PI);
}

TEST(GeometryTest, EgoWorldRoundtrip) {
  const Vec2 origin{10.0, -4.0};
  const double heading = 0.7;
  const Vec2 p{3.0, 8.0};
  const Vec2 ego = to_ego_frame(p, origin, heading);
  const Vec2 back = to_world_frame(ego, origin, heading);
  EXPECT_NEAR(back.x, p.x, 1e-9);
  EXPECT_NEAR(back.y, p.y, 1e-9);
}

TEST(GeometryTest, EgoFrameForwardIsPositiveX) {
  // A point straight ahead of a north-facing observer has ego x > 0, y ~ 0.
  const Vec2 ego = to_ego_frame({0.0, 5.0}, {0.0, 0.0}, M_PI / 2.0);
  EXPECT_NEAR(ego.x, 5.0, 1e-9);
  EXPECT_NEAR(ego.y, 0.0, 1e-9);
  // A point to the observer's left has ego y > 0.
  const Vec2 left = to_ego_frame({-3.0, 0.0}, {0.0, 0.0}, M_PI / 2.0);
  EXPECT_NEAR(left.y, 3.0, 1e-9);
}

TEST(GeometryTest, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 0}, {-1, 0}, {1, 0}), 4.0);  // past end
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 0}, {2, 2}, {2, 2}), std::sqrt(8.0));
}

// ---------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentOfDrawOrder) {
  Rng root{7};
  Rng child1 = root.fork("alpha");
  // Drawing from the root does not perturb future forks.
  root.next_u64();
  root.next_u64();
  Rng child2 = Rng{7}.fork("alpha");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, ForkNamesProduceDistinctStreams) {
  Rng root{7};
  Rng a = root.fork("a");
  Rng b = root.fork("b");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIndexCoversSupportWithoutBias) {
  Rng rng{5};
  std::array<int, 7> counts{};
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, 5.0 * std::sqrt(draws / 7.0));
  }
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng{1};
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng{11};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng{13};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ChanceRespectsProbability) {
  Rng rng{17};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng{19};
  const auto p = rng.permutation(50);
  ASSERT_EQ(p.size(), 50u);
  std::vector<char> seen(50, 0);
  for (const auto i : p) {
    ASSERT_LT(i, 50u);
    EXPECT_EQ(seen[i], 0);
    seen[i] = 1;
  }
}

TEST(RngTest, WeightedSampleWithoutReplacementBasics) {
  Rng rng{23};
  const std::vector<double> weights{1.0, 0.0, 2.0, 3.0, 0.0};
  const auto sel = rng.weighted_sample_without_replacement(weights, 3);
  ASSERT_EQ(sel.size(), 3u);
  for (const auto i : sel) {
    EXPECT_GT(weights[i], 0.0);  // zero-weight items never selected
  }
  // Distinctness.
  EXPECT_NE(sel[0], sel[1]);
  EXPECT_NE(sel[1], sel[2]);
  EXPECT_NE(sel[0], sel[2]);
}

TEST(RngTest, WeightedSampleRequestingMoreThanPositive) {
  Rng rng{29};
  const std::vector<double> weights{1.0, 0.0, 2.0};
  const auto sel = rng.weighted_sample_without_replacement(weights, 10);
  EXPECT_EQ(sel.size(), 2u);  // only two positive-weight items exist
}

TEST(RngTest, WeightedSampleFavorsHeavyItems) {
  Rng rng{31};
  const std::vector<double> weights{1.0, 10.0};
  int heavy_first = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const auto sel = rng.weighted_sample_without_replacement(weights, 1);
    heavy_first += sel[0] == 1 ? 1 : 0;
  }
  EXPECT_NEAR(heavy_first / static_cast<double>(trials), 10.0 / 11.0, 0.03);
}

// ---------------------------------------------------------------- akima

TEST(AkimaTest, ExactAtKnots) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.5, 5.0};
  const std::vector<double> ys{1.0, -1.0, 0.5, 2.0, 1.5};
  const AkimaSpline s{xs, ys};
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_NEAR(s(xs[i]), ys[i], 1e-9);
}

TEST(AkimaTest, ReproducesLinearData) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.0 * x - 1.0);
  const AkimaSpline s{xs, ys};
  for (double x = 0.0; x <= 4.0; x += 0.13) EXPECT_NEAR(s(x), 2.0 * x - 1.0, 1e-9);
  EXPECT_NEAR(s.derivative(1.7), 2.0, 1e-9);
}

TEST(AkimaTest, TwoPointsDegeneratesToLine) {
  const AkimaSpline s{std::vector<double>{0.0, 2.0}, std::vector<double>{1.0, 5.0}};
  EXPECT_NEAR(s(1.0), 3.0, 1e-9);
  EXPECT_NEAR(s(0.5), 2.0, 1e-9);
}

TEST(AkimaTest, LinearExtrapolationOutsideRange) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 1.0, 4.0};
  const AkimaSpline s{xs, ys};
  // Outside the domain the extension is linear: second differences vanish.
  const double d1 = s(-1.0) - s(-2.0);
  const double d2 = s(0.0) - s(-1.0);
  EXPECT_NEAR(d1, d2, 1e-9);
}

TEST(AkimaTest, RejectsBadInput) {
  EXPECT_THROW((AkimaSpline{std::vector<double>{0.0}, std::vector<double>{1.0}}),
               std::invalid_argument);
  EXPECT_THROW((AkimaSpline{std::vector<double>{0.0, 0.0}, std::vector<double>{1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW((AkimaSpline{std::vector<double>{0.0, 1.0}, std::vector<double>{1.0}}),
               std::invalid_argument);
}

TEST(AkimaTest, NoOvershootOnStepLikeData) {
  // Akima's selling point: far less ringing than natural cubic splines.
  const std::vector<double> xs{0, 1, 2, 3, 4, 5, 6};
  const std::vector<double> ys{0, 0, 0, 1, 1, 1, 1};
  const AkimaSpline s{xs, ys};
  for (double x = 0.0; x <= 2.0; x += 0.05) EXPECT_GT(s(x), -0.2);
  for (double x = 3.0; x <= 6.0; x += 0.05) EXPECT_LT(s(x), 1.2);
}

TEST(LerpTableTest, InterpolatesAndClamps) {
  const std::vector<double> xs{0.0, 10.0, 20.0};
  const std::vector<double> ys{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(lerp_table(xs, ys, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(lerp_table(xs, ys, 25.0), 4.0);
  EXPECT_DOUBLE_EQ(lerp_table(xs, ys, 5.0), 1.5);
  EXPECT_DOUBLE_EQ(lerp_table(xs, ys, 15.0), 3.0);
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(StatsTest, Percentile) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(StatsTest, EntropyProperties) {
  // Uniform distribution has maximal entropy log(n).
  EXPECT_NEAR(entropy(std::vector<double>{1.0, 1.0, 1.0, 1.0}), std::log(4.0), 1e-12);
  // A point mass has zero entropy.
  EXPECT_DOUBLE_EQ(entropy(std::vector<double>{0.0, 5.0, 0.0}), 0.0);
  // Scale invariance.
  EXPECT_NEAR(entropy(std::vector<double>{1.0, 3.0}),
              entropy(std::vector<double>{10.0, 30.0}), 1e-12);
  EXPECT_DOUBLE_EQ(entropy(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(TimeSeriesTest, AddAndQuery) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(10.0, 0.5);
  ts.add(20.0, 0.2);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.at(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(10.0), 0.5);
  EXPECT_DOUBLE_EQ(ts.at(100.0), 0.2);
}

TEST(TimeSeriesTest, RejectsDecreasingTime) {
  TimeSeries ts;
  ts.add(5.0, 1.0);
  EXPECT_THROW(ts.add(4.0, 1.0), std::invalid_argument);
}

TEST(TimeSeriesTest, EmptySeriesThrows) {
  const TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_THROW((void)ts.at(0.0), std::out_of_range);
  EXPECT_THROW((void)ts.last(), std::out_of_range);
  EXPECT_THROW((void)ts.last_time(), std::out_of_range);
}

TEST(TimeSeriesTest, LastAndEqualTimes) {
  TimeSeries ts;
  ts.add(1.0, 3.0);
  EXPECT_DOUBLE_EQ(ts.last(), 3.0);
  EXPECT_DOUBLE_EQ(ts.last_time(), 1.0);
  // Non-decreasing means equal timestamps are allowed; last() tracks the
  // newest sample.
  ts.add(1.0, 2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.last(), 2.0);
  EXPECT_DOUBLE_EQ(ts.last_time(), 1.0);
}

TEST(StatsTest, PercentileSortedInput) {
  // Already-sorted spans take the no-copy path; results must match the
  // unsorted path exactly.
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(sorted, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 99.0), 7.0);
}

TEST(TimeSeriesTest, FirstTimeBelow) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(10.0, 0.6);
  ts.add(20.0, 0.3);
  EXPECT_DOUBLE_EQ(ts.first_time_below(0.5), 20.0);
  EXPECT_DOUBLE_EQ(ts.first_time_below(1.0), 0.0);
  EXPECT_LT(ts.first_time_below(0.1), 0.0);  // never reached
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_GE(ThreadPool::resolve_num_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(1), 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(7), 7);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, static_cast<std::int64_t>(hits.size()),
                    [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, NonZeroBeginAndEmptyRange) {
  ThreadPool pool{3};
  std::vector<int> hits(10, 0);
  pool.parallel_for(4, 8, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i >= 4 && i < 8 ? 1 : 0);
  pool.parallel_for(5, 5, [&](std::int64_t) { FAIL() << "empty range must not invoke fn"; });
  pool.parallel_for(6, 2, [&](std::int64_t) { FAIL() << "inverted range must not invoke fn"; });
}

TEST(ThreadPoolTest, SequentialPoolRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.size(), 1);
  int sum = 0;
  pool.parallel_for(0, 5, [&](std::int64_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 10);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool{4};
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 37, [&](std::int64_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 50L * (36 * 37 / 2));
}

TEST(ThreadPoolTest, RethrowsFirstException) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::int64_t i) {
                                   if (i == 42) throw std::runtime_error{"boom"};
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace lbchat
