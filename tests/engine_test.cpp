// Tests for the fleet engine: data collection, session lifecycle, transfer
// accounting, deadlines, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine/fleet.h"

namespace lbchat::engine {
namespace {

/// A tiny scenario that keeps engine tests fast.
ScenarioConfig tiny_scenario() {
  ScenarioConfig cfg;
  cfg.num_vehicles = 4;
  cfg.collect_duration_s = 60.0;
  cfg.duration_s = 60.0;
  cfg.eval_interval_s = 30.0;
  cfg.eval_frames_per_vehicle = 4;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  return cfg;
}

/// A do-nothing strategy (local training only).
class LocalOnlyStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "local-only"; }
  void on_tick(FleetSim&) override {}
};

/// A scripted strategy for session-mechanics tests.
class ScriptedStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "scripted"; }

  void on_tick(FleetSim& sim) override {
    if (started_) return;
    // Use the first idle pair currently in (close) range so the transfer has
    // a healthy link regardless of where the seed scattered the fleet.
    for (int a = 0; a < sim.num_vehicles() && !started_; ++a) {
      for (int b = a + 1; b < sim.num_vehicles() && !started_; ++b) {
        if (!sim.is_idle(a) || !sim.is_idle(b)) continue;
        if (sim.pair_distance(a, b) > sim.config().radio.max_range_m * 0.5) continue;
        started_ = true;
        PairSession& s = sim.start_session(a, b);
        if (deadline_s > 0.0) s.deadline_s = sim.time() + deadline_s;
        sim.queue_transfer(s, a, bytes_to_send, {StageTag::kModel, a, 0});
      }
    }
  }
  void on_transfer_complete(FleetSim&, PairSession&, const StageTag& tag) override {
    completed_tags.push_back(tag.kind);
  }
  void on_session_aborted(FleetSim&, PairSession&) override { aborted = true; }

  std::size_t bytes_to_send = 1024;
  double deadline_s = -1.0;
  std::vector<int> completed_tags;
  bool aborted = false;

 private:
  bool started_ = false;
};

TEST(FleetSimTest, NullStrategyRejected) {
  EXPECT_THROW(FleetSim(tiny_scenario(), nullptr), std::invalid_argument);
}

TEST(FleetSimTest, CollectPhasePopulatesDatasets) {
  auto cfg = tiny_scenario();
  FleetSim sim{cfg, std::make_unique<LocalOnlyStrategy>()};
  const RunMetrics m = sim.run();
  const int frames = static_cast<int>(cfg.collect_duration_s * cfg.collect_fps);
  for (int v = 0; v < cfg.num_vehicles; ++v) {
    auto& node = sim.node(v);
    EXPECT_GT(node.dataset.size(), static_cast<std::size_t>(frames) * 7 / 10);
    EXPECT_GT(node.validation.size(), 0u);
    EXPECT_LT(node.validation.size(), node.dataset.size());
  }
  EXPECT_EQ(sim.eval_set().size(),
            static_cast<std::size_t>(cfg.num_vehicles * cfg.eval_frames_per_vehicle));
  EXPECT_GT(m.train_steps, 0);
}

TEST(FleetSimTest, CommandBalancedWeights) {
  auto cfg = tiny_scenario();
  cfg.collect_duration_s = 240.0;  // enough frames for all commands to appear
  FleetSim sim{cfg, std::make_unique<LocalOnlyStrategy>()};
  (void)sim.run();
  // Rare commands carry higher w(d) on average than the dominant kFollow.
  auto& ds = sim.node(0).dataset;
  double follow_w = 0.0;
  int follow_n = 0;
  double turn_w = 0.0;
  int turn_n = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds[i].command == data::Command::kFollow) {
      follow_w += ds[i].weight;
      ++follow_n;
    } else {
      turn_w += ds[i].weight;
      ++turn_n;
    }
  }
  if (turn_n == 0) GTEST_SKIP() << "no turn frames in this tiny run";
  EXPECT_GT(turn_w / turn_n, follow_w / follow_n);
}

TEST(FleetSimTest, LossCurveRecordedAtIntervals) {
  auto cfg = tiny_scenario();
  FleetSim sim{cfg, std::make_unique<LocalOnlyStrategy>()};
  const RunMetrics m = sim.run();
  ASSERT_GE(m.loss_curve.size(), 3u);  // t=0, t=30, t=60
  EXPECT_DOUBLE_EQ(m.loss_curve.times.front(), 0.0);
  EXPECT_DOUBLE_EQ(m.loss_curve.times.back(), cfg.duration_s);
  for (const double v : m.loss_curve.values) EXPECT_GT(v, 0.0);
}

TEST(FleetSimTest, LocalTrainingReducesLoss) {
  auto cfg = tiny_scenario();
  cfg.duration_s = 240.0;
  FleetSim sim{cfg, std::make_unique<LocalOnlyStrategy>()};
  const RunMetrics m = sim.run();
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front() * 0.8);
}

TEST(FleetSimTest, DeterministicAcrossRuns) {
  const auto cfg = tiny_scenario();
  FleetSim a{cfg, std::make_unique<LocalOnlyStrategy>()};
  FleetSim b{cfg, std::make_unique<LocalOnlyStrategy>()};
  const RunMetrics ma = a.run();
  const RunMetrics mb = b.run();
  ASSERT_EQ(ma.loss_curve.size(), mb.loss_curve.size());
  for (std::size_t i = 0; i < ma.loss_curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(ma.loss_curve.values[i], mb.loss_curve.values[i]);
  }
  ASSERT_EQ(ma.final_params.size(), mb.final_params.size());
  EXPECT_EQ(ma.final_params[0], mb.final_params[0]);
}

TEST(FleetSimTest, BitDeterministicAcrossThreadCounts) {
  // Every vehicle owns its Rng/ParamStore/optimizer, so a pooled run must be
  // bit-identical to the sequential one — not merely statistically close.
  auto cfg = tiny_scenario();
  cfg.num_threads = 1;
  FleetSim seq{cfg, std::make_unique<LocalOnlyStrategy>()};
  const RunMetrics ms = seq.run();
  cfg.num_threads = 4;
  FleetSim par{cfg, std::make_unique<LocalOnlyStrategy>()};
  const RunMetrics mp = par.run();

  EXPECT_EQ(ms.train_steps, mp.train_steps);
  ASSERT_EQ(ms.loss_curve.size(), mp.loss_curve.size());
  for (std::size_t i = 0; i < ms.loss_curve.size(); ++i) {
    EXPECT_EQ(ms.loss_curve.times[i], mp.loss_curve.times[i]);
    EXPECT_EQ(ms.loss_curve.values[i], mp.loss_curve.values[i]) << "eval point " << i;
  }
  ASSERT_EQ(ms.final_params.size(), mp.final_params.size());
  for (std::size_t v = 0; v < ms.final_params.size(); ++v) {
    EXPECT_EQ(ms.final_params[v], mp.final_params[v]) << "vehicle " << v;
  }
  EXPECT_EQ(ms.transfers.bytes_delivered, mp.transfers.bytes_delivered);
}

TEST(FleetSimTest, ScriptedTransferCompletes) {
  auto cfg = tiny_scenario();
  cfg.duration_s = 120.0;
  auto strategy = std::make_unique<ScriptedStrategy>();
  auto* raw = strategy.get();
  raw->bytes_to_send = 64 * 1024;  // tiny: completes within one contact
  FleetSim sim{cfg, std::move(strategy)};
  const RunMetrics m = sim.run();
  EXPECT_EQ(m.transfers.model_sends_started, 1);
  EXPECT_EQ(m.transfers.model_sends_completed, 1);
  ASSERT_EQ(raw->completed_tags.size(), 1u);
  EXPECT_EQ(raw->completed_tags[0], StageTag::kModel);
  EXPECT_FALSE(raw->aborted);
}

TEST(FleetSimTest, DeadlineAbortsSlowTransfer) {
  auto cfg = tiny_scenario();
  cfg.duration_s = 120.0;
  auto strategy = std::make_unique<ScriptedStrategy>();
  auto* raw = strategy.get();
  raw->bytes_to_send = 500ull * 1024 * 1024;  // ~2 minutes at 31 Mbps
  raw->deadline_s = 5.0;
  FleetSim sim{cfg, std::move(strategy)};
  const RunMetrics m = sim.run();
  EXPECT_TRUE(raw->aborted);
  EXPECT_EQ(m.transfers.model_sends_started, 1);
  EXPECT_EQ(m.transfers.model_sends_completed, 0);
  EXPECT_EQ(m.transfers.sessions_aborted, 1);
}

TEST(FleetSimTest, SessionTimeoutIsEnforced) {
  auto cfg = tiny_scenario();
  cfg.duration_s = 150.0;
  cfg.session_timeout_s = 20.0;
  auto strategy = std::make_unique<ScriptedStrategy>();
  auto* raw = strategy.get();
  raw->bytes_to_send = 500ull * 1024 * 1024;
  FleetSim sim{cfg, std::move(strategy)};
  (void)sim.run();
  EXPECT_TRUE(raw->aborted);
}

TEST(FleetSimTest, CloseWithPendingStagesDropsThem) {
  // close() inside on_transfer_complete with stages still queued must drop
  // the remainder: no further completion callbacks, and both endpoints are
  // freed for new sessions.
  auto cfg = tiny_scenario();
  cfg.duration_s = 120.0;
  class TwoStage final : public Strategy {
   public:
    [[nodiscard]] std::string_view name() const override { return "two-stage"; }
    void on_tick(FleetSim& sim) override {
      if (started_) return;
      for (int a = 0; a < sim.num_vehicles() && !started_; ++a) {
        for (int b = a + 1; b < sim.num_vehicles() && !started_; ++b) {
          if (!sim.is_idle(a) || !sim.is_idle(b)) continue;
          if (sim.pair_distance(a, b) > sim.config().radio.max_range_m * 0.5) continue;
          started_ = true;
          pair_a = a;
          pair_b = b;
          PairSession& s = sim.start_session(a, b);
          sim.queue_transfer(s, a, 64 * 1024, {StageTag::kModel, a, 0});
          sim.queue_transfer(s, b, 64 * 1024, {StageTag::kModel, b, 1});
        }
      }
    }
    void on_transfer_complete(FleetSim&, PairSession& s, const StageTag&) override {
      ++completions;
      s.close();
    }
    int completions = 0;
    int pair_a = -1;
    int pair_b = -1;

   private:
    bool started_ = false;
  };
  auto strategy = std::make_unique<TwoStage>();
  auto* raw = strategy.get();
  FleetSim sim{cfg, std::move(strategy)};
  const RunMetrics m = sim.run();
  ASSERT_GE(raw->pair_a, 0);
  EXPECT_EQ(raw->completions, 1);
  EXPECT_EQ(m.transfers.model_sends_started, 2);
  EXPECT_EQ(m.transfers.model_sends_completed, 1);
  EXPECT_TRUE(sim.is_idle(raw->pair_a));
  EXPECT_TRUE(sim.is_idle(raw->pair_b));
}

TEST(FleetSimTest, AbortDrainsQueueBeforeCallbackAndFreesVehicles) {
  auto cfg = tiny_scenario();
  cfg.duration_s = 120.0;
  class AbortProbe final : public Strategy {
   public:
    [[nodiscard]] std::string_view name() const override { return "abort-probe"; }
    void on_tick(FleetSim& sim) override {
      if (started_) return;
      for (int a = 0; a < sim.num_vehicles() && !started_; ++a) {
        for (int b = a + 1; b < sim.num_vehicles() && !started_; ++b) {
          if (!sim.is_idle(a) || !sim.is_idle(b)) continue;
          if (sim.pair_distance(a, b) > sim.config().radio.max_range_m * 0.5) continue;
          started_ = true;
          pair_a = a;
          pair_b = b;
          PairSession& s = sim.start_session(a, b);
          s.deadline_s = sim.time() + 5.0;
          sim.queue_transfer(s, a, 500ull * 1024 * 1024, {StageTag::kModel, a, 0});
        }
      }
    }
    void on_transfer_complete(FleetSim&, PairSession&, const StageTag&) override {
      ++completions;
    }
    void on_session_aborted(FleetSim&, PairSession& s) override {
      ++aborts;
      // The engine drains and closes the session before notifying.
      queue_was_empty = s.idle();
      session_was_closed = s.closed();
    }
    int completions = 0;
    int aborts = 0;
    int pair_a = -1;
    int pair_b = -1;
    bool queue_was_empty = false;
    bool session_was_closed = false;

   private:
    bool started_ = false;
  };
  auto strategy = std::make_unique<AbortProbe>();
  auto* raw = strategy.get();
  FleetSim sim{cfg, std::move(strategy)};
  const RunMetrics m = sim.run();
  ASSERT_GE(raw->pair_a, 0);
  EXPECT_EQ(raw->aborts, 1);
  EXPECT_EQ(raw->completions, 0);
  EXPECT_TRUE(raw->queue_was_empty);
  EXPECT_TRUE(raw->session_was_closed);
  EXPECT_EQ(m.transfers.sessions_aborted, 1);
  // Aborted endpoints are reaped and become available again.
  EXPECT_TRUE(sim.is_idle(raw->pair_a));
  EXPECT_TRUE(sim.is_idle(raw->pair_b));
}

TEST(FleetSimTest, BusyVehiclesCannotStartSecondSession) {
  auto cfg = tiny_scenario();
  class DoubleStart final : public Strategy {
   public:
    [[nodiscard]] std::string_view name() const override { return "double"; }
    void on_tick(FleetSim& sim) override {
      if (done_ || !sim.in_range(0, 1)) return;
      done_ = true;
      PairSession& s = sim.start_session(0, 1);
      sim.queue_transfer(s, 0, 10ull * 1024 * 1024, {StageTag::kOther, 0, 0});
      EXPECT_FALSE(sim.is_idle(0));
      EXPECT_FALSE(sim.is_idle(1));
      EXPECT_THROW(sim.start_session(0, 2), std::logic_error);
    }

   private:
    bool done_ = false;
  };
  FleetSim sim{cfg, std::make_unique<DoubleStart>()};
  (void)sim.run();
}

TEST(FleetSimTest, InfraTransfersAlwaysSucceedWithoutWirelessLoss) {
  auto cfg = tiny_scenario();
  cfg.wireless_loss = false;
  FleetSim sim{cfg, std::make_unique<LocalOnlyStrategy>()};
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sim.infra_transfer_succeeds(rng));
}

TEST(FleetSimTest, InfraTransfersFailSometimesWithWirelessLoss) {
  auto cfg = tiny_scenario();
  cfg.wireless_loss = true;
  FleetSim sim{cfg, std::make_unique<LocalOnlyStrategy>()};
  Rng rng{1};
  int ok = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) ok += sim.infra_transfer_succeeds(rng) ? 1 : 0;
  // Expected success = 1 - mean(loss table) ~ 0.6, the paper's infra rate.
  EXPECT_GT(ok, n / 2);
  EXPECT_LT(ok, n * 8 / 10);
}

TEST(FleetSimTest, CooldownBlocksImmediateRechat) {
  auto cfg = tiny_scenario();
  cfg.pair_cooldown_s = 1000.0;
  class OneShot final : public Strategy {
   public:
    [[nodiscard]] std::string_view name() const override { return "oneshot"; }
    void on_tick(FleetSim& sim) override {
      if (!sim.in_range(0, 1) || !sim.is_idle(0) || !sim.is_idle(1)) return;
      if (!sim.cooldown_passed(0, 1)) return;
      PairSession& s = sim.start_session(0, 1);
      sim.queue_transfer(s, 0, 1000, {StageTag::kOther, 0, 0});
      ++sessions;
    }
    int sessions = 0;
  };
  auto strategy = std::make_unique<OneShot>();
  auto* raw = strategy.get();
  FleetSim sim{cfg, std::move(strategy)};
  (void)sim.run();
  EXPECT_LE(raw->sessions, 1);
}

/// Chats a rotating "hub" vehicle with everyone else, so pair churn touches
/// every distinct pair over a long run — the worst case for the pair maps.
class RollingChatStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "rolling-chat"; }
  void on_tick(FleetSim& sim) override {
    const int n = sim.num_vehicles();
    const int hub = static_cast<int>(sim.time() / 30.0) % n;
    for (int v = 0; v < n; ++v) {
      if (v == hub || !sim.is_idle(hub) || !sim.is_idle(v)) continue;
      if (!sim.in_range(hub, v) || !sim.cooldown_passed(hub, v)) continue;
      sim.start_session(hub, v);  // no stages: drains and closes immediately
      pairs_seen.insert(hub < v ? hub * 1000 + v : v * 1000 + hub);
    }
  }
  std::set<int> pairs_seen;
};

TEST(FleetSimTest, PairMapsPlateauUnderLongChurn) {
  // Regression for unbounded last_chat_/pair_backoff_ growth: over a long
  // run that chats across every distinct pair, the maps must plateau at the
  // recently-active working set instead of accumulating one entry per pair
  // ever seen (they are pruned once a pair's cooldown has fully elapsed).
  ScenarioConfig cfg;
  cfg.num_vehicles = 10;
  cfg.collect_duration_s = 10.0;
  cfg.collect_fps = 1.0;
  cfg.eval_frames_per_vehicle = 1;
  cfg.duration_s = 600.0;
  cfg.train_interval_s = 1e9;  // isolate session churn: no training...
  cfg.eval_interval_s = 1e9;   // ...and no periodic evaluation
  cfg.pair_cooldown_s = 5.0;
  cfg.radio.max_range_m = 1e9;  // everyone is always in range
  cfg.world.num_background_cars = 2;
  cfg.world.num_pedestrians = 2;
  auto strategy = std::make_unique<RollingChatStrategy>();
  RollingChatStrategy* rolling = strategy.get();
  FleetSim sim{cfg, std::move(strategy)};
  sim.prepare();
  std::size_t max_last_chat = 0;
  std::size_t max_backoff = 0;
  for (double t = 30.0; t <= cfg.duration_s; t += 30.0) {
    sim.run_until(t);
    const auto [last_chat, backoff] = sim.pair_map_sizes();
    max_last_chat = std::max(max_last_chat, last_chat);
    max_backoff = std::max(max_backoff, backoff);
  }
  const std::size_t distinct_pairs = rolling->pairs_seen.size();
  // The rotation really did touch every pair of the 10-vehicle fleet...
  EXPECT_EQ(distinct_pairs, 45u);
  // ...yet the maps stayed bounded by the recently-active set, not by the
  // number of pairs ever seen. Between prunes (every 60 s) at most two hub
  // windows of 9 pairs each are recorded, plus a straggler at the boundary.
  EXPECT_LT(max_last_chat, distinct_pairs);
  EXPECT_LE(max_last_chat, 3u * static_cast<std::size_t>(cfg.num_vehicles));
  EXPECT_EQ(max_backoff, 0u);  // chat_backoff off: never populated
}

TEST(FleetSimTest, AssistInfoReflectsVehicleState) {
  auto cfg = tiny_scenario();
  FleetSim sim{cfg, std::make_unique<LocalOnlyStrategy>()};
  const auto info = sim.assist_info(2);
  EXPECT_EQ(info.pos, sim.world().vehicle(2).pos);
  EXPECT_NE(info.route, nullptr);
  const auto blind = sim.assist_info(2, /*share_route=*/false);
  EXPECT_EQ(blind.route, nullptr);
}

}  // namespace
}  // namespace lbchat::engine
