// Tests for the fleet-scaling layer (DESIGN.md §11): the uniform spatial
// grid and neighbor index (exactness against brute force, including cell
// boundaries and degenerate geometry), grid on/off bit-identity of full
// runs, thread-count bit-identity of metro-scale runs (snapshot mobility +
// parallel sessions + faults), metro checkpoint resume, and the pair-map
// plateau at 1,024 vehicles under incremental pruning.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/spatial_grid.h"
#include "engine/checkpoint.h"
#include "engine/fleet.h"
#include "net/spatial_index.h"

namespace lbchat {
namespace {

using engine::FleetSim;
using engine::PairSession;
using engine::ScenarioConfig;
using engine::StageTag;
using engine::Strategy;

std::vector<int> brute_neighbors(const std::vector<Vec2>& pos, int v, double range) {
  std::vector<int> out;
  for (int b = 0; b < static_cast<int>(pos.size()); ++b) {
    if (b != v && distance(pos[static_cast<std::size_t>(v)],
                           pos[static_cast<std::size_t>(b)]) <= range) {
      out.push_back(b);
    }
  }
  return out;
}

TEST(UniformGridTest, CandidatesAreASupersetOfTheDisc) {
  Rng rng{101};
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform(0.0, 200.0));
    const double span = rng.uniform(10.0, 5000.0);
    std::vector<Vec2> pts(static_cast<std::size_t>(n));
    for (auto& p : pts) p = Vec2{rng.uniform(-span, span), rng.uniform(-span, span)};
    const double cell = rng.uniform(1.0, span);
    UniformGrid grid;
    grid.rebuild(pts, cell);
    // Query centers both inside and far outside the point bounding box.
    for (int q = 0; q < 10; ++q) {
      const Vec2 c{rng.uniform(-2.0 * span, 2.0 * span), rng.uniform(-2.0 * span, 2.0 * span)};
      const double radius = rng.uniform(0.0, cell * 3.0);
      std::set<int> cand;
      grid.for_each_candidate(c, radius, [&](int id) { cand.insert(id); });
      for (int i = 0; i < n; ++i) {
        if (distance(pts[static_cast<std::size_t>(i)], c) <= radius) {
          EXPECT_TRUE(cand.count(i)) << "point " << i << " inside the disc missed";
        }
      }
    }
  }
}

TEST(NeighborIndexTest, MatchesBruteForceOnRandomFleets) {
  Rng rng{202};
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform(0.0, 300.0));
    const double span = rng.uniform(50.0, 4000.0);
    std::vector<Vec2> pos(static_cast<std::size_t>(n));
    for (auto& p : pos) p = Vec2{rng.uniform(-span, span), rng.uniform(-span, span)};
    // Exercise coincident points too.
    if (n > 4) pos[1] = pos[0];
    const double range = rng.uniform(1.0, span);
    net::NeighborIndex index;
    index.rebuild(pos, range);
    std::vector<int> out;
    for (int v = 0; v < n; ++v) {
      index.query(v, out);
      EXPECT_EQ(out, brute_neighbors(pos, v, range)) << "trial " << trial << " v " << v;
    }
  }
}

TEST(NeighborIndexTest, InclusiveOnExactCellAndRangeBoundaries) {
  // A lattice with spacing exactly equal to the range: axis-aligned
  // neighbors sit at distance == range (must be included — the same
  // inclusive <= as FleetSim::in_range), diagonal ones at range*sqrt(2)
  // (must not). Lattice lines coincide with grid cell boundaries, the
  // classic off-by-one-cell trap.
  const double range = 100.0;
  std::vector<Vec2> pos;
  for (int i = -2; i <= 2; ++i) {
    for (int j = -2; j <= 2; ++j) {
      pos.push_back(Vec2{i * range, j * range});
    }
  }
  net::NeighborIndex index;
  index.rebuild(pos, range);
  std::vector<int> out;
  for (int v = 0; v < static_cast<int>(pos.size()); ++v) {
    index.query(v, out);
    EXPECT_EQ(out, brute_neighbors(pos, v, range)) << "lattice vertex " << v;
  }
  // The center vertex has exactly its 4 axis-aligned neighbors.
  const int center = 12;  // (0,0) in the 5x5 row-major lattice
  index.query(center, out);
  EXPECT_EQ(out.size(), 4u);
}

TEST(NeighborIndexTest, AscendingIdOrder) {
  Rng rng{303};
  std::vector<Vec2> pos(64);
  for (auto& p : pos) p = Vec2{rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)};
  net::NeighborIndex index;
  index.rebuild(pos, 200.0);
  std::vector<int> out;
  for (int v = 0; v < 64; ++v) {
    index.query(v, out);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_TRUE(std::find(out.begin(), out.end(), v) == out.end());
  }
}

/// Minimal no-NN scenario: no background traffic, no training, no eval.
ScenarioConfig lean_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.world.num_background_cars = 0;
  cfg.world.num_pedestrians = 0;
  cfg.collect_duration_s = 10.0;
  cfg.collect_fps = 0.5;
  cfg.eval_frames_per_vehicle = 0;
  cfg.validation_fraction = 0.0;
  cfg.train_interval_s = 1e9;
  cfg.eval_interval_s = 1e9;
  cfg.policy.bev = data::BevSpec{4, 8, 8, 4.0};
  cfg.policy.conv1_channels = 2;
  cfg.policy.conv2_channels = 2;
  cfg.policy.fc_dim = 8;
  cfg.policy.branch_hidden = 4;
  cfg.world.bev = cfg.policy.bev;
  return cfg;
}

/// Chats every idle vehicle with its first idle in-range peer (one small
/// transfer each way), exercising neighbor queries and session machinery.
class ChatNeighborStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "chat-neighbor"; }
  void local_train(FleetSim& sim, int v) override {
    (void)sim;
    (void)v;
  }
  void on_tick(FleetSim& sim) override {
    for (int a = 0; a < sim.num_vehicles(); ++a) {
      if (!sim.is_idle(a)) continue;
      for (const int b : sim.neighbors_in_range(a)) {
        if (!sim.is_idle(b) || !sim.cooldown_passed(a, b)) continue;
        PairSession& s = sim.start_session(a, b);
        sim.queue_transfer(s, a, 32 * 1024, StageTag{});
        sim.queue_transfer(s, b, 32 * 1024, StageTag{});
        break;
      }
    }
  }
};

/// Compares neighbors_in_range (grid-backed) against a brute in_range scan
/// every tick, over live (moving) vehicle positions.
class ProbeStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "probe"; }
  void local_train(FleetSim& sim, int v) override {
    (void)sim;
    (void)v;
  }
  void on_tick(FleetSim& sim) override {
    for (int v = 0; v < sim.num_vehicles(); ++v) {
      const std::vector<int> got = sim.neighbors_in_range(v);  // copy the scratch
      std::vector<int> want;
      for (int b = 0; b < sim.num_vehicles(); ++b) {
        if (b != v && sim.in_range(v, b)) want.push_back(b);
      }
      EXPECT_EQ(got, want) << "t=" << sim.time() << " v=" << v;
      ++probes;
    }
  }
  long probes = 0;
};

TEST(SpatialEngineTest, GridNeighborsMatchBruteForceDuringRun) {
  ScenarioConfig cfg = lean_config(5);
  cfg.num_vehicles = 24;
  cfg.duration_s = 40.0;
  cfg.radio.max_range_m = 250.0;
  ASSERT_TRUE(cfg.spatial_index);
  auto strategy = std::make_unique<ProbeStrategy>();
  ProbeStrategy* probe = strategy.get();
  FleetSim sim{cfg, std::move(strategy)};
  sim.prepare();
  sim.run_until(cfg.duration_s);
  EXPECT_GT(probe->probes, 0);
}

std::vector<std::uint8_t> run_and_checkpoint(const ScenarioConfig& cfg, double horizon) {
  FleetSim sim{cfg, std::make_unique<ChatNeighborStrategy>()};
  sim.prepare();
  sim.run_until(horizon);
  ByteWriter w;
  sim.save_checkpoint(w);
  return {w.bytes().begin(), w.bytes().end()};
}

TEST(SpatialEngineTest, GridOnOffBitIdentical) {
  // The grid is an exact candidate filter, so a full run — sessions, stats,
  // RNG streams, everything the checkpoint captures — must be byte-identical
  // with it on and off.
  ScenarioConfig cfg = lean_config(9);
  cfg.num_vehicles = 20;
  cfg.duration_s = 60.0;
  cfg.faults.burst_rate_per_min = 2.0;
  cfg.faults.churn_rate_per_min = 1.0;
  cfg.faults.churn_offline_mean_s = 8.0;
  cfg.faults.chat_backoff = true;
  cfg.spatial_index = true;
  const auto with_grid = run_and_checkpoint(cfg, cfg.duration_s);
  cfg.spatial_index = false;
  const auto without_grid = run_and_checkpoint(cfg, cfg.duration_s);
  ASSERT_EQ(with_grid, without_grid);
}

TEST(MetroScaleTest, TilingHoldsDensityConstantAndEnablesScaling) {
  ScenarioConfig base;
  const double base_density = base.num_vehicles / (base.world.town.extent_m *
                                                   base.world.town.extent_m);
  const double base_bg = base.world.num_background_cars;
  ScenarioConfig cfg = base;
  engine::apply_metro_scale(cfg, 256);
  EXPECT_EQ(cfg.num_vehicles, 256);
  const double density =
      cfg.num_vehicles / (cfg.world.town.extent_m * cfg.world.town.extent_m);
  EXPECT_NEAR(density / base_density, 1.0, 1e-9);
  EXPECT_NEAR(cfg.world.num_background_cars / base_bg, 16.0, 0.1);
  EXPECT_TRUE(cfg.spatial_index);
  EXPECT_TRUE(cfg.parallel_sessions);
  EXPECT_TRUE(cfg.world.snapshot_mobility);
  // Scaling up is part of the checkpoint config fingerprint (the scaled
  // world and RNG assignment differ), so mismatched resumes are rejected.
  EXPECT_NE(engine::config_fingerprint(cfg), engine::config_fingerprint(base));
}

ScenarioConfig metro_config(std::uint64_t seed, int vehicles, bool faults) {
  ScenarioConfig cfg = lean_config(seed);
  if (faults) {
    cfg.faults.burst_rate_per_min = 3.0;
    cfg.faults.burst_duration_s = 8.0;
    cfg.faults.burst_radius_m = 300.0;
    cfg.faults.burst_extra_loss = 0.9;
    cfg.faults.churn_rate_per_min = 2.0;
    cfg.faults.churn_offline_mean_s = 10.0;
    cfg.faults.corrupt_prob_near = 0.02;
    cfg.faults.corrupt_prob_far = 0.2;
    cfg.faults.chat_backoff = true;
  }
  engine::apply_metro_scale(cfg, vehicles);
  return cfg;
}

TEST(MetroScaleTest, KiloFleetBitIdenticalAcrossThreadCounts) {
  // The tentpole determinism claim: with snapshot mobility, parallel session
  // ticks and fault injection all on, a 1,024-vehicle run must be
  // bit-identical for any worker-lane count.
  ScenarioConfig cfg = metro_config(21, 1024, /*faults=*/true);
  cfg.duration_s = 30.0;
  cfg.num_threads = 1;
  const auto one_thread = run_and_checkpoint(cfg, cfg.duration_s);
  cfg.num_threads = 4;
  const auto four_threads = run_and_checkpoint(cfg, cfg.duration_s);
  ASSERT_EQ(one_thread, four_threads);
}

TEST(MetroScaleTest, CheckpointResumeBitIdentical) {
  // Interrupt a metro run (per-session RNG streams in flight) and resume it:
  // the resumed half must land on the same bytes as the uninterrupted run.
  ScenarioConfig cfg = metro_config(33, 64, /*faults=*/true);
  cfg.duration_s = 80.0;
  cfg.num_threads = 2;

  FleetSim full{cfg, std::make_unique<ChatNeighborStrategy>()};
  full.prepare();
  full.run_until(40.0);
  ByteWriter mid;
  full.save_checkpoint(mid);
  full.run_until(cfg.duration_s);
  ByteWriter full_end;
  full.save_checkpoint(full_end);

  FleetSim resumed{cfg, std::make_unique<ChatNeighborStrategy>()};
  ByteReader r{mid.bytes()};
  ASSERT_EQ(resumed.restore(r), engine::CkptStatus::kOk);
  resumed.run_until(cfg.duration_s);
  ByteWriter resumed_end;
  resumed.save_checkpoint(resumed_end);

  ASSERT_EQ(std::vector<std::uint8_t>(full_end.bytes().begin(), full_end.bytes().end()),
            std::vector<std::uint8_t>(resumed_end.bytes().begin(), resumed_end.bytes().end()));
}

TEST(MetroScaleTest, PairMapsPlateauAtKiloFleet) {
  // The incremental prune must keep the pair maps bounded by the
  // recently-active working set even when 1,024 vehicles chat continuously —
  // bounded per-tick scan work, yet reclamation outpaces inserts.
  ScenarioConfig cfg = metro_config(44, 1024, /*faults=*/false);
  cfg.duration_s = 600.0;
  cfg.pair_cooldown_s = 10.0;
  FleetSim sim{cfg, std::make_unique<ChatNeighborStrategy>()};
  sim.prepare();
  std::size_t max_last_chat = 0;
  for (double t = 60.0; t <= cfg.duration_s; t += 60.0) {
    sim.run_until(t);
    max_last_chat = std::max(max_last_chat, sim.pair_map_sizes().first);
  }
  const int started = sim.stats().sessions_started;
  // Plenty of chat churn happened...
  EXPECT_GT(started, 4 * cfg.num_vehicles);
  // ...but the map plateaus near the set active inside one cooldown + prune
  // window instead of growing with the total number of sessions ever run.
  EXPECT_LT(max_last_chat, static_cast<std::size_t>(started) / 2);
  EXPECT_LE(max_last_chat, 8u * static_cast<std::size_t>(cfg.num_vehicles));
}

}  // namespace
}  // namespace lbchat
