// Tests for the §V extensions: alternative coreset constructions and
// quantization-based model compression.
#include <gtest/gtest.h>

#include <cmath>

#include "coreset/alternatives.h"
#include "nn/optim.h"
#include "nn/quantize.h"
#include "sim/world.h"

namespace lbchat {
namespace {

// ------------------------------------------------ alternative coresets

class AltCoresetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::World world{sim::WorldConfig{}, 1, 7};
    dataset_ = new data::WeightedDataset{data::kDefaultBevSpec};
    for (std::uint64_t f = 0; f < 250; ++f) {
      world.step(0.5);
      data::Sample s = world.collect_sample(0, f);
      s.weight = 1.0 + static_cast<double>(f % 4);
      dataset_->add(std::move(s));
    }
    model_ = new nn::DrivingPolicy{};
    nn::Adam opt{1e-3};
    Rng rng{5};
    for (int step = 0; step < 100; ++step) {
      const auto idx = dataset_->sample_batch(rng, 32);
      std::vector<const data::Sample*> batch;
      for (const auto i : idx) batch.push_back(&(*dataset_)[i]);
      model_->train_batch(batch, opt);
    }
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete model_;
    dataset_ = nullptr;
    model_ = nullptr;
  }
  static data::WeightedDataset* dataset_;
  static nn::DrivingPolicy* model_;
};

data::WeightedDataset* AltCoresetFixture::dataset_ = nullptr;
nn::DrivingPolicy* AltCoresetFixture::model_ = nullptr;

class CoresetMethodTest : public AltCoresetFixture,
                          public ::testing::WithParamInterface<coreset::CoresetMethod> {};

TEST_P(CoresetMethodTest, HitsTargetSizeAndPreservesMass) {
  coreset::CoresetConfig cfg;
  cfg.target_size = 60;
  Rng rng{11};
  const auto c = coreset::build_coreset(GetParam(), *dataset_, *model_, cfg, rng);
  EXPECT_EQ(c.size(), 60u);
  // Every construction keeps the coreset on the f(x; D) scale: total mass
  // within 25% of the dataset mass (sensitivity weighting is only unbiased
  // in expectation, so allow slack).
  EXPECT_NEAR(c.total_weight(), dataset_->total_weight(),
              0.25 * dataset_->total_weight());
}

TEST_P(CoresetMethodTest, ApproximatesDatasetLoss) {
  coreset::CoresetConfig cfg;
  cfg.target_size = 100;
  Rng rng{13};
  const auto c = coreset::build_coreset(GetParam(), *dataset_, *model_, cfg, rng);
  const double full = coreset::penalized_loss(*model_, dataset_->samples(), {}, cfg.penalty);
  const double approx = coreset::evaluate_on_coreset(*model_, c, cfg.penalty);
  EXPECT_NEAR(approx, full, 0.4 * full)
      << coreset::coreset_method_name(GetParam()) << " approximation too loose";
}

TEST_P(CoresetMethodTest, DegenerateTargetsHandled) {
  coreset::CoresetConfig cfg;
  Rng rng{17};
  cfg.target_size = 0;
  EXPECT_TRUE(coreset::build_coreset(GetParam(), *dataset_, *model_, cfg, rng).empty());
  cfg.target_size = dataset_->size() + 10;
  EXPECT_EQ(coreset::build_coreset(GetParam(), *dataset_, *model_, cfg, rng).size(),
            dataset_->size());
}

INSTANTIATE_TEST_SUITE_P(Methods, CoresetMethodTest,
                         ::testing::Values(coreset::CoresetMethod::kLayered,
                                           coreset::CoresetMethod::kUniform,
                                           coreset::CoresetMethod::kSensitivity,
                                           coreset::CoresetMethod::kClustering));

TEST(CoresetMethodNamesTest, AllDistinct) {
  std::set<std::string_view> names;
  for (const auto m : {coreset::CoresetMethod::kLayered, coreset::CoresetMethod::kUniform,
                       coreset::CoresetMethod::kSensitivity,
                       coreset::CoresetMethod::kClustering}) {
    names.insert(coreset::coreset_method_name(m));
  }
  EXPECT_EQ(names.size(), 4u);
}

TEST_F(AltCoresetFixture, ClusteringSpreadsAcrossLossRange) {
  coreset::CoresetConfig cfg;
  cfg.target_size = 40;
  Rng rng{19};
  const auto c =
      coreset::build_clustering_coreset(*dataset_, *model_, cfg, rng);
  // k-centre picks extremes first: the coreset's loss range should span most
  // of the dataset's loss range.
  double ds_min = 1e18;
  double ds_max = -1e18;
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    const double l = model_->sample_loss((*dataset_)[i]);
    ds_min = std::min(ds_min, l);
    ds_max = std::max(ds_max, l);
  }
  double cs_min = 1e18;
  double cs_max = -1e18;
  for (const auto& s : c.samples) {
    const double l = model_->sample_loss(s);
    cs_min = std::min(cs_min, l);
    cs_max = std::max(cs_max, l);
  }
  EXPECT_LT(cs_min, ds_min + 0.1 * (ds_max - ds_min));
  EXPECT_GT(cs_max, ds_max - 0.1 * (ds_max - ds_min));
}

// ------------------------------------------------ quantization

TEST(QuantizeTest, RoundtripErrorBoundedByStepSize) {
  Rng rng{3};
  std::vector<float> params(3000);
  for (float& v : params) v = static_cast<float>(rng.normal());
  for (const int bits : {4, 8, 12, 16}) {
    const auto q = nn::quantize_model(params, bits);
    const auto back = q.densify();
    const int levels = (1 << (bits - 1)) - 1;
    for (std::size_t i = 0; i < params.size(); i += 37) {
      const float scale = q.scales[i / q.block];
      const double step = static_cast<double>(scale) / levels;
      EXPECT_NEAR(back[i], params[i], step * 0.75 + 1e-6) << "bits=" << bits;
    }
  }
}

TEST(QuantizeTest, ErrorDecreasesWithBits) {
  Rng rng{5};
  std::vector<float> params(5000);
  for (float& v : params) v = static_cast<float>(rng.normal());
  double prev = 1e18;
  for (const int bits : {2, 4, 8, 12}) {
    const auto back = nn::quantize_model(params, bits).densify();
    double err = 0.0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      err += std::abs(static_cast<double>(params[i]) - back[i]);
    }
    EXPECT_LT(err, prev) << "bits=" << bits;
    prev = err;
  }
}

TEST(QuantizeTest, PsiTracksBits) {
  std::vector<float> params(27288, 0.5f);
  for (const int bits : {4, 8, 16}) {
    const auto q = nn::quantize_model(params, bits);
    EXPECT_NEAR(q.psi(), bits / 32.0, 0.01) << "bits=" << bits;
  }
  EXPECT_EQ(nn::bits_for_psi(0.25), 8);
  EXPECT_EQ(nn::bits_for_psi(0.0), 2);
  EXPECT_EQ(nn::bits_for_psi(1.0), 16);
}

TEST(QuantizeTest, StochasticRoundingIsUnbiased) {
  // Quantize a constant vector many times with stochastic rounding; the mean
  // reconstruction converges to the true value.
  const float value = 0.337f;
  std::vector<float> params(64, value);
  params[0] = 1.0f;  // pins the block scale to 1.0
  Rng rng{7};
  double sum = 0.0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    const auto back = nn::quantize_model(params, 4, &rng).densify();
    sum += back[10];
  }
  EXPECT_NEAR(sum / reps, value, 0.01);
}

TEST(QuantizeTest, HandlesZeroAndExtremeBlocks) {
  std::vector<float> params(2048, 0.0f);
  const auto q = nn::quantize_model(params, 8);
  const auto back = q.densify();
  for (const float v : back) EXPECT_FLOAT_EQ(v, 0.0f);
  EXPECT_THROW(nn::quantize_model(params, 1), std::invalid_argument);
  EXPECT_THROW(nn::quantize_model(params, 17), std::invalid_argument);
}

TEST(QuantizeTest, QuantizedPolicyStillDrivesLikeOriginal) {
  // 8-bit quantization preserves the policy's predictions closely — the
  // property that makes quantization a viable compression knob for LbChat.
  const nn::DrivingPolicy model{{}, 9};
  const auto q = nn::quantize_model(model.params(), 8);
  nn::DrivingPolicy dequantized{{}, 0};
  dequantized.set_params(q.densify());
  Rng rng{11};
  data::Sample s;
  s.bev = data::BevGrid{data::kDefaultBevSpec};
  for (auto& c : s.bev.cells) c = rng.chance(0.2) ? 1 : 0;
  const auto a = model.predict(s.bev, data::Command::kLeft);
  const auto b = dequantized.predict(s.bev, data::Command::kLeft);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 0.02);
}

}  // namespace
}  // namespace lbchat
