// Cross-module integration tests: miniature versions of the paper's
// comparisons that assert the *mechanisms* (not the exact numbers) —
// coreset sharing grows datasets, route sharing protects receiving rates,
// aggregation protections hold, and the whole pipeline stays deterministic.
#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "core/lbchat.h"
#include "engine/fleet.h"

namespace lbchat {
namespace {

engine::ScenarioConfig mini_scenario(bool wireless) {
  engine::ScenarioConfig cfg;
  cfg.num_vehicles = 6;
  cfg.collect_duration_s = 120.0;
  cfg.duration_s = 300.0;
  cfg.eval_interval_s = 100.0;
  cfg.coreset_size = 50;
  cfg.pair_cooldown_s = 30.0;
  cfg.wireless_loss = wireless;
  cfg.world.num_background_cars = 8;
  cfg.world.num_pedestrians = 16;
  return cfg;
}

TEST(IntegrationTest, LbChatBeatsPureGossipOnHeldOutLoss) {
  // The paper's core claim at miniature scale: under identical constraints,
  // LbChat's coreset-guided exchanges reach a lower held-out loss than the
  // loss-weighted gossip baseline (DP).
  const auto cfg = mini_scenario(true);
  engine::FleetSim lbchat{cfg, baselines::make_strategy(baselines::Approach::kLbChat)};
  engine::FleetSim dp{cfg, baselines::make_strategy(baselines::Approach::kDp)};
  const auto m_lbchat = lbchat.run();
  const auto m_dp = dp.run();
  EXPECT_LT(m_lbchat.loss_curve.values.back(), m_dp.loss_curve.values.back());
}

TEST(IntegrationTest, LbChatReceivingRateBeatsBlindBaselineUnderLoss) {
  // §IV-C: route sharing + loss-aware sizing keep LbChat's model sends
  // completing; the blind fit-to-window baselines overrun and abort.
  const auto cfg = mini_scenario(true);
  engine::FleetSim lbchat{cfg, baselines::make_strategy(baselines::Approach::kLbChat)};
  engine::FleetSim dp{cfg, baselines::make_strategy(baselines::Approach::kDp)};
  const auto m_lbchat = lbchat.run();
  const auto m_dp = dp.run();
  ASSERT_GT(m_dp.transfers.model_sends_started, 0);
  if (m_lbchat.transfers.model_sends_started == 0) {
    GTEST_SKIP() << "no LbChat model exchange triggered at this tiny scale";
  }
  EXPECT_GT(m_lbchat.transfers.model_receiving_rate(),
            m_dp.transfers.model_receiving_rate());
}

TEST(IntegrationTest, CoresetSharingExpandsEveryActiveDataset) {
  const auto cfg = mini_scenario(false);
  engine::FleetSim sim{cfg, baselines::make_strategy(baselines::Approach::kSco)};
  (void)sim.run();
  int expanded = 0;
  const auto frames =
      static_cast<std::size_t>(cfg.collect_duration_s * cfg.collect_fps);
  for (int v = 0; v < cfg.num_vehicles; ++v) {
    if (sim.node(v).dataset.size() > frames) ++expanded;
  }
  EXPECT_GE(expanded, cfg.num_vehicles / 2)
      << "coreset absorption failed to expand local datasets";
}

TEST(IntegrationTest, WirelessLossSlowsEveryApproachButRunsComplete) {
  for (const auto approach : {baselines::Approach::kLbChat, baselines::Approach::kDp}) {
    engine::FleetSim clean{mini_scenario(false), baselines::make_strategy(approach)};
    engine::FleetSim lossy{mini_scenario(true), baselines::make_strategy(approach)};
    const auto m_clean = clean.run();
    const auto m_lossy = lossy.run();
    // Both complete and learn; the lossy case can't beat the clean one by
    // much (allow noise at this miniature scale).
    EXPECT_LT(m_clean.loss_curve.values.back(), m_clean.loss_curve.values.front());
    EXPECT_LT(m_lossy.loss_curve.values.back(), m_lossy.loss_curve.values.front());
  }
}

TEST(IntegrationTest, IdenticalSeedsIdenticalCampaigns) {
  const auto cfg = mini_scenario(true);
  engine::FleetSim a{cfg, baselines::make_strategy(baselines::Approach::kLbChat)};
  engine::FleetSim b{cfg, baselines::make_strategy(baselines::Approach::kLbChat)};
  const auto ma = a.run();
  const auto mb = b.run();
  ASSERT_EQ(ma.loss_curve.size(), mb.loss_curve.size());
  for (std::size_t i = 0; i < ma.loss_curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(ma.loss_curve.values[i], mb.loss_curve.values[i]);
  }
  EXPECT_EQ(ma.transfers.model_sends_started, mb.transfers.model_sends_started);
  EXPECT_EQ(ma.transfers.bytes_delivered, mb.transfers.bytes_delivered);
}

TEST(IntegrationTest, DifferentSeedsDifferentTrajectories) {
  auto cfg_a = mini_scenario(true);
  auto cfg_b = cfg_a;
  cfg_b.seed = 2;
  engine::FleetSim a{cfg_a, baselines::make_strategy(baselines::Approach::kLbChat)};
  engine::FleetSim b{cfg_b, baselines::make_strategy(baselines::Approach::kLbChat)};
  EXPECT_NE(a.run().final_params[0], b.run().final_params[0]);
}

}  // namespace
}  // namespace lbchat
