// Tests for the driving-world simulator: town generation, routing, BEV
// rendering, expert autopilot behaviour, and data collection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/bev.h"
#include "sim/route.h"
#include "sim/town.h"
#include "sim/world.h"

namespace lbchat::sim {
namespace {

// ---------------------------------------------------------------- town

class TownSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TownSeedTest, GeneratedMapIsConnected) {
  Rng rng{GetParam()};
  const TownMap map = TownMap::generate({}, rng);
  EXPECT_TRUE(map.connected());
  EXPECT_GT(map.nodes().size(), 20u);
  EXPECT_GT(map.edges().size(), map.nodes().size() - 1);  // more than a tree
}

TEST_P(TownSeedTest, AllNodesInsideExtentAndOnRoad) {
  Rng rng{GetParam()};
  const TownConfig cfg;
  const TownMap map = TownMap::generate(cfg, rng);
  for (const auto& n : map.nodes()) {
    EXPECT_GE(n.pos.x, 0.0);
    EXPECT_LE(n.pos.x, cfg.extent_m);
    EXPECT_GE(n.pos.y, 0.0);
    EXPECT_LE(n.pos.y, cfg.extent_m);
    EXPECT_TRUE(map.on_road(n.pos)) << "node centre must be on the road raster";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TownSeedTest, ::testing::Values(1, 2, 3, 17, 99));

TEST(TownTest, DeterministicForSeed) {
  Rng rng1{5};
  Rng rng2{5};
  const TownMap a = TownMap::generate({}, rng1);
  const TownMap b = TownMap::generate({}, rng2);
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].pos, b.nodes()[i].pos);
  }
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(TownTest, NearestNode) {
  Rng rng{7};
  const TownMap map = TownMap::generate({}, rng);
  for (const std::size_t i : {0u, 5u, 20u}) {
    if (i >= map.nodes().size()) continue;
    EXPECT_EQ(map.nearest_node(map.nodes()[i].pos), static_cast<int>(i));
  }
}

TEST(TownTest, OnRoadQueries) {
  Rng rng{9};
  const TownMap map = TownMap::generate({}, rng);
  // Midpoint of an edge is on the road; a point far off the map is not.
  const auto& [a, b] = map.edges().front();
  const Vec2 mid = (map.nodes()[static_cast<std::size_t>(a)].pos +
                    map.nodes()[static_cast<std::size_t>(b)].pos) /
                   2.0;
  EXPECT_TRUE(map.on_road(mid));
  EXPECT_FALSE(map.on_road({-50.0, -50.0}));
  EXPECT_FALSE(map.on_road({1e6, 1e6}));
}

TEST(TownTest, RandomRoadPointsAreOnRoad) {
  Rng rng{11};
  const TownMap map = TownMap::generate({}, rng);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(map.on_road(map.random_road_point(rng)));
  }
}

TEST(TownTest, UrbanBiasSkewsNodeChoice) {
  Rng rng{13};
  const TownMap map = TownMap::generate({}, rng);
  int urban = 0;
  const int draws = 2000;
  for (int i = 0; i < draws; ++i) {
    urban += map.is_urban_node(map.random_node_biased(rng, 0.9)) ? 1 : 0;
  }
  EXPECT_GT(urban, draws * 3 / 4);
}

// ---------------------------------------------------------------- routes

class RouteFixture : public ::testing::Test {
 protected:
  RouteFixture() : rng_(15), map_(TownMap::generate({}, rng_)) {}
  Rng rng_;
  TownMap map_;
};

TEST_F(RouteFixture, PlannedRouteUsesAdjacentNodes) {
  const Route r = plan_route(map_, 0, static_cast<int>(map_.nodes().size()) - 1);
  ASSERT_FALSE(r.empty());
  const auto& seq = r.node_sequence();
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const auto& nbrs = map_.nodes()[static_cast<std::size_t>(seq[i - 1])].neighbors;
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), seq[i]), nbrs.end())
        << "route hops between non-adjacent nodes";
  }
  EXPECT_EQ(seq.front(), 0);
  EXPECT_EQ(seq.back(), static_cast<int>(map_.nodes().size()) - 1);
}

TEST_F(RouteFixture, AStarIsNoWorseThanAnyGreedyPath) {
  // Route length must be at least the straight-line distance and finite.
  const Route r = plan_route(map_, 0, 10);
  ASSERT_FALSE(r.empty());
  const double straight = distance(map_.nodes()[0].pos, map_.nodes()[10].pos);
  EXPECT_GE(r.length(), straight - 1e-9);
  EXPECT_LT(r.length(), 20.0 * straight + 2000.0);
}

TEST_F(RouteFixture, SameNodeYieldsEmptyRoute) {
  EXPECT_TRUE(plan_route(map_, 3, 3).empty());
  EXPECT_THROW(plan_route(map_, -1, 3), std::invalid_argument);
  EXPECT_THROW(plan_route(map_, 3, 100000), std::invalid_argument);
}

TEST_F(RouteFixture, PositionAtEndpoints) {
  const Route r = plan_route(map_, 0, 7);
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(r.position_at(0.0), map_.nodes()[0].pos);
  EXPECT_EQ(r.position_at(r.length()), map_.nodes()[7].pos);
  EXPECT_EQ(r.position_at(-5.0), map_.nodes()[0].pos);        // clamped
  EXPECT_EQ(r.position_at(r.length() + 50.0), map_.nodes()[7].pos);
}

TEST_F(RouteFixture, ArcLengthParameterizationIsMetric) {
  const Route r = plan_route(map_, 0, 12);
  ASSERT_FALSE(r.empty());
  // Walking 10m along the route moves at most 10m in space.
  for (double s = 0.0; s + 10.0 < r.length(); s += 25.0) {
    EXPECT_LE(distance(r.position_at(s), r.position_at(s + 10.0)), 10.0 + 1e-9);
  }
}

TEST_F(RouteFixture, ProjectRecoversArcLength) {
  const Route r = plan_route(map_, 0, 12);
  ASSERT_FALSE(r.empty());
  for (double s = 0.0; s < r.length(); s += 17.0) {
    const double back = r.project(r.position_at(s));
    // Projection may legitimately differ where the polyline self-approaches,
    // but for most points it recovers s.
    EXPECT_NEAR(distance(r.position_at(back), r.position_at(s)), 0.0, 1.0);
  }
}

TEST_F(RouteFixture, TurnClassificationIsSymmetricOverManyRoutes) {
  int left = 0;
  int right = 0;
  Rng rng{17};
  for (int i = 0; i < 300; ++i) {
    const Route r = plan_route(map_, map_.random_node(rng), map_.random_node(rng));
    for (const auto& [s, cmd] : r.turns()) {
      left += cmd == data::Command::kLeft ? 1 : 0;
      right += cmd == data::Command::kRight ? 1 : 0;
    }
  }
  ASSERT_GT(left + right, 50);
  const double ratio = static_cast<double>(left) / (left + right);
  EXPECT_NEAR(ratio, 0.5, 0.15) << "turn direction distribution badly skewed";
}

TEST_F(RouteFixture, CommandWindowCoversApproachAndCorner) {
  Rng rng{19};
  for (int attempt = 0; attempt < 100; ++attempt) {
    const Route r = plan_route(map_, map_.random_node(rng), map_.random_node(rng));
    if (r.turns().empty()) continue;
    const auto& [turn_s, cmd] = r.turns().front();
    if (turn_s < 20.0) continue;
    EXPECT_EQ(r.command_at(turn_s - 20.0), cmd);  // within the 35 m lookahead
    EXPECT_EQ(r.command_at(turn_s + 5.0), cmd);   // still active just past it
    if (turn_s > 60.0) {
      EXPECT_EQ(r.command_at(turn_s - 50.0), data::Command::kFollow);
    }
    return;
  }
  GTEST_SKIP() << "no suitable turn found";
}

// ---------------------------------------------------------------- world

TEST(WorldTest, TrafficActuallyMoves) {
  World world{WorldConfig{}, 6, 1};
  std::vector<Vec2> start;
  for (int v = 0; v < 6; ++v) start.push_back(world.vehicle(v).pos);
  for (int i = 0; i < 600; ++i) world.step(0.5);  // 5 simulated minutes
  double total_displacement = 0.0;
  for (int v = 0; v < 6; ++v) total_displacement += distance(start[static_cast<std::size_t>(v)],
                                                             world.vehicle(v).pos);
  EXPECT_GT(total_displacement, 200.0) << "fleet appears gridlocked";
}

TEST(WorldTest, DeterministicEvolution) {
  World a{WorldConfig{}, 4, 3};
  World b{WorldConfig{}, 4, 3};
  for (int i = 0; i < 100; ++i) {
    a.step(0.5);
    b.step(0.5);
  }
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(a.vehicle(v).pos, b.vehicle(v).pos);
    EXPECT_DOUBLE_EQ(a.vehicle(v).speed, b.vehicle(v).speed);
  }
}

TEST(WorldTest, LaneOffsetSeparatesOpposingTraffic) {
  World world{WorldConfig{}, 1, 5};
  const auto& v = world.vehicle(0);
  const Vec2 lane = world.lane_position(v.route, 10.0);
  const Vec2 centre = v.route.position_at(10.0);
  EXPECT_NEAR(distance(lane, centre), world.config().lane_offset_m, 1e-9);
}

TEST(WorldTest, AllowedSpeedDropsBehindObstacle) {
  WorldConfig cfg;
  cfg.num_background_cars = 0;
  cfg.num_pedestrians = 0;
  World world{cfg, 1, 7};
  const auto& v = world.vehicle(0);
  const double free = world.allowed_speed_at(v.pos, v.heading, 12.0, 0);
  EXPECT_NEAR(free, 12.0, 1e-9);
  // Plant the external car 10 m dead ahead.
  world.set_external_car(v.pos + Vec2{std::cos(v.heading), std::sin(v.heading)} * 10.0);
  const double blocked = world.allowed_speed_at(v.pos, v.heading, 12.0, 0);
  EXPECT_LT(blocked, 5.0);
  world.set_external_car(std::nullopt);
}

TEST(WorldTest, CollisionDetection) {
  WorldConfig cfg;
  cfg.num_background_cars = 0;
  cfg.num_pedestrians = 0;
  World world{cfg, 2, 9};
  const Vec2 at = world.vehicle(1).pos;
  EXPECT_TRUE(world.collides(at, 1.0));
  EXPECT_FALSE(world.collides(at, 1.0, /*exclude_vehicle=*/1));
  EXPECT_FALSE(world.collides({-100.0, -100.0}, 1.0));
}

TEST(WorldTest, CollectSampleBasics) {
  World world{WorldConfig{}, 2, 11};
  for (int i = 0; i < 20; ++i) world.step(0.5);
  const data::Sample s = world.collect_sample(1, 12345);
  EXPECT_EQ(s.id, 12345u);
  EXPECT_EQ(s.source_vehicle, 1u);
  EXPECT_EQ(s.bev.cells.size(),
            static_cast<std::size_t>(world.config().bev.numel()));
  EXPECT_GE(s.weight, 1.0);
  // Waypoint labels are finite and mostly ahead.
  for (const float w : s.waypoints) EXPECT_TRUE(std::isfinite(w));
}

TEST(WorldTest, CollectSampleDeterministicPerId) {
  World world{WorldConfig{}, 1, 13};
  for (int i = 0; i < 10; ++i) world.step(0.5);
  const data::Sample a = world.collect_sample(0, 42);
  const data::Sample b = world.collect_sample(0, 42);
  EXPECT_EQ(a.bev.cells, b.bev.cells);
  EXPECT_EQ(a.waypoints, b.waypoints);
}

TEST(WorldTest, WaypointLabelsTrackExpertSpeed) {
  WorldConfig cfg;
  cfg.num_background_cars = 0;
  cfg.num_pedestrians = 0;
  cfg.perturb_prob = 0.0;  // no recovery augmentation for this check
  World world{cfg, 1, 17};
  // Cruise until up to speed.
  for (int i = 0; i < 60; ++i) world.step(0.5);
  const data::Sample s = world.collect_sample(0, 1);
  // First waypoint sits roughly v * dt ahead (straight road segments).
  const double wp0 = std::hypot(s.waypoints[0], s.waypoints[1]) * data::kWaypointScale;
  EXPECT_GT(wp0, 2.0);
  EXPECT_LT(wp0, world.config().car_max_speed * world.config().waypoint_dt_s + 3.0);
}

// ---------------------------------------------------------------- bev

TEST(BevTest, RoadChannelMarksEgoCell) {
  Rng rng{21};
  const TownMap map = TownMap::generate({}, rng);
  const auto& [a, b] = map.edges().front();
  const Vec2 pa = map.nodes()[static_cast<std::size_t>(a)].pos;
  const Vec2 pb = map.nodes()[static_cast<std::size_t>(b)].pos;
  const Vec2 mid = (pa + pb) / 2.0;
  const double heading = (pb - pa).heading();
  const auto spec = data::kDefaultBevSpec;
  const data::BevGrid g = render_bev(spec, map, mid, heading, {}, {}, Route{}, 0.0);
  EXPECT_EQ(g.at(spec, static_cast<int>(data::BevChannel::kRoad), ego_row(spec),
                 ego_col(spec)),
            1)
      << "the cell under the ego must be road";
}

TEST(BevTest, VehicleAheadAppearsInUpperRows) {
  Rng rng{23};
  const TownMap map = TownMap::generate({}, rng);
  const Vec2 ego{500.0, 500.0};
  const double heading = 0.0;  // facing +x
  const std::vector<Vec2> cars{ego + Vec2{10.0, 0.0}};
  const auto spec = data::kDefaultBevSpec;
  const data::BevGrid g = render_bev(spec, map, ego, heading, cars, {}, Route{}, 0.0);
  int marked_row = -1;
  for (int r = 0; r < spec.height; ++r) {
    for (int c = 0; c < spec.width; ++c) {
      if (g.at(spec, static_cast<int>(data::BevChannel::kVehicles), r, c) != 0) {
        marked_row = r;
      }
    }
  }
  ASSERT_GE(marked_row, 0) << "car ahead not rendered";
  EXPECT_LT(marked_row, ego_row(spec)) << "car ahead must appear above the ego row";
}

TEST(BevTest, PedestrianLeftAppearsLeftOfCentre) {
  Rng rng{25};
  const TownMap map = TownMap::generate({}, rng);
  const Vec2 ego{500.0, 500.0};
  const std::vector<Vec2> peds{ego + Vec2{6.0, 6.0}};  // ahead-left (heading 0)
  const auto spec = data::kDefaultBevSpec;
  const data::BevGrid g = render_bev(spec, map, ego, 0.0, {}, peds, Route{}, 0.0);
  bool found_left = false;
  for (int r = 0; r < spec.height; ++r) {
    for (int c = 0; c < ego_col(spec); ++c) {
      found_left |= g.at(spec, static_cast<int>(data::BevChannel::kPedestrians), r, c) != 0;
    }
  }
  EXPECT_TRUE(found_left);
}

TEST(BevTest, RouteChannelTracesPathAhead) {
  Rng rng{27};
  const TownMap map = TownMap::generate({}, rng);
  const Route r = plan_route(map, 0, 8);
  ASSERT_FALSE(r.empty());
  const auto spec = data::kDefaultBevSpec;
  const data::BevGrid g =
      render_bev(spec, map, r.position_at(0.0), r.heading_at(0.0), {}, {}, r, 0.0);
  int marked = 0;
  for (int i = 0; i < spec.height * spec.width; ++i) {
    marked += g.cells[static_cast<std::size_t>(
                  static_cast<int>(data::BevChannel::kRoute) * spec.height * spec.width + i)] != 0
                  ? 1
                  : 0;
  }
  EXPECT_GE(marked, 5) << "route channel should trace the path ahead";
}

TEST(BevTest, DistantAgentsNotRendered) {
  Rng rng{29};
  const TownMap map = TownMap::generate({}, rng);
  const Vec2 ego{500.0, 500.0};
  const std::vector<Vec2> cars{ego + Vec2{300.0, 0.0}};
  const auto spec = data::kDefaultBevSpec;
  const data::BevGrid g = render_bev(spec, map, ego, 0.0, cars, {}, Route{}, 0.0);
  for (int i = 0; i < spec.height * spec.width; ++i) {
    EXPECT_EQ(g.cells[static_cast<std::size_t>(
                  static_cast<int>(data::BevChannel::kVehicles) * spec.height * spec.width + i)],
              0);
  }
}

}  // namespace
}  // namespace lbchat::sim
