// Tests for the checksummed wire envelope (common/frame.h) and robustness
// property tests for the payload deserializers: any truncated or bit-flipped
// buffer must either decode to a rejection status or throw the documented
// exceptions — never crash, hang, or read out of bounds (run under
// LBCHAT_SANITIZE=address,undefined to enforce the last part).
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "common/bytes.h"
#include "common/frame.h"
#include "common/rng.h"
#include "coreset/coreset_io.h"
#include "data/sample_io.h"
#include "net/assist_io.h"
#include "nn/model_io.h"
#include "sim/route.h"
#include "sim/town.h"

namespace lbchat {
namespace {

TEST(FrameTest, Crc32KnownVector) {
  // The canonical IEEE 802.3 check value: CRC32("123456789") = 0xCBF43926.
  const std::vector<std::uint8_t> check{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(frame::crc32(check), 0xCBF43926u);
  EXPECT_EQ(frame::crc32({}), 0x00000000u);
}

TEST(FrameTest, EncodeDecodeRoundtrip) {
  const std::vector<std::uint8_t> payload{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  const auto wire = frame::encode(frame::FrameType::kCoreset, payload);
  EXPECT_EQ(wire.size(), frame::kHeaderBytes + payload.size());
  const auto dec = frame::decode(wire);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.type, frame::FrameType::kCoreset);
  EXPECT_EQ(std::vector<std::uint8_t>(dec.payload.begin(), dec.payload.end()), payload);
}

TEST(FrameTest, EmptyPayloadRoundtrip) {
  const auto wire = frame::encode(frame::FrameType::kAssist, {});
  const auto dec = frame::decode(wire);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.type, frame::FrameType::kAssist);
  EXPECT_TRUE(dec.payload.empty());
}

TEST(FrameTest, EveryTruncationRejected) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
  const auto wire = frame::encode(frame::FrameType::kModel, payload);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const auto dec = frame::decode(std::span{wire.data(), n});
    EXPECT_FALSE(dec.ok()) << "truncation to " << n << " bytes accepted";
  }
}

TEST(FrameTest, EverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> payload{10, 20, 30, 40, 50};
  const auto wire = frame::encode(frame::FrameType::kModel, payload);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto damaged = wire;
      damaged[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto dec = frame::decode(damaged);
      EXPECT_FALSE(dec.ok()) << "flip of byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(FrameTest, StatusDiscriminatesFailureModes) {
  const auto wire = frame::encode(frame::FrameType::kModel, std::vector<std::uint8_t>{9});
  EXPECT_EQ(frame::decode(std::span{wire.data(), 3}).status, frame::FrameStatus::kTooShort);
  {
    auto bad = wire;
    bad[0] ^= 0xFF;
    EXPECT_EQ(frame::decode(bad).status, frame::FrameStatus::kBadMagic);
  }
  {
    auto bad = wire;
    bad[4] = frame::kFrameVersion + 1;
    EXPECT_EQ(frame::decode(bad).status, frame::FrameStatus::kBadVersion);
  }
  {
    auto bad = wire;
    bad[6] = 0xFF;  // declared length far past the buffer
    EXPECT_EQ(frame::decode(bad).status, frame::FrameStatus::kBadLength);
  }
  {
    auto bad = wire;
    bad.back() ^= 0x01;  // payload damage
    EXPECT_EQ(frame::decode(bad).status, frame::FrameStatus::kBadChecksum);
  }
  EXPECT_EQ(frame::to_string(frame::FrameStatus::kBadChecksum), "bad-checksum");
}

// ---------------------------------------------------------------------------
// Deserializer robustness properties. The CRC envelope rejects transport
// damage; these tests cover the second line of defence — the deserializers
// themselves must reject (by documented exception), never crash or OOB-read,
// when handed malformed bytes that a hostile or buggy sender could produce.
// ---------------------------------------------------------------------------

/// Expect the callable to either succeed or throw one of the documented
/// deserialization exceptions; anything else (crash, OOB under sanitizers)
/// fails the test run itself.
template <typename F>
void expect_clean(F&& f) {
  try {
    (void)f();
  } catch (const std::out_of_range&) {
    // truncated buffer
  } catch (const std::runtime_error&) {
    // structurally invalid payload
  }
}

std::vector<std::uint8_t> sample_model_bytes() {
  nn::SparseModel m;
  m.dim = 64;
  m.dense = false;
  m.indices = {1, 5, 9, 33};
  m.values = {0.5f, -1.0f, 2.5f, 0.125f};
  ByteWriter w;
  nn::write_sparse_model(w, m);
  return w.bytes();
}

TEST(DeserializerRobustnessTest, SparseModelTruncationsAndBitFlips) {
  const auto bytes = sample_model_bytes();
  // Intact round trip first.
  {
    ByteReader r{bytes};
    const auto m = nn::read_sparse_model(r);
    EXPECT_EQ(m.indices.size(), 4u);
  }
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    expect_clean([&] {
      ByteReader r{std::span{bytes.data(), n}};
      return nn::read_sparse_model(r);
    });
  }
  Rng rng{7};
  for (int trial = 0; trial < 500; ++trial) {
    auto damaged = bytes;
    const auto bit = rng.uniform_index(damaged.size() * 8);
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    expect_clean([&] {
      ByteReader r{damaged};
      return nn::read_sparse_model(r);
    });
  }
}

TEST(DeserializerRobustnessTest, SparseModelStructuralValidation) {
  {
    // Dense flag with a sparse-sized value vector.
    nn::SparseModel m;
    m.dim = 64;
    m.dense = true;
    m.values = {1.0f};
    ByteWriter w;
    nn::write_sparse_model(w, m);
    ByteReader r{w.bytes()};
    EXPECT_THROW(nn::read_sparse_model(r), std::runtime_error);
  }
  {
    // Index past dim.
    nn::SparseModel m;
    m.dim = 4;
    m.indices = {9};
    m.values = {1.0f};
    ByteWriter w;
    nn::write_sparse_model(w, m);
    ByteReader r{w.bytes()};
    EXPECT_THROW(nn::read_sparse_model(r), std::runtime_error);
  }
  {
    // indices/values length mismatch.
    nn::SparseModel m;
    m.dim = 4;
    m.indices = {1, 2};
    m.values = {1.0f};
    ByteWriter w;
    nn::write_sparse_model(w, m);
    ByteReader r{w.bytes()};
    EXPECT_THROW(nn::read_sparse_model(r), std::runtime_error);
  }
}

coreset::Coreset sample_coreset() {
  coreset::Coreset c;
  Rng rng{3};
  for (int i = 0; i < 3; ++i) {
    data::Sample s;
    s.bev = data::BevGrid{c.spec};
    for (auto& cell : s.bev.cells) cell = rng.chance(0.3) ? 1 : 0;
    s.command = static_cast<data::Command>(i % data::kNumCommands);
    for (float& wp : s.waypoints) wp = static_cast<float>(rng.uniform(-1.0, 1.0));
    s.weight = 1.0 + i;
    s.id = 100u + static_cast<std::uint64_t>(i);
    s.source_vehicle = 2;
    c.samples.push_back(std::move(s));
    c.wc.push_back(0.5 * (i + 1));
  }
  return c;
}

TEST(DeserializerRobustnessTest, CoresetRoundtripAndCorruption) {
  const coreset::Coreset original = sample_coreset();
  ByteWriter w;
  coreset::write_coreset(w, original);
  const auto bytes = w.bytes();
  {
    ByteReader r{bytes};
    const auto c = coreset::read_coreset(r, original.spec);
    ASSERT_EQ(c.samples.size(), original.samples.size());
    EXPECT_EQ(c.wc, original.wc);
    for (std::size_t i = 0; i < c.samples.size(); ++i) {
      EXPECT_EQ(c.samples[i].bev.cells, original.samples[i].bev.cells);
      EXPECT_EQ(c.samples[i].command, original.samples[i].command);
      EXPECT_EQ(c.samples[i].waypoints, original.samples[i].waypoints);
      EXPECT_EQ(c.samples[i].weight, original.samples[i].weight);
      EXPECT_EQ(c.samples[i].id, original.samples[i].id);
    }
  }
  for (std::size_t n = 0; n < bytes.size(); n += 3) {
    expect_clean([&] {
      ByteReader r{std::span{bytes.data(), n}};
      return coreset::read_coreset(r, original.spec);
    });
  }
  Rng rng{11};
  for (int trial = 0; trial < 300; ++trial) {
    auto damaged = bytes;
    const auto bit = rng.uniform_index(damaged.size() * 8);
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    expect_clean([&] {
      ByteReader r{damaged};
      return coreset::read_coreset(r, original.spec);
    });
  }
}

TEST(DeserializerRobustnessTest, AssistRoundtripAndCorruption) {
  Rng rng{5};
  const auto map = sim::TownMap::generate(sim::TownConfig{}, rng);
  const sim::Route route = sim::plan_route(map, 0, static_cast<int>(map.nodes().size()) - 1);
  net::AssistInfo info;
  info.pos = Vec2{120.0, 340.0};
  info.velocity = Vec2{3.0, -1.5};
  info.speed = 3.35;
  info.route_s = 42.0;
  info.route = route.empty() ? nullptr : &route;
  info.bandwidth_bps = 31e6;

  ByteWriter w;
  net::write_assist(w, info);
  const auto bytes = w.bytes();
  {
    ByteReader r{bytes};
    const auto got = net::read_assist(r, map);
    EXPECT_EQ(got.info.pos, info.pos);
    EXPECT_EQ(got.info.speed, info.speed);
    const auto view = got.view();
    if (info.route != nullptr) {
      ASSERT_NE(view.route, nullptr);
      EXPECT_EQ(view.route->node_sequence(), info.route->node_sequence());
      EXPECT_DOUBLE_EQ(view.route->length(), info.route->length());
    }
  }
  for (std::size_t n = 0; n < bytes.size(); n += 2) {
    expect_clean([&] {
      ByteReader r{std::span{bytes.data(), n}};
      return net::read_assist(r, map);
    });
  }
  Rng flip_rng{13};
  for (int trial = 0; trial < 300; ++trial) {
    auto damaged = bytes;
    const auto bit = flip_rng.uniform_index(damaged.size() * 8);
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    expect_clean([&] {
      ByteReader r{damaged};
      return net::read_assist(r, map);
    });
  }
}

// --- semantic value validation (WireValueError) -------------------------------
//
// A CRC envelope only catches transport damage: a hostile sender checksums
// its own bad values. These pin the decode-time bounds that close that gap.

TEST(WireValueValidationTest, SampleWeightBoundsEnforced) {
  const coreset::Coreset c = sample_coreset();
  const auto write_with_weight = [&](double weight) {
    data::Sample s = c.samples[0];
    s.weight = weight;
    ByteWriter w;
    data::write_sample(w, s);
    return w.bytes();
  };
  // Boundary values pass.
  for (const double ok : {0.0, 1.0, data::kMaxWireSampleWeight}) {
    const auto bytes = write_with_weight(ok);
    ByteReader r{bytes};
    EXPECT_EQ(data::read_sample(r, c.spec).weight, ok);
  }
  // Non-finite and out-of-range weights are rejected as WireValueError —
  // which is-a runtime_error, so pre-existing catch sites keep working.
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(), std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(), -1.0, data::kMaxWireSampleWeight * 2.0}) {
    const auto bytes = write_with_weight(bad);
    ByteReader r{bytes};
    EXPECT_THROW((void)data::read_sample(r, c.spec), WireValueError) << "weight " << bad;
    ByteReader r2{bytes};
    EXPECT_THROW((void)data::read_sample(r2, c.spec), std::runtime_error);
  }
}

TEST(WireValueValidationTest, CoresetWeightBoundsEnforced) {
  const auto write_with_wc = [](double wc) {
    coreset::Coreset c = sample_coreset();
    c.wc.back() = wc;
    ByteWriter w;
    coreset::write_coreset(w, c);
    return w.bytes();
  };
  const coreset::Coreset ref = sample_coreset();
  for (const double ok : {0.0, coreset::kMaxWireCoresetWeight}) {
    const auto bytes = write_with_wc(ok);
    ByteReader r{bytes};
    EXPECT_EQ(coreset::read_coreset(r, ref.spec).wc.back(), ok);
  }
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(), std::numeric_limits<double>::infinity(),
        -0.5, coreset::kMaxWireCoresetWeight * 2.0}) {
    const auto bytes = write_with_wc(bad);
    ByteReader r{bytes};
    EXPECT_THROW((void)coreset::read_coreset(r, ref.spec), WireValueError) << "wc " << bad;
  }
}

TEST(WireValueValidationTest, AssistFieldBoundsEnforced) {
  Rng rng{5};
  const auto map = sim::TownMap::generate(sim::TownConfig{}, rng);
  net::AssistInfo base;
  base.pos = Vec2{120.0, 340.0};
  base.velocity = Vec2{3.0, -1.5};
  base.speed = 3.35;
  base.route_s = 42.0;
  base.bandwidth_bps = 31e6;

  const auto bytes_of = [](const net::AssistInfo& info) {
    ByteWriter w;
    net::write_assist(w, info);
    return w.bytes();
  };
  {
    const auto bytes = bytes_of(base);
    ByteReader r{bytes};
    EXPECT_NO_THROW((void)net::read_assist(r, map));
  }
  const auto expect_rejected = [&](const net::AssistInfo& info, const char* what) {
    const auto bytes = bytes_of(info);
    ByteReader r{bytes};
    EXPECT_THROW((void)net::read_assist(r, map), WireValueError) << what;
  };
  net::AssistInfo bad = base;
  bad.pos.x = std::numeric_limits<double>::quiet_NaN();
  expect_rejected(bad, "NaN position");
  bad = base;
  bad.pos.y = 2.0 * net::kMaxWireAssistCoordM;
  expect_rejected(bad, "absurd coordinate");
  bad = base;
  bad.velocity.x = -2.0 * net::kMaxWireAssistSpeedMps;
  expect_rejected(bad, "absurd velocity");
  bad = base;
  bad.speed = std::numeric_limits<double>::infinity();
  expect_rejected(bad, "infinite speed");
  bad = base;
  bad.route_s = 2.0 * net::kMaxWireAssistRouteS;
  expect_rejected(bad, "absurd route offset");
  bad = base;
  bad.bandwidth_bps = -1.0;
  expect_rejected(bad, "negative bandwidth");
  bad = base;
  bad.bandwidth_bps = 2.0 * net::kMaxWireAssistBandwidthBps;
  expect_rejected(bad, "absurd bandwidth");
}

}  // namespace
}  // namespace lbchat
