// Unit tests for the neural-network library: layer forward math, gradient
// checks against finite differences, GEMM-vs-naive parity, optimizers, and
// the driving policy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/frame.h"
#include "nn/gemm.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/policy.h"

namespace lbchat::nn {
namespace {

TEST(ParamStoreTest, AllocateAndViews) {
  ParamStore store;
  const auto a = store.allocate(4);
  const auto b = store.allocate(3);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(store.size(), 7u);
  store.param(a, 4)[2] = 1.5f;
  EXPECT_FLOAT_EQ(store.params()[2], 1.5f);
  store.grad(b, 3)[0] = -2.0f;
  store.zero_grads();
  EXPECT_FLOAT_EQ(store.grads()[4], 0.0f);
}

TEST(LinearTest, ForwardKnownValues) {
  ParamStore store;
  Rng init{1};
  Linear lin{store, 2, 3, init};
  // Overwrite with known weights: W = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 1].
  auto w = store.param(lin.w_off, 6);
  const float wv[6] = {1, 2, 3, 4, 5, 6};
  std::copy(wv, wv + 6, w.begin());
  auto b = store.param(lin.b_off, 3);
  const float bv[3] = {0.5f, -0.5f, 1.0f};
  std::copy(bv, bv + 3, b.begin());

  const std::vector<float> x{1.0f, -1.0f};
  std::vector<float> y(3, 0.0f);
  lin.forward(store, x, y, 1);
  EXPECT_FLOAT_EQ(y[0], 1 * 1 + 2 * -1 + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 3 * 1 + 4 * -1 - 0.5f);
  EXPECT_FLOAT_EQ(y[2], 5 * 1 + 6 * -1 + 1.0f);
}

TEST(LinearTest, GradientMatchesFiniteDifferences) {
  ParamStore store;
  Rng init{2};
  Linear lin{store, 3, 2, init};
  const std::vector<float> x{0.5f, -1.0f, 2.0f, 1.0f, 0.0f, -0.5f};  // batch of 2
  const std::vector<float> gy{1.0f, -2.0f, 0.5f, 1.5f};

  // Analytic gradients.
  std::vector<float> gx(x.size(), 0.0f);
  std::vector<float> y(4, 0.0f);
  lin.forward(store, x, y, 2);
  lin.backward(store, x, gy, gx, 2);

  // Scalar objective J = sum(gy * y) so dJ/dparam is exactly the backward's
  // accumulation and dJ/dx is gx.
  const auto objective = [&](std::span<const float> input) {
    std::vector<float> out(4, 0.0f);
    lin.forward(store, input, out, 2);
    double j = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) j += gy[i] * out[i];
    return j;
  };
  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<float> xp = x;
    std::vector<float> xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double fd = (objective(xp) - objective(xm)) / (2.0 * eps);
    EXPECT_NEAR(gx[i], fd, 1e-2) << "input grad " << i;
  }
  // Parameter gradients.
  for (const std::size_t off : {lin.w_off, lin.b_off}) {
    const std::size_t count = off == lin.w_off ? 6u : 2u;
    for (std::size_t i = 0; i < count; ++i) {
      const float orig = store.params()[off + i];
      store.params()[off + i] = orig + static_cast<float>(eps);
      const double jp = objective(x);
      store.params()[off + i] = orig - static_cast<float>(eps);
      const double jm = objective(x);
      store.params()[off + i] = orig;
      const double fd = (jp - jm) / (2.0 * eps);
      EXPECT_NEAR(store.grads()[off + i], fd, 1e-2) << "param grad " << off + i;
    }
  }
}

TEST(Conv2dTest, OutputShape) {
  ParamStore store;
  Rng init{3};
  Conv2d conv{store, 4, 8, 16, 16, 3, 2, 1, init};
  EXPECT_EQ(conv.out_h, 8);
  EXPECT_EQ(conv.out_w, 8);
  Conv2d conv2{store, 8, 16, 8, 8, 3, 2, 1, init};
  EXPECT_EQ(conv2.out_h, 4);
  EXPECT_EQ(conv2.out_w, 4);
}

TEST(Conv2dTest, IdentityKernelPassesThrough) {
  ParamStore store;
  Rng init{4};
  Conv2d conv{store, 1, 1, 4, 4, 3, 1, 1, init};
  auto w = store.param(conv.w_off, 9);
  std::fill(w.begin(), w.end(), 0.0f);
  w[4] = 1.0f;  // centre tap
  store.param(conv.b_off, 1)[0] = 0.0f;
  std::vector<float> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i) * 0.1f;
  std::vector<float> y(16, 0.0f);
  conv.forward(store, x, y, 1);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(y[i], x[i], 1e-6);
}

TEST(Conv2dTest, GradientMatchesFiniteDifferences) {
  ParamStore store;
  Rng init{5};
  Conv2d conv{store, 2, 3, 5, 5, 3, 2, 1, init};
  Rng data{6};
  std::vector<float> x(static_cast<std::size_t>(2 * 5 * 5));
  for (float& v : x) v = static_cast<float>(data.normal());
  std::vector<float> gy(conv.out_numel());
  for (float& v : gy) v = static_cast<float>(data.normal());

  std::vector<float> y(conv.out_numel(), 0.0f);
  std::vector<float> gx(x.size(), 0.0f);
  store.zero_grads();
  conv.forward(store, x, y, 1);
  conv.backward(store, x, gy, gx, 1);

  const auto objective = [&](std::span<const float> input) {
    std::vector<float> out(conv.out_numel(), 0.0f);
    conv.forward(store, input, out, 1);
    double j = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) j += gy[i] * out[i];
    return j;
  };
  const double eps = 1e-3;
  // Spot-check a spread of input coordinates.
  for (const std::size_t i : {0u, 7u, 13u, 24u, 31u, 49u}) {
    std::vector<float> xp = x;
    std::vector<float> xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double fd = (objective(xp) - objective(xm)) / (2.0 * eps);
    EXPECT_NEAR(gx[i], fd, 2e-2) << "conv input grad " << i;
  }
  // Spot-check parameter gradients (weights + a bias).
  for (const std::size_t i : {0u, 5u, 17u, 26u, 53u}) {
    const float orig = store.params()[conv.w_off + i];
    store.params()[conv.w_off + i] = orig + static_cast<float>(eps);
    const double jp = objective(x);
    store.params()[conv.w_off + i] = orig - static_cast<float>(eps);
    const double jm = objective(x);
    store.params()[conv.w_off + i] = orig;
    EXPECT_NEAR(store.grads()[conv.w_off + i], (jp - jm) / (2.0 * eps), 2e-2);
  }
}

// -------------------------------------------------- GEMM / naive parity

float max_abs_diff(std::span<const float> a, std::span<const float> b) {
  EXPECT_EQ(a.size(), b.size());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(GemmTest, BlockedKernelsMatchNaive) {
  Rng rng{101};
  // Shapes straddling the 4-row register block and the kGemmKBlock K tile.
  const int shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {4, 4, 64},
                           {8, 64, 36}, {17, 9, 129}, {5, 33, 70}};
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1], k = s[2];
    const auto base = random_vec(static_cast<std::size_t>(m) * n, rng);
    {
      const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
      const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
      auto c0 = base, c1 = base;
      naive_sgemm(m, n, k, a.data(), b.data(), c0.data());
      sgemm(m, n, k, a.data(), b.data(), c1.data());
      EXPECT_LE(max_abs_diff(c0, c1), 1e-4f) << "sgemm " << m << "x" << n << "x" << k;
    }
    {
      const auto a = random_vec(static_cast<std::size_t>(k) * m, rng);
      const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
      auto c0 = base, c1 = base;
      naive_sgemm_atb(m, n, k, a.data(), b.data(), c0.data());
      sgemm_atb(m, n, k, a.data(), b.data(), c1.data());
      EXPECT_LE(max_abs_diff(c0, c1), 1e-4f) << "sgemm_atb " << m << "x" << n << "x" << k;
    }
    {
      const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
      const auto b = random_vec(static_cast<std::size_t>(n) * k, rng);
      auto c0 = base, c1 = base;
      naive_sgemm_abt(m, n, k, a.data(), b.data(), c0.data());
      sgemm_abt(m, n, k, a.data(), b.data(), c1.data());
      EXPECT_LE(max_abs_diff(c0, c1), 1e-4f) << "sgemm_abt " << m << "x" << n << "x" << k;
    }
  }
}

struct ConvShape {
  int in_ch, out_ch, in_h, in_w, kernel, stride, pad, batch;
};

class Conv2dParityTest : public ::testing::TestWithParam<ConvShape> {};

TEST_P(Conv2dParityTest, GemmPathMatchesNaive) {
  const ConvShape p = GetParam();
  ParamStore store;
  Rng init{211};
  Conv2d conv{store, p.in_ch, p.out_ch, p.in_h, p.in_w, p.kernel, p.stride, p.pad, init};
  Rng data{223};
  const auto x =
      random_vec(static_cast<std::size_t>(p.batch) * conv.in_numel(), data);
  const auto gy =
      random_vec(static_cast<std::size_t>(p.batch) * conv.out_numel(), data);

  // Forward parity.
  std::vector<float> y_naive(gy.size(), 0.0f);
  std::vector<float> y_gemm(gy.size(), 0.0f);
  conv.naive_forward(store, x, y_naive, p.batch);
  conv.forward(store, x, y_gemm, p.batch);
  EXPECT_LE(max_abs_diff(y_naive, y_gemm), 1e-4f);

  // Backward parity: param grads and input grads.
  std::vector<float> gx_naive(x.size(), 0.0f);
  std::vector<float> gx_gemm(x.size(), 0.0f);
  store.zero_grads();
  conv.naive_backward(store, x, gy, gx_naive, p.batch);
  const std::vector<float> grads_naive{store.grads().begin(), store.grads().end()};
  store.zero_grads();
  conv.backward(store, x, gy, gx_gemm, p.batch);
  EXPECT_LE(max_abs_diff(grads_naive, store.grads()), 1e-4f);
  EXPECT_LE(max_abs_diff(gx_naive, gx_gemm), 1e-4f);

  // gx may be skipped (first layer): param grads must be unaffected.
  store.zero_grads();
  conv.backward(store, x, gy, /*gx=*/{}, p.batch);
  EXPECT_LE(max_abs_diff(grads_naive, store.grads()), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv2dParityTest,
    ::testing::Values(ConvShape{1, 1, 5, 5, 3, 1, 1, 1},    // minimal
                      ConvShape{2, 3, 7, 6, 3, 2, 1, 2},    // stride 2, rect input
                      ConvShape{3, 4, 9, 9, 5, 2, 2, 3},    // 5x5 kernel, pad 2
                      ConvShape{2, 2, 6, 6, 3, 3, 0, 2},    // stride 3, no pad
                      ConvShape{4, 8, 16, 16, 3, 2, 1, 4},  // the policy's conv1
                      ConvShape{8, 16, 8, 8, 3, 2, 1, 4})); // the policy's conv2

TEST(LinearParityTest, GemmPathMatchesNaive) {
  const int shapes[][3] = {{3, 2, 1}, {17, 5, 4}, {256, 64, 32}, {64, 32, 7}};
  for (const auto& s : shapes) {
    const int in = s[0], out = s[1], batch = s[2];
    ParamStore store;
    Rng init{307};
    Linear lin{store, in, out, init};
    Rng data{311};
    const auto x = random_vec(static_cast<std::size_t>(batch) * in, data);
    const auto gy = random_vec(static_cast<std::size_t>(batch) * out, data);

    std::vector<float> y_naive(gy.size(), 0.0f);
    std::vector<float> y_gemm(gy.size(), 0.0f);
    lin.naive_forward(store, x, y_naive, batch);
    lin.forward(store, x, y_gemm, batch);
    EXPECT_LE(max_abs_diff(y_naive, y_gemm), 1e-4f) << in << "->" << out << " b" << batch;

    std::vector<float> gx_naive(x.size(), 0.0f);
    std::vector<float> gx_gemm(x.size(), 0.0f);
    store.zero_grads();
    lin.naive_backward(store, x, gy, gx_naive, batch);
    const std::vector<float> grads_naive{store.grads().begin(), store.grads().end()};
    store.zero_grads();
    lin.backward(store, x, gy, gx_gemm, batch);
    EXPECT_LE(max_abs_diff(grads_naive, store.grads()), 1e-4f);
    EXPECT_LE(max_abs_diff(gx_naive, gx_gemm), 1e-4f);
  }
}

TEST(ReluTest, ForwardAndBackward) {
  std::vector<float> x{-1.0f, 0.0f, 2.0f};
  relu_forward(x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 2.0f);
  std::vector<float> gy{5.0f, 5.0f, 5.0f};
  relu_backward(x, gy);
  EXPECT_FLOAT_EQ(gy[0], 0.0f);  // dead unit
  EXPECT_FLOAT_EQ(gy[1], 0.0f);
  EXPECT_FLOAT_EQ(gy[2], 5.0f);
}

// ---------------------------------------------------------------- optimizers

TEST(SgdTest, PlainStep) {
  Sgd opt{0.1, /*momentum=*/0.0};
  std::vector<float> p{1.0f};
  const std::vector<float> g{2.0f};
  opt.step(p, g);
  EXPECT_NEAR(p[0], 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(SgdTest, MomentumAccumulates) {
  Sgd opt{0.1, /*momentum=*/0.5};
  std::vector<float> p{0.0f};
  const std::vector<float> g{1.0f};
  opt.step(p, g);  // v=1, p=-0.1
  opt.step(p, g);  // v=1.5, p=-0.25
  EXPECT_NEAR(p[0], -0.25f, 1e-6);
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
  Sgd opt{0.1, 0.0, /*weight_decay=*/1.0};
  std::vector<float> p{1.0f};
  const std::vector<float> g{0.0f};
  opt.step(p, g);
  EXPECT_NEAR(p[0], 0.9f, 1e-6);
}

TEST(SgdTest, SizeMismatchThrows) {
  Sgd opt{0.1};
  std::vector<float> p{1.0f, 2.0f};
  const std::vector<float> g{1.0f};
  EXPECT_THROW(opt.step(p, g), std::invalid_argument);
}

TEST(AdamTest, FirstStepHasLearningRateMagnitude) {
  Adam opt{0.01};
  std::vector<float> p{0.0f};
  const std::vector<float> g{0.5f};
  opt.step(p, g);
  // Bias correction makes the first Adam step ~= -lr * sign(g).
  EXPECT_NEAR(p[0], -0.01f, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam opt{0.05};
  std::vector<float> p{3.0f};
  for (int i = 0; i < 800; ++i) {
    const std::vector<float> g{2.0f * p[0]};  // d/dp of p^2
    opt.step(p, g);
  }
  EXPECT_NEAR(p[0], 0.0f, 0.01f);
}

TEST(AdamTest, ResetClearsState) {
  Adam opt{0.01};
  std::vector<float> p{0.0f};
  const std::vector<float> g{1.0f};
  opt.step(p, g);
  const float after_one = p[0];
  opt.reset();
  std::vector<float> q{0.0f};
  opt.step(q, g);
  EXPECT_FLOAT_EQ(q[0], after_one);
}

TEST(OptimizerTest, CloneCopiesHyperparameters) {
  Sgd opt{0.07, 0.8, 0.01};
  auto clone = opt.clone();
  EXPECT_DOUBLE_EQ(clone->learning_rate(), 0.07);
}

// ---------------------------------------------------------------- policy

data::Sample make_sample(Rng& rng, data::Command cmd) {
  data::Sample s;
  s.bev = data::BevGrid{data::kDefaultBevSpec};
  for (auto& c : s.bev.cells) c = rng.chance(0.2) ? 1 : 0;
  s.command = cmd;
  for (auto& w : s.waypoints) w = static_cast<float>(rng.uniform(-0.5, 0.5));
  s.id = rng.next_u64();
  return s;
}

TEST(PolicyTest, ParameterCountMatchesArchitecture) {
  const DrivingPolicy p;
  // conv1 4->8 3x3 (+bias), conv2 8->16 3x3 (+bias), fc 256->64 (+bias),
  // 4 branches of (64->32 + 32->8) with biases.
  const std::size_t expected = (4 * 8 * 9 + 8) + (8 * 16 * 9 + 16) + (256 * 64 + 64) +
                               4 * ((64 * 32 + 32) + (32 * 8 + 8));
  EXPECT_EQ(p.param_count(), expected);
}

TEST(PolicyTest, IdenticalSeedsIdenticalParams) {
  const DrivingPolicy a{{}, 42};
  const DrivingPolicy b{{}, 42};
  ASSERT_EQ(a.param_count(), b.param_count());
  for (std::size_t i = 0; i < a.param_count(); ++i) {
    EXPECT_FLOAT_EQ(a.params()[i], b.params()[i]);
  }
}

TEST(PolicyTest, SetParamsRoundtrip) {
  DrivingPolicy a{{}, 1};
  const DrivingPolicy b{{}, 2};
  a.set_params(b.params());
  Rng rng{3};
  const auto s = make_sample(rng, data::Command::kLeft);
  const auto pa = a.predict(s.bev, s.command);
  const auto pb = b.predict(s.bev, s.command);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_FLOAT_EQ(pa[i], pb[i]);
}

TEST(PolicyTest, SetParamsRejectsWrongSize) {
  DrivingPolicy p;
  EXPECT_THROW(p.set_params(std::vector<float>(3, 0.0f)), std::invalid_argument);
}

TEST(PolicyTest, CommandBranchesDiffer) {
  const DrivingPolicy p{{}, 7};
  Rng rng{5};
  const auto s = make_sample(rng, data::Command::kFollow);
  const auto follow = p.predict(s.bev, data::Command::kFollow);
  const auto left = p.predict(s.bev, data::Command::kLeft);
  double diff = 0.0;
  for (std::size_t i = 0; i < follow.size(); ++i) {
    diff += std::abs(static_cast<double>(follow[i]) - left[i]);
  }
  EXPECT_GT(diff, 1e-6);  // distinct branch heads produce distinct outputs
}

TEST(PolicyTest, SampleLossIsMeanAbsoluteError) {
  const DrivingPolicy p{{}, 9};
  Rng rng{11};
  const auto s = make_sample(rng, data::Command::kRight);
  const auto pred = p.predict(s.bev, s.command);
  double expected = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    expected += std::abs(static_cast<double>(pred[i]) - s.waypoints[i]);
  }
  expected /= static_cast<double>(pred.size());
  EXPECT_NEAR(p.sample_loss(s), expected, 1e-6);
}

TEST(PolicyTest, WeightedLossRespectsWeights) {
  const DrivingPolicy p{{}, 13};
  Rng rng{17};
  const std::vector<data::Sample> samples{make_sample(rng, data::Command::kFollow),
                                          make_sample(rng, data::Command::kLeft)};
  const double l0 = p.sample_loss(samples[0]);
  const double l1 = p.sample_loss(samples[1]);
  const std::vector<double> weights{3.0, 1.0};
  EXPECT_NEAR(p.weighted_loss(samples, weights), (3.0 * l0 + l1) / 4.0, 1e-9);
  EXPECT_NEAR(p.weighted_loss(samples), (l0 + l1) / 2.0, 1e-9);
  EXPECT_THROW((void)p.weighted_loss(samples, std::vector<double>{1.0}),
               std::invalid_argument);
}

class PolicyTrainingTest : public ::testing::TestWithParam<data::Command> {};

TEST_P(PolicyTrainingTest, OverfitsSmallDataset) {
  DrivingPolicy p{{}, 21};
  Adam opt{2e-3};
  Rng rng{23};
  std::vector<data::Sample> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(make_sample(rng, GetParam()));
  std::vector<const data::Sample*> batch;
  for (const auto& s : samples) batch.push_back(&s);
  const double before = p.weighted_loss(samples);
  double last = before;
  for (int step = 0; step < 150; ++step) last = p.train_batch(batch, opt);
  EXPECT_LT(last, before * 0.3) << "training failed to reduce loss";
}

INSTANTIATE_TEST_SUITE_P(AllCommands, PolicyTrainingTest,
                         ::testing::Values(data::Command::kFollow, data::Command::kLeft,
                                           data::Command::kRight, data::Command::kStraight));

TEST(PolicyTest, ComputeBatchGradientDoesNotChangeParams) {
  DrivingPolicy p{{}, 25};
  Rng rng{27};
  const auto s = make_sample(rng, data::Command::kFollow);
  const data::Sample* batch[1] = {&s};
  const std::vector<float> before{p.params().begin(), p.params().end()};
  p.compute_batch_gradient(batch);
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_FLOAT_EQ(p.params()[i], before[i]);
  // And the gradient buffer is non-trivial.
  double gsum = 0.0;
  for (const float g : p.grads()) gsum += std::abs(static_cast<double>(g));
  EXPECT_GT(gsum, 0.0);
}

TEST(PolicyTest, ParamL2Norm) {
  EXPECT_DOUBLE_EQ(param_l2_norm(std::vector<float>{3.0f, 4.0f}), 5.0);
  EXPECT_DOUBLE_EQ(param_l2_norm(std::vector<float>{}), 0.0);
}

}  // namespace
}  // namespace lbchat::nn
