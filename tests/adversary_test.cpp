// Byzantine-adversary and fleet-heterogeneity layer (engine/adversary.h):
// payload-mutation units (poisoned frames must stay CRC-valid and
// structurally decodable), deterministic membership, straggler gating,
// thread-count invariance, and checkpoint/resume of adversarial runs.

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "common/bytes.h"
#include "common/frame.h"
#include "coreset/coreset_io.h"
#include "engine/adversary.h"
#include "engine/checkpoint.h"
#include "engine/fleet.h"
#include "nn/model_io.h"

namespace {

using namespace lbchat;
using engine::AdversaryConfig;
using engine::AdversaryModel;
using engine::FleetSim;
using engine::HeteroConfig;
using engine::HeteroModel;

constexpr int kKindAssist = 0;
constexpr int kKindCoreset = 1;
constexpr int kKindModel = 2;

data::BevSpec tiny_bev() {
  data::BevSpec spec;
  spec.channels = 1;
  spec.height = 4;
  spec.width = 4;
  spec.cell_m = 1.0;
  return spec;
}

/// Tiny adversarial scenario (checkpoint_test.cpp tiny_cfg shape).
engine::ScenarioConfig adv_cfg(std::uint64_t seed, double byz_frac, double straggler_frac) {
  engine::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_vehicles = 4;
  cfg.world.num_background_cars = 4;
  cfg.world.num_pedestrians = 6;
  cfg.collect_duration_s = 30.0;
  cfg.collect_fps = 1.0;
  cfg.eval_frames_per_vehicle = 2;
  cfg.duration_s = 30.0;
  cfg.eval_interval_s = 10.0;
  // 4 s (not the 2 s used by checkpoint_test's tiny_cfg): at 2 s the barely
  // trained models drift apart enough that LbChat's 2x coreset-loss gate
  // rejects every compressed peer model and no aggregation ever happens,
  // which would starve the peer-weight assertions below.
  cfg.train_interval_s = 4.0;
  cfg.batch_size = 4;
  cfg.coreset_size = 12;
  cfg.pair_cooldown_s = 5.0;
  cfg.time_budget_s = 8.0;
  cfg.radio.max_range_m = 400.0;
  cfg.wire.model_bytes = 4ull * 1024 * 1024;
  cfg.wire.coreset_bytes_per_sample = 1024;
  cfg.adversary.byzantine_frac = byz_frac;
  if (straggler_frac > 0.0) {
    cfg.hetero.straggler_frac = straggler_frac;
    cfg.hetero.slow_radio_frac = straggler_frac;
    cfg.hetero.dataset_skew = 0.4;
  }
  return cfg;
}

FleetSim make_sim(const engine::ScenarioConfig& cfg, const char* approach) {
  return FleetSim{cfg, baselines::make_strategy(baselines::approach_from_name(approach))};
}

std::vector<std::uint64_t> curve_bits(const engine::RunMetrics& m) {
  std::vector<std::uint64_t> bits;
  for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
    bits.push_back(std::bit_cast<std::uint64_t>(m.loss_curve.times[i]));
    bits.push_back(std::bit_cast<std::uint64_t>(m.loss_curve.values[i]));
  }
  for (std::size_t i = 0; i < m.honest_loss_curve.size(); ++i) {
    bits.push_back(std::bit_cast<std::uint64_t>(m.honest_loss_curve.values[i]));
    bits.push_back(std::bit_cast<std::uint64_t>(m.attacker_loss_curve.values[i]));
  }
  return bits;
}

// --- config / membership ----------------------------------------------------

TEST(Adversary, AllOffIsInert) {
  const AdversaryConfig off{};
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(HeteroConfig{}.enabled());

  AdversaryModel model{off, 42, 8};
  EXPECT_FALSE(model.active());
  EXPECT_EQ(model.byzantine_count(), 0);
  for (int v = 0; v < 8; ++v) EXPECT_FALSE(model.byzantine(v));

  // Inert payload hook: nothing is touched, nothing reported mutated.
  ByteWriter w;
  nn::SparseModel m;
  m.dim = 4;
  m.dense = true;
  m.values = {1.0f, -2.0f, 3.0f, -4.0f};
  nn::write_sparse_model(w, m);
  auto framed = frame::encode(frame::FrameType::kModel, w.bytes());
  const auto before = framed;
  EXPECT_FALSE(model.transform_payload(kKindModel, framed, tiny_bev()));
  EXPECT_EQ(framed, before);

  HeteroModel hetero{HeteroConfig{}, 42, 8};
  EXPECT_FALSE(hetero.active());
  for (int v = 0; v < 8; ++v) {
    EXPECT_EQ(hetero.compute_rate(v), 1.0);
    EXPECT_EQ(hetero.radio_scale(v), 1.0);
    EXPECT_EQ(hetero.dataset_keep(v), 1.0);
    EXPECT_TRUE(hetero.should_train(v));
  }
}

TEST(Adversary, AllOffKeepsConfigFingerprintAndCheckpointTailAbsent) {
  // The conditional config tail must leave a default config's fingerprint
  // untouched by the mere existence of the adversary/hetero fields, and two
  // enabled configs with different knobs must diverge.
  engine::ScenarioConfig base = adv_cfg(7, 0.0, 0.0);
  engine::ScenarioConfig enabled = adv_cfg(7, 0.25, 0.0);
  engine::ScenarioConfig enabled2 = adv_cfg(7, 0.5, 0.0);
  EXPECT_NE(engine::config_fingerprint(base), engine::config_fingerprint(enabled));
  EXPECT_NE(engine::config_fingerprint(enabled), engine::config_fingerprint(enabled2));

  engine::ScenarioConfig hetero = adv_cfg(7, 0.0, 0.0);
  hetero.hetero.straggler_frac = 0.5;
  EXPECT_NE(engine::config_fingerprint(base), engine::config_fingerprint(hetero));
}

TEST(Adversary, MembershipIsSeededAndSized) {
  const AdversaryConfig cfg{.byzantine_frac = 0.25};
  AdversaryModel a{cfg, 11, 8};
  AdversaryModel b{cfg, 11, 8};
  EXPECT_EQ(a.byzantine_count(), 2);  // lround(0.25 * 8)
  int flagged = 0;
  for (int v = 0; v < 8; ++v) {
    EXPECT_EQ(a.byzantine(v), b.byzantine(v)) << "membership must be seed-deterministic";
    flagged += a.byzantine(v) ? 1 : 0;
  }
  EXPECT_EQ(flagged, 2);

  AdversaryModel half{AdversaryConfig{.byzantine_frac = 0.5}, 11, 8};
  EXPECT_EQ(half.byzantine_count(), 4);
}

// --- payload mutation units -------------------------------------------------

TEST(Adversary, PoisonedModelFrameStaysValidAndSignFlipped) {
  AdversaryConfig cfg{.byzantine_frac = 1.0};
  cfg.poison_scale = 1.5;
  AdversaryModel model{cfg, 3, 2};

  nn::SparseModel m;
  m.dim = 6;
  m.dense = false;
  m.indices = {0, 2, 5};
  m.values = {1.0f, -2.0f, 0.5f};
  ByteWriter w;
  nn::write_sparse_model(w, m);
  // Trailing bytes after the sparse model (a gossip composition vector) must
  // ride through the mutation verbatim.
  const std::vector<double> comp{0.25, 0.75};
  w.write_f64_vec(comp);
  auto framed = frame::encode(frame::FrameType::kModel, w.bytes());

  ASSERT_TRUE(model.transform_payload(kKindModel, framed, tiny_bev()));
  const auto dec = frame::decode(framed);
  ASSERT_TRUE(dec.ok()) << "mutated frame must stay CRC-valid";
  ASSERT_EQ(dec.type, frame::FrameType::kModel);
  ByteReader r{dec.payload};
  const nn::SparseModel out = nn::read_sparse_model(r);
  ASSERT_EQ(out.values.size(), m.values.size());
  for (std::size_t i = 0; i < out.values.size(); ++i) {
    EXPECT_FLOAT_EQ(out.values[i], -1.5f * m.values[i]);
  }
  EXPECT_EQ(out.indices, m.indices);
  EXPECT_EQ(r.read_f64_vec(), comp);
  EXPECT_TRUE(r.exhausted());
}

TEST(Adversary, InflatedCoresetStaysDecodableAndBounded) {
  AdversaryConfig cfg{.byzantine_frac = 1.0};
  cfg.coreset_inflation = 1e9;  // drives weights into the internal cap
  AdversaryModel model{cfg, 3, 2};

  const auto spec = tiny_bev();
  coreset::Coreset c;
  c.spec = spec;
  data::Sample s;
  s.bev = data::BevGrid{spec};
  s.weight = 1.0;
  c.samples.push_back(s);
  c.wc = {2.0};
  ByteWriter w;
  coreset::write_coreset(w, c);
  auto framed = frame::encode(frame::FrameType::kCoreset, w.bytes());

  ASSERT_TRUE(model.transform_payload(kKindCoreset, framed, spec));
  const auto dec = frame::decode(framed);
  ASSERT_TRUE(dec.ok());
  ByteReader r{dec.payload};
  // Must parse through the validating decoder: the attack is required to
  // survive wire validation (inflation is capped below the decoder bound).
  const coreset::Coreset out = coreset::read_coreset(r, spec);
  ASSERT_EQ(out.wc.size(), 1u);
  EXPECT_GT(out.wc[0], c.wc[0]);
  EXPECT_LE(out.wc[0], coreset::kMaxWireCoresetWeight);
}

TEST(Adversary, AssistLieKeepsFrameDecodable) {
  AdversaryConfig cfg{.byzantine_frac = 1.0};
  AdversaryModel model{cfg, 3, 2};

  ByteWriter w;
  const double fields[7] = {10.0, 20.0, 3.0, -4.0, 5.0, 60.0, 31e6};
  for (const double f : fields) w.write_f64(f);
  w.write_u32(3);
  for (const std::int32_t node : {1, 2, 3}) w.write_i32(node);
  auto framed = frame::encode(frame::FrameType::kAssist, w.bytes());

  ASSERT_TRUE(model.transform_payload(kKindAssist, framed, tiny_bev()));
  const auto dec = frame::decode(framed);
  ASSERT_TRUE(dec.ok());
  ByteReader r{dec.payload};
  double out[7];
  for (double& f : out) f = r.read_f64();
  EXPECT_EQ(out[2], -fields[2]);  // velocity negated
  EXPECT_EQ(out[3], -fields[3]);
  EXPECT_EQ(out[6], fields[6] * cfg.assist_bandwidth_lie);
  ASSERT_EQ(r.read_u32(), 3u);
  EXPECT_EQ(r.read_i32(), 3);  // route reversed
  EXPECT_EQ(r.read_i32(), 2);
  EXPECT_EQ(r.read_i32(), 1);
  EXPECT_TRUE(r.exhausted());
}

// --- heterogeneity ------------------------------------------------------------

TEST(Hetero, StragglerCreditGateApproximatesRate) {
  HeteroConfig cfg;
  cfg.straggler_frac = 1.0;
  cfg.straggler_rate = 0.25;
  HeteroModel model{cfg, 5, 4};
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(model.straggler(v));
    int trained = 0;
    for (int tick = 0; tick < 1000; ++tick) trained += model.should_train(v) ? 1 : 0;
    // Credit accumulation tracks the rate to within one step per horizon.
    EXPECT_NEAR(trained, 1000.0 * model.compute_rate(v), 1.0) << "vehicle " << v;
  }
}

TEST(Hetero, CreditRoundTrip) {
  HeteroConfig cfg;
  cfg.straggler_frac = 1.0;
  cfg.straggler_rate = 0.3;
  HeteroModel a{cfg, 5, 3};
  for (int i = 0; i < 7; ++i) {
    for (int v = 0; v < 3; ++v) (void)a.should_train(v);
  }
  ByteWriter w;
  a.save(w);
  HeteroModel b{cfg, 5, 3};
  ByteReader r{w.bytes()};
  b.load(r);
  EXPECT_TRUE(r.exhausted());
  for (int i = 0; i < 50; ++i) {
    for (int v = 0; v < 3; ++v) {
      ASSERT_EQ(a.should_train(v), b.should_train(v)) << "step " << i << " vehicle " << v;
    }
  }
}

// --- end-to-end determinism ---------------------------------------------------

TEST(AdversaryEndToEnd, PoisonedPayloadsReachReceiversWithoutFrameRejects) {
  // No radio faults: every mutated frame must still verify (CRC re-encoded)
  // and parse (values kept inside the decoder bounds) at the receiver.
  auto sim = make_sim(adv_cfg(9, 0.5, 0.0), "LbChat");
  const auto m = sim.run();
  EXPECT_GT(m.transfers.byzantine_payloads_sent, 0);
  EXPECT_EQ(m.transfers.frames_rejected, 0);
  EXPECT_EQ(m.transfers.frames_rejected_invalid, 0);
  EXPECT_GT(m.transfers.total_peer_weight, 0.0);
  ASSERT_EQ(m.honest_loss_curve.size(), m.loss_curve.size());
  ASSERT_EQ(m.attacker_loss_curve.size(), m.loss_curve.size());
}

TEST(AdversaryEndToEnd, StragglersTrainFewerSteps) {
  auto cfg = adv_cfg(13, 0.0, 0.0);
  auto full = make_sim(cfg, "DP");
  const auto m_full = full.run();

  cfg.hetero.straggler_frac = 1.0;
  cfg.hetero.straggler_rate = 0.25;
  auto slow = make_sim(cfg, "DP");
  const auto m_slow = slow.run();
  EXPECT_GT(m_slow.transfers.straggler_train_skips, 0);
  EXPECT_LT(m_slow.train_steps, m_full.train_steps);
}

TEST(AdversaryEndToEnd, BitIdenticalAcrossThreadCounts) {
  for (const char* approach : {"LbChat", "DP"}) {
    auto cfg = adv_cfg(17, 0.25, 0.5);
    cfg.num_threads = 1;
    auto base = make_sim(cfg, approach);
    const auto m1 = base.run();

    cfg.num_threads = 4;
    auto threaded = make_sim(cfg, approach);
    const auto m4 = threaded.run();

    EXPECT_EQ(curve_bits(m1), curve_bits(m4)) << approach;
    EXPECT_EQ(m1.transfers.byzantine_payloads_sent, m4.transfers.byzantine_payloads_sent);
    EXPECT_EQ(m1.transfers.straggler_train_skips, m4.transfers.straggler_train_skips);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(m1.transfers.attacker_peer_weight),
              std::bit_cast<std::uint64_t>(m4.transfers.attacker_peer_weight));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(m1.transfers.total_peer_weight),
              std::bit_cast<std::uint64_t>(m4.transfers.total_peer_weight));
  }
}

TEST(AdversaryEndToEnd, CheckpointResumeBitIdentical) {
  const auto cfg = adv_cfg(23, 0.25, 0.5);
  auto straight = make_sim(cfg, "LbChat");
  const auto m_straight = straight.run();

  auto first = make_sim(cfg, "LbChat");
  first.prepare();
  first.run_until(13.0);
  ByteWriter w;
  first.save_checkpoint(w);

  auto resumed = make_sim(cfg, "LbChat");
  ByteReader r{w.bytes()};
  ASSERT_EQ(resumed.restore(r), engine::CkptStatus::kOk);
  resumed.run_until(cfg.duration_s);
  const auto m_resumed = resumed.finalize();

  EXPECT_EQ(curve_bits(m_straight), curve_bits(m_resumed));
  EXPECT_EQ(m_straight.transfers.byzantine_payloads_sent,
            m_resumed.transfers.byzantine_payloads_sent);
  EXPECT_EQ(m_straight.transfers.straggler_train_skips,
            m_resumed.transfers.straggler_train_skips);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(m_straight.transfers.attacker_peer_weight),
            std::bit_cast<std::uint64_t>(m_resumed.transfers.attacker_peer_weight));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(m_straight.transfers.total_peer_weight),
            std::bit_cast<std::uint64_t>(m_resumed.transfers.total_peer_weight));
}

}  // namespace
