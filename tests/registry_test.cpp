// The string-keyed strategy registry (baselines/registry.h): name list
// integrity, construction, option validation, the canonical fingerprint view
// of options, and the deprecated enum shim's equivalence.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "baselines/dyn_thresh.h"
#include "baselines/factory.h"
#include "baselines/registry.h"
#include "baselines/sim_gossip.h"
#include "common/fingerprint.h"

namespace lbchat::baselines {
namespace {

TEST(StrategyOptionsTest, SortedSetGetRoundTrip) {
  StrategyOptions o;
  EXPECT_TRUE(o.empty());
  o.set("zeta", 2.0);
  o.set("alpha", 1.0);
  o.set("mid", 3.0);
  o.set("alpha", 4.0);  // overwrite, not duplicate
  EXPECT_EQ(o.size(), 3u);
  EXPECT_TRUE(o.contains("alpha"));
  EXPECT_FALSE(o.contains("beta"));
  EXPECT_DOUBLE_EQ(o.get_or("alpha", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(o.get_or("beta", -1.0), -1.0);
  // entries() is sorted by key regardless of insertion order.
  ASSERT_EQ(o.entries().size(), 3u);
  EXPECT_EQ(o.entries()[0].key, "alpha");
  EXPECT_EQ(o.entries()[1].key, "mid");
  EXPECT_EQ(o.entries()[2].key, "zeta");
}

TEST(RegistryTest, ListsEveryStrategyWithUniqueNonEmptyNames) {
  const auto names = registry().list();
  // The paper's eight plus the two communication-efficiency protocols.
  ASSERT_EQ(names.size(), 10u);
  std::set<std::string> unique;
  for (const auto& n : names) {
    EXPECT_FALSE(n.empty());
    EXPECT_TRUE(unique.insert(n).second) << "duplicate name " << n;
    EXPECT_TRUE(registry().contains(n));
  }
  EXPECT_TRUE(unique.count("DynThresh") == 1);
  EXPECT_TRUE(unique.count("SimGossip") == 1);
}

TEST(RegistryTest, NameRoundTripsThroughConstruction) {
  for (const auto& name : registry().list()) {
    const auto s = registry().make(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name(), name);
  }
}

TEST(RegistryTest, EnumShimMatchesRegistryNames) {
  // The deprecated make_strategy(Approach) delegates here; every enum value
  // must resolve, and the enum's name list must be a subset of the registry.
  for (const Approach a : kAllApproaches) {
    const auto name = approach_name(a);
    EXPECT_TRUE(registry().contains(name)) << name;
    EXPECT_EQ(make_strategy(a)->name(), registry().make(name)->name());
    EXPECT_EQ(approach_from_name(name), a);
  }
  EXPECT_THROW((void)approach_from_name("NoSuch"), std::invalid_argument);
}

TEST(RegistryTest, UnknownNamesAndOptionsAreErrors) {
  EXPECT_THROW((void)registry().make("NoSuch"), std::invalid_argument);
  EXPECT_THROW((void)registry().option_schema("NoSuch"), std::invalid_argument);
  StrategyOptions bad;
  bad.set("no_such_option", 1.0);
  EXPECT_THROW((void)registry().make("DynThresh", bad), std::invalid_argument);
  EXPECT_THROW((void)registry().fingerprint_options("DynThresh", bad), std::invalid_argument);
  // RSU-L has no tunables at all, so any option key is unknown.
  StrategyOptions any;
  any.set("temperature", 0.5);
  EXPECT_THROW((void)registry().make("RSU-L", any), std::invalid_argument);
}

TEST(RegistryTest, RegistrationRejectsBadNames) {
  StrategyRegistry r;
  const auto factory = [](const StrategyOptions&) {
    return std::unique_ptr<engine::Strategy>{std::make_unique<DynThreshStrategy>()};
  };
  EXPECT_THROW(r.register_strategy("", factory), std::logic_error);
  r.register_strategy("A", factory);
  EXPECT_THROW(r.register_strategy("A", factory), std::logic_error);
  EXPECT_THROW(r.register_strategy("B", nullptr), std::logic_error);
  EXPECT_THROW(r.register_strategy("B", factory, {{"", 0.0, ""}}), std::logic_error);
  EXPECT_THROW(r.register_strategy("B", factory, {{"x", 0.0, ""}, {"x", 1.0, ""}}),
               std::logic_error);
}

TEST(RegistryTest, OptionsReachTheStrategy) {
  StrategyOptions o;
  o.set("divergence_bound", 7e-3);
  const auto s = registry().make("DynThresh", o);
  // No direct accessor for the bound; construction not throwing plus the
  // schema round-trip below is the contract. The typed constructor is pinned
  // here instead.
  EXPECT_EQ(s->name(), "DynThresh");
  const auto sim = registry().make("SimGossip");
  auto* sg = dynamic_cast<SimGossipStrategy*>(sim.get());
  ASSERT_NE(sg, nullptr);
  // Default temperature 0.1: cosine 1 maps to 1/2, cosine 0.9 is strongly
  // gated.
  EXPECT_NEAR(sg->weight_for_similarity(1.0), 0.5, 1e-12);
  EXPECT_LT(sg->weight_for_similarity(0.9), 0.3);
  StrategyOptions hot;
  hot.set("temperature", 10.0);
  const auto soft = registry().make("SimGossip", hot);
  auto* sg_soft = dynamic_cast<SimGossipStrategy*>(soft.get());
  ASSERT_NE(sg_soft, nullptr);
  EXPECT_GT(sg_soft->weight_for_similarity(0.9), 0.45);
}

TEST(RegistryTest, FingerprintOptionsDropDefaults) {
  // Explicitly setting an option to its schema default must canonicalize to
  // "no options" so the cache key matches a run that never mentioned it.
  StrategyOptions defaults;
  defaults.set("divergence_bound", 1.5e-2);
  defaults.set("pair_weight", 0.5);
  EXPECT_TRUE(registry().fingerprint_options("DynThresh", defaults).empty());

  StrategyOptions custom;
  custom.set("divergence_bound", 2e-4);
  custom.set("pair_weight", 0.5);
  const auto kvs = registry().fingerprint_options("DynThresh", custom);
  ASSERT_EQ(kvs.size(), 1u);
  EXPECT_EQ(kvs[0].key, "divergence_bound");
  EXPECT_DOUBLE_EQ(kvs[0].value, 2e-4);

  // And through the scenario fingerprint: defaults keep the legacy key.
  const engine::ScenarioConfig cfg;
  EXPECT_EQ(scenario_fingerprint(cfg, "DynThresh",
                                 registry().fingerprint_options("DynThresh", defaults)),
            scenario_fingerprint(cfg, "DynThresh"));
  EXPECT_NE(scenario_fingerprint(cfg, "DynThresh", kvs),
            scenario_fingerprint(cfg, "DynThresh"));
}

TEST(RegistryTest, SchemasDocumentEveryOption) {
  for (const auto& name : registry().list()) {
    for (const auto& spec : registry().option_schema(name)) {
      EXPECT_FALSE(spec.name.empty()) << name;
      EXPECT_FALSE(spec.description.empty()) << name << "." << spec.name;
    }
  }
}

}  // namespace
}  // namespace lbchat::baselines
