// Pins the shared fingerprint implementation (common/fingerprint.h) that
// both the bench result cache and the fleet service's ResultCache key on.
// The digests below are frozen: a change means every cached result on disk
// is silently mis-keyed, so treat a failure here as a cache-format break and
// bump kScenarioFingerprintVersion rather than updating the constants.

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/fingerprint.h"
#include "engine/scenario.h"
#include "nn/kernel_dispatch.h"

namespace lbchat {
namespace {

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Fnv1aTest, PinnedVectors) {
  // Offset basis: the hash of the empty input.
  EXPECT_EQ(fnv1a({}), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a({}), kFnvOffsetBasis);
  // Published FNV-1a 64-bit test vector.
  EXPECT_EQ(fnv1a(bytes_of("foobar")), 0x85944171F73967E8ull);
  // Chaining splits arbitrarily.
  EXPECT_EQ(fnv1a(bytes_of("bar"), fnv1a(bytes_of("foo"))), fnv1a(bytes_of("foobar")));
}

TEST(FnvHasherTest, PinnedByteLayout) {
  // Freezes the typed add() byte layout (little-endian via ByteWriter,
  // strings length-prefixed). Recorded from the initial implementation.
  FnvHasher h;
  h.add(1.5);
  h.add(std::uint64_t{42});
  h.add(int{-7});
  h.add(true);
  h.add(std::string_view{"lbchat"});
  EXPECT_EQ(h.digest(), 0xBA1E97E39EF06B0Dull);
}

TEST(FnvHasherTest, EmptyDigestIsOffsetBasis) {
  EXPECT_EQ(FnvHasher{}.digest(), kFnvOffsetBasis);
}

TEST(ScenarioFingerprintTest, PinnedDefaults) {
  // Frozen digests of the default scenario under two approaches, exactly as
  // the bench cache has keyed them since kScenarioFingerprintVersion = 3.
  const engine::ScenarioConfig cfg;
  EXPECT_EQ(scenario_fingerprint(cfg, "LbChat"), 0xB64685EC8CDC8984ull);
  EXPECT_EQ(scenario_fingerprint(cfg, "ProxSkip"), 0x60AB808818EF3AFAull);
  engine::ScenarioConfig seeded = cfg;
  seeded.seed = 2;
  EXPECT_EQ(scenario_fingerprint(seeded, "LbChat"), 0x38C370FBD211AC4Full);
}

TEST(ScenarioFingerprintTest, SensitiveToBehaviourShapingFields) {
  const engine::ScenarioConfig base;
  const std::uint64_t fp = scenario_fingerprint(base, "LbChat");

  engine::ScenarioConfig c = base;
  c.seed = 99;
  EXPECT_NE(scenario_fingerprint(c, "LbChat"), fp);

  c = base;
  c.duration_s += 1.0;  // a cache entry answers one exact horizon
  EXPECT_NE(scenario_fingerprint(c, "LbChat"), fp);

  c = base;
  c.num_vehicles += 1;
  EXPECT_NE(scenario_fingerprint(c, "LbChat"), fp);

  c = base;
  c.adversary.byzantine_frac = 0.25;
  EXPECT_NE(scenario_fingerprint(c, "LbChat"), fp);

  EXPECT_NE(scenario_fingerprint(base, "DP"), fp);
}

TEST(ScenarioFingerprintTest, InsensitiveToWallClockKnobs) {
  // num_threads and spatial_index change wall-clock behaviour only — runs
  // are bit-identical — so they must not split cache keys.
  const engine::ScenarioConfig base;
  engine::ScenarioConfig c = base;
  c.num_threads = 8;
  c.spatial_index = !c.spatial_index;
  EXPECT_EQ(scenario_fingerprint(c, "LbChat"), scenario_fingerprint(base, "LbChat"));
}

TEST(ScenarioFingerprintTest, InertRobustnessLayerDoesNotSplitKeys) {
  // An all-off adversary/hetero config is bit-inert, so it hashes like a
  // scenario from before the robustness layer existed: toggling a knob that
  // stays disabled (enabled() == false) must not change the key.
  const engine::ScenarioConfig base;
  engine::ScenarioConfig c = base;
  c.adversary.poison_scale = 99.0;  // ignored while byzantine_frac == 0
  EXPECT_EQ(scenario_fingerprint(c, "LbChat"), scenario_fingerprint(base, "LbChat"));
}

TEST(ScenarioFingerprintTest, EmptyOptionsKeepLegacyKeys) {
  // The options tail is conditional: no options (the pre-registry world)
  // hashes byte-identically to the 2-arg overload, so every cached result on
  // disk keeps its key across the registry migration.
  const engine::ScenarioConfig cfg;
  EXPECT_EQ(scenario_fingerprint(cfg, "LbChat", {}), scenario_fingerprint(cfg, "LbChat"));
  EXPECT_EQ(scenario_fingerprint(cfg, "LbChat", {}), 0xB64685EC8CDC8984ull);
}

TEST(ScenarioFingerprintTest, NonDefaultOptionsSplitKeys) {
  const engine::ScenarioConfig cfg;
  const std::vector<StrategyOptionKv> opts{{"divergence_bound", 2e-4}};
  const std::uint64_t with = scenario_fingerprint(cfg, "DynThresh", opts);
  EXPECT_NE(with, scenario_fingerprint(cfg, "DynThresh"));

  // Key order and values both matter.
  const std::vector<StrategyOptionKv> opts2{{"divergence_bound", 3e-4}};
  EXPECT_NE(scenario_fingerprint(cfg, "DynThresh", opts2), with);
}

TEST(ScenarioFingerprintTest, DisabledInt8EvalKeepsLegacyKeys) {
  // Same conditional-tail contract as the robustness layer: the Int8EvalConfig
  // member's existence must not move any historical key, and its sub-knobs
  // are dead while enabled == false.
  const engine::ScenarioConfig base;
  EXPECT_EQ(scenario_fingerprint(base, "LbChat"), 0xB64685EC8CDC8984ull);
  engine::ScenarioConfig c = base;
  c.int8_eval.value_scoring = false;  // ignored while !enabled
  c.int8_eval.eval_loss = false;
  EXPECT_EQ(scenario_fingerprint(c, "LbChat"), scenario_fingerprint(base, "LbChat"));
}

TEST(ScenarioFingerprintTest, EnabledInt8EvalSplitsKeys) {
  const engine::ScenarioConfig base;
  engine::ScenarioConfig on = base;
  on.int8_eval.enabled = true;
  const std::uint64_t fp_on = scenario_fingerprint(on, "LbChat");
  EXPECT_NE(fp_on, scenario_fingerprint(base, "LbChat"));

  // The sub-knobs are live once enabled — each changes the measurement, so
  // each must change the key.
  engine::ScenarioConfig c = on;
  c.int8_eval.value_scoring = false;
  EXPECT_NE(scenario_fingerprint(c, "LbChat"), fp_on);
  c = on;
  c.int8_eval.eval_loss = false;
  EXPECT_NE(scenario_fingerprint(c, "LbChat"), fp_on);
}

TEST(ScenarioFingerprintTest, KernelPathDoesNotEnterScenarioFingerprint) {
  // scenario_fingerprint hashes configuration, not runtime state; the active
  // GEMM backend enters cache keys only via nn::salt_with_kernel_path at the
  // call sites that cache run *results*.
  const engine::ScenarioConfig cfg;
  const std::uint64_t fp = scenario_fingerprint(cfg, "LbChat");
  for (const nn::KernelPath p :
       {nn::KernelPath::kScalar, nn::KernelPath::kAvx2, nn::KernelPath::kNeon}) {
    if (!nn::kernel_path_available(p)) continue;
    nn::ScopedKernelPath guard{p};
    EXPECT_EQ(scenario_fingerprint(cfg, "LbChat"), fp);
  }
}

}  // namespace
}  // namespace lbchat
