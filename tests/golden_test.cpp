// Golden-scenario regression suite: runs the fixed-seed scenarios from
// golden_scenarios.h and compares their digests against the committed
// goldens in tests/goldens/ (path baked in via LBCHAT_GOLDEN_DIR).
//
// All scenarios run inside ONE test, in kGoldenScenarios order, because the
// metrics registry accumulates definitions per process (see the header).

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "golden_scenarios.h"

namespace {

bool read_text(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

TEST(GoldenScenarios, DigestsMatchCommitted) {
  using namespace lbchat::golden;
  const std::string dir = LBCHAT_GOLDEN_DIR;
  for (const auto& sc : kGoldenScenarios) {
    const std::string path = dir + "/" + sc.name + ".golden";
    std::string expected;
    ASSERT_TRUE(read_text(path, expected))
        << "missing golden file " << path
        << "\nGenerate it with: build/tools/golden_regen";
    const std::string actual = run_golden_scenario(sc);
    EXPECT_EQ(expected, actual)
        << "golden digest mismatch for scenario '" << sc.name << "'\n"
        << "--- expected (" << path << ")\n"
        << expected << "+++ actual\n"
        << actual
        << "If this behaviour change is intentional, regenerate the goldens\n"
        << "with build/tools/golden_regen and commit the updated files.";
  }
}

}  // namespace
