// Tests for the wireless substrate: the distance-loss table, packet-level
// transfers, wire sizes, contact estimation, and the Eq. (5) priority score.
#include <gtest/gtest.h>

#include <cmath>
#include <iterator>

#include "net/contact.h"
#include "net/wireless.h"
#include "sim/route.h"
#include "sim/town.h"

namespace lbchat::net {
namespace {

TEST(LossModelTest, DefaultTableShape) {
  const auto loss = WirelessLossModel::default_table(500.0);
  EXPECT_LT(loss.packet_loss(0.0), 0.05);
  EXPECT_GT(loss.packet_loss(499.0), 0.8);
  EXPECT_DOUBLE_EQ(loss.packet_loss(501.0), 1.0);  // beyond the table
  // Monotone non-decreasing in distance.
  double prev = 0.0;
  for (double d = 0.0; d <= 500.0; d += 10.0) {
    const double p = loss.packet_loss(d);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(LossModelTest, DefaultTableGoldenValues) {
  // Golden pin of the default distance-loss table. These exact values are a
  // published constant of the simulator (DESIGN.md; run digests depend on
  // them) — changing the table is a breaking change and must be deliberate.
  const double range = 500.0;
  const auto loss = WirelessLossModel::default_table(range);
  const double knots[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  const double expected[] = {0.02, 0.05, 0.10, 0.15, 0.22, 0.30, 0.40, 0.55, 0.70, 0.85};
  for (std::size_t i = 0; i < std::size(knots); ++i) {
    EXPECT_DOUBLE_EQ(loss.packet_loss(knots[i] * range), expected[i]) << "knot " << knots[i];
  }
  // At and beyond the table's maximum distance the link is fully lost (the
  // 0.95 entry at the last knot is only approached from below).
  EXPECT_DOUBLE_EQ(loss.packet_loss(range), 1.0);
  EXPECT_DOUBLE_EQ(loss.packet_loss(range * 10.0), 1.0);
  EXPECT_NEAR(loss.packet_loss(range * 0.999), 0.95, 1e-2);
  EXPECT_DOUBLE_EQ(loss.max_distance(), range);
}

TEST(LossModelTest, ExpectedTransferTimeGoldenValues) {
  // expected_transfer_time = bytes * 8 / (bandwidth * (1 - p)) — pinned at
  // the table knots with the default 31 Mbps radio.
  const RadioConfig radio;
  const auto loss = WirelessLossModel::default_table(radio.max_range_m);
  const std::size_t mb = 1024 * 1024;
  EXPECT_DOUBLE_EQ(expected_transfer_time(mb, 0.0, radio, loss),
                   static_cast<double>(mb) * 8.0 / (31e6 * (1.0 - 0.02)));
  EXPECT_DOUBLE_EQ(expected_transfer_time(mb, 0.5 * radio.max_range_m, radio, loss),
                   static_cast<double>(mb) * 8.0 / (31e6 * (1.0 - 0.30)));
  EXPECT_DOUBLE_EQ(expected_transfer_time(mb, 0.9 * radio.max_range_m, radio, loss),
                   static_cast<double>(mb) * 8.0 / (31e6 * (1.0 - 0.85)));
  EXPECT_DOUBLE_EQ(expected_transfer_time(0, 0.0, radio, loss), 0.0);
  // Out of range or total loss: infinite.
  EXPECT_TRUE(std::isinf(expected_transfer_time(mb, radio.max_range_m, radio, loss)));
  EXPECT_TRUE(std::isinf(expected_transfer_time(mb, radio.max_range_m * 2.0, radio, loss)));
}

TEST(LossModelTest, ScalesToRange) {
  const auto short_range = WirelessLossModel::default_table(180.0);
  const auto long_range = WirelessLossModel::default_table(500.0);
  // Same loss at the same *fraction* of the range.
  EXPECT_NEAR(short_range.packet_loss(90.0), long_range.packet_loss(250.0), 1e-9);
}

TEST(LossModelTest, DeliveryProbabilityWithRetransmissions) {
  const auto loss = WirelessLossModel::default_table(500.0);
  const double p = loss.packet_loss(400.0);
  EXPECT_NEAR(loss.delivery_probability(400.0, 3), 1.0 - std::pow(p, 4.0), 1e-12);
  EXPECT_NEAR(loss.delivery_probability(400.0, 0), 1.0 - p, 1e-12);
  // Retransmissions can only help.
  EXPECT_GE(loss.delivery_probability(400.0, 3), loss.delivery_probability(400.0, 1));
}

TEST(LossModelTest, UniformSampleWithinBounds) {
  const auto loss = WirelessLossModel::default_table(500.0);
  Rng rng{3};
  for (int i = 0; i < 500; ++i) {
    const double p = loss.sample_uniform_loss(rng);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LossModelTest, RejectsBadTables) {
  EXPECT_THROW((WirelessLossModel{{0.0}, {0.1}}), std::invalid_argument);
  EXPECT_THROW((WirelessLossModel{{0.0, 0.0}, {0.1, 0.2}}), std::invalid_argument);
  EXPECT_THROW((WirelessLossModel{{0.0, 1.0}, {0.1, 1.5}}), std::invalid_argument);
}

TEST(TransferTest, CompletesInExpectedTimeNearField) {
  const RadioConfig radio;
  const auto loss = WirelessLossModel::default_table(radio.max_range_m);
  Rng rng{5};
  // 1 MB at 31 Mbps with ~2% loss should take ~0.26 s; give it 1 s of ticks.
  Transfer t{1024 * 1024, radio};
  double elapsed = 0.0;
  while (!t.complete() && elapsed < 5.0) {
    t.tick(10.0, 0.1, loss, rng);
    elapsed += 0.1;
  }
  EXPECT_TRUE(t.complete());
  EXPECT_LT(elapsed, 1.0);
}

TEST(TransferTest, NoProgressOutOfRange) {
  const RadioConfig radio;
  const auto loss = WirelessLossModel::default_table(radio.max_range_m);
  Rng rng{7};
  Transfer t{1000, radio};
  EXPECT_EQ(t.tick(radio.max_range_m + 1.0, 1.0, loss, rng), 0u);
  EXPECT_EQ(t.remaining_bytes(), 1000u);
}

TEST(TransferTest, LossReducesGoodput) {
  const RadioConfig radio;
  const auto loss = WirelessLossModel::default_table(radio.max_range_m);
  Rng rng_near{9};
  Rng rng_far{9};
  Transfer near_t{50ull * 1024 * 1024, radio};
  Transfer far_t{50ull * 1024 * 1024, radio};
  std::size_t near_bytes = 0;
  std::size_t far_bytes = 0;
  for (int i = 0; i < 20; ++i) {
    near_bytes += near_t.tick(0.05 * radio.max_range_m, 0.5, loss, rng_near);
    far_bytes += far_t.tick(0.85 * radio.max_range_m, 0.5, loss, rng_far);
  }
  EXPECT_GT(near_bytes, far_bytes * 2);
}

TEST(TransferTest, ExpectedTransferTime) {
  const RadioConfig radio;
  const auto loss = WirelessLossModel::default_table(radio.max_range_m);
  // 52 MB at 31 Mbps, ~2% loss: ~13.7 s — the paper's "tens of seconds".
  const double t = expected_transfer_time(52ull * 1024 * 1024, 1.0, radio, loss);
  EXPECT_GT(t, 12.0);
  EXPECT_LT(t, 16.0);
  EXPECT_EQ(expected_transfer_time(0, 1.0, radio, loss), 0.0);
  EXPECT_TRUE(std::isinf(
      expected_transfer_time(100, radio.max_range_m + 1.0, radio, loss)));
}

TEST(WireSizeTest, PaperScaleDefaults) {
  const WireSizeModel wire;
  EXPECT_EQ(wire.model_bytes, 52ull * 1024 * 1024);
  // 150-sample coreset ~ 0.6 MB.
  EXPECT_NEAR(static_cast<double>(wire.coreset_bytes(150)), 0.6 * 1024 * 1024, 0.05 * 1024 * 1024);
  EXPECT_EQ(wire.assist_info_bytes, 184u);
  // Coreset is ~2 orders of magnitude smaller than the model (paper §I).
  EXPECT_GT(wire.model_bytes / wire.coreset_bytes(150), 50u);
}

TEST(WireSizeTest, ModelBytesAtPsi) {
  const WireSizeModel wire;
  EXPECT_EQ(wire.model_bytes_at(0.0), 0u);
  EXPECT_EQ(wire.model_bytes_at(1.0), wire.model_bytes);
  EXPECT_EQ(wire.model_bytes_at(0.5), wire.model_bytes / 2);
  EXPECT_EQ(wire.model_bytes_at(2.0), wire.model_bytes);  // clamped
}

TEST(WireSizeTest, TinyPsiRoundsUpToOneByte) {
  // Regression: truncation toward zero used to turn a tiny nonzero psi into a
  // 0-byte transfer that "completed" instantly — a free model exchange. Any
  // psi > 0 must cost at least one wire byte.
  const WireSizeModel wire;
  EXPECT_GE(wire.model_bytes_at(1e-12), 1u);
  EXPECT_GE(wire.model_bytes_at(1.0 / static_cast<double>(wire.model_bytes) / 2.0), 1u);
  // Round-up never exceeds the full model.
  EXPECT_LE(wire.model_bytes_at(0.999999999), wire.model_bytes);
}

TEST(TransferTest, ExtraLossStallsAndComposes) {
  const RadioConfig radio;
  const auto loss = WirelessLossModel::default_table(radio.max_range_m);
  // extra_loss = 1.0 blacks the link out: zero bytes regardless of distance.
  {
    Rng rng{21};
    Transfer t{1024 * 1024, radio};
    EXPECT_EQ(t.tick(10.0, 1.0, loss, rng, /*extra_loss=*/1.0), 0u);
    EXPECT_FALSE(t.complete());
  }
  // Partial extra loss degrades goodput relative to a clean link.
  {
    Rng rng_clean{22};
    Rng rng_noisy{22};
    Transfer clean{50ull * 1024 * 1024, radio};
    Transfer noisy{50ull * 1024 * 1024, radio};
    std::size_t clean_bytes = 0;
    std::size_t noisy_bytes = 0;
    for (int i = 0; i < 10; ++i) {
      clean_bytes += clean.tick(10.0, 0.5, loss, rng_clean);
      noisy_bytes += noisy.tick(10.0, 0.5, loss, rng_noisy, /*extra_loss=*/0.7);
    }
    EXPECT_GT(clean_bytes, noisy_bytes * 2);
  }
  // extra_loss = 0.0 must be the IEEE-identical default path.
  {
    Rng rng_a{23};
    Rng rng_b{23};
    Transfer a{1024 * 1024, radio};
    Transfer b{1024 * 1024, radio};
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(a.tick(50.0, 0.2, loss, rng_a), b.tick(50.0, 0.2, loss, rng_b, 0.0));
    }
  }
}

// ---------------------------------------------------------------- contact

class ContactFixture : public ::testing::Test {
 protected:
  ContactFixture() : rng_(31), map_(sim::TownMap::generate({}, rng_)) {}
  Rng rng_;
  sim::TownMap map_;
  RadioConfig radio_;
  WirelessLossModel loss_ = WirelessLossModel::default_table(RadioConfig{}.max_range_m);
};

TEST_F(ContactFixture, StationaryNearbyPairHasLongContact) {
  AssistInfo a;
  a.pos = {100.0, 100.0};
  AssistInfo b;
  b.pos = {120.0, 100.0};
  const ContactEstimate est = estimate_contact(a, b, radio_, loss_, 60.0);
  EXPECT_GE(est.duration_s, 60.0);
  EXPECT_GT(est.mean_delivery, 0.9);
  EXPECT_GT(est.mean_goodput, 0.8);
}

TEST_F(ContactFixture, OutOfRangePairHasZeroContact) {
  AssistInfo a;
  a.pos = {0.0, 0.0};
  AssistInfo b;
  b.pos = {radio_.max_range_m * 3.0, 0.0};
  const ContactEstimate est = estimate_contact(a, b, radio_, loss_);
  EXPECT_DOUBLE_EQ(est.duration_s, 0.0);
}

TEST_F(ContactFixture, DivergingVelocitiesShortenContact) {
  AssistInfo a;
  a.pos = {0.0, 0.0};
  a.velocity = {-15.0, 0.0};
  AssistInfo b;
  b.pos = {50.0, 0.0};
  b.velocity = {15.0, 0.0};
  const ContactEstimate est = estimate_contact(a, b, radio_, loss_);
  // Gap grows 30 m/s from 50 m; range 180 m -> leaves range after ~4-5 s.
  EXPECT_GT(est.duration_s, 2.0);
  EXPECT_LT(est.duration_s, 8.0);
}

TEST_F(ContactFixture, RoutePredictionDiffersFromVelocityExtrapolation) {
  // A vehicle about to turn: the route-based prediction follows the turn,
  // the velocity-based one flies straight on — the estimates diverge. This
  // divergence is why LbChat's route sharing yields better p_ij estimates.
  const sim::Route r = sim::plan_route(map_, 0, static_cast<int>(map_.nodes().size()) - 1);
  ASSERT_FALSE(r.empty());
  AssistInfo with_route;
  with_route.pos = r.position_at(0.0);
  with_route.speed = 10.0;
  with_route.route_s = 0.0;
  with_route.route = &r;
  AssistInfo no_route = with_route;
  no_route.route = nullptr;
  no_route.velocity = Vec2{std::cos(r.heading_at(0.0)), std::sin(r.heading_at(0.0))} * 10.0;

  AssistInfo observer;
  observer.pos = r.position_at(0.0) + Vec2{30.0, 30.0};

  const ContactEstimate with = estimate_contact(with_route, observer, radio_, loss_);
  const ContactEstimate without = estimate_contact(no_route, observer, radio_, loss_);
  // Both valid estimates, but they must disagree eventually (route length
  // permitting) — compare the predicted distance samples.
  const std::size_t n = std::min(with.distances.size(), without.distances.size());
  ASSERT_GT(n, 5u);
  double max_gap = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_gap = std::max(max_gap, std::abs(with.distances[i] - without.distances[i]));
  }
  EXPECT_GT(max_gap, 1.0);
}

TEST_F(ContactFixture, PriorityScoreComposition) {
  AssistInfo a;
  a.pos = {100.0, 100.0};
  a.bandwidth_bps = 31e6;
  AssistInfo b;
  b.pos = {130.0, 100.0};
  b.bandwidth_bps = 20e6;
  const ContactEstimate est = estimate_contact(a, b, radio_, loss_, 60.0);
  const double needed = 30.0;
  const double score = priority_score(a, b, est, needed);
  EXPECT_NEAR(score,
              contact_priority(est, needed) * completion_probability(est) * 20e6, 1e-6);
}

TEST_F(ContactFixture, ContactPriorityTruncatesAtOne) {
  ContactEstimate est;
  est.duration_s = 100.0;
  EXPECT_DOUBLE_EQ(contact_priority(est, 10.0), 1.0);
  est.duration_s = 5.0;
  EXPECT_DOUBLE_EQ(contact_priority(est, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(contact_priority(est, 0.0), 1.0);
}

TEST_F(ContactFixture, CloserPairsScoreHigher) {
  AssistInfo a;
  a.pos = {100.0, 100.0};
  AssistInfo near_peer;
  near_peer.pos = {120.0, 100.0};
  AssistInfo far_peer;
  far_peer.pos = {100.0 + radio_.max_range_m * 0.9, 100.0};
  const double needed = 30.0;
  const auto near_est = estimate_contact(a, near_peer, radio_, loss_);
  const auto far_est = estimate_contact(a, far_peer, radio_, loss_);
  EXPECT_GT(priority_score(a, near_peer, near_est, needed),
            priority_score(a, far_peer, far_est, needed));
}

}  // namespace
}  // namespace lbchat::net
