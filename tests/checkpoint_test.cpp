// Checkpoint/restore: the resume contract (run-to-T2 == run-to-T1 + save +
// restore-in-fresh-sim + run-to-T2, bit-identically), unit round-trips of the
// serialized components, rejection of incompatible checkpoints, and fuzzing
// of the decode path (truncation, bit flips, hostile length prefixes) — the
// restore API must map every bad input to a status, never throw or crash.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/bytes.h"
#include "common/frame.h"
#include "common/rng.h"
#include "engine/checkpoint.h"
#include "engine/fleet.h"
#include "nn/optim.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace {

using namespace lbchat;
using engine::CkptStatus;
using engine::FleetSim;

// --- scenario helpers -------------------------------------------------------

/// Tiny, fast scenario: a few wall-clock seconds per run.
engine::ScenarioConfig tiny_cfg(std::uint64_t seed, bool faults, int vehicles = 3,
                                double duration = 30.0) {
  engine::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_vehicles = vehicles;
  cfg.world.num_background_cars = 4;
  cfg.world.num_pedestrians = 6;
  cfg.collect_duration_s = 30.0;
  cfg.collect_fps = 1.0;
  cfg.eval_frames_per_vehicle = 2;
  cfg.duration_s = duration;
  cfg.eval_interval_s = 10.0;
  cfg.train_interval_s = 2.0;
  cfg.batch_size = 4;
  cfg.coreset_size = 12;
  cfg.pair_cooldown_s = 5.0;
  cfg.time_budget_s = 8.0;
  cfg.radio.max_range_m = 400.0;
  cfg.wire.model_bytes = 4ull * 1024 * 1024;
  cfg.wire.coreset_bytes_per_sample = 1024;
  if (faults) {
    cfg.faults.burst_rate_per_min = 6.0;
    cfg.faults.burst_duration_s = 6.0;
    cfg.faults.burst_radius_m = 200.0;
    cfg.faults.burst_extra_loss = 0.8;
    cfg.faults.churn_rate_per_min = 2.0;
    cfg.faults.churn_offline_mean_s = 5.0;
    cfg.faults.corrupt_prob_near = 0.02;
    cfg.faults.corrupt_prob_far = 0.2;
    cfg.faults.chat_backoff = true;
  }
  return cfg;
}

FleetSim make_sim(const engine::ScenarioConfig& cfg, const char* approach,
                  const baselines::StrategyOptions& options = {}) {
  return FleetSim{cfg, baselines::registry().make(approach, options)};
}

std::vector<std::uint8_t> checkpoint_of(const FleetSim& sim) {
  ByteWriter w;
  sim.save_checkpoint(w);
  return w.bytes();
}

/// Bit patterns of a loss curve, for exact comparison with readable failures.
std::vector<std::uint64_t> curve_bits(const engine::RunMetrics& m) {
  std::vector<std::uint64_t> bits;
  for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
    bits.push_back(std::bit_cast<std::uint64_t>(m.loss_curve.times[i]));
    bits.push_back(std::bit_cast<std::uint64_t>(m.loss_curve.values[i]));
  }
  for (const auto& ts : m.per_vehicle_loss) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      bits.push_back(std::bit_cast<std::uint64_t>(ts.values[i]));
    }
  }
  return bits;
}

// --- unit round-trips -------------------------------------------------------

TEST(CheckpointUnit, RngRoundTrip) {
  Rng a{42};
  (void)a.normal();  // populate the Box-Muller spare
  (void)a.next_u64();
  ByteWriter w;
  a.save(w);
  Rng b{7};  // different seed: load must fully overwrite
  ByteReader r{w.bytes()};
  b.load(r);
  EXPECT_TRUE(r.exhausted());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.normal()),
              std::bit_cast<std::uint64_t>(b.normal()));
  }
  // fork() uses only the seed material, which round-trips too.
  EXPECT_EQ(a.fork("x").next_u64(), b.fork("x").next_u64());
}

TEST(CheckpointUnit, OptimizerRoundTrip) {
  const std::size_t n = 17;
  std::vector<float> pa(n, 1.0f), pb(n, 1.0f), g(n);
  for (std::size_t i = 0; i < n; ++i) g[i] = 0.01f * static_cast<float>(i) - 0.05f;

  nn::Adam a{1e-3};
  a.step(pa, g);
  a.step(pa, g);
  ByteWriter w;
  a.save_state(w);
  nn::Adam b{1e-3};
  ByteReader r{w.bytes()};
  b.load_state(r);
  EXPECT_TRUE(r.exhausted());
  pb = pa;
  a.step(pa, g);
  b.step(pb, g);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(pa[i]), std::bit_cast<std::uint32_t>(pb[i]));
  }
}

TEST(CheckpointUnit, EventTracerRestore) {
  obs::EventTracer t;
  std::vector<obs::Event> evs;
  for (int i = 0; i < 5; ++i) {
    evs.push_back({static_cast<double>(i), obs::EventKind::kEval, i, -1, 0.5});
  }
  t.restore(evs, 3);
  const auto got = t.events();
  ASSERT_EQ(got.size(), evs.size());
  for (std::size_t i = 0; i < evs.size(); ++i) EXPECT_EQ(got[i].t, evs[i].t);
  EXPECT_EQ(t.dropped(), 3u);
  // Emission continues after the restored content.
  t.emit({9.0, obs::EventKind::kEval, 0, -1, 0.25});
  EXPECT_EQ(t.events().size(), evs.size() + 1);
  EXPECT_EQ(t.events().back().t, 9.0);
}

TEST(CheckpointUnit, RegistryRestoreReproducesSnapshot) {
  obs::MetricsRegistry reg;
  reg.add(reg.counter("ckpt_test/sends"), 7);
  reg.set(reg.gauge("ckpt_test/rate"), 0.875);
  const double bounds[] = {1.0, 2.0, 4.0};
  const auto h = reg.histogram("ckpt_test/dur", bounds);
  reg.observe(h, 0.5);
  reg.observe(h, 3.0);
  reg.observe(h, 100.0);
  const obs::Snapshot snap = reg.snapshot();

  obs::MetricsRegistry fresh;
  fresh.restore(snap);
  const obs::Snapshot again = fresh.snapshot();
  ASSERT_EQ(again.metrics.size(), snap.metrics.size());
  for (std::size_t i = 0; i < snap.metrics.size(); ++i) {
    EXPECT_EQ(again.metrics[i].name, snap.metrics[i].name);
    EXPECT_EQ(again.metrics[i].kind, snap.metrics[i].kind);
    EXPECT_EQ(again.metrics[i].count, snap.metrics[i].count);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(again.metrics[i].value),
              std::bit_cast<std::uint64_t>(snap.metrics[i].value));
    EXPECT_EQ(again.metrics[i].buckets, snap.metrics[i].buckets);
  }
}

// --- full-sim round-trip + resume contract ----------------------------------

TEST(CheckpointRestore, RoundTripRestoresClockAndModels) {
  const auto cfg = tiny_cfg(11, /*faults=*/false);
  auto sim = make_sim(cfg, "LbChat");
  sim.prepare();
  sim.run_until(15.0);
  const auto bytes = checkpoint_of(sim);

  auto fresh = make_sim(cfg, "LbChat");
  ByteReader r{bytes};
  ASSERT_EQ(fresh.restore(r), CkptStatus::kOk);
  EXPECT_EQ(fresh.time(), sim.time());
  ASSERT_EQ(fresh.num_vehicles(), sim.num_vehicles());
  for (int v = 0; v < sim.num_vehicles(); ++v) {
    const auto pa = sim.node(v).model.params();
    const auto pb = fresh.node(v).model.params();
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_EQ(std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(float)), 0) << "vehicle " << v;
  }
  // A restored sim checkpoints back to the same state it was restored from
  // (same bytes modulo nothing: no RNG is consumed by save/restore).
  EXPECT_EQ(checkpoint_of(fresh), bytes);
}

/// The core contract, exercised per strategy with faults enabled:
/// run straight to T2 == run to T1 + save + restore into a fresh sim + run
/// to T2, with bit-identical loss curves.
void expect_resume_contract(const char* approach, std::uint64_t seed, int threads) {
  auto cfg = tiny_cfg(seed, /*faults=*/true);
  cfg.num_threads = threads;
  const double t1 = 14.0;  // mid-interval: not aligned to train/eval boundaries

  auto straight = make_sim(cfg, approach);
  const engine::RunMetrics m_straight = straight.run();

  auto first = make_sim(cfg, approach);
  first.prepare();
  first.run_until(t1);
  const auto bytes = checkpoint_of(first);

  auto resumed = make_sim(cfg, approach);
  ByteReader r{bytes};
  ASSERT_EQ(resumed.restore(r), CkptStatus::kOk) << approach;
  resumed.run_until(cfg.duration_s);
  const engine::RunMetrics m_resumed = resumed.finalize();

  EXPECT_EQ(curve_bits(m_straight), curve_bits(m_resumed)) << approach << " threads=" << threads;
  ASSERT_EQ(m_straight.final_params.size(), m_resumed.final_params.size());
  for (std::size_t v = 0; v < m_straight.final_params.size(); ++v) {
    const auto& pa = m_straight.final_params[v];
    const auto& pb = m_resumed.final_params[v];
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_EQ(std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(float)), 0)
        << approach << " vehicle " << v;
  }
  EXPECT_EQ(m_straight.train_steps, m_resumed.train_steps) << approach;
}

TEST(CheckpointRestore, ResumeContractLbChat) { expect_resume_contract("LbChat", 3, 1); }
TEST(CheckpointRestore, ResumeContractLbChat4Threads) { expect_resume_contract("LbChat", 3, 4); }
TEST(CheckpointRestore, ResumeContractDp) { expect_resume_contract("DP", 5, 1); }
TEST(CheckpointRestore, ResumeContractDflDds) { expect_resume_contract("DFL-DDS", 9, 1); }
TEST(CheckpointRestore, ResumeContractProxSkip) { expect_resume_contract("ProxSkip", 13, 1); }
TEST(CheckpointRestore, ResumeContractRsuL) { expect_resume_contract("RSU-L", 17, 1); }
TEST(CheckpointRestore, ResumeContractDynThresh) { expect_resume_contract("DynThresh", 23, 1); }
TEST(CheckpointRestore, ResumeContractDynThresh4Threads) {
  expect_resume_contract("DynThresh", 23, 4);
}
TEST(CheckpointRestore, ResumeContractSimGossip) { expect_resume_contract("SimGossip", 27, 1); }
TEST(CheckpointRestore, ResumeContractSimGossip4Threads) {
  expect_resume_contract("SimGossip", 27, 4);
}

/// Thread bit-identity for the new registry strategies: the same faulted
/// scenario at 1 and 4 lanes must produce bit-identical curves (DynThresh's
/// divergence cache is refreshed on the sequential tick, so lane count cannot
/// leak into its chat decisions).
void expect_thread_bit_identity(const char* approach, std::uint64_t seed) {
  auto cfg = tiny_cfg(seed, /*faults=*/true);
  cfg.num_threads = 1;
  auto one = make_sim(cfg, approach);
  const auto m_one = one.run();
  cfg.num_threads = 4;
  auto four = make_sim(cfg, approach);
  const auto m_four = four.run();
  EXPECT_EQ(curve_bits(m_one), curve_bits(m_four)) << approach;
}

TEST(CheckpointDeterminism, DynThreshThreadBitIdentity) {
  expect_thread_bit_identity("DynThresh", 37);
}
TEST(CheckpointDeterminism, SimGossipThreadBitIdentity) {
  expect_thread_bit_identity("SimGossip", 41);
}

void expect_exports_survive_resume(int threads) {
  auto cfg = tiny_cfg(21, /*faults=*/true);
  cfg.num_threads = threads;

  obs::reset();
  obs::set_events_enabled(true);
  auto straight = make_sim(cfg, "LbChat");
  (void)straight.run();
  const std::string events_straight =
      obs::events_jsonl(obs::tracer().events(), obs::tracer().dropped());
  const std::string metrics_straight = obs::metrics_json(obs::registry().snapshot());

  obs::reset();
  auto first = make_sim(cfg, "LbChat");
  first.prepare();
  first.run_until(14.0);
  const auto bytes = checkpoint_of(first);

  obs::reset();  // fresh-process stand-in: all collected obs data cleared
  auto resumed = make_sim(cfg, "LbChat");
  ByteReader r{bytes};
  ASSERT_EQ(resumed.restore(r), CkptStatus::kOk);
  resumed.run_until(cfg.duration_s);
  (void)resumed.finalize();
  const std::string events_resumed =
      obs::events_jsonl(obs::tracer().events(), obs::tracer().dropped());
  const std::string metrics_resumed = obs::metrics_json(obs::registry().snapshot());

  EXPECT_EQ(events_straight, events_resumed) << "threads=" << threads;
  EXPECT_EQ(metrics_straight, metrics_resumed) << "threads=" << threads;
  obs::set_events_enabled(false);
  obs::reset();
}

TEST(CheckpointRestore, ResumePreservesEventAndMetricsExports) {
  expect_exports_survive_resume(1);
}
TEST(CheckpointRestore, ResumePreservesEventAndMetricsExports4Threads) {
  expect_exports_survive_resume(4);
}

TEST(CheckpointRestore, CheckpointBytesIdenticalAcrossThreadCounts) {
  auto cfg = tiny_cfg(31, /*faults=*/true);
  cfg.num_threads = 1;
  auto one = make_sim(cfg, "LbChat");
  one.prepare();
  one.run_until(14.0);
  cfg.num_threads = 4;
  auto four = make_sim(cfg, "LbChat");
  four.prepare();
  four.run_until(14.0);
  EXPECT_EQ(checkpoint_of(one), checkpoint_of(four));
}

TEST(CheckpointRestore, ResumeMayExtendHorizonAndChangeThreads) {
  auto cfg = tiny_cfg(8, /*faults=*/false);
  auto first = make_sim(cfg, "LbChat");
  first.prepare();
  first.run_until(cfg.duration_s);
  const auto bytes = checkpoint_of(first);

  auto longer_cfg = cfg;
  longer_cfg.duration_s = 40.0;  // extend the horizon
  longer_cfg.num_threads = 2;    // and change the lane count
  auto resumed = make_sim(longer_cfg, "LbChat");
  ByteReader r{bytes};
  ASSERT_EQ(resumed.restore(r), CkptStatus::kOk);
  resumed.run_until(longer_cfg.duration_s);
  const auto m = resumed.finalize();
  EXPECT_GE(resumed.time(), cfg.duration_s);
  EXPECT_FALSE(m.loss_curve.empty());
}

// --- compatibility rejection -------------------------------------------------

TEST(CheckpointReject, ConfigMismatch) {
  const auto cfg = tiny_cfg(2, false);
  auto sim = make_sim(cfg, "LbChat");
  sim.prepare();
  sim.run_until(5.0);
  const auto bytes = checkpoint_of(sim);

  auto other_seed_cfg = cfg;
  other_seed_cfg.seed = 3;
  auto other_seed = make_sim(other_seed_cfg, "LbChat");
  ByteReader r1{bytes};
  EXPECT_EQ(other_seed.restore(r1), CkptStatus::kConfigMismatch);

  auto other_fleet_cfg = cfg;
  other_fleet_cfg.num_vehicles = 4;
  auto other_fleet = make_sim(other_fleet_cfg, "LbChat");
  ByteReader r2{bytes};
  EXPECT_EQ(other_fleet.restore(r2), CkptStatus::kConfigMismatch);

  auto other_radio_cfg = cfg;
  other_radio_cfg.radio.max_range_m += 1.0;
  auto other_radio = make_sim(other_radio_cfg, "LbChat");
  ByteReader r3{bytes};
  EXPECT_EQ(other_radio.restore(r3), CkptStatus::kConfigMismatch);
}

TEST(CheckpointReject, StrategyMismatch) {
  const auto cfg = tiny_cfg(2, false);
  auto sim = make_sim(cfg, "DP");
  sim.prepare();
  sim.run_until(5.0);
  const auto bytes = checkpoint_of(sim);
  auto other = make_sim(cfg, "LbChat");
  ByteReader r{bytes};
  EXPECT_EQ(other.restore(r), CkptStatus::kStrategyMismatch);
}

TEST(CheckpointReject, StrategyOptionsMismatch) {
  // The new strategies echo their options into the strategy section; a
  // checkpoint must not silently resume under a different tuning (the gating
  // decisions would diverge from the saved run's history).
  const auto cfg = tiny_cfg(2, false);
  for (const char* name : {"DynThresh", "SimGossip"}) {
    auto sim = make_sim(cfg, name);
    sim.prepare();
    sim.run_until(5.0);
    const auto bytes = checkpoint_of(sim);

    baselines::StrategyOptions retuned;
    retuned.set(std::strcmp(name, "DynThresh") == 0 ? "divergence_bound" : "temperature",
                0.123);
    auto other = make_sim(cfg, name, retuned);
    ByteReader r{bytes};
    EXPECT_EQ(other.restore(r), CkptStatus::kMalformed) << name;

    // Same options restore fine.
    auto same = make_sim(cfg, name);
    ByteReader r2{bytes};
    EXPECT_EQ(same.restore(r2), CkptStatus::kOk) << name;
  }
}

TEST(CheckpointReject, BadVersion) {
  ByteWriter body;
  body.write_u32(engine::kCheckpointVersion + 1);
  const auto bytes = frame::encode(frame::FrameType::kCheckpoint, body.bytes());
  auto sim = make_sim(tiny_cfg(2, false), "LbChat");
  ByteReader r{bytes};
  EXPECT_EQ(sim.restore(r), CkptStatus::kBadVersion);
  engine::CkptInfo info;
  EXPECT_EQ(engine::inspect_checkpoint(bytes, info), CkptStatus::kBadVersion);
}

TEST(CheckpointReject, GarbageAndEmptyInput) {
  auto sim = make_sim(tiny_cfg(2, false), "LbChat");
  const std::vector<std::uint8_t> empty;
  ByteReader r1{empty};
  EXPECT_EQ(sim.restore(r1), CkptStatus::kBadFrame);
  std::vector<std::uint8_t> garbage(64);
  for (std::size_t i = 0; i < garbage.size(); ++i) garbage[i] = static_cast<std::uint8_t>(i * 37);
  ByteReader r2{garbage};
  EXPECT_EQ(sim.restore(r2), CkptStatus::kBadFrame);
}

// --- inspection --------------------------------------------------------------

TEST(CheckpointInspect, ReportsHeaderAndSections) {
  const auto cfg = tiny_cfg(6, true);
  auto sim = make_sim(cfg, "LbChat");
  sim.prepare();
  sim.run_until(10.0);
  const auto bytes = checkpoint_of(sim);

  engine::CkptInfo info;
  ASSERT_EQ(engine::inspect_checkpoint(bytes, info), CkptStatus::kOk);
  EXPECT_EQ(info.version, engine::kCheckpointVersion);
  EXPECT_EQ(info.config_fingerprint, engine::config_fingerprint(cfg));
  EXPECT_EQ(info.seed, cfg.seed);
  EXPECT_EQ(info.num_vehicles, static_cast<std::uint32_t>(cfg.num_vehicles));
  EXPECT_EQ(info.strategy, "LbChat");
  EXPECT_EQ(info.time_s, sim.time());
  ASSERT_EQ(info.sections.size(), 9u);
  for (const auto& s : info.sections) {
    EXPECT_FALSE(engine::section_name(s.tag).empty());
    EXPECT_NE(engine::section_name(s.tag), "?");
  }
}

TEST(CheckpointInspect, FingerprintIgnoresDurationAndThreads) {
  auto a = tiny_cfg(1, false);
  auto b = a;
  b.duration_s *= 2;
  b.num_threads = 8;
  EXPECT_EQ(engine::config_fingerprint(a), engine::config_fingerprint(b));
  auto c = a;
  c.coreset_size += 1;
  EXPECT_NE(engine::config_fingerprint(a), engine::config_fingerprint(c));
}

// --- fuzzing the decode path -------------------------------------------------

class CheckpointFuzz : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new engine::ScenarioConfig{tiny_cfg(4, true)};
    auto sim = make_sim(*cfg_, "LbChat");
    sim.prepare();
    sim.run_until(10.0);
    bytes_ = new std::vector<std::uint8_t>{checkpoint_of(sim)};
  }
  static void TearDownTestSuite() {
    delete cfg_;
    delete bytes_;
    cfg_ = nullptr;
    bytes_ = nullptr;
  }

  /// restore() must return a status — never throw, never crash.
  static CkptStatus restore_status(const std::vector<std::uint8_t>& input) {
    auto sim = make_sim(*cfg_, "LbChat");
    ByteReader r{input};
    return sim.restore(r);
  }

  static engine::ScenarioConfig* cfg_;
  static std::vector<std::uint8_t>* bytes_;
};

engine::ScenarioConfig* CheckpointFuzz::cfg_ = nullptr;
std::vector<std::uint8_t>* CheckpointFuzz::bytes_ = nullptr;

TEST_F(CheckpointFuzz, EveryTruncationIsRejected) {
  const auto& good = *bytes_;
  ASSERT_EQ(restore_status(good), CkptStatus::kOk);
  // All short prefixes (header/section boundaries), then ~200 samples spread
  // over the rest — each probe constructs a fresh sim, so keep the count sane.
  const std::size_t stride = good.size() / 199 + 1;
  for (std::size_t n = 0; n < good.size(); n = n < 256 ? n + 1 : n + stride) {
    const std::vector<std::uint8_t> cut{good.begin(),
                                        good.begin() + static_cast<std::ptrdiff_t>(n)};
    EXPECT_NE(restore_status(cut), CkptStatus::kOk) << "prefix length " << n;
    engine::CkptInfo info;
    EXPECT_NE(engine::inspect_checkpoint(cut, info), CkptStatus::kOk) << "prefix length " << n;
  }
}

TEST_F(CheckpointFuzz, BitFlipsAreDetectedByTheEnvelope) {
  const auto& good = *bytes_;
  // The CRC covers (version, type, length, payload) and the magic is checked
  // separately, so ANY single-bit flip must be rejected at the frame layer.
  const std::size_t stride = good.size() / 199 + 1;
  for (std::size_t pos = 0; pos < good.size(); pos += stride) {
    auto bad = good;
    bad[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    EXPECT_EQ(restore_status(bad), CkptStatus::kBadFrame) << "flip at byte " << pos;
  }
}

TEST_F(CheckpointFuzz, HostileLengthPrefixesNeverCrash) {
  const auto& good = *bytes_;
  const auto decoded = frame::decode(good);
  ASSERT_TRUE(decoded.ok());
  std::vector<std::uint8_t> payload{decoded.payload.begin(), decoded.payload.end()};
  // Stamp a huge u32 length prefix at many payload offsets and re-frame with
  // a VALID checksum: this gets past the envelope, so the section/body
  // parsing itself must bound-check every read.
  const std::size_t stride = payload.size() / 149 + 1;
  for (std::size_t pos = 0; pos + 4 <= payload.size(); pos += stride) {
    auto evil = payload;
    evil[pos] = 0xFF;
    evil[pos + 1] = 0xFF;
    evil[pos + 2] = 0xFF;
    evil[pos + 3] = 0xFF;
    const auto reframed = frame::encode(frame::FrameType::kCheckpoint, evil);
    const CkptStatus st = restore_status(reframed);  // any status; must not throw
    EXPECT_LE(static_cast<unsigned>(st), static_cast<unsigned>(CkptStatus::kMalformed));
    engine::CkptInfo info;
    (void)engine::inspect_checkpoint(reframed, info);
  }
}

TEST_F(CheckpointFuzz, ZeroedPayloadBytesNeverCrash) {
  const auto& good = *bytes_;
  const auto decoded = frame::decode(good);
  ASSERT_TRUE(decoded.ok());
  const std::vector<std::uint8_t> payload{decoded.payload.begin(), decoded.payload.end()};
  const std::size_t stride = payload.size() / 97 + 1;
  for (std::size_t pos = 0; pos < payload.size(); pos += stride) {
    auto evil = payload;
    // Zero an 8-byte window: corrupts counts/doubles/enums in-place.
    for (std::size_t i = pos; i < payload.size() && i < pos + 8; ++i) evil[i] = 0;
    const auto reframed = frame::encode(frame::FrameType::kCheckpoint, evil);
    (void)restore_status(reframed);  // must not throw/crash; status is free
  }
}

// --- seed-sweep determinism ---------------------------------------------------

TEST(CheckpointDeterminism, SeedSweepBitIdenticalAcrossThreadsAndResume) {
  // 8 seeds x faults {off,on}: the straight 1-thread run, the 4-thread run,
  // and a resumed run must all produce bit-identical loss curves.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 21ull, 34ull}) {
    for (const bool faults : {false, true}) {
      auto cfg = tiny_cfg(seed, faults);
      cfg.num_threads = 1;
      auto base = make_sim(cfg, "LbChat");
      const auto m_base = base.run();

      cfg.num_threads = 4;
      auto threaded = make_sim(cfg, "LbChat");
      const auto m_threaded = threaded.run();
      EXPECT_EQ(curve_bits(m_base), curve_bits(m_threaded))
          << "seed " << seed << " faults " << faults;

      cfg.num_threads = 1;
      auto first = make_sim(cfg, "LbChat");
      first.prepare();
      first.run_until(13.0);
      const auto bytes = checkpoint_of(first);
      auto resumed = make_sim(cfg, "LbChat");
      ByteReader r{bytes};
      ASSERT_EQ(resumed.restore(r), CkptStatus::kOk) << "seed " << seed;
      resumed.run_until(cfg.duration_s);
      const auto m_resumed = resumed.finalize();
      EXPECT_EQ(curve_bits(m_base), curve_bits(m_resumed))
          << "seed " << seed << " faults " << faults;
    }
  }
}

/// Adversarial cell of the sweep: Byzantine peers plus heterogeneity exercise
/// the conditional checkpoint tails (adversary noise stream, straggler
/// credits, cohort curves, adversary counters) through the same
/// threads-and-resume contract.
TEST(CheckpointDeterminism, AdversarialCellBitIdenticalAcrossThreadsAndResume) {
  for (const std::uint64_t seed : {3ull, 21ull}) {
    auto cfg = tiny_cfg(seed, /*faults=*/true, /*vehicles=*/4);
    cfg.adversary.byzantine_frac = 0.25;
    cfg.adversary.poison_noise = 0.05;  // exercises the serialized noise stream
    cfg.hetero.straggler_frac = 0.5;
    cfg.hetero.slow_radio_frac = 0.5;
    cfg.hetero.dataset_skew = 0.4;

    cfg.num_threads = 1;
    auto base = make_sim(cfg, "LbChat");
    const auto m_base = base.run();

    cfg.num_threads = 4;
    auto threaded = make_sim(cfg, "LbChat");
    const auto m_threaded = threaded.run();
    EXPECT_EQ(curve_bits(m_base), curve_bits(m_threaded)) << "seed " << seed;

    cfg.num_threads = 1;
    auto first = make_sim(cfg, "LbChat");
    first.prepare();
    first.run_until(13.0);
    const auto bytes = checkpoint_of(first);
    auto resumed = make_sim(cfg, "LbChat");
    ByteReader r{bytes};
    ASSERT_EQ(resumed.restore(r), CkptStatus::kOk) << "seed " << seed;
    resumed.run_until(cfg.duration_s);
    const auto m_resumed = resumed.finalize();
    EXPECT_EQ(curve_bits(m_base), curve_bits(m_resumed)) << "seed " << seed;
    EXPECT_EQ(m_base.transfers.byzantine_payloads_sent,
              m_resumed.transfers.byzantine_payloads_sent);
    EXPECT_EQ(m_base.transfers.straggler_train_skips,
              m_resumed.transfers.straggler_train_skips);

    // A checkpoint from an adversarial run must not restore into an engine
    // configured without the adversary (different config fingerprint).
    auto plain = make_sim(tiny_cfg(seed, /*faults=*/true, /*vehicles=*/4), "LbChat");
    ByteReader r2{bytes};
    EXPECT_EQ(plain.restore(r2), CkptStatus::kConfigMismatch);
  }
}

}  // namespace
