// Tests for the coreset library: Algorithm 1 layered sampling, the
// epsilon-coreset approximation property, Eq. (6) penalties, and the
// merge + reduce fast path (paper §III-B, §III-D).
#include <gtest/gtest.h>

#include <cmath>

#include "coreset/coreset.h"
#include "nn/optim.h"
#include "sim/world.h"

namespace lbchat::coreset {
namespace {

/// Shared fixture: a small driving dataset and a briefly-trained model so
/// per-sample losses have realistic spread.
class CoresetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new sim::World{sim::WorldConfig{}, 1, 7};
    dataset_ = new data::WeightedDataset{data::kDefaultBevSpec};
    for (std::uint64_t f = 0; f < 300; ++f) {
      world_->step(0.5);
      data::Sample s = world_->collect_sample(0, f);
      // Non-uniform weights exercise the weighted sampling path.
      s.weight = 1.0 + static_cast<double>(f % 3);
      dataset_->add(std::move(s));
    }
    model_ = new nn::DrivingPolicy{};
    nn::Adam opt{1e-3};
    Rng rng{5};
    for (int step = 0; step < 120; ++step) {
      const auto idx = dataset_->sample_batch(rng, 32);
      std::vector<const data::Sample*> batch;
      for (const auto i : idx) batch.push_back(&(*dataset_)[i]);
      model_->train_batch(batch, opt);
    }
  }
  static void TearDownTestSuite() {
    delete world_;
    delete dataset_;
    delete model_;
    world_ = nullptr;
    dataset_ = nullptr;
    model_ = nullptr;
  }

  static sim::World* world_;
  static data::WeightedDataset* dataset_;
  static nn::DrivingPolicy* model_;
};

sim::World* CoresetFixture::world_ = nullptr;
data::WeightedDataset* CoresetFixture::dataset_ = nullptr;
nn::DrivingPolicy* CoresetFixture::model_ = nullptr;

TEST_F(CoresetFixture, PartitionCenterIsMinimumLoss) {
  const LayerPartition part = partition_into_layers(*model_, *dataset_);
  double min_loss = 1e18;
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    min_loss = std::min(min_loss, model_->sample_loss((*dataset_)[i]));
  }
  EXPECT_NEAR(part.center_loss, min_loss, 1e-12);
  EXPECT_GT(part.ring_radius, 0.0);
}

TEST_F(CoresetFixture, PartitionAssignsEverySampleWithinLayerBound) {
  const LayerPartition part = partition_into_layers(*model_, *dataset_);
  ASSERT_EQ(part.layer_of.size(), dataset_->size());
  const int max_layer =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(dataset_->size()) + 1.0)));
  for (const int l : part.layer_of) {
    EXPECT_GE(l, 0);
    EXPECT_LE(l, max_layer);
  }
  EXPECT_GE(part.num_layers, 1);
}

TEST_F(CoresetFixture, PartitionRingGeometry) {
  // Samples with loss distance <= R land in layer 0; larger losses land in
  // geometrically growing rings.
  const LayerPartition part = partition_into_layers(*model_, *dataset_);
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    const double dist = model_->sample_loss((*dataset_)[i]) - part.center_loss;
    if (part.layer_of[i] == 0) {
      EXPECT_LE(dist, part.ring_radius * 2.0 + 1e-9);
    } else {
      EXPECT_GT(dist, part.ring_radius - 1e-12);
    }
  }
}

TEST_F(CoresetFixture, BuildHitsTargetSize) {
  CoresetConfig cfg;
  cfg.target_size = 60;
  Rng rng{11};
  const Coreset c = build_layered_coreset(*dataset_, *model_, cfg, rng);
  EXPECT_EQ(c.size(), 60u);
  EXPECT_EQ(c.wc.size(), c.samples.size());
}

TEST_F(CoresetFixture, CoresetMassMatchesDatasetMass) {
  // The per-layer w_C assignment preserves each layer's weight mass, so the
  // coreset's total weight equals the dataset's total weight.
  CoresetConfig cfg;
  cfg.target_size = 80;
  Rng rng{13};
  const Coreset c = build_layered_coreset(*dataset_, *model_, cfg, rng);
  EXPECT_NEAR(c.total_weight(), dataset_->total_weight(),
              1e-6 * dataset_->total_weight());
}

TEST_F(CoresetFixture, EpsilonCoresetApproximation) {
  // The defining property (Def. II.2): f(x; C) approximates f(x; D) within a
  // modest relative error — for the model the coreset was built against AND
  // for a different model (approximate robustness across the ball).
  CoresetConfig cfg;
  cfg.target_size = 100;
  Rng rng{17};
  const Coreset c = build_layered_coreset(*dataset_, *model_, cfg, rng);

  const double full = penalized_loss(*model_, dataset_->samples(), {}, cfg.penalty);
  const double approx = evaluate_on_coreset(*model_, c, cfg.penalty);
  EXPECT_NEAR(approx, full, 0.25 * full) << "coreset loss off by more than 25%";

  const nn::DrivingPolicy other{{}, 99};  // untrained model, same ball-ish
  const double full_other = penalized_loss(other, dataset_->samples(), {}, cfg.penalty);
  const double approx_other = evaluate_on_coreset(other, c, cfg.penalty);
  EXPECT_NEAR(approx_other, full_other, 0.35 * full_other);
}

TEST_F(CoresetFixture, SmallerCoresetsApproximateWorseOnAverage) {
  // Property sweep motivating Table IV: tiny coresets are noisier estimators.
  CoresetConfig cfg;
  double err_small = 0.0;
  double err_large = 0.0;
  const double full = penalized_loss(*model_, dataset_->samples(), {}, cfg.penalty);
  for (int rep = 0; rep < 5; ++rep) {
    Rng rng{static_cast<std::uint64_t>(100 + rep)};
    cfg.target_size = 10;
    err_small += std::abs(
        evaluate_on_coreset(*model_, build_layered_coreset(*dataset_, *model_, cfg, rng),
                            cfg.penalty) -
        full);
    cfg.target_size = 120;
    err_large += std::abs(
        evaluate_on_coreset(*model_, build_layered_coreset(*dataset_, *model_, cfg, rng),
                            cfg.penalty) -
        full);
  }
  EXPECT_LT(err_large, err_small);
}

TEST_F(CoresetFixture, DegenerateTargetReturnsWholeDataset) {
  CoresetConfig cfg;
  cfg.target_size = dataset_->size() + 100;
  Rng rng{19};
  const Coreset c = build_layered_coreset(*dataset_, *model_, cfg, rng);
  EXPECT_EQ(c.size(), dataset_->size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.wc[i], c.samples[i].weight);  // w_C == w for the full set
  }
}

TEST_F(CoresetFixture, MergePreservesMassAndSize) {
  CoresetConfig cfg;
  cfg.target_size = 50;
  Rng rng_a{21};
  Rng rng_b{23};
  const Coreset a = build_layered_coreset(*dataset_, *model_, cfg, rng_a);
  const Coreset b = build_layered_coreset(*dataset_, *model_, cfg, rng_b);
  const Coreset merged = merge_coresets(a, b);
  EXPECT_EQ(merged.size(), a.size() + b.size());
  EXPECT_NEAR(merged.total_weight(), a.total_weight() + b.total_weight(), 1e-6);
}

TEST_F(CoresetFixture, ReduceKeepsSizeConstantAndMass) {
  CoresetConfig cfg;
  cfg.target_size = 50;
  Rng rng{29};
  const Coreset a = build_layered_coreset(*dataset_, *model_, cfg, rng);
  const Coreset b = build_layered_coreset(*dataset_, *model_, cfg, rng);
  const Coreset merged = merge_coresets(a, b);
  Rng reduce_rng{31};
  const Coreset reduced = reduce_coreset(merged, *model_, 50, reduce_rng);
  EXPECT_EQ(reduced.size(), 50u);
  EXPECT_NEAR(reduced.total_weight(), merged.total_weight(),
              1e-6 * merged.total_weight());
}

TEST_F(CoresetFixture, ReduceIsNoOpWhenAlreadySmall) {
  CoresetConfig cfg;
  cfg.target_size = 40;
  Rng rng{37};
  const Coreset a = build_layered_coreset(*dataset_, *model_, cfg, rng);
  const Coreset same = reduce_coreset(a, *model_, 50, rng);
  EXPECT_EQ(same.size(), a.size());
}

TEST_F(CoresetFixture, LogicalBytesScaleWithSize) {
  CoresetConfig cfg;
  Rng rng{41};
  cfg.target_size = 30;
  const auto small = build_layered_coreset(*dataset_, *model_, cfg, rng);
  cfg.target_size = 120;
  const auto large = build_layered_coreset(*dataset_, *model_, cfg, rng);
  EXPECT_LT(small.logical_bytes(), large.logical_bytes());
  EXPECT_EQ(small.logical_bytes(),
            16u + 30u * (data::packed_sample_bytes(small.spec) + 4u));
}

// --------------------------------------------------------- Eq. (6) penalties

TEST(PenaltyTest, CommandBalanceZeroWhenBalanced) {
  // Craft samples whose losses are identical across commands: entropy gap 0.
  nn::DrivingPolicy model{{}, 3};
  std::vector<data::Sample> samples;
  Rng rng{5};
  data::Sample base;
  base.bev = data::BevGrid{data::kDefaultBevSpec};
  for (int c = 0; c < data::kNumCommands; ++c) {
    data::Sample s = base;
    s.command = static_cast<data::Command>(c);
    const auto pred = model.predict(s.bev, s.command);
    // Perfect labels -> zero loss for every command -> zero masses -> 0 gap.
    for (std::size_t i = 0; i < pred.size(); ++i) s.waypoints[i] = pred[i];
    samples.push_back(std::move(s));
  }
  EXPECT_NEAR(command_balance_penalty(model, samples), 0.0, 1e-9);
}

TEST(PenaltyTest, CommandBalancePositiveWhenSkewed) {
  nn::DrivingPolicy model{{}, 3};
  std::vector<data::Sample> samples;
  data::Sample base;
  base.bev = data::BevGrid{data::kDefaultBevSpec};
  for (int c = 0; c < 2; ++c) {
    data::Sample s = base;
    s.command = static_cast<data::Command>(c);
    const auto pred = model.predict(s.bev, s.command);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      // Command 0 gets perfect labels, command 1 very wrong labels.
      s.waypoints[i] = c == 0 ? pred[i] : pred[i] + 1.0f;
    }
    samples.push_back(std::move(s));
  }
  EXPECT_GT(command_balance_penalty(model, samples), 0.1);
}

TEST(PenaltyTest, PenalizedLossIncludesL2Term) {
  nn::DrivingPolicy model{{}, 7};
  const std::vector<data::Sample> empty;
  PenaltyConfig p;
  p.lambda1 = 0.5;
  p.lambda2 = 0.0;
  const double loss = penalized_loss(model, empty, {}, p);
  EXPECT_NEAR(loss, 0.5 * nn::param_l2_norm(model.params()), 1e-9);
}

TEST(PenaltyTest, WeightsOverrideSampleWeights) {
  nn::DrivingPolicy model{{}, 9};
  data::Sample s;
  s.bev = data::BevGrid{data::kDefaultBevSpec};
  s.weight = 100.0;  // would dominate if used
  const std::vector<data::Sample> samples{s};
  const std::vector<double> weights{1.0};
  PenaltyConfig p;
  p.lambda1 = 0.0;
  p.lambda2 = 0.0;
  EXPECT_NEAR(penalized_loss(model, samples, weights, p), model.sample_loss(s), 1e-9);
  EXPECT_NEAR(penalized_loss(model, samples, {}, p), 100.0 * model.sample_loss(s), 1e-6);
}

TEST(CoresetEdgeTest, EmptyDatasetYieldsEmptyCoreset) {
  data::WeightedDataset empty;
  nn::DrivingPolicy model{{}, 1};
  Rng rng{1};
  const Coreset c = build_layered_coreset(empty, model, {}, rng);
  EXPECT_TRUE(c.empty());
  EXPECT_THROW(partition_into_layers(model, empty), std::invalid_argument);
}

TEST(CoresetEdgeTest, MergeSpecMismatchThrows) {
  Coreset a;
  a.spec = data::BevSpec{4, 16, 16, 2.0};
  a.samples.resize(1);
  a.wc.assign(1, 1.0);
  Coreset b;
  b.spec = data::BevSpec{4, 8, 8, 2.0};
  b.samples.resize(1);
  b.wc.assign(1, 1.0);
  EXPECT_THROW(merge_coresets(a, b), std::invalid_argument);
}

class CoresetSizeSweep : public CoresetFixture,
                         public ::testing::WithParamInterface<std::size_t> {};

TEST_P(CoresetSizeSweep, ExactTargetForAnySize) {
  CoresetConfig cfg;
  cfg.target_size = GetParam();
  Rng rng{43};
  const Coreset c = build_layered_coreset(*dataset_, *model_, cfg, rng);
  EXPECT_EQ(c.size(), std::min<std::size_t>(GetParam(), dataset_->size()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoresetSizeSweep,
                         ::testing::Values(1, 5, 15, 50, 150, 299, 300, 500));

}  // namespace
}  // namespace lbchat::coreset
