// Golden-scenario definitions shared by the regression test (golden_test.cpp)
// and the regeneration tool (tools/golden_regen.cpp).
//
// Each scenario is a tiny fixed-seed run whose behavioural digest — loss
// curve bits, event-log CRC, checkpoint CRC — is committed under
// tests/goldens/. The digest pins end-to-end engine behaviour bit-exactly
// across PRs: any change to world stepping, training, the protocol, fault
// injection, event emission, or the checkpoint wire format shows up as a
// digest mismatch.
//
// IMPORTANT: metric definitions accumulate per process and the checkpoint
// embeds the registry snapshot, so digests depend on which scenarios ran
// earlier in the same process. Both the test and the tool therefore run ALL
// scenarios in one process, in kGoldenScenarios order.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/bytes.h"
#include "common/frame.h"
#include "engine/fleet.h"
#include "nn/kernel_dispatch.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace lbchat::golden {

struct GoldenScenario {
  const char* name;      ///< golden file stem (tests/goldens/<name>.golden)
  const char* approach;  ///< baselines::approach_from_name input
  std::uint64_t seed;
  bool faults;
  /// > 0: run at this metro-scaled fleet size (apply_metro_scale — spatial
  /// index, snapshot mobility and parallel session ticks all on).
  int metro = 0;
};

/// Keep this list and its order in sync between regen and test (see the
/// header comment). Three scenarios cover the paper's protocol, a payload
/// strategy without session scratch, and a synchronous-round baseline; the
/// fourth pins the metro-scaling machinery (DESIGN.md §11). Append new
/// scenarios LAST: per-process metric accumulation means reordering would
/// shift every digest after the insertion point.
inline constexpr GoldenScenario kGoldenScenarios[] = {
    {"lbchat_s7", "LbChat", 7, false},
    {"dp_s11_faults", "DP", 11, true},
    {"dfl_dds_s3_faults", "DFL-DDS", 3, true},
    {"dp_metro64_s5_faults", "DP", 5, true, 64},
};

/// Micro scenario: small fleet, short horizon — a few seconds of wall clock.
inline engine::ScenarioConfig golden_config(std::uint64_t seed, bool faults) {
  engine::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_vehicles = 4;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  cfg.collect_duration_s = 60.0;
  cfg.collect_fps = 1.0;
  cfg.eval_frames_per_vehicle = 4;
  cfg.duration_s = 90.0;
  cfg.eval_interval_s = 30.0;
  cfg.train_interval_s = 4.0;
  cfg.batch_size = 8;
  cfg.coreset_size = 24;
  cfg.pair_cooldown_s = 10.0;
  cfg.time_budget_s = 10.0;
  cfg.radio.max_range_m = 400.0;  // dense contacts on the tiny map
  cfg.wire.model_bytes = 8ull * 1024 * 1024;
  cfg.wire.coreset_bytes_per_sample = 2048;
  if (faults) {
    cfg.faults.burst_rate_per_min = 4.0;
    cfg.faults.burst_duration_s = 10.0;
    cfg.faults.burst_radius_m = 200.0;
    cfg.faults.burst_extra_loss = 0.8;
    cfg.faults.churn_rate_per_min = 1.0;
    cfg.faults.churn_offline_mean_s = 10.0;
    cfg.faults.corrupt_prob_near = 0.02;
    cfg.faults.corrupt_prob_far = 0.2;
    cfg.faults.chat_backoff = true;
  }
  return cfg;
}

/// Metro twin of golden_config: the same tiny scenario tiled up to
/// `vehicles` with the scaling machinery on, horizons trimmed so the run
/// stays a few wall-clock seconds.
inline engine::ScenarioConfig golden_metro_config(std::uint64_t seed, bool faults,
                                                  int vehicles) {
  engine::ScenarioConfig cfg = golden_config(seed, faults);
  cfg.collect_duration_s = 30.0;
  cfg.duration_s = 60.0;
  cfg.eval_interval_s = 30.0;
  engine::apply_metro_scale(cfg, vehicles);
  return cfg;
}

inline std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Run one scenario with event tracing on and return its digest as
/// deterministic `key=value` lines (the golden file format).
inline std::string run_golden_scenario(const GoldenScenario& sc) {
  // The committed digests pin the scalar kernel numerics; force that path so
  // the suite passes on any machine regardless of the runtime CPUID dispatch
  // (DESIGN.md §15). LBCHAT_KERNEL still governs every non-golden run.
  nn::ScopedKernelPath kernel_guard{nn::KernelPath::kScalar};
  obs::reset();
  obs::set_events_enabled(true);
  engine::FleetSim sim{sc.metro > 0 ? golden_metro_config(sc.seed, sc.faults, sc.metro)
                                    : golden_config(sc.seed, sc.faults),
                       baselines::make_strategy(baselines::approach_from_name(sc.approach))};
  sim.prepare();
  sim.run_until(sim.config().duration_s);
  ByteWriter ckpt;
  sim.save_checkpoint(ckpt);
  const engine::RunMetrics m = sim.finalize();

  std::uint64_t curve = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
    curve = fnv64(curve, std::bit_cast<std::uint64_t>(m.loss_curve.times[i]));
    curve = fnv64(curve, std::bit_cast<std::uint64_t>(m.loss_curve.values[i]));
  }
  const std::string events = obs::events_jsonl(obs::tracer().events(), obs::tracer().dropped());
  const std::vector<std::uint8_t> events_bytes{events.begin(), events.end()};

  char buf[64];
  std::string out;
  out += "scenario=" + std::string{sc.name} + "\n";
  std::snprintf(buf, sizeof buf, "curve_fnv64=%016llx\n",
                static_cast<unsigned long long>(curve));
  out += buf;
  std::snprintf(buf, sizeof buf, "final_loss_bits=%016llx\n",
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(m.loss_curve.values.back())));
  out += buf;
  std::snprintf(buf, sizeof buf, "events_crc32=%08x\n", frame::crc32(events_bytes));
  out += buf;
  std::snprintf(buf, sizeof buf, "events_bytes=%zu\n", events_bytes.size());
  out += buf;
  std::snprintf(buf, sizeof buf, "checkpoint_crc32=%08x\n", frame::crc32(ckpt.bytes()));
  out += buf;
  std::snprintf(buf, sizeof buf, "checkpoint_bytes=%zu\n", ckpt.size());
  out += buf;
  return out;
}

}  // namespace lbchat::golden
