// Tests for the online driving evaluator (paper §IV-D).
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "eval/online.h"
#include "nn/optim.h"
#include "sim/world.h"

namespace lbchat::eval {
namespace {

TEST(TaskTest, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const auto t : kAllTasks) names.insert(task_name(t));
  EXPECT_EQ(names.size(), kAllTasks.size());
}

TEST(EvaluatorTest, TrialIsDeterministic) {
  EvalConfig cfg;
  cfg.trials = 1;
  const OnlineEvaluator ev{cfg};
  const nn::DrivingPolicy model{{}, 5};
  const TrialResult a = ev.run_trial(model, DrivingTask::kStraight, 0);
  const TrialResult b = ev.run_trial(model, DrivingTask::kStraight, 0);
  EXPECT_EQ(a.success, b.success);
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
  EXPECT_DOUBLE_EQ(a.route_length_m, b.route_length_m);
}

TEST(EvaluatorTest, TrialsDifferByIndex) {
  EvalConfig cfg;
  const OnlineEvaluator ev{cfg};
  const nn::DrivingPolicy model{{}, 5};
  const TrialResult a = ev.run_trial(model, DrivingTask::kNaviEmpty, 0);
  const TrialResult b = ev.run_trial(model, DrivingTask::kNaviEmpty, 1);
  // Different trial indices draw different routes (lengths almost surely
  // differ on this map).
  EXPECT_NE(a.route_length_m, b.route_length_m);
}

TEST(EvaluatorTest, ExactlyOneOutcomeFlagSet) {
  EvalConfig cfg;
  const OnlineEvaluator ev{cfg};
  const nn::DrivingPolicy model{{}, 7};
  for (const auto task : {DrivingTask::kStraight, DrivingTask::kNaviNormal}) {
    const TrialResult r = ev.run_trial(model, task, 2);
    const int flags = (r.success ? 1 : 0) + (r.collision ? 1 : 0) + (r.timeout ? 1 : 0) +
                      (r.lost ? 1 : 0);
    EXPECT_EQ(flags, 1);
  }
}

TEST(EvaluatorTest, UntrainedModelFailsNavigation) {
  EvalConfig cfg;
  cfg.trials = 6;
  const OnlineEvaluator ev{cfg};
  const nn::DrivingPolicy untrained{{}, 11};
  EXPECT_LE(ev.success_rate(untrained, DrivingTask::kNaviEmpty), 0.34);
}

TEST(EvaluatorTest, TrainedModelDrivesStraightRoutes) {
  // Train briefly on expert data from the same world seed, then expect
  // clearly better-than-untrained behaviour on the easiest condition.
  sim::WorldConfig wc;
  sim::World world{wc, 2, 1};
  data::WeightedDataset ds{wc.bev};
  for (std::uint64_t f = 0; f < 700; ++f) {
    world.step(0.5);
    ds.add(world.collect_sample(0, f));
    ds.add(world.collect_sample(1, (1ull << 32) | f));
  }
  nn::DrivingPolicy model;
  nn::Adam opt{1e-3};
  Rng rng{13};
  for (int step = 0; step < 600; ++step) {
    const auto idx = ds.sample_batch(rng, 32);
    std::vector<const data::Sample*> batch;
    for (const auto i : idx) batch.push_back(&ds[i]);
    model.train_batch(batch, opt);
  }
  EvalConfig cfg;
  cfg.trials = 6;
  const OnlineEvaluator ev{cfg};
  const double trained = ev.success_rate(model, DrivingTask::kStraight);
  const nn::DrivingPolicy untrained{{}, 17};
  const double baseline = ev.success_rate(untrained, DrivingTask::kStraight);
  EXPECT_GT(trained, baseline);
  EXPECT_GE(trained, 0.5);
}

TEST(EvaluatorTest, SuccessRateBounds) {
  EvalConfig cfg;
  cfg.trials = 3;
  const OnlineEvaluator ev{cfg};
  const nn::DrivingPolicy model{{}, 19};
  for (const auto task : kAllTasks) {
    const double r = ev.success_rate(model, task);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EvalConfig none = cfg;
  none.trials = 0;
  EXPECT_DOUBLE_EQ(OnlineEvaluator{none}.success_rate(model, DrivingTask::kStraight), 0.0);
}

}  // namespace
}  // namespace lbchat::eval
